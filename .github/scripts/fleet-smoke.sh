#!/usr/bin/env bash
# Fleet smoke: boot a 3-daemon TCP fleet, tune a network through the
# consistent-hash router, assert per-layer configs are bit-identical to
# an embedded run at the same budget/seed, then kill one daemon and
# re-run through the unchanged 3-peer spec — the router must fail over
# to the survivors and still produce the identical configs.
#
# Session traffic rides TCP and control (stop) rides the Unix sockets,
# per the single-core deployment layout in docs/OPERATIONS.md.
set -euo pipefail

TC=target/release/tune-cache
DIR=$(mktemp -d /tmp/iolb-fleet-smoke.XXXXXX)
NET="32,14,14,16,1,1,1,0;16,14,14,32,1,1,1,0;32,14,14,16,1,1,1,0;24,14,14,12,1,1,1,0"
BUDGET=8

PIDS=()
trap 'kill "${PIDS[@]}" 2>/dev/null || true; rm -rf "$DIR"' EXIT

SPECS=()
for i in 1 2 3; do
  mkdir -p "$DIR/d$i"
  "$TC" serve "$DIR/d$i" --tcp 127.0.0.1:0 --budget "$BUDGET" --seed 7 \
      --merge-interval-ms 100 > "$DIR/d$i.log" &
  PIDS+=($!)
done
# Port 0 picks a free port; each daemon prints where it really listens.
for i in 1 2 3; do
  for _ in $(seq 1 100); do
    grep -q '^listening on tcp ' "$DIR/d$i.log" && break
    sleep 0.1
  done
  ADDR=$(sed -n 's/^listening on tcp //p' "$DIR/d$i.log")
  [ -n "$ADDR" ] || { echo "daemon $i never reported a TCP address"; cat "$DIR/d$i.log"; exit 1; }
  SPECS+=("tcp:$ADDR")
done
FLEET=$(IFS=,; echo "${SPECS[*]}")
echo "fleet: $FLEET"

# The embedded reference at the same budget and seed.
mkdir -p "$DIR/ref"
"$TC" tune-net --layers "$NET" -o "$DIR/ref" --budget "$BUDGET" --seed 7 > "$DIR/ref.out"
grep '^  ' "$DIR/ref.out" > "$DIR/ref.layers"

# Session 1: the full fleet must match the embedded run per layer.
"$TC" tune-net --layers "$NET" --fleet "$FLEET" > "$DIR/fleet1.out"
grep '^  ' "$DIR/fleet1.out" > "$DIR/fleet1.layers"
diff -u "$DIR/ref.layers" "$DIR/fleet1.layers" \
  || { echo "fleet configs differ from the embedded run"; exit 1; }

# Kill daemon 2, then re-run through the unchanged 3-peer spec: the
# router must mark it dead, re-route its key range, and still serve the
# identical session.
"$TC" stop "$DIR/d2/daemon.sock"
wait "${PIDS[1]}"
"$TC" tune-net --layers "$NET" --fleet "$FLEET" > "$DIR/fleet2.out"
grep '^  ' "$DIR/fleet2.out" > "$DIR/fleet2.layers"
diff -u "$DIR/ref.layers" "$DIR/fleet2.layers" \
  || { echo "failover configs differ from the embedded run"; exit 1; }
grep -q 'across 2 of 3 peer(s)' "$DIR/fleet2.out" \
  || { echo "router did not report the dead peer"; cat "$DIR/fleet2.out"; exit 1; }

# Survivors shut down cleanly and their directories are loadable.
"$TC" stop "$DIR/d1/daemon.sock"
"$TC" stop "$DIR/d3/daemon.sock"
wait "${PIDS[0]}" "${PIDS[2]}"
"$TC" serve-stats "$DIR/d1" > /dev/null
"$TC" serve-stats "$DIR/d3" > /dev/null
echo "fleet smoke OK"
