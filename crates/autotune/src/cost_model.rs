//! The learned cost model (paper Fig. 8, "Cost Model" box).
//!
//! Wraps the from-scratch GBT ensemble behind a small trait so searchers
//! can also run model-free (`NoModel` scores everything equally, which
//! degrades the guided walk into a pure random walk — the ablation the
//! benches exercise).

use crate::gbt::{Gbrt, GbrtParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Predicts the cost (milliseconds; lower is better) of a feature vector.
pub trait CostModel: Send + Sync {
    /// Predicted cost of one configuration's features.
    fn predict(&self, features: &[f64]) -> f64;
    /// Re-trains from scratch on the measurement history.
    fn train(&mut self, rows: &[Vec<f64>], costs: &[f64]);
    /// Whether the model has been trained at least once.
    fn is_trained(&self) -> bool;
}

/// GBT-backed cost model (the paper's XGBoost stand-in). Trains on
/// log-cost for scale robustness; predictions return to linear space.
pub struct GbtCostModel {
    model: Option<Gbrt>,
    params: GbrtParams,
    seed: u64,
}

impl GbtCostModel {
    pub fn new(params: GbrtParams, seed: u64) -> Self {
        Self { model: None, params, seed }
    }
}

impl Default for GbtCostModel {
    fn default() -> Self {
        Self::new(GbrtParams::default(), 0x5eed)
    }
}

impl CostModel for GbtCostModel {
    fn predict(&self, features: &[f64]) -> f64 {
        match &self.model {
            Some(m) => m.predict(features).exp(),
            None => 1.0,
        }
    }

    fn train(&mut self, rows: &[Vec<f64>], costs: &[f64]) {
        if rows.is_empty() {
            return;
        }
        let log_costs: Vec<f64> = costs.iter().map(|c| c.max(1e-9).ln()).collect();
        let mut rng = StdRng::seed_from_u64(self.seed);
        self.model = Some(Gbrt::fit(rows, &log_costs, self.params, &mut rng));
    }

    fn is_trained(&self) -> bool {
        self.model.is_some()
    }
}

/// A model that knows nothing: constant predictions. Guided searchers
/// degrade gracefully to unguided exploration with it.
#[derive(Default)]
pub struct NoModel;

impl CostModel for NoModel {
    fn predict(&self, _features: &[f64]) -> f64 {
        1.0
    }
    fn train(&mut self, _rows: &[Vec<f64>], _costs: &[f64]) {}
    fn is_trained(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untrained_model_is_flat() {
        let m = GbtCostModel::default();
        assert!(!m.is_trained());
        assert_eq!(m.predict(&[1.0, 2.0]), m.predict(&[5.0, -3.0]));
    }

    #[test]
    fn trained_model_orders_simple_costs() {
        let rows: Vec<Vec<f64>> = (1..=60).map(|i| vec![i as f64, 1.0]).collect();
        let costs: Vec<f64> = (1..=60).map(|i| i as f64 * 0.1).collect();
        let mut m = GbtCostModel::default();
        m.train(&rows, &costs);
        assert!(m.is_trained());
        assert!(m.predict(&[5.0, 1.0]) < m.predict(&[55.0, 1.0]));
    }

    #[test]
    fn log_space_handles_wide_cost_ranges() {
        let rows: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64]).collect();
        let costs: Vec<f64> = (0..40).map(|i| 10f64.powi(i / 10)).collect();
        let mut m = GbtCostModel::default();
        m.train(&rows, &costs);
        let lo = m.predict(&[2.0]);
        let hi = m.predict(&[38.0]);
        assert!(hi / lo > 100.0, "hi {hi} lo {lo}");
    }

    #[test]
    fn empty_training_is_a_noop() {
        let mut m = GbtCostModel::default();
        m.train(&[], &[]);
        assert!(!m.is_trained());
    }

    #[test]
    fn no_model_is_constant() {
        let mut m = NoModel;
        m.train(&[vec![1.0]], &[5.0]);
        assert!(!m.is_trained());
        assert_eq!(m.predict(&[9.9]), 1.0);
    }
}
