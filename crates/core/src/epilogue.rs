//! Fused operator epilogues and their composite I/O lower bounds.
//!
//! A convolution layer in a real network is almost never the end of the
//! chain: a ReLU follows it, and often a pooling reduction follows that.
//! Executed separately, each op round-trips the full intermediate tensor
//! through slow memory. Executed **fused**, the epilogue is applied to
//! the convolution's output tile while it is still register/cache
//! resident and the intermediate never touches slow memory at all —
//! exactly the composite-kernel setting of the paper's §4.1.3–4.1.4
//! machinery.
//!
//! This module gives the fused chain a first-class identity:
//!
//! * [`Epilogue`] names what follows the convolution (nothing, `relu`,
//!   or `relu` + a non-overlapping `k x k` max-pool) with a canonical
//!   string tag, so a fused workload fingerprints differently from its
//!   conv-only sibling.
//! * [`EpilogueMapStep`] / [`EpiloguePoolStep`] are the [`StepBound`]s
//!   of the two epilogue sub-computations, letting the generic
//!   [`crate::composite`] maximisation produce a *real* composite
//!   `Q_lower` for the whole chain via [`fused_io_lower_bound`].
//! * [`Epilogue::unfused_epilogue_traffic`] / [`Epilogue::fused_write_delta`] quantify the
//!   slow-memory traffic the fusion decision is about — the analytic
//!   inputs of the serving layer's fusion gate.
//!
//! Only non-overlapping pools (`stride == k`) are representable: an
//! overlapping pool window needs neighbouring conv output tiles, which
//! breaks the tile-local fusion contract. Chains with other pool
//! geometries simply stay unfused.

use crate::optimality::TileKind;
use crate::phi_psi::{direct_steps, winograd_steps, StepBound};
use crate::shapes::ConvShape;

/// What follows a convolution inside one fused block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Epilogue {
    /// Bare convolution — the unfused identity. Workloads with this
    /// epilogue fingerprint exactly as they did before fusion existed.
    #[default]
    None,
    /// `relu(x) = max(0, x)` applied elementwise to the conv output.
    Relu,
    /// ReLU followed by a non-overlapping `k x k` max-pool
    /// (`stride == k`). `k >= 2`.
    ReluPool {
        /// Pool window edge (and stride).
        k: usize,
    },
}

impl Epilogue {
    /// Whether this is the unfused identity.
    pub fn is_none(&self) -> bool {
        matches!(self, Epilogue::None)
    }

    /// Canonical tag appended to fingerprints and wire lines. Empty for
    /// [`Epilogue::None`], so pre-fusion fingerprints are unchanged.
    pub fn tag(&self) -> String {
        match self {
            Epilogue::None => String::new(),
            Epilogue::Relu => "+relu".to_string(),
            Epilogue::ReluPool { k } => format!("+relu+pool{k}"),
        }
    }

    /// Inverse of [`tag`](Self::tag).
    pub fn parse_tag(tag: &str) -> Result<Epilogue, String> {
        if tag.is_empty() {
            return Ok(Epilogue::None);
        }
        if tag == "+relu" {
            return Ok(Epilogue::Relu);
        }
        if let Some(k) = tag.strip_prefix("+relu+pool") {
            let k: usize = k.parse().map_err(|_| format!("bad epilogue tag {tag:?}"))?;
            if k < 2 {
                return Err(format!("pool window {k} must be >= 2"));
            }
            return Ok(Epilogue::ReluPool { k });
        }
        Err(format!("unknown epilogue tag {tag:?}"))
    }

    /// The block's final output extent given the conv output extent:
    /// identical for `None`/`Relu`, divided by `k` for the pool.
    /// `None` when the pool window does not tile the conv output evenly
    /// (such a chain is not fusable — see [`fusable_on`](Self::fusable_on)).
    pub fn out_extent(&self, conv_extent: usize) -> Option<usize> {
        match self {
            Epilogue::None | Epilogue::Relu => Some(conv_extent),
            Epilogue::ReluPool { k } => {
                if conv_extent.is_multiple_of(*k) {
                    Some(conv_extent / k)
                } else {
                    None
                }
            }
        }
    }

    /// Whether the epilogue can fuse onto this conv shape at all: the
    /// pool window must tile the conv output exactly in both spatial
    /// dimensions (an uneven edge would need cross-tile neighbours).
    pub fn fusable_on(&self, shape: &ConvShape) -> bool {
        self.out_extent(shape.hout()).is_some() && self.out_extent(shape.wout()).is_some()
    }

    /// Final output elements of the fused block across the batch.
    /// `None` when the chain is not fusable on `shape`.
    pub fn out_elems(&self, shape: &ConvShape) -> Option<u64> {
        let h = self.out_extent(shape.hout())? as u64;
        let w = self.out_extent(shape.wout())? as u64;
        Some(shape.batch as u64 * shape.cout as u64 * h * w)
    }

    /// Vertices the epilogue sub-DAG adds on top of the convolution's
    /// `|V|`: one ReLU vertex per conv output, plus (for the pool) the
    /// comparison tree over each `k x k` window — `k^2 - 1` internal
    /// vertices per pooled output, i.e. `conv_out - pooled` max vertices
    /// plus the `pooled` outputs themselves equal `conv_out` again.
    pub fn extra_vertices(&self, shape: &ConvShape) -> f64 {
        let conv_out = shape.output_elems() as f64;
        match self {
            Epilogue::None => 0.0,
            Epilogue::Relu => conv_out,
            // relu vertices + max-tree vertices (each window's k^2-leaf
            // tournament has k^2 - 1 vertices; summed over windows that
            // is conv_out - pooled, and the roots are the outputs).
            Epilogue::ReluPool { .. } => {
                let pooled = self.out_elems(shape).map_or(conv_out, |p| p as f64);
                conv_out + (conv_out - pooled)
            }
        }
    }

    /// Slow-memory traffic (elements) the *unfused* composition pays on
    /// top of the convolution's own I/O: every intermediate round-trips.
    /// ReLU reads and writes the full conv output; the pool then reads
    /// it again and writes the pooled tensor.
    pub fn unfused_epilogue_traffic(&self, shape: &ConvShape) -> f64 {
        let conv_out = shape.output_elems() as f64;
        match self {
            Epilogue::None => 0.0,
            Epilogue::Relu => 2.0 * conv_out,
            Epilogue::ReluPool { .. } => {
                let pooled = self.out_elems(shape).map_or(conv_out, |p| p as f64);
                3.0 * conv_out + pooled
            }
        }
    }

    /// Change in the convolution's own *write* traffic under fusion
    /// (elements, `<= 0`): a fused pool writes the pooled tensor instead
    /// of the full conv output; a fused ReLU writes the same volume.
    pub fn fused_write_delta(&self, shape: &ConvShape) -> f64 {
        let conv_out = shape.output_elems() as f64;
        match self {
            Epilogue::None | Epilogue::Relu => 0.0,
            Epilogue::ReluPool { .. } => {
                let pooled = self.out_elems(shape).map_or(conv_out, |p| p as f64);
                pooled - conv_out
            }
        }
    }

    /// Extra arithmetic the epilogue performs (operation count): one
    /// `max` per ReLU element, `k^2 - 1` comparisons per pooled output.
    pub fn flops(&self, shape: &ConvShape) -> f64 {
        let conv_out = shape.output_elems() as f64;
        match self {
            Epilogue::None => 0.0,
            Epilogue::Relu => conv_out,
            Epilogue::ReluPool { .. } => {
                let pooled = self.out_elems(shape).map_or(conv_out, |p| p as f64);
                conv_out + (conv_out - pooled)
            }
        }
    }

    /// The epilogue's own [`StepBound`] sequence, appended after the
    /// convolution's steps by [`fused_steps`].
    pub fn steps(&self) -> Vec<Box<dyn StepBound>> {
        match self {
            Epilogue::None => Vec::new(),
            Epilogue::Relu => vec![Box::new(EpilogueMapStep)],
            Epilogue::ReluPool { k } => {
                vec![Box::new(EpilogueMapStep), Box::new(EpiloguePoolStep { k: *k })]
            }
        }
    }
}

impl std::fmt::Display for Epilogue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Epilogue::None => write!(f, "none"),
            Epilogue::Relu => write!(f, "relu"),
            Epilogue::ReluPool { k } => write!(f, "relu+pool{k}"),
        }
    }
}

/// The elementwise ReLU step: each available input yields exactly one
/// output vertex, so `phi(h) = psi(h) = h` — a pure map has no internal
/// vertices and no fan-in.
#[derive(Debug, Clone, Copy, Default)]
pub struct EpilogueMapStep;

impl StepBound for EpilogueMapStep {
    fn phi(&self, _s: f64, h: f64) -> f64 {
        h.max(0.0)
    }
    fn name(&self) -> &'static str {
        "epilogue/relu"
    }
}

/// The `k x k` max-pool step: per pooled output a `k^2`-leaf comparison
/// tree. Like the direct convolution's summation trees (Lemma 4.7),
/// `h` available inputs generate at most `h - 1` tree vertices; at most
/// `h / k^2` of them can be tree *roots* (outputs).
#[derive(Debug, Clone, Copy)]
pub struct EpiloguePoolStep {
    /// Pool window edge (and stride).
    pub k: usize,
}

impl StepBound for EpiloguePoolStep {
    fn phi(&self, _s: f64, h: f64) -> f64 {
        (h - 1.0).max(0.0)
    }
    fn psi(&self, s: f64, h: f64) -> f64 {
        let window = (self.k * self.k) as f64;
        (h / window).min(self.phi(s, h)).max(0.0)
    }
    fn name(&self) -> &'static str {
        "epilogue/maxpool"
    }
}

/// The full step sequence of a fused `conv -> epilogue` chain: the
/// convolution algorithm's own steps (Fig. 4 / Fig. 5) followed by the
/// epilogue's.
pub fn fused_steps(
    shape: &ConvShape,
    kind: TileKind,
    epilogue: Epilogue,
) -> Vec<Box<dyn StepBound>> {
    let mut steps = match kind {
        TileKind::Direct => direct_steps(shape.reuse_factor()),
        TileKind::Winograd(tile) => winograd_steps(tile),
    };
    steps.extend(epilogue.steps());
    steps
}

/// `|V|` of the fused chain: the convolution's vertex count plus the
/// epilogue's extra vertices.
pub fn fused_vertex_count(shape: &ConvShape, kind: TileKind, epilogue: Epilogue) -> f64 {
    let conv_v = match kind {
        TileKind::Direct => crate::direct::vertex_count(shape) as f64,
        TileKind::Winograd(tile) => crate::winograd::vertex_count_exact(shape, tile) as f64,
    };
    conv_v + epilogue.extra_vertices(shape)
}

/// Composite I/O lower bound of the fused chain (Theorem 4.6 over the
/// chain's full step sequence): `Q >= S (|V| / T(2S) - 1)`. For
/// [`Epilogue::None`] this degenerates to the convolution's own
/// composite bound.
pub fn fused_io_lower_bound(shape: &ConvShape, kind: TileKind, epilogue: Epilogue, s: f64) -> f64 {
    let steps = fused_steps(shape, kind, epilogue);
    let v = fused_vertex_count(shape, kind, epilogue);
    crate::composite::io_lower_bound(&steps, v, s)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape() -> ConvShape {
        // 28x28 output, divisible by 2: pool-fusable.
        ConvShape::square(32, 28, 64, 3, 1, 1)
    }

    #[test]
    fn tags_round_trip() {
        for epi in [
            Epilogue::None,
            Epilogue::Relu,
            Epilogue::ReluPool { k: 2 },
            Epilogue::ReluPool { k: 3 },
        ] {
            assert_eq!(Epilogue::parse_tag(&epi.tag()).unwrap(), epi);
        }
        assert_eq!(Epilogue::None.tag(), "", "unfused tag must stay empty");
        assert!(Epilogue::parse_tag("+relu+pool1").is_err());
        assert!(Epilogue::parse_tag("+swish").is_err());
        assert!(Epilogue::parse_tag("+relu+poolx").is_err());
    }

    #[test]
    fn pool_requires_exact_tiling() {
        let s = shape(); // hout = wout = 28
        assert!(Epilogue::ReluPool { k: 2 }.fusable_on(&s));
        assert!(Epilogue::ReluPool { k: 4 }.fusable_on(&s));
        assert!(!Epilogue::ReluPool { k: 3 }.fusable_on(&s), "28 % 3 != 0");
        assert!(Epilogue::Relu.fusable_on(&s));
        let pooled = s.batch as u64 * s.cout as u64 * 14 * 14;
        assert_eq!(Epilogue::ReluPool { k: 2 }.out_elems(&s), Some(pooled));
    }

    #[test]
    fn epilogue_steps_are_monotone_and_psi_le_phi() {
        let steps: Vec<Box<dyn StepBound>> =
            vec![Box::new(EpilogueMapStep), Box::new(EpiloguePoolStep { k: 2 })];
        for s in [16.0, 4096.0] {
            for st in &steps {
                let mut prev_phi = f64::NEG_INFINITY;
                let mut prev_psi = f64::NEG_INFINITY;
                for h in [0.0, 1.0, 4.0, 64.0, 1e6] {
                    let p = st.phi(s, h);
                    let q = st.psi(s, h);
                    assert!(p >= prev_phi && q >= prev_psi, "{} not monotone", st.name());
                    assert!(q <= p + 1e-9, "{} psi > phi", st.name());
                    prev_phi = p;
                    prev_psi = q;
                }
            }
        }
    }

    #[test]
    fn fused_chain_grows_vertices_and_keeps_bound_positive() {
        // Appending an epilogue step both raises `|V|` and (because the
        // new step also generates vertices within a segment) raises
        // `T(2S)` — so the bound itself need not dominate the conv-only
        // bound, but it must stay positive and the vertex count must
        // grow strictly.
        let s = 4096.0;
        let shape = shape();
        let v_none = fused_vertex_count(&shape, TileKind::Direct, Epilogue::None);
        let v_relu = fused_vertex_count(&shape, TileKind::Direct, Epilogue::Relu);
        let v_pool = fused_vertex_count(&shape, TileKind::Direct, Epilogue::ReluPool { k: 2 });
        assert!(v_none < v_relu && v_relu < v_pool);
        for epi in [Epilogue::None, Epilogue::Relu, Epilogue::ReluPool { k: 2 }] {
            let q = fused_io_lower_bound(&shape, TileKind::Direct, epi, s);
            assert!(q > 0.0 && q.is_finite(), "{epi}: bound {q}");
        }
    }

    #[test]
    fn fused_bound_below_unfused_composition_traffic() {
        // The whole point of fusing: the chain's lower bound is below
        // what the unfused composition provably pays (conv bound plus
        // full intermediate round-trips).
        let s = 4096.0;
        let shape = shape();
        for epi in [Epilogue::Relu, Epilogue::ReluPool { k: 2 }] {
            let fused = fused_io_lower_bound(&shape, TileKind::Direct, epi, s);
            let unfused = fused_io_lower_bound(&shape, TileKind::Direct, Epilogue::None, s)
                + epi.unfused_epilogue_traffic(&shape);
            assert!(fused < unfused, "{epi}: fused bound {fused} >= unfused traffic {unfused}");
        }
    }

    #[test]
    fn traffic_model_shapes() {
        let s = shape();
        let out = s.output_elems() as f64;
        assert_eq!(Epilogue::None.unfused_epilogue_traffic(&s), 0.0);
        assert_eq!(Epilogue::Relu.unfused_epilogue_traffic(&s), 2.0 * out);
        let pool = Epilogue::ReluPool { k: 2 };
        assert_eq!(pool.unfused_epilogue_traffic(&s), 3.0 * out + out / 4.0);
        assert_eq!(pool.fused_write_delta(&s), out / 4.0 - out);
        assert_eq!(Epilogue::Relu.fused_write_delta(&s), 0.0);
    }

    #[test]
    fn winograd_chain_bound_is_positive() {
        let s = 4096.0;
        let shape = ConvShape::square(64, 28, 64, 3, 1, 1);
        let kind = TileKind::Winograd(crate::shapes::WinogradTile::F2X3);
        let q = fused_io_lower_bound(&shape, kind, Epilogue::Relu, s);
        assert!(q > 0.0);
    }
}
