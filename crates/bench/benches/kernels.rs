//! Criterion micro-benchmarks of the real CPU compute substrate:
//! reference conv vs im2col+GEMM vs Winograd vs the tiled dataflow
//! executors. These measure actual wall-clock on this machine (unlike the
//! fig*/tab* harnesses, which measure simulated GPU time).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use iolb_core::shapes::WinogradTile;
use iolb_dataflow::config::ScheduleConfig;
use iolb_dataflow::exec::{execute_direct, execute_winograd};
use iolb_tensor::conv_ref::{conv2d_reference, ConvParams};
use iolb_tensor::im2col::conv2d_im2col;
use iolb_tensor::layout::Layout;
use iolb_tensor::tensor::Tensor4;
use iolb_tensor::winograd_conv::conv2d_winograd;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn conv_paths(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    // A small ResNet-ish layer kept modest so the reference path stays
    // benchable.
    let input = Tensor4::random(1, 32, 28, 28, &mut rng);
    let weights = Tensor4::random(32, 32, 3, 3, &mut rng);
    let params = ConvParams::new(1, 1);

    let mut group = c.benchmark_group("conv2d-28x28x32x32-3x3");
    group.sample_size(20);
    group.bench_function("reference", |b| {
        b.iter(|| black_box(conv2d_reference(&input, &weights, params)))
    });
    group.bench_function("im2col-gemm", |b| {
        b.iter(|| black_box(conv2d_im2col(&input, &weights, params, 4)))
    });
    group.bench_function("winograd-f2x3", |b| {
        b.iter(|| black_box(conv2d_winograd(&input, &weights, params, 2)))
    });
    group.bench_function("winograd-f4x3", |b| {
        b.iter(|| black_box(conv2d_winograd(&input, &weights, params, 4)))
    });
    let cfg = ScheduleConfig {
        x: 14,
        y: 14,
        z: 8,
        nxt: 1,
        nyt: 1,
        nzt: 1,
        sb_bytes: 48 * 1024,
        layout: Layout::Chw,
    };
    group.bench_function("dataflow-direct-4workers", |b| {
        b.iter(|| black_box(execute_direct(&input, &weights, params, &cfg, 4)))
    });
    let wcfg = ScheduleConfig { x: 14, y: 14, z: 8, ..cfg };
    group.bench_function("dataflow-winograd-4workers", |b| {
        b.iter(|| {
            black_box(execute_winograd(&input, &weights, params, WinogradTile::F2X3, &wcfg, 4))
        })
    });
    group.finish();
}

fn gemm_scaling(c: &mut Criterion) {
    use iolb_tensor::gemm::{gemm, MatRef};
    let mut rng = StdRng::seed_from_u64(2);
    let mut group = c.benchmark_group("gemm");
    group.sample_size(20);
    for n in [64usize, 128, 256] {
        let a: Vec<f32> = (0..n * n).map(|_| rand::Rng::gen_range(&mut rng, -1.0..1.0)).collect();
        let b_: Vec<f32> = (0..n * n).map(|_| rand::Rng::gen_range(&mut rng, -1.0..1.0)).collect();
        for threads in [1usize, 4] {
            group.bench_with_input(
                BenchmarkId::new(format!("{n}x{n}x{n}"), threads),
                &threads,
                |bench, &t| {
                    let mut c_buf = vec![0.0f32; n * n];
                    bench.iter(|| {
                        gemm(MatRef::new(&a, n, n), MatRef::new(&b_, n, n), &mut c_buf, t);
                        black_box(&c_buf);
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, conv_paths, gemm_scaling);
criterion_main!(benches);
