//! Table 2 — TVM vs the auto-tuning engine (ATE) on V100 for AlexNet's
//! conv layers: search-space sizes, measurements to converge, and the best
//! solution's GFLOP/s. `conv3_wino`/`conv4_wino` tune the Winograd
//! implementation of conv3/conv4.
//!
//! With `--records <store.jsonl>` both tuners run against a persistent
//! tuning-record store in **cache-only** mode (cached measurements
//! replay bit-identically, fresh ones are appended and saved back), so
//! repeated table builds are incremental while the TVM-vs-ATE
//! comparison stays untouched — warm-starting is off because it would
//! seed each tuner from the other's records of the same workload.

use iolb_autotune::ConfigSpace;
use iolb_bench::{
    banner, load_store_or_exit, records_flag, run_tuner, run_tuner_with_store, save_store_or_exit,
    StoreMode, TunerKind,
};
use iolb_core::optimality::TileKind;
use iolb_core::shapes::{ConvShape, WinogradTile};
use iolb_gpusim::DeviceSpec;

struct Case {
    name: &'static str,
    shape: ConvShape,
    kind: TileKind,
}

fn main() {
    let device = DeviceSpec::v100();
    banner(
        "Table 2: TVM stand-in vs Auto-Tuning Engine (ATE)",
        "AlexNet conv layers on Tesla V100 (simulated); budget 240 measurements",
    );

    let wino = TileKind::Winograd(WinogradTile::F2X3);
    let cases = [
        Case {
            name: "conv1",
            shape: ConvShape::new(3, 227, 227, 96, 11, 11, 4, 0),
            kind: TileKind::Direct,
        },
        Case {
            name: "conv2",
            shape: ConvShape::new(96, 27, 27, 256, 5, 5, 1, 2),
            kind: TileKind::Direct,
        },
        Case {
            name: "conv3",
            shape: ConvShape::new(256, 13, 13, 384, 3, 3, 1, 1),
            kind: TileKind::Direct,
        },
        Case {
            name: "conv4",
            shape: ConvShape::new(384, 13, 13, 256, 3, 3, 1, 1),
            kind: TileKind::Direct,
        },
        Case {
            name: "conv3_wino",
            shape: ConvShape::new(256, 13, 13, 384, 3, 3, 1, 1),
            kind: wino,
        },
        Case {
            name: "conv4_wino",
            shape: ConvShape::new(384, 13, 13, 256, 3, 3, 1, 1),
            kind: wino,
        },
    ];

    println!(
        "{:<12} {:>12} {:>12} {:>9} {:>10} {:>10} {:>9} {:>11} {:>11} {:>9}",
        "layer",
        "space(TVM)",
        "space(ATE)",
        "ATE/TVM",
        "iter(TVM)",
        "iter(ATE)",
        "TVM/ATE",
        "GF(TVM)",
        "GF(ATE)",
        "ATE/TVM"
    );
    let budget = 800;
    let records = records_flag();
    let mut store = records.as_deref().map(load_store_or_exit);
    let mut cache_hits = 0usize;
    let mut fresh = 0usize;
    let mut tuned = |kind: TunerKind,
                     shape: &ConvShape,
                     tile: TileKind,
                     device: &DeviceSpec,
                     store: &mut Option<iolb_records::RecordStore>|
     -> iolb_autotune::TuneResult {
        match store.as_mut() {
            Some(store) => {
                let out = run_tuner_with_store(
                    kind,
                    shape,
                    tile,
                    device,
                    budget,
                    11,
                    store,
                    StoreMode::CacheOnly,
                )
                .expect("tuning run");
                cache_hits += out.cache_hits;
                fresh += out.fresh_measurements;
                out.result
            }
            None => run_tuner(kind, shape, tile, device, budget, 11).expect("tuning run"),
        }
    };
    // Iterations are compared at a common quality bar: the first attempt
    // at which each tuner reaches 95% of the weaker tuner's final best
    // (both are guaranteed to get there), mirroring the paper's
    // "iterations during searching the optimal implementation".
    let iters_to = |r: &iolb_autotune::TuneResult, bar: f64| -> usize {
        r.curve.iter().find(|p| p.best_gflops >= bar).map_or(r.measurements, |p| p.measurement)
    };
    for case in &cases {
        let full = ConfigSpace::new(case.shape, case.kind, device.smem_per_sm, false);
        let pruned = ConfigSpace::new(case.shape, case.kind, device.smem_per_sm, true);
        let n_full = full.count();
        let n_pruned = pruned.count();

        let tvm = tuned(TunerKind::TvmSa, &case.shape, case.kind, &device, &mut store);
        let ate = tuned(TunerKind::Ate, &case.shape, case.kind, &device, &mut store);

        let bar = 0.95 * tvm.best_gflops.min(ate.best_gflops);
        let it_tvm = iters_to(&tvm, bar);
        let it_ate = iters_to(&ate, bar);
        println!(
            "{:<12} {:>12} {:>12} {:>8.1}% {:>10} {:>10} {:>8.2}x {:>11.1} {:>11.1} {:>8.2}x",
            case.name,
            n_full,
            n_pruned,
            100.0 * n_pruned as f64 / n_full as f64,
            it_tvm,
            it_ate,
            it_tvm as f64 / it_ate.max(1) as f64,
            tvm.best_gflops,
            ate.best_gflops,
            ate.best_gflops / tvm.best_gflops,
        );
    }
    println!();
    println!("Paper reference: ATE space is 21-53% of TVM's; ATE converges 0.7-2.3x");
    println!("faster in iterations; final GFLOP/s >= TVM's (1.00-1.84x).");

    if let (Some(store), Some(path)) = (&store, &records) {
        println!(
            "\nRecord store: {cache_hits} of {} attempts replayed from cache, {fresh} fresh",
            cache_hits + fresh
        );
        save_store_or_exit(store, path);
    }
}
