//! `tune-cache` — inspect, verify, compact, merge, shard and evict
//! tuning-record stores (the operational face of `iolb-records` and
//! `iolb-service`).
//!
//! ```console
//! $ tune-cache stats   store.jsonl              # size / workload summary, per-device breakdown
//! $ tune-cache top     store.jsonl [--k N]      # best records per workload
//! $ tune-cache check   store.jsonl              # codec gate (CI): canonical + stable round-trip
//! $ tune-cache compact store.jsonl --keep N [-o out.jsonl]
//! $ tune-cache merge   -o out.jsonl a.jsonl b.jsonl [...]
//! $ tune-cache gen     store.jsonl              # deterministically tune two small layers into a store
//! $ tune-cache shard   store.jsonl -o shards/   # split into device shards (manifest + file per device)
//! $ tune-cache shard   shards/ -o store.jsonl   # cross-shard merge back into one flat store
//! $ tune-cache evict   shards/ --max-records N [--top-k K]
//! $ tune-cache serve-stats shards/              # manifest, LRU and per-device summary
//! ```
//!
//! `check` is wired into CI against a committed fixture store: it fails
//! (exit 1) if any line no longer parses, if the file is not in the
//! canonical serialization the current codec produces, or if
//! parse→serialize→parse→serialize is not byte-stable — i.e. any codec
//! regression that would corrupt or silently rewrite users' stores.
//! The `shard`/`evict`/`serve-stats` path is smoke-tested by CI too, so
//! the service's on-disk format cannot rot.

use iolb_bench::{
    load_store_or_exit, run_tuner_with_store, save_store_or_exit, StoreMode, TunerKind,
};
use iolb_cnn::inference::{time_network_with_backend, time_network_with_service};
use iolb_cnn::layers::{ConvLayer, Network};
use iolb_cnn::{NetworkTime, ServiceEconomics};
use iolb_core::optimality::TileKind;
use iolb_core::shapes::ConvShape;
use iolb_gpusim::DeviceSpec;
use iolb_records::RecordStore;
use iolb_service::{
    Backend, Daemon, DaemonConfig, DirLock, EvictionPolicy, FleetRouter, MetricsSnapshot, PeerAddr,
    PerturbationKind, ServiceConfig, ServiceSnapshot, ShardedStore, SocketBackend, StatsReport,
    TcpBackend, TuningService, LOCK_TIMEOUT, SOCKET_FILE,
};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Duration;

fn usage() -> ExitCode {
    eprintln!(
        "usage: tune-cache <stats|top|check|compact|merge|gen|shard|evict|serve-stats|metrics|check-bench|tune-net|serve|stop> [args]\n\
         \n\
         stats   <store>                    record/workload counts and cost ranges,\n\
         \u{20}                                  broken down per device (store may be a shard dir)\n\
         top     <store> [--k N]            best N records per workload (default 3)\n\
         check   <store>                    exit non-zero unless the store parses cleanly,\n\
         \u{20}                                  is canonical, and round-trips byte-identically\n\
         compact <store> --keep N [-o OUT]  keep only the N best records per workload\n\
         merge   -o OUT <in> [<in>...]      merge stores (best cost wins on duplicates)\n\
         gen     <store>                    generate a small deterministic store by tuning\n\
         \u{20}                                  two AlexNet-style layers (fixture/demo)\n\
         shard   <store.jsonl> -o DIR       split a flat store into device shards\n\
         shard   <DIR> -o OUT.jsonl         merge a shard directory back into a flat store\n\
         evict   <DIR|store> --max-records N [--top-k K]\n\
         \u{20}                                  LRU-evict cold workloads down to their K best\n\
         \u{20}                                  (never dropping a workload's best record;\n\
         \u{20}                                  shard dirs are locked against other writers)\n\
         serve-stats <DIR> [--json]         manifest, LRU, per-device shard summary and the\n\
         \u{20}                                  service stats sidecar (queue depth, budget,\n\
         \u{20}                                  speculation telemetry); --json emits the sidecar\n\
         \u{20}                                  as one flat JSON object instead\n\
         metrics <DIR|SOCK|tcp:HOST:PORT>   Prometheus-style text exposition: from a live\n\
         \u{20}                                  daemon (socket/TCP, including latency\n\
         \u{20}                                  histograms) or a directory's stats sidecar\n\
         check-bench <FILE> [--baseline BASE] [--tolerance PCT]\n\
         \u{20}                                  exit non-zero unless FILE is a schema-valid\n\
         \u{20}                                  benchmark artifact: BENCH_replay.json (from\n\
         \u{20}                                  `tune-bench replay`; a --fuse run must show the\n\
         \u{20}                                  fused plan beating per-layer) or\n\
         \u{20}                                  BENCH_kernels.json (from `tune-bench kernels`;\n\
         \u{20}                                  also fails if the vector path lost to scalar on\n\
         \u{20}                                  the largest GEMM row). With --baseline, FILE\n\
         \u{20}                                  must be a replay artifact and its embedded and\n\
         \u{20}                                  daemon throughput must not regress more than\n\
         \u{20}                                  PCT percent (default 25) below BASE's\n\
         tune-net <network|--layers SPEC> (-o DIR | --daemon SOCK | --fleet PEERS) [--json]\n\
         \u{20}                                  [--budget N] [--seed N] [--workers N]\n\
         \u{20}                                  batch-tune a whole network in one session. With\n\
         \u{20}                                  -o DIR, tune embedded and merge the records into\n\
         \u{20}                                  DIR under its advisory lock (multi-process safe);\n\
         \u{20}                                  with --daemon SOCK, send the session to a resident\n\
         \u{20}                                  shard server (budget/seed/workers are then the\n\
         \u{20}                                  daemon's); with --fleet PEERS (comma-separated\n\
         \u{20}                                  tcp:HOST:PORT / unix:PATH specs, flag repeatable),\n\
         \u{20}                                  consistent-hash the session across N daemons and\n\
         \u{20}                                  fail over if one dies. <network> is a model name\n\
         \u{20}                                  (alexnet, vgg-19, ...); SPEC is layers as\n\
         \u{20}                                  cin,hin,win,cout,kh,kw,stride,pad;...\n\
         \u{20}                                  --json replaces the human summary with one flat\n\
         \u{20}                                  JSON object (per-layer costs, economics, peers)\n\
         serve   <DIR> [--socket PATH] [--tcp HOST:PORT] [--budget N] [--seed N]\n\
         \u{20}                                  [--workers N] [--merge-interval-ms N]\n\
         \u{20}                                  [--idle-timeout SECS] [--peer SPEC]...\n\
         \u{20}                                  [--peer-sync-ms N] [--anchor-floor N]\n\
         \u{20}                                  [--transfer-gap-permille N]\n\
         \u{20}                                  [--evict-max-records N] [--evict-top-k K]\n\
         \u{20}                                  run a resident shard-server daemon: hold DIR's\n\
         \u{20}                                  lock for the daemon's lifetime, serve sessions on\n\
         \u{20}                                  PATH (default DIR/daemon.sock) and optionally on\n\
         \u{20}                                  TCP (port 0 picks a free port, printed at start),\n\
         \u{20}                                  batch persistence on the merge interval, drop idle\n\
         \u{20}                                  connections, anti-entropy-pull every --peer\n\
         \u{20}                                  daemon on the sync interval (default 5000 ms),\n\
         \u{20}                                  and (with --evict-max-records) trim the store to\n\
         \u{20}                                  N records on each persister tick, coldest\n\
         \u{20}                                  workload first, keeping K best records per\n\
         \u{20}                                  trimmed workload (best-cost never evicted)\n\
         stop    <SOCK|tcp:HOST:PORT>       ask the daemon there to persist and exit\n\
         \n\
         every directory-locking command also takes --lock-timeout SECS\n\
         (default 30): how long to wait for the advisory lock before\n\
         failing with a typed timeout"
    );
    ExitCode::from(2)
}

/// The `--lock-timeout SECS` flag (default [`LOCK_TIMEOUT`]).
fn lock_timeout_flag(args: &[String]) -> Duration {
    flag_value(args, "--lock-timeout")
        .map(|s| Duration::from_secs(s as u64))
        .unwrap_or(LOCK_TIMEOUT)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    match (cmd.as_str(), &args[1..]) {
        ("stats", [store]) => stats(Path::new(store)),
        ("top", [store, rest @ ..]) => top(Path::new(store), flag_value(rest, "--k").unwrap_or(3)),
        ("check", [store]) => check(Path::new(store)),
        ("compact", [store, rest @ ..]) => {
            let Some(keep) = flag_value(rest, "--keep") else {
                eprintln!("compact requires --keep N");
                return ExitCode::from(2);
            };
            let out = flag_path(rest, "-o").unwrap_or_else(|| PathBuf::from(store));
            compact(Path::new(store), keep, &out)
        }
        ("merge", rest) => {
            let Some(out) = flag_path(rest, "-o") else {
                eprintln!("merge requires -o OUT");
                return ExitCode::from(2);
            };
            let inputs: Vec<&String> = rest
                .iter()
                .skip_while(|a| *a != "-o")
                .skip(2)
                .chain(rest.iter().take_while(|a| *a != "-o"))
                .collect();
            if inputs.is_empty() {
                eprintln!("merge requires at least one input store");
                return ExitCode::from(2);
            }
            merge(&inputs, &out)
        }
        ("gen", [store]) => gen(Path::new(store)),
        ("shard", [input, rest @ ..]) => {
            let Some(out) = flag_path(rest, "-o") else {
                eprintln!("shard requires -o OUT (a directory for split, a .jsonl for merge)");
                return ExitCode::from(2);
            };
            shard(Path::new(input), &out, lock_timeout_flag(rest))
        }
        ("evict", [input, rest @ ..]) => {
            let Some(max_records) = flag_value(rest, "--max-records") else {
                eprintln!("evict requires --max-records N");
                return ExitCode::from(2);
            };
            let top_k = flag_value(rest, "--top-k").unwrap_or(EvictionPolicy::default().top_k);
            evict(Path::new(input), EvictionPolicy { max_records, top_k }, lock_timeout_flag(rest))
        }
        ("serve-stats", [dir, rest @ ..]) => {
            serve_stats(Path::new(dir), rest.iter().any(|a| a == "--json"))
        }
        ("metrics", [target]) => metrics_cmd(target),
        ("check-bench", [file, rest @ ..]) => {
            let baseline = flag_path(rest, "--baseline");
            let tolerance = flag_value(rest, "--tolerance").unwrap_or(25);
            check_bench(Path::new(file), baseline.as_deref(), tolerance)
        }
        ("serve", [dir, rest @ ..]) => {
            let socket =
                flag_path(rest, "--socket").unwrap_or_else(|| Path::new(dir).join(SOCKET_FILE));
            let config = DaemonConfig {
                service: ServiceConfig {
                    budget_per_workload: flag_value(rest, "--budget").unwrap_or(16),
                    seed: flag_value(rest, "--seed").unwrap_or(7) as u64,
                    workers: flag_value(rest, "--workers")
                        .unwrap_or(ServiceConfig::default().workers),
                    speculate_neighbors: false, // serve exactly what clients ask
                    lock_timeout: lock_timeout_flag(rest),
                    anchor_floor: flag_value(rest, "--anchor-floor")
                        .unwrap_or(ServiceConfig::default().anchor_floor),
                    transfer_gap_permille: flag_value(rest, "--transfer-gap-permille")
                        .map(|v| v as u32)
                        .unwrap_or(ServiceConfig::default().transfer_gap_permille),
                    ..ServiceConfig::default()
                },
                merge_interval: Duration::from_millis(
                    flag_value(rest, "--merge-interval-ms").unwrap_or(1000) as u64,
                ),
                idle_timeout: Duration::from_secs(
                    flag_value(rest, "--idle-timeout").unwrap_or(30) as u64
                ),
                tcp: flag_string(rest, "--tcp"),
                peers: flag_strings(rest, "--peer").iter().map(|s| PeerAddr::parse(s)).collect(),
                peer_sync_interval: Duration::from_millis(
                    flag_value(rest, "--peer-sync-ms").unwrap_or(5000) as u64,
                ),
                evict: flag_value(rest, "--evict-max-records").map(|max_records| EvictionPolicy {
                    max_records,
                    top_k: flag_value(rest, "--evict-top-k")
                        .unwrap_or(EvictionPolicy::default().top_k),
                }),
            };
            serve(Path::new(dir), &socket, config)
        }
        ("stop", [spec]) => stop(spec),
        ("tune-net", [target, rest @ ..]) => {
            let daemon = flag_path(rest, "--daemon");
            let out = flag_path(rest, "-o");
            let fleet: Vec<String> = flag_strings(rest, "--fleet")
                .iter()
                .flat_map(|group| group.split(','))
                .map(|s| s.trim().to_string())
                .filter(|s| !s.is_empty())
                .collect();
            if daemon.is_none() && out.is_none() && fleet.is_empty() {
                eprintln!(
                    "tune-net requires -o DIR (embedded; merge into the shard directory), \
                     --daemon SOCK (send the session to a resident daemon), \
                     or --fleet PEERS (route it across a daemon fleet)"
                );
                return ExitCode::from(2);
            }
            let layers = if target == "--layers" {
                match rest.first().map(String::as_str).map(parse_layers) {
                    Some(Ok(layers)) => layers,
                    Some(Err(e)) => {
                        eprintln!("error: bad --layers spec: {e}");
                        return ExitCode::from(2);
                    }
                    None => {
                        eprintln!("--layers requires a spec argument");
                        return ExitCode::from(2);
                    }
                }
            } else {
                match named_network_layers(target) {
                    Some(layers) => layers,
                    None => {
                        eprintln!(
                            "error: unknown network {target:?}; known: {}",
                            iolb_cnn::models::all_networks()
                                .iter()
                                .map(|n| n.name.to_ascii_lowercase())
                                .collect::<Vec<_>>()
                                .join(", ")
                        );
                        return ExitCode::from(2);
                    }
                }
            };
            let json = rest.iter().any(|a| a == "--json");
            if !fleet.is_empty() {
                return tune_net_fleet(layers, &fleet, json);
            }
            if let Some(socket) = daemon {
                return tune_net_daemon(layers, &socket, json);
            }
            let budget = flag_value(rest, "--budget").unwrap_or(16);
            let seed = flag_value(rest, "--seed").unwrap_or(7) as u64;
            let workers = flag_value(rest, "--workers").unwrap_or(0);
            tune_net(
                layers,
                &out.expect("checked above"),
                budget,
                seed,
                workers,
                lock_timeout_flag(rest),
                json,
            )
        }
        _ => usage(),
    }
}

/// Parses a compact layer spec: `cin,hin,win,cout,kh,kw,stride,pad`
/// groups separated by `;`. Repeated groups are allowed (and exercised
/// by the session's dedup).
fn parse_layers(spec: &str) -> Result<Vec<ConvShape>, String> {
    let mut layers = Vec::new();
    for (i, group) in spec.split(';').filter(|g| !g.trim().is_empty()).enumerate() {
        let fields: Vec<usize> = group
            .split(',')
            .map(|f| f.trim().parse::<usize>().map_err(|e| format!("layer {i}: {e}")))
            .collect::<Result<_, _>>()?;
        let [cin, hin, win, cout, kh, kw, stride, pad] = fields.as_slice() else {
            return Err(format!("layer {i}: expected 8 fields, got {}", fields.len()));
        };
        let shape = ConvShape::new(*cin, *hin, *win, *cout, *kh, *kw, *stride, *pad);
        shape.validate().map_err(|e| format!("layer {i}: {e}"))?;
        layers.push(shape);
    }
    if layers.is_empty() {
        return Err("no layers in spec".to_string());
    }
    Ok(layers)
}

/// The conv layers of a named model (case-insensitive).
fn named_network_layers(name: &str) -> Option<Vec<ConvShape>> {
    let wanted = name.to_ascii_lowercase();
    iolb_cnn::models::all_networks()
        .into_iter()
        .find(|n| n.name.to_ascii_lowercase() == wanted)
        .map(|n| n.layers.iter().map(|l| l.shape).collect())
}

/// Builds the throwaway network a `tune-net` layer spec describes.
fn spec_network(layers: &[ConvShape]) -> Network {
    Network {
        name: "tune-net",
        layers: layers
            .iter()
            .enumerate()
            .map(|(i, &shape)| ConvLayer::new(format!("layer{i}"), shape))
            .collect(),
    }
}

/// The session summary both `tune-net` modes print (CI greps this line
/// for "0 fresh measurement(s)" on replay, so embedded and daemon mode
/// must emit the identical shape).
fn print_session_summary(net: &Network, timed: &NetworkTime, eco: &ServiceEconomics) {
    println!(
        "tuned {} layer(s) in one session: {:.6} ms total ({} deduped, {} hit(s), \
         {} anchored ({} re-tune(s)), {} stolen, {} tuned inline, {} fresh measurement(s), \
         {} cache hit(s))",
        net.layers.len(),
        timed.ours_ms,
        eco.deduped,
        eco.shard_hits,
        eco.anchored,
        eco.transfer_retunes,
        eco.stolen,
        eco.inline_tuned,
        eco.fresh_measurements,
        eco.cache_hits
    );
    for layer in &timed.layers {
        println!("  {:>10.6} ms  {:<14} {}", layer.ours_ms, layer.algorithm, layer.name);
    }
}

/// The `tune-net --json` end-of-run summary: one flat JSON object (the
/// record codec's dialect, so `parse_flat_object` reads it back), with
/// field names shared with `BENCH_replay.json` where the two overlap
/// (`fresh`, `hit_rate`, `requests`, `*_ms`).
fn print_session_json(
    mode: &str,
    net: &Network,
    timed: &NetworkTime,
    eco: &ServiceEconomics,
    peers: Option<(usize, usize)>,
) {
    let answered = eco.shard_hits + eco.anchored + eco.stolen + eco.inline_tuned;
    let hit_rate = if answered == 0 { 0.0 } else { eco.shard_hits as f64 / answered as f64 };
    let anchored_rate = if answered == 0 { 0.0 } else { eco.anchored as f64 / answered as f64 };
    let layer_ms: Vec<String> = timed
        .layers
        .iter()
        .map(|l| format!("{}={}", l.name.replace(['=', ';'], "_"), l.ours_ms))
        .collect();
    let mut line = format!(
        "{{\"schema\":\"iolb-tune-net\",\"v\":2,\"mode\":\"{}\",\"network\":\"{}\",\
         \"layers\":{},\"requests\":{},\"total_ms\":{},\"fresh\":{},\"hit_rate\":{},\
         \"anchored_hit_rate\":{},\"hits\":{},\"anchored\":{},\"retunes\":{},\"stolen\":{},\
         \"inline\":{},\"deduped\":{},\"cache_hits\":{}",
        iolb_records::jsonl::escape(mode),
        iolb_records::jsonl::escape(net.name),
        net.layers.len(),
        answered,
        timed.ours_ms,
        eco.fresh_measurements,
        hit_rate,
        anchored_rate,
        eco.shard_hits,
        eco.anchored,
        eco.transfer_retunes,
        eco.stolen,
        eco.inline_tuned,
        eco.deduped,
        eco.cache_hits,
    );
    if let Some((live, total)) = peers {
        line.push_str(&format!(",\"peers_live\":{live},\"peers_total\":{total}"));
    }
    line.push_str(&format!(
        ",\"layer_ms\":\"{}\"}}",
        iolb_records::jsonl::escape(&layer_ms.join(";"))
    ));
    println!("{line}");
}

/// Batch-tunes a whole network through one tuning session and merges
/// the records into the shard directory under its advisory lock — the
/// CLI face of the multi-process protocol: any number of `tune-net`
/// processes may target the same directory concurrently and the result
/// is the union of their records.
fn tune_net(
    layers: Vec<ConvShape>,
    dir: &Path,
    budget: usize,
    seed: u64,
    workers: usize,
    lock_timeout: Duration,
    json: bool,
) -> ExitCode {
    let device = DeviceSpec::v100();
    let config = ServiceConfig {
        budget_per_workload: budget,
        workers,
        speculate_neighbors: false, // tune exactly what was asked
        lock_timeout,
        seed,
        ..ServiceConfig::default()
    };
    // Load whatever the directory already holds: overlapping layers
    // replay instead of re-tuning (runs are hermetic, so a replayed and
    // a re-tuned config are bit-identical anyway).
    let (service, report) = match TuningService::open(dir, config) {
        Ok(ok) => ok,
        Err(e) => {
            eprintln!("error: cannot open shard directory {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    };
    for w in &report.warnings {
        eprintln!("warning: {w}");
    }
    let net = spec_network(&layers);
    let (timed, eco) = time_network_with_service(&net, &device, &service);
    if json {
        print_session_json("embedded", &net, &timed, &eco, None);
    } else {
        print_session_summary(&net, &timed, &eco);
    }
    match service.sync_dir(dir) {
        Ok(merge) => {
            if !json {
                println!(
                    "merged into {}: {} new record(s), {} total",
                    dir.display(),
                    merge.inserted,
                    merge.total
                );
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: cannot merge into {}: {e}", dir.display());
            ExitCode::FAILURE
        }
    }
}

/// `tune-net --daemon`: the same session, served by a resident shard
/// server over its Unix socket. Budget, seed and workers are the
/// daemon's (server-side state — that is what makes every client's
/// results bit-identical); the client only names workloads.
fn tune_net_daemon(layers: Vec<ConvShape>, socket: &Path, json: bool) -> ExitCode {
    let device = DeviceSpec::v100();
    let backend = match SocketBackend::connect(socket) {
        Ok(backend) => backend,
        Err(e) => {
            eprintln!(
                "error: cannot connect to daemon socket {} (is `tune-cache serve` running?): {e}",
                socket.display()
            );
            return ExitCode::FAILURE;
        }
    };
    let net = spec_network(&layers);
    let (timed, eco) = match time_network_with_backend(&net, &device, &backend) {
        Ok(ok) => ok,
        Err(e) => {
            eprintln!("error: daemon session failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if json {
        print_session_json("daemon", &net, &timed, &eco, None);
    } else {
        print_session_summary(&net, &timed, &eco);
    }
    match backend.sync() {
        Ok(sync) => {
            if !json {
                println!("daemon persisted: {} record(s) total", sync.total);
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: daemon sync failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `tune-net --fleet`: the same session, consistent-hash-routed across
/// a fleet of daemons. Each layer's workload fingerprint picks its
/// owning daemon; a daemon that dies mid-session has its slice re-routed
/// to the survivors (hermetic tuning keeps the results bit-identical to
/// a single daemon or an embedded run).
fn tune_net_fleet(layers: Vec<ConvShape>, specs: &[String], json: bool) -> ExitCode {
    let device = DeviceSpec::v100();
    let router = FleetRouter::from_specs(specs);
    let net = spec_network(&layers);
    let (timed, eco) = match time_network_with_backend(&net, &device, &router) {
        Ok(ok) => ok,
        Err(e) => {
            eprintln!("error: fleet session failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if json {
        print_session_json(
            "fleet",
            &net,
            &timed,
            &eco,
            Some((router.live_peers(), router.peers().len())),
        );
    } else {
        print_session_summary(&net, &timed, &eco);
    }
    match router.sync() {
        Ok(sync) => {
            if !json {
                println!(
                    "fleet persisted: {} record(s) total across {} of {} peer(s){}",
                    sync.total,
                    router.live_peers(),
                    router.peers().len(),
                    if sync.persisted { "" } else { " (some peers unreachable or flush failed)" }
                );
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: fleet sync failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `serve`: run the resident shard-server daemon in the foreground
/// until a client sends shutdown (`tune-cache stop SOCK`).
fn serve(dir: &Path, socket: &Path, config: DaemonConfig) -> ExitCode {
    let (daemon, report) = match Daemon::bind(dir, socket, config.clone()) {
        Ok(ok) => ok,
        Err(e) => {
            eprintln!("error: cannot start daemon over {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    };
    for w in &report.warnings {
        eprintln!("warning: {w}");
    }
    println!(
        "serving {} on {} ({} record(s) loaded; budget {}, seed {}, workers {}, \
         merge interval {} ms); stop with `tune-cache stop {}`",
        dir.display(),
        socket.display(),
        report.loaded,
        config.service.budget_per_workload,
        config.service.seed,
        config.service.workers,
        config.merge_interval.as_millis(),
        socket.display()
    );
    // The actual port matters when the config said `:0`; fleet scripts
    // parse this line to learn where the daemon really listens.
    if let Some(addr) = daemon.tcp_addr() {
        println!("listening on tcp {addr}");
    }
    for peer in &config.peers {
        println!(
            "anti-entropy peer {peer} (pull every {} ms)",
            config.peer_sync_interval.as_millis()
        );
    }
    match daemon.run() {
        Ok(()) => {
            println!("daemon shut down cleanly");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: daemon failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `stop`: ask the daemon — on a Unix socket or a TCP address — to
/// persist and exit.
fn stop(spec: &str) -> ExitCode {
    let addr = PeerAddr::parse(spec);
    let outcome = match &addr {
        PeerAddr::Unix(path) => SocketBackend::connect(path)
            .map_err(|e| format!("cannot connect to daemon socket {}: {e}", path.display()))
            .and_then(|b| b.shutdown().map_err(|e| format!("shutdown request failed: {e}"))),
        PeerAddr::Tcp(host) => TcpBackend::connect(host.as_str())
            .map_err(|e| format!("cannot connect to daemon at tcp:{host}: {e}"))
            .and_then(|b| b.shutdown().map_err(|e| format!("shutdown request failed: {e}"))),
    };
    match outcome {
        Ok(()) => {
            println!("daemon at {addr} is shutting down");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Folds a [`ServiceSnapshot`] into a metrics snapshot — the service's
/// classic counters become `iolb_service_*` counters and the two live
/// numbers become gauges, so one Prometheus page carries everything.
fn snapshot_as_metrics(snap: &ServiceSnapshot) -> MetricsSnapshot {
    let s = &snap.stats;
    let counters = [
        ("iolb_service_enqueued_total", s.enqueued),
        ("iolb_service_speculative_enqueued_total", s.speculative_enqueued),
        ("iolb_service_batch_enqueued_total", s.batch_enqueued),
        ("iolb_service_background_tuned_total", s.background_tuned),
        ("iolb_service_inline_tuned_total", s.inline_tuned),
        ("iolb_service_shard_hits_total", s.shard_hits),
        ("iolb_service_anchored_hits_total", s.anchored_hits),
        ("iolb_service_transfer_retunes_total", s.transfer_retunes),
        ("iolb_service_transfer_enqueued_total", s.transfer_enqueued),
        ("iolb_service_stolen_total", s.stolen),
        ("iolb_service_cancelled_speculative_total", s.cancelled_speculative),
        ("iolb_service_budget_dropped_total", s.budget_dropped),
        ("iolb_service_fresh_measurements_total", s.fresh_measurements),
        ("iolb_service_cache_hits_total", s.cache_hits),
        ("iolb_service_infeasible_total", s.infeasible),
        ("iolb_service_batch_groups_total", s.batch_groups),
        ("iolb_service_batch_requests_total", s.batch_requests),
        ("iolb_service_batch_deduped_total", s.batch_deduped),
        ("iolb_service_networks_served_total", s.networks_served),
    ];
    let mut extra = MetricsSnapshot::default();
    for (name, value) in counters {
        extra.counters.push((name.to_string(), value as u64));
    }
    extra.counters.sort();
    extra.gauges.push(("iolb_budget_left".to_string(), snap.budget_left as u64));
    extra.gauges.push(("iolb_queue_len".to_string(), snap.queue_len as u64));
    extra
}

/// `metrics`: Prometheus-style text exposition. A directory target reads
/// the offline stats sidecar (counters and gauges only — histograms live
/// in the serving process); a socket or `tcp:HOST:PORT` target asks the
/// live daemon, whose v3 `Stats` response carries the full registry,
/// latency histograms included.
fn metrics_cmd(target: &str) -> ExitCode {
    let path = Path::new(target);
    if path.is_dir() {
        let snap = match ServiceSnapshot::load(path) {
            Ok(Some(snap)) => snap,
            Ok(None) => {
                eprintln!(
                    "error: {} has no stats sidecar (written by save/sync/tune-net)",
                    path.display()
                );
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("error: unreadable stats sidecar: {e}");
                return ExitCode::FAILURE;
            }
        };
        print!("{}", snapshot_as_metrics(&snap).to_prometheus());
        return ExitCode::SUCCESS;
    }
    let report: Result<StatsReport, String> = match PeerAddr::parse(target) {
        PeerAddr::Unix(sock) => SocketBackend::connect(&sock)
            .map_err(|e| format!("cannot connect to daemon socket {}: {e}", sock.display()))
            .and_then(|b| b.stats().map_err(|e| format!("stats request failed: {e}"))),
        PeerAddr::Tcp(host) => TcpBackend::connect(host.as_str())
            .map_err(|e| format!("cannot connect to daemon at tcp:{host}: {e}"))
            .and_then(|b| b.stats().map_err(|e| format!("stats request failed: {e}"))),
    };
    match report {
        Ok(report) => {
            let mut metrics = snapshot_as_metrics(&report.snapshot);
            metrics.merge(&report.metrics);
            print!("{}", metrics.to_prometheus());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `check-bench`: the CI gate over benchmark artifacts — flat JSON in
/// the record codec's dialect, dispatched on the schema tag of the
/// first line: `iolb-bench-replay` (one object) or `iolb-bench-kernels`
/// (header + row lines). Every required field must be present, numeric
/// and sane. With `--baseline`, the artifact (replay only) is also
/// diffed against a committed baseline run: embedded and daemon
/// throughput may not regress more than `--tolerance` percent — the
/// perf trajectory becomes CI-enforced instead of honor-system.
/// Exit 1 with a reason otherwise, so a broken benchmark artifact can
/// never land silently.
fn check_bench(path: &Path, baseline: Option<&Path>, tolerance_pct: usize) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("check-bench FAILED: cannot read {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    let result = bench_schema(text.trim()).and_then(|schema| match schema.as_str() {
        "iolb-bench-replay" => {
            let summary = validate_bench_replay(text.trim())?;
            match baseline {
                None => Ok(summary),
                Some(base) => {
                    let base_text = std::fs::read_to_string(base)
                        .map_err(|e| format!("cannot read baseline {}: {e}", base.display()))?;
                    validate_bench_replay(base_text.trim())
                        .map_err(|e| format!("baseline {}: {e}", base.display()))?;
                    let verdict =
                        compare_replay_throughput(text.trim(), base_text.trim(), tolerance_pct)?;
                    Ok(format!("{summary}; {verdict}"))
                }
            }
        }
        "iolb-bench-kernels" => {
            if baseline.is_some() {
                return Err("--baseline only supports replay artifacts".to_string());
            }
            validate_bench_kernels(text.trim())
        }
        other => Err(format!("unexpected schema {other:?}")),
    });
    match result {
        Ok(summary) => {
            println!("check-bench OK: {summary}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("check-bench FAILED: {}: {e}", path.display());
            ExitCode::FAILURE
        }
    }
}

/// The `--baseline` throughput gate: each mode's fresh throughput must
/// reach at least `(100 - tolerance)%` of the baseline's. Latency and
/// throughput are wall-clock, so a generous default tolerance absorbs
/// machine noise while still catching order-of-magnitude regressions.
fn compare_replay_throughput(
    fresh: &str,
    base: &str,
    tolerance_pct: usize,
) -> Result<String, String> {
    use iolb_records::jsonl::parse_flat_object;
    let read = |text: &str, key: &str| -> Result<f64, String> {
        let fields = parse_flat_object(text)?;
        fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_f64(key))
            .ok_or_else(|| format!("missing field {key:?}"))?
    };
    let floor = 1.0 - tolerance_pct.min(100) as f64 / 100.0;
    let mut parts = Vec::new();
    for mode in ["embedded", "daemon"] {
        let key = format!("{mode}_throughput_rps");
        let fresh_rps = read(fresh, &key)?;
        let base_rps = read(base, &key)?;
        if fresh_rps < base_rps * floor {
            return Err(format!(
                "{key} regressed: {fresh_rps:.3} rps vs baseline {base_rps:.3} rps \
                 (tolerance {tolerance_pct}%)"
            ));
        }
        parts.push(format!("{mode} {fresh_rps:.3} vs {base_rps:.3} rps"));
    }
    Ok(format!("within {tolerance_pct}% of baseline ({})", parts.join(", ")))
}

/// The schema tag of an artifact's first line.
fn bench_schema(text: &str) -> Result<String, String> {
    use iolb_records::jsonl::parse_flat_object;
    let first = text.lines().next().ok_or("empty file")?;
    let fields = parse_flat_object(first)?;
    let (_, value) =
        fields.iter().find(|(k, _)| k == "schema").ok_or("missing field \"schema\"")?;
    Ok(value.as_str("schema")?.to_string())
}

/// The actual `BENCH_replay.json` schema check, separated so the error
/// path is one string.
fn validate_bench_replay(line: &str) -> Result<String, String> {
    use iolb_records::jsonl::{parse_flat_object, Value};
    let fields = parse_flat_object(line)?;
    let get = |key: &str| -> Result<&Value, String> {
        fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| format!("missing field {key:?}"))
    };
    let schema = get("schema")?.as_str("schema")?;
    if schema != "iolb-bench-replay" {
        return Err(format!("unexpected schema {schema:?}"));
    }
    let version = get("v")?.as_u64("v")?;
    if version != 2 && version != 3 {
        return Err(format!("unsupported replay schema version {version}"));
    }
    get("networks")?.as_str("networks")?;
    for key in ["clients", "repeat", "sessions", "requests"] {
        if get(key)?.as_u64(key)? == 0 {
            return Err(format!("field {key:?} must be positive"));
        }
    }
    // v2: the anchoring settings ride along so a trajectory point is
    // self-describing — jittered and exact replays are not comparable.
    let jitter = get("jitter")?.as_u64("jitter")?;
    if jitter > 1 {
        return Err(format!("field \"jitter\" must be 0 or 1, got {jitter}"));
    }
    for key in ["anchor_floor", "transfer_gap_permille"] {
        if get(key)?.as_u64(key)? == 0 {
            return Err(format!("field {key:?} must be positive"));
        }
    }
    for mode in ["embedded", "daemon"] {
        for suffix in ["throughput_rps", "p50_ms", "p99_ms", "total_cost_ms"] {
            let key = format!("{mode}_{suffix}");
            let value = get(&key)?.as_f64(&key)?;
            if !value.is_finite() || value < 0.0 {
                return Err(format!("field {key:?} must be finite and non-negative"));
            }
        }
        for suffix in ["hit_rate", "anchored_hit_rate"] {
            let key = format!("{mode}_{suffix}");
            let rate = get(&key)?.as_f64(&key)?;
            if !(0.0..=1.0).contains(&rate) {
                return Err(format!("field {key:?} must be within [0, 1], got {rate}"));
            }
        }
        let anchored = get(&format!("{mode}_anchored"))?.as_u64(&format!("{mode}_anchored"))?;
        let retunes = get(&format!("{mode}_retunes"))?.as_u64(&format!("{mode}_retunes"))?;
        if retunes > anchored {
            return Err(format!(
                "field \"{mode}_retunes\" ({retunes}) cannot exceed \
                 \"{mode}_anchored\" ({anchored}): every re-tune is an anchored serve"
            ));
        }
        get(&format!("{mode}_fresh"))?.as_u64(&format!("{mode}_fresh"))?;
    }
    // A jittered replay against a pre-warmed store is the anchoring
    // acceptance run: every request must be answered from the anchor
    // bucket without a single fresh measurement.
    if jitter == 1 {
        for mode in ["embedded", "daemon"] {
            let key = format!("{mode}_anchored_hit_rate");
            let rate = get(&key)?.as_f64(&key)?;
            if rate < 0.95 {
                return Err(format!("field {key:?} must be >= 0.95 under --jitter, got {rate}"));
            }
            let fresh = get(&format!("{mode}_fresh"))?.as_u64(&format!("{mode}_fresh"))?;
            if fresh != 0 {
                return Err(format!(
                    "field \"{mode}_fresh\" must be 0 under --jitter, got {fresh}"
                ));
            }
        }
    }
    let embedded = get("embedded_total_cost_ms")?.as_f64("embedded_total_cost_ms")?;
    let daemon = get("daemon_total_cost_ms")?.as_f64("daemon_total_cost_ms")?;
    if embedded.to_bits() != daemon.to_bits() {
        return Err(format!(
            "embedded and daemon total costs must be bit-identical (hermetic tuning), \
             got {embedded} vs {daemon}"
        ));
    }
    // v3: the fusion comparison. A `--fuse` run must record the split
    // and show the fused plan strictly beating the per-layer baseline —
    // the whole point of fusing.
    let mut fuse_summary = String::new();
    if version >= 3 {
        let fuse = get("fuse")?.as_u64("fuse")?;
        if fuse > 1 {
            return Err(format!("field \"fuse\" must be 0 or 1, got {fuse}"));
        }
        if fuse == 1 {
            let blocks = get("fuse_blocks")?.as_u64("fuse_blocks")?;
            let fused = get("fuse_fused")?.as_u64("fuse_fused")?;
            let fallbacks = get("fuse_fallbacks")?.as_u64("fuse_fallbacks")?;
            if blocks == 0 {
                return Err("field \"fuse_blocks\" must be positive".to_string());
            }
            if fused == 0 {
                return Err(
                    "field \"fuse_fused\" must be positive: the gate fused nothing".to_string()
                );
            }
            if fused + fallbacks > blocks {
                return Err(format!(
                    "fused ({fused}) + fallbacks ({fallbacks}) cannot exceed blocks ({blocks})"
                ));
            }
            let fused_ms = get("fused_total_cost_ms")?.as_f64("fused_total_cost_ms")?;
            let perlayer_ms = get("perlayer_total_cost_ms")?.as_f64("perlayer_total_cost_ms")?;
            if !fused_ms.is_finite() || !perlayer_ms.is_finite() || perlayer_ms <= 0.0 {
                return Err("fused/per-layer totals must be finite and positive".to_string());
            }
            if fused_ms >= perlayer_ms {
                return Err(format!(
                    "fused plan ({fused_ms} ms) must cost strictly less than \
                     per-layer ({perlayer_ms} ms)"
                ));
            }
            get("fuse_fresh")?.as_u64("fuse_fresh")?;
            get("fuse_baseline_fresh")?.as_u64("fuse_baseline_fresh")?;
            fuse_summary = format!(
                ", {fused} fused / {fallbacks} fallback block(s) \
                 ({fused_ms:.6} vs {perlayer_ms:.6} ms per-layer)"
            );
        }
    }
    Ok(format!(
        "{} session(s), {} request(s), jitter {jitter}, anchored hit rate {}, \
         embedded/daemon costs bit-identical{fuse_summary}",
        get("sessions")?.as_u64("sessions")?,
        get("requests")?.as_u64("requests")?,
        get("embedded_anchored_hit_rate")?.as_f64("embedded_anchored_hit_rate")?
    ))
}

/// The `BENCH_kernels.json` schema check: a header line followed by
/// one row per swept shape. Beyond shape, every row's speedup must be
/// consistent with its per-path GFLOP/s, the modeled schedule can
/// never move fewer bytes than the `Q_lower` bound, and — the
/// acceptance gate — the vector path must not lose to scalar on the
/// largest GEMM row.
fn validate_bench_kernels(text: &str) -> Result<String, String> {
    use iolb_records::jsonl::{parse_flat_object, Value};
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header = parse_flat_object(lines.next().ok_or("empty file")?)?;
    let field = |fields: &[(String, Value)], key: &str| -> Result<Value, String> {
        fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.clone())
            .ok_or_else(|| format!("missing field {key:?}"))
    };

    let schema = field(&header, "schema")?;
    if schema.as_str("schema")? != "iolb-bench-kernels" {
        return Err(format!("unexpected schema {:?}", schema.as_str("schema")?));
    }
    let version = field(&header, "v")?.as_u64("v")?;
    if version != 1 && version != 2 {
        return Err(format!("unsupported kernels schema version {version}"));
    }
    field(&header, "sizes")?.as_str("sizes")?;
    field(&header, "networks")?.as_str("networks")?;
    for key in ["reps", "threads", "sram_kib", "rows"] {
        if field(&header, key)?.as_u64(key)? == 0 {
            return Err(format!("field {key:?} must be positive"));
        }
    }
    let declared_rows = field(&header, "rows")?.as_u64("rows")? as usize;

    let mut rows = 0usize;
    let mut gemm_rows = 0usize;
    // (flops, speedup) of the largest GEMM row seen — flops orders the
    // rows without re-parsing the shape string.
    let mut largest_gemm: Option<(f64, f64, String)> = None;
    for line in lines {
        rows += 1;
        let fields = parse_flat_object(line)?;
        let name = field(&fields, "name")?.as_str("name")?.to_string();
        let err = |msg: String| format!("row {name:?}: {msg}");
        let kind = field(&fields, "row")?.as_str("row")?.to_string();
        if kind != "gemm" && kind != "conv" {
            return Err(err(format!("unknown row kind {kind:?}")));
        }
        field(&fields, "algo")?.as_str("algo")?;
        field(&fields, "shape")?.as_str("shape")?;
        // v2: each row was timed at an explicit thread count (the
        // header's `threads` is the sweep's maximum).
        if version >= 2 && field(&fields, "threads")?.as_u64("threads")? == 0 {
            return Err(err("field \"threads\" must be positive".into()));
        }
        let num = |key: &str| -> Result<f64, String> {
            let v = field(&fields, key)?.as_f64(key)?;
            if !v.is_finite() || v < 0.0 {
                return Err(err(format!("field {key:?} must be finite and non-negative")));
            }
            Ok(v)
        };
        let gflop = num("gflop")?;
        let scalar = num("scalar_gflops")?;
        let vector = num("vector_gflops")?;
        let speedup = num("speedup")?;
        if gflop <= 0.0 || scalar <= 0.0 || vector <= 0.0 {
            return Err(err("work and throughput fields must be positive".into()));
        }
        if (speedup - vector / scalar).abs() > 1e-6 * speedup.max(1.0) {
            return Err(err(format!(
                "speedup {speedup} inconsistent with GFLOP/s ratio {}",
                vector / scalar
            )));
        }
        let q_lower = num("q_lower_bytes")?;
        let q_sched = num("q_sched_bytes")?;
        let gap = num("roofline_gap")?;
        if q_sched + 1e-9 < q_lower {
            return Err(err(format!(
                "modeled schedule moves fewer bytes ({q_sched}) than the bound ({q_lower})"
            )));
        }
        if q_lower > 0.0 && (gap - q_sched / q_lower).abs() > 1e-6 * gap.max(1.0) {
            return Err(err(format!(
                "roofline_gap {gap} inconsistent with q_sched/q_lower {}",
                q_sched / q_lower
            )));
        }
        if kind == "gemm" {
            gemm_rows += 1;
            if largest_gemm.as_ref().is_none_or(|(f, _, _)| gflop > *f) {
                largest_gemm = Some((gflop, speedup, name));
            }
        }
    }
    if rows != declared_rows {
        return Err(format!("header declares {declared_rows} row(s), found {rows}"));
    }
    if gemm_rows == 0 {
        return Err("no GEMM rows in sweep".to_string());
    }
    let (_, speedup, name) = largest_gemm.expect("gemm_rows > 0");
    if speedup < 1.0 {
        return Err(format!(
            "vector path lost to scalar on the largest GEMM row {name:?} (speedup {speedup})"
        ));
    }
    Ok(format!("{rows} row(s) ({gemm_rows} GEMM), vector/scalar speedup {speedup:.2}x on {name}"))
}

fn flag_value(args: &[String], flag: &str) -> Option<usize> {
    let at = args.iter().position(|a| a == flag)?;
    args.get(at + 1)?.parse().ok()
}

fn flag_path(args: &[String], flag: &str) -> Option<PathBuf> {
    let at = args.iter().position(|a| a == flag)?;
    args.get(at + 1).map(PathBuf::from)
}

fn flag_string(args: &[String], flag: &str) -> Option<String> {
    let at = args.iter().position(|a| a == flag)?;
    args.get(at + 1).cloned()
}

/// Every value of a repeatable flag, in order (`--peer A --peer B`).
fn flag_strings(args: &[String], flag: &str) -> Vec<String> {
    let mut values = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == flag {
            if let Some(value) = it.next() {
                values.push(value.clone());
            }
        }
    }
    values
}

/// Loads either a flat store file or a shard directory as a
/// `ShardedStore` (flat files shard by routing every record).
fn load_sharded_or_exit(path: &Path) -> ShardedStore {
    if path.is_dir() {
        match ShardedStore::load(path) {
            Ok((sharded, report)) => {
                for w in &report.warnings {
                    eprintln!("warning: {w}");
                }
                sharded
            }
            Err(e) => {
                eprintln!("error: cannot load shard directory {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    } else {
        ShardedStore::from_flat(load_store_or_exit(path))
    }
}

/// Reports the service stats sidecar of a shard directory, if present —
/// the offline view of queue depth, remaining budget, session counters
/// and speculation telemetry that used to be visible only in-process.
fn print_sidecar(dir: &Path) {
    match ServiceSnapshot::load(dir) {
        Ok(Some(snap)) => {
            let s = &snap.stats;
            println!(
                "service: queue depth {}, budget left {}, {} network(s) served \
                 ({} session(s), {} request(s), {} deduped)",
                snap.queue_len,
                snap.budget_left,
                s.networks_served,
                s.batch_groups,
                s.batch_requests,
                s.batch_deduped
            );
            println!(
                "serving: {} exact hit(s), {} anchored ({} re-tune(s)), {} stolen, {} inline, \
                 {} background, {} fresh measurement(s), {} cache hit(s), {} infeasible",
                s.shard_hits,
                s.anchored_hits,
                s.transfer_retunes,
                s.stolen,
                s.inline_tuned,
                s.background_tuned,
                s.fresh_measurements,
                s.cache_hits,
                s.infeasible
            );
            for kind in PerturbationKind::ALL {
                let k = s.speculation_of(kind);
                if k.enqueued + k.tuned + k.hits > 0 {
                    println!(
                        "speculation {:<13} {} enqueued, {} tuned, {} hit(s)",
                        kind.label(),
                        k.enqueued,
                        k.tuned,
                        k.hits
                    );
                }
            }
        }
        Ok(None) => println!("service: no stats sidecar (written by save/sync/tune-net)"),
        Err(e) => eprintln!("warning: unreadable stats sidecar: {e}"),
    }
}

fn stats(path: &Path) -> ExitCode {
    let sharded = load_sharded_or_exit(path);
    println!(
        "{}: {} record(s) across {} workload(s) on {} device(s)",
        path.display(),
        sharded.len(),
        sharded.workload_count(),
        sharded.shard_count()
    );
    if path.is_dir() {
        print_sidecar(path);
    }
    // Per-device breakdown first — one flat store silently mixing
    // several devices is exactly what this report exists to expose.
    for (key, shard) in sharded.shards() {
        println!(
            "device {key}: {} record(s) across {} workload(s) in {} anchor bucket(s) (floor {})",
            shard.len(),
            shard.workload_count(),
            sharded.anchor_bucket_count(key),
            sharded.anchor_floor()
        );
        for fp in shard.fingerprints() {
            let recs = shard.records(fp);
            let best = recs.first().map_or(f64::NAN, |r| r.cost_ms);
            let worst = recs.last().map_or(f64::NAN, |r| r.cost_ms);
            println!("  {:>5} record(s)  best {best:.6} ms  worst {worst:.6} ms  {fp}", recs.len());
        }
    }
    ExitCode::SUCCESS
}

/// Splits a flat store into a device-sharded directory, or merges a
/// shard directory back into one flat store, depending on the input.
fn shard(input: &Path, out: &Path, lock_timeout: Duration) -> ExitCode {
    if input.is_dir() {
        let sharded = load_sharded_or_exit(input);
        let flat = sharded.merged();
        save_store_or_exit(&flat, out);
        println!(
            "merged {} shard(s) ({} record(s)) -> {}",
            sharded.shard_count(),
            flat.len(),
            out.display()
        );
        return ExitCode::SUCCESS;
    }
    let sharded = ShardedStore::from_flat(load_store_or_exit(input));
    // The split writes (overwrites) a shard directory: take its writer
    // lock like every other directory writer, so a concurrent tune-net
    // merge can never interleave with (and lose records to) this save.
    let lock = DirLock::acquire(out, lock_timeout).map_err(std::io::Error::from);
    if let Err(e) = lock.and_then(|_lock| sharded.save(out)) {
        eprintln!("error: cannot write shard directory {}: {e}", out.display());
        return ExitCode::FAILURE;
    }
    println!(
        "sharded {} -> {}: {} device(s), {} record(s)",
        input.display(),
        out.display(),
        sharded.shard_count(),
        sharded.len()
    );
    for (key, store) in sharded.shards() {
        println!(
            "  {:>5} record(s)  {} -> {}",
            store.len(),
            key,
            iolb_service::shard_file_name(key)
        );
    }
    ExitCode::SUCCESS
}

/// Applies the LRU eviction policy to a shard directory (or flat store)
/// in place. Shard directories are rewritten under their advisory
/// [`DirLock`], so an eviction can never interleave with (and lose) a
/// concurrent writer's records.
fn evict(input: &Path, policy: EvictionPolicy, lock_timeout: Duration) -> ExitCode {
    let _lock = if input.is_dir() {
        match DirLock::acquire(input, lock_timeout) {
            Ok(lock) => Some(lock),
            Err(e) => {
                eprintln!("error: cannot lock {}: {e}", input.display());
                return ExitCode::FAILURE;
            }
        }
    } else {
        None
    };
    let mut sharded = load_sharded_or_exit(input);
    let before = sharded.len();
    let dropped = sharded.evict(&policy);
    let saved = if input.is_dir() {
        sharded.save(input).map_err(|e| format!("{}: {e}", input.display()))
    } else {
        let flat = sharded.merged();
        flat.save(input).map_err(|e| format!("{}: {e}", input.display()))
    };
    if let Err(e) = saved {
        eprintln!("error: cannot rewrite {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "evicted {}: dropped {dropped} of {before} record(s), kept {} (max {}, top-{} per cold workload)",
        input.display(),
        sharded.len(),
        policy.max_records,
        policy.top_k
    );
    ExitCode::SUCCESS
}

/// Summarizes a service shard directory: manifest, per-device shards,
/// LRU temperature. With `json`, emits one flat JSON object (store
/// totals plus the stats sidecar) instead of the human report.
fn serve_stats(dir: &Path, json: bool) -> ExitCode {
    if !dir.is_dir() {
        eprintln!("error: {} is not a shard directory", dir.display());
        return ExitCode::FAILURE;
    }
    let sharded = load_sharded_or_exit(dir);
    if json {
        let snap = match ServiceSnapshot::load(dir) {
            Ok(snap) => snap.unwrap_or_default(),
            Err(e) => {
                eprintln!("error: unreadable stats sidecar: {e}");
                return ExitCode::FAILURE;
            }
        };
        let s = &snap.stats;
        // v2 breaks serving out into exact vs anchored vs fresh: `hits`
        // stays the exact-fingerprint count, `anchored` the bucket
        // serves (with `retunes` the gate-failed subset), `fresh` the
        // measurement count — the three-way split the anchoring layer
        // introduces.
        println!(
            "{{\"schema\":\"iolb-serve-stats\",\"v\":2,\"shards\":{},\"workloads\":{},\
             \"records\":{},\"clock\":{},\"queue_len\":{},\"budget_left\":{},\
             \"networks_served\":{},\"sessions\":{},\"requests\":{},\"deduped\":{},\
             \"hits\":{},\"anchored\":{},\"retunes\":{},\"transfer_enqueued\":{},\
             \"stolen\":{},\"inline\":{},\"background\":{},\"fresh\":{},\
             \"cache_hits\":{},\"infeasible\":{}}}",
            sharded.shard_count(),
            sharded.workload_count(),
            sharded.len(),
            sharded.clock(),
            snap.queue_len,
            snap.budget_left,
            s.networks_served,
            s.batch_groups,
            s.batch_requests,
            s.batch_deduped,
            s.shard_hits,
            s.anchored_hits,
            s.transfer_retunes,
            s.transfer_enqueued,
            s.stolen,
            s.inline_tuned,
            s.background_tuned,
            s.fresh_measurements,
            s.cache_hits,
            s.infeasible,
        );
        return ExitCode::SUCCESS;
    }
    println!(
        "{}: {} device shard(s), {} workload(s), {} record(s), clock {}",
        dir.display(),
        sharded.shard_count(),
        sharded.workload_count(),
        sharded.len(),
        sharded.clock()
    );
    print_sidecar(dir);
    for (key, shard) in sharded.shards() {
        println!(
            "device {key} ({}): {} workload(s), {} record(s), {} anchor bucket(s)",
            iolb_service::shard_file_name(key),
            shard.workload_count(),
            shard.len(),
            sharded.anchor_bucket_count(key)
        );
        for fp in shard.fingerprints() {
            let recs = shard.records(fp);
            let stamp = sharded.last_hit(fp);
            let heat =
                if stamp == 0 { "never hit".to_string() } else { format!("last hit @{stamp}") };
            println!(
                "  {:>5} record(s)  best {:.6} ms  {heat}  {fp}",
                recs.len(),
                recs.first().map_or(f64::NAN, |r| r.cost_ms)
            );
        }
    }
    ExitCode::SUCCESS
}

fn top(path: &Path, k: usize) -> ExitCode {
    let store = load_store_or_exit(path);
    for fp in store.fingerprints() {
        println!("{fp}");
        for rec in store.records(fp).iter().take(k) {
            println!("  {:>10.6} ms  seed {:>6}  {}", rec.cost_ms, rec.seed, rec.config);
        }
    }
    ExitCode::SUCCESS
}

fn check(path: &Path) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("check FAILED: cannot read {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    let (store, report) = RecordStore::from_jsonl(&text);
    if !report.is_clean() {
        eprintln!("check FAILED: {} line(s) no longer parse:", report.skipped.len());
        for (line, reason) in &report.skipped {
            eprintln!("  {}:{line}: {reason}", path.display());
        }
        return ExitCode::FAILURE;
    }
    let canonical = store.to_jsonl();
    if text != canonical {
        eprintln!(
            "check FAILED: {} is not in the codec's canonical serialization \
             (re-save it with `tune-cache compact {} --keep 1000000`)",
            path.display(),
            path.display()
        );
        return ExitCode::FAILURE;
    }
    let (reparsed, report2) = RecordStore::from_jsonl(&canonical);
    if !report2.is_clean() || reparsed.to_jsonl() != canonical {
        eprintln!("check FAILED: parse -> serialize -> parse is not byte-stable");
        return ExitCode::FAILURE;
    }
    println!(
        "check OK: {} record(s), {} workload(s), canonical and byte-stable",
        store.len(),
        store.workload_count()
    );
    ExitCode::SUCCESS
}

fn compact(path: &Path, keep: usize, out: &Path) -> ExitCode {
    let mut store = load_store_or_exit(path);
    let dropped = store.compact(keep);
    save_store_or_exit(&store, out);
    println!(
        "compacted {}: dropped {dropped}, kept {} -> {}",
        path.display(),
        store.len(),
        out.display()
    );
    ExitCode::SUCCESS
}

fn merge(inputs: &[&String], out: &Path) -> ExitCode {
    let mut merged = RecordStore::new();
    for input in inputs {
        let store = load_store_or_exit(Path::new(input));
        let inserted = merged.merge(store);
        println!("merged {input}: {inserted} record(s) new or improved");
    }
    save_store_or_exit(&merged, out);
    ExitCode::SUCCESS
}

/// Deterministically tunes two related AlexNet-style layers into a fresh
/// store: everything is seeded, so the output is byte-reproducible —
/// which is exactly what a committed CI fixture needs.
fn gen(path: &Path) -> ExitCode {
    let device = DeviceSpec::v100();
    let mut store = RecordStore::new();
    let layers = [
        ConvShape::new(256, 13, 13, 384, 3, 3, 1, 1), // AlexNet conv3
        ConvShape::new(384, 13, 13, 256, 3, 3, 1, 1), // AlexNet conv4
    ];
    for (i, shape) in layers.iter().enumerate() {
        let out = run_tuner_with_store(
            TunerKind::Ate,
            shape,
            TileKind::Direct,
            &device,
            48,
            1000 + i as u64,
            &mut store,
            StoreMode::WarmStart,
        );
        match out {
            Some(r) => println!(
                "tuned {shape}: best {:.6} ms in {} attempt(s) ({} fresh, {} cached{})",
                r.result.best_ms,
                r.result.measurements,
                r.fresh_measurements,
                r.cache_hits,
                if r.transferred { ", transfer-seeded" } else { "" },
            ),
            None => {
                eprintln!("error: no measurable configuration for {shape}");
                return ExitCode::FAILURE;
            }
        }
    }
    save_store_or_exit(&store, path);
    ExitCode::SUCCESS
}
