//! # iolb-records — the persistent tuning-record store
//!
//! The paper's auto-tuner (§6) re-measures every candidate schedule from
//! scratch on each invocation. A production tuning service amortizes
//! that cost across runs, layers and devices by logging every
//! measurement into a persistent store and consulting it first — the
//! role TVM's tuning logs and autotvm "transfer learning" records play.
//! This crate is that store:
//!
//! * [`record`] — the versioned record schema: a [`Workload`]
//!   fingerprint (layer shape + algorithm + device preset), the measured
//!   [`ScheduleConfig`](iolb_dataflow::config::ScheduleConfig), its
//!   cost, and the tuner seed that produced it.
//! * [`jsonl`] — a dependency-free, hand-rolled JSONL codec (the build
//!   environment is offline; no serde). Serialization is canonical and
//!   deterministic: the same store contents always produce the same
//!   bytes, so stores diff cleanly and replicate bit-identically.
//! * [`store`] — the in-memory index: keyed by workload fingerprint,
//!   top-k-by-cost queries, exact-config lookup (the measurement cache),
//!   nearest-workload queries by feature distance (cross-layer
//!   transfer), merge/compaction, and corruption-tolerant loading that
//!   skips and reports malformed lines instead of failing the run.
//!
//! ```
//! use iolb_core::optimality::TileKind;
//! use iolb_core::shapes::ConvShape;
//! use iolb_dataflow::config::ScheduleConfig;
//! use iolb_records::{RecordStore, TuningRecord, Workload};
//! use iolb_tensor::layout::Layout;
//!
//! let workload = Workload::new(
//!     ConvShape::square(64, 28, 32, 3, 1, 1), TileKind::Direct, "Tesla V100", 96 * 1024,
//! );
//! let config = ScheduleConfig {
//!     x: 7, y: 7, z: 8, nxt: 1, nyt: 1, nzt: 1, sb_bytes: 16 * 1024, layout: Layout::Chw,
//! };
//! let mut store = RecordStore::new();
//! store.insert(TuningRecord::new(workload.clone(), config, 0.25, 7).unwrap());
//! // Exact hits replay their stored cost; serialization is canonical.
//! assert_eq!(store.lookup(&workload, &config), Some(0.25));
//! let (reloaded, report) = RecordStore::from_jsonl(&store.to_jsonl());
//! assert!(report.is_clean());
//! assert_eq!(reloaded.to_jsonl(), store.to_jsonl());
//! ```

pub mod jsonl;
pub mod record;
pub mod store;

pub use record::{TuningRecord, Workload, SCHEMA_VERSION};
pub use store::{LoadReport, RecordStore};
