//! Batch tuning sessions: the network-level request path.
//!
//! A client serving a whole CNN does not want one round-trip per layer —
//! it wants to hand the service *all* its workloads and collect results
//! as they land. A [`TuningSession`] does exactly that:
//!
//! 1. [`submit`] **dedupes** the requests by workload fingerprint
//!    (repeated layer shapes — VGG's stacked 3×3 blocks — become one
//!    job with fan-out waiters), classifies each unique workload
//!    against the service (already stored → instant; already being
//!    tuned → steal when it lands), and enqueues the rest as one
//!    tracked **batch group**: [`JobTier::Batch`] members outrank every
//!    speculative neighbor in the queue, survive budget exhaustion, and
//!    are never billed to the background budget (they are user work).
//! 2. [`wait`] **collects**: it claims whatever of its jobs are still
//!    queued and tunes them on the calling thread as one batch
//!    ([`iolb_autotune::engine::tune_batch`] — the canonical hermetic
//!    per-workload runs, fanned across the pool), steals results that
//!    background workers produce meanwhile, and returns one result per
//!    original request, in order.
//!
//! Because every run is hermetic (see [`crate::service`] module docs),
//! a batch-tuned config is bit-identical to an eager
//! [`iolb_autotune::engine::tune_with_store`] run of the same workload —
//! batching changes *how much* work happens (duplicates are free,
//! setup is shared, no speculation rides along), never *what* any
//! workload's result is.
//!
//! The session path is **transport-abstracted** through the [`Backend`]
//! trait (submit/wait/sync/stats): the in-process [`TuningService`]
//! implements it directly, and [`crate::daemon::SocketBackend`]
//! implements it over the daemon's Unix-socket wire protocol — so every
//! consumer (notably `iolb_cnn::time_network_with_backend`) runs
//! identically embedded or client/server.
//!
//! [`submit`]: TuningSession::submit
//! [`wait`]: SessionHandle::wait

use crate::queue::{io_gap, transfer_admissible, Job, JobTier, PushOutcome};
use crate::service::{ServeResult, ServeSource, ServiceSnapshot, State, TuningService};
use crate::telemetry::MetricsSnapshot;
use iolb_autotune::engine::tune_batch;
use iolb_autotune::fusion::fusion_gate;
use iolb_autotune::measure::Measurer;
use iolb_autotune::plan::{dedup_requests, BatchRequest};
use iolb_core::epilogue::Epilogue;
use iolb_core::optimality::TileKind;
use iolb_core::shapes::ConvShape;
use iolb_gpusim::DeviceSpec;
use iolb_records::Workload;
use std::sync::MutexGuard;

/// One workload a session asks for: a conv layer, or — with a non-`None`
/// epilogue — a fused conv→epilogue chain. Fused requests pass the
/// server-side analytic [`fusion_gate`] at submit; a chain the gate
/// rejects is **rewritten to its bare-conv request** before dedup, so it
/// shares records (and measurements) with every unfused request for the
/// same layer — the fallback costs zero extra fresh measurements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TuneRequest {
    pub shape: ConvShape,
    pub kind: TileKind,
    pub epilogue: Epilogue,
}

impl TuneRequest {
    /// A bare-conv request (the pre-fusion constructor shape).
    pub fn bare(shape: ConvShape, kind: TileKind) -> Self {
        Self { shape, kind, epilogue: Epilogue::None }
    }

    /// A fused-chain request.
    pub fn fused(shape: ConvShape, kind: TileKind, epilogue: Epilogue) -> Self {
        Self { shape, kind, epilogue }
    }
}

/// A batch tuning session against one service on one device. Cheap to
/// construct; [`submit`](Self::submit) does the work.
#[derive(Clone)]
pub struct TuningSession {
    service: TuningService,
    device: DeviceSpec,
}

/// How a unique session member got (or will get) its records.
#[derive(Debug, Clone, Copy)]
enum Resolution {
    /// The shard already held records at submit time: zero work.
    Hit,
    /// Someone else (a background worker, another session) tuned it
    /// while this session waited.
    Stolen,
    /// This session tuned it on the waiting thread.
    Inline { fresh_measurements: usize, cache_hits: usize },
    /// An anchor-bucket neighbor donated its config at submit time.
    /// `cost_ms` is the donor config re-costed on *this* shape by one
    /// deterministic simulator evaluation (never a fresh measurement);
    /// `retune` records that the analytic gate failed, so the serve is
    /// provisional and a [`JobTier::Transfer`] re-tune was enqueued.
    Anchored { config: iolb_dataflow::config::ScheduleConfig, cost_ms: f64, retune: bool },
    /// No measurable configuration exists.
    Infeasible,
}

/// A donor candidate pulled from the anchor index under the phase-1
/// lock, evaluated (gate + re-cost) outside the lock.
struct AnchorEval {
    config: iolb_dataflow::config::ScheduleConfig,
    cost_ms: f64,
    admissible: bool,
}

/// One unique workload within a session.
struct Member {
    shape: ConvShape,
    kind: TileKind,
    /// Gate-approved epilogue ([`Epilogue::None`] for bare convs and for
    /// fused requests the gate rewrote to their per-layer fallback).
    epilogue: Epilogue,
    workload: Workload,
    fingerprint: String,
    resolution: Option<Resolution>,
    /// A pending background job for this workload was absorbed into the
    /// session at submit (the "cancelled speculative duplicate").
    cancelled_speculative: bool,
}

/// A submitted batch: results are collected with [`wait`](Self::wait).
///
/// Dropping a handle without waiting is safe: its queued jobs stay in
/// the queue at batch priority and are picked up by background workers,
/// [`TuningService::drain`], or any later session that needs the same
/// workloads.
pub struct SessionHandle {
    service: TuningService,
    device: DeviceSpec,
    group: u64,
    members: Vec<Member>,
    /// Per original request: (member index, whether this request is the
    /// member's first occurrence — duplicates report as shard hits).
    requests: Vec<(usize, bool)>,
    /// When the session was submitted; drives the session-latency
    /// histogram at collect time. Observational only.
    started: std::time::Instant,
}

impl TuningSession {
    pub fn new(service: &TuningService, device: &DeviceSpec) -> Self {
        Self { service: service.clone(), device: device.clone() }
    }

    /// Dedupes and submits a batch of requests as one tracked group.
    /// Returns immediately; background workers are kicked so the batch
    /// tunes concurrently with whatever the caller does before
    /// [`SessionHandle::wait`].
    pub fn submit(&self, requests: &[TuneRequest]) -> SessionHandle {
        let service = &self.service;
        // Fused requests pass the analytic gate first — server-side, so
        // embedded and daemon clients get identical decisions. A
        // rejected chain is rewritten to its bare-conv request *before*
        // dedup: it then merges with every unfused request for the same
        // layer and spends zero extra fresh measurements. Unique chains
        // are counted per fused fingerprint (a VGG block repeated five
        // times is one fused block, not five).
        let mut fused_chains = std::collections::BTreeSet::new();
        let mut fallback_chains = std::collections::BTreeSet::new();
        let batch_requests: Vec<BatchRequest> = requests
            .iter()
            .map(|r| {
                if r.epilogue.is_none() {
                    return BatchRequest::bare(r.shape, r.kind);
                }
                let fused = BatchRequest { shape: r.shape, kind: r.kind, epilogue: r.epilogue };
                let decision = fusion_gate(&r.shape, r.kind, r.epilogue, &self.device);
                let fingerprint = fused.workload(&self.device).fingerprint();
                match decision.reason() {
                    None => {
                        fused_chains.insert(fingerprint);
                        fused
                    }
                    Some(reason) => {
                        if fallback_chains.insert(fingerprint.clone()) {
                            crate::log_event!(
                                Debug,
                                "fusion.fallback",
                                fingerprint = fingerprint,
                                reason = reason,
                            );
                        }
                        BatchRequest::bare(r.shape, r.kind)
                    }
                }
            })
            .collect();
        // Dedup by workload fingerprint, preserving first-seen order —
        // the same network-level planning step the engine's tune_batch
        // uses, so the two layers can never disagree on what counts as
        // a duplicate.
        let (unique, representative) = dedup_requests(&batch_requests, &self.device);
        if !fused_chains.is_empty() {
            service.inner.telemetry.incr("iolb_fused_blocks_total", fused_chains.len() as u64);
        }
        if !fallback_chains.is_empty() {
            service
                .inner
                .telemetry
                .incr("iolb_fusion_fallbacks_total", fallback_chains.len() as u64);
        }
        let mut members: Vec<Member> = unique
            .iter()
            .map(|req| {
                let workload = req.workload(&self.device);
                Member {
                    shape: req.shape,
                    kind: req.kind,
                    epilogue: req.epilogue,
                    fingerprint: workload.fingerprint(),
                    workload,
                    resolution: None,
                    cancelled_speculative: false,
                }
            })
            .collect();
        let mut seen = vec![false; members.len()];
        let request_map: Vec<(usize, bool)> = representative
            .into_iter()
            .map(|at| {
                let first = !seen[at];
                seen[at] = true;
                (at, first)
            })
            .collect();
        // Book the group and snapshot what the service already knows, so
        // the expensive io_gap priorities are only computed for members
        // that actually need a queue job — and outside the lock. The
        // same snapshot pulls each fresh miss's best anchor-bucket donor
        // (config + donor shape), so the transfer gate and the donor
        // re-cost also run outside the lock.
        let (group, needs_gap, donors) = {
            let mut st = service.lock();
            st.stats.batch_groups += 1;
            st.stats.batch_requests += requests.len();
            st.stats.batch_deduped += requests.len() - members.len();
            st.stats.fused_blocks += fused_chains.len();
            st.stats.fusion_fallbacks += fallback_chains.len();
            let group = st.next_group;
            st.next_group += 1;
            // A fingerprint that is merely *queued* (a pending transfer
            // re-tune, or another session's batch job) still serves
            // anchored — only a settled record, a known-infeasible
            // verdict, or an in-flight tuning pre-empts the bucket.
            let wants_donor: Vec<bool> = members
                .iter()
                .map(|m| {
                    st.shards.records(&m.workload).is_empty()
                        && !st.infeasible.contains(&m.fingerprint)
                        && !st.in_flight.contains(&m.fingerprint)
                })
                .collect();
            let needs_gap: Vec<bool> = members
                .iter()
                .zip(&wants_donor)
                .map(|(m, &wanted)| wanted && !st.queue.contains(&m.fingerprint))
                .collect();
            let donors: Vec<Option<(iolb_dataflow::config::ScheduleConfig, ConvShape)>> = members
                .iter()
                .zip(&wants_donor)
                .map(|(m, &wanted)| {
                    if !wanted {
                        return None;
                    }
                    st.shards.anchor_donor(&m.workload).map(|rec| (rec.config, rec.workload.shape))
                })
                .collect();
            (group, needs_gap, donors)
        };
        let gaps: Vec<Option<f64>> = members
            .iter()
            .zip(&needs_gap)
            .map(|(m, &needed)| needed.then(|| io_gap(&m.shape, m.kind, &self.device)))
            .collect();
        // Evaluate each donor outside the lock: project the donated
        // config onto the target's divisor lattice, then run the
        // analytic admission gate plus one deterministic simulator
        // re-cost on the *target* shape. An unevaluable donor (the
        // projection fails to validate) falls through to the normal
        // miss path.
        let gap_bound = service.config().transfer_gap_bound();
        let anchor_evals: Vec<Option<AnchorEval>> = members
            .iter()
            .zip(&donors)
            .map(|(m, donor)| {
                let (cfg, donor_shape) = donor.as_ref()?;
                let cfg = cfg.project_onto(&m.shape, m.kind);
                if let Epilogue::ReluPool { k } = m.epilogue {
                    // The donor's tile was on the pool grid for *its*
                    // shape; projection can move it off the target's.
                    // An off-grid tile cannot execute fused — fall
                    // through to the normal miss path.
                    if !cfg.x.is_multiple_of(k) || !cfg.y.is_multiple_of(k) {
                        return None;
                    }
                }
                let cost_ms = Measurer::new(self.device.clone(), m.shape, m.kind)
                    .with_epilogue(m.epilogue)
                    .measure_ms(&cfg)?;
                let admissible = transfer_admissible(
                    &m.shape,
                    donor_shape,
                    m.kind,
                    &self.device,
                    &cfg,
                    gap_bound,
                );
                Some(AnchorEval { config: cfg, cost_ms, admissible })
            })
            .collect();
        // Authoritative classification + enqueue, under one lock.
        let mut pushed = false;
        {
            let mut st = service.lock();
            for ((member, gap), anchor) in members.iter_mut().zip(gaps).zip(anchor_evals) {
                if !st.shards.records(&member.workload).is_empty() {
                    member.resolution = Some(Resolution::Hit);
                    confirm_speculation(&mut st, &member.fingerprint);
                    continue;
                }
                if st.infeasible.contains(&member.fingerprint) {
                    member.resolution = Some(Resolution::Infeasible);
                    continue;
                }
                if st.in_flight.contains(&member.fingerprint) {
                    continue; // steal when it lands
                }
                if let Some(eval) = anchor {
                    // Anchored serve: the bucket mate's config answers
                    // this request with zero fresh measurements. An
                    // admissible transfer is final; a gate failure is
                    // served provisionally and re-tuned in the
                    // background at transfer tier.
                    member.resolution = Some(Resolution::Anchored {
                        config: eval.config,
                        cost_ms: eval.cost_ms,
                        retune: !eval.admissible,
                    });
                    if !eval.admissible {
                        let gap =
                            gap.unwrap_or_else(|| io_gap(&member.shape, member.kind, &self.device));
                        let job = Job {
                            shape: member.shape,
                            kind: member.kind,
                            epilogue: member.epilogue,
                            device: self.device.clone(),
                            tier: JobTier::Transfer,
                            perturbation: None,
                            enqueued_at: None,
                        };
                        match st.queue.push(job, gap) {
                            PushOutcome::Added => {
                                st.stats.transfer_enqueued += 1;
                                pushed = true;
                            }
                            PushOutcome::Promoted { from, perturbation } => {
                                st.rebook_promotion(from, JobTier::Transfer, perturbation);
                            }
                            PushOutcome::AlreadyPending => {}
                        }
                    }
                    continue;
                }
                // Pending (ours or anyone's) or brand new: push at batch
                // tier. The gap was precomputed unless the snapshot saw
                // the workload pending/settled; the rare race re-computes
                // under the lock (correctness over elegance).
                let gap = gap.unwrap_or_else(|| io_gap(&member.shape, member.kind, &self.device));
                let job = Job {
                    shape: member.shape,
                    kind: member.kind,
                    epilogue: member.epilogue,
                    device: self.device.clone(),
                    tier: JobTier::Batch { group },
                    perturbation: None,
                    enqueued_at: None,
                };
                match st.queue.push(job, gap) {
                    PushOutcome::Added => {
                        st.stats.batch_enqueued += 1;
                        pushed = true;
                    }
                    PushOutcome::Promoted { from, perturbation } => {
                        // A pending background duplicate was absorbed
                        // into this session — the batch-path "cancel the
                        // speculative duplicate".
                        st.rebook_promotion(from, JobTier::Batch { group }, perturbation);
                        st.stats.cancelled_speculative += 1;
                        member.cancelled_speculative = true;
                    }
                    PushOutcome::AlreadyPending => {
                        // An earlier session already owns this workload
                        // at batch tier; we steal its landing.
                    }
                }
            }
        }
        if pushed {
            service.inner.changed.notify_all();
        }
        service.kick();
        crate::log_event!(
            Info,
            "session.submit",
            group = group,
            requests = request_map.len(),
            unique = members.len(),
        );
        SessionHandle {
            service: service.clone(),
            device: self.device.clone(),
            group,
            members,
            requests: request_map,
            started: std::time::Instant::now(),
        }
    }
}

/// How a [`Backend`] request can fail. The in-process backend never
/// fails; the socket backend surfaces transport, protocol and
/// daemon-reported errors separately so callers can tell "the socket
/// died" from "the daemon refused".
#[derive(Debug)]
pub enum BackendError {
    /// The transport failed (socket I/O).
    Transport(std::io::Error),
    /// The peer spoke the protocol wrong (truncated/oversized frame,
    /// foreign version, malformed message).
    Protocol(String),
    /// The daemon processed the request and reported an error.
    Remote(String),
}

impl std::fmt::Display for BackendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BackendError::Transport(e) => write!(f, "backend transport failed: {e}"),
            BackendError::Protocol(m) => write!(f, "backend protocol error: {m}"),
            BackendError::Remote(m) => write!(f, "daemon error: {m}"),
        }
    }
}

impl std::error::Error for BackendError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BackendError::Transport(e) => Some(e),
            _ => None,
        }
    }
}

/// What a [`Backend::sync`] accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyncOutcome {
    /// Whether the backend had durable storage to flush (the daemon
    /// persists its shard directory; a plain in-process service has no
    /// directory attached at the trait level and reports `false` —
    /// embedded callers persist explicitly via
    /// [`TuningService::sync_dir`]).
    pub persisted: bool,
    /// Total records the backend holds after the sync.
    pub total: usize,
}

/// What [`Backend::stats`] reports: the counter snapshot every backend
/// has carried since v1, plus the metrics registry (latency histograms,
/// counters, gauges) the v3 wire protocol added. For a fleet the report
/// is the order-free merge across live peers ([`ServiceStats`]
/// counters add saturating; histograms merge bucket-wise).
///
/// [`ServiceStats`]: crate::service::ServiceStats
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StatsReport {
    pub snapshot: ServiceSnapshot,
    pub metrics: MetricsSnapshot,
}

/// Transport-independent face of the tuning service: everything the
/// request path needs. Implemented by the in-process [`TuningService`]
/// and by [`crate::daemon::SocketBackend`] (the daemon client), so the
/// same calling code serves from an embedded service or over a socket.
pub trait Backend {
    /// The in-flight batch handle this backend hands out.
    type Session: BackendSession;

    /// Submits a batch of requests on a device as one deduplicated
    /// session (see [`TuningSession::submit`] for the semantics every
    /// backend must preserve).
    fn submit_batch(
        &self,
        requests: &[TuneRequest],
        device: &DeviceSpec,
    ) -> Result<Self::Session, BackendError>;

    /// Asks the backend to flush whatever durable state it owns.
    fn sync(&self) -> Result<SyncOutcome, BackendError>;

    /// A consistent snapshot of the backend's counters, live state and
    /// metrics registry.
    fn stats(&self) -> Result<StatsReport, BackendError>;

    /// Serves one workload — the one-element session.
    fn tune_or_wait_via(
        &self,
        shape: &ConvShape,
        kind: TileKind,
        device: &DeviceSpec,
    ) -> Result<Option<ServeResult>, BackendError> {
        let session = self.submit_batch(&[TuneRequest::bare(*shape, kind)], device)?;
        Ok(session.wait()?.pop().expect("one result per request"))
    }
}

/// A submitted batch on some [`Backend`]: query its shape, then block
/// for the results.
pub trait BackendSession {
    /// Original requests in the session.
    fn request_count(&self) -> usize;

    /// Unique workloads after fingerprint dedup.
    fn unique_workloads(&self) -> usize;

    /// Blocks until every member resolves; one result per original
    /// request, in request order (`None` = infeasible workload).
    fn wait(self) -> Result<Vec<Option<ServeResult>>, BackendError>;
}

impl Backend for TuningService {
    type Session = SessionHandle;

    fn submit_batch(
        &self,
        requests: &[TuneRequest],
        device: &DeviceSpec,
    ) -> Result<SessionHandle, BackendError> {
        Ok(self.submit(requests, device))
    }

    fn sync(&self) -> Result<SyncOutcome, BackendError> {
        Ok(SyncOutcome { persisted: false, total: self.lock().shards.len() })
    }

    fn stats(&self) -> Result<StatsReport, BackendError> {
        Ok(StatsReport { snapshot: self.snapshot(), metrics: self.metrics() })
    }
}

impl BackendSession for SessionHandle {
    fn request_count(&self) -> usize {
        SessionHandle::request_count(self)
    }

    fn unique_workloads(&self) -> usize {
        SessionHandle::unique_workloads(self)
    }

    fn wait(self) -> Result<Vec<Option<ServeResult>>, BackendError> {
        Ok(SessionHandle::wait(self))
    }
}

/// A client request confirmed a speculated workload: count the hit once.
fn confirm_speculation(st: &mut State, fingerprint: &str) {
    if let Some(kind) = st.speculative_origin.remove(fingerprint) {
        st.stats.speculation[kind.index()].hits += 1;
    }
}

impl TuningService {
    /// Submits a batch of requests on a device — shorthand for
    /// [`TuningSession::new`] + [`TuningSession::submit`].
    pub fn submit(&self, requests: &[TuneRequest], device: &DeviceSpec) -> SessionHandle {
        TuningSession::new(self, device).submit(requests)
    }
}

impl SessionHandle {
    /// The session's batch-group id.
    pub fn group(&self) -> u64 {
        self.group
    }

    /// Unique workloads in this session (after dedup).
    pub fn unique_workloads(&self) -> usize {
        self.members.len()
    }

    /// Original requests in this session.
    pub fn request_count(&self) -> usize {
        self.requests.len()
    }

    /// Blocks until every member workload is resolved, helping with the
    /// session's own queued jobs on the calling thread (so a session
    /// completes even with zero workers on a single-core host), then
    /// returns one result per original request, in request order.
    /// Duplicate requests share their representative's records and
    /// report as shard hits; infeasible workloads yield `None`.
    pub fn wait(mut self) -> Vec<Option<ServeResult>> {
        'progress: loop {
            // Claim every job of ours still in the queue (whatever tier
            // or group staged it — promotion makes this almost always
            // batch tier) and tune the whole set as one hermetic batch.
            let claimed: Vec<(usize, Job)> = {
                let mut st = self.service.lock();
                let mut claimed = Vec::new();
                for (at, member) in self.members.iter().enumerate() {
                    if member.resolution.is_none() && !st.in_flight.contains(&member.fingerprint) {
                        if let Some(job) = st.queue.take(&member.fingerprint) {
                            // Absorbing a background-tier duplicate is
                            // the session-path "cancel the speculative
                            // duplicate".
                            st.in_flight.insert(member.fingerprint.clone());
                            claimed.push((at, job));
                        }
                    }
                }
                claimed
            };
            if !claimed.is_empty() {
                self.run_claimed(claimed);
                continue 'progress;
            }
            let mut st = self.service.lock();
            loop {
                let mut lost = false;
                let mut all_resolved = true;
                for member in &mut self.members {
                    if member.resolution.is_some() {
                        continue;
                    }
                    if !st.shards.records(&member.workload).is_empty() {
                        member.resolution = Some(Resolution::Stolen);
                        confirm_speculation(&mut st, &member.fingerprint);
                        continue;
                    }
                    if st.infeasible.contains(&member.fingerprint) {
                        member.resolution = Some(Resolution::Infeasible);
                        continue;
                    }
                    all_resolved = false;
                    if st.queue.contains(&member.fingerprint) {
                        // Claimable: go around the claim loop again.
                        drop(st);
                        continue 'progress;
                    }
                    if !st.in_flight.contains(&member.fingerprint) {
                        // Neither stored, queued, nor in flight: the job
                        // was lost (a panicked worker). Re-arm it.
                        let gap = 1.0; // re-arm priority is irrelevant: we claim it ourselves next
                        let job = Job {
                            shape: member.shape,
                            kind: member.kind,
                            epilogue: member.epilogue,
                            device: self.device.clone(),
                            tier: JobTier::Batch { group: self.group },
                            perturbation: None,
                            enqueued_at: None,
                        };
                        if let PushOutcome::Added = st.queue.push(job, gap) {
                            lost = true;
                        }
                    }
                }
                if all_resolved {
                    return self.collect(st);
                }
                if lost {
                    drop(st);
                    continue 'progress;
                }
                // Everything outstanding is in flight elsewhere: wait
                // for a landing, then re-check.
                st = self.service.inner.changed.wait(st).expect("service state poisoned");
            }
        }
    }

    /// Tunes the claimed jobs as one batch on this thread, with the
    /// same panic hygiene as the background path: on unwind the claimed
    /// fingerprints leave the in-flight set and waiters are woken before
    /// the panic resumes.
    fn run_claimed(&mut self, claimed: Vec<(usize, Job)>) {
        let config = self.service.config();
        let requests: Vec<BatchRequest> = claimed
            .iter()
            .map(|(_, job)| BatchRequest {
                shape: job.shape,
                kind: job.kind,
                epilogue: job.epilogue,
            })
            .collect();
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            tune_batch(&requests, &self.device, config.budget_per_workload, config.seed)
        }));
        let mut st = self.service.lock();
        for (at, _) in &claimed {
            st.in_flight.remove(&self.members[*at].fingerprint);
        }
        let batch = match outcome {
            Ok(batch) => batch,
            Err(payload) => {
                drop(st);
                self.service.inner.changed.notify_all();
                std::panic::resume_unwind(payload);
            }
        };
        st.shards.merge_flat(batch.store);
        for ((at, _), result) in claimed.iter().zip(batch.results) {
            let member = &mut self.members[*at];
            match result {
                Some(out) => {
                    st.stats.inline_tuned += 1;
                    st.stats.fresh_measurements += out.fresh_measurements;
                    st.stats.cache_hits += out.cache_hits;
                    member.resolution = Some(Resolution::Inline {
                        fresh_measurements: out.fresh_measurements,
                        cache_hits: out.cache_hits,
                    });
                }
                None => {
                    st.stats.infeasible += 1;
                    st.infeasible.insert(member.fingerprint.clone());
                    member.resolution = Some(Resolution::Infeasible);
                }
            }
        }
        drop(st);
        self.service.inner.changed.notify_all();
    }

    /// Builds the per-request results under the final lock.
    fn collect(&self, mut st: MutexGuard<'_, State>) -> Vec<Option<ServeResult>> {
        st.stats.networks_served += 1;
        let telemetry = self.service.inner.telemetry.clone();
        telemetry.observe_since("iolb_session_us", self.started);
        telemetry.incr("iolb_sessions_total", 1);
        let mut out = Vec::with_capacity(self.requests.len());
        for &(at, first) in &self.requests {
            let member = &self.members[at];
            let resolution = member.resolution.expect("collect after full resolution");
            if matches!(resolution, Resolution::Infeasible) {
                out.push(None);
                continue;
            }
            if let Resolution::Anchored { config, cost_ms, retune } = resolution {
                // Anchored members (and their fan-out duplicates) replay
                // the transferred config; the store holds no record for
                // this exact fingerprint, so there is nothing to touch.
                st.stats.anchored_hits += 1;
                telemetry.incr("iolb_anchor_hits_total", 1);
                if retune {
                    st.stats.transfer_retunes += 1;
                    telemetry.incr("iolb_transfer_retunes_total", 1);
                }
                crate::log_event!(
                    Debug,
                    "session.result",
                    group = self.group,
                    fingerprint = member.fingerprint,
                    source = "anchor",
                    fresh = 0usize,
                );
                out.push(Some(ServeResult {
                    config,
                    cost_ms,
                    source: ServeSource::Anchored { retune },
                    fresh_measurements: 0,
                    cache_hits: 0,
                    fused: !member.epilogue.is_none(),
                }));
                continue;
            }
            st.shards.touch(&member.fingerprint);
            let best =
                st.shards.best(&member.workload).expect("resolved member has records").clone();
            let (source, fresh_measurements, cache_hits) = if !first {
                // Fan-out duplicate: replays its representative's record.
                st.stats.shard_hits += 1;
                (ServeSource::ShardHit, 0, 0)
            } else {
                match resolution {
                    Resolution::Hit => {
                        st.stats.shard_hits += 1;
                        (ServeSource::ShardHit, 0, 0)
                    }
                    Resolution::Stolen => {
                        st.stats.stolen += 1;
                        (ServeSource::Stolen, 0, 0)
                    }
                    Resolution::Inline { fresh_measurements, cache_hits } => (
                        // inline_tuned was counted when the tune ran.
                        ServeSource::Inline { cancelled_speculative: member.cancelled_speculative },
                        fresh_measurements,
                        cache_hits,
                    ),
                    Resolution::Infeasible => unreachable!("handled above"),
                    Resolution::Anchored { .. } => unreachable!("handled above"),
                }
            };
            let source_label = match source {
                ServeSource::ShardHit => "hit",
                ServeSource::Stolen => "stolen",
                ServeSource::Inline { .. } => "inline",
                ServeSource::Anchored { .. } => "anchor",
            };
            crate::log_event!(
                Debug,
                "session.result",
                group = self.group,
                fingerprint = member.fingerprint,
                source = source_label,
                fresh = fresh_measurements,
            );
            out.push(Some(ServeResult {
                config: best.config,
                cost_ms: best.cost_ms,
                source,
                fresh_measurements,
                cache_hits,
                fused: !member.epilogue.is_none(),
            }));
        }
        out
    }
}
