//! The resident shard-server daemon and its socket client.
//!
//! PR 4 let N `tune-net` processes share one shard directory, but every
//! sync still rendezvoused on the directory `flock` and re-loaded /
//! re-merged the JSONL from disk. A [`Daemon`] removes that rendezvous:
//! it takes the directory's advisory [`DirLock`] **once, for its whole
//! lifetime**, owns the [`ShardedStore`](crate::shard::ShardedStore)
//! in memory, serves tuning
//! sessions over a Unix domain socket, and batches persistence on a
//! merge interval instead of per request.
//!
//! * **Single-flock ownership** — while the daemon runs, no other writer
//!   can touch the directory (they time out with the typed
//!   [`LockError`](crate::shard::LockError)); lock-free readers keep
//!   working as always (every persist is atomic temp + rename). Because
//!   the daemon holds the flock, its own persists skip re-acquisition
//!   and re-merging entirely — an overwrite save of the authoritative
//!   in-memory state.
//! * **Cross-client dedup for free** — every client `Submit` becomes a
//!   [`TuningService`] session inside one process, so two clients
//!   requesting the same workload hit the existing
//!   fingerprint/in-flight machinery: exactly one tuning run, fanned
//!   out to every waiter (pinned cross-process by
//!   `crates/bench/tests/daemon.rs`).
//! * **Concurrent clients on the pool** — each accepted connection is
//!   handled by a `rayon::spawn` task on the shim's persistent pool.
//!   A blocked `Wait` *helps tune its own session's jobs* on that very
//!   thread (the session contract), so progress never depends on free
//!   pool workers; on a zero-worker (single-core) pool, connections are
//!   handled inline on the accept thread, serialized but correct.
//! * **Results are bit-identical** — the daemon runs the same hermetic
//!   per-workload tuning as the embedded path; `tests/daemon.rs` pins
//!   daemon-served configs against eager `tune_with_store`.
//!
//! [`SocketBackend`] is the client half: it implements [`Backend`], so
//! everything written against the trait
//! (`iolb_cnn::time_network_with_backend`, `tune-net`) runs embedded or
//! client/server without changing a line.

use crate::service::{ServiceSnapshot, TuningService};
use crate::session::{Backend, BackendError, BackendSession, SyncOutcome, TuneRequest};
use crate::shard::{DirLock, ShardLoadReport};
use crate::wire::{self, Request, Response, WireError};
use iolb_gpusim::DeviceSpec;
use std::collections::BTreeMap;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Conventional socket file name inside a shard directory
/// (`tune-cache serve DIR` listens on `DIR/daemon.sock` by default).
pub const SOCKET_FILE: &str = "daemon.sock";

/// Daemon knobs on top of the service's own.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DaemonConfig {
    /// The tuning service the daemon embeds (budget, seed, workers,
    /// lock timeout for the startup lock, ...). Clients inherit these:
    /// budget and seed are server-side state so every client's results
    /// replay bit-identically.
    pub service: crate::service::ServiceConfig,
    /// How often the persister flushes dirty in-memory state to the
    /// shard directory. Between flushes, requests are served purely from
    /// memory — this is the "batch merges instead of per-request
    /// rendezvous" the daemon exists for. A client `Sync` forces an
    /// immediate flush; shutdown always flushes.
    pub merge_interval: Duration,
    /// How long a connection may sit idle (no request in flight) before
    /// the daemon drops it. Connection handlers run on the shared rayon
    /// pool, so a parked connection occupies a pool worker; without this
    /// bound, a handful of idle (or hostile) clients could pin every
    /// worker and starve new connections — including `tune-cache stop`.
    /// Clients are short-lived CLI sessions; reconnecting is cheap.
    pub idle_timeout: Duration,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        Self {
            service: crate::service::ServiceConfig::default(),
            merge_interval: Duration::from_secs(1),
            idle_timeout: Duration::from_secs(30),
        }
    }
}

/// State shared between the accept loop, connection handlers and the
/// persister thread.
struct Shared {
    shutdown: AtomicBool,
    /// Live client connections; shutdown drains to zero before the
    /// final persist.
    active: AtomicUsize,
    gate: Mutex<()>,
    /// Signalled on connection-count changes and persister wake-ups.
    changed: Condvar,
    /// Serializes persists. The atomic-save protocol qualifies its temp
    /// files by *pid* (enough for the cross-process protocol, where
    /// each process saves from one thread) — but the daemon persists
    /// from several threads of one process (the interval persister and
    /// any client `Sync` handler), which would share a temp path and
    /// rename each other's half-written files into place.
    persist_gate: Mutex<()>,
}

impl Shared {
    fn request_shutdown(&self, socket_path: &Path) {
        self.shutdown.store(true, Ordering::SeqCst);
        {
            let _g = self.gate.lock().expect("daemon gate poisoned");
            self.changed.notify_all();
        }
        // Wake the accept loop: it re-checks the flag per connection.
        let _ = UnixStream::connect(socket_path);
    }
}

/// A resident shard-server: owns a shard directory (one flock for its
/// lifetime) and serves tuning sessions over a Unix domain socket.
pub struct Daemon {
    service: TuningService,
    config: DaemonConfig,
    dir: PathBuf,
    socket_path: PathBuf,
    listener: UnixListener,
    shared: Arc<Shared>,
    /// Held from bind to drop: the directory belongs to this process.
    _lock: DirLock,
}

impl Daemon {
    /// Claims the shard directory (advisory lock, held until the daemon
    /// exits), loads its records and persisted telemetry (the same
    /// restore path as [`TuningService::open`], under our lock), and
    /// binds the socket. A pre-existing socket file is removed only
    /// when nothing answers on it (a stale leftover from a crashed
    /// daemon); a *live* listener — e.g. another daemon given the same
    /// `--socket` path over a different directory, which our flock says
    /// nothing about — fails the bind with `AddrInUse` instead of being
    /// silently unplugged.
    pub fn bind(
        dir: impl AsRef<Path>,
        socket_path: impl AsRef<Path>,
        config: DaemonConfig,
    ) -> std::io::Result<(Self, ShardLoadReport)> {
        let dir = dir.as_ref().to_path_buf();
        let socket_path = socket_path.as_ref().to_path_buf();
        let lock = DirLock::acquire(&dir, config.service.lock_timeout)?;
        let (service, report) = TuningService::open(&dir, config.service)?;
        if socket_path.exists() {
            if UnixStream::connect(&socket_path).is_ok() {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::AddrInUse,
                    format!("a live daemon already listens on {}", socket_path.display()),
                ));
            }
            std::fs::remove_file(&socket_path)?;
        }
        let listener = UnixListener::bind(&socket_path)?;
        let shared = Arc::new(Shared {
            shutdown: AtomicBool::new(false),
            active: AtomicUsize::new(0),
            gate: Mutex::new(()),
            changed: Condvar::new(),
            persist_gate: Mutex::new(()),
        });
        Ok((Self { service, config, dir, socket_path, listener, shared, _lock: lock }, report))
    }

    /// The embedded tuning service (tests and in-process callers).
    pub fn service(&self) -> &TuningService {
        &self.service
    }

    /// The socket clients connect to.
    pub fn socket_path(&self) -> &Path {
        &self.socket_path
    }

    /// The shard directory this daemon owns.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Serves until a client sends `Shutdown`: accepts connections,
    /// hands each to a pool task, and keeps the persister flushing on
    /// the merge interval. On shutdown it drains live connections, does
    /// a final persist, and removes the socket file.
    pub fn run(self) -> std::io::Result<()> {
        let persister = {
            let service = self.service.clone();
            let dir = self.dir.clone();
            let shared = Arc::clone(&self.shared);
            let interval = self.config.merge_interval;
            std::thread::Builder::new().name("iolb-daemon-persist".into()).spawn(move || {
                let mut last: Option<ServiceSnapshot> = None;
                loop {
                    {
                        let guard = shared.gate.lock().expect("daemon gate poisoned");
                        let _ = shared
                            .changed
                            .wait_timeout(guard, interval)
                            .expect("daemon gate poisoned");
                    }
                    let stop = shared.shutdown.load(Ordering::SeqCst);
                    if stop {
                        // Final flush happens after connections drain,
                        // below in run(); stop ticking.
                        break;
                    }
                    let snapshot = service.snapshot();
                    if last != Some(snapshot) {
                        let (_, persisted) = persist(&service, &dir, &shared);
                        if persisted {
                            last = Some(snapshot);
                        }
                        // A failed flush leaves `last` stale, so the next
                        // tick retries instead of believing it succeeded.
                    }
                }
            })?
        };

        for stream in self.listener.incoming() {
            if self.shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else {
                // A persistent accept failure (fd exhaustion) must not
                // busy-spin a core; back off briefly and retry.
                std::thread::sleep(Duration::from_millis(50));
                continue;
            };
            self.shared.active.fetch_add(1, Ordering::SeqCst);
            let service = self.service.clone();
            let dir = self.dir.clone();
            let shared = Arc::clone(&self.shared);
            let socket_path = self.socket_path.clone();
            let idle_timeout = self.config.idle_timeout;
            rayon::spawn(move || {
                // Decrement even if the handler panics (a panicking tuner
                // is caught by the pool; shutdown must still drain).
                struct Departure(Arc<Shared>);
                impl Drop for Departure {
                    fn drop(&mut self) {
                        self.0.active.fetch_sub(1, Ordering::SeqCst);
                        let _g = self.0.gate.lock().expect("daemon gate poisoned");
                        self.0.changed.notify_all();
                    }
                }
                let _departure = Departure(shared.clone());
                handle_connection(&service, stream, &dir, &shared, &socket_path, idle_timeout);
            });
        }

        // Shutdown: let in-flight clients finish, then flush once.
        {
            let mut guard = self.shared.gate.lock().expect("daemon gate poisoned");
            while self.shared.active.load(Ordering::SeqCst) > 0 {
                guard = self.shared.changed.wait(guard).expect("daemon gate poisoned");
            }
        }
        persister.join().expect("daemon persister panicked");
        let (_, persisted) = persist(&self.service, &self.dir, &self.shared);
        let _ = std::fs::remove_file(&self.socket_path);
        if persisted {
            Ok(())
        } else {
            // Exiting 0 here would tell orchestrators the shutdown was
            // clean while the last merge-interval's records were lost.
            Err(std::io::Error::other(format!(
                "final flush to {} failed; records tuned since the last successful persist were                  not saved",
                self.dir.display()
            )))
        }
    }
}

/// Overwrite-saves the service's authoritative state into the daemon's
/// directory. No [`DirLock`] here — the daemon already holds the
/// directory's flock for its lifetime (re-acquiring on the same file
/// would deadlock against ourselves, and nobody else may write). Errors
/// are reported, not fatal to *serving* — but the returned flag is
/// honest, so a client `Sync` answers `persisted: false` and the
/// interval persister retries rather than believing the flush landed.
/// Returns `(total records, persisted ok)`.
fn persist(service: &TuningService, dir: &Path, shared: &Shared) -> (usize, bool) {
    // One persist at a time: see `Shared::persist_gate`.
    let _serialized = shared.persist_gate.lock().expect("daemon persist gate poisoned");
    let (shards, snapshot) = {
        let st = service.lock();
        (
            st.shards.clone(),
            ServiceSnapshot {
                stats: st.stats,
                queue_len: st.queue.len(),
                budget_left: st.budget_left,
            },
        )
    };
    let total = shards.len();
    let persisted = match shards.save(dir).and_then(|()| snapshot.save(dir)) {
        Ok(()) => true,
        Err(e) => {
            eprintln!("iolb-daemon: cannot persist {}: {e}", dir.display());
            false
        }
    };
    (total, persisted)
}

/// How often an idle connection handler wakes to check the shutdown
/// flag and its idle budget.
const IDLE_TICK: Duration = Duration::from_millis(250);

/// Upper bound on reading one frame once its first byte has arrived —
/// generous for local sockets, but finite, so a peer that trickles a
/// frame byte-by-byte cannot pin a pool worker forever.
const FRAME_TIMEOUT: Duration = Duration::from_secs(30);

/// A reader that enforces an *overall* deadline across however many
/// `read` calls a frame takes. The socket's own `SO_RCVTIMEO` stays at
/// [`IDLE_TICK`], so each blocked read wakes often enough to re-check
/// the deadline and the daemon's shutdown flag — without this, a peer
/// trickling bytes would reset the per-read timeout indefinitely.
struct DeadlineReader<'a> {
    stream: &'a mut UnixStream,
    deadline: std::time::Instant,
    shared: &'a Shared,
}

impl std::io::Read for DeadlineReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        loop {
            if self.shared.shutdown.load(Ordering::SeqCst) {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    "daemon is shutting down",
                ));
            }
            if std::time::Instant::now() >= self.deadline {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    "frame deadline exceeded",
                ));
            }
            match self.stream.read(buf) {
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock
                            | std::io::ErrorKind::TimedOut
                            | std::io::ErrorKind::Interrupted
                    ) => {}
                other => return other,
            }
        }
    }
}

/// Serves one client connection: a sequence of framed requests until
/// EOF, a transport error, the idle timeout, or `Shutdown`. Sessions
/// are per-connection; an abandoned connection's queued jobs stay in
/// the service queue at batch priority (the documented drop semantics
/// of `SessionHandle`).
///
/// Handlers run on the shared rayon pool, so a connection must never
/// occupy a worker indefinitely while doing nothing: between requests
/// the handler reads the next frame's 4-byte length prefix *resumably*
/// under a short read timeout (partial prefix bytes are kept across
/// ticks, so a timeout never desynchronizes the frame stream), evicting
/// the connection after [`DaemonConfig::idle_timeout`] and noticing a
/// requested shutdown within one tick.
fn handle_connection(
    service: &TuningService,
    mut stream: UnixStream,
    dir: &Path,
    shared: &Shared,
    socket_path: &Path,
    idle_timeout: Duration,
) {
    use std::io::Read;
    let mut sessions = BTreeMap::new();
    let mut next_session = 0u64;
    let mut idle = Duration::ZERO;
    if stream.set_read_timeout(Some(IDLE_TICK)).is_err() {
        return;
    }
    'connection: loop {
        // Resumable prefix read: idle ticks between frames, a bounded
        // patience window once a frame has started arriving.
        let mut len_buf = [0u8; 4];
        let mut filled = 0usize;
        let mut frame_deadline: Option<std::time::Instant> = None;
        let len = loop {
            match stream.read(&mut len_buf[filled..]) {
                // EOF: clean between frames, truncated inside a prefix —
                // either way the connection is over.
                Ok(0) => break 'connection,
                Ok(n) => {
                    filled += n;
                    idle = Duration::ZERO;
                    frame_deadline.get_or_insert_with(|| std::time::Instant::now() + FRAME_TIMEOUT);
                    if filled == len_buf.len() {
                        break u32::from_be_bytes(len_buf) as usize;
                    }
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    if shared.shutdown.load(Ordering::SeqCst) {
                        break 'connection;
                    }
                    match frame_deadline {
                        Some(deadline) if std::time::Instant::now() >= deadline => {
                            break 'connection
                        }
                        Some(_) => {}
                        None => {
                            idle += IDLE_TICK;
                            if idle >= idle_timeout {
                                break 'connection;
                            }
                        }
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => break 'connection,
            }
        };
        // The payload is owed now. The socket timeout alone cannot
        // bound it — SO_RCVTIMEO is per read() call, so a peer
        // trickling one byte per tick would reset it forever; the
        // DeadlineReader enforces the frame deadline (and notices
        // shutdown) across the whole payload.
        let deadline = frame_deadline.unwrap_or_else(|| std::time::Instant::now() + FRAME_TIMEOUT);
        let request = {
            let mut reader = DeadlineReader { stream: &mut stream, deadline, shared };
            wire::read_payload(&mut reader, len).and_then(wire::decode_request_payload)
        };
        let request = match request {
            Ok(request) => request,
            Err(e) => {
                // A malformed client must not take the daemon down; tell
                // it what was wrong if the pipe still works, then drop it.
                let _ =
                    wire::write_response(&mut stream, &Response::Error { message: e.to_string() });
                break;
            }
        };
        let response = match request {
            Request::Submit { device, requests } => {
                let handle = service.submit(&requests, &device);
                let session = next_session;
                next_session += 1;
                let unique = handle.unique_workloads();
                sessions.insert(session, handle);
                Response::Submitted { session, unique }
            }
            Request::Wait { session } => match sessions.remove(&session) {
                // wait() helps tune this session's jobs on this thread.
                Some(handle) => Response::Results { results: handle.wait() },
                None => Response::Error { message: format!("unknown session {session}") },
            },
            Request::Sync => {
                let (total, persisted) = persist(service, dir, shared);
                Response::Synced { persisted, total }
            }
            Request::Stats => Response::Stats { snapshot: Box::new(service.snapshot()) },
            Request::Shutdown => {
                let _ = wire::write_response(&mut stream, &Response::Bye);
                shared.request_shutdown(socket_path);
                break;
            }
        };
        if wire::write_response(&mut stream, &response).is_err() {
            break;
        }
    }
}

// ---------------------------------------------------------------- client

impl From<WireError> for BackendError {
    fn from(e: WireError) -> Self {
        match e {
            WireError::Io(io) => BackendError::Transport(io),
            other => BackendError::Protocol(other.to_string()),
        }
    }
}

/// The daemon client: a [`Backend`] over one Unix-socket connection.
/// Cheap to clone (clones share the connection); requests are
/// serialized request/response pairs, so a blocked [`wait`] occupies
/// the connection — use one `SocketBackend` per concurrent session.
///
/// [`wait`]: BackendSession::wait
#[derive(Clone)]
pub struct SocketBackend {
    stream: Arc<Mutex<UnixStream>>,
}

impl SocketBackend {
    /// Connects to a daemon's socket.
    pub fn connect(path: impl AsRef<Path>) -> std::io::Result<Self> {
        Ok(Self { stream: Arc::new(Mutex::new(UnixStream::connect(path)?)) })
    }

    /// One request/response exchange. Daemon-reported errors surface as
    /// [`BackendError::Remote`].
    fn call(&self, request: &Request) -> Result<Response, BackendError> {
        let mut stream = self.stream.lock().expect("socket backend poisoned");
        wire::write_request(&mut *stream, request)?;
        match wire::read_response(&mut *stream)? {
            Response::Error { message } => Err(BackendError::Remote(message)),
            response => Ok(response),
        }
    }

    /// Asks the daemon to persist and exit. The daemon finishes serving
    /// live connections, flushes once more, and removes its socket.
    pub fn shutdown(&self) -> Result<(), BackendError> {
        match self.call(&Request::Shutdown)? {
            Response::Bye => Ok(()),
            other => Err(BackendError::Protocol(format!("expected Bye, got {other:?}"))),
        }
    }
}

/// A batch submitted over the socket; the daemon holds the real
/// [`SessionHandle`](crate::session::SessionHandle) server-side.
pub struct SocketSession {
    backend: SocketBackend,
    session: u64,
    requests: usize,
    unique: usize,
}

impl BackendSession for SocketSession {
    fn request_count(&self) -> usize {
        self.requests
    }

    fn unique_workloads(&self) -> usize {
        self.unique
    }

    fn wait(self) -> Result<Vec<Option<crate::service::ServeResult>>, BackendError> {
        match self.backend.call(&Request::Wait { session: self.session })? {
            Response::Results { results } => {
                if results.len() != self.requests {
                    return Err(BackendError::Protocol(format!(
                        "daemon returned {} result(s) for {} request(s)",
                        results.len(),
                        self.requests
                    )));
                }
                Ok(results)
            }
            other => Err(BackendError::Protocol(format!("expected Results, got {other:?}"))),
        }
    }
}

impl Backend for SocketBackend {
    type Session = SocketSession;

    fn submit_batch(
        &self,
        requests: &[TuneRequest],
        device: &DeviceSpec,
    ) -> Result<SocketSession, BackendError> {
        let request = Request::Submit { device: device.clone(), requests: requests.to_vec() };
        match self.call(&request)? {
            Response::Submitted { session, unique } => Ok(SocketSession {
                backend: self.clone(),
                session,
                requests: requests.len(),
                unique,
            }),
            other => Err(BackendError::Protocol(format!("expected Submitted, got {other:?}"))),
        }
    }

    fn sync(&self) -> Result<SyncOutcome, BackendError> {
        match self.call(&Request::Sync)? {
            Response::Synced { persisted, total } => Ok(SyncOutcome { persisted, total }),
            other => Err(BackendError::Protocol(format!("expected Synced, got {other:?}"))),
        }
    }

    fn stats(&self) -> Result<ServiceSnapshot, BackendError> {
        match self.call(&Request::Stats)? {
            Response::Stats { snapshot } => Ok(*snapshot),
            other => Err(BackendError::Protocol(format!("expected Stats, got {other:?}"))),
        }
    }
}
