#!/usr/bin/env bash
# Anchored-serving smoke (ISSUE 8 acceptance): `tune-bench replay
# --jitter` warms the store on the unjittered model-zoo shapes, then
# replays every session with in-bucket jittered copies. Exact hit rate
# collapses to ~0 (every fingerprint is new) but the anchor layer must
# answer >= 95% of requests from the buckets with ZERO fresh
# measurements — in the embedded service and through a live daemon, at
# bit-identical total cost. The caller's RAYON_NUM_THREADS is honored,
# so CI exercises both the pooled and single-thread paths.
set -euo pipefail

TB=target/release/tune-bench
TC=target/release/tune-cache
OUT=$(mktemp /tmp/iolb-anchor-replay.XXXXXX.json)
trap 'rm -f "$OUT"' EXIT

"$TB" replay --networks alexnet --clients 2 --repeat 2 --budget 4 --jitter -o "$OUT"

# check-bench enforces the jittered invariants: anchored_hit_rate >=
# 0.95 and fresh == 0 in both modes, embedded/daemon bit-identity.
"$TC" check-bench "$OUT"

# Belt and braces: assert the load-bearing fields directly, so a
# check-bench regression cannot silently weaken this gate.
for field in '"jitter":1' \
             '"embedded_hit_rate":0' '"daemon_hit_rate":0' \
             '"embedded_anchored_hit_rate":1' '"daemon_anchored_hit_rate":1' \
             '"embedded_fresh":0' '"daemon_fresh":0'; do
  grep -qF "$field" "$OUT" \
    || { echo "anchor smoke: expected $field in $(cat "$OUT")"; exit 1; }
done

# And an unjittered file claiming a jittered fresh-measurement count
# must fail the gate (the gate itself is load-bearing).
if sed 's/"embedded_fresh":0/"embedded_fresh":7/' "$OUT" | "$TC" check-bench /dev/stdin 2>/dev/null; then
  echo "check-bench accepted fresh measurements under --jitter"
  exit 1
fi

echo "anchor smoke OK"
