//! Property tests for the sharded store:
//!
//! * splitting a flat store into device shards and merging the shards
//!   back is the identity on the record set (canonical JSONL equality);
//! * eviction never removes a workload's best-cost record, whatever the
//!   policy, the record population or the LRU history.

use iolb_core::optimality::TileKind;
use iolb_core::shapes::ConvShape;
use iolb_dataflow::config::ScheduleConfig;
use iolb_records::{RecordStore, TuningRecord, Workload};
use iolb_service::{EvictionPolicy, ShardedStore};
use iolb_tensor::layout::Layout;
use proptest::prelude::*;

const DEVICES: [(&str, u32); 3] =
    [("Tesla V100", 96 * 1024), ("GTX 1080 Ti", 96 * 1024), ("Titan X", 64 * 1024)];

/// Builds one record from drawn coordinates. Costs are quantized to
/// strictly positive multiples of 2^-8 so duplicate workload+config
/// pairs collapse deterministically.
fn record(device: usize, cin_pow: u32, x: usize, cost_q: u32) -> TuningRecord {
    let (name, smem) = DEVICES[device % DEVICES.len()];
    let workload = Workload::new(
        ConvShape::square(1 << (cin_pow % 5 + 4), 28, 32, 3, 1, 1),
        TileKind::Direct,
        name,
        smem,
    );
    let config = ScheduleConfig {
        x: [1, 2, 4, 7, 14, 28][x % 6],
        y: 7,
        z: 8,
        nxt: 1,
        nyt: 1,
        nzt: 1,
        sb_bytes: 16 * 1024,
        layout: Layout::Chw,
    };
    TuningRecord::new(workload, config, (cost_q % 256 + 1) as f64 / 256.0, 7).unwrap()
}

fn flat_store(draws: &[(usize, u32, usize, u32)]) -> RecordStore {
    let mut store = RecordStore::new();
    for &(device, cin, x, cost) in draws {
        store.insert(record(device, cin, x, cost));
    }
    store
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn shard_split_then_merge_is_identity(
        draws in prop::collection::vec((0usize..3, 0u32..5, 0usize..6, 0u32..256), 0..80),
    ) {
        let flat = flat_store(&draws);
        let sharded = ShardedStore::from_flat(flat.clone());
        // Same record multiset, same canonical bytes.
        prop_assert_eq!(sharded.len(), flat.len());
        prop_assert_eq!(sharded.merged().to_jsonl(), flat.to_jsonl());
        // And sharding is idempotent: re-splitting the merge changes nothing.
        let resharded = ShardedStore::from_flat(sharded.merged());
        prop_assert_eq!(resharded.merged().to_jsonl(), flat.to_jsonl());
    }

    #[test]
    fn eviction_never_removes_a_best_record(
        draws in prop::collection::vec((0usize..3, 0u32..5, 0usize..6, 0u32..256), 1..80),
        touches in prop::collection::vec(0usize..80, 0..40),
        max_records in 0usize..64,
        top_k in 0usize..5,
    ) {
        let flat = flat_store(&draws);
        let mut sharded = ShardedStore::from_flat(flat.clone());
        // An arbitrary LRU history over the existing workloads.
        let fingerprints: Vec<String> =
            flat.fingerprints().map(str::to_string).collect();
        for &t in &touches {
            sharded.touch(&fingerprints[t % fingerprints.len()]);
        }
        let before = sharded.len();
        let dropped = sharded.evict(&EvictionPolicy { max_records, top_k });
        prop_assert_eq!(sharded.len() + dropped, before, "drop accounting");
        // The budget is met up to the one-record-per-workload floor.
        prop_assert!(sharded.len() <= max_records.max(flat.workload_count()));
        // No workload lost its best-cost record.
        let merged = sharded.merged();
        for (fp, recs) in flat.entries() {
            let kept = merged.records(fp);
            prop_assert!(!kept.is_empty(), "workload {} evicted entirely", fp);
            prop_assert_eq!(
                kept[0].cost_ms.to_bits(),
                recs[0].cost_ms.to_bits(),
                "best record of {} lost", fp
            );
        }
    }
}
