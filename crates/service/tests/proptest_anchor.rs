//! Property tests for the shape-anchoring layer: the bucket map is a
//! well-behaved canonicalization (idempotent, deterministic, injective
//! over everything that must not merge), the analytic transfer gate
//! never admits a donor whose I/O lower bound is further than the gap
//! bound from the target's, and the sharded store's on-disk round trip
//! preserves both the exact and the anchored index.

use iolb_autotune::plan::{
    anchor_dim, anchor_fingerprint, anchor_shape, anchor_workload, fast_config, ANCHOR_FLOOR,
};
use iolb_core::optimality::TileKind;
use iolb_core::shapes::ConvShape;
use iolb_gpusim::DeviceSpec;
use iolb_records::{TuningRecord, Workload};
use iolb_service::queue::transfer_admissible;
use iolb_service::ShardedStore;
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A fresh scratch directory per proptest case (cases run concurrently
/// within one process, so a shared path would interleave saves).
fn scratch_dir() -> std::path::PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "iolb-proptest-anchor-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// In-bucket variants: every value in `(pow2/2, pow2]` above the floor
/// anchors to the same `pow2` bucket.
fn bucket_mate(d: usize, salt: usize) -> usize {
    let lo = (d.next_power_of_two() / 2 + 1).max(ANCHOR_FLOOR + 1);
    if d <= lo {
        return d;
    }
    let span = d - lo;
    d - (1 + salt % span.min(5))
}

fn workload_of(shape: ConvShape) -> Workload {
    Workload::new(shape, TileKind::Direct, "Tesla V100", 96 * 1024)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Anchoring is idempotent at every floor: a dimension (and a whole
    /// shape) that has been anchored once is a fixed point, so the
    /// anchor fingerprint of an anchored workload is its own.
    #[test]
    fn anchoring_is_idempotent(
        dims in prop::collection::vec(1usize..4096, 4),
        floor_pow in 1u32..8,
    ) {
        let floor = 1usize << floor_pow;
        for &d in &dims {
            let once = anchor_dim(d, floor);
            prop_assert_eq!(anchor_dim(once, floor), once, "anchor_dim({d}, {floor})");
            // The bucket never sits below its members: exact below the
            // floor, next power of two (>= d) above it.
            prop_assert!(once >= d || d <= floor);
        }
        let shape = ConvShape::new(dims[0], dims[1], dims[2], dims[3], 3, 3, 1, 1);
        let once = anchor_shape(&shape, floor);
        prop_assert_eq!(anchor_shape(&once, floor), once);
        let w = workload_of(shape);
        let anchored = anchor_workload(&w, floor);
        prop_assert_eq!(
            anchor_fingerprint(&anchored, floor),
            anchor_fingerprint(&w, floor)
        );
    }

    /// The anchor fingerprint is a pure function of the workload's
    /// *values*: however the shape struct is assembled (constructor,
    /// struct literal, field-by-field mutation in a different order),
    /// equal values give byte-identical fingerprints — and every
    /// in-bucket jitter of the spatial/channel extents lands in the
    /// same bucket, while batch/kernel/stride/pad never merge.
    #[test]
    fn anchor_fingerprints_are_deterministic_and_bucket_exact(
        cin in 17usize..512,
        hw in 17usize..256,
        cout in 17usize..512,
        salt in 0usize..1000,
    ) {
        let built = ConvShape::new(cin, hw, hw, cout, 3, 3, 1, 1);
        // Same values, assembled in a different textual order.
        let mut literal = ConvShape { cout, kh: 3, kw: 3, pad: 1, stride: 1, win: hw, hin: hw, cin, batch: 1 };
        prop_assert_eq!(built, literal);
        prop_assert_eq!(
            anchor_fingerprint(&workload_of(built), ANCHOR_FLOOR),
            anchor_fingerprint(&workload_of(literal), ANCHOR_FLOOR)
        );
        // In-bucket jitter: same anchor fingerprint.
        let jittered = ConvShape {
            cin: bucket_mate(cin, salt),
            hin: bucket_mate(hw, salt + 1),
            win: bucket_mate(hw, salt + 1),
            cout: bucket_mate(cout, salt + 2),
            ..built
        };
        prop_assert_eq!(
            anchor_fingerprint(&workload_of(jittered), ANCHOR_FLOOR),
            anchor_fingerprint(&workload_of(built), ANCHOR_FLOOR)
        );
        // Exact-geometry fields never merge: a different stride (and a
        // different batch) is always a different bucket.
        literal.stride = 2;
        prop_assert_ne!(
            anchor_fingerprint(&workload_of(literal), ANCHOR_FLOOR),
            anchor_fingerprint(&workload_of(built), ANCHOR_FLOOR)
        );
        let batched = ConvShape { batch: 2, ..built };
        prop_assert_ne!(
            anchor_fingerprint(&workload_of(batched), ANCHOR_FLOOR),
            anchor_fingerprint(&workload_of(built), ANCHOR_FLOOR)
        );
    }

    /// The analytic gate's contract: whenever `transfer_admissible`
    /// admits a donor config for a target, the I/O lower bounds of
    /// target and donor (at the config's stage-buffer size) are within
    /// the gap bound of each other — workloads whose analytic cost
    /// floors differ by more than the bound are never merged, whatever
    /// the draw.
    #[test]
    fn admissible_transfers_stay_within_the_lower_bound_gap(
        cin in 17usize..256,
        h in 17usize..128,
        w in 17usize..128,
        cout in 17usize..256,
        salt in 0usize..1000,
        bound_millis in 1000u64..3000,
    ) {
        let device = DeviceSpec::v100();
        let gap_bound = bound_millis as f64 / 1000.0;
        let donor = ConvShape::new(cin, h, w, cout, 1, 1, 1, 0);
        let target = ConvShape {
            cin: bucket_mate(cin, salt),
            hin: bucket_mate(h, salt + 1),
            win: bucket_mate(w, salt + 1),
            cout: bucket_mate(cout, salt + 2),
            ..donor
        };
        let Some(cfg) = fast_config(&donor, TileKind::Direct, &device) else {
            return Ok(()); // nothing to transfer for this draw
        };
        let cfg = cfg.project_onto(&target, TileKind::Direct);
        if transfer_admissible(&target, &donor, TileKind::Direct, &device, &cfg, gap_bound) {
            let s = cfg.sb_elems();
            let lower = |shape: &ConvShape| iolb_core::direct::io_lower_bound(shape, s).max(1.0);
            let (a, b) = (lower(&target), lower(&donor));
            let ratio = if a > b { a / b } else { b / a };
            prop_assert!(
                ratio <= gap_bound,
                "admitted transfer with lower-bound ratio {ratio} > bound {gap_bound}"
            );
        }
    }

    /// Save/load of a sharded store preserves the anchored view exactly:
    /// the reloaded store has the same records, the same per-device
    /// anchor bucket counts, and resolves the same donor for every
    /// in-bucket jitter of every stored workload.
    #[test]
    fn store_round_trip_preserves_both_fingerprints(
        draws in prop::collection::vec((17usize..512, 17usize..128, 17usize..512, 0usize..1000), 1..8),
    ) {
        let device = DeviceSpec::v100();
        let mut store = ShardedStore::new();
        for (i, &(cin, hw, cout, _)) in draws.iter().enumerate() {
            let shape = ConvShape::new(cin, hw, hw, cout, 1, 1, 1, 0);
            let Some(cfg) = fast_config(&shape, TileKind::Direct, &device) else { continue };
            store.insert(
                TuningRecord::new(workload_of(shape), cfg, 1.0 + i as f64, 7)
                    .expect("valid record"),
            );
        }
        let dir = scratch_dir();
        store.save(&dir).expect("save store");
        let (reloaded, report) = ShardedStore::load(&dir).expect("load store");
        std::fs::remove_dir_all(&dir).ok();
        prop_assert!(report.warnings.is_empty(), "clean reload: {:?}", report.warnings);
        prop_assert_eq!(&reloaded, &store);
        for (key, _) in store.shards() {
            prop_assert_eq!(reloaded.anchor_bucket_count(key), store.anchor_bucket_count(key));
        }
        // Every in-bucket jitter resolves to the same donor before and
        // after the round trip (both fingerprints survived the disk).
        for &(cin, hw, cout, salt) in &draws {
            let jittered = ConvShape::new(
                bucket_mate(cin, salt),
                bucket_mate(hw, salt + 1),
                bucket_mate(hw, salt + 1),
                bucket_mate(cout, salt + 2),
                1, 1, 1, 0,
            );
            let probe = workload_of(jittered);
            prop_assert_eq!(store.anchor_donor(&probe), reloaded.anchor_donor(&probe));
        }
    }
}
