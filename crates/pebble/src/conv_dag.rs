//! Literal DAG construction for the two convolution algorithms
//! (paper Figures 4 and 5) — the ground truth behind the vertex counts of
//! Lemmas 4.8 and 4.14 and the substrate for empirical pebbling of small
//! convolutions.

use crate::dag::{Dag, VertexId};
use iolb_core::shapes::{ConvShape, WinogradTile};

/// Builds the direct-convolution DAG (Fig. 4): step 1 creates the product
/// vertices `I_i ⊙ K_j`; step 2 sums them per output through a sequential
/// summation tree (in-degree ≤ 2, Lemma 4.7 structure).
///
/// Steps: inputs = 0, products = 1, summation internals/outputs = 2.
/// Only `batch == 1` shapes are supported (one image per DAG, as in §4.2).
pub fn direct_conv_dag(shape: &ConvShape) -> Dag {
    assert_eq!(shape.batch, 1, "one image per DAG");
    shape.validate().expect("invalid shape");
    let mut dag = Dag::new();

    // Input-image vertices (index map for sliding-window access).
    let mut img = vec![0 as VertexId; shape.cin * shape.hin * shape.win];
    for v in img.iter_mut() {
        *v = dag.add_vertex(0);
    }
    let img_at = |c: usize, h: usize, w: usize| img[(c * shape.hin + h) * shape.win + w];

    // Weight vertices.
    let mut wgt = vec![0 as VertexId; shape.cout * shape.cin * shape.kh * shape.kw];
    for v in wgt.iter_mut() {
        *v = dag.add_vertex(0);
    }
    let wgt_at = |co: usize, c: usize, y: usize, x: usize| {
        wgt[((co * shape.cin + c) * shape.kh + y) * shape.kw + x]
    };

    let (hout, wout) = (shape.hout(), shape.wout());
    for co in 0..shape.cout {
        for oy in 0..hout {
            for ox in 0..wout {
                // Step 1: product vertices of this output's window.
                let mut products = Vec::with_capacity(shape.cin * shape.kh * shape.kw);
                for c in 0..shape.cin {
                    for dy in 0..shape.kh {
                        for dx in 0..shape.kw {
                            let iy = oy * shape.stride + dy;
                            let ix = ox * shape.stride + dx;
                            // Padding would contribute constant zeros (no
                            // I/O); our builder requires pad = 0 windows.
                            assert!(shape.pad == 0, "direct_conv_dag models unpadded convolutions");
                            let p = dag.add_vertex(1);
                            dag.add_edge(img_at(c, iy, ix), p);
                            dag.add_edge(wgt_at(co, c, dy, dx), p);
                            products.push(p);
                        }
                    }
                }
                // Step 2: sequential summation tree.
                add_summation_tree(&mut dag, &products, 2);
            }
        }
    }
    dag
}

/// Appends a sequential summation tree over `inputs` (Lemma 4.7: `k-2`
/// internal vertices + 1 output for `k >= 2`); returns the root. With a
/// single input the input itself is returned (degenerate tree).
pub fn add_summation_tree(dag: &mut Dag, inputs: &[VertexId], step: u32) -> VertexId {
    assert!(!inputs.is_empty());
    if inputs.len() == 1 {
        return inputs[0];
    }
    let mut acc = {
        let v = dag.add_vertex(step);
        dag.add_edge(inputs[0], v);
        dag.add_edge(inputs[1], v);
        v
    };
    for &inp in &inputs[2..] {
        let v = dag.add_vertex(step);
        dag.add_edge(acc, v);
        dag.add_edge(inp, v);
        acc = v;
    }
    acc
}

/// Appends a linear-combination tree (Lemma 4.13): each input first feeds a
/// private scaling vertex (coefficient multiply; coefficients live in fast
/// memory and are not DAG inputs), then a summation tree combines the
/// scaled values. `2k - 2` internal vertices + 1 output for `k >= 2`.
pub fn add_linear_combination_tree(dag: &mut Dag, inputs: &[VertexId], step: u32) -> VertexId {
    assert!(!inputs.is_empty());
    let scaled: Vec<VertexId> = inputs
        .iter()
        .map(|&i| {
            let v = dag.add_vertex(step);
            dag.add_edge(i, v);
            v
        })
        .collect();
    if scaled.len() == 1 {
        return scaled[0];
    }
    add_summation_tree(dag, &scaled, step)
}

/// Transform sharing mode for the Winograd DAG.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WinogradDagMode {
    /// Input transforms `P_i` and kernel transforms `J_k` are built once
    /// and shared across all consumers — the realistic DAG.
    Shared,
    /// Transforms are rebuilt for every `(tile, output-channel)` pair —
    /// the re-computation-heavy DAG whose vertex count Lemma 4.14 states
    /// ("each e^2 output vertices are generated independently").
    PerPair,
}

/// Builds the Winograd DAG (Fig. 5) for `F(e x e, r x r)`. Requires unit
/// stride, square kernels of edge `tile.r`, spatial output divisible by
/// `tile.e`, and `pad == 0`. Steps: inputs 0, transforms 1, elementwise 2,
/// channel summation 3, output transform 4.
pub fn winograd_dag(shape: &ConvShape, tile: WinogradTile, mode: WinogradDagMode) -> Dag {
    assert_eq!(shape.batch, 1, "one image per DAG");
    assert!(shape.supports_winograd(tile), "shape incompatible with tile");
    assert_eq!(shape.pad, 0, "winograd_dag models unpadded convolutions");
    let (hout, wout) = (shape.hout(), shape.wout());
    assert_eq!(hout % tile.e, 0, "H_out must be divisible by e");
    assert_eq!(wout % tile.e, 0, "W_out must be divisible by e");

    let a = tile.a();
    let mut dag = Dag::new();

    // Image inputs.
    let mut img = vec![0 as VertexId; shape.cin * shape.hin * shape.win];
    for v in img.iter_mut() {
        *v = dag.add_vertex(0);
    }
    let img_at = |c: usize, h: usize, w: usize| img[(c * shape.hin + h) * shape.win + w];

    // Kernel inputs.
    let mut wgt = vec![0 as VertexId; shape.cout * shape.cin * tile.r * tile.r];
    for v in wgt.iter_mut() {
        *v = dag.add_vertex(0);
    }
    let wgt_at = |co: usize, c: usize, y: usize, x: usize| {
        wgt[((co * shape.cin + c) * tile.r + y) * tile.r + x]
    };

    let tiles_y = hout / tile.e;
    let tiles_x = wout / tile.e;

    // Builds the transformed input tensor P for (tile position, channel):
    // a^2 vertices, each a linear combination of the a^2 patch inputs.
    let build_p = |dag: &mut Dag, ty: usize, tx: usize, c: usize| -> Vec<VertexId> {
        let oy = ty * tile.e;
        let ox = tx * tile.e;
        let patch: Vec<VertexId> = (0..a)
            .flat_map(|dy| (0..a).map(move |dx| (dy, dx)))
            .map(|(dy, dx)| img_at(c, oy + dy, ox + dx))
            .collect();
        (0..a * a).map(|_| add_linear_combination_tree(dag, &patch, 1)).collect()
    };
    // Transformed kernel J for (cout, cin): a^2 vertices from r^2 weights.
    let build_j = |dag: &mut Dag, co: usize, c: usize| -> Vec<VertexId> {
        let taps: Vec<VertexId> = (0..tile.r)
            .flat_map(|y| (0..tile.r).map(move |x| (y, x)))
            .map(|(y, x)| wgt_at(co, c, y, x))
            .collect();
        (0..a * a).map(|_| add_linear_combination_tree(dag, &taps, 1)).collect()
    };

    // Shared-mode caches.
    let mut p_cache: Vec<Option<Vec<VertexId>>> = vec![None; tiles_y * tiles_x * shape.cin];
    let mut j_cache: Vec<Option<Vec<VertexId>>> = vec![None; shape.cout * shape.cin];

    for co in 0..shape.cout {
        for ty in 0..tiles_y {
            for tx in 0..tiles_x {
                // Per-element channel product lists for the a^2 positions.
                let mut lanes: Vec<Vec<VertexId>> = vec![Vec::with_capacity(shape.cin); a * a];
                for c in 0..shape.cin {
                    let p: Vec<VertexId> = match mode {
                        WinogradDagMode::PerPair => build_p(&mut dag, ty, tx, c),
                        WinogradDagMode::Shared => {
                            let key = (ty * tiles_x + tx) * shape.cin + c;
                            if p_cache[key].is_none() {
                                p_cache[key] = Some(build_p(&mut dag, ty, tx, c));
                            }
                            p_cache[key].clone().unwrap()
                        }
                    };
                    let j: Vec<VertexId> = match mode {
                        WinogradDagMode::PerPair => build_j(&mut dag, co, c),
                        WinogradDagMode::Shared => {
                            let key = co * shape.cin + c;
                            if j_cache[key].is_none() {
                                j_cache[key] = Some(build_j(&mut dag, co, c));
                            }
                            j_cache[key].clone().unwrap()
                        }
                    };
                    // Step 2: elementwise multiplication Lambda = P ⊙ J.
                    for (idx, lane) in lanes.iter_mut().enumerate() {
                        let m = dag.add_vertex(2);
                        dag.add_edge(p[idx], m);
                        dag.add_edge(j[idx], m);
                        lane.push(m);
                    }
                }
                // Step 3: channel summation trees -> Pi (a^2 vertices).
                let pi: Vec<VertexId> =
                    lanes.iter().map(|lane| add_summation_tree(&mut dag, lane, 3)).collect();
                // Step 4: e^2 outputs, each an LC tree over all of Pi.
                for _ in 0..tile.e * tile.e {
                    add_linear_combination_tree(&mut dag, &pi, 4);
                }
            }
        }
    }
    dag
}

/// Builds the dense matrix-multiplication DAG `C[n x n] = A[n x n] * B[n x n]`
/// with the same two-step structure as the direct convolution (products,
/// then per-output summation trees) — the substrate for validating
/// `iolb_core::matmul`'s composite-machinery bound empirically.
pub fn gemm_dag(n: usize) -> Dag {
    assert!(n >= 1);
    let mut dag = Dag::new();
    let a: Vec<VertexId> = (0..n * n).map(|_| dag.add_vertex(0)).collect();
    let b: Vec<VertexId> = (0..n * n).map(|_| dag.add_vertex(0)).collect();
    for i in 0..n {
        for j in 0..n {
            // Step 1: the n products a_ik * b_kj.
            let products: Vec<VertexId> = (0..n)
                .map(|k| {
                    let p = dag.add_vertex(1);
                    dag.add_edge(a[i * n + k], p);
                    dag.add_edge(b[k * n + j], p);
                    p
                })
                .collect();
            // Step 2: their summation tree -> c_ij.
            add_summation_tree(&mut dag, &products, 2);
        }
    }
    dag
}

#[cfg(test)]
mod tests {
    use super::*;
    use iolb_core::{direct, winograd};

    fn tiny_direct() -> ConvShape {
        // 2 channels, 4x4 image, 2 kernels of 3x3, stride 1: 2x2 output.
        ConvShape::new(2, 4, 4, 2, 3, 3, 1, 0)
    }

    #[test]
    fn direct_dag_vertex_count_matches_lemma_4_8() {
        let shape = tiny_direct();
        let dag = direct_conv_dag(&shape);
        assert_eq!(dag.validate(), Ok(()));
        assert_eq!(dag.validate_multistep(), Ok(()));
        // Computed (internal + output) vertices must equal Lemma 4.8.
        assert_eq!(dag.computed_count(), direct::vertex_count(&shape));
        // Inputs: image + weights.
        assert_eq!(dag.inputs().len() as u64, shape.input_elems() + shape.weight_elems());
        // Outputs: one per output element.
        assert_eq!(dag.outputs().len() as u64, shape.output_elems());
    }

    #[test]
    fn direct_dag_strided_count() {
        let shape = ConvShape::new(1, 5, 5, 1, 3, 3, 2, 0); // 2x2 output
        let dag = direct_conv_dag(&shape);
        assert_eq!(dag.computed_count(), direct::vertex_count(&shape));
        assert_eq!(dag.outputs().len(), 4);
    }

    #[test]
    fn summation_tree_counts_match_lemma_4_7() {
        let mut dag = Dag::new();
        let inputs: Vec<_> = (0..6).map(|_| dag.add_vertex(0)).collect();
        let before = dag.len();
        let root = add_summation_tree(&mut dag, &inputs, 1);
        // k inputs -> k-2 internal + 1 output = k-1 new vertices.
        assert_eq!(dag.len() - before, 5);
        assert!(dag.succs(root).is_empty());
    }

    #[test]
    fn linear_combination_tree_counts_match_lemma_4_13() {
        let mut dag = Dag::new();
        let inputs: Vec<_> = (0..5).map(|_| dag.add_vertex(0)).collect();
        let before = dag.len();
        let _ = add_linear_combination_tree(&mut dag, &inputs, 1);
        // k inputs -> 2k-2 internal + 1 output = 2k-1 new vertices.
        assert_eq!(dag.len() - before, 9);
    }

    #[test]
    fn winograd_per_pair_count_matches_lemma_4_14_exact() {
        // Smallest viable F(2,3) instance: 4x4 input, 2x2 output.
        let shape = ConvShape::new(2, 4, 4, 2, 3, 3, 1, 0);
        let tile = WinogradTile::F2X3;
        let dag = winograd_dag(&shape, tile, WinogradDagMode::PerPair);
        assert_eq!(dag.validate(), Ok(()));
        assert_eq!(dag.validate_multistep(), Ok(()));
        assert_eq!(dag.computed_count(), winograd::vertex_count_exact(&shape, tile));
    }

    #[test]
    fn winograd_shared_smaller_than_per_pair() {
        let shape = ConvShape::new(2, 4, 4, 2, 3, 3, 1, 0);
        let tile = WinogradTile::F2X3;
        let shared = winograd_dag(&shape, tile, WinogradDagMode::Shared);
        let per_pair = winograd_dag(&shape, tile, WinogradDagMode::PerPair);
        assert!(shared.computed_count() < per_pair.computed_count());
        // Same outputs either way.
        assert_eq!(shared.outputs().len(), per_pair.outputs().len());
        assert_eq!(shared.outputs().len() as u64, shape.output_elems());
    }

    #[test]
    fn winograd_dag_output_count() {
        let shape = ConvShape::new(1, 6, 6, 3, 3, 3, 1, 0); // 4x4 out, e=2
        let tile = WinogradTile::F2X3;
        let dag = winograd_dag(&shape, tile, WinogradDagMode::Shared);
        assert_eq!(dag.outputs().len(), 4 * 4 * 3);
    }

    #[test]
    fn winograd_steps_are_ordered() {
        // cin >= 2 so the channel summation trees (step 3) are non-trivial.
        let shape = ConvShape::new(2, 4, 4, 1, 3, 3, 1, 0);
        let dag = winograd_dag(&shape, WinogradTile::F2X3, WinogradDagMode::Shared);
        for s in 1..=4 {
            assert!(!dag.step_vertices(s).is_empty(), "step {s} empty");
        }
        assert_eq!(dag.validate_multistep(), Ok(()));
    }

    #[test]
    #[should_panic(expected = "incompatible")]
    fn winograd_rejects_strided_shape() {
        let shape = ConvShape::new(1, 5, 5, 1, 3, 3, 2, 0);
        let _ = winograd_dag(&shape, WinogradTile::F2X3, WinogradDagMode::Shared);
    }

    #[test]
    fn direct_dag_is_peppblable_and_bounded() {
        // Sandwich test on a truly tiny instance: heuristic I/O sits at or
        // above the analytic lower bound.
        let shape = ConvShape::new(1, 3, 3, 1, 2, 2, 1, 0); // 2x2 out, k=2x2
        let dag = direct_conv_dag(&shape);
        let s = 8;
        let heur =
            crate::strategies::pebble_topological(&dag, s, crate::strategies::Eviction::Belady);
        let lower = direct::io_lower_bound(&shape, s as f64);
        assert!(heur.io as f64 >= lower, "heuristic {} below analytic bound {lower}", heur.io);
    }

    #[test]
    fn gemm_dag_vertex_count_matches_matmul_module() {
        use iolb_core::matmul::MatmulShape;
        for n in [2usize, 3, 4] {
            let dag = gemm_dag(n);
            assert_eq!(dag.validate(), Ok(()));
            assert_eq!(dag.validate_multistep(), Ok(()));
            assert_eq!(dag.computed_count(), MatmulShape::new(n).vertex_count(), "n = {n}");
            assert_eq!(dag.inputs().len(), 2 * n * n);
            assert_eq!(dag.outputs().len(), n * n);
        }
    }

    #[test]
    fn gemm_dag_pebbling_sandwiched_by_matmul_bound() {
        use iolb_core::matmul::{blocked_schedule_io, io_lower_bound, MatmulShape};
        let n = 3;
        let dag = gemm_dag(n);
        let m = MatmulShape::new(n);
        for s in [8usize, 16, 32] {
            let lower = io_lower_bound(&m, s as f64);
            let heur =
                crate::strategies::pebble_topological(&dag, s, crate::strategies::Eviction::Belady)
                    .io;
            assert!(lower <= heur as f64, "S={s}: bound {lower} > pebbled {heur}");
            // The analytic blocked schedule is also a valid upper-bound
            // family; our pebbler should land in the same regime (within
            // an order of magnitude at toy sizes).
            let blocked = blocked_schedule_io(&m, s as f64);
            assert!(heur as f64 <= 10.0 * blocked + 100.0, "S={s}");
        }
    }
}
