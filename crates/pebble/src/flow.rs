//! Dinic max-flow on unit-vertex-capacity graphs.
//!
//! The S-partition's Property 2 asks whether a vertex set has a *dominator*
//! of size at most `S` — a set of vertices hitting every input-to-target
//! path. By Menger's theorem the minimum dominator size equals the maximum
//! number of vertex-disjoint input-to-target paths, which we compute with a
//! standard vertex-split max-flow: each DAG vertex `v` becomes `v_in ->
//! v_out` with capacity 1 (infinite for sources/sinks-adjacent arcs as
//! appropriate); each DAG edge `u -> v` becomes `u_out -> v_in` with
//! infinite capacity.

use crate::dag::{Dag, VertexId};

const INF: i64 = i64::MAX / 4;

/// A directed flow network with integer capacities (Dinic's algorithm).
pub struct FlowNet {
    /// Adjacency: per node, indices into `edges`.
    adj: Vec<Vec<usize>>,
    /// Flat edge list; edge `i ^ 1` is the reverse of edge `i`.
    to: Vec<usize>,
    cap: Vec<i64>,
}

impl FlowNet {
    /// Network with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        Self { adj: vec![Vec::new(); n], to: Vec::new(), cap: Vec::new() }
    }

    /// Adds a directed edge `u -> v` with capacity `c` (plus its residual).
    pub fn add_edge(&mut self, u: usize, v: usize, c: i64) {
        let id = self.to.len();
        self.to.push(v);
        self.cap.push(c);
        self.to.push(u);
        self.cap.push(0);
        self.adj[u].push(id);
        self.adj[v].push(id + 1);
    }

    /// Maximum flow from `s` to `t`.
    pub fn max_flow(&mut self, s: usize, t: usize) -> i64 {
        assert_ne!(s, t, "source equals sink");
        let n = self.adj.len();
        let mut flow = 0i64;
        loop {
            // BFS level graph.
            let mut level = vec![usize::MAX; n];
            level[s] = 0;
            let mut queue = vec![s];
            let mut head = 0;
            while head < queue.len() {
                let u = queue[head];
                head += 1;
                for &e in &self.adj[u] {
                    let v = self.to[e];
                    if self.cap[e] > 0 && level[v] == usize::MAX {
                        level[v] = level[u] + 1;
                        queue.push(v);
                    }
                }
            }
            if level[t] == usize::MAX {
                return flow;
            }
            // DFS blocking flow with iteration pointers.
            let mut iter = vec![0usize; n];
            loop {
                let pushed = self.dfs(s, t, INF, &level, &mut iter);
                if pushed == 0 {
                    break;
                }
                flow += pushed;
            }
        }
    }

    fn dfs(&mut self, u: usize, t: usize, limit: i64, level: &[usize], iter: &mut [usize]) -> i64 {
        if u == t {
            return limit;
        }
        while iter[u] < self.adj[u].len() {
            let e = self.adj[u][iter[u]];
            let v = self.to[e];
            if self.cap[e] > 0 && level[v] == level[u] + 1 {
                let pushed = self.dfs(v, t, limit.min(self.cap[e]), level, iter);
                if pushed > 0 {
                    self.cap[e] -= pushed;
                    self.cap[e ^ 1] += pushed;
                    return pushed;
                }
            }
            iter[u] += 1;
        }
        0
    }
}

/// Minimum dominator size for `targets` in `dag`: the smallest number of
/// vertices hitting every path from an input of the DAG to a target vertex
/// (vertices of `targets` themselves may serve as dominators, as in the
/// paper where `D_i` may intersect `V_i`).
///
/// Construction: super-source -> every input's `in` node (infinite);
/// every vertex split `v_in -> v_out` with capacity 1; DAG edge `u -> v`
/// as `u_out -> v_in` (infinite); every target's **out** node -> super-sink
/// (infinite). Note the target's own unit split edge sits on the path, so
/// a target can "dominate itself", matching Definition 4.2 where a path to
/// `v` contains `v`.
pub fn min_dominator_size(dag: &Dag, targets: &[VertexId]) -> i64 {
    if targets.is_empty() {
        return 0;
    }
    let n = dag.len();
    let source = 2 * n;
    let sink = 2 * n + 1;
    let mut net = FlowNet::new(2 * n + 2);
    for v in 0..n {
        net.add_edge(v, n + v, 1); // v_in -> v_out, unit vertex capacity
    }
    for u in 0..n as VertexId {
        for &v in dag.succs(u) {
            net.add_edge(n + u as usize, v as usize, INF);
        }
    }
    for &i in &dag.inputs() {
        net.add_edge(source, i as usize, INF);
    }
    let mut is_target = vec![false; n];
    for &t in targets {
        is_target[t as usize] = true;
    }
    for (v, &it) in is_target.iter().enumerate() {
        if it {
            net.add_edge(n + v, sink, INF);
        }
    }
    net.max_flow(source, sink)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_flow_basic() {
        // s -0-> a -1-> t with caps 3, 2: flow 2.
        let mut net = FlowNet::new(3);
        net.add_edge(0, 1, 3);
        net.add_edge(1, 2, 2);
        assert_eq!(net.max_flow(0, 2), 2);
    }

    #[test]
    fn max_flow_parallel_paths() {
        // Two disjoint unit paths.
        let mut net = FlowNet::new(4);
        net.add_edge(0, 1, 1);
        net.add_edge(1, 3, 1);
        net.add_edge(0, 2, 1);
        net.add_edge(2, 3, 1);
        assert_eq!(net.max_flow(0, 3), 2);
    }

    #[test]
    fn max_flow_needs_augmenting_path_reversal() {
        // Classic case where a greedy path must be partially undone.
        let mut net = FlowNet::new(4);
        net.add_edge(0, 1, 1);
        net.add_edge(0, 2, 1);
        net.add_edge(1, 2, 1);
        net.add_edge(1, 3, 1);
        net.add_edge(2, 3, 1);
        assert_eq!(net.max_flow(0, 3), 2);
    }

    fn diamond() -> Dag {
        let mut d = Dag::new();
        let a = d.add_vertex(0);
        let b = d.add_vertex(0);
        let c = d.add_vertex(0);
        let e = d.add_vertex(0);
        d.add_edge(a, b);
        d.add_edge(a, c);
        d.add_edge(b, e);
        d.add_edge(c, e);
        d
    }

    #[test]
    fn dominator_of_diamond_sink_is_one() {
        // The single input 0 dominates 3 (also {3} itself).
        let d = diamond();
        assert_eq!(min_dominator_size(&d, &[3]), 1);
    }

    #[test]
    fn dominator_of_two_independent_chains() {
        // Two disjoint chains: dominating both sinks needs 2 vertices.
        let mut d = Dag::new();
        let a0 = d.add_vertex(0);
        let a1 = d.add_vertex(0);
        let b0 = d.add_vertex(0);
        let b1 = d.add_vertex(0);
        d.add_edge(a0, a1);
        d.add_edge(b0, b1);
        assert_eq!(min_dominator_size(&d, &[a1, b1]), 2);
    }

    #[test]
    fn dominator_grows_with_fanin() {
        // k independent inputs all feeding one output: min dominator of
        // the output alone is 1 (itself), but dominating the full middle
        // layer takes k vertices.
        let mut d = Dag::new();
        let inputs: Vec<_> = (0..4).map(|_| d.add_vertex(0)).collect();
        let mids: Vec<_> = (0..4).map(|_| d.add_vertex(0)).collect();
        let out = d.add_vertex(0);
        for i in 0..4 {
            d.add_edge(inputs[i], mids[i]);
            d.add_edge(mids[i], out);
        }
        assert_eq!(min_dominator_size(&d, &[out]), 1);
        assert_eq!(min_dominator_size(&d, &mids), 4);
    }

    #[test]
    fn empty_target_needs_nothing() {
        let d = diamond();
        assert_eq!(min_dominator_size(&d, &[]), 0);
    }

    #[test]
    fn dominator_bounded_by_target_count() {
        // Each target can always dominate itself.
        let d = diamond();
        assert!(min_dominator_size(&d, &[1, 2, 3]) <= 3);
    }
}
