//! Ad-hoc diagnostic: per-kernel timing breakdown for one Fig. 9 cell.

use iolb_cnn::inference::fast_config;
use iolb_core::optimality::TileKind;
use iolb_core::shapes::ConvShape;
use iolb_dataflow::baselines;
use iolb_dataflow::direct_kernel;
use iolb_gpusim::{simulate, DeviceSpec};

fn main() {
    let device = DeviceSpec::gtx1080ti();
    for hw in [56usize, 196] {
        let shape = ConvShape::square(256, hw, 128, 3, 1, 1);
        println!("== {shape}");
        let cfg = fast_config(&shape, TileKind::Direct, &device).unwrap();
        println!("  ours cfg: {cfg}");
        let k = direct_kernel(&shape, &cfg);
        let s = simulate(&device, &k).unwrap();
        println!(
            "  ours: {:.4} ms, {:.0} GF, mem_bound={}, waves={}, blocks/sm={}, grid={}, moved={} MiB",
            s.time_ms,
            s.gflops,
            s.memory_bound,
            s.waves,
            s.blocks_per_sm,
            k.grid_blocks,
            s.moved_bytes / (1 << 20)
        );
        for kd in baselines::im2col_gemm(&shape) {
            let s = simulate(&device, &kd).unwrap();
            println!(
                "  {}: {:.4} ms, {:.0} GF, mem_bound={}, waves={}, blocks/sm={}, grid={}, moved={} MiB",
                s.name,
                s.time_ms,
                s.gflops,
                s.memory_bound,
                s.waves,
                s.blocks_per_sm,
                kd.grid_blocks,
                s.moved_bytes / (1 << 20)
            );
        }
    }

    // Winograd breakdown at 112.
    use iolb_core::shapes::WinogradTile;
    use iolb_dataflow::winograd_kernel;
    let shape = ConvShape::square(256, 112, 128, 3, 1, 1);
    println!("== winograd {shape}");
    for tile in [WinogradTile::F2X3, WinogradTile::F4X3] {
        let kind = TileKind::Winograd(tile);
        let Some(cfg) = fast_config(&shape, kind, &device) else {
            println!("  F({0},{1}): no config", tile.e, tile.r);
            continue;
        };
        let k = winograd_kernel(&shape, tile, &cfg);
        let s = simulate(&device, &k).unwrap();
        println!(
            "  ours F({},{}) cfg {}: {:.4} ms, {:.0} GF, mem_bound={}, blocks/sm={}, moved={} MiB, flops/blk={}",
            tile.e, tile.r, cfg, s.time_ms, s.gflops, s.memory_bound, s.blocks_per_sm,
            s.moved_bytes / (1 << 20), k.work.flops
        );
    }
    for kd in baselines::winograd_unfused(&shape, WinogradTile::F2X3) {
        let s = simulate(&device, &kd).unwrap();
        println!(
            "  {}: {:.4} ms, {:.0} GF, mem_bound={}, blocks/sm={}, moved={} MiB",
            s.name,
            s.time_ms,
            s.gflops,
            s.memory_bound,
            s.blocks_per_sm,
            s.moved_bytes / (1 << 20)
        );
    }
}
