//! Fusion-aware network segmentation: operator chains as workloads.
//!
//! Networks in this crate are conv-layer inventories, but the models
//! they describe interleave those convs with activation and pooling
//! operators. [`op_stream`] reconstructs that operator stream (every
//! conv is followed by a ReLU; a 2×2 max-pool is inserted wherever the
//! next conv's input extent shows an un-strided spatial halving), and
//! [`segment`] partitions the stream greedily into fusable blocks —
//! `conv→relu` and `conv→relu→pool` chains plus lone operators. The
//! partition is **deterministic** (a pure function of the stream),
//! an **exact cover** (every op in exactly one block, in order), and
//! **idempotent** (re-segmenting a segmented stream moves nothing) —
//! all three pinned by the property tests at the bottom of this file.
//!
//! Whether a fusable block is actually *served* fused is not decided
//! here: the analytic gate (`iolb_autotune::fusion_gate`) runs
//! server-side in the tuning session, and a rejected chain degrades to
//! its bare conv workload at zero extra measurement cost. This module
//! only proposes the chains; [`fused_requests`] turns a network into
//! the per-layer [`TuneRequest`]s carrying each block's epilogue.

use crate::layers::{ConvLayer, Network};
use iolb_core::epilogue::Epilogue;
use iolb_service::TuneRequest;

/// One operator in a network's reconstructed execution stream.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// A convolution layer (the block anchor).
    Conv(ConvLayer),
    /// An elementwise ReLU activation.
    Relu,
    /// A non-overlapping `k x k` max-pool (stride `k`).
    Pool { k: usize },
}

/// One block of the segmented stream: `len` consecutive ops starting at
/// `start`, fused behind the anchoring conv when `conv` is set.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// Index of the block's first op in the stream.
    pub start: usize,
    /// Number of consecutive ops the block covers (`>= 1`).
    pub len: usize,
    /// The anchoring conv layer, if this is a conv chain. `None` for a
    /// lone ReLU/pool with no conv directly before it (stream heads,
    /// malformed streams) — those ops still get a block so the cover
    /// stays exact, they just aren't fusion candidates.
    pub conv: Option<ConvLayer>,
    /// The chain's epilogue: `Relu` for `conv→relu`, `ReluPool` for
    /// `conv→relu→pool`, `None` for a bare conv or a lone op.
    pub epilogue: Epilogue,
}

/// Reconstructs a network's operator stream from its conv inventory.
///
/// Every conv is followed by a ReLU (the models in [`crate::models`]
/// activate every conv layer). A `Pool {{ k: 2 }}` is appended when the
/// *next* conv's input extent is half this conv's output extent — the
/// spatial halving VGG/AlexNet/SqueezeNet-style models perform with an
/// explicit 2×2 max-pool between stages (stride-2 convs halve inside
/// the conv itself and get no pool).
pub fn op_stream(net: &Network) -> Vec<Op> {
    let mut ops = Vec::with_capacity(net.layers.len() * 3);
    for (i, layer) in net.layers.iter().enumerate() {
        let hout = layer.shape.hout();
        ops.push(Op::Conv(layer.clone()));
        ops.push(Op::Relu);
        if let Some(next) = net.layers.get(i + 1) {
            if next.shape.hin * 2 == hout {
                ops.push(Op::Pool { k: 2 });
            }
        }
    }
    ops
}

/// Greedily partitions an operator stream into fusable blocks.
///
/// Walks left to right: a conv absorbs an immediately following ReLU,
/// and that pair absorbs an immediately following pool; everything else
/// is a lone single-op block. Greedy-longest is deterministic and
/// yields an exact, ordered, non-overlapping cover of the stream.
pub fn segment(ops: &[Op]) -> Vec<Block> {
    let mut blocks = Vec::new();
    let mut i = 0;
    while i < ops.len() {
        let Op::Conv(layer) = &ops[i] else {
            blocks.push(Block { start: i, len: 1, conv: None, epilogue: Epilogue::None });
            i += 1;
            continue;
        };
        let (epilogue, len) = match (ops.get(i + 1), ops.get(i + 2)) {
            (Some(Op::Relu), Some(&Op::Pool { k })) => (Epilogue::ReluPool { k }, 3),
            (Some(Op::Relu), _) => (Epilogue::Relu, 2),
            _ => (Epilogue::None, 1),
        };
        blocks.push(Block { start: i, len, conv: Some(layer.clone()), epilogue });
        i += len;
    }
    blocks
}

/// Segments `net` and emits one [`TuneRequest`] per conv block carrying
/// its chain's epilogue — the batch a fusion-aware session submits. The
/// request order matches the block order, so callers can zip results
/// back onto [`segment`]'s output.
pub fn fused_requests(
    net: &Network,
    kind_of: impl Fn(&ConvLayer) -> Vec<iolb_core::optimality::TileKind>,
) -> Vec<TuneRequest> {
    let ops = op_stream(net);
    let mut requests = Vec::new();
    for block in segment(&ops) {
        let Some(layer) = &block.conv else { continue };
        for kind in kind_of(layer) {
            requests.push(TuneRequest::fused(layer.shape, kind, block.epilogue));
        }
    }
    requests
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models;
    use iolb_core::shapes::ConvShape;
    use proptest::prelude::*;

    /// Exact cover: blocks tile `0..ops.len()` in order, no gaps, no
    /// overlaps.
    fn assert_exact_cover(ops: &[Op], blocks: &[Block]) {
        let mut cursor = 0;
        for b in blocks {
            assert_eq!(b.start, cursor, "gap or overlap at op {cursor}");
            assert!(b.len >= 1);
            cursor += b.len;
        }
        assert_eq!(cursor, ops.len(), "cover must end at the stream end");
    }

    #[test]
    fn vgg_style_stream_interleaves_relu_and_pool() {
        let net = models::vgg19();
        let ops = op_stream(&net);
        // Every conv is activated; stage transitions pool.
        let convs = ops.iter().filter(|o| matches!(o, Op::Conv(_))).count();
        let relus = ops.iter().filter(|o| matches!(o, Op::Relu)).count();
        let pools = ops.iter().filter(|o| matches!(o, Op::Pool { .. })).count();
        assert_eq!(convs, net.layers.len());
        assert_eq!(relus, convs);
        assert_eq!(pools, 4, "VGG-19 has four in-inventory stage transitions");
    }

    #[test]
    fn segmentation_builds_conv_relu_pool_chains() {
        let net = models::vgg19();
        let ops = op_stream(&net);
        let blocks = segment(&ops);
        assert_exact_cover(&ops, &blocks);
        // Stage-final convs carry the pool; all others fuse just the relu.
        let pooled =
            blocks.iter().filter(|b| matches!(b.epilogue, Epilogue::ReluPool { .. })).count();
        let relu_only = blocks.iter().filter(|b| b.epilogue == Epilogue::Relu).count();
        assert_eq!(pooled, 4);
        assert_eq!(pooled + relu_only, net.layers.len());
        assert!(blocks.iter().all(|b| b.conv.is_some()), "VGG segments into conv chains only");
    }

    #[test]
    fn lone_ops_get_their_own_blocks() {
        let ops = vec![
            Op::Relu, // stream head without a conv
            Op::Conv(ConvLayer::new("c", ConvShape::square(8, 8, 8, 3, 1, 1))),
            Op::Relu,
            Op::Pool { k: 2 },
            Op::Pool { k: 2 }, // second pool cannot join the chain
        ];
        let blocks = segment(&ops);
        assert_exact_cover(&ops, &blocks);
        assert_eq!(blocks.len(), 3);
        assert_eq!(blocks[0].conv, None);
        assert_eq!(blocks[1].epilogue, Epilogue::ReluPool { k: 2 });
        assert_eq!(blocks[2].conv, None);
    }

    #[test]
    fn all_model_streams_segment_into_exact_covers() {
        for net in models::all_networks() {
            let ops = op_stream(&net);
            let blocks = segment(&ops);
            assert_exact_cover(&ops, &blocks);
            // Determinism and idempotence on the real inventories.
            assert_eq!(blocks, segment(&ops), "{} re-segmented differently", net.name);
        }
    }

    #[test]
    fn fused_requests_carry_block_epilogues() {
        let net = models::vgg19();
        let requests = fused_requests(&net, |_| vec![iolb_core::optimality::TileKind::Direct]);
        assert_eq!(requests.len(), net.layers.len());
        assert!(requests.iter().any(|r| matches!(r.epilogue, Epilogue::ReluPool { .. })));
        assert!(requests.iter().all(|r| !r.epilogue.is_none()), "every VGG conv is activated");
    }

    /// Arbitrary op streams for the property tests.
    fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
        prop::collection::vec((0u32..4, 1u32..4), 0..24).prop_map(|draws| {
            draws
                .into_iter()
                .map(|(tag, k)| match tag {
                    0 => Op::Relu,
                    1 => Op::Pool { k: k as usize + 1 },
                    _ => Op::Conv(ConvLayer::new(
                        "p",
                        ConvShape::square(8, 8 * k as usize, 8, 3, 1, 1),
                    )),
                })
                .collect()
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// Deterministic: the same stream always yields the same blocks.
        #[test]
        fn segmentation_is_deterministic(ops in arb_ops()) {
            prop_assert_eq!(segment(&ops), segment(&ops));
        }

        /// Exact cover with no overlaps, whatever the stream shape.
        #[test]
        fn segmentation_is_an_exact_cover(ops in arb_ops()) {
            let blocks = segment(&ops);
            let mut cursor = 0;
            for b in &blocks {
                prop_assert_eq!(b.start, cursor);
                prop_assert!(b.len >= 1 && b.len <= 3);
                cursor += b.len;
            }
            prop_assert_eq!(cursor, ops.len());
        }

        /// Idempotent: segmenting each block's own op span reproduces
        /// exactly that block (no chain is split or re-joined by a
        /// second pass).
        #[test]
        fn segmentation_is_idempotent(ops in arb_ops()) {
            for b in segment(&ops) {
                let span = &ops[b.start..b.start + b.len];
                let again = segment(span);
                prop_assert_eq!(again.len(), 1, "block re-segmented into pieces");
                prop_assert_eq!(&again[0].epilogue, &b.epilogue);
                prop_assert_eq!(&again[0].conv, &b.conv);
            }
        }

        /// A chain the gate rejects is never costed worse than its
        /// per-layer composition: the modeled cost of the serving plan
        /// (fused if the gate fuses, per-layer otherwise) is bounded by
        /// the per-layer sum for every chain.
        #[test]
        fn fallback_never_costs_more_than_the_per_layer_sum(
            hw_pow in 2u32..5, k in 2usize..4,
        ) {
            use iolb_autotune::fusion::{epilogue_fused_ms, epilogue_unfused_ms};
            use iolb_autotune::{fusion_gate, FusionDecision};
            use iolb_core::optimality::TileKind;
            let device = iolb_gpusim::DeviceSpec::v100();
            let hw = 1usize << hw_pow; // conv output extent 4..16
            let shape = ConvShape::square(16, hw + 2, 16, 3, 1, 1);
            let epilogue = Epilogue::ReluPool { k };
            let unfused = epilogue_unfused_ms(&shape, epilogue, &device);
            let planned = match fusion_gate(&shape, TileKind::Direct, epilogue, &device) {
                FusionDecision::Fuse => epilogue_fused_ms(&shape, epilogue, &device),
                // Fallback serves the unfused composition itself: the
                // epilogue cost is exactly the per-layer epilogue cost.
                FusionDecision::Fallback(_) => unfused,
            };
            prop_assert!(
                planned <= unfused,
                "planned {planned} ms exceeds per-layer {unfused} ms"
            );
        }
    }
}
