//! Exact minimum-I/O pebbling for tiny DAGs via 0-1 BFS over game states.
//!
//! A state is the pair of bitmasks (red pebbles, blue pebbles); moves are
//! edges with weight 1 (load/store) or 0 (compute/free-red). The minimum
//! `Q` is the shortest distance from the initial state (inputs blue) to any
//! state where all outputs are blue. This is exponential (`4^n` states) and
//! only intended for validation DAGs of up to ~12 vertices, where it gives
//! ground truth to sandwich against the analytic bounds:
//! `Q_lower <= Q_exact <= Q_heuristic`.
//!
//! Pruning that preserves optimality:
//! * blue pebbles are never freed (slow memory is unlimited; discarding a
//!   blue pebble can only remove options);
//! * a store is only attempted on vertices not already blue;
//! * a load is only attempted if the vertex is not already red.
//!
//! Re-computation is fully explored (any vertex whose predecessors are red
//! may be recomputed), matching the paper's model.

use crate::dag::{Dag, VertexId};
use std::collections::{HashMap, VecDeque};

/// Maximum DAG size the exact search accepts.
pub const MAX_EXACT_VERTICES: usize = 20;

#[derive(Clone, Copy, PartialEq, Eq, Hash)]
struct State {
    red: u32,
    blue: u32,
}

/// Computes the exact minimum I/O `Q` of a complete red-blue pebbling with
/// `s` red pebbles. Returns `None` when no complete pebbling exists (any
/// vertex with in-degree `d` needs `s >= d + 1`) **or** when the search
/// exceeds `node_limit` explored states (safety valve).
///
/// Panics if the DAG has more than [`MAX_EXACT_VERTICES`] vertices.
pub fn min_io(dag: &Dag, s: usize, node_limit: usize) -> Option<u64> {
    let n = dag.len();
    assert!(n <= MAX_EXACT_VERTICES, "exact search limited to {MAX_EXACT_VERTICES} vertices");
    assert!(s >= 1);

    let inputs = dag.inputs();
    let outputs = dag.outputs();
    let mut goal_mask: u32 = 0;
    for &o in &outputs {
        goal_mask |= 1 << o;
    }
    let mut input_mask: u32 = 0;
    for &i in &inputs {
        input_mask |= 1 << i;
    }
    // Precompute predecessor masks.
    let pred_mask: Vec<u32> =
        (0..n as VertexId).map(|v| dag.preds(v).iter().fold(0u32, |m, &p| m | (1 << p))).collect();

    let start = State { red: 0, blue: input_mask };
    let mut dist: HashMap<State, u64> = HashMap::new();
    dist.insert(start, 0);
    // 0-1 BFS deque.
    let mut deque: VecDeque<(State, u64)> = VecDeque::new();
    deque.push_back((start, 0));
    let mut explored = 0usize;

    while let Some((state, d)) = deque.pop_front() {
        if dist.get(&state).copied() != Some(d) {
            continue; // stale entry
        }
        if state.blue & goal_mask == goal_mask {
            return Some(d);
        }
        explored += 1;
        if explored > node_limit {
            return None;
        }

        let red_count = state.red.count_ones() as usize;

        let push = |next: State,
                    nd: u64,
                    dist: &mut HashMap<State, u64>,
                    deque: &mut VecDeque<(State, u64)>| {
            let better = dist.get(&next).is_none_or(|&old| nd < old);
            if better {
                dist.insert(next, nd);
                if nd == d {
                    deque.push_front((next, nd));
                } else {
                    deque.push_back((next, nd));
                }
            }
        };

        for v in 0..n as u32 {
            let bit = 1u32 << v;
            let is_red = state.red & bit != 0;
            let is_blue = state.blue & bit != 0;

            // Compute (cost 0): non-input, preds all red, v not red, room.
            if input_mask & bit == 0
                && !is_red
                && red_count < s
                && state.red & pred_mask[v as usize] == pred_mask[v as usize]
            {
                push(State { red: state.red | bit, blue: state.blue }, d, &mut dist, &mut deque);
            }
            // Free red (cost 0).
            if is_red {
                push(State { red: state.red & !bit, blue: state.blue }, d, &mut dist, &mut deque);
            }
            // Load (cost 1): blue, not red, room.
            if is_blue && !is_red && red_count < s {
                push(
                    State { red: state.red | bit, blue: state.blue },
                    d + 1,
                    &mut dist,
                    &mut deque,
                );
            }
            // Store (cost 1): red, not already blue.
            if is_red && !is_blue {
                push(
                    State { red: state.red, blue: state.blue | bit },
                    d + 1,
                    &mut dist,
                    &mut deque,
                );
            }
        }
    }
    // Exhausted the reachable space without meeting the goal — only
    // possible when S is too small to ever compute some vertex.
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategies::{pebble_topological, Eviction};

    fn chain(len: usize) -> Dag {
        let mut d = Dag::new();
        let vs: Vec<_> = (0..len).map(|_| d.add_vertex(0)).collect();
        for i in 0..len - 1 {
            d.add_edge(vs[i], vs[i + 1]);
        }
        d
    }

    #[test]
    fn single_edge_needs_two_ios() {
        // input -> output: load + store. Computing the output requires its
        // predecessor red *and* a free slot, so S = 2 is the minimum.
        let d = chain(2);
        assert_eq!(min_io(&d, 2, 1 << 20), Some(2));
        // S = 1 cannot pebble an in-degree-1 vertex at all.
        assert_eq!(min_io(&d, 1, 1 << 20), None);
    }

    #[test]
    fn chain_needs_one_load_one_store_regardless_of_length() {
        for len in [3, 4, 5] {
            let d = chain(len);
            assert_eq!(min_io(&d, 2, 1 << 22), Some(2), "len {len}");
        }
    }

    #[test]
    fn diamond_min_io() {
        // in -> {a, b} -> out. S=3: load the input once, compute a, b, out
        // (evicting in before out), store out: Q = 2.
        let mut d = Dag::new();
        let i = d.add_vertex(0);
        let a = d.add_vertex(0);
        let b = d.add_vertex(0);
        let o = d.add_vertex(0);
        d.add_edge(i, a);
        d.add_edge(i, b);
        d.add_edge(a, o);
        d.add_edge(b, o);
        assert_eq!(min_io(&d, 3, 1 << 22), Some(2));
        // S=2 is infeasible: `out` has in-degree 2, needing both preds red
        // plus a free slot.
        assert_eq!(min_io(&d, 2, 1 << 22), None);
    }

    #[test]
    fn summation_tree_exact_matches_hand_count() {
        // 3 inputs summed pairwise: (i0+i1)+i2. S=2 forces nothing extra:
        // load i0, i1, compute s1 needs 3 slots... S=3: loads 3, store 1.
        let mut d = Dag::new();
        let i0 = d.add_vertex(0);
        let i1 = d.add_vertex(0);
        let i2 = d.add_vertex(0);
        let s1 = d.add_vertex(1);
        let s2 = d.add_vertex(1);
        d.add_edge(i0, s1);
        d.add_edge(i1, s1);
        d.add_edge(s1, s2);
        d.add_edge(i2, s2);
        assert_eq!(min_io(&d, 3, 1 << 22), Some(4));
    }

    #[test]
    fn recomputation_beats_spilling_when_cheap() {
        // Shared cheap intermediate consumed by two far-apart outputs:
        //   i -> m; m -> o1; m -> o2.
        // With S=2 the pebbler can recompute m for o2 instead of storing
        // it: Q = load(i) + store(o1) + store(o2) = 3. A no-recompute model
        // (red-blue-white) would pay 4 (store m or reload i).
        let mut d = Dag::new();
        let i = d.add_vertex(0);
        let m = d.add_vertex(0);
        let o1 = d.add_vertex(0);
        let o2 = d.add_vertex(0);
        d.add_edge(i, m);
        d.add_edge(m, o1);
        d.add_edge(m, o2);
        let q = min_io(&d, 2, 1 << 22).unwrap();
        assert_eq!(q, 3);
    }

    #[test]
    fn exact_at_most_heuristic() {
        // Sandwich property on a few small DAGs.
        let mut dense = Dag::new();
        let ins: Vec<_> = (0..3).map(|_| dense.add_vertex(0)).collect();
        for _ in 0..3 {
            let o = dense.add_vertex(1);
            for &i in &ins {
                dense.add_edge(i, o);
            }
        }
        for s in [4, 5, 6] {
            let exact = min_io(&dense, s, 1 << 22).unwrap();
            let heur = pebble_topological(&dense, s, Eviction::Belady).io;
            assert!(exact <= heur, "S={s}: exact {exact} > heuristic {heur}");
            // Compulsory traffic: all 3 inputs + 3 outputs move at least once.
            assert!(exact >= 6, "S={s}: exact {exact} below compulsory 6");
        }
    }

    #[test]
    fn smaller_s_never_cheaper() {
        let mut d = Dag::new();
        let ins: Vec<_> = (0..4).map(|_| d.add_vertex(0)).collect();
        let mut mids = Vec::new();
        for pair in ins.chunks(2) {
            let m = d.add_vertex(1);
            d.add_edge(pair[0], m);
            d.add_edge(pair[1], m);
            mids.push(m);
        }
        let o = d.add_vertex(2);
        d.add_edge(mids[0], o);
        d.add_edge(mids[1], o);
        let mut prev = u64::MAX;
        for s in (3..=7).rev() {
            let q = min_io(&d, s, 1 << 22).unwrap();
            assert!(q >= prev.min(q), "sanity");
            assert!(q >= 5); // 4 input loads + 1 output store
            if prev != u64::MAX {
                assert!(q >= prev, "S={s}: Q {q} < Q at larger S {prev}");
            }
            prev = q;
        }
    }

    #[test]
    fn node_limit_returns_none() {
        let d = chain(6);
        assert_eq!(min_io(&d, 2, 1), None);
    }

    #[test]
    #[should_panic(expected = "exact search limited")]
    fn oversized_dag_rejected() {
        let d = chain(MAX_EXACT_VERTICES + 1);
        let _ = min_io(&d, 2, 1 << 10);
    }
}
