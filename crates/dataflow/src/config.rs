//! Schedule configurations — the paper's Table 1 searching domain.
//!
//! A configuration fixes everything the auto-tuner searches over: the
//! output tile `x * y * z`, the thread split `N_xt * N_yt * N_zt`, the
//! shared memory allocated to each block `S_b`, and the input layout.
//! [`ScheduleConfig::validate`] enforces the Table 1 constraints:
//!
//! * `x | H_out`, `y | W_out`, `z | C_out` (tile sizes are factors),
//! * `N_xt | x`, `N_yt | y`, `N_zt | z` (thread counts are factors),
//! * the tile's on-chip footprint fits `S_b`,
//! * `S_b <= S_sm / 2` (at least two resident blocks per SM),
//! * for the *pruned* domain additionally `z <= sqrt(S_b/R)` and
//!   `xy <= sqrt(S_b * R)` — the optimality-condition band.

use iolb_core::optimality::TileKind;
use iolb_core::shapes::ConvShape;
use iolb_tensor::layout::Layout;

/// A complete schedule configuration for either convolution dataflow.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScheduleConfig {
    /// Output tile height `x` (divides `H_out`).
    pub x: usize,
    /// Output tile width `y` (divides `W_out`).
    pub y: usize,
    /// Output tile channels `z` (divides `C_out`).
    pub z: usize,
    /// Threads along the tile height (divides `x`).
    pub nxt: usize,
    /// Threads along the tile width (divides `y`).
    pub nyt: usize,
    /// Threads along the tile channels (divides `z`).
    pub nzt: usize,
    /// Shared memory per block, bytes.
    pub sb_bytes: u32,
    /// Input image layout.
    pub layout: Layout,
}

impl ScheduleConfig {
    /// Threads per block.
    pub fn threads(&self) -> u32 {
        (self.nxt * self.nyt * self.nzt) as u32
    }

    /// Shared memory per block in f32 elements.
    pub fn sb_elems(&self) -> f64 {
        self.sb_bytes as f64 / 4.0
    }

    /// Output-tile volume `x*y*z`.
    pub fn tile_volume(&self) -> usize {
        self.x * self.y * self.z
    }

    /// Relative deviation from the optimality condition `xy = Rz`
    /// (0 = exactly optimal).
    pub fn optimality_deviation(&self, shape: &ConvShape, kind: TileKind) -> f64 {
        let r = kind.reuse(shape);
        let lhs = (self.x * self.y) as f64;
        let rhs = r * self.z as f64;
        (lhs - rhs).abs() / lhs.max(rhs)
    }

    /// Structural (template-level) validation: tile factors, thread
    /// factors, the 1024-thread cap and the two-blocks-per-SM `S_b` cap.
    ///
    /// This is everything a TVM-style template knows when *enumerating*
    /// its space — whether the tile actually fits the allocated shared
    /// memory is only discovered when the candidate is compiled/measured
    /// (see [`ScheduleConfig::validate`] and `autotune::Measurer`).
    ///
    /// For Winograd kinds the spatial divisibility is checked against the
    /// padded output extent (real Winograd kernels pad ragged edges, e.g.
    /// AlexNet's 13x13 outputs under `F(2,3)`), and tiles must be
    /// multiples of `e`.
    pub fn validate_structural(
        &self,
        shape: &ConvShape,
        kind: TileKind,
        s_sm_bytes: u32,
    ) -> Result<(), ConfigError> {
        let (hout, wout) = padded_out(shape, kind);
        if self.x == 0 || self.y == 0 || self.z == 0 {
            return Err(ConfigError::ZeroTile);
        }
        if hout % self.x != 0 || wout % self.y != 0 || !shape.cout.is_multiple_of(self.z) {
            return Err(ConfigError::TileNotFactor);
        }
        if let TileKind::Winograd(t) = kind {
            if !self.x.is_multiple_of(t.e) || !self.y.is_multiple_of(t.e) {
                return Err(ConfigError::TileNotFactor);
            }
        }
        if self.nxt == 0 || self.nyt == 0 || self.nzt == 0 {
            return Err(ConfigError::ZeroThreads);
        }
        if !self.x.is_multiple_of(self.nxt)
            || !self.y.is_multiple_of(self.nyt)
            || !self.z.is_multiple_of(self.nzt)
        {
            return Err(ConfigError::ThreadsNotFactor);
        }
        if self.threads() > 1024 {
            return Err(ConfigError::TooManyThreads(self.threads()));
        }
        if self.sb_bytes * 2 > s_sm_bytes {
            return Err(ConfigError::SharedMemoryTooLarge {
                sb: self.sb_bytes,
                cap: s_sm_bytes / 2,
            });
        }
        Ok(())
    }

    /// Full validation: structural constraints plus the on-chip footprint
    /// check, and — when `pruned` — the optimality-condition band that
    /// defines the paper's reduced searching domain (§6.2).
    pub fn validate(
        &self,
        shape: &ConvShape,
        kind: TileKind,
        s_sm_bytes: u32,
        pruned: bool,
    ) -> Result<(), ConfigError> {
        self.validate_structural(shape, kind, s_sm_bytes)?;
        // On-chip footprint of the schedule's resident data: the fused
        // accumulators (see `TileKind::accumulator_elems`) plus staging.
        let tile = iolb_core::optimality::Tile { x: self.x, y: self.y, z: self.z };
        let footprint = kind.accumulator_elems(&tile) + self.stage_buffer_elems(shape, kind);
        if footprint > self.sb_elems() {
            return Err(ConfigError::TileExceedsSharedMemory {
                need: footprint as u64,
                have: self.sb_elems() as u64,
            });
        }
        if pruned {
            let r = kind.reuse(shape);
            let sb = self.sb_elems();
            let zf = self.z as f64;
            let xyf = (self.x * self.y) as f64;
            if zf > (sb / r).sqrt() * PRUNE_SLACK {
                return Err(ConfigError::OutsidePrunedDomain);
            }
            if xyf > (sb * r).sqrt() * PRUNE_SLACK {
                return Err(ConfigError::OutsidePrunedDomain);
            }
        }
        Ok(())
    }

    /// Elements of the per-stage staging buffers (the `x' * y' * 1` input
    /// tile plus the stage's weights) that share `S_b` with the resident
    /// tile, per §5.2/§5.3.
    pub fn stage_buffer_elems(&self, shape: &ConvShape, kind: TileKind) -> f64 {
        match kind {
            TileKind::Direct => {
                let xp = (self.x - 1) * shape.stride + shape.kh;
                let yp = (self.y - 1) * shape.stride + shape.kw;
                (xp * yp + shape.kh * shape.kw * self.z) as f64
            }
            TileKind::Winograd(t) => {
                let xp = self.x + t.r - 1;
                let yp = self.y + t.r - 1;
                (xp * yp + t.r * t.r * self.z) as f64
            }
        }
    }

    /// Projects this configuration onto another shape's divisor lattice:
    /// each tile extent snaps to the nearest-below divisor of the new
    /// output extent (falling back to the nearest-above when no smaller
    /// one satisfies the Winograd `e`-multiple constraint), and the
    /// thread split re-snaps to the projected tile the same way. Shared
    /// memory and layout carry over unchanged.
    ///
    /// Snapping *downward first* is what makes transfer safe: a smaller
    /// tile has a strictly smaller on-chip footprint and thread count,
    /// so for the direct dataflow a config valid on its donor shape
    /// projects to a config valid on any target with the same filter,
    /// stride and padding (the anchor-bucket invariant). Optimality is
    /// not preserved — callers gate the projection analytically
    /// (`Q_model/Q_lower`) before trusting it.
    pub fn project_onto(&self, shape: &ConvShape, kind: TileKind) -> ScheduleConfig {
        let (hout, wout) = padded_out(shape, kind);
        let e = match kind {
            TileKind::Winograd(t) => t.e,
            TileKind::Direct => 1,
        };
        let x = snap_divisor(hout, self.x, e);
        let y = snap_divisor(wout, self.y, e);
        let z = snap_divisor(shape.cout, self.z, 1);
        ScheduleConfig {
            x,
            y,
            z,
            nxt: snap_divisor(x, self.nxt, 1),
            nyt: snap_divisor(y, self.nyt, 1),
            nzt: snap_divisor(z, self.nzt, 1),
            ..*self
        }
    }
}

/// The largest divisor of `n` that is a multiple of `step` and at most
/// `want` — or, when every such divisor exceeds `want` (a Winograd tile
/// floor), the smallest one. `n` itself is always a candidate whenever
/// `step | n`, so the result is well-defined for every valid output
/// extent (padded extents are `e`-multiples by construction).
fn snap_divisor(n: usize, want: usize, step: usize) -> usize {
    let mut below: Option<usize> = None;
    let mut above: Option<usize> = None;
    for d in 1..=n {
        if !n.is_multiple_of(d) || !d.is_multiple_of(step) {
            continue;
        }
        if d <= want {
            below = Some(d);
        } else if above.is_none() {
            above = Some(d);
        }
    }
    below.or(above).unwrap_or_else(|| n.max(1))
}

/// Integer-factor slack on the pruned-domain inequalities: exact factor
/// triples rarely hit the real-valued optimum, so the domain keeps
/// configurations within 1.5x of the condition boundary (Table 2's
/// 20-55% space compression comes from this band).
pub const PRUNE_SLACK: f64 = 1.5;

/// Output extents a tile must divide — re-exported from
/// [`iolb_core::optimality::padded_out`]: slightly padded extents so
/// factor-constrained tiles exist even for prime output sizes (real
/// kernels launch ceil-grids with predicated edges).
pub use iolb_core::optimality::padded_out;

/// Configuration validation errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    ZeroTile,
    TileNotFactor,
    ZeroThreads,
    ThreadsNotFactor,
    TooManyThreads(u32),
    SharedMemoryTooLarge { sb: u32, cap: u32 },
    TileExceedsSharedMemory { need: u64, have: u64 },
    OutsidePrunedDomain,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroTile => write!(f, "tile dimension is zero"),
            ConfigError::TileNotFactor => write!(f, "tile does not divide the output shape"),
            ConfigError::ZeroThreads => write!(f, "thread split has a zero"),
            ConfigError::ThreadsNotFactor => write!(f, "thread split does not divide the tile"),
            ConfigError::TooManyThreads(n) => write!(f, "{n} threads exceeds 1024 per block"),
            ConfigError::SharedMemoryTooLarge { sb, cap } => {
                write!(f, "S_b = {sb} B exceeds the two-block cap {cap} B")
            }
            ConfigError::TileExceedsSharedMemory { need, have } => {
                write!(f, "tile footprint {need} elems exceeds S_b = {have} elems")
            }
            ConfigError::OutsidePrunedDomain => {
                write!(f, "violates the optimality-condition searching domain")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

impl std::fmt::Display for ScheduleConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "tile {}x{}x{} threads {}x{}x{} Sb={}KiB {}",
            self.x,
            self.y,
            self.z,
            self.nxt,
            self.nyt,
            self.nzt,
            self.sb_bytes / 1024,
            self.layout
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape() -> ConvShape {
        ConvShape::square(256, 56, 128, 3, 1, 1) // hout = wout = 56
    }

    fn valid_config() -> ScheduleConfig {
        ScheduleConfig {
            x: 14,
            y: 14,
            z: 16,
            nxt: 7,
            nyt: 7,
            nzt: 4,
            sb_bytes: 32 * 1024,
            layout: Layout::Chw,
        }
    }

    const SSM: u32 = 96 * 1024;

    #[test]
    fn valid_config_passes() {
        let c = valid_config();
        assert_eq!(c.validate(&shape(), TileKind::Direct, SSM, false), Ok(()));
        assert_eq!(c.threads(), 196);
    }

    #[test]
    fn tile_must_divide_output() {
        let mut c = valid_config();
        c.x = 13; // 56 % 13 != 0
        assert_eq!(
            c.validate(&shape(), TileKind::Direct, SSM, false),
            Err(ConfigError::TileNotFactor)
        );
    }

    #[test]
    fn threads_must_divide_tile() {
        let mut c = valid_config();
        c.nxt = 3; // 14 % 3 != 0
        assert_eq!(
            c.validate(&shape(), TileKind::Direct, SSM, false),
            Err(ConfigError::ThreadsNotFactor)
        );
    }

    #[test]
    fn thread_cap_enforced() {
        let mut c = valid_config();
        c.x = 56;
        c.y = 56;
        c.nxt = 56;
        c.nyt = 56;
        c.nzt = 1;
        c.z = 1;
        c.sb_bytes = 48 * 1024;
        assert!(matches!(
            c.validate(&shape(), TileKind::Direct, SSM, false),
            Err(ConfigError::TooManyThreads(_)) | Err(ConfigError::TileExceedsSharedMemory { .. })
        ));
    }

    #[test]
    fn two_block_smem_cap() {
        let mut c = valid_config();
        c.sb_bytes = 64 * 1024; // > 96/2 KiB
        assert!(matches!(
            c.validate(&shape(), TileKind::Direct, SSM, false),
            Err(ConfigError::SharedMemoryTooLarge { .. })
        ));
    }

    #[test]
    fn footprint_must_fit() {
        let mut c = valid_config();
        c.sb_bytes = 4 * 1024; // 1024 elems < 14*14*16 tile
        assert!(matches!(
            c.validate(&shape(), TileKind::Direct, SSM, false),
            Err(ConfigError::TileExceedsSharedMemory { .. })
        ));
    }

    #[test]
    fn pruned_domain_rejects_skewed_tiles() {
        // Deep-z tile violates z <= sqrt(Sb/R): R = 9, Sb = 8192 elems
        // -> z cap ~ 2*sqrt(910) ~ 60; choose z = 128.
        let c = ScheduleConfig {
            x: 2,
            y: 2,
            z: 128,
            nxt: 1,
            nyt: 1,
            nzt: 32,
            sb_bytes: 32 * 1024,
            layout: Layout::Chw,
        };
        assert_eq!(c.validate(&shape(), TileKind::Direct, SSM, false), Ok(()));
        assert_eq!(
            c.validate(&shape(), TileKind::Direct, SSM, true),
            Err(ConfigError::OutsidePrunedDomain)
        );
    }

    #[test]
    fn pruned_domain_accepts_balanced_tiles() {
        // xy = 196, Rz = 9*16 = 144: near the condition, within slack.
        let c = valid_config();
        assert_eq!(c.validate(&shape(), TileKind::Direct, SSM, true), Ok(()));
        assert!(c.optimality_deviation(&shape(), TileKind::Direct) < 0.5);
    }

    #[test]
    fn stage_buffers_account_for_halo() {
        let c = valid_config();
        let s = shape();
        // x' = 13*1 + 3 = 16, y' = 16; weights 9 * 16.
        let elems = c.stage_buffer_elems(&s, TileKind::Direct);
        assert_eq!(elems, (16 * 16 + 9 * 16) as f64);
    }

    #[test]
    fn display_round_trip_contains_fields() {
        let c = valid_config();
        let s = format!("{c}");
        assert!(s.contains("14x14x16"));
        assert!(s.contains("CHW"));
    }

    #[test]
    fn projection_snaps_to_the_target_divisor_lattice() {
        let c = valid_config(); // tuned on 56x56 output
                                // hout = wout = 50, padded to 52 (a multiple of 4): the donor's
                                // 14 no longer divides, and the nearest-below divisor is 13.
        let target = ConvShape::square(256, 50, 128, 3, 1, 1);
        let p = c.project_onto(&target, TileKind::Direct);
        assert_eq!((p.x, p.y), (13, 13));
        assert_eq!(p.z, 16, "cout unchanged, z carries over exactly");
        assert!(p.x.is_multiple_of(p.nxt) && p.y.is_multiple_of(p.nyt));
        assert_eq!((p.sb_bytes, p.layout), (c.sb_bytes, c.layout));
        assert_eq!(p.validate(&target, TileKind::Direct, SSM, false), Ok(()));
        // Projecting onto the shape it already fits is the identity.
        assert_eq!(c.project_onto(&shape(), TileKind::Direct), c);
        assert_eq!(p.project_onto(&target, TileKind::Direct), p);
    }

    #[test]
    fn downward_projection_of_a_valid_direct_config_stays_valid() {
        let c = valid_config();
        assert_eq!(c.validate(&shape(), TileKind::Direct, SSM, false), Ok(()));
        // Same filter/stride/pad, jittered spatial and channel extents:
        // the anchor-bucket transfer case.
        for (hw, cout) in [(54, 128), (50, 120), (55, 124), (49, 127)] {
            let target = ConvShape::square(256, hw, cout, 3, 1, 1);
            let p = c.project_onto(&target, TileKind::Direct);
            assert_eq!(
                p.validate(&target, TileKind::Direct, SSM, false),
                Ok(()),
                "projection onto {hw}x{hw} cout={cout} must stay valid"
            );
            assert!(p.threads() <= c.threads(), "downward snap never adds threads");
        }
    }

    #[test]
    fn winograd_projection_respects_the_tile_multiple_floor() {
        let tile = iolb_core::shapes::WinogradTile::F4X3;
        let shape = ConvShape::square(64, 28, 64, 3, 1, 1); // padded out = 28
        let c = ScheduleConfig {
            x: 4,
            y: 4,
            z: 8,
            nxt: 2,
            nyt: 2,
            nzt: 4,
            sb_bytes: 32 * 1024,
            layout: Layout::Chw,
        };
        let kind = TileKind::Winograd(tile);
        assert_eq!(c.validate(&shape, kind, SSM, false), Ok(()));
        let target = ConvShape::square(64, 26, 64, 3, 1, 1);
        let p = c.project_onto(&target, kind);
        assert!(p.x.is_multiple_of(tile.e) && p.y.is_multiple_of(tile.e));
        let (hout, wout) = padded_out(&target, kind);
        assert!(hout.is_multiple_of(p.x) && wout.is_multiple_of(p.y));
    }
}
