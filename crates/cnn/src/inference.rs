//! End-to-end inference timing (paper §7.3, Fig. 12).
//!
//! For every conv layer the planner picks an algorithm and a
//! configuration, times it on the simulator, and sums across the network.
//! Two planners are compared:
//!
//! * **ours** — the dataflow schedules with configurations chosen by the
//!   optimality condition (fast mode) or by the full auto-tuning engine
//!   (tuned mode), taking the better of direct and Winograd per layer;
//! * **baseline** — the cuDNN stand-in: the best of im2col+GEMM and the
//!   unfused Winograd pipeline per layer.

use crate::layers::{ConvLayer, Network};
use iolb_autotune::engine::{tune, tune_with_store};
// The analytic planning defaults live in `iolb_autotune::plan` (shared
// with the tuning service); re-exported here because they are part of
// this module's historical API.
pub use iolb_autotune::plan::{algo_candidates, fast_config};
use iolb_core::optimality::TileKind;
use iolb_core::shapes::{ConvShape, WinogradTile};
use iolb_dataflow::baselines;
use iolb_dataflow::{direct_kernel, winograd_kernel};
use iolb_gpusim::{simulate, simulate_sequence, DeviceSpec};
use iolb_records::RecordStore;
use iolb_service::{
    Backend, BackendError, BackendSession, ServeSource, TuneRequest, TuningService,
};

/// Planning effort for our schedules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanMode {
    /// Analytic: best integer tile under the optimality condition, default
    /// thread split. No search.
    Fast,
    /// Full auto-tuning with the given measurement budget per layer.
    Tuned { budget: usize },
}

/// Per-layer timing entry.
#[derive(Debug, Clone)]
pub struct LayerTime {
    pub name: String,
    /// Our dataflow's time (ms), summed over repeats.
    pub ours_ms: f64,
    /// Baseline library time (ms), summed over repeats.
    pub baseline_ms: f64,
    /// Which algorithm our planner chose.
    pub algorithm: &'static str,
}

/// Whole-network timing.
#[derive(Debug, Clone)]
pub struct NetworkTime {
    pub network: &'static str,
    pub layers: Vec<LayerTime>,
    pub ours_ms: f64,
    pub baseline_ms: f64,
}

impl NetworkTime {
    /// End-to-end speedup of our planner over the baseline.
    pub fn speedup(&self) -> f64 {
        self.baseline_ms / self.ours_ms
    }
}

/// The per-workload tuner seed every CNN-level tuning run uses.
///
/// Pinned so store-backed runs, service-backed runs and the eager
/// reference runs in tests all replay the same trajectories.
pub const TUNER_SEED: u64 = 7;

/// Times one layer under our planner; returns (ms, algorithm label).
pub fn time_ours(
    shape: &ConvShape,
    device: &DeviceSpec,
    mode: PlanMode,
) -> Option<(f64, &'static str)> {
    let mut best: Option<(f64, &'static str)> = None;
    for (kind, label) in algo_candidates(shape) {
        let ms = match mode {
            PlanMode::Fast => {
                let Some(cfg) = fast_config(shape, kind, device) else { continue };
                let kernel = match kind {
                    TileKind::Direct => direct_kernel(shape, &cfg),
                    TileKind::Winograd(t) => winograd_kernel(shape, t, &cfg),
                };
                match simulate(device, &kernel) {
                    Ok(s) => s.time_ms,
                    Err(_) => continue,
                }
            }
            PlanMode::Tuned { budget } => {
                let mut s =
                    iolb_autotune::plan::tuner_setup(shape, kind, device, budget, TUNER_SEED);
                match tune(&s.space, &s.measurer, &mut s.model, &mut s.searcher, s.params) {
                    Some(r) => r.best_ms,
                    None => continue,
                }
            }
        };
        if best.as_ref().is_none_or(|&(b, _)| ms < b) {
            best = Some((ms, label));
        }
    }
    best
}

/// Store economics of a tuning pass: how much the record store saved.
#[derive(Debug, Clone, Copy, Default)]
pub struct TuneEconomics {
    /// Simulator invocations actually performed.
    pub fresh_measurements: usize,
    /// Measurements replayed from the store.
    pub cache_hits: usize,
    /// Tuning runs that warm-started from a *different* workload
    /// (cross-layer transfer).
    pub transfers: usize,
}

impl TuneEconomics {
    fn absorb(&mut self, out: &iolb_autotune::StoreTuneResult) {
        self.fresh_measurements += out.fresh_measurements;
        self.cache_hits += out.cache_hits;
        self.transfers += usize::from(out.transferred);
    }

    fn merge(&mut self, other: TuneEconomics) {
        self.fresh_measurements += other.fresh_measurements;
        self.cache_hits += other.cache_hits;
        self.transfers += other.transfers;
    }
}

/// Times one layer by full auto-tuning against a persistent record
/// store (the store-backed analogue of [`time_ours`] in
/// [`PlanMode::Tuned`]): per-algorithm tuning runs replay cached
/// measurements, warm-start from the store's best records — transferring
/// from the nearest already-tuned layer when this one is new — and write
/// everything they measure back.
pub fn time_ours_with_store(
    shape: &ConvShape,
    device: &DeviceSpec,
    budget: usize,
    store: &mut RecordStore,
) -> Option<(f64, &'static str, TuneEconomics)> {
    let mut economics = TuneEconomics::default();
    let mut best: Option<(f64, &'static str)> = None;
    for (kind, label) in algo_candidates(shape) {
        let mut s = iolb_autotune::plan::tuner_setup(shape, kind, device, budget, TUNER_SEED);
        let Some(out) =
            tune_with_store(&s.space, &s.measurer, &mut s.model, &mut s.searcher, s.params, store)
        else {
            continue;
        };
        economics.absorb(&out);
        if best.as_ref().is_none_or(|&(b, _)| out.result.best_ms < b) {
            best = Some((out.result.best_ms, label));
        }
    }
    best.map(|(ms, label)| (ms, label, economics))
}

/// Tunes a whole network against a persistent record store and times it.
///
/// The first pass over a network measures (and records) everything; a
/// second pass against the same store replays almost every measurement,
/// and *new* networks sharing layer geometries warm-start from their
/// neighbours — this is how the measurement cost of the paper's §7.3
/// experiment amortizes across invocations.
pub fn time_network_with_store(
    net: &Network,
    device: &DeviceSpec,
    budget: usize,
    store: &mut RecordStore,
) -> (NetworkTime, TuneEconomics) {
    let mut economics = TuneEconomics::default();
    let time = time_network_impl(net, device, |shape| {
        match time_ours_with_store(shape, device, budget, store) {
            Some((ms, label, eco)) => {
                economics.merge(eco);
                (ms, label)
            }
            None => (f64::INFINITY, "none"),
        }
    });
    (time, economics)
}

/// Economics of serving a network through the tuning service: how the
/// requests were answered.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServiceEconomics {
    /// Requests answered instantly from the device shards (including
    /// duplicate layer shapes deduplicated within the batch session).
    pub shard_hits: usize,
    /// Requests that waited for (and took) an in-flight background tune.
    pub stolen: usize,
    /// Requests tuned on the waiting session's thread.
    pub inline_tuned: usize,
    /// Simulator invocations the requests themselves triggered (zero
    /// when the background workers already filled the store).
    pub fresh_measurements: usize,
    /// Store replays the inline runs used.
    pub cache_hits: usize,
    /// Requests that rode along on another request in the same session
    /// (duplicate layer shapes: one tuning job, many waiters).
    pub deduped: usize,
    /// Requests answered from the workload's anchor bucket: a
    /// bucket-mate's tuned config projected onto the requested shape,
    /// with zero fresh tuning measurements.
    pub anchored: usize,
    /// Anchored answers the analytic gate could not prove within the
    /// gap bound — served provisionally with a background re-tune
    /// enqueued. Always `<= anchored`.
    pub transfer_retunes: usize,
}

impl ServiceEconomics {
    fn absorb(&mut self, out: &iolb_service::ServeResult) {
        match out.source {
            ServeSource::ShardHit => self.shard_hits += 1,
            ServeSource::Stolen => self.stolen += 1,
            ServeSource::Inline { .. } => self.inline_tuned += 1,
            ServeSource::Anchored { retune } => {
                self.anchored += 1;
                self.transfer_retunes += usize::from(retune);
            }
        }
        self.fresh_measurements += out.fresh_measurements;
        self.cache_hits += out.cache_hits;
    }
}

/// Times a whole network through the background [`TuningService`] — the
/// service-backed analogue of [`time_network_with_store`], built on one
/// batch **session** over every layer × algorithm candidate.
///
/// The session dedupes repeated layer shapes (one tuning job with
/// fan-out waiters), submits the batch as a tracked group that outranks
/// all speculative queue work, and collects results as they land:
/// workloads the speculative workers already tuned replay instantly,
/// in-flight ones are stolen, and cold ones tune on this thread as one
/// parallel hermetic batch (at the service's per-workload budget).
/// After the service's queue has drained, serving a registered network
/// performs **zero** new simulator measurements and returns costs
/// bit-identical to eager [`time_network_with_store`] runs at the same
/// budget and seed — that contract is pinned by `tests/service.rs` and
/// `tests/session.rs`.
pub fn time_network_with_service(
    net: &Network,
    device: &DeviceSpec,
    service: &TuningService,
) -> (NetworkTime, ServiceEconomics) {
    time_network_with_backend(net, device, service)
        .expect("the in-process tuning service is infallible")
}

/// Times a whole network through any tuning [`Backend`] — the
/// transport-abstracted generalization of [`time_network_with_service`]:
/// pass the in-process [`TuningService`] and this is the embedded path,
/// pass an [`iolb_service::SocketBackend`] / [`iolb_service::TcpBackend`]
/// and the same session runs against a resident shard-server daemon over
/// its Unix socket or TCP listener, pass an
/// [`iolb_service::FleetRouter`] and it is consistent-hash-scattered
/// across a whole daemon fleet — all with bit-identical results: every
/// backend runs the identical hermetic tuning (pinned by
/// `tests/daemon.rs` and `tests/fleet.rs`). Errors can only come from a
/// remote backend's transport or daemon.
pub fn time_network_with_backend<B: Backend>(
    net: &Network,
    device: &DeviceSpec,
    backend: &B,
) -> Result<(NetworkTime, ServiceEconomics), BackendError> {
    // One request per layer x algorithm candidate, all in one session.
    let mut requests: Vec<TuneRequest> = Vec::new();
    let mut spans: Vec<(usize, Vec<&'static str>)> = Vec::with_capacity(net.layers.len());
    for layer in &net.layers {
        let start = requests.len();
        let mut labels = Vec::new();
        for (kind, label) in algo_candidates(&layer.shape) {
            requests.push(TuneRequest::bare(layer.shape, kind));
            labels.push(label);
        }
        spans.push((start, labels));
    }
    let handle = backend.submit_batch(&requests, device)?;
    let deduped = requests.len() - handle.unique_workloads();
    let results = handle.wait()?;

    let mut economics = ServiceEconomics { deduped, ..ServiceEconomics::default() };
    let mut per_layer = spans.iter().map(|(start, labels)| {
        let mut best: Option<(f64, &'static str)> = None;
        for (offset, label) in labels.iter().enumerate() {
            let Some(out) = &results[start + offset] else { continue };
            economics.absorb(out);
            if best.as_ref().is_none_or(|&(b, _)| out.cost_ms < b) {
                best = Some((out.cost_ms, label));
            }
        }
        best.unwrap_or((f64::INFINITY, "none"))
    });
    let time = time_network_impl(net, device, |_| per_layer.next().expect("one span per layer"));
    drop(per_layer);
    Ok((time, economics))
}

/// The shared per-layer timing loop behind [`time_network`] and
/// [`time_network_with_store`]: `time_layer` supplies our planner's
/// (ms, algorithm) per shape, the baseline and repeat accounting are
/// common.
fn time_network_impl(
    net: &Network,
    device: &DeviceSpec,
    mut time_layer: impl FnMut(&ConvShape) -> (f64, &'static str),
) -> NetworkTime {
    let mut layers = Vec::with_capacity(net.layers.len());
    let mut ours_total = 0.0;
    let mut base_total = 0.0;
    for layer in &net.layers {
        let (ours, algorithm) = time_layer(&layer.shape);
        let baseline = time_baseline(&layer.shape, device);
        let reps = layer.repeat as f64;
        ours_total += ours * reps;
        base_total += baseline * reps;
        layers.push(LayerTime {
            name: layer.name.clone(),
            ours_ms: ours * reps,
            baseline_ms: baseline * reps,
            algorithm,
        });
    }
    NetworkTime { network: net.name, layers, ours_ms: ours_total, baseline_ms: base_total }
}

/// Times one layer under the baseline library (best available algorithm).
pub fn time_baseline(shape: &ConvShape, device: &DeviceSpec) -> f64 {
    let mut best = f64::INFINITY;
    if let Ok(seq) = simulate_sequence(device, &baselines::im2col_gemm(shape)) {
        best = best.min(seq.time_ms);
    }
    if let Ok(seq) = simulate_sequence(device, &baselines::naive_direct(shape)) {
        best = best.min(seq.time_ms);
    }
    if shape.kh == shape.kw && shape.kh == 3 && shape.stride == 1 {
        for tile in [WinogradTile::F2X3, WinogradTile::F4X3] {
            if let Ok(seq) = simulate_sequence(device, &baselines::winograd_unfused(shape, tile)) {
                best = best.min(seq.time_ms);
            }
        }
    }
    best
}

/// Times a whole network.
pub fn time_network(net: &Network, device: &DeviceSpec, mode: PlanMode) -> NetworkTime {
    time_network_impl(net, device, |shape| {
        time_ours(shape, device, mode).unwrap_or((f64::INFINITY, "none"))
    })
}

/// Convenience for tests / examples: layer accessor on networks.
pub fn layer<'n>(net: &'n Network, name: &str) -> &'n ConvLayer {
    net.layers
        .iter()
        .find(|l| l.name == name)
        .unwrap_or_else(|| panic!("{} has no layer {name}", net.name))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models;

    fn device() -> DeviceSpec {
        DeviceSpec::v100()
    }

    #[test]
    fn fast_config_exists_for_all_alexnet_layers() {
        let net = models::alexnet();
        for l in &net.layers {
            let cfg = fast_config(&l.shape, TileKind::Direct, &device());
            assert!(cfg.is_some(), "no fast config for {}", l.name);
        }
    }

    #[test]
    fn our_time_finite_and_positive() {
        let shape = ConvShape::square(64, 28, 64, 3, 1, 1);
        let (ms, alg) = time_ours(&shape, &device(), PlanMode::Fast).unwrap();
        assert!(ms.is_finite() && ms > 0.0);
        assert!(!alg.is_empty());
    }

    #[test]
    fn winograd_chosen_for_eligible_layers_sometimes() {
        // 3x3 s1 layers must at least consider Winograd; deep-channel
        // layers favour it via the flop reduction.
        let shape = ConvShape::square(512, 28, 512, 3, 1, 1);
        let (_, alg) = time_ours(&shape, &device(), PlanMode::Fast).unwrap();
        assert!(alg == "direct" || alg.starts_with("winograd"));
    }

    #[test]
    fn network_timing_sums_layers() {
        let net = models::alexnet();
        let t = time_network(&net, &device(), PlanMode::Fast);
        let sum: f64 = t.layers.iter().map(|l| l.ours_ms).sum();
        assert!((t.ours_ms - sum).abs() < 1e-9);
        assert!(t.ours_ms > 0.0 && t.baseline_ms > 0.0);
    }

    #[test]
    fn ours_beats_baseline_end_to_end_on_alexnet() {
        let net = models::alexnet();
        let t = time_network(&net, &device(), PlanMode::Fast);
        assert!(t.speedup() > 1.0, "ours {} ms vs baseline {} ms", t.ours_ms, t.baseline_ms);
    }

    #[test]
    fn one_by_one_layers_are_plannable() {
        // SqueezeNet's squeeze layers: R = 1, stride 1, k = 1.
        let shape = ConvShape::new(96, 54, 54, 16, 1, 1, 1, 0);
        let (ms, alg) = time_ours(&shape, &device(), PlanMode::Fast).unwrap();
        assert!(ms.is_finite());
        assert_eq!(alg, "direct");
    }

    #[test]
    fn rectangular_kernels_are_plannable() {
        // Inception 1x7.
        let shape = ConvShape::new(128, 17, 17, 128, 1, 7, 1, 3);
        let (ms, _) = time_ours(&shape, &device(), PlanMode::Fast).unwrap();
        assert!(ms.is_finite());
    }

    #[test]
    fn layer_lookup() {
        let net = models::alexnet();
        assert_eq!(layer(&net, "conv3").shape.cout, 384);
    }

    #[test]
    fn service_serving_after_drain_is_all_hits() {
        use crate::layers::{ConvLayer, Network};
        use iolb_service::{ServiceConfig, ShardedStore, TuningService};
        let net = Network {
            name: "toy",
            layers: vec![
                ConvLayer::new("a", ConvShape::new(32, 14, 14, 16, 1, 1, 1, 0)),
                ConvLayer::new("b", ConvShape::new(16, 14, 14, 32, 1, 1, 1, 0)),
            ],
        };
        let config = ServiceConfig {
            budget_per_workload: 12,
            workers: 0,
            speculate_neighbors: false,
            seed: TUNER_SEED,
            ..ServiceConfig::default()
        };
        let service = TuningService::new(ShardedStore::new(), config);
        assert_eq!(service.register_network(&net, &device()), 2);
        service.drain();
        let (timed, eco) = time_network_with_service(&net, &device(), &service);
        assert_eq!(eco.shard_hits, 2, "drained service must answer from the shards");
        assert_eq!(eco.inline_tuned, 0);
        assert_eq!(eco.fresh_measurements, 0);
        assert!(timed.ours_ms.is_finite() && timed.ours_ms > 0.0);
        // A cold service serves the same costs, just inline.
        let cold = TuningService::new(ShardedStore::new(), config);
        let (timed_cold, eco_cold) = time_network_with_service(&net, &device(), &cold);
        assert_eq!(eco_cold.inline_tuned, 2);
        assert!(eco_cold.fresh_measurements > 0);
        assert_eq!(timed_cold.ours_ms.to_bits(), timed.ours_ms.to_bits());
    }

    #[test]
    fn network_retuning_against_a_store_is_mostly_cached() {
        use crate::layers::{ConvLayer, Network};
        // A two-layer toy network; 1x1 layers keep the candidate list to
        // `direct` only, so the test stays fast.
        let net = Network {
            name: "toy",
            layers: vec![
                ConvLayer::new("a", ConvShape::new(32, 28, 28, 16, 1, 1, 1, 0)),
                ConvLayer::new("b", ConvShape::new(16, 28, 28, 32, 1, 1, 1, 0)),
            ],
        };
        let mut store = iolb_records::RecordStore::new();
        let (cold, eco_cold) = time_network_with_store(&net, &device(), 16, &mut store);
        let (warm, eco_warm) = time_network_with_store(&net, &device(), 16, &mut store);
        assert_eq!(eco_cold.cache_hits, 0);
        assert!(eco_cold.fresh_measurements > 0);
        assert!(
            eco_warm.fresh_measurements < eco_cold.fresh_measurements,
            "second network pass re-measured everything ({} vs {})",
            eco_warm.fresh_measurements,
            eco_cold.fresh_measurements
        );
        assert!(eco_warm.cache_hits > 0);
        assert!(
            warm.ours_ms <= cold.ours_ms + 1e-12,
            "store-backed retune regressed: {} vs {}",
            warm.ours_ms,
            cold.ours_ms
        );
        // Related layers transfer: a third, unseen layer with the same
        // spatial extents warm-starts from its neighbours.
        let related = Network {
            name: "toy2",
            layers: vec![ConvLayer::new("c", ConvShape::new(64, 28, 28, 16, 1, 1, 1, 0))],
        };
        let (_, eco_rel) = time_network_with_store(&related, &device(), 16, &mut store);
        assert!(eco_rel.transfers > 0, "unseen layer did not transfer from neighbours");
    }
}
