//! Figure 12 — end-to-end CNN inference time, our planner vs the cuDNN
//! stand-in, on V100: SqueezeNet, VGG-19, ResNet-18, ResNet-34,
//! Inception-v3.

use iolb_bench::banner;
use iolb_cnn::inference::{time_network, PlanMode};
use iolb_cnn::models;
use iolb_gpusim::DeviceSpec;

fn main() {
    let device = DeviceSpec::v100();
    banner(
        "Figure 12: end-to-end inference, ours vs cuDNN stand-in",
        "conv layers only, batch 1, Tesla V100 (simulated), fast-plan mode",
    );
    println!(
        "{:<14} {:>8} {:>12} {:>12} {:>9}",
        "network", "convs", "ours (ms)", "cudnn (ms)", "speedup"
    );
    // Paper's (ours, cuDNN) ms for reference: SqueezeNet (0.45, 1.20),
    // VGG-19 (2.76, 3.00), ResNet-18 (0.85, 0.87), ResNet-34 (1.35, 1.47),
    // Inception-v3 (4.46, 5.47).
    let nets = [
        models::squeezenet(),
        models::vgg19(),
        models::resnet18(),
        models::resnet34(),
        models::inception_v3(),
    ];
    for net in &nets {
        let t = time_network(net, &device, PlanMode::Fast);
        let convs: usize = net.layers.iter().map(|l| l.repeat).sum();
        println!(
            "{:<14} {:>8} {:>12.3} {:>12.3} {:>8.2}x",
            t.network,
            convs,
            t.ours_ms,
            t.baseline_ms,
            t.speedup()
        );
    }
    println!();
    println!("Per-layer detail for SqueezeNet (algorithm picks):");
    let t = time_network(&models::squeezenet(), &device, PlanMode::Fast);
    for l in t.layers.iter().take(10) {
        println!(
            "  {:<22} ours {:>8.4} ms  cudnn {:>8.4} ms  via {}",
            l.name, l.ours_ms, l.baseline_ms, l.algorithm
        );
    }
    println!("\nPaper reference speedups: SqueezeNet 2.67x, VGG-19 1.09x,");
    println!("ResNet-18 1.02x, ResNet-34 1.09x, Inception-v3 1.23x.");
}
