//! ISSUE 5 acceptance gates for the resident shard-server daemon
//! (in-process half; the cross-process half lives in
//! `crates/bench/tests/daemon.rs`):
//!
//! * **daemon == eager** — configs served over the Unix socket are
//!   bit-identical to eager `tune_with_store` runs of the same
//!   workloads (the daemon runs the identical hermetic tuning);
//! * **restart** — the daemon's directory carries everything: a second
//!   daemon over the same directory serves pure shard hits with zero
//!   fresh measurements, and the persisted telemetry counters survive;
//! * **cross-client dedup** — two concurrent socket clients requesting
//!   the same workload trigger exactly one tuning run, fanned out.

use conv_iolb::autotune::plan::tuner_setup;
use conv_iolb::autotune::tune_with_store;
use conv_iolb::cnn::inference::TUNER_SEED;
use conv_iolb::core::optimality::TileKind;
use conv_iolb::core::shapes::ConvShape;
use conv_iolb::gpusim::DeviceSpec;
use conv_iolb::records::RecordStore;
use conv_iolb::service::{
    Backend, BackendSession, Daemon, DaemonConfig, EvictionPolicy, ServeSource, ServiceConfig,
    ShardedStore, SocketBackend, TuneRequest,
};
use std::path::PathBuf;
use std::time::Duration;

const BUDGET: usize = 12;

fn device() -> DeviceSpec {
    DeviceSpec::v100()
}

fn daemon_config() -> DaemonConfig {
    DaemonConfig {
        service: ServiceConfig {
            budget_per_workload: BUDGET,
            workers: 0, // sessions tune on the handler threads: deterministic
            speculate_neighbors: false,
            seed: TUNER_SEED,
            ..ServiceConfig::default()
        },
        merge_interval: Duration::from_millis(50),
        ..DaemonConfig::default()
    }
}

/// Unique per test run: pid alone collides when the OS recycles pids
/// across back-to-back invocations.
fn unique_tag() -> String {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.subsec_nanos())
        .unwrap_or(0);
    format!("{}-{nanos}", std::process::id())
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("iolb-daemon-{tag}-{}", unique_tag()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The eager reference: `tune_with_store` on a fresh store at the
/// daemon's budget and seed.
fn eager(shape: &ConvShape) -> (RecordStore, f64, usize) {
    let mut store = RecordStore::new();
    let mut s = tuner_setup(shape, TileKind::Direct, &device(), BUDGET, TUNER_SEED);
    let out =
        tune_with_store(&s.space, &s.measurer, &mut s.model, &mut s.searcher, s.params, &mut store)
            .expect("feasible workload");
    (store, out.result.best_ms, out.fresh_measurements)
}

/// 5 requests, 3 unique — the duplicate-layer network from the session
/// tests, now crossing a socket.
fn requests() -> Vec<TuneRequest> {
    let a = ConvShape::new(32, 14, 14, 16, 1, 1, 1, 0);
    let b = ConvShape::new(16, 14, 14, 32, 1, 1, 1, 0);
    let c = ConvShape::new(24, 14, 14, 12, 1, 1, 1, 0);
    [a, b, a, c, a].iter().map(|&shape| TuneRequest::bare(shape, TileKind::Direct)).collect()
}

/// The ISSUE 5 pinned test: daemon-served per-layer configs are
/// bit-identical to embedded/eager tuning, and a daemon restart serves
/// the same bits from disk with zero new measurements.
#[test]
fn daemon_served_configs_are_bit_identical_to_eager() {
    let dir = temp_dir("eager");
    let sock = std::env::temp_dir().join(format!("iolb-daemon-eager-{}.sock", unique_tag()));
    let (daemon, report) = Daemon::bind(&dir, &sock, daemon_config()).unwrap();
    assert!(report.is_clean(), "warnings: {:?}", report.warnings);
    let server = std::thread::spawn(move || daemon.run().unwrap());

    let backend = SocketBackend::connect(&sock).unwrap();
    let session = backend.submit_batch(&requests(), &device()).unwrap();
    assert_eq!(session.request_count(), 5);
    assert_eq!(session.unique_workloads(), 3, "dedup happens server-side");
    let results = session.wait().unwrap();
    assert_eq!(results.len(), 5);
    for (request, served) in requests().iter().zip(&results) {
        let served = served.as_ref().expect("feasible layer");
        let (eager_store, eager_best_ms, _) = eager(&request.shape);
        let workload = conv_iolb::records::Workload::new(
            request.shape,
            TileKind::Direct,
            device().name,
            device().smem_per_sm,
        );
        assert_eq!(
            served.cost_ms.to_bits(),
            eager_best_ms.to_bits(),
            "daemon-served cost differs from eager for {}",
            workload.fingerprint()
        );
        assert_eq!(served.config, eager_store.top_k(&workload, 1)[0].config);
    }
    // Exactly one tuning run per unique fingerprint, visible over the wire.
    let snap = backend.stats().unwrap();
    assert_eq!(snap.snapshot.stats.inline_tuned + snap.snapshot.stats.background_tuned, 3);
    // The v3 stats frame carries the daemon's metrics registry: one
    // session so far, and its latency histogram agrees.
    assert_eq!(snap.metrics.counter("iolb_sessions_total"), Some(1));
    let session_us = snap.metrics.histogram("iolb_session_us").expect("session histogram on wire");
    assert_eq!(session_us.count(), 1);
    let request_us = snap.metrics.histogram("iolb_daemon_request_us").expect("request histogram");
    assert!(request_us.count() >= 2, "submit + wait were served before this stats call");
    // requests() is a,b,a,c,a — three unique shapes.
    let expected_fresh: usize = {
        let mut seen = std::collections::BTreeSet::new();
        requests()
            .iter()
            .filter(|r| seen.insert(format!("{}", r.shape)))
            .map(|r| eager(&r.shape).2)
            .sum()
    };
    assert_eq!(snap.snapshot.stats.fresh_measurements, expected_fresh);
    // Sync flushes to the daemon's directory.
    let sync = backend.sync().unwrap();
    assert!(sync.persisted);
    assert!(sync.total > 0);
    backend.shutdown().unwrap();
    server.join().unwrap();
    assert!(!sock.exists(), "clean shutdown removes the socket file");

    // Restart: a second daemon over the same directory replays from the
    // shards (zero fresh measurements) and carries the telemetry over.
    let (daemon, report) = Daemon::bind(&dir, &sock, daemon_config()).unwrap();
    assert!(report.is_clean(), "warnings: {:?}", report.warnings);
    let server = std::thread::spawn(move || daemon.run().unwrap());
    let backend = SocketBackend::connect(&sock).unwrap();
    let restored = backend.stats().unwrap();
    assert_eq!(
        restored.snapshot.stats.fresh_measurements, expected_fresh,
        "telemetry must survive the restart"
    );
    let replay = backend.submit_batch(&requests(), &device()).unwrap().wait().unwrap();
    for (fresh_run, replayed) in results.iter().zip(&replay) {
        let fresh_run = fresh_run.as_ref().unwrap();
        let replayed = replayed.as_ref().unwrap();
        assert_eq!(replayed.source, ServeSource::ShardHit);
        assert_eq!(replayed.fresh_measurements, 0);
        assert_eq!(replayed.cost_ms.to_bits(), fresh_run.cost_ms.to_bits());
        assert_eq!(replayed.config, fresh_run.config);
    }
    assert_eq!(
        backend.stats().unwrap().snapshot.stats.fresh_measurements,
        expected_fresh,
        "replay measured nothing"
    );
    backend.shutdown().unwrap();
    server.join().unwrap();

    // The directory holds exactly what an embedded service would hold.
    let (store, report) = ShardedStore::load(&dir).unwrap();
    assert!(report.is_clean());
    assert!(!store.is_empty());
    let _ = std::fs::remove_dir_all(&dir);
}

/// ISSUE 9 satellite: a daemon configured with an eviction policy trims
/// its store on the persister tick — the dropped count shows up in the
/// `iolb_evictions_total` counter, the store converges to one best
/// record per workload (the best is never evicted, so served bits stay
/// exact), and what lands on disk is the trimmed state.
#[test]
fn scheduled_eviction_trims_store_on_the_persister_tick() {
    let dir = temp_dir("evict");
    let sock = std::env::temp_dir().join(format!("iolb-daemon-evict-{}.sock", unique_tag()));
    let config = DaemonConfig {
        evict: Some(EvictionPolicy { max_records: 3, top_k: 1 }),
        ..daemon_config()
    };
    let (daemon, _) = Daemon::bind(&dir, &sock, config).unwrap();
    let server = std::thread::spawn(move || daemon.run().unwrap());

    let backend = SocketBackend::connect(&sock).unwrap();
    let results = backend.submit_batch(&requests(), &device()).unwrap().wait().unwrap();
    assert_eq!(results.len(), 5);

    // Three unique workloads tuned at budget 12 leave well over
    // `max_records` records in memory; the next persister tick (50 ms
    // merge interval) must trim them. Poll the counter, bounded.
    let mut evicted = 0;
    for _ in 0..100 {
        let snap = backend.stats().unwrap();
        if let Some(n) = snap.metrics.counter("iolb_evictions_total") {
            if n > 0 {
                evicted = n;
                break;
            }
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    assert!(evicted > 0, "persister tick never evicted");

    // Tight budget + top_k 1: the floor is one best record per workload.
    let sync = backend.sync().unwrap();
    assert!(sync.persisted);
    assert_eq!(sync.total, 3, "one best record per unique workload");

    // Serving after the trim replays the kept best records bit-exactly,
    // with no re-measurement: eviction never drops a workload's best.
    let replay = backend.submit_batch(&requests(), &device()).unwrap().wait().unwrap();
    for (before, after) in results.iter().zip(&replay) {
        let (before, after) = (before.as_ref().unwrap(), after.as_ref().unwrap());
        assert_eq!(after.cost_ms.to_bits(), before.cost_ms.to_bits());
        assert_eq!(after.config, before.config);
        assert_eq!(after.fresh_measurements, 0, "best record survived eviction");
    }
    backend.shutdown().unwrap();
    server.join().unwrap();

    // The directory holds the trimmed store, not the pre-eviction one.
    let (store, report) = ShardedStore::load(&dir).unwrap();
    assert!(report.is_clean());
    assert_eq!(store.len(), 3);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Two concurrent socket clients, same workload: one tuning run, both
/// get identical bits.
#[test]
fn concurrent_socket_clients_share_one_tuning_run() {
    let dir = temp_dir("dedup");
    let sock = std::env::temp_dir().join(format!("iolb-daemon-dedup-{}.sock", unique_tag()));
    let (daemon, _) = Daemon::bind(&dir, &sock, daemon_config()).unwrap();
    let server = std::thread::spawn(move || daemon.run().unwrap());

    let shape = ConvShape::new(32, 14, 14, 16, 1, 1, 1, 0);
    let clients: Vec<_> = (0..2)
        .map(|_| {
            let sock = sock.clone();
            std::thread::spawn(move || {
                let backend = SocketBackend::connect(&sock).unwrap();
                backend
                    .tune_or_wait_via(&shape, TileKind::Direct, &device())
                    .unwrap()
                    .expect("feasible workload")
            })
        })
        .collect();
    let results: Vec<_> = clients.into_iter().map(|t| t.join().unwrap()).collect();
    let (_, eager_best_ms, eager_fresh) = eager(&shape);
    for r in &results {
        assert_eq!(r.cost_ms.to_bits(), eager_best_ms.to_bits());
        assert_eq!(r.config, results[0].config);
    }
    let backend = SocketBackend::connect(&sock).unwrap();
    let snap = backend.stats().unwrap();
    assert_eq!(
        snap.snapshot.stats.inline_tuned + snap.snapshot.stats.background_tuned,
        1,
        "two clients, one tuning run"
    );
    assert_eq!(snap.snapshot.stats.fresh_measurements, eager_fresh, "no duplicate measurements");
    backend.shutdown().unwrap();
    server.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// ISSUE 7 acceptance pin: histogram readouts fetched over the wire
/// equal the in-process registry. An embedded service runs a session;
/// its live `StatsReport` is pushed through the v3 codec and the
/// decoded metrics must match the registry snapshot field-for-field,
/// bucket-for-bucket.
#[test]
fn wire_stats_equal_in_process_registry() {
    use conv_iolb::service::wire::{self, Response};
    use conv_iolb::service::TuningService;

    let config = ServiceConfig {
        budget_per_workload: BUDGET,
        workers: 0,
        speculate_neighbors: false,
        seed: TUNER_SEED,
        ..ServiceConfig::default()
    };
    let service = TuningService::new(ShardedStore::new(), config);
    let session = service.submit_batch(&requests(), &device()).unwrap();
    let results = session.wait();
    assert_eq!(results.len(), 5);

    let report = Backend::stats(&service).unwrap();
    let session_us = report.metrics.histogram("iolb_session_us").expect("session latency recorded");
    assert_eq!(session_us.count(), 1, "one session ran");
    assert_eq!(report.metrics.counter("iolb_sessions_total"), Some(1));

    let response =
        Response::Stats { snapshot: Box::new(report.snapshot), metrics: report.metrics.clone() };
    let mut frame = Vec::new();
    wire::write_response(&mut frame, &response).unwrap();
    let mut cursor = std::io::Cursor::new(frame);
    match wire::read_response(&mut cursor).unwrap() {
        Response::Stats { snapshot, metrics } => {
            assert_eq!(*snapshot, report.snapshot, "snapshot survives the wire");
            assert_eq!(metrics, report.metrics, "registry survives the wire exactly");
        }
        other => panic!("expected Stats, got {other:?}"),
    }
}
