//! The general composite-algorithm theory on *your own* algorithm:
//! define per-step vertex-generation bounds, get an I/O lower bound.
//!
//! Theorem 4.6 is not conv-specific — this example applies it to
//! (1) dense matrix multiplication (reproducing the classic `n³/√S` law)
//! and (2) a hand-rolled three-step pipeline, showing how the nested
//! `T(S)` maximisation composes arbitrary φ/ψ sequences.
//!
//! ```sh
//! cargo run --release --example composite_theory
//! ```

use conv_iolb::core::composite::{io_lower_bound, t_bound};
use conv_iolb::core::matmul::{blocked_schedule_io, MatmulShape};
use conv_iolb::core::phi_psi::{DirectProductStep, StepBound, SummationTreeStep};

fn main() {
    // --- 1. Matmul through the composite machinery --------------------
    println!("[1] dense matmul C = A*B via Theorem 4.6\n");
    let steps = conv_iolb::core::matmul::matmul_steps();
    println!("{:>6} {:>8} {:>14} {:>16} {:>8}", "n", "S", "Q_lower", "blocked GEMM Q", "gap");
    for n in [256usize, 1024] {
        let m = MatmulShape::new(n);
        for s in [256.0f64, 4096.0] {
            let q = io_lower_bound(&steps, m.vertex_count() as f64, s);
            let blocked = blocked_schedule_io(&m, s);
            println!("{n:>6} {s:>8.0} {q:>14.3e} {blocked:>16.3e} {:>7.1}x", blocked / q.max(1.0));
        }
    }
    println!("\n(The classic n^3/sqrt(S) law drops out of the same machinery that");
    println!(" bounds the convolutions — Theorem 4.6 is genuinely composite-generic.)\n");

    // --- 2. A custom three-step pipeline --------------------------------
    // Imagine: elementwise preprocessing -> pairwise products -> reduction.
    println!("[2] custom pipeline: map -> product -> reduce\n");
    struct MapStep;
    impl StepBound for MapStep {
        fn phi(&self, _s: f64, h: f64) -> f64 {
            h // one output per input
        }
        fn name(&self) -> &'static str {
            "map"
        }
    }
    let steps: Vec<Box<dyn StepBound>> = vec![
        Box::new(MapStep),
        Box::new(DirectProductStep { reuse: 4.0 }),
        Box::new(SummationTreeStep),
    ];
    println!("{:>8} {:>14} {:>14}", "S", "T(S)", "Q_lower(|V|=1e8)");
    for s in [1024.0f64, 4096.0, 16384.0] {
        let t = t_bound(&steps, s);
        let q = io_lower_bound(&steps, 1e8, s);
        println!("{s:>8.0} {:>14.3e} {q:>14.3e}", t.t);
    }
    println!("\nmaximising budget split at S = 4096: {:?}", t_bound(&steps, 4096.0).split);
}
