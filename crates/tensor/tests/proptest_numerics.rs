//! Property tests for the numerics substrate: all convolution paths agree,
//! Winograd transforms are exact for arbitrary F(e, r), GEMM matches the
//! naive triple loop, layouts round-trip.

use iolb_tensor::conv_ref::{conv2d_reference, ConvParams};
use iolb_tensor::gemm::{gemm, gemm_naive, MatRef};
use iolb_tensor::im2col::conv2d_im2col;
use iolb_tensor::layout::Layout;
use iolb_tensor::tensor::Tensor4;
use iolb_tensor::winograd_conv::conv2d_winograd;
use iolb_tensor::winograd_math::{apply_1d, correlate_1d, generate};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// GEMM equals the naive triple loop for arbitrary sizes and thread
    /// counts.
    #[test]
    fn gemm_equals_naive(
        m in 1usize..24,
        k in 1usize..24,
        n in 1usize..24,
        threads in 1usize..5,
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a: Vec<f32> = (0..m * k).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let b: Vec<f32> = (0..k * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut want = vec![0.0; m * n];
        gemm_naive(MatRef::new(&a, m, k), MatRef::new(&b, k, n), &mut want);
        let mut got = vec![0.0; m * n];
        gemm(MatRef::new(&a, m, k), MatRef::new(&b, k, n), &mut got, threads);
        for (g, w) in got.iter().zip(&want) {
            prop_assert!((g - w).abs() <= 1e-3 + 1e-4 * w.abs());
        }
    }

    /// Cook–Toom transforms computed for arbitrary (e, r) implement exact
    /// 1-D correlation.
    #[test]
    fn winograd_1d_exact_for_any_tile(
        e in 1usize..=6,
        r in 1usize..=4,
        seed in 0u64..1000,
    ) {
        prop_assume!(e + r - 1 <= 8); // conditioning limit of the points
        let t = generate(e, r);
        let mut rng = StdRng::seed_from_u64(seed);
        let g: Vec<f64> = (0..r).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let d: Vec<f64> = (0..e + r - 1).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let got = apply_1d(&t, &g, &d);
        let want = correlate_1d(&g, &d);
        for (a, b) in got.iter().zip(&want) {
            prop_assert!((a - b).abs() < 1e-7, "{got:?} vs {want:?}");
        }
    }

    /// Layout conversion round-trips exactly and preserves every element.
    #[test]
    fn layout_roundtrip(
        c in 1usize..5,
        h in 1usize..6,
        w in 1usize..6,
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let t = Tensor4::random(2, c, h, w, &mut rng);
        for layout in Layout::ALL {
            let converted = t.to_layout(layout);
            let back = converted.to_layout(t.layout);
            prop_assert_eq!(back.as_slice(), t.as_slice());
        }
    }

    /// Convolution is invariant under input layout.
    #[test]
    fn conv_layout_invariant(
        cin in 1usize..4,
        hw in 4usize..8,
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let input = Tensor4::random(1, cin, hw, hw, &mut rng);
        let weights = Tensor4::random(2, cin, 3, 3, &mut rng);
        let params = ConvParams::new(1, 1);
        let base = conv2d_reference(&input, &weights, params);
        for layout in Layout::ALL {
            let out = conv2d_reference(&input.to_layout(layout), &weights, params);
            prop_assert_eq!(out.max_abs_diff(&base), 0.0);
        }
    }

    /// im2col+GEMM and Winograd agree with the reference (and hence with
    /// each other) on unit-stride 3x3 shapes.
    #[test]
    fn all_paths_agree(
        cin in 1usize..3,
        hw in 5usize..9,
        cout in 1usize..4,
        pad in 0usize..=1,
        seed in 0u64..500,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let input = Tensor4::random(1, cin, hw, hw, &mut rng);
        let weights = Tensor4::random(cout, cin, 3, 3, &mut rng);
        let params = ConvParams::new(1, pad);
        let reference = conv2d_reference(&input, &weights, params);
        let via_gemm = conv2d_im2col(&input, &weights, params, 2);
        let via_wino = conv2d_winograd(&input, &weights, params, 2);
        prop_assert!(via_gemm.approx_eq(&reference, 1e-3, 1e-3));
        prop_assert!(via_wino.approx_eq(&reference, 1e-3, 1e-3));
    }

    /// Convolution linearity: conv(a·x, w) = a·conv(x, w).
    #[test]
    fn conv_is_linear(
        scale in -4.0f32..4.0,
        seed in 0u64..500,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let input = Tensor4::random(1, 2, 6, 6, &mut rng);
        let weights = Tensor4::random(2, 2, 3, 3, &mut rng);
        let params = ConvParams::unit();
        let base = conv2d_reference(&input, &weights, params);
        let mut scaled_in = input.clone();
        for v in scaled_in.as_mut_slice() {
            *v *= scale;
        }
        let scaled_out = conv2d_reference(&scaled_in, &weights, params);
        let mut want = base.clone();
        for v in want.as_mut_slice() {
            *v *= scale;
        }
        prop_assert!(scaled_out.approx_eq(&want, 1e-3, 1e-3));
    }
}
