//! The in-memory record index with persistent JSONL backing.
//!
//! The store is a `BTreeMap` keyed by workload fingerprint — iteration
//! order (and therefore serialization order) is deterministic — whose
//! per-workload record lists are kept sorted by [`canonical
//! order`](crate::record::TuningRecord::canonical_cmp). Saving always
//! emits the canonical form, so `save ∘ load` is the identity on
//! canonical files and two runs that measured the same data write
//! bit-identical stores.

use crate::jsonl;
use crate::record::{TuningRecord, Workload};
use iolb_dataflow::config::ScheduleConfig;
use std::collections::BTreeMap;
use std::io::Write;
use std::path::Path;

/// What a (corruption-tolerant) load saw: how many records were indexed
/// and which lines were skipped, with reasons.
#[derive(Debug, Clone, Default)]
pub struct LoadReport {
    /// Records successfully indexed.
    pub loaded: usize,
    /// Records dropped as duplicates of an already-indexed
    /// workload+config pair (the better cost wins).
    pub superseded: usize,
    /// Skipped lines: `(1-based line number, reason)`.
    pub skipped: Vec<(usize, String)>,
}

impl LoadReport {
    /// Whether every line parsed cleanly.
    pub fn is_clean(&self) -> bool {
        self.skipped.is_empty()
    }
}

/// The tuning-record database.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecordStore {
    /// fingerprint -> records, each list sorted canonically (best first).
    by_workload: BTreeMap<String, Vec<TuningRecord>>,
}

impl RecordStore {
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of records across all workloads.
    pub fn len(&self) -> usize {
        self.by_workload.values().map(Vec::len).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.by_workload.is_empty()
    }

    /// Number of distinct workloads.
    pub fn workload_count(&self) -> usize {
        self.by_workload.len()
    }

    /// Fingerprints of every indexed workload, in deterministic order.
    pub fn fingerprints(&self) -> impl Iterator<Item = &str> {
        self.by_workload.keys().map(String::as_str)
    }

    /// All records of one workload (canonical order, best cost first).
    pub fn records(&self, fingerprint: &str) -> &[TuningRecord] {
        self.by_workload.get(fingerprint).map_or(&[], Vec::as_slice)
    }

    /// Every `(fingerprint, records)` pair, in deterministic fingerprint
    /// order; record lists are canonical (best cost first). This is the
    /// iteration surface sharding and eviction are built on.
    pub fn entries(&self) -> impl Iterator<Item = (&str, &[TuningRecord])> {
        self.by_workload.iter().map(|(fp, list)| (fp.as_str(), list.as_slice()))
    }

    /// The best record of every workload, in deterministic fingerprint
    /// order — the iteration surface secondary indexes (e.g. the
    /// service's anchor-bucket index) are built over without walking
    /// full record lists.
    pub fn best_entries(&self) -> impl Iterator<Item = (&str, &TuningRecord)> {
        self.by_workload.iter().filter_map(|(fp, list)| list.first().map(|rec| (fp.as_str(), rec)))
    }

    /// Consuming variant of [`entries`](Self::entries): yields every
    /// `(fingerprint, records)` pair in fingerprint order, moving the
    /// records out (what re-sharding wants — no clones).
    pub fn into_entries(self) -> impl Iterator<Item = (String, Vec<TuningRecord>)> {
        self.by_workload.into_iter()
    }

    /// Keeps only the `keep` best records of *one* workload (the list is
    /// canonical, so truncation always retains the best-cost record when
    /// `keep >= 1`). `keep == 0` removes the workload entirely. Returns
    /// how many records were dropped; unknown fingerprints drop nothing.
    pub fn truncate_workload(&mut self, fingerprint: &str, keep: usize) -> usize {
        let Some(list) = self.by_workload.get_mut(fingerprint) else {
            return 0;
        };
        if list.len() <= keep {
            return 0;
        }
        let dropped = list.len() - keep;
        list.truncate(keep);
        if list.is_empty() {
            self.by_workload.remove(fingerprint);
        }
        dropped
    }

    /// Inserts a record. If the workload+config pair already exists the
    /// lower cost wins (re-measurements of a deterministic simulator
    /// agree, but merged stores from different tuner versions may not).
    /// Returns `false` when an existing equal-or-better record made the
    /// insert a no-op.
    pub fn insert(&mut self, rec: TuningRecord) -> bool {
        let list = self.by_workload.entry(rec.workload.fingerprint()).or_default();
        if let Some(existing) = list.iter().position(|r| r.config == rec.config) {
            if list[existing].cost_ms <= rec.cost_ms {
                return false;
            }
            list.remove(existing);
        }
        let at = list.partition_point(|r| r.canonical_cmp(&rec) == std::cmp::Ordering::Less);
        list.insert(at, rec);
        true
    }

    /// The measurement cache: the stored cost of an exact
    /// workload+config hit, if any.
    pub fn lookup(&self, workload: &Workload, config: &ScheduleConfig) -> Option<f64> {
        self.by_workload
            .get(&workload.fingerprint())?
            .iter()
            .find(|r| r.config == *config)
            .map(|r| r.cost_ms)
    }

    /// The `k` best (lowest-cost) records of a workload.
    pub fn top_k(&self, workload: &Workload, k: usize) -> Vec<&TuningRecord> {
        let Some(list) = self.by_workload.get(&workload.fingerprint()) else {
            return Vec::new();
        };
        list.iter().take(k).collect()
    }

    /// The nearest transfer-compatible workload by feature distance,
    /// excluding the exact fingerprint itself. Ties break toward the
    /// lexicographically smaller fingerprint (determinism).
    pub fn nearest_workload(&self, workload: &Workload) -> Option<(&str, f64)> {
        let own = workload.fingerprint();
        let mut best: Option<(&str, f64)> = None;
        for (fp, list) in &self.by_workload {
            if *fp == own {
                continue;
            }
            // All records of a workload share the workload; use the first.
            let Some(first) = list.first() else { continue };
            let candidate = &first.workload;
            if !workload.transfer_compatible(candidate) {
                continue;
            }
            let d = workload.distance(candidate);
            if best.as_ref().is_none_or(|&(_, bd)| d < bd) {
                best = Some((fp.as_str(), d));
            }
        }
        best
    }

    /// Warm-start configurations for a workload: the `k` best exact
    /// matches when the store knows this workload, otherwise the `k`
    /// best of the nearest transfer-compatible workload. The second
    /// element reports whether cross-workload transfer was used.
    ///
    /// Transferred configurations come from a *different* schedule space
    /// and may not be valid in the target's — callers filter against
    /// their space before seeding a searcher.
    pub fn warm_start_configs(&self, workload: &Workload, k: usize) -> (Vec<ScheduleConfig>, bool) {
        let exact = self.top_k(workload, k);
        if !exact.is_empty() {
            return (exact.into_iter().map(|r| r.config).collect(), false);
        }
        let Some((fp, _)) = self.nearest_workload(workload) else {
            return (Vec::new(), false);
        };
        let configs: Vec<ScheduleConfig> =
            self.records(fp).iter().take(k).map(|r| r.config).collect();
        let transferred = !configs.is_empty();
        (configs, transferred)
    }

    /// Merges every record of `other` into `self` (best-cost-wins
    /// dedupe). Returns how many records actually changed the store.
    pub fn merge(&mut self, other: RecordStore) -> usize {
        let mut inserted = 0;
        for (_, list) in other.by_workload {
            for rec in list {
                if self.insert(rec) {
                    inserted += 1;
                }
            }
        }
        inserted
    }

    /// Keeps only the `keep` best records per workload. Returns how many
    /// records were dropped. (`compact(0)` empties the store.)
    pub fn compact(&mut self, keep: usize) -> usize {
        let mut dropped = 0;
        self.by_workload.retain(|_, list| {
            if list.len() > keep {
                dropped += list.len() - keep;
                list.truncate(keep);
            }
            !list.is_empty()
        });
        dropped
    }

    /// Canonical JSONL serialization of the whole store (deterministic:
    /// workloads in fingerprint order, records in canonical order, every
    /// line in canonical field order). Ends with a trailing newline when
    /// non-empty.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for list in self.by_workload.values() {
            for rec in list {
                out.push_str(&jsonl::encode(rec));
                out.push('\n');
            }
        }
        out
    }

    /// Builds a store from JSONL text, skipping (and reporting) lines
    /// that fail to parse. Blank lines and `#` comment lines are allowed
    /// and not reported.
    pub fn from_jsonl(text: &str) -> (Self, LoadReport) {
        let mut store = Self::new();
        let mut report = LoadReport::default();
        for (i, line) in text.lines().enumerate() {
            let trimmed = line.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            match jsonl::decode(trimmed) {
                Ok(rec) => {
                    if store.insert(rec) {
                        report.loaded += 1;
                    } else {
                        report.superseded += 1;
                    }
                }
                Err(reason) => report.skipped.push((i + 1, reason)),
            }
        }
        (store, report)
    }

    /// Loads a store from a JSONL file (missing file = empty store with
    /// a clean report, so first runs need no special casing).
    pub fn load(path: impl AsRef<Path>) -> std::io::Result<(Self, LoadReport)> {
        let path = path.as_ref();
        if !path.exists() {
            return Ok((Self::new(), LoadReport::default()));
        }
        let text = std::fs::read_to_string(path)?;
        Ok(Self::from_jsonl(&text))
    }

    /// Writes the canonical serialization to a file (atomically: temp
    /// file in the same directory, then rename — a crashed run never
    /// leaves a half-written store). The temp name is pid-qualified so
    /// two *processes* saving into the same directory can never truncate
    /// each other's in-flight write (the last rename wins whole).
    pub fn save(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let path = path.as_ref();
        let tmp = path.with_extension(format!("jsonl.tmp.{}", std::process::id()));
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(self.to_jsonl().as_bytes())?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iolb_core::optimality::TileKind;
    use iolb_core::shapes::ConvShape;
    use iolb_tensor::layout::Layout;

    fn wl(cin: usize) -> Workload {
        Workload::new(
            ConvShape::square(cin, 28, 32, 3, 1, 1),
            TileKind::Direct,
            "Tesla V100",
            96 * 1024,
        )
    }

    fn cfg(x: usize) -> ScheduleConfig {
        ScheduleConfig {
            x,
            y: 7,
            z: 8,
            nxt: 1,
            nyt: 1,
            nzt: 1,
            sb_bytes: 16 * 1024,
            layout: Layout::Chw,
        }
    }

    fn rec(cin: usize, x: usize, cost: f64) -> TuningRecord {
        TuningRecord::new(wl(cin), cfg(x), cost, 7).unwrap()
    }

    #[test]
    fn top_k_is_sorted_ascending_and_bounded() {
        let mut s = RecordStore::new();
        for (x, cost) in [(4, 3.0), (1, 5.0), (14, 1.0), (2, 4.0), (28, 2.0)] {
            assert!(s.insert(rec(64, x, cost)));
        }
        let top = s.top_k(&wl(64), 3);
        let costs: Vec<f64> = top.iter().map(|r| r.cost_ms).collect();
        assert_eq!(costs, vec![1.0, 2.0, 3.0]);
        assert_eq!(s.top_k(&wl(64), 100).len(), 5);
        assert!(s.top_k(&wl(32), 3).is_empty());
    }

    #[test]
    fn insert_dedupes_keeping_best_cost() {
        let mut s = RecordStore::new();
        assert!(s.insert(rec(64, 7, 2.0)));
        assert!(!s.insert(rec(64, 7, 3.0)), "worse duplicate must not replace");
        assert_eq!(s.lookup(&wl(64), &cfg(7)), Some(2.0));
        assert!(s.insert(rec(64, 7, 1.0)), "better duplicate must replace");
        assert_eq!(s.lookup(&wl(64), &cfg(7)), Some(1.0));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn lookup_misses_cross_workload() {
        let mut s = RecordStore::new();
        s.insert(rec(64, 7, 2.0));
        assert_eq!(s.lookup(&wl(64), &cfg(7)), Some(2.0));
        assert_eq!(s.lookup(&wl(32), &cfg(7)), None);
        assert_eq!(s.lookup(&wl(64), &cfg(14)), None);
    }

    #[test]
    fn corrupted_lines_are_skipped_and_reported() {
        let mut s = RecordStore::new();
        s.insert(rec(64, 7, 2.0));
        s.insert(rec(64, 14, 1.0));
        let good = s.to_jsonl();
        let dirty = format!(
            "{}garbage line\n{{\"v\":1,\"truncated\n\n# a comment\n{}",
            good,
            good.lines().next().unwrap()
        );
        let (loaded, report) = RecordStore::from_jsonl(&dirty);
        assert_eq!(report.loaded, 2);
        assert_eq!(report.skipped.len(), 2, "skips: {:?}", report.skipped);
        assert_eq!(report.superseded, 1, "the re-appended good line is a duplicate");
        assert_eq!(loaded.len(), 2);
        // Line numbers are 1-based and point at the bad lines.
        assert_eq!(report.skipped[0].0, 3);
        assert_eq!(report.skipped[1].0, 4);
    }

    #[test]
    fn version_mismatch_skips_but_keeps_good_lines() {
        let mut s = RecordStore::new();
        s.insert(rec(64, 7, 2.0));
        let good = s.to_jsonl();
        let old = good.replace("\"v\":1,", "\"v\":0,");
        let (loaded, report) = RecordStore::from_jsonl(&format!("{old}{good}"));
        assert_eq!(loaded.len(), 1);
        assert_eq!(report.skipped.len(), 1);
        assert!(report.skipped[0].1.contains("version"));
    }

    #[test]
    fn serialization_is_canonical_and_stable() {
        // Insertion order must not matter.
        let mut a = RecordStore::new();
        let mut b = RecordStore::new();
        let recs = [rec(64, 14, 1.5), rec(32, 7, 0.5), rec(64, 7, 0.25), rec(64, 28, 1.5)];
        for r in &recs {
            a.insert(r.clone());
        }
        for r in recs.iter().rev() {
            b.insert(r.clone());
        }
        assert_eq!(a.to_jsonl(), b.to_jsonl());
        // save/load round-trip is the identity on canonical text.
        let (reloaded, report) = RecordStore::from_jsonl(&a.to_jsonl());
        assert!(report.is_clean());
        assert_eq!(reloaded.to_jsonl(), a.to_jsonl());
    }

    #[test]
    fn nearest_workload_prefers_closer_shapes() {
        let mut s = RecordStore::new();
        s.insert(rec(128, 7, 1.0));
        s.insert(rec(512, 7, 1.0));
        let (fp, d) = s.nearest_workload(&wl(64)).unwrap();
        assert_eq!(fp, wl(128).fingerprint());
        assert!(d > 0.0);
        // The exact workload itself is excluded.
        s.insert(rec(64, 7, 1.0));
        let (fp2, _) = s.nearest_workload(&wl(64)).unwrap();
        assert_eq!(fp2, wl(128).fingerprint());
    }

    #[test]
    fn warm_start_prefers_exact_then_transfers() {
        let mut s = RecordStore::new();
        s.insert(rec(128, 14, 1.0));
        s.insert(rec(128, 7, 0.5));
        // No exact match: transfer from cin=128.
        let (configs, transferred) = s.warm_start_configs(&wl(64), 2);
        assert!(transferred);
        assert_eq!(configs, vec![cfg(7), cfg(14)]);
        // Exact match exists: no transfer.
        s.insert(rec(64, 28, 2.0));
        let (configs, transferred) = s.warm_start_configs(&wl(64), 2);
        assert!(!transferred);
        assert_eq!(configs, vec![cfg(28)]);
        // Empty store: nothing.
        let (configs, transferred) = RecordStore::new().warm_start_configs(&wl(64), 2);
        assert!(configs.is_empty() && !transferred);
    }

    #[test]
    fn merge_and_compact() {
        let mut a = RecordStore::new();
        a.insert(rec(64, 7, 2.0));
        a.insert(rec(64, 14, 1.0));
        let mut b = RecordStore::new();
        b.insert(rec(64, 7, 1.5)); // better than a's
        b.insert(rec(32, 7, 3.0)); // new workload
        b.insert(rec(64, 14, 9.0)); // worse than a's
        assert_eq!(a.merge(b), 2);
        assert_eq!(a.len(), 3);
        assert_eq!(a.lookup(&wl(64), &cfg(7)), Some(1.5));
        assert_eq!(a.lookup(&wl(64), &cfg(14)), Some(1.0));
        let dropped = a.compact(1);
        assert_eq!(dropped, 1);
        assert_eq!(a.len(), 2);
        assert_eq!(a.top_k(&wl(64), 9)[0].cost_ms, 1.0, "compaction keeps the best");
    }

    #[test]
    fn entries_iterate_in_fingerprint_order() {
        let mut s = RecordStore::new();
        s.insert(rec(64, 7, 2.0));
        s.insert(rec(32, 7, 3.0));
        s.insert(rec(64, 14, 1.0));
        let fps: Vec<&str> = s.entries().map(|(fp, _)| fp).collect();
        let mut sorted = fps.clone();
        sorted.sort_unstable();
        assert_eq!(fps, sorted);
        let total: usize = s.entries().map(|(_, r)| r.len()).sum();
        assert_eq!(total, s.len());
        // Lists come back canonical: best cost first.
        for (_, list) in s.entries() {
            for w in list.windows(2) {
                assert!(w[0].cost_ms <= w[1].cost_ms);
            }
        }
    }

    #[test]
    fn best_entries_yield_one_best_record_per_workload() {
        let mut s = RecordStore::new();
        s.insert(rec(64, 7, 2.0));
        s.insert(rec(64, 14, 1.0));
        s.insert(rec(32, 7, 3.0));
        let best: Vec<(&str, f64)> = s.best_entries().map(|(fp, r)| (fp, r.cost_ms)).collect();
        assert_eq!(best.len(), s.workload_count());
        assert_eq!(best.iter().find(|(fp, _)| *fp == wl(64).fingerprint()).unwrap().1, 1.0);
        let fps: Vec<&str> = best.iter().map(|(fp, _)| *fp).collect();
        let mut sorted = fps.clone();
        sorted.sort_unstable();
        assert_eq!(fps, sorted, "fingerprint order");
    }

    #[test]
    fn truncate_workload_keeps_the_best_prefix() {
        let mut s = RecordStore::new();
        for (x, cost) in [(4, 3.0), (1, 5.0), (14, 1.0), (2, 4.0)] {
            s.insert(rec(64, x, cost));
        }
        s.insert(rec(32, 7, 9.0));
        let fp = wl(64).fingerprint();
        assert_eq!(s.truncate_workload(&fp, 2), 2);
        assert_eq!(s.records(&fp).len(), 2);
        assert_eq!(s.records(&fp)[0].cost_ms, 1.0, "truncation must keep the best record");
        assert_eq!(s.truncate_workload(&fp, 2), 0, "already within bound");
        assert_eq!(s.truncate_workload("no-such-workload", 1), 0);
        // keep == 0 removes the workload entirely.
        assert_eq!(s.truncate_workload(&fp, 0), 2);
        assert!(s.records(&fp).is_empty());
        assert_eq!(s.workload_count(), 1);
    }

    #[test]
    fn file_round_trip_is_bit_identical() {
        let mut s = RecordStore::new();
        s.insert(rec(64, 7, 1.0 / 3.0));
        s.insert(rec(32, 7, 1e-7));
        let dir = std::env::temp_dir();
        let path = dir.join(format!("iolb-records-test-{}.jsonl", std::process::id()));
        s.save(&path).unwrap();
        let bytes1 = std::fs::read(&path).unwrap();
        let (loaded, report) = RecordStore::load(&path).unwrap();
        assert!(report.is_clean());
        loaded.save(&path).unwrap();
        let bytes2 = std::fs::read(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(bytes1, bytes2, "save/load/save must be bit-identical");
        // Missing file loads as an empty store.
        let (empty, report) = RecordStore::load(dir.join("definitely-missing.jsonl")).unwrap();
        assert!(empty.is_empty() && report.is_clean());
    }
}
