//! Parallel-vs-serial tuning equivalence (ISSUE 1 acceptance gate) and
//! the env-var half of the kernel-path contract, isolated in their own
//! test binary: these are the only tests that mutate the environment
//! (`RAYON_NUM_THREADS`, `IOLB_KERNEL`), and on glibc a `setenv` racing
//! `getenv` from another thread is undefined behavior. A dedicated
//! binary means no sibling test threads are reading the environment
//! while this one writes it (the rayon shim re-reads the variable on
//! every parallel call, but all worker threads are joined before each
//! mutation below). `cargo test` runs the tests of one binary on
//! separate threads, so every test here serializes on [`ENV_LOCK`] —
//! no test reads or writes the environment while another runs.

mod common;

use common::{assert_identical, run_tuning};
use conv_iolb::tensor::kernel::KernelPath;
use std::sync::Mutex;

/// Serializes the env-mutating tests of this binary against each other.
static ENV_LOCK: Mutex<()> = Mutex::new(());

#[test]
fn parallel_run_matches_forced_serial_run() {
    let _env = ENV_LOCK.lock().unwrap();
    std::env::set_var("RAYON_NUM_THREADS", "1");
    let serial = run_tuning(0xA7E);
    std::env::set_var("RAYON_NUM_THREADS", "8");
    let parallel = run_tuning(0xA7E);
    std::env::remove_var("RAYON_NUM_THREADS");
    assert_identical(&serial, &parallel, "serial-vs-parallel");
}

/// `IOLB_KERNEL` dispatch: recognised values select their path,
/// unset/empty/garbage fall forward to the vector default (safe, since
/// the paths are bit-identical — see `determinism.rs` and the tensor
/// crate's property tests for the bits themselves).
#[test]
fn kernel_env_var_selects_the_advertised_path() {
    let _env = ENV_LOCK.lock().unwrap();
    std::env::remove_var(KernelPath::ENV);
    assert_eq!(KernelPath::from_env(), KernelPath::Vector, "unset defaults to vector");
    for (value, want) in [
        ("scalar", KernelPath::Scalar),
        ("SCALAR", KernelPath::Scalar),
        ("vector", KernelPath::Vector),
        ("Vector", KernelPath::Vector),
        ("", KernelPath::Vector),
        ("turbo", KernelPath::Vector),
    ] {
        std::env::set_var(KernelPath::ENV, value);
        assert_eq!(KernelPath::from_env(), want, "IOLB_KERNEL={value:?}");
    }
    std::env::remove_var(KernelPath::ENV);
}
