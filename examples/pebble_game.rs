//! Play the red-blue pebble game on a tiny convolution DAG: exact optimum
//! vs heuristic schedules vs the analytic machinery.
//!
//! ```sh
//! cargo run --release --example pebble_game
//! ```

use conv_iolb::core::shapes::ConvShape;
use conv_iolb::pebble::conv_dag::direct_conv_dag;
use conv_iolb::pebble::exact::min_io;
use conv_iolb::pebble::flow::min_dominator_size;
use conv_iolb::pebble::game::replay_complete;
use conv_iolb::pebble::partition::greedy_partition;
use conv_iolb::pebble::{pebble_topological, Eviction};

fn main() {
    // Smallest interesting convolution: 2x2 kernel on a 2x2 image (one
    // output, 8 inputs) — 20 DAG vertices in total.
    let shape = ConvShape::new(1, 2, 2, 1, 2, 2, 1, 0);
    let dag = direct_conv_dag(&shape);
    println!("DAG of {shape}:");
    println!(
        "  {} vertices ({} inputs, {} internal, {} outputs), {} edges\n",
        dag.len(),
        dag.inputs().len(),
        dag.internals().len(),
        dag.outputs().len(),
        dag.edge_count()
    );

    println!("{:>4} {:>8} {:>10} {:>8}", "S", "exact Q", "belady Q", "lru Q");
    for s in [5usize, 6, 8, 12] {
        let exact = min_io(&dag, s, 1 << 24).map_or("-".into(), |q| q.to_string());
        let belady = pebble_topological(&dag, s, Eviction::Belady);
        let lru = pebble_topological(&dag, s, Eviction::Lru);
        // Heuristic traces replay legally and completely by construction;
        // double-check through the game engine.
        let replayed = replay_complete(&dag, s, &belady.trace).expect("legal trace");
        assert_eq!(replayed, belady.io);
        println!("{s:>4} {exact:>8} {belady:>10} {lru:>8}", belady = belady.io, lru = lru.io);
    }

    // S-partition machinery: greedy class counts upper-bound P(S).
    println!("\nGreedy S-partition class counts (upper bounds on P(S)):");
    for s in [2usize, 4, 8, 16] {
        let p = greedy_partition(&dag, s);
        println!("  S = {s:>2}: h <= {}", p.len());
    }

    // Dominators via max-flow: how many vertices must any S-partition
    // class's dominator contain for the full output set?
    let outputs = dag.outputs();
    println!(
        "\nmin dominator of the output set: {} vertices (Menger/max-flow)",
        min_dominator_size(&dag, &outputs)
    );
}
