//! GPU device specifications.
//!
//! The paper evaluates on NVIDIA 1080Ti (Pascal), Titan X (Maxwell),
//! V100 (Volta) and AMD gfx906 (Vega 20). We model each as a two-level
//! memory hierarchy — unlimited global memory behind a DRAM pipe, and
//! per-SM shared memory of size `S` — plus enough execution structure
//! (SM count, clocks, FMA lanes, occupancy limits) for roofline timing.
//! The numbers are the public datasheet values.

/// A GPU model for the simulator.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSpec {
    /// Marketing name.
    pub name: &'static str,
    /// Streaming multiprocessors (NVIDIA) / compute units (AMD).
    pub num_sms: u32,
    /// Shared memory (LDS) per SM, in bytes — the fast memory `S_sm` of
    /// Table 1.
    pub smem_per_sm: u32,
    /// Maximum shared memory a single thread block may allocate, bytes.
    pub max_smem_per_block: u32,
    /// Maximum resident threads per SM.
    pub max_threads_per_sm: u32,
    /// Maximum threads per block.
    pub max_threads_per_block: u32,
    /// Maximum resident blocks per SM.
    pub max_blocks_per_sm: u32,
    /// Core clock, GHz.
    pub clock_ghz: f64,
    /// FP32 FMA lanes per SM (each does 2 flops/cycle).
    pub fma_lanes_per_sm: u32,
    /// DRAM bandwidth, GB/s.
    pub dram_gbps: f64,
    /// Global-memory transaction size, bytes (coalescing granule).
    pub transaction_bytes: u32,
    /// Fixed kernel-launch overhead, microseconds.
    pub launch_overhead_us: f64,
    /// Fraction of peak FLOPs a well-tuned kernel sustains (instruction
    /// mix, scheduling stalls). Applied uniformly, so it cancels in the
    /// relative comparisons the experiments report.
    pub compute_efficiency: f64,
}

impl DeviceSpec {
    /// Peak FP32 throughput, GFLOP/s.
    pub fn peak_gflops(&self) -> f64 {
        self.num_sms as f64 * self.fma_lanes_per_sm as f64 * 2.0 * self.clock_ghz
    }

    /// Sustained FP32 throughput after the efficiency derating, GFLOP/s.
    pub fn sustained_gflops(&self) -> f64 {
        self.peak_gflops() * self.compute_efficiency
    }

    /// Shared memory per SM in `f32` elements — the `S` the lower-bound
    /// formulas consume.
    pub fn smem_elems(&self) -> f64 {
        self.smem_per_sm as f64 / 4.0
    }

    /// Machine balance: flops per byte at the roofline ridge.
    pub fn ridge_flops_per_byte(&self) -> f64 {
        self.sustained_gflops() / self.dram_gbps
    }

    /// NVIDIA GTX 1080 Ti (Pascal GP102).
    pub fn gtx1080ti() -> Self {
        DeviceSpec {
            name: "GTX 1080 Ti",
            num_sms: 28,
            smem_per_sm: 96 * 1024,
            max_smem_per_block: 48 * 1024,
            max_threads_per_sm: 2048,
            max_threads_per_block: 1024,
            max_blocks_per_sm: 32,
            clock_ghz: 1.582,
            fma_lanes_per_sm: 128,
            dram_gbps: 484.0,
            transaction_bytes: 32,
            launch_overhead_us: 5.0,
            compute_efficiency: 0.75,
        }
    }

    /// NVIDIA Tesla V100 (Volta GV100).
    pub fn v100() -> Self {
        DeviceSpec {
            name: "Tesla V100",
            num_sms: 80,
            smem_per_sm: 96 * 1024,
            max_smem_per_block: 96 * 1024,
            max_threads_per_sm: 2048,
            max_threads_per_block: 1024,
            max_blocks_per_sm: 32,
            clock_ghz: 1.53,
            fma_lanes_per_sm: 64,
            dram_gbps: 900.0,
            transaction_bytes: 32,
            launch_overhead_us: 4.0,
            compute_efficiency: 0.8,
        }
    }

    /// NVIDIA GTX Titan X (Maxwell GM200).
    pub fn titan_x() -> Self {
        DeviceSpec {
            name: "GTX Titan X",
            num_sms: 24,
            smem_per_sm: 96 * 1024,
            max_smem_per_block: 48 * 1024,
            max_threads_per_sm: 2048,
            max_threads_per_block: 1024,
            max_blocks_per_sm: 32,
            clock_ghz: 1.075,
            fma_lanes_per_sm: 128,
            dram_gbps: 336.6,
            transaction_bytes: 32,
            launch_overhead_us: 5.0,
            compute_efficiency: 0.72,
        }
    }

    /// AMD gfx906 (Vega 20, the paper's "Pre-Wukong GPU"; MI50-class).
    pub fn gfx906() -> Self {
        DeviceSpec {
            name: "AMD gfx906",
            num_sms: 60,
            smem_per_sm: 64 * 1024,
            max_smem_per_block: 64 * 1024,
            max_threads_per_sm: 2560,
            max_threads_per_block: 1024,
            max_blocks_per_sm: 40,
            clock_ghz: 1.725,
            fma_lanes_per_sm: 64,
            dram_gbps: 1024.0,
            transaction_bytes: 64,
            launch_overhead_us: 6.0,
            compute_efficiency: 0.7,
        }
    }

    /// All presets used by the evaluation.
    pub fn all() -> Vec<DeviceSpec> {
        vec![Self::gtx1080ti(), Self::v100(), Self::titan_x(), Self::gfx906()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_flops_match_datasheets() {
        // 1080Ti: 28 * 128 * 2 * 1.582 ~ 11.3 TFLOPs.
        let p = DeviceSpec::gtx1080ti().peak_gflops();
        assert!((11000.0..11700.0).contains(&p), "1080Ti peak {p}");
        // V100: 80 * 64 * 2 * 1.53 ~ 15.7 TFLOPs.
        let v = DeviceSpec::v100().peak_gflops();
        assert!((15000.0..16000.0).contains(&v), "V100 peak {v}");
        // Titan X: ~6.6 TFLOPs.
        let t = DeviceSpec::titan_x().peak_gflops();
        assert!((6000.0..7000.0).contains(&t), "TitanX peak {t}");
        // gfx906: 60 * 64 * 2 * 1.725 ~ 13.2 TFLOPs.
        let g = DeviceSpec::gfx906().peak_gflops();
        assert!((12500.0..14000.0).contains(&g), "gfx906 peak {g}");
    }

    #[test]
    fn smem_elems_is_bytes_over_4() {
        let d = DeviceSpec::gtx1080ti();
        assert_eq!(d.smem_elems(), 96.0 * 1024.0 / 4.0);
    }

    #[test]
    fn ridge_point_reasonable() {
        // Modern GPUs sit around 10-25 flops/byte.
        for d in DeviceSpec::all() {
            let ridge = d.ridge_flops_per_byte();
            assert!((5.0..30.0).contains(&ridge), "{}: ridge {ridge}", d.name);
        }
    }

    #[test]
    fn sustained_below_peak() {
        for d in DeviceSpec::all() {
            assert!(d.sustained_gflops() < d.peak_gflops());
        }
    }
}
