//! Blocked, multi-threaded GEMM: `C = A * B` for row-major `f32` matrices.
//!
//! This is the compute substrate behind the im2col convolution path (the
//! cuDNN-style baseline) and the Winograd batched elementwise stage. It
//! uses classic cache blocking (MC x KC x NC macro-tiles) with two
//! register micro-kernels selected by [`KernelPath`]:
//!
//! * **scalar** — the reference `4x8` element-loop kernel;
//! * **vector** — a 6-row micro-tile with fixed-width `[f32; LANES]`
//!   lane accumulators and unrolled K-steps, written so the
//!   autovectorizer must keep each output element in a SIMD lane. On
//!   `x86_64` the same body is dispatched (runtime feature detection)
//!   to a `6x32` clone compiled with 512-bit vectors when AVX-512F is
//!   present, else a `6x16` AVX2 clone, else the `6x16` baseline
//!   build; no FMA — fused multiply-add would change rounding.
//!
//! Both kernels accumulate every `C[i][j]` as a serial left-fold over
//! `k` in ascending order, one accumulator per element, so the paths
//! are **bit-identical** — the micro-tile shape only changes *which*
//! independent folds run together, never the order of terms within one.
//! The M dimension is split across rayon workers — each worker owns a
//! disjoint row band of `C`, so no synchronisation is needed and the
//! result is bit-identical to the serial computation regardless of
//! thread count.

use crate::kernel::KernelPath;
use rayon::prelude::*;

/// Row-major matrix view: `rows x cols`, leading dimension = `cols`.
#[derive(Debug, Clone, Copy)]
pub struct MatRef<'a> {
    pub data: &'a [f32],
    pub rows: usize,
    pub cols: usize,
}

impl<'a> MatRef<'a> {
    pub fn new(data: &'a [f32], rows: usize, cols: usize) -> Self {
        assert_eq!(data.len(), rows * cols, "matrix buffer size mismatch");
        Self { data, rows, cols }
    }

    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }
}

// Macro-tile sizes tuned for ~32 KiB L1 / 1 MiB L2; correctness does not
// depend on them (tests sweep odd sizes).
const MC: usize = 64;
const KC: usize = 512;
const NC: usize = 512;
// Scalar register micro-tile.
const MR: usize = 4;
const NR: usize = 8;
// Vector register micro-tile: 6x16 = 12 lane-chunk accumulators of
// [f32; LANES], which together with two B-row chunks and one broadcast
// fits the 16 architectural 256-bit registers of AVX2.
const MR_V: usize = 6;
const NR_V: usize = 16;
/// Elements per vector-kernel accumulator chunk (one 256-bit register
/// of `f32`, or two 128-bit ones on SSE-only targets).
pub const LANES: usize = 8;
// AVX-512 tier: same 6-row tile, doubled lane width (6x32 = twelve
// 512-bit accumulators; zmm has 32 architectural registers, so the two
// B chunks and the broadcast fit with room to spare).
const NR_V512: usize = 32;
const LANES512: usize = 16;
// K-step unroll depth of the vector micro-kernel.
const KU: usize = 2;

// Every micro-panel width must divide NC: the shared packed-B slots of
// the parallel path are sized KC * NC, which covers a padded partial
// panel only when NC is a multiple of the panel width.
const _: () =
    assert!(NC.is_multiple_of(NR) && NC.is_multiple_of(NR_V) && NC.is_multiple_of(NR_V512));

/// A register micro-kernel: accumulates an `mr x nr` tile of `C` from
/// packed A/B panels over `kc` terms. Passed as a generic (not a fn
/// pointer) so each driver monomorphizes with its kernel inlined.
trait MicroKernel: Fn(&[f32], &[f32], usize, &mut [f32], usize, usize, usize, usize) + Sync {}
impl<F: Fn(&[f32], &[f32], usize, &mut [f32], usize, usize, usize, usize) + Sync> MicroKernel
    for F
{
}

/// Single-threaded blocked GEMM: `c += a * b`, on the path selected by
/// `IOLB_KERNEL` (see [`KernelPath::from_env`]).
///
/// `c` must be `a.rows * b.cols`, row-major.
pub fn gemm_acc(a: MatRef<'_>, b: MatRef<'_>, c: &mut [f32]) {
    gemm_acc_with_path(a, b, c, KernelPath::from_env());
}

/// [`gemm_acc`] with an explicit kernel path (tests diff the two).
pub fn gemm_acc_with_path(a: MatRef<'_>, b: MatRef<'_>, c: &mut [f32], path: KernelPath) {
    match path {
        KernelPath::Scalar => gemm_acc_driver::<MR, NR, _>(a, b, c, &micro_kernel),
        KernelPath::Vector => {
            #[cfg(target_arch = "x86_64")]
            {
                if std::arch::is_x86_feature_detected!("avx512f") {
                    return gemm_acc_driver::<MR_V, NR_V512, _>(a, b, c, &vector_micro_avx512());
                }
                if std::arch::is_x86_feature_detected!("avx2") {
                    return gemm_acc_driver::<MR_V, NR_V, _>(a, b, c, &vector_micro_avx2());
                }
            }
            gemm_acc_driver::<MR_V, NR_V, _>(a, b, c, &micro_kernel_vector_portable)
        }
    }
}

fn gemm_acc_driver<const MRP: usize, const NRP: usize, F: MicroKernel>(
    a: MatRef<'_>,
    b: MatRef<'_>,
    c: &mut [f32],
    micro: &F,
) {
    assert_eq!(a.cols, b.rows, "inner dimension mismatch");
    assert_eq!(c.len(), a.rows * b.cols, "output buffer size mismatch");
    let (m, k, n) = (a.rows, a.cols, b.cols);

    let mut a_pack = vec![0.0f32; MC.div_ceil(MRP) * MRP * KC];
    let mut b_pack = vec![0.0f32; KC * NC];

    let mut jc = 0;
    while jc < n {
        let nc = NC.min(n - jc);
        let mut pc = 0;
        while pc < k {
            let kc = KC.min(k - pc);
            pack_b::<NRP>(b, pc, jc, kc, nc, &mut b_pack);
            let mut ic = 0;
            while ic < m {
                let mc = MC.min(m - ic);
                pack_a::<MRP>(a, ic, pc, mc, kc, &mut a_pack);
                macro_kernel::<MRP, NRP, _>(&a_pack, &b_pack, c, ic, jc, mc, nc, kc, n, micro);
                ic += MC;
            }
            pc += KC;
        }
        jc += NC;
    }
}

/// Packs an `mc x kc` block of `a` into row-panels of height `MRP`.
fn pack_a<const MRP: usize>(
    a: MatRef<'_>,
    ic: usize,
    pc: usize,
    mc: usize,
    kc: usize,
    out: &mut [f32],
) {
    let mut dst = 0;
    let mut i = 0;
    while i < mc {
        let mr = MRP.min(mc - i);
        for p in 0..kc {
            let col = &mut out[dst..dst + MRP];
            for (r, slot) in col[..mr].iter_mut().enumerate() {
                *slot = a.at(ic + i + r, pc + p);
            }
            col[mr..].fill(0.0);
            dst += MRP;
        }
        i += MRP;
    }
}

/// Packs a `kc x nc` block of `b` into column-panels of width `NRP`.
fn pack_b<const NRP: usize>(
    b: MatRef<'_>,
    pc: usize,
    jc: usize,
    kc: usize,
    nc: usize,
    out: &mut [f32],
) {
    let mut dst = 0;
    let mut j = 0;
    while j < nc {
        let nr = NRP.min(nc - j);
        for p in 0..kc {
            let src_at = (pc + p) * b.cols + jc + j;
            let row = &mut out[dst..dst + NRP];
            row[..nr].copy_from_slice(&b.data[src_at..src_at + nr]);
            row[nr..].fill(0.0);
            dst += NRP;
        }
        j += NRP;
    }
}

/// Runs the packed micro-kernels over one macro-tile.
#[allow(clippy::too_many_arguments)]
fn macro_kernel<const MRP: usize, const NRP: usize, F: MicroKernel>(
    a_pack: &[f32],
    b_pack: &[f32],
    c: &mut [f32],
    ic: usize,
    jc: usize,
    mc: usize,
    nc: usize,
    kc: usize,
    ldc: usize,
    micro: &F,
) {
    let mut j = 0;
    while j < nc {
        let nr = NRP.min(nc - j);
        let b_panel = &b_pack[(j / NRP) * kc * NRP..][..kc * NRP];
        let mut i = 0;
        while i < mc {
            let mr = MRP.min(mc - i);
            let a_panel = &a_pack[(i / MRP) * kc * MRP..][..kc * MRP];
            micro(a_panel, b_panel, kc, c, (ic + i) * ldc + jc + j, ldc, mr, nr);
            i += MRP;
        }
        j += NRP;
    }
}

/// `MR x NR` register-blocked inner product over `kc` terms; accumulates
/// into `c[c_off..]`. Edge tiles (`mr < MR` or `nr < NR`) write partially.
#[allow(clippy::too_many_arguments)]
#[inline]
fn micro_kernel(
    a_panel: &[f32],
    b_panel: &[f32],
    kc: usize,
    c: &mut [f32],
    c_off: usize,
    ldc: usize,
    mr: usize,
    nr: usize,
) {
    let mut acc = [[0.0f32; NR]; MR];
    for p in 0..kc {
        let a_row = &a_panel[p * MR..p * MR + MR];
        let b_row = &b_panel[p * NR..p * NR + NR];
        for (i, &av) in a_row.iter().enumerate() {
            for (j, &bv) in b_row.iter().enumerate() {
                acc[i][j] += av * bv;
            }
        }
    }
    for i in 0..mr {
        for j in 0..nr {
            c[c_off + i * ldc + j] += acc[i][j];
        }
    }
}

/// Statement-level unroll over the vector micro-tile's row index: the
/// body is stamped out once per row with `$i` bound to a literal, so
/// every accumulator access below is a compile-time-constant index.
/// That is what lets SROA promote the whole `6x16` accumulator tile
/// into registers — one runtime-indexed access anywhere and the tile
/// falls back to the stack, costing a load+store per lane op (measured
/// ~2.5x slower).
macro_rules! unroll_rows {
    ($i:ident => $body:block) => {{
        {
            let $i: usize = 0;
            $body
        }
        {
            let $i: usize = 1;
            $body
        }
        {
            let $i: usize = 2;
            $body
        }
        {
            let $i: usize = 3;
            $body
        }
        {
            let $i: usize = 4;
            $body
        }
        {
            let $i: usize = 5;
            $body
        }
    }};
}
// unroll_rows! covers exactly 0..MR_V; vector_step splits B into two chunks.
const _: () = assert!(MR_V == 6 && NR_V == 2 * LANES && NR_V512 == 2 * LANES512);

/// One K-step of the vector micro-kernel: rank-1 update of the full
/// `MR_V x 2L` accumulator tile from fixed-size panel rows. The
/// `[f32; L]` chunks are the vectorization contract — every lane is an
/// independent output element's fold, so lane width never reorders
/// terms. `L` is the ISA tier's register width in `f32`s (8 for
/// AVX2/portable, 16 for AVX-512); `NRV == 2 * L` always.
#[inline(always)]
fn vector_step<const L: usize, const NRV: usize>(
    acc: &mut [[[f32; L]; 2]; MR_V],
    a_row: &[f32; MR_V],
    b_row: &[f32; NRV],
) {
    const { assert!(NRV == 2 * L) }
    let b0: [f32; L] = b_row[..L].try_into().unwrap();
    let b1: [f32; L] = b_row[L..].try_into().unwrap();
    unroll_rows!(i => {
        let av = a_row[i];
        for l in 0..L {
            acc[i][0][l] += av * b0[l];
        }
        for l in 0..L {
            acc[i][1][l] += av * b1[l];
        }
    });
}

/// `MR_V x NRV` vector micro-kernel body: same per-element fold as
/// [`micro_kernel`] (ascending `p`, one accumulator each), K-unrolled by
/// [`KU`]. Generic over the lane width so each ISA tier below stamps out
/// its own copy; `#[inline(always)]` so each wrapper compiles it with
/// its own target features.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn micro_kernel_vector_body<const L: usize, const NRV: usize>(
    a_panel: &[f32],
    b_panel: &[f32],
    kc: usize,
    c: &mut [f32],
    c_off: usize,
    ldc: usize,
    mr: usize,
    nr: usize,
) {
    let mut acc = [[[0.0f32; L]; 2]; MR_V];
    let row_a = |p: usize| -> &[f32; MR_V] { a_panel[p * MR_V..].first_chunk().unwrap() };
    let row_b = |p: usize| -> &[f32; NRV] { b_panel[p * NRV..].first_chunk().unwrap() };
    let mut p = 0;
    while p + KU <= kc {
        vector_step::<L, NRV>(&mut acc, row_a(p), row_b(p));
        vector_step::<L, NRV>(&mut acc, row_a(p + 1), row_b(p + 1));
        p += KU;
    }
    while p < kc {
        vector_step::<L, NRV>(&mut acc, row_a(p), row_b(p));
        p += 1;
    }
    // Write-back. Every `acc` index below is a compile-time constant:
    // one runtime-indexed read would make the tile addressable and force
    // the register allocator to keep all accumulators on the stack
    // (measured ~2x slower). Partial tiles go through a spill copy.
    if mr == MR_V && nr == NRV {
        unroll_rows!(i => {
            let c_row = &mut c[c_off + i * ldc..][..NRV];
            for l in 0..L {
                c_row[l] += acc[i][0][l];
            }
            for l in 0..L {
                c_row[L + l] += acc[i][1][l];
            }
        });
    } else {
        let mut spill = [[0.0f32; NRV]; MR_V];
        unroll_rows!(i => {
            for l in 0..L {
                spill[i][l] = acc[i][0][l];
            }
            for l in 0..L {
                spill[i][L + l] = acc[i][1][l];
            }
        });
        for i in 0..mr {
            for j in 0..nr {
                c[c_off + i * ldc + j] += spill[i][j];
            }
        }
    }
}

/// Portable vector kernel: the body under the build's baseline features.
#[allow(clippy::too_many_arguments)]
fn micro_kernel_vector_portable(
    a_panel: &[f32],
    b_panel: &[f32],
    kc: usize,
    c: &mut [f32],
    c_off: usize,
    ldc: usize,
    mr: usize,
    nr: usize,
) {
    micro_kernel_vector_body::<LANES, NR_V>(a_panel, b_panel, kc, c, c_off, ldc, mr, nr);
}

/// The same body autovectorized with 256-bit registers. AVX2 widens the
/// lanes but every lane op is still an exactly-rounded IEEE mul/add, so
/// results stay bit-identical; FMA is deliberately *not* enabled.
#[cfg(target_arch = "x86_64")]
#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "avx2")]
unsafe fn micro_kernel_vector_avx2(
    a_panel: &[f32],
    b_panel: &[f32],
    kc: usize,
    c: &mut [f32],
    c_off: usize,
    ldc: usize,
    mr: usize,
    nr: usize,
) {
    micro_kernel_vector_body::<LANES, NR_V>(a_panel, b_panel, kc, c, c_off, ldc, mr, nr);
}

/// The widest tier: 512-bit registers, a `6 x 32` micro-tile (twelve
/// zmm accumulators), still no FMA. Wider lanes only map more
/// *independent* element folds per instruction — each `C[i][j]` keeps
/// the exact same serial fold, so this tier too is bit-identical to
/// scalar.
#[cfg(target_arch = "x86_64")]
#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "avx512f")]
unsafe fn micro_kernel_vector_avx512(
    a_panel: &[f32],
    b_panel: &[f32],
    kc: usize,
    c: &mut [f32],
    c_off: usize,
    ldc: usize,
    mr: usize,
    nr: usize,
) {
    micro_kernel_vector_body::<LANES512, NR_V512>(a_panel, b_panel, kc, c, c_off, ldc, mr, nr);
}

/// Safe shim over the AVX2 kernel. Callers must have checked
/// `is_x86_feature_detected!("avx2")` — both dispatch sites do, right
/// before taking this.
#[cfg(target_arch = "x86_64")]
fn vector_micro_avx2() -> impl MicroKernel {
    |a: &[f32], b: &[f32], kc: usize, c: &mut [f32], off: usize, ldc: usize, mr: usize, nr: usize|
        // SAFETY: guarded by the runtime AVX2 detection at the dispatch site.
        unsafe { micro_kernel_vector_avx2(a, b, kc, c, off, ldc, mr, nr) }
}

/// Safe shim over the AVX-512 kernel; same detection contract as above.
#[cfg(target_arch = "x86_64")]
fn vector_micro_avx512() -> impl MicroKernel {
    |a: &[f32], b: &[f32], kc: usize, c: &mut [f32], off: usize, ldc: usize, mr: usize, nr: usize|
        // SAFETY: guarded by the runtime AVX-512F detection at the dispatch site.
        unsafe { micro_kernel_vector_avx512(a, b, kc, c, off, ldc, mr, nr) }
}

/// Multi-threaded GEMM: `c = a * b` (output overwritten), M split across
/// `threads` workers owning disjoint row bands of `C`, on the path
/// selected by `IOLB_KERNEL` (see [`KernelPath::from_env`]).
///
/// `B` is packed **once**, up front, into per-`(jc, pc)` macro-tile
/// panels that every band worker reads; only the (band-private) `A`
/// panels are packed inside the parallel region. The old scheme ran
/// [`gemm_acc`] per band, so each of `t` workers re-packed the whole of
/// `B` — `(t-1) * k * n` redundant pack traffic that grew with the
/// thread count. Each worker still owns a disjoint row band of `C` and
/// runs the same `jc -> pc -> ic` loop nest as the serial path, so the
/// result is bit-identical to `gemm(.., 1)` regardless of thread count.
pub fn gemm(a: MatRef<'_>, b: MatRef<'_>, c: &mut [f32], threads: usize) {
    gemm_with_path(a, b, c, threads, KernelPath::from_env());
}

/// [`gemm`] with an explicit kernel path (tests diff the two).
pub fn gemm_with_path(
    a: MatRef<'_>,
    b: MatRef<'_>,
    c: &mut [f32],
    threads: usize,
    path: KernelPath,
) {
    assert_eq!(a.cols, b.rows, "inner dimension mismatch");
    assert_eq!(c.len(), a.rows * b.cols, "output buffer size mismatch");
    c.fill(0.0);
    let threads = threads.max(1).min(a.rows.max(1));
    if threads == 1 || a.rows * b.cols < 64 * 64 {
        gemm_acc_with_path(a, b, c, path);
        return;
    }
    match path {
        KernelPath::Scalar => gemm_par_driver::<MR, NR, _>(a, b, c, threads, &micro_kernel),
        KernelPath::Vector => {
            #[cfg(target_arch = "x86_64")]
            {
                if std::arch::is_x86_feature_detected!("avx512f") {
                    return gemm_par_driver::<MR_V, NR_V512, _>(
                        a,
                        b,
                        c,
                        threads,
                        &vector_micro_avx512(),
                    );
                }
                if std::arch::is_x86_feature_detected!("avx2") {
                    return gemm_par_driver::<MR_V, NR_V, _>(
                        a,
                        b,
                        c,
                        threads,
                        &vector_micro_avx2(),
                    );
                }
            }
            gemm_par_driver::<MR_V, NR_V, _>(a, b, c, threads, &micro_kernel_vector_portable)
        }
    }
}

fn gemm_par_driver<const MRP: usize, const NRP: usize, F: MicroKernel>(
    a: MatRef<'_>,
    b: MatRef<'_>,
    c: &mut [f32],
    threads: usize,
    micro: &F,
) {
    let (m, k, n) = (a.rows, a.cols, b.cols);

    // Pack all of B serially (O(k*n) work against the O(m*k*n) compute
    // split below; the serial fraction vanishes as m grows). Panel
    // (jb, pb) lives at slot `jb * k_blocks + pb`, laid out exactly as
    // `pack_b` emits it.
    let k_blocks = k.div_ceil(KC);
    let n_blocks = n.div_ceil(NC);
    let slot = KC * NC;
    let mut b_pack = vec![0.0f32; k_blocks * n_blocks * slot];
    for jb in 0..n_blocks {
        let jc = jb * NC;
        let nc = NC.min(n - jc);
        for pb in 0..k_blocks {
            let pc = pb * KC;
            let kc = KC.min(k - pc);
            pack_b::<NRP>(b, pc, jc, kc, nc, &mut b_pack[(jb * k_blocks + pb) * slot..][..slot]);
        }
    }
    let b_pack = &b_pack;

    let band = m.div_ceil(threads);
    c.par_chunks_mut(band * n).enumerate().for_each(|(t, band_c)| {
        let row = t * band;
        let rows_here = band.min(m - row);
        let mut a_pack = vec![0.0f32; MC.div_ceil(MRP) * MRP * KC];
        for jb in 0..n_blocks {
            let jc = jb * NC;
            let nc = NC.min(n - jc);
            for pb in 0..k_blocks {
                let pc = pb * KC;
                let kc = KC.min(k - pc);
                let b_panel = &b_pack[(jb * k_blocks + pb) * slot..][..slot];
                let mut ic = 0;
                while ic < rows_here {
                    let mc = MC.min(rows_here - ic);
                    pack_a::<MRP>(a, row + ic, pc, mc, kc, &mut a_pack);
                    macro_kernel::<MRP, NRP, _>(
                        &a_pack, b_panel, band_c, ic, jc, mc, nc, kc, n, micro,
                    );
                    ic += MC;
                }
            }
        }
    });
}

/// Naive triple loop for testing.
pub fn gemm_naive(a: MatRef<'_>, b: MatRef<'_>, c: &mut [f32]) {
    assert_eq!(a.cols, b.rows);
    assert_eq!(c.len(), a.rows * b.cols);
    for i in 0..a.rows {
        for j in 0..b.cols {
            let mut acc = 0.0f32;
            for p in 0..a.cols {
                acc += a.at(i, p) * b.at(p, j);
            }
            c[i * b.cols + j] = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_mat(rng: &mut StdRng, rows: usize, cols: usize) -> Vec<f32> {
        (0..rows * cols).map(|_| rng.gen_range(-1.0..1.0)).collect()
    }

    fn check_against_naive(m: usize, k: usize, n: usize, threads: usize, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = random_mat(&mut rng, m, k);
        let b = random_mat(&mut rng, k, n);
        let ar = MatRef::new(&a, m, k);
        let br = MatRef::new(&b, k, n);
        let mut want = vec![0.0; m * n];
        gemm_naive(ar, br, &mut want);
        for path in [KernelPath::Scalar, KernelPath::Vector] {
            let mut got = vec![0.0; m * n];
            gemm_with_path(ar, br, &mut got, threads, path);
            for (i, (g, w)) in got.iter().zip(&want).enumerate() {
                assert!(
                    (g - w).abs() <= 1e-3 + 1e-4 * w.abs(),
                    "({m}x{k}x{n}, t={threads}, {}) mismatch at {i}: {g} vs {w}",
                    path.label()
                );
            }
        }
    }

    #[test]
    fn small_exact_sizes() {
        check_against_naive(4, 8, 8, 1, 1);
        check_against_naive(8, 8, 16, 1, 2);
    }

    #[test]
    fn odd_edge_sizes() {
        // Exercise every partial-tile path.
        check_against_naive(1, 1, 1, 1, 3);
        check_against_naive(5, 7, 9, 1, 4);
        check_against_naive(67, 259, 131, 1, 5);
        check_against_naive(3, 300, 11, 1, 6);
    }

    #[test]
    fn multithreaded_matches_naive() {
        check_against_naive(97, 64, 83, 4, 7);
        check_against_naive(256, 128, 64, 8, 8);
    }

    #[test]
    fn multithreaded_bit_identical_to_single_threaded() {
        // The shared-packed-B parallel path must not change a single bit
        // relative to one worker: bands run the same jc -> pc -> ic nest.
        for (m, k, n) in [(97, 259, 131), (MC + 3, KC + 5, NC + 7), (40, 40, 40)] {
            let mut rng = StdRng::seed_from_u64(11);
            let a = random_mat(&mut rng, m, k);
            let b = random_mat(&mut rng, k, n);
            let ar = MatRef::new(&a, m, k);
            let br = MatRef::new(&b, k, n);
            for path in [KernelPath::Scalar, KernelPath::Vector] {
                let mut serial = vec![0.0; m * n];
                gemm_with_path(ar, br, &mut serial, 1, path);
                for threads in [2, 3, 8] {
                    let mut parallel = vec![0.0; m * n];
                    gemm_with_path(ar, br, &mut parallel, threads, path);
                    for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
                        assert_eq!(
                            s.to_bits(),
                            p.to_bits(),
                            "({m}x{k}x{n}, t={threads}, {}) bit mismatch at {i}: {s} vs {p}",
                            path.label()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn vector_path_bit_identical_to_scalar() {
        // The kernel-path contract at its sharpest: micro-tile shape and
        // lane width may differ, the per-element fold may not. The full
        // shape sweep lives in tests/proptest_kernels.rs.
        for (m, k, n) in [(1, 1, 1), (5, 7, 9), (67, 259, 131), (MC + 3, KC + 5, NC + 7)] {
            let mut rng = StdRng::seed_from_u64(13);
            let a = random_mat(&mut rng, m, k);
            let b = random_mat(&mut rng, k, n);
            let ar = MatRef::new(&a, m, k);
            let br = MatRef::new(&b, k, n);
            let mut scalar = vec![0.0; m * n];
            gemm_with_path(ar, br, &mut scalar, 1, KernelPath::Scalar);
            let mut vector = vec![0.0; m * n];
            gemm_with_path(ar, br, &mut vector, 1, KernelPath::Vector);
            for (i, (s, v)) in scalar.iter().zip(&vector).enumerate() {
                assert_eq!(
                    s.to_bits(),
                    v.to_bits(),
                    "({m}x{k}x{n}) scalar/vector bit mismatch at {i}: {s} vs {v}"
                );
            }
        }
    }

    #[test]
    fn spanning_multiple_macro_tiles() {
        check_against_naive(MC + 3, KC + 5, NC + 7, 2, 9);
    }

    #[test]
    fn gemm_acc_accumulates() {
        let a = vec![1.0, 2.0, 3.0, 4.0];
        let b = vec![1.0, 0.0, 0.0, 1.0];
        let ar = MatRef::new(&a, 2, 2);
        let br = MatRef::new(&b, 2, 2);
        for path in [KernelPath::Scalar, KernelPath::Vector] {
            let mut c = vec![10.0; 4];
            gemm_acc_with_path(ar, br, &mut c, path);
            assert_eq!(c, vec![11.0, 12.0, 13.0, 14.0], "{}", path.label());
        }
    }

    #[test]
    fn identity_multiplication() {
        let n = 33;
        let mut rng = StdRng::seed_from_u64(10);
        let a = random_mat(&mut rng, n, n);
        let mut eye = vec![0.0; n * n];
        for i in 0..n {
            eye[i * n + i] = 1.0;
        }
        let mut c = vec![0.0; n * n];
        gemm(MatRef::new(&a, n, n), MatRef::new(&eye, n, n), &mut c, 3);
        for (g, w) in c.iter().zip(&a) {
            assert!((g - w).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn dimension_mismatch_panics() {
        let a = vec![0.0; 6];
        let b = vec![0.0; 6];
        let mut c = vec![0.0; 4];
        gemm(MatRef::new(&a, 2, 3), MatRef::new(&b, 2, 3), &mut c, 1);
    }
}
