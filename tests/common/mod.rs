//! Shared helpers for the determinism integration tests.

use conv_iolb::autotune::engine::{tune, TuneParams, TuneResult};
use conv_iolb::autotune::search::walk::ParallelRandomWalk;
use conv_iolb::autotune::{ConfigSpace, GbtCostModel, Measurer};
use conv_iolb::core::optimality::TileKind;
use conv_iolb::core::shapes::ConvShape;
use conv_iolb::gpusim::DeviceSpec;

pub fn run_tuning(seed: u64) -> TuneResult {
    let shape = ConvShape::square(64, 28, 32, 3, 1, 1);
    let device = DeviceSpec::v100();
    let space = ConfigSpace::new(shape, TileKind::Direct, device.smem_per_sm, true);
    let measurer = Measurer::new(device, shape, TileKind::Direct);
    let mut model = GbtCostModel::default();
    let mut searcher = ParallelRandomWalk::new();
    let params = TuneParams { max_measurements: 64, batch: 8, patience: 64, seed };
    tune(&space, &measurer, &mut model, &mut searcher, params)
        .expect("tuning found no measurable configuration")
}

/// Bitwise comparison of everything a convergence curve reports.
pub fn assert_identical(a: &TuneResult, b: &TuneResult, what: &str) {
    assert_eq!(a.best, b.best, "{what}: best configs differ");
    assert_eq!(a.best_ms.to_bits(), b.best_ms.to_bits(), "{what}: best_ms differs");
    assert_eq!(a.best_gflops.to_bits(), b.best_gflops.to_bits(), "{what}: best_gflops differs");
    assert_eq!(a.measurements, b.measurements, "{what}: budget spent differs");
    assert_eq!(a.to_best, b.to_best, "{what}: trials-to-best differs");
    assert_eq!(a.curve.len(), b.curve.len(), "{what}: curve lengths differ");
    for (i, (pa, pb)) in a.curve.iter().zip(&b.curve).enumerate() {
        assert_eq!(pa.measurement, pb.measurement, "{what}: curve[{i}] index differs");
        assert_eq!(
            pa.best_ms.to_bits(),
            pb.best_ms.to_bits(),
            "{what}: curve[{i}] best_ms differs"
        );
        assert_eq!(
            pa.best_gflops.to_bits(),
            pb.best_gflops.to_bits(),
            "{what}: curve[{i}] best_gflops differs"
        );
    }
}
