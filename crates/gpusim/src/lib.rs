//! # iolb-gpusim — two-level memory-hierarchy GPU simulator
//!
//! Stand-in for the GPUs of the paper's evaluation (1080Ti, V100, Titan X,
//! gfx906). The red-blue pebble game abstracts a GPU as a small fast memory
//! (shared memory, `S`) talking to a large slow memory (global memory);
//! this crate makes that abstraction executable:
//!
//! * [`device`] — datasheet presets for the four evaluation GPUs.
//! * [`memory`] — exact transaction-level traffic counting with a
//!   coalescing model ([`memory::TileAccess`]).
//! * [`mod@occupancy`] — blocks-per-SM residency limits (shared memory,
//!   thread slots, block slots).
//! * [`kernel`] — kernel descriptions (grid x block shape x per-block
//!   work) and result statistics.
//! * [`engine`] — occupancy-aware wave scheduling with roofline timing.
//! * [`trace`] — run logs, tables and CSV for the experiment harnesses.
//!
//! Design stance (see DESIGN.md): traffic is counted **exactly** — that is
//! what the theory bounds — while time is a monotone roofline model, good
//! enough to rank schedules the way real hardware does. Absolute ms/GFLOPs
//! are not comparable to the paper's; relative speedups are.
//!
//! ```
//! use iolb_gpusim::kernel::{BlockWork, KernelDesc};
//! use iolb_gpusim::memory::TileAccess;
//! use iolb_gpusim::occupancy::BlockShape;
//! use iolb_gpusim::{simulate, DeviceSpec};
//!
//! let device = DeviceSpec::v100();
//! let kernel = KernelDesc {
//!     name: "demo".into(),
//!     grid_blocks: 160,
//!     block: BlockShape { threads: 256, smem_bytes: 16 * 1024 },
//!     work: BlockWork::new(1 << 20).read(TileAccess::contiguous(4096)),
//! };
//! let stats = simulate(&device, &kernel).unwrap();
//! assert!(stats.time_ms > 0.0 && stats.q_elems() > 0);
//! ```

pub mod device;
pub mod engine;
pub mod kernel;
pub mod memory;
pub mod occupancy;
pub mod trace;

pub use device::DeviceSpec;
pub use engine::{simulate, simulate_sequence, SequenceStats, SimError};
pub use kernel::{BlockWork, KernelDesc, KernelStats};
pub use memory::{TileAccess, Traffic};
pub use occupancy::{occupancy, BlockShape, Limiter, Occupancy};
