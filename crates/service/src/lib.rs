//! # iolb-service — speculative background tuning over sharded stores
//!
//! The production face of the auto-tuner: the paper makes tuning cheap
//! enough (I/O-lower-bound pruning, §6) that a service can afford to
//! tune **ahead of demand**. This crate turns the passive
//! `iolb-records` store into that service:
//!
//! * [`shard`] — device-sharded stores: one canonical JSONL file per
//!   device fingerprint under a manifest index, cross-shard merge,
//!   persisted LRU stamps, an [`EvictionPolicy`] for long-lived stores
//!   (coldest-workload truncation that never drops a workload's
//!   best-cost record), and the cross-process protocol: an advisory
//!   [`DirLock`] plus [`ShardedStore::merge_into_dir`] so any number of
//!   OS processes append to one directory without corruption.
//! * [`queue`] — the tiered work queue: client batch jobs before
//!   registered layers before shape-perturbation neighbors, ranked
//!   within a tier by predicted I/O-bound gap `Q_model / Q_lower`,
//!   drained in a deterministic order.
//! * [`session`] — batch tuning sessions, the network-level request
//!   path: [`TuningService::submit`] dedupes a whole network's
//!   workloads into one tracked group (repeated layer shapes become one
//!   job with fan-out waiters) and [`SessionHandle::wait`] collects
//!   results as they land.
//! * [`service`] — the [`TuningService`]: background tuner workers on
//!   the rayon shim's persistent pool fill the shards in idle time
//!   under a measurement budget, [`TuningService::tune_or_wait`] (the
//!   one-element session) answers single requests, and per-kind
//!   speculation telemetry rate-weights neighbor priority and retires
//!   perturbation kinds that never hit (both survive restarts via the
//!   stats sidecar).
//! * [`wire`] — the daemon protocol: length-prefixed, versioned frames
//!   of the record codec's flat-JSON lines; hostile input yields typed
//!   errors, never panics.
//! * [`daemon`] — the resident shard server: a [`Daemon`] owns a shard
//!   directory (one advisory flock for its lifetime), serves
//!   Submit/Wait/Sync/Stats/Pull/Shutdown over a Unix domain socket
//!   and, optionally, TCP, with cross-client fingerprint dedup, batched
//!   persistence on a merge interval, and periodic anti-entropy pulls
//!   from fleet peers (absorbed with the commutative
//!   [`ShardedStore::absorb`] union); [`SocketBackend`] /
//!   [`TcpBackend`] are the client half.
//! * [`fleet`] — the client-side fleet router: [`FleetRouter`]
//!   consistent-hashes workload fingerprints across N daemons
//!   ([`PeerAddr`] specs, Unix or TCP), re-routes a dead peer's key
//!   range to the survivors, and re-submits its in-flight slice —
//!   hermetic tuning makes the failed-over results bit-identical.
//! * [`telemetry`] — dependency-free observability: a [`Telemetry`]
//!   metrics registry (monotonic counters, gauges, log-spaced
//!   [`LatencyHistogram`]s with exact quantile readout and associative
//!   merge), Prometheus-style exposition, and a leveled structured
//!   [`EventLog`] (JSONL sink via `IOLB_EVENT_LOG`). Strictly
//!   observational: no wall-clock reading feeds tuning decisions, so
//!   instrumented runs stay bit-identical to bare ones.
//!
//! The request path is transport-abstracted through [`Backend`]
//! (submit/wait/sync/stats): the in-process [`TuningService`], the
//! socket/TCP clients and the fleet router implement the same trait, so
//! callers run embedded, client/server, or against a replicated fleet
//! without code changes.
//!
//! Per-workload tuning runs are *hermetic* (see the [`service`] module
//! docs), so a drained service reproduces exactly what eager
//! `tune_with_store` runs produce — bit-identical costs — regardless of
//! worker count or scheduling.
//!
//! ```
//! use iolb_core::optimality::TileKind;
//! use iolb_core::shapes::ConvShape;
//! use iolb_gpusim::DeviceSpec;
//! use iolb_service::{ServeSource, ServiceConfig, ShardedStore, TuningService};
//!
//! let config = ServiceConfig {
//!     budget_per_workload: 12,
//!     workers: 0, // doctest: drain on this thread, deterministically
//!     speculate_neighbors: false,
//!     ..ServiceConfig::default()
//! };
//! let service = TuningService::new(ShardedStore::new(), config);
//! let layer = ConvShape::new(32, 14, 14, 16, 1, 1, 1, 0);
//! let device = DeviceSpec::v100();
//!
//! // Speculate: enqueue the layer, fill the store in the background.
//! service.register_network(&layer, &device);
//! service.drain();
//!
//! // Serve: the request replays instantly from the shard.
//! let out = service.tune_or_wait(&layer, TileKind::Direct, &device).unwrap();
//! assert_eq!(out.source, ServeSource::ShardHit);
//! assert_eq!(out.fresh_measurements, 0);
//! ```

pub mod daemon;
pub mod fleet;
pub mod queue;
pub mod service;
pub mod session;
pub mod shard;
pub mod telemetry;
pub mod wire;

pub use daemon::{
    Daemon, DaemonConfig, SocketBackend, SocketSession, TcpBackend, TcpSession, WireBackend,
    WireSession, SOCKET_FILE,
};
pub use fleet::{FleetRouter, FleetSession, PeerAddr, VNODES_PER_PEER};
pub use queue::{
    io_gap, shape_perturbations, Job, JobTier, PerturbationKind, PushOutcome, WorkQueue,
};
pub use service::{
    register, KindStats, ServeResult, ServeSource, ServiceConfig, ServiceSnapshot, ServiceStats,
    TuningService, STATS_FILE,
};
pub use session::{
    Backend, BackendError, BackendSession, SessionHandle, StatsReport, SyncOutcome, TuneRequest,
    TuningSession,
};
pub use shard::{
    device_key, shard_file_name, DirLock, DirMergeReport, EvictionPolicy, LockError,
    ShardLoadReport, ShardedStore, LOCK_FILE, LOCK_TIMEOUT, MANIFEST_FILE,
};
pub use telemetry::{
    events, EventLog, HistogramSnapshot, LatencyHistogram, Level, MetricsSnapshot, Telemetry,
    NUM_BUCKETS,
};
pub use wire::{WireError, MAX_FRAME_BYTES, WIRE_VERSION};
