//! # iolb-records — the persistent tuning-record store
//!
//! The paper's auto-tuner (§6) re-measures every candidate schedule from
//! scratch on each invocation. A production tuning service amortizes
//! that cost across runs, layers and devices by logging every
//! measurement into a persistent store and consulting it first — the
//! role TVM's tuning logs and autotvm "transfer learning" records play.
//! This crate is that store:
//!
//! * [`record`] — the versioned record schema: a [`Workload`]
//!   fingerprint (layer shape + algorithm + device preset), the measured
//!   [`ScheduleConfig`](iolb_dataflow::config::ScheduleConfig), its
//!   cost, and the tuner seed that produced it.
//! * [`jsonl`] — a dependency-free, hand-rolled JSONL codec (the build
//!   environment is offline; no serde). Serialization is canonical and
//!   deterministic: the same store contents always produce the same
//!   bytes, so stores diff cleanly and replicate bit-identically.
//! * [`store`] — the in-memory index: keyed by workload fingerprint,
//!   top-k-by-cost queries, exact-config lookup (the measurement cache),
//!   nearest-workload queries by feature distance (cross-layer
//!   transfer), merge/compaction, and corruption-tolerant loading that
//!   skips and reports malformed lines instead of failing the run.

pub mod jsonl;
pub mod record;
pub mod store;

pub use record::{TuningRecord, Workload, SCHEMA_VERSION};
pub use store::{LoadReport, RecordStore};
