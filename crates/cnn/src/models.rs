//! Conv-layer inventories of the evaluation networks (paper Fig. 12 and
//! Table 2): AlexNet, SqueezeNet v1.0, VGG-19, ResNet-18/34 and
//! Inception-v3 — the standard published architectures at 224x224 (227
//! for AlexNet, 299 for Inception-v3) inference with batch 1.

use crate::layers::{ConvLayer, Network};
use iolb_core::shapes::ConvShape;

/// AlexNet's five conv layers (Table 2 tunes conv1–conv4).
pub fn alexnet() -> Network {
    Network {
        name: "AlexNet",
        layers: vec![
            ConvLayer::new("conv1", ConvShape::new(3, 227, 227, 96, 11, 11, 4, 0)),
            ConvLayer::new("conv2", ConvShape::new(96, 27, 27, 256, 5, 5, 1, 2)),
            ConvLayer::new("conv3", ConvShape::new(256, 13, 13, 384, 3, 3, 1, 1)),
            ConvLayer::new("conv4", ConvShape::new(384, 13, 13, 256, 3, 3, 1, 1)),
            ConvLayer::new("conv5", ConvShape::new(256, 13, 13, 256, 3, 3, 1, 1)),
        ],
    }
}

/// One SqueezeNet fire module: squeeze 1x1 then parallel expand 1x1/3x3.
fn fire(name: &str, hw: usize, cin: usize, squeeze: usize, expand: usize) -> Vec<ConvLayer> {
    vec![
        ConvLayer::new(
            format!("{name}.squeeze1x1"),
            ConvShape::new(cin, hw, hw, squeeze, 1, 1, 1, 0),
        ),
        ConvLayer::new(
            format!("{name}.expand1x1"),
            ConvShape::new(squeeze, hw, hw, expand, 1, 1, 1, 0),
        ),
        ConvLayer::new(
            format!("{name}.expand3x3"),
            ConvShape::new(squeeze, hw, hw, expand, 3, 3, 1, 1),
        ),
    ]
}

/// SqueezeNet v1.0 (Iandola et al. 2016).
pub fn squeezenet() -> Network {
    let mut layers = vec![ConvLayer::new("conv1", ConvShape::new(3, 224, 224, 96, 7, 7, 2, 0))];
    // After conv1 (109x109) and maxpool/2: 54x54 feature maps.
    layers.extend(fire("fire2", 54, 96, 16, 64));
    layers.extend(fire("fire3", 54, 128, 16, 64));
    layers.extend(fire("fire4", 54, 128, 32, 128));
    // maxpool/2: 27x27.
    layers.extend(fire("fire5", 27, 256, 32, 128));
    layers.extend(fire("fire6", 27, 256, 48, 192));
    layers.extend(fire("fire7", 27, 384, 48, 192));
    layers.extend(fire("fire8", 27, 384, 64, 256));
    // maxpool/2: 13x13.
    layers.extend(fire("fire9", 13, 512, 64, 256));
    layers.push(ConvLayer::new("conv10", ConvShape::new(512, 13, 13, 1000, 1, 1, 1, 0)));
    Network { name: "SqueezeNet", layers }
}

/// VGG-19 (Simonyan & Zisserman): 16 conv layers in five 3x3 groups.
pub fn vgg19() -> Network {
    let mut layers = Vec::new();
    let group = |layers: &mut Vec<ConvLayer>, idx: usize, hw, cin, cout, n: usize| {
        layers.push(ConvLayer::new(
            format!("conv{idx}_1"),
            ConvShape::new(cin, hw, hw, cout, 3, 3, 1, 1),
        ));
        if n > 1 {
            layers.push(ConvLayer::repeated(
                format!("conv{idx}_rest"),
                ConvShape::new(cout, hw, hw, cout, 3, 3, 1, 1),
                n - 1,
            ));
        }
    };
    group(&mut layers, 1, 224, 3, 64, 2);
    group(&mut layers, 2, 112, 64, 128, 2);
    group(&mut layers, 3, 56, 128, 256, 4);
    group(&mut layers, 4, 28, 256, 512, 4);
    group(&mut layers, 5, 14, 512, 512, 4);
    Network { name: "VGG-19", layers }
}

/// A ResNet basic-block stage: `blocks` blocks of two 3x3 convs, with the
/// first conv possibly strided (stage transition) plus its 1x1 downsample.
fn resnet_stage(
    layers: &mut Vec<ConvLayer>,
    idx: usize,
    hw_in: usize,
    cin: usize,
    cout: usize,
    blocks: usize,
    stride: usize,
) {
    let hw_out = hw_in / stride;
    if stride > 1 || cin != cout {
        layers.push(ConvLayer::new(
            format!("layer{idx}.0.conv1"),
            ConvShape::new(cin, hw_in, hw_in, cout, 3, 3, stride, 1),
        ));
        layers.push(ConvLayer::new(
            format!("layer{idx}.0.downsample"),
            ConvShape::new(cin, hw_in, hw_in, cout, 1, 1, stride, 0),
        ));
        layers.push(ConvLayer::new(
            format!("layer{idx}.0.conv2"),
            ConvShape::new(cout, hw_out, hw_out, cout, 3, 3, 1, 1),
        ));
        if blocks > 1 {
            layers.push(ConvLayer::repeated(
                format!("layer{idx}.rest"),
                ConvShape::new(cout, hw_out, hw_out, cout, 3, 3, 1, 1),
                2 * (blocks - 1),
            ));
        }
    } else {
        layers.push(ConvLayer::repeated(
            format!("layer{idx}"),
            ConvShape::new(cout, hw_out, hw_out, cout, 3, 3, 1, 1),
            2 * blocks,
        ));
    }
}

fn resnet(name: &'static str, blocks: [usize; 4]) -> Network {
    let mut layers = vec![ConvLayer::new("conv1", ConvShape::new(3, 224, 224, 64, 7, 7, 2, 3))];
    // maxpool/2 -> 56x56.
    resnet_stage(&mut layers, 1, 56, 64, 64, blocks[0], 1);
    resnet_stage(&mut layers, 2, 56, 64, 128, blocks[1], 2);
    resnet_stage(&mut layers, 3, 28, 128, 256, blocks[2], 2);
    resnet_stage(&mut layers, 4, 14, 256, 512, blocks[3], 2);
    Network { name, layers }
}

/// ResNet-18 (basic blocks [2, 2, 2, 2]).
pub fn resnet18() -> Network {
    resnet("ResNet-18", [2, 2, 2, 2])
}

/// ResNet-34 (basic blocks [3, 4, 6, 3]).
pub fn resnet34() -> Network {
    resnet("ResNet-34", [3, 4, 6, 3])
}

/// Inception-v3 (Szegedy et al.), 299x299 input — the torchvision layer
/// inventory with per-branch convs; symmetric and factorised (1x7/7x1)
/// kernels included. Branches within a block are folded with `repeat`
/// where identical across the repeated mixed blocks.
pub fn inception_v3() -> Network {
    let mut l: Vec<ConvLayer> = Vec::new();
    let mut add = |name: &str, cin, hw, cout, kh, kw, s, p, rep: usize| {
        l.push(ConvLayer::repeated(
            name,
            ConvShape { batch: 1, cin, hin: hw, win: hw, cout, kh, kw, stride: s, pad: p },
            rep,
        ));
    };
    // Stem.
    add("Conv2d_1a_3x3", 3, 299, 32, 3, 3, 2, 0, 1); // -> 149
    add("Conv2d_2a_3x3", 32, 149, 32, 3, 3, 1, 0, 1); // -> 147
    add("Conv2d_2b_3x3", 32, 147, 64, 3, 3, 1, 1, 1); // -> 147, pool -> 73
    add("Conv2d_3b_1x1", 64, 73, 80, 1, 1, 1, 0, 1);
    add("Conv2d_4a_3x3", 80, 73, 192, 3, 3, 1, 0, 1); // -> 71, pool -> 35
                                                      // Mixed 5b/5c/5d (35x35): 1x1, 5x5 branch, double-3x3 branch, pool-1x1.
    for (i, cin) in [(0usize, 192usize), (1, 256), (2, 288)] {
        let tag = ["5b", "5c", "5d"][i];
        add(&format!("Mixed_{tag}.branch1x1"), cin, 35, 64, 1, 1, 1, 0, 1);
        add(&format!("Mixed_{tag}.branch5x5_1"), cin, 35, 48, 1, 1, 1, 0, 1);
        add(&format!("Mixed_{tag}.branch5x5_2"), 48, 35, 64, 5, 5, 1, 2, 1);
        add(&format!("Mixed_{tag}.branch3x3dbl_1"), cin, 35, 64, 1, 1, 1, 0, 1);
        add(&format!("Mixed_{tag}.branch3x3dbl_2"), 64, 35, 96, 3, 3, 1, 1, 1);
        add(&format!("Mixed_{tag}.branch3x3dbl_3"), 96, 35, 96, 3, 3, 1, 1, 1);
        add(
            &format!("Mixed_{tag}.branch_pool"),
            cin,
            35,
            if i == 0 { 32 } else { 64 },
            1,
            1,
            1,
            0,
            1,
        );
    }
    // Mixed 6a (grid reduction 35 -> 17).
    add("Mixed_6a.branch3x3", 288, 35, 384, 3, 3, 2, 0, 1);
    add("Mixed_6a.branch3x3dbl_1", 288, 35, 64, 1, 1, 1, 0, 1);
    add("Mixed_6a.branch3x3dbl_2", 64, 35, 96, 3, 3, 1, 1, 1);
    add("Mixed_6a.branch3x3dbl_3", 96, 35, 96, 3, 3, 2, 0, 1);
    // Mixed 6b..6e (17x17, factorised 7x1/1x7). Channel widths c7:
    // 128 (6b), 160 (6c, 6d), 192 (6e).
    for (tag, c7) in [("6b", 128usize), ("6c", 160), ("6d", 160), ("6e", 192)] {
        add(&format!("Mixed_{tag}.branch1x1"), 768, 17, 192, 1, 1, 1, 0, 1);
        add(&format!("Mixed_{tag}.branch7x7_1"), 768, 17, c7, 1, 1, 1, 0, 1);
        add(&format!("Mixed_{tag}.branch7x7_2"), c7, 17, c7, 1, 7, 1, 3, 1);
        add(&format!("Mixed_{tag}.branch7x7_3"), c7, 17, 192, 7, 1, 1, 3, 1);
        add(&format!("Mixed_{tag}.branch7x7dbl_1"), 768, 17, c7, 1, 1, 1, 0, 1);
        add(&format!("Mixed_{tag}.branch7x7dbl_2"), c7, 17, c7, 7, 1, 1, 3, 1);
        add(&format!("Mixed_{tag}.branch7x7dbl_3"), c7, 17, c7, 1, 7, 1, 3, 1);
        add(&format!("Mixed_{tag}.branch7x7dbl_4"), c7, 17, c7, 7, 1, 1, 3, 1);
        add(&format!("Mixed_{tag}.branch7x7dbl_5"), c7, 17, 192, 1, 7, 1, 3, 1);
        add(&format!("Mixed_{tag}.branch_pool"), 768, 17, 192, 1, 1, 1, 0, 1);
    }
    // Mixed 7a (grid reduction 17 -> 8).
    add("Mixed_7a.branch3x3_1", 768, 17, 192, 1, 1, 1, 0, 1);
    add("Mixed_7a.branch3x3_2", 192, 17, 320, 3, 3, 2, 0, 1);
    add("Mixed_7a.branch7x7x3_1", 768, 17, 192, 1, 1, 1, 0, 1);
    add("Mixed_7a.branch7x7x3_2", 192, 17, 192, 1, 7, 1, 3, 1);
    add("Mixed_7a.branch7x7x3_3", 192, 17, 192, 7, 1, 1, 3, 1);
    add("Mixed_7a.branch7x7x3_4", 192, 17, 192, 3, 3, 2, 0, 1);
    // Mixed 7b / 7c (8x8).
    for (tag, cin) in [("7b", 1280usize), ("7c", 2048)] {
        add(&format!("Mixed_{tag}.branch1x1"), cin, 8, 320, 1, 1, 1, 0, 1);
        add(&format!("Mixed_{tag}.branch3x3_1"), cin, 8, 384, 1, 1, 1, 0, 1);
        add(&format!("Mixed_{tag}.branch3x3_2a"), 384, 8, 384, 1, 3, 1, 1, 1);
        add(&format!("Mixed_{tag}.branch3x3_2b"), 384, 8, 384, 3, 1, 1, 1, 1);
        add(&format!("Mixed_{tag}.branch3x3dbl_1"), cin, 8, 448, 1, 1, 1, 0, 1);
        add(&format!("Mixed_{tag}.branch3x3dbl_2"), 448, 8, 384, 3, 3, 1, 1, 1);
        add(&format!("Mixed_{tag}.branch3x3dbl_3a"), 384, 8, 384, 1, 3, 1, 1, 1);
        add(&format!("Mixed_{tag}.branch3x3dbl_3b"), 384, 8, 384, 3, 1, 1, 1, 1);
        add(&format!("Mixed_{tag}.branch_pool"), cin, 8, 192, 1, 1, 1, 0, 1);
    }
    Network { name: "Inception-v3", layers: l }
}

/// The five Fig. 12 networks plus AlexNet.
pub fn all_networks() -> Vec<Network> {
    vec![squeezenet(), vgg19(), resnet18(), resnet34(), inception_v3(), alexnet()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_networks_validate() {
        for n in all_networks() {
            n.validate().unwrap_or_else(|e| panic!("{e}"));
            assert!(!n.is_empty());
        }
    }

    #[test]
    fn alexnet_matches_table_2_shapes() {
        let net = alexnet();
        let c1 = &net.layers[0].shape;
        assert_eq!((c1.cin, c1.hin, c1.cout, c1.kh, c1.stride, c1.pad), (3, 227, 96, 11, 4, 0));
        assert_eq!(c1.hout(), 55);
        let c3 = &net.layers[2].shape;
        assert_eq!((c3.cin, c3.hin, c3.cout), (256, 13, 384));
        assert_eq!(c3.hout(), 13);
    }

    #[test]
    fn vgg19_has_16_conv_layers() {
        let total: usize = vgg19().layers.iter().map(|l| l.repeat).sum();
        assert_eq!(total, 16);
    }

    #[test]
    fn vgg19_flop_count_in_known_range() {
        // VGG-19 convs are ~19.5 GMACs at 224x224.
        let g = vgg19().total_macs() as f64 / 1e9;
        assert!((18.0..21.0).contains(&g), "VGG-19 GMACs {g}");
    }

    #[test]
    fn resnet18_flop_count_in_known_range() {
        // ResNet-18 is ~1.8 GMACs; convs dominate.
        let g = resnet18().total_macs() as f64 / 1e9;
        assert!((1.5..2.0).contains(&g), "ResNet-18 GMACs {g}");
    }

    #[test]
    fn resnet34_heavier_than_resnet18() {
        assert!(resnet34().total_macs() as f64 > 1.8 * resnet18().total_macs() as f64);
    }

    #[test]
    fn squeezenet_much_lighter_than_vgg() {
        // The SqueezeNet paper's headline: AlexNet-level accuracy, 50x
        // fewer parameters; conv work ~0.8 GMACs.
        let s = squeezenet().total_macs();
        let v = vgg19().total_macs();
        assert!(v > 15 * s, "vgg {v} squeeze {s}");
    }

    #[test]
    fn inception_has_factorised_kernels() {
        let net = inception_v3();
        assert!(net.layers.iter().any(|l| l.shape.kh == 1 && l.shape.kw == 7));
        assert!(net.layers.iter().any(|l| l.shape.kh == 7 && l.shape.kw == 1));
        // ~5.7 GMACs of conv work (ptflops reports 5.73 GMac for the
        // whole torchvision model, convs dominating).
        let g = net.total_macs() as f64 / 1e9;
        assert!((5.0..7.0).contains(&g), "Inception-v3 GMACs {g}");
    }

    #[test]
    fn resnet_spatial_bookkeeping_consistent() {
        // Every layer's input extent must match the stage plan.
        for net in [resnet18(), resnet34()] {
            for l in &net.layers {
                assert!(l.shape.validate().is_ok(), "{}: {}", net.name, l.name);
                assert!(l.shape.hout() >= 7, "{}: {} too small", net.name, l.name);
            }
        }
    }
}
