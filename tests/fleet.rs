//! ISSUE 6 acceptance gates for the networked tuning fleet:
//!
//! * **fleet == eager** — a 3-daemon TCP fleet serving a network yields
//!   per-layer configs bit-identical to eager `tune_with_store` runs
//!   (consistent-hash routing changes *where* a workload tunes, never
//!   *what* it tunes to — tuning is hermetic);
//! * **kill one daemon mid-session** — with a batch submitted and one
//!   owning daemon shut down before `wait()`, the router re-routes the
//!   dead peer's slice to the survivors and the session still completes
//!   with the same bits;
//! * **anti-entropy** — two daemons that tuned disjoint workloads
//!   converge to the `absorb` union once they pull each other, and both
//!   directories hold the union after shutdown;
//! * **router determinism** — the same peer specs and fingerprints give
//!   the same assignment in every process (no RNG, no iteration-order
//!   dependence).
//!
//! Single-core note: on a zero-worker pool, connection handlers run
//! *inline on the accept thread* (the documented daemon fallback), so a
//! persistent client connection occupies its listener. These tests
//! therefore route session traffic over TCP and control traffic
//! (shutdown, anti-entropy pulls) over the Unix socket, which also
//! mirrors the deployment layout in `docs/OPERATIONS.md`.

use conv_iolb::autotune::plan::tuner_setup;
use conv_iolb::autotune::tune_with_store;
use conv_iolb::cnn::inference::TUNER_SEED;
use conv_iolb::core::optimality::TileKind;
use conv_iolb::core::shapes::ConvShape;
use conv_iolb::gpusim::DeviceSpec;
use conv_iolb::records::{RecordStore, Workload};
use conv_iolb::service::{
    Backend, BackendSession, Daemon, DaemonConfig, FleetRouter, PeerAddr, ServiceConfig,
    ShardedStore, SocketBackend, TcpBackend, TuneRequest,
};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::time::{Duration, Instant};

const BUDGET: usize = 12;

fn device() -> DeviceSpec {
    DeviceSpec::v100()
}

/// Unique per test run: pid alone collides when the OS recycles pids
/// across back-to-back invocations.
fn unique_tag() -> String {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.subsec_nanos())
        .unwrap_or(0);
    format!("{}-{nanos}", std::process::id())
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("iolb-fleet-{tag}-{}", unique_tag()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The eager reference: `tune_with_store` on a fresh store at the
/// fleet's budget and seed.
fn eager(shape: &ConvShape) -> (RecordStore, f64) {
    let mut store = RecordStore::new();
    let mut s = tuner_setup(shape, TileKind::Direct, &device(), BUDGET, TUNER_SEED);
    let out =
        tune_with_store(&s.space, &s.measurer, &mut s.model, &mut s.searcher, s.params, &mut store)
            .expect("feasible workload");
    (store, out.result.best_ms)
}

/// 5 requests, 3 unique — the duplicate-layer network from the daemon
/// tests, now scattered across a fleet.
fn requests() -> Vec<TuneRequest> {
    let a = ConvShape::new(32, 14, 14, 16, 1, 1, 1, 0);
    let b = ConvShape::new(16, 14, 14, 32, 1, 1, 1, 0);
    let c = ConvShape::new(24, 14, 14, 12, 1, 1, 1, 0);
    [a, b, a, c, a].iter().map(|&shape| TuneRequest::bare(shape, TileKind::Direct)).collect()
}

/// One in-process fleet daemon: TCP for sessions, Unix for control.
struct FleetDaemon {
    dir: PathBuf,
    sock: PathBuf,
    tcp: SocketAddr,
    thread: std::thread::JoinHandle<()>,
}

impl FleetDaemon {
    fn start(tag: &str, idx: usize, peers: Vec<PeerAddr>, peer_sync: Duration) -> Self {
        let dir = temp_dir(&format!("{tag}-{idx}"));
        let sock =
            std::env::temp_dir().join(format!("iolb-fleet-{tag}-{idx}-{}.sock", unique_tag()));
        let config = DaemonConfig {
            service: ServiceConfig {
                budget_per_workload: BUDGET,
                workers: 0, // sessions tune on the handler threads: deterministic
                speculate_neighbors: false,
                seed: TUNER_SEED,
                ..ServiceConfig::default()
            },
            merge_interval: Duration::from_millis(50),
            tcp: Some("127.0.0.1:0".to_string()), // a free port, reported by tcp_addr()
            peers,
            peer_sync_interval: peer_sync,
            ..DaemonConfig::default()
        };
        let (daemon, report) = Daemon::bind(&dir, &sock, config).unwrap();
        assert!(report.is_clean(), "warnings: {:?}", report.warnings);
        let tcp = daemon.tcp_addr().expect("TCP listener requested");
        let thread = std::thread::spawn(move || daemon.run().unwrap());
        Self { dir, sock, tcp, thread }
    }

    /// Stops the daemon over its Unix socket — which stays responsive
    /// even while a persistent TCP client occupies the TCP listener's
    /// inline handler on single-core hosts — and joins it.
    fn stop(self) -> PathBuf {
        SocketBackend::connect(&self.sock).unwrap().shutdown().unwrap();
        self.thread.join().expect("daemon thread panicked");
        assert!(!self.sock.exists(), "clean shutdown removes the socket file");
        self.dir
    }
}

/// The tentpole pin: a 3-daemon TCP fleet serves a network bit-identical
/// to eager tuning, and killing one daemon mid-session (submitted, not
/// yet waited) still completes the session with the same bits.
#[test]
fn fleet_matches_eager_and_survives_killing_a_daemon_mid_session() {
    let daemons: Vec<FleetDaemon> = (0..3)
        .map(|i| FleetDaemon::start("kill", i, Vec::new(), Duration::from_secs(3600)))
        .collect();
    let specs: Vec<String> = daemons.iter().map(|d| format!("tcp:{}", d.tcp)).collect();
    let router = FleetRouter::from_specs(&specs);
    assert_eq!(router.peers().len(), 3);

    // Session 1: the whole batch through the fleet, against eager bits.
    let session = router.submit_batch(&requests(), &device()).unwrap();
    assert_eq!(session.request_count(), 5);
    assert_eq!(
        session.unique_workloads(),
        3,
        "duplicates of one fingerprint route to one peer, so per-peer dedup sums to the global count"
    );
    let results = session.wait().unwrap();
    assert_eq!(results.len(), 5);
    for (request, served) in requests().iter().zip(&results) {
        let served = served.as_ref().expect("feasible layer");
        let (eager_store, eager_best_ms) = eager(&request.shape);
        let workload =
            Workload::new(request.shape, TileKind::Direct, device().name, device().smem_per_sm);
        assert_eq!(
            served.cost_ms.to_bits(),
            eager_best_ms.to_bits(),
            "fleet-served cost differs from eager for {}",
            workload.fingerprint()
        );
        assert_eq!(served.config, eager_store.top_k(&workload, 1)[0].config);
    }
    // One tuning run per unique fingerprint *fleet-wide*: the aggregated
    // stats prove no workload tuned on two daemons.
    let snap = router.stats().unwrap();
    assert_eq!(snap.snapshot.stats.inline_tuned + snap.snapshot.stats.background_tuned, 3);
    let sync = router.sync().unwrap();
    assert!(sync.persisted, "all three daemons flushed");
    assert!(sync.total > 0);

    // Session 2, with a mid-session kill: submit, then shut down the
    // daemon that owns the first request's fingerprint *before* waiting.
    let session = router.submit_batch(&requests(), &device()).unwrap();
    let victim_addr = {
        let fp = FleetRouter::fingerprint(&requests()[0], &device());
        match router.route_fingerprint(&fp).expect("all peers alive").clone() {
            PeerAddr::Tcp(addr) => addr,
            other => panic!("TCP fleet routed to {other}"),
        }
    };
    let victim_at = daemons.iter().position(|d| d.tcp.to_string() == victim_addr).unwrap();
    let mut survivors = Vec::new();
    let mut victim_dir = None;
    for (at, daemon) in daemons.into_iter().enumerate() {
        if at == victim_at {
            // Fully down — thread joined, sockets closed — before wait().
            victim_dir = Some(daemon.stop());
        } else {
            survivors.push(daemon);
        }
    }
    let failover = session.wait().expect("failover completes the session");
    assert_eq!(router.live_peers(), 2, "the router marked the dead peer");
    for (fresh, refailed) in results.iter().zip(&failover) {
        let fresh = fresh.as_ref().unwrap();
        let refailed = refailed.as_ref().unwrap();
        assert_eq!(
            refailed.cost_ms.to_bits(),
            fresh.cost_ms.to_bits(),
            "failover re-tuning must reproduce the dead peer's bits"
        );
        assert_eq!(refailed.config, fresh.config);
    }
    // Sync is honest about the hole: a dead peer means the fleet cannot
    // claim everything is on disk.
    let sync = router.sync().unwrap();
    assert!(!sync.persisted, "a dead peer must surface as persisted: false");

    // The union of all three directories (consistent hashing may leave
    // a peer with no keys, so single directories can be empty) carries
    // every workload at its eager bits.
    let mut dirs = vec![victim_dir.expect("victim stopped above")];
    dirs.extend(survivors.into_iter().map(FleetDaemon::stop));
    let mut union = ShardedStore::new();
    for dir in &dirs {
        let (store, report) = ShardedStore::load(dir).unwrap();
        assert!(report.is_clean(), "corrupt fleet directory: {:?}", report.warnings);
        union.absorb(store);
    }
    for request in requests() {
        let workload =
            Workload::new(request.shape, TileKind::Direct, device().name, device().smem_per_sm);
        let best = union.best(&workload).expect("workload missing from every fleet directory");
        let (_, eager_best_ms) = eager(&request.shape);
        assert_eq!(best.cost_ms.to_bits(), eager_best_ms.to_bits());
    }
    for dir in dirs {
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Anti-entropy: two daemons tune disjoint workloads, each peered at
/// the other's Unix socket; both converge to the same `absorb` union,
/// and both *directories* hold the union after shutdown.
#[test]
fn anti_entropy_converges_divergent_daemons_to_the_union() {
    let tag = "sync";
    // Socket paths are chosen before either daemon starts so each can
    // list the other as a peer; pulls simply fail silently until the
    // peer is up (the designed-for case).
    let sock_a = std::env::temp_dir().join(format!("iolb-fleet-{tag}-a-{}.sock", unique_tag()));
    let sock_b = std::env::temp_dir().join(format!("iolb-fleet-{tag}-b-{}.sock", unique_tag()));
    let start = |idx: usize, own_sock: &PathBuf, peer_sock: &PathBuf| {
        let dir = temp_dir(&format!("{tag}-{idx}"));
        let config = DaemonConfig {
            service: ServiceConfig {
                budget_per_workload: BUDGET,
                workers: 0,
                speculate_neighbors: false,
                seed: TUNER_SEED,
                ..ServiceConfig::default()
            },
            merge_interval: Duration::from_millis(50),
            tcp: Some("127.0.0.1:0".to_string()),
            peers: vec![PeerAddr::Unix(peer_sock.clone())],
            peer_sync_interval: Duration::from_millis(100),
            ..DaemonConfig::default()
        };
        let (daemon, report) = Daemon::bind(&dir, own_sock, config).unwrap();
        assert!(report.is_clean());
        let tcp = daemon.tcp_addr().unwrap();
        let sock = own_sock.clone();
        let thread = std::thread::spawn(move || daemon.run().unwrap());
        FleetDaemon { dir, sock, tcp, thread }
    };
    let a = start(0, &sock_a, &sock_b);
    let b = start(1, &sock_b, &sock_a);

    // Diverge: X tunes only on A, Y tunes only on B.
    let shape_x = ConvShape::new(32, 14, 14, 16, 1, 1, 1, 0);
    let shape_y = ConvShape::new(16, 14, 14, 32, 1, 1, 1, 0);
    let client_a = TcpBackend::connect(a.tcp).unwrap();
    let client_b = TcpBackend::connect(b.tcp).unwrap();
    let out_x = client_a
        .tune_or_wait_via(&shape_x, TileKind::Direct, &device())
        .unwrap()
        .expect("feasible workload");
    let out_y = client_b
        .tune_or_wait_via(&shape_y, TileKind::Direct, &device())
        .unwrap()
        .expect("feasible workload");

    // Converge: poll both stores over the wire until they are equal and
    // contain both workloads (one pull interval per direction, plus
    // tuning time — 60 s is generous, the loop exits in well under one).
    let fp_x = Workload::new(shape_x, TileKind::Direct, device().name, device().smem_per_sm);
    let fp_y = Workload::new(shape_y, TileKind::Direct, device().name, device().smem_per_sm);
    let deadline = Instant::now() + Duration::from_secs(60);
    let (store_a, store_b) = loop {
        let store_a = client_a.pull().unwrap();
        let store_b = client_b.pull().unwrap();
        let both = |s: &ShardedStore| s.best(&fp_x).is_some() && s.best(&fp_y).is_some();
        if both(&store_a) && both(&store_b) && store_a == store_b {
            break (store_a, store_b);
        }
        assert!(
            Instant::now() < deadline,
            "daemons never converged: A has {} record(s), B has {}",
            store_a.len(),
            store_b.len()
        );
        std::thread::sleep(Duration::from_millis(50));
    };
    assert_eq!(store_a.merged().to_jsonl(), store_b.merged().to_jsonl());
    // The union carries each side's bits unchanged.
    assert_eq!(store_a.best(&fp_x).unwrap().cost_ms.to_bits(), out_x.cost_ms.to_bits());
    assert_eq!(store_a.best(&fp_y).unwrap().cost_ms.to_bits(), out_y.cost_ms.to_bits());

    // Both *directories* hold the union after shutdown (the peer-sync
    // thread persists what it absorbs; the final flush catches the rest).
    drop(client_a);
    drop(client_b);
    let dir_a = a.stop();
    let dir_b = b.stop();
    let (disk_a, report_a) = ShardedStore::load(&dir_a).unwrap();
    let (disk_b, report_b) = ShardedStore::load(&dir_b).unwrap();
    assert!(report_a.is_clean() && report_b.is_clean());
    assert_eq!(disk_a.merged().to_jsonl(), disk_b.merged().to_jsonl());
    assert!(disk_a.best(&fp_x).is_some() && disk_a.best(&fp_y).is_some());
    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}

/// Router determinism across processes: the assignment is a pure
/// function of (peer specs, fingerprints) — this run must agree with
/// any other run, so pin a golden sample in addition to the in-crate
/// instance-vs-instance property.
#[test]
fn routing_is_a_pure_function_of_specs_and_fingerprints() {
    let specs: Vec<String> = ["tcp:10.0.0.1:7070", "tcp:10.0.0.2:7070", "tcp:10.0.0.3:7070"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let router = FleetRouter::from_specs(&specs);
    let again = FleetRouter::from_specs(&specs);
    for request in requests() {
        let fp = FleetRouter::fingerprint(&request, &device());
        assert_eq!(
            router.route_fingerprint(&fp),
            again.route_fingerprint(&fp),
            "two routers over the same specs disagree on {fp}"
        );
    }
    // Duplicates of one fingerprint always share a peer — the property
    // that makes per-peer dedup sum to the global unique count.
    let fps: Vec<String> =
        requests().iter().map(|r| FleetRouter::fingerprint(r, &device())).collect();
    assert_eq!(router.route_fingerprint(&fps[0]), router.route_fingerprint(&fps[2]));
    assert_eq!(router.route_fingerprint(&fps[0]), router.route_fingerprint(&fps[4]));
}
