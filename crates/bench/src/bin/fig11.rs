//! Figure 11 — convergence of the four automation methods on AlexNet
//! conv1 (V100): best-found GFLOP/s vs number of measurements, plus the
//! cuDNN stand-in's flat baseline.
//!
//! With `--records <store.jsonl>` the runs go through a persistent
//! tuning-record store in **cache-only** mode: previously measured
//! configurations replay from the cache (bit-identical to re-measuring,
//! so every method's search trajectory — and the comparison — is
//! unchanged), fresh measurements are appended, and the store is saved
//! back; re-running the figure becomes incremental instead of starting
//! from scratch. Warm-starting is deliberately off here: records carry
//! no searcher identity, so it would seed each method with its
//! competitors' best configurations.

use iolb_bench::{
    banner, cudnn_direct_ms, load_store_or_exit, records_flag, run_tuner, run_tuner_with_store,
    save_store_or_exit, StoreMode, TunerKind,
};
use iolb_core::optimality::TileKind;
use iolb_core::shapes::ConvShape;
use iolb_gpusim::DeviceSpec;

fn main() {
    let device = DeviceSpec::v100();
    let shape = ConvShape::new(3, 227, 227, 96, 11, 11, 4, 0); // AlexNet conv1
    banner(
        "Figure 11: search-method convergence on AlexNet conv1",
        "best GFLOP/s vs measurements, Tesla V100 (simulated); budget 320",
    );

    let budget = 320;
    let seeds: [u64; 3] = [17, 101, 4242];
    let methods = [TunerKind::Ate, TunerKind::TvmSa, TunerKind::TvmGa, TunerKind::TvmRandom];
    let records = records_flag();
    let mut store = records.as_deref().map(load_store_or_exit);
    let mut cache_hits = 0usize;
    let mut fresh = 0usize;
    // Search is stochastic; average the best-so-far curves over seeds.
    let results: Vec<_> = methods
        .iter()
        .map(|&m| {
            let runs: Vec<_> = seeds
                .iter()
                .map(|&s| match store.as_mut() {
                    Some(store) => {
                        let out = run_tuner_with_store(
                            m,
                            &shape,
                            TileKind::Direct,
                            &device,
                            budget,
                            s,
                            store,
                            StoreMode::CacheOnly,
                        )
                        .expect("tuning run");
                        cache_hits += out.cache_hits;
                        fresh += out.fresh_measurements;
                        out.result
                    }
                    None => run_tuner(m, &shape, TileKind::Direct, &device, budget, s)
                        .expect("tuning run"),
                })
                .collect();
            (m, runs)
        })
        .collect();

    // cuDNN baseline throughput (direct-algorithm flops over its time).
    let base_ms = cudnn_direct_ms(&shape, &device);
    let base_gflops = shape.flops() as f64 / (base_ms * 1e-3) / 1e9;

    let best_at = |r: &iolb_autotune::TuneResult, cp: usize| -> f64 {
        r.curve
            .iter()
            .take_while(|p| p.measurement <= cp)
            .map(|p| p.best_gflops)
            .fold(0.0, f64::max)
    };

    // Print the mean curves on a common measurement axis.
    let checkpoints: Vec<usize> = (1..=16).map(|i| i * budget / 16).collect();
    print!("{:>8}", "meas");
    for (m, _) in &results {
        print!("{:>14}", m.label());
    }
    println!("{:>14}", "cuDNN");
    for &cp in &checkpoints {
        print!("{cp:>8}");
        for (_, runs) in &results {
            let mean: f64 = runs.iter().map(|r| best_at(r, cp)).sum::<f64>() / runs.len() as f64;
            print!("{mean:>14.1}");
        }
        println!("{base_gflops:>14.1}");
    }

    println!();
    for (m, runs) in &results {
        let best = runs.iter().max_by(|a, b| a.best_gflops.total_cmp(&b.best_gflops)).unwrap();
        let mean: f64 = runs.iter().map(|r| r.best_gflops).sum::<f64>() / runs.len() as f64;
        println!(
            "{:<14} mean-final {:.1} GFLOP/s, best seed {:.1} GFLOP/s (cfg: {})",
            m.label(),
            mean,
            best.best_gflops,
            best.best
        );
    }
    println!("\nPaper reference: all methods improve over iterations; ATE finds better");
    println!("configurations in fewer steps than SA / GA / random, and all end above");
    println!("the cuDNN line.");

    if let (Some(store), Some(path)) = (&store, &records) {
        println!(
            "\nRecord store: {cache_hits} of {} attempts replayed from cache, {fresh} fresh",
            cache_hits + fresh
        );
        save_store_or_exit(store, path);
    }

    // What did the cost model learn? Refit a GBT on the ATE run's history
    // and rank features by permutation importance.
    {
        use iolb_autotune::features::{featurize, FEATURE_NAMES};
        use iolb_autotune::gbt::{Gbrt, GbrtParams};
        use iolb_autotune::{ConfigSpace, Measurer};
        use iolb_core::optimality::TileKind;
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let space = ConfigSpace::new(shape, TileKind::Direct, device.smem_per_sm, true);
        let measurer = Measurer::new(device.clone(), shape, TileKind::Direct);
        let mut rng = StdRng::seed_from_u64(99);
        let mut rows = Vec::new();
        let mut costs = Vec::new();
        for _ in 0..240 {
            let Some(cfg) = space.sample(&mut rng, 256) else { continue };
            let Some(ms) = measurer.measure_ms(&cfg) else { continue };
            rows.push(featurize(&shape, TileKind::Direct, &cfg));
            costs.push(ms.ln());
        }
        let model = Gbrt::fit(&rows, &costs, GbrtParams::default(), &mut rng);
        let imp = model.permutation_importance(&rows, &costs, &mut rng);
        let mut ranked: Vec<(&str, f64)> = FEATURE_NAMES.iter().copied().zip(imp).collect();
        ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
        println!("\nCost-model permutation importance (top 6 of {} features):", ranked.len());
        for (name, score) in ranked.iter().take(6) {
            println!("  {name:<22} {score:.4}");
        }
    }
}
