//! # iolb-tensor — convolution numerics substrate
//!
//! The CPU compute substrate for the PPoPP'21 reproduction: everything
//! needed to *actually run* the convolutions whose I/O behaviour the rest
//! of the workspace analyses.
//!
//! * [`layout`] — the CHW / CWH / HWC image layouts from the paper's
//!   Table 1 searching domain.
//! * [`tensor`] — dense batched 4-D `f32` tensors with layout-aware
//!   indexing and approximate comparison.
//! * [`conv_ref`] — the golden-reference direct convolution (the oracle
//!   every other path is tested against).
//! * [`gemm`] — blocked, multi-threaded `f32` GEMM (rayon workers over
//!   disjoint row bands) with scalar and vectorized micro-kernels.
//! * [`kernel`] — the `IOLB_KERNEL=scalar|vector` runtime switch between
//!   the bit-identical kernel paths.
//! * [`im2col`] — the cuDNN-style image-to-column convolution path built on
//!   the GEMM (the paper's direct-convolution baseline).
//! * [`ops`] — standalone ReLU / max-pool epilogue passes, the unfused
//!   reference composition fused conv→epilogue chains are diffed against.
//! * [`winograd_math`] — Cook–Toom generation of the `A`/`B`/`G` (the
//!   paper's `A`/`B`/`L`) transform matrices for arbitrary `F(e, r)`.
//! * [`winograd_conv`] — the full 4-step Winograd convolution (Fig. 2).
//!
//! All convolution paths are cross-validated against [`conv_ref`]; property
//! tests live in the crate's `tests/` directory.
//!
//! ```
//! use iolb_tensor::conv_ref::{conv2d_reference, ConvParams};
//! use iolb_tensor::im2col::conv2d_im2col;
//! use iolb_tensor::tensor::Tensor4;
//!
//! // The im2col+GEMM path agrees with the reference convolution.
//! let input = Tensor4::from_fn(1, 2, 5, 5, |n, c, h, w| (n + c + h * w) as f32 * 0.25);
//! let weights = Tensor4::from_fn(3, 2, 3, 3, |o, c, kh, kw| (o + c + kh + kw) as f32 * 0.5);
//! let params = ConvParams::new(1, 1);
//! let reference = conv2d_reference(&input, &weights, params);
//! let im2col = conv2d_im2col(&input, &weights, params, 1);
//! assert!(reference.approx_eq(&im2col, 1e-5, 1e-6));
//! ```

#![allow(clippy::needless_range_loop)] // index loops read clearer in numeric kernels
pub mod conv_ref;
pub mod gemm;
pub mod im2col;
pub mod kernel;
pub mod layout;
pub mod ops;
pub mod tensor;
pub mod winograd_conv;
pub mod winograd_math;

pub use conv_ref::{conv2d_reference, ConvParams};
pub use im2col::conv2d_im2col;
pub use kernel::KernelPath;
pub use layout::Layout;
pub use tensor::Tensor4;
pub use winograd_conv::{conv2d_winograd, WinogradPlan};
