//! Configuration featurisation for the learned cost model.
//!
//! The features expose what the theory says matters: tile volume, the
//! optimality-condition deviation, the modelled read I/O, the occupancy
//! proxy, thread counts and the layout. Everything numeric is log-scaled
//! where it spans decades, so the regression trees see balanced splits.

use iolb_core::optimality::TileKind;
use iolb_core::shapes::ConvShape;
use iolb_dataflow::config::ScheduleConfig;
use iolb_tensor::layout::Layout;

/// Number of features produced by [`featurize`].
pub const NUM_FEATURES: usize = 14;

/// Feature names (diagnostics, importance reports).
pub const FEATURE_NAMES: [&str; NUM_FEATURES] = [
    "log2_x",
    "log2_y",
    "log2_z",
    "log2_tile_volume",
    "log2_threads",
    "log2_sb_elems",
    "condition_ratio",
    "condition_deviation",
    "log2_model_read_io",
    "occupancy_proxy",
    "halo_overhead",
    "is_chw",
    "is_cwh",
    "is_hwc",
];

/// Maps a configuration to its feature vector.
pub fn featurize(shape: &ConvShape, kind: TileKind, cfg: &ScheduleConfig) -> Vec<f64> {
    let r = kind.reuse(shape);
    let xy = (cfg.x * cfg.y) as f64;
    let rz = r * cfg.z as f64;
    let read_io =
        kind.read_io(shape, &iolb_core::optimality::Tile { x: cfg.x, y: cfg.y, z: cfg.z });
    let (kh, kw, mu) = (shape.kh as f64, shape.kw as f64, shape.stride as f64);
    let xp = (cfg.x as f64 - 1.0) * mu + kh;
    let yp = (cfg.y as f64 - 1.0) * mu + kw;
    let halo_overhead = (xp * yp) / (mu * mu * cfg.x as f64 * cfg.y as f64);

    vec![
        (cfg.x as f64).log2(),
        (cfg.y as f64).log2(),
        (cfg.z as f64).log2(),
        (cfg.tile_volume() as f64).log2(),
        (cfg.threads() as f64).log2(),
        cfg.sb_elems().log2(),
        (xy / rz).log2(),
        cfg.optimality_deviation(shape, kind),
        read_io.max(1.0).log2(),
        cfg.sb_elems() / (cfg.tile_volume() as f64).max(1.0),
        halo_overhead,
        f64::from(cfg.layout == Layout::Chw),
        f64::from(cfg.layout == Layout::Cwh),
        f64::from(cfg.layout == Layout::Hwc),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape() -> ConvShape {
        ConvShape::square(64, 28, 32, 3, 1, 1)
    }

    fn cfg() -> ScheduleConfig {
        ScheduleConfig {
            x: 7,
            y: 7,
            z: 8,
            nxt: 7,
            nyt: 7,
            nzt: 2,
            sb_bytes: 16 * 1024,
            layout: Layout::Chw,
        }
    }

    #[test]
    fn feature_vector_has_declared_length() {
        let f = featurize(&shape(), TileKind::Direct, &cfg());
        assert_eq!(f.len(), NUM_FEATURES);
        assert_eq!(FEATURE_NAMES.len(), NUM_FEATURES);
    }

    #[test]
    fn features_are_finite() {
        let f = featurize(&shape(), TileKind::Direct, &cfg());
        for (i, v) in f.iter().enumerate() {
            assert!(v.is_finite(), "feature {} = {v}", FEATURE_NAMES[i]);
        }
    }

    #[test]
    fn layout_one_hot_is_exclusive() {
        for layout in Layout::ALL {
            let c = ScheduleConfig { layout, ..cfg() };
            let f = featurize(&shape(), TileKind::Direct, &c);
            let hot: f64 = f[11] + f[12] + f[13];
            assert_eq!(hot, 1.0);
        }
    }

    #[test]
    fn condition_deviation_reflected() {
        let balanced = cfg(); // xy = 49, Rz = 72: dev ~ 0.32
        let skewed = ScheduleConfig { x: 1, y: 1, nxt: 1, nyt: 1, z: 32, nzt: 2, ..cfg() };
        let fb = featurize(&shape(), TileKind::Direct, &balanced);
        let fs = featurize(&shape(), TileKind::Direct, &skewed);
        assert!(fs[7] > fb[7], "skewed dev {} <= balanced {}", fs[7], fb[7]);
    }

    #[test]
    fn read_io_feature_tracks_model() {
        // Larger tiles (same condition ratio) reduce modelled read I/O.
        let small = cfg();
        let large = ScheduleConfig { x: 14, y: 14, z: 32, sb_bytes: 48 * 1024, ..cfg() };
        let fs = featurize(&shape(), TileKind::Direct, &small);
        let fl = featurize(&shape(), TileKind::Direct, &large);
        assert!(fl[8] < fs[8]);
    }
}
