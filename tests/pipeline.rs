//! Cross-crate integration tests: the full theory → schedule → simulate →
//! verify pipeline, end to end.

use conv_iolb::autotune::engine::{tune, TuneParams};
use conv_iolb::autotune::search::walk::ParallelRandomWalk;
use conv_iolb::autotune::{ConfigSpace, GbtCostModel, Measurer};
use conv_iolb::cnn::inference::{fast_config, time_network, PlanMode};
use conv_iolb::cnn::models;
use conv_iolb::core::optimality::TileKind;
use conv_iolb::core::shapes::{ConvShape, WinogradTile};
use conv_iolb::core::{direct, winograd};
use conv_iolb::dataflow::{direct_kernel, winograd_kernel};
use conv_iolb::gpusim::{simulate, DeviceSpec};
use conv_iolb::pebble::conv_dag::direct_conv_dag;
use conv_iolb::pebble::exact::min_io;
use conv_iolb::pebble::{pebble_topological, Eviction};

/// Theorem 4.12's bound must floor the simulator's measured traffic for
/// every schedule the planner can produce, on every device.
#[test]
fn simulated_traffic_respects_direct_lower_bound() {
    for device in DeviceSpec::all() {
        for (cin, hw, cout, k, s) in
            [(256usize, 56usize, 128usize, 3usize, 1usize), (64, 28, 64, 3, 1), (96, 27, 256, 5, 1)]
        {
            let shape = ConvShape::square(cin, hw, cout, k, s, k / 2);
            let Some(cfg) = fast_config(&shape, TileKind::Direct, &device) else {
                continue;
            };
            let stats = simulate(&device, &direct_kernel(&shape, &cfg)).unwrap();
            let bound = direct::io_lower_bound(&shape, cfg.sb_elems());
            assert!(
                stats.q_elems() as f64 >= bound,
                "{} {shape}: Q {} below bound {bound}",
                device.name,
                stats.q_elems()
            );
        }
    }
}

/// Same for the Winograd bound (Theorem 4.20).
#[test]
fn simulated_traffic_respects_winograd_lower_bound() {
    let device = DeviceSpec::v100();
    for hw in [28usize, 56] {
        let shape = ConvShape::square(128, hw, 64, 3, 1, 1);
        let tile = WinogradTile::F2X3;
        let kind = TileKind::Winograd(tile);
        let cfg = fast_config(&shape, kind, &device).expect("winograd plannable");
        let stats = simulate(&device, &winograd_kernel(&shape, tile, &cfg)).unwrap();
        let bound = winograd::io_lower_bound(&shape, tile, cfg.sb_elems());
        assert!(
            stats.q_elems() as f64 >= bound,
            "{shape}: Q {} below bound {bound}",
            stats.q_elems()
        );
    }
}

/// The pebbling sandwich on a literal conv DAG: analytic bound <= exact
/// optimum <= heuristic schedule.
#[test]
fn pebbling_sandwich_on_conv_dag() {
    let shape = ConvShape::new(1, 2, 2, 1, 2, 2, 1, 0);
    let dag = direct_conv_dag(&shape);
    for s in [5usize, 6, 8] {
        let bound = direct::io_lower_bound(&shape, s as f64);
        let exact = min_io(&dag, s, 1 << 24).expect("feasible pebbling");
        let heuristic = pebble_topological(&dag, s, Eviction::Belady).io;
        assert!(bound <= exact as f64 + 1e-9, "S={s}");
        assert!(exact <= heuristic, "S={s}");
    }
}

/// Tuning with the warm-started walker never ends worse than the analytic
/// plan it started from.
#[test]
fn tuning_never_regresses_from_analytic_plan() {
    let shape = ConvShape::square(64, 28, 32, 3, 1, 1);
    let device = DeviceSpec::v100();
    let kind = TileKind::Direct;
    let measurer = Measurer::new(device.clone(), shape, kind);
    let analytic = fast_config(&shape, kind, &device).expect("plannable");
    let analytic_ms = measurer.measure_ms(&analytic).expect("measurable");

    let space = ConfigSpace::new(shape, kind, device.smem_per_sm, true);
    let mut model = GbtCostModel::default();
    let mut searcher = ParallelRandomWalk::with_seeds(vec![analytic]);
    let result = tune(
        &space,
        &measurer,
        &mut model,
        &mut searcher,
        TuneParams { max_measurements: 48, batch: 6, patience: 48, seed: 3 },
    )
    .expect("tunable");
    assert!(
        result.best_ms <= analytic_ms * 1.0001,
        "tuned {} worse than analytic {analytic_ms}",
        result.best_ms
    );
}

/// The pruned searching domain is a strict subset of the full space on
/// every AlexNet layer, with the Table 2 compression magnitude.
#[test]
fn pruned_domain_compression_on_alexnet() {
    let device = DeviceSpec::v100();
    for layer in &models::alexnet().layers {
        let full = ConfigSpace::new(layer.shape, TileKind::Direct, device.smem_per_sm, false);
        let pruned = ConfigSpace::new(layer.shape, TileKind::Direct, device.smem_per_sm, true);
        let (nf, np) = (full.count(), pruned.count());
        assert!(np < nf, "{}: pruned {np} not below full {nf}", layer.name);
        let ratio = np as f64 / nf as f64;
        assert!(
            (0.05..0.8).contains(&ratio),
            "{}: compression {ratio} outside expected band",
            layer.name
        );
    }
}

/// End-to-end: our planner beats the library baseline on the classic
/// residual networks, conv time summed across the whole network.
#[test]
fn end_to_end_speedup_on_resnets() {
    let device = DeviceSpec::v100();
    for net in [models::resnet18(), models::resnet34()] {
        let t = time_network(&net, &device, PlanMode::Fast);
        assert!(
            t.speedup() > 1.0,
            "{}: ours {} ms vs baseline {} ms",
            net.name,
            t.ours_ms,
            t.baseline_ms
        );
    }
}

/// Every network inventory is plannable end to end: no layer falls back to
/// an infinite time.
#[test]
fn every_layer_of_every_network_is_plannable() {
    let device = DeviceSpec::gtx1080ti();
    for net in models::all_networks() {
        let t = time_network(&net, &device, PlanMode::Fast);
        for l in &t.layers {
            assert!(l.ours_ms.is_finite(), "{}/{} unplannable", net.name, l.name);
        }
    }
}

/// The generic composite machinery (Theorem 4.6 evaluated numerically)
/// agrees with the closed forms within their derivation slack.
#[test]
fn generic_theorem_agrees_with_closed_forms() {
    use conv_iolb::core::composite;
    use conv_iolb::core::phi_psi::{direct_steps, winograd_steps};
    let shape = ConvShape::square(128, 28, 64, 3, 1, 1);
    let s = 2048.0;
    // Direct: closed form == generic (same T).
    let generic = composite::io_lower_bound(
        &direct_steps(shape.reuse_factor()),
        direct::vertex_count(&shape) as f64,
        s,
    );
    let closed = direct::io_lower_bound(&shape, s);
    let rel = (generic - closed).abs() / closed;
    assert!(rel < 0.02, "direct: generic {generic} closed {closed}");
    // Winograd: the numeric T is larger than Lemma 4.19's (the paper's
    // chain drops a step-3 term), so the generic bound is smaller but
    // within a small constant.
    let tile = WinogradTile::F2X3;
    let generic_w = composite::io_lower_bound(
        &winograd_steps(tile),
        winograd::vertex_count_leading(&shape, tile),
        s,
    );
    let closed_w = winograd::io_lower_bound(&shape, tile, s);
    assert!(generic_w > 0.0 && closed_w > 0.0);
    let ratio = closed_w / generic_w;
    assert!((1.0..8.0).contains(&ratio), "winograd: ratio {ratio}");
}
