//! The tuning service: speculative background tuning over sharded stores.
//!
//! A [`TuningService`] owns a [`ShardedStore`], a tiered priority
//! [`WorkQueue`], and a set of background tuner workers on the rayon
//! shim's persistent pool. Registering a network enqueues every layer ×
//! algorithm-candidate workload (plus shape-perturbation neighbors),
//! prioritized by predicted I/O-bound gap; workers drain the queue in
//! the background and write records back under a fresh-measurement
//! budget. Requests are served through batch **sessions**
//! ([`crate::session`]): [`TuningService::submit`] dedupes a whole
//! network's workloads into one tracked batch group, and
//! [`TuningService::tune_or_wait`] is the one-element session — answered
//! from the shard, by stealing an in-flight background job, or by tuning
//! on the waiting thread.
//!
//! ## The determinism contract
//!
//! Background workers race, so every per-workload tuning run is
//! **hermetic**: it is driven by the canonical
//! [`iolb_autotune::plan::tuner_setup`] against a fresh private store,
//! making its trajectory a pure function of `(workload, budget, seed)`.
//! No run observes any other record — a workload is only ever tuned
//! while its shard holds nothing for it, at most once at a time — so
//! the drained store is independent of worker count, interleaving and
//! queue order, and identical to what eager per-workload
//! [`tune_with_store`] calls produce. The price is deliberate: the
//! speculative path gives up cross-workload transfer seeding (which
//! would make results depend on completion order) in exchange for
//! reproducibility; transfer stays available to eager callers that
//! choose a shared store.
//!
//! The one scheduling-dependent quantity is *which speculative jobs ran*
//! before the background budget ran out — never what any completed job
//! measured. A request for an untuned workload simply tunes on the
//! waiting session's thread.
//!
//! ## Speculation telemetry
//!
//! Every speculative neighbor job carries its [`PerturbationKind`]; the
//! service counts per-kind enqueues, completed tunes and **hits** (a
//! client actually requested a workload the kind predicted — either a
//! tuned neighbor replayed from the shard, or a pending neighbor job
//! promoted into a client batch). The learning acts on two timescales:
//! continuously, each kind's smoothed hit *rate*
//! ([`TuningService::speculation_weight`]) scales the priority of its
//! neighbor jobs in the queue (rate-weighted `Q_model / Q_lower` rank,
//! deterministic fingerprint tie-breaks preserved); and terminally,
//! after [`ServiceConfig::speculation_probation`] completed sessions,
//! kinds with enqueues but zero hits stop being enqueued at all. The
//! counters are persisted in the stats sidecar and restored by
//! [`TuningService::open`], so both the rates and the retirement
//! decisions survive a service (or daemon) restart.

use crate::queue::{shape_perturbations, Job, JobTier, PerturbationKind, PushOutcome, WorkQueue};
use crate::shard::{
    DirLock, DirMergeReport, EvictionPolicy, ShardLoadReport, ShardedStore, LOCK_TIMEOUT,
};
use crate::telemetry::{MetricsSnapshot, Telemetry};
use iolb_autotune::engine::tune_with_store;
use iolb_autotune::plan::{self, algo_candidates};
use iolb_core::optimality::TileKind;
use iolb_core::shapes::ConvShape;
use iolb_dataflow::config::ScheduleConfig;
use iolb_gpusim::DeviceSpec;
use iolb_records::RecordStore;
use std::collections::{BTreeMap, BTreeSet};
use std::io::Write;
use std::path::Path;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// Service-wide knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Measurement budget of each per-workload tuning run (speculative
    /// and session-inline alike — they must match for replay to be
    /// exact).
    pub budget_per_workload: usize,
    /// Total *fresh* (simulator-touching) measurements the speculative
    /// path may spend; once exhausted, pending background queue entries
    /// are dropped (batch jobs survive: a session is blocked on them).
    /// A **soft** cap: it is checked before each claim, not mid-run
    /// (clamping a run would change its trajectory and break replay),
    /// so concurrent workers can overshoot by up to
    /// `workers × budget_per_workload`. Session requests are user work
    /// and never budget-limited.
    pub background_budget: usize,
    /// Background workers spawned onto the persistent pool per
    /// [`TuningService::kick`]. `0` disables background tuning; the
    /// queue then drains only via [`TuningService::drain`] or waiting
    /// sessions.
    pub workers: usize,
    /// Whether registering a network also enqueues shape-perturbation
    /// neighbors of its layers (at lower priority).
    pub speculate_neighbors: bool,
    /// Completed sessions ("served networks") after which a
    /// perturbation kind that was enqueued but never hit stops being
    /// enqueued. See the module docs on speculation telemetry.
    pub speculation_probation: usize,
    /// How long directory writers ([`TuningService::save`],
    /// [`TuningService::sync_dir`], the daemon's startup lock) wait for
    /// the shard directory's advisory [`DirLock`] before failing with a
    /// typed [`crate::shard::LockError::Timeout`].
    pub lock_timeout: Duration,
    /// Tuner seed shared by every per-workload run.
    pub seed: u64,
    /// Anchor floor of the store's secondary index
    /// ([`iolb_autotune::plan::anchor_dim`]): dimensions at or below it
    /// stay exact, larger ones bucket to the next power of two.
    pub anchor_floor: usize,
    /// The anchored-transfer gap bound, in permille (an integer so the
    /// config stays `Eq`): a transferred config is served as a
    /// zero-measurement anchored hit only when the analytic
    /// `Q_model / Q_lower` gate ([`crate::queue::transfer_admissible`])
    /// proves it within `transfer_gap_permille / 1000` of the target's
    /// I/O lower bound. Transfers outside the bound are served
    /// provisionally with a background re-tune. `1000` (ratio 1.0)
    /// demands the provable optimum and in practice re-tunes everything.
    pub transfer_gap_permille: u32,
}

impl ServiceConfig {
    /// The transfer gate's gap bound as a ratio.
    pub fn transfer_gap_bound(&self) -> f64 {
        self.transfer_gap_permille as f64 / 1000.0
    }
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            budget_per_workload: 32,
            background_budget: 100_000,
            workers: 2,
            speculate_neighbors: true,
            speculation_probation: 8,
            lock_timeout: LOCK_TIMEOUT,
            seed: 7,
            anchor_floor: iolb_autotune::plan::ANCHOR_FLOOR,
            transfer_gap_permille: 2000,
        }
    }
}

/// Where a [`ServeResult`] came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeSource {
    /// The shard already held records for the workload: zero work.
    /// Duplicate requests within one session also report this — their
    /// result replays from the record their representative produced.
    ShardHit,
    /// A background worker (or another session) was tuning the workload;
    /// the session blocked until it finished and took its result.
    Stolen,
    /// The waiting session tuned the workload on its own thread.
    /// `cancelled_speculative` reports whether a pending background
    /// queue entry for the same workload was absorbed into the session
    /// (the speculative duplicate).
    Inline { cancelled_speculative: bool },
    /// An exact miss answered from the workload's anchor bucket: a
    /// bucket-mate's tuned config, re-costed on the requested shape by
    /// one deterministic simulator evaluation — zero fresh tuning
    /// measurements. `retune` reports whether the analytic gate could
    /// *not* prove the transfer within the configured gap bound, so the
    /// result is provisional and a background re-tune was enqueued at
    /// [`JobTier::Transfer`].
    Anchored { retune: bool },
}

/// Outcome of one served request.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeResult {
    /// Best known configuration for the workload.
    pub config: ScheduleConfig,
    /// Its measured cost (ms), bit-identical to what an eager
    /// store-backed tuning run measures.
    pub cost_ms: f64,
    pub source: ServeSource,
    /// Simulator invocations this request itself triggered (0 for hits
    /// and steals).
    pub fresh_measurements: usize,
    /// Store replays this request itself used.
    pub cache_hits: usize,
    /// Whether this result is for a **fused chain** workload — i.e. a
    /// fused request that passed the analytic gate. `false` for bare
    /// convs and for fused requests the gate rewrote to their per-layer
    /// fallback (whose `cost_ms` is then the conv-only time).
    pub fused: bool,
}

/// Per-perturbation-kind speculation telemetry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KindStats {
    /// Neighbor jobs of this kind enqueued by registration.
    pub enqueued: usize,
    /// Neighbor jobs of this kind tuned to completion in the background.
    pub tuned: usize,
    /// Predictions that came true: a client requested a workload this
    /// kind speculated (replayed from a speculatively-tuned record, or
    /// promoted out of the queue into a client batch).
    pub hits: usize,
}

/// Monotonic counters describing service activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Layer workloads enqueued by registration.
    pub enqueued: usize,
    /// Shape-perturbation neighbors enqueued by registration.
    pub speculative_enqueued: usize,
    /// Queue jobs created (or promoted) on behalf of batch sessions.
    pub batch_enqueued: usize,
    /// Jobs tuned by the background path (workers or [`TuningService::drain`]).
    pub background_tuned: usize,
    /// Workloads tuned on a waiting session's thread.
    pub inline_tuned: usize,
    /// Requests answered instantly from the shards (including duplicate
    /// requests deduplicated within one session).
    pub shard_hits: usize,
    /// Requests that waited for an in-flight job someone else ran.
    pub stolen: usize,
    /// Exact misses answered from the anchor bucket (provisional serves
    /// included): zero fresh tuning measurements each.
    pub anchored_hits: usize,
    /// Anchored serves the analytic gate could not prove within the gap
    /// bound: served provisionally with a background re-tune enqueued.
    pub transfer_retunes: usize,
    /// Queue jobs created (or promoted) at the transfer re-tune tier.
    pub transfer_enqueued: usize,
    /// Pending background jobs absorbed into a session because a client
    /// requested the same workload.
    pub cancelled_speculative: usize,
    /// Pending background jobs dropped when the budget ran out.
    pub budget_dropped: usize,
    /// Total simulator invocations across background and session tuning.
    pub fresh_measurements: usize,
    /// Total store replays across background and session tuning.
    pub cache_hits: usize,
    /// Workloads that turned out to have no measurable configuration.
    pub infeasible: usize,
    /// Batch sessions submitted.
    pub batch_groups: usize,
    /// Requests across all batch sessions.
    pub batch_requests: usize,
    /// Requests that deduplicated onto another request in their session.
    pub batch_deduped: usize,
    /// Completed sessions (the "served networks" clock the speculation
    /// probation runs on).
    pub networks_served: usize,
    /// Unique fused chains that passed the analytic fusion gate at
    /// session submit (mirrors the `iolb_fused_blocks_total` metric).
    pub fused_blocks: usize,
    /// Unique fused chains the gate rewrote to their per-layer fallback
    /// (mirrors `iolb_fusion_fallbacks_total`).
    pub fusion_fallbacks: usize,
    /// Per-perturbation-kind speculation telemetry, indexed by
    /// [`PerturbationKind::index`].
    pub speculation: [KindStats; 4],
}

impl ServiceStats {
    /// Telemetry of one perturbation kind.
    pub fn speculation_of(&self, kind: PerturbationKind) -> KindStats {
        self.speculation[kind.index()]
    }

    /// Applies `f` to every counter of `self`, paired with the same
    /// counter of `other` — one field list shared by
    /// [`saturating_delta`](Self::saturating_delta) and
    /// [`saturating_add`](Self::saturating_add), so the two can never
    /// drift when a counter is added.
    fn zip_counters(&mut self, other: &ServiceStats, f: &impl Fn(&mut usize, usize)) {
        f(&mut self.enqueued, other.enqueued);
        f(&mut self.speculative_enqueued, other.speculative_enqueued);
        f(&mut self.batch_enqueued, other.batch_enqueued);
        f(&mut self.background_tuned, other.background_tuned);
        f(&mut self.inline_tuned, other.inline_tuned);
        f(&mut self.shard_hits, other.shard_hits);
        f(&mut self.stolen, other.stolen);
        f(&mut self.anchored_hits, other.anchored_hits);
        f(&mut self.transfer_retunes, other.transfer_retunes);
        f(&mut self.transfer_enqueued, other.transfer_enqueued);
        f(&mut self.cancelled_speculative, other.cancelled_speculative);
        f(&mut self.budget_dropped, other.budget_dropped);
        f(&mut self.fresh_measurements, other.fresh_measurements);
        f(&mut self.cache_hits, other.cache_hits);
        f(&mut self.infeasible, other.infeasible);
        f(&mut self.batch_groups, other.batch_groups);
        f(&mut self.batch_requests, other.batch_requests);
        f(&mut self.batch_deduped, other.batch_deduped);
        f(&mut self.networks_served, other.networks_served);
        f(&mut self.fused_blocks, other.fused_blocks);
        f(&mut self.fusion_fallbacks, other.fusion_fallbacks);
        for kind in PerturbationKind::ALL {
            let at = kind.index();
            f(&mut self.speculation[at].enqueued, other.speculation[at].enqueued);
            f(&mut self.speculation[at].tuned, other.speculation[at].tuned);
            f(&mut self.speculation[at].hits, other.speculation[at].hits);
        }
    }

    /// Counter-wise `self - baseline` (saturating): what this process
    /// contributed since `baseline` was captured. Used by
    /// [`TuningService::sync_dir`] to merge telemetry additively across
    /// processes instead of last-writer-wins.
    pub fn saturating_delta(mut self, baseline: &ServiceStats) -> ServiceStats {
        self.zip_counters(baseline, &|mine, theirs| *mine = mine.saturating_sub(theirs));
        self
    }

    /// Counter-wise `self + other` (saturating).
    pub fn saturating_add(mut self, other: &ServiceStats) -> ServiceStats {
        self.zip_counters(other, &|mine, theirs| *mine = mine.saturating_add(theirs));
        self
    }
}

/// File name of the stats sidecar a [`TuningService::save`] /
/// [`TuningService::sync_dir`] writes next to the manifest, so
/// `tune-cache serve-stats` can report queue depth, remaining budget and
/// speculation telemetry from a directory instead of only in-process.
pub const STATS_FILE: &str = "service-stats.tsv";

/// Version tag of the stats sidecar. Foreign versions are ignored
/// whole (stale telemetry is worse than none).
pub const STATS_VERSION: u32 = 1;

/// A point-in-time export of a service's observable state: the counters
/// plus the two live numbers ([`queue_len`](TuningService::queue_len),
/// [`budget_left`](TuningService::budget_left)) that previously were
/// visible only in-process.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceSnapshot {
    pub stats: ServiceStats,
    pub queue_len: usize,
    pub budget_left: usize,
}

impl ServiceSnapshot {
    /// Canonical TSV serialization (deterministic field order).
    pub fn to_tsv(&self) -> String {
        let s = &self.stats;
        let mut out = format!("# iolb-service stats v{STATS_VERSION}\n");
        for (key, value) in [
            ("enqueued", s.enqueued),
            ("speculative_enqueued", s.speculative_enqueued),
            ("batch_enqueued", s.batch_enqueued),
            ("background_tuned", s.background_tuned),
            ("inline_tuned", s.inline_tuned),
            ("shard_hits", s.shard_hits),
            ("stolen", s.stolen),
            ("anchored_hits", s.anchored_hits),
            ("transfer_retunes", s.transfer_retunes),
            ("transfer_enqueued", s.transfer_enqueued),
            ("cancelled_speculative", s.cancelled_speculative),
            ("budget_dropped", s.budget_dropped),
            ("fresh_measurements", s.fresh_measurements),
            ("cache_hits", s.cache_hits),
            ("infeasible", s.infeasible),
            ("batch_groups", s.batch_groups),
            ("batch_requests", s.batch_requests),
            ("batch_deduped", s.batch_deduped),
            ("networks_served", s.networks_served),
            ("fused_blocks", s.fused_blocks),
            ("fusion_fallbacks", s.fusion_fallbacks),
            ("queue_len", self.queue_len),
            ("budget_left", self.budget_left),
        ] {
            out.push_str(&format!("{key}\t{value}\n"));
        }
        for kind in PerturbationKind::ALL {
            let k = s.speculation[kind.index()];
            out.push_str(&format!(
                "speculation\t{}\t{}\t{}\t{}\n",
                kind.label(),
                k.enqueued,
                k.tuned,
                k.hits
            ));
        }
        out
    }

    /// Parses the sidecar, tolerantly: unknown keys are skipped, missing
    /// keys stay zero. Returns `None` for a foreign version header.
    pub fn from_tsv(text: &str) -> Option<Self> {
        let mut snap = Self::default();
        for line in text.lines() {
            let line = line.trim_end();
            if let Some(version) = line.strip_prefix("# iolb-service stats v") {
                if version.trim().parse::<u32>() != Ok(STATS_VERSION) {
                    return None;
                }
                continue;
            }
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let fields: Vec<&str> = line.split('\t').collect();
            match fields.as_slice() {
                [key, value] => {
                    let Ok(v) = value.parse::<usize>() else { continue };
                    let s = &mut snap.stats;
                    match *key {
                        "enqueued" => s.enqueued = v,
                        "speculative_enqueued" => s.speculative_enqueued = v,
                        "batch_enqueued" => s.batch_enqueued = v,
                        "background_tuned" => s.background_tuned = v,
                        "inline_tuned" => s.inline_tuned = v,
                        "shard_hits" => s.shard_hits = v,
                        "stolen" => s.stolen = v,
                        "anchored_hits" => s.anchored_hits = v,
                        "transfer_retunes" => s.transfer_retunes = v,
                        "transfer_enqueued" => s.transfer_enqueued = v,
                        "cancelled_speculative" => s.cancelled_speculative = v,
                        "budget_dropped" => s.budget_dropped = v,
                        "fresh_measurements" => s.fresh_measurements = v,
                        "cache_hits" => s.cache_hits = v,
                        "infeasible" => s.infeasible = v,
                        "batch_groups" => s.batch_groups = v,
                        "batch_requests" => s.batch_requests = v,
                        "batch_deduped" => s.batch_deduped = v,
                        "networks_served" => s.networks_served = v,
                        "fused_blocks" => s.fused_blocks = v,
                        "fusion_fallbacks" => s.fusion_fallbacks = v,
                        "queue_len" => snap.queue_len = v,
                        "budget_left" => snap.budget_left = v,
                        _ => {}
                    }
                }
                ["speculation", label, enqueued, tuned, hits] => {
                    let Some(kind) = PerturbationKind::from_label(label) else { continue };
                    let parse = |t: &str| t.parse::<usize>().unwrap_or(0);
                    snap.stats.speculation[kind.index()] = KindStats {
                        enqueued: parse(enqueued),
                        tuned: parse(tuned),
                        hits: parse(hits),
                    };
                }
                _ => {}
            }
        }
        Some(snap)
    }

    /// Writes the sidecar into a shard directory (atomically).
    pub fn save(&self, dir: impl AsRef<Path>) -> std::io::Result<()> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let tmp = dir.join(format!("{STATS_FILE}.tmp.{}", std::process::id()));
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(self.to_tsv().as_bytes())?;
            f.sync_all()?;
        }
        std::fs::rename(tmp, dir.join(STATS_FILE))
    }

    /// Loads the sidecar from a shard directory, if one exists and has
    /// the current version.
    pub fn load(dir: impl AsRef<Path>) -> std::io::Result<Option<Self>> {
        let path = dir.as_ref().join(STATS_FILE);
        if !path.exists() {
            return Ok(None);
        }
        Ok(Self::from_tsv(&std::fs::read_to_string(path)?))
    }
}

pub(crate) struct State {
    pub(crate) shards: ShardedStore,
    pub(crate) queue: WorkQueue,
    /// Fingerprints currently being tuned (by a worker or a waiting
    /// session). At most one tuner per workload, ever.
    pub(crate) in_flight: BTreeSet<String>,
    /// Workloads that yielded no measurable configuration — remembered
    /// so neither waiters nor workers retry them forever.
    pub(crate) infeasible: BTreeSet<String>,
    /// Workloads tuned from neighbor-speculation jobs whose prediction
    /// has not (yet) been confirmed by a client request, by kind.
    pub(crate) speculative_origin: BTreeMap<String, PerturbationKind>,
    pub(crate) budget_left: usize,
    pub(crate) next_group: u64,
    pub(crate) stats: ServiceStats,
    /// The counters as of the last [`TuningService::sync_dir`] (or the
    /// values restored at open): `stats - last_synced` is what this
    /// process still owes the shared sidecar.
    pub(crate) last_synced: ServiceStats,
}

impl State {
    /// Re-books a promoted queue entry's counters under its new tier,
    /// and counts the speculation hit when a neighbor prediction is
    /// absorbed into a *client* batch (the guess came true before the
    /// neighbor was even tuned). Shared by every promotion site so the
    /// stats cannot drift between the registration and session paths.
    pub(crate) fn rebook_promotion(
        &mut self,
        from: JobTier,
        to: JobTier,
        perturbation: Option<PerturbationKind>,
    ) {
        match from {
            JobTier::Batch { .. } => self.stats.batch_enqueued -= 1,
            JobTier::Transfer => self.stats.transfer_enqueued -= 1,
            JobTier::Registered => self.stats.enqueued -= 1,
            JobTier::Neighbor => self.stats.speculative_enqueued -= 1,
        }
        match to {
            JobTier::Batch { .. } => self.stats.batch_enqueued += 1,
            JobTier::Transfer => self.stats.transfer_enqueued += 1,
            JobTier::Registered => self.stats.enqueued += 1,
            JobTier::Neighbor => self.stats.speculative_enqueued += 1,
        }
        if matches!(to, JobTier::Batch { .. }) {
            if let Some(kind) = perturbation {
                self.stats.speculation[kind.index()].hits += 1;
            }
        }
    }
}

pub(crate) struct Inner {
    pub(crate) state: Mutex<State>,
    /// Signalled whenever the queue, the in-flight set or the shards
    /// change: waiting sessions and `drain` re-check on it.
    pub(crate) changed: Condvar,
    pub(crate) config: ServiceConfig,
    /// Latency histograms and counters for the serving paths. Purely
    /// observational: nothing here ever feeds a tuning trajectory.
    pub(crate) telemetry: Telemetry,
}

/// The speculative background-tuning service. Cheap to clone between
/// threads (`Arc` inside); all state is interior.
#[derive(Clone)]
pub struct TuningService {
    pub(crate) inner: Arc<Inner>,
}

impl TuningService {
    /// A service over an existing sharded store. The store's anchor
    /// index is (re)bucketed under the service's configured floor.
    pub fn new(mut shards: ShardedStore, config: ServiceConfig) -> Self {
        shards.set_anchor_floor(config.anchor_floor);
        let budget_left = config.background_budget;
        Self {
            inner: Arc::new(Inner {
                state: Mutex::new(State {
                    shards,
                    queue: WorkQueue::new(),
                    in_flight: BTreeSet::new(),
                    infeasible: BTreeSet::new(),
                    speculative_origin: BTreeMap::new(),
                    budget_left,
                    next_group: 0,
                    stats: ServiceStats::default(),
                    last_synced: ServiceStats::default(),
                }),
                changed: Condvar::new(),
                config,
                telemetry: Telemetry::new(),
            }),
        }
    }

    /// Opens (or initializes) a service over a shard directory. The
    /// stats sidecar, if any, is folded into the live counters, so
    /// telemetry — speculation hit rates, probation retirement, the
    /// served-network clock — survives a restart instead of resetting
    /// every time a daemon or `tune-net` process reopens the directory.
    /// Queue depth and remaining budget are *not* restored: pending work
    /// died with the previous process and the budget is per-process by
    /// design.
    pub fn open(
        dir: impl AsRef<Path>,
        config: ServiceConfig,
    ) -> std::io::Result<(Self, ShardLoadReport)> {
        let dir = dir.as_ref();
        let (shards, report) = ShardedStore::load(dir)?;
        let service = Self::new(shards, config);
        if let Some(snapshot) = ServiceSnapshot::load(dir)? {
            service.adopt_stats(snapshot.stats);
        }
        Ok((service, report))
    }

    /// Replaces the live counters with previously persisted ones (the
    /// restart-restore path of [`open`](Self::open) and the daemon).
    /// The restored values also become the sync baseline: a later
    /// [`sync_dir`](Self::sync_dir) contributes only what *this*
    /// process added on top of them.
    pub(crate) fn adopt_stats(&self, stats: ServiceStats) {
        let mut st = self.lock();
        st.stats = stats;
        st.last_synced = stats;
    }

    pub fn config(&self) -> ServiceConfig {
        self.inner.config
    }

    pub(crate) fn lock(&self) -> MutexGuard<'_, State> {
        self.inner.state.lock().expect("service state poisoned")
    }

    /// Current counters (a snapshot).
    pub fn stats(&self) -> ServiceStats {
        self.lock().stats
    }

    /// Pending (not yet claimed) jobs.
    pub fn queue_len(&self) -> usize {
        self.lock().queue.len()
    }

    /// Remaining background fresh-measurement budget.
    pub fn budget_left(&self) -> usize {
        self.lock().budget_left
    }

    /// The full observable state in one consistent snapshot.
    pub fn snapshot(&self) -> ServiceSnapshot {
        let st = self.lock();
        ServiceSnapshot { stats: st.stats, queue_len: st.queue.len(), budget_left: st.budget_left }
    }

    /// The service's metrics registry (shared with the daemon when this
    /// service is served over a socket).
    pub fn telemetry(&self) -> &Telemetry {
        &self.inner.telemetry
    }

    /// A point-in-time copy of the metrics registry — what the v3 wire
    /// `Stats` response carries beside the counter snapshot.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.inner.telemetry.snapshot()
    }

    /// A deep copy of the shards. Held lock time is the clone only, so
    /// expensive follow-ups (merging, disk writes) never stall serving.
    fn snapshot_shards(&self) -> ShardedStore {
        self.lock().shards.clone()
    }

    /// Cross-shard merge-out of everything the service knows (a snapshot).
    pub fn merged_store(&self) -> RecordStore {
        self.snapshot_shards().merged()
    }

    /// Persists the shards (and LRU metadata) plus the stats sidecar to
    /// a directory, under the directory's advisory [`DirLock`].
    /// **Overwrites** the directory's records with this service's view;
    /// use [`sync_dir`](Self::sync_dir) when other processes write the
    /// same directory. The disk write (including fsyncs) happens on a
    /// snapshot, outside the service lock — concurrent serving stays
    /// instant.
    pub fn save(&self, dir: impl AsRef<Path>) -> std::io::Result<()> {
        let dir = dir.as_ref();
        let (shards, snapshot) = {
            let st = self.lock();
            (
                st.shards.clone(),
                ServiceSnapshot {
                    stats: st.stats,
                    queue_len: st.queue.len(),
                    budget_left: st.budget_left,
                },
            )
        };
        let _lock = DirLock::acquire(dir, self.inner.config.lock_timeout)?;
        shards.save(dir)?;
        snapshot.save(dir)
    }

    /// Cross-process persistence: under one hold of the directory's
    /// advisory lock, merges this service's records into the directory
    /// (union semantics — nothing any other process wrote is lost) and
    /// folds this process's counter *deltas since its last sync* into
    /// the stats sidecar. Counters merge additively, so N concurrent
    /// `tune-net` processes each contribute their telemetry instead of
    /// the last writer erasing the others' — which matters now that
    /// [`open`](Self::open) restores the sidecar into live state.
    /// (Queue depth and remaining budget are point-in-time gauges, not
    /// counters; they stay last-writer.) Mixing the overwrite-style
    /// [`save`](Self::save) with `sync_dir` on one directory can double
    /// count telemetry — pick one persistence style per directory, as
    /// with the record files themselves.
    pub fn sync_dir(&self, dir: impl AsRef<Path>) -> std::io::Result<DirMergeReport> {
        let dir = dir.as_ref();
        let shards = self.lock().shards.clone();
        let _lock = DirLock::acquire(dir, self.inner.config.lock_timeout)?;
        let report = shards.merge_into_dir_locked(dir)?;
        let disk = ServiceSnapshot::load(dir)?.map(|s| s.stats).unwrap_or_default();
        let (snapshot, previous_baseline) = {
            let mut st = self.lock();
            let delta = st.stats.saturating_delta(&st.last_synced);
            let previous = st.last_synced;
            st.last_synced = st.stats;
            (
                ServiceSnapshot {
                    stats: disk.saturating_add(&delta),
                    queue_len: st.queue.len(),
                    budget_left: st.budget_left,
                },
                previous,
            )
        };
        if let Err(e) = snapshot.save(dir) {
            // The delta never landed: roll the baseline back so the next
            // sync re-contributes it.
            self.lock().last_synced = previous_baseline;
            return Err(e);
        }
        Ok(report)
    }

    /// Applies an eviction policy to the shards now.
    pub fn evict(&self, policy: &EvictionPolicy) -> usize {
        self.lock().shards.evict(policy)
    }

    /// Enqueues one workload for background tuning (deduplicated against
    /// the shards, the queue, in-flight work and known-infeasible
    /// workloads). `speculative` enqueues at neighbor priority. Returns
    /// whether the queue grew. Call [`kick`](Self::kick) afterwards, or
    /// let [`drain`](Self::drain) / waiting sessions pick it up.
    pub fn enqueue(
        &self,
        shape: &ConvShape,
        kind: TileKind,
        device: &DeviceSpec,
        speculative: bool,
    ) -> bool {
        let tier = if speculative { JobTier::Neighbor } else { JobTier::Registered };
        let job = Job {
            shape: *shape,
            kind,
            epilogue: iolb_core::epilogue::Epilogue::None,
            device: device.clone(),
            tier,
            perturbation: None,
            enqueued_at: None,
        };
        // The priority is a pure function of the workload: compute it
        // before taking the lock (it enumerates tile spaces).
        let gap = crate::queue::io_gap(shape, kind, device);
        let grew = Self::enqueue_locked(&mut self.lock(), job, gap);
        if grew {
            self.inner.changed.notify_all();
        }
        grew
    }

    pub(crate) fn enqueue_locked(st: &mut State, job: Job, gap: f64) -> bool {
        let fingerprint = job.fingerprint();
        if !st.shards.records(&job.workload()).is_empty()
            || st.in_flight.contains(&fingerprint)
            || st.infeasible.contains(&fingerprint)
        {
            return false;
        }
        let tier = job.tier;
        let perturbation = job.perturbation;
        match st.queue.push(job, gap) {
            PushOutcome::Added => {
                match tier {
                    JobTier::Batch { .. } => st.stats.batch_enqueued += 1,
                    JobTier::Transfer => st.stats.transfer_enqueued += 1,
                    JobTier::Registered => st.stats.enqueued += 1,
                    JobTier::Neighbor => {
                        st.stats.speculative_enqueued += 1;
                        if let Some(kind) = perturbation {
                            st.stats.speculation[kind.index()].enqueued += 1;
                        }
                    }
                }
                true
            }
            PushOutcome::Promoted { from, perturbation: displaced } => {
                st.rebook_promotion(from, tier, displaced);
                false
            }
            PushOutcome::AlreadyPending => false,
        }
    }

    /// Whether registration should still speculate along a perturbation
    /// axis: after the probation window, kinds that were tried but never
    /// predicted a real request stop being enqueued.
    fn speculation_live(stats: &ServiceStats, probation: usize, kind: PerturbationKind) -> bool {
        let k = stats.speculation[kind.index()];
        stats.networks_served < probation || k.enqueued == 0 || k.hits > 0
    }

    /// The queue-priority weight of a perturbation kind: its smoothed
    /// hit *rate*, `(1 + hits) / (1 + enqueued)`. A fresh kind starts at
    /// weight 1 (full analytic priority); every unconfirmed enqueue
    /// shrinks the weight and every confirmed prediction restores it, so
    /// neighbor jobs drain in `rate × (Q_model / Q_lower)` order — the
    /// service spends its background budget along the perturbation axes
    /// its traffic actually explores, continuously, not only through the
    /// binary probation cutoff. Deterministic: the weight is a pure
    /// function of the counters snapshotted at registration, and the
    /// queue still tie-breaks on the workload fingerprint.
    pub fn speculation_weight(stats: &ServiceStats, kind: PerturbationKind) -> f64 {
        let k = stats.speculation[kind.index()];
        (1 + k.hits) as f64 / (1 + k.enqueued) as f64
    }

    /// Registers a network on a device: enqueues every layer × algorithm
    /// candidate (and, if configured, shape-perturbation neighbors at
    /// lower priority), then kicks the background workers. Returns how
    /// many jobs the queue gained. A layer that was already pending as
    /// some earlier layer's perturbation neighbor is promoted to
    /// registered priority. Perturbation kinds whose speculation
    /// probation expired hitless are skipped (see the module docs).
    pub fn register_network(&self, net: &impl register::LayerSource, device: &DeviceSpec) -> usize {
        // Candidate jobs are cheap to enumerate; do it without the lock
        // (the probation check reads a stats snapshot).
        let (probation, stats_snapshot) = (self.inner.config.speculation_probation, self.stats());
        let mut candidates: Vec<Job> = Vec::new();
        let mut stage =
            |shape: ConvShape, tier: JobTier, perturbation: Option<PerturbationKind>| {
                for (kind, _) in algo_candidates(&shape) {
                    candidates.push(Job {
                        shape,
                        kind,
                        epilogue: iolb_core::epilogue::Epilogue::None,
                        device: device.clone(),
                        tier,
                        perturbation,
                        enqueued_at: None,
                    });
                }
            };
        for layer in net.layer_shapes() {
            stage(*layer, JobTier::Registered, None);
            if self.inner.config.speculate_neighbors {
                for (neighbor, kind) in shape_perturbations(layer) {
                    if Self::speculation_live(&stats_snapshot, probation, kind) {
                        stage(neighbor, JobTier::Neighbor, Some(kind));
                    }
                }
            }
        }
        // Snapshot what the service already knows so re-registration
        // (the supported dedupe path) skips the priority computation —
        // io_gap runs a tile-space enumeration per workload. The
        // snapshot is advisory; enqueue_locked re-checks authoritatively.
        let (settled, pending_rank) = {
            let st = self.lock();
            let mut settled: BTreeSet<String> = st.in_flight.clone();
            settled.extend(st.infeasible.iter().cloned());
            for (_, shard) in st.shards.shards() {
                settled.extend(shard.fingerprints().map(str::to_string));
            }
            let pending_rank: BTreeMap<String, u8> =
                st.queue.pending().map(|(fp, tier)| (fp.to_string(), tier.rank())).collect();
            (settled, pending_rank)
        };
        // Priorities for the jobs that actually need them, lock-free:
        // io_gap is a pure function of the workload, and a VGG-scale
        // registration must not stall concurrent serves. Neighbor jobs
        // scale their analytic gap by the kind's learned hit rate.
        let jobs: Vec<(Job, f64)> = candidates
            .into_iter()
            .filter_map(|job| {
                let fp = job.fingerprint();
                if settled.contains(&fp) {
                    return None;
                }
                if let Some(&rank) = pending_rank.get(&fp) {
                    // Pending at an equal-or-stronger tier: nothing to
                    // do. Still staged when this push would promote it.
                    if rank <= job.tier.rank() {
                        return None;
                    }
                }
                let mut gap = crate::queue::io_gap(&job.shape, job.kind, device);
                if let Some(kind) = job.perturbation {
                    gap *= Self::speculation_weight(&stats_snapshot, kind);
                }
                Some((job, gap))
            })
            .collect();
        let mut added = 0;
        {
            let mut st = self.lock();
            for (job, gap) in jobs {
                added += usize::from(Self::enqueue_locked(&mut st, job, gap));
            }
        }
        if added > 0 {
            self.inner.changed.notify_all();
            self.kick();
        }
        added
    }

    /// Spawns up to `config.workers` background workers onto the
    /// persistent pool. Each worker claims queued jobs until the queue
    /// is empty (or only budget-dropped work remains) and then exits, so
    /// kicking an idle service is free and kicking repeatedly is safe.
    ///
    /// On hosts whose pool has zero workers (single core) this is a
    /// no-op rather than an inline drain: `rayon::spawn` would run the
    /// worker loop on the calling thread, turning "register and move
    /// on" into "block until the whole queue is tuned". There is no
    /// background parallelism to exploit there anyway — the queue
    /// drains via [`drain`](Self::drain) and waiting sessions instead.
    pub fn kick(&self) {
        if rayon::pool_thread_count() == 0 || self.lock().queue.is_empty() {
            return;
        }
        for _ in 0..self.inner.config.workers {
            let service = self.clone();
            rayon::spawn(move || while service.claim_and_run_one() {});
        }
    }

    /// Blocks until the queue is empty and nothing is in flight,
    /// *helping* with queued jobs on the calling thread while it waits
    /// (so a drain completes even with `workers == 0`, and on hosts
    /// whose pool has no threads). Speculative budget accounting applies
    /// exactly as it does to workers.
    pub fn drain(&self) {
        loop {
            if self.claim_and_run_one() {
                continue;
            }
            // Nothing claimable: either truly done, or background jobs
            // are still in flight — wait for them to land, then re-check
            // (a worker may have exposed nothing new, or a waiter may
            // have enqueued more work meanwhile).
            let mut st = self.lock();
            loop {
                if !st.queue.is_empty() {
                    break; // claimable again
                }
                if st.in_flight.is_empty() {
                    return;
                }
                st = self.inner.changed.wait(st).expect("service state poisoned");
            }
        }
    }

    /// Claims the highest-priority runnable job and tunes it on the
    /// calling thread. Returns `false` when nothing was claimable
    /// (empty queue, or only budget-dropped background work). Batch-tier
    /// jobs are user work: they survive budget exhaustion and are never
    /// billed to the background budget.
    fn claim_and_run_one(&self) -> bool {
        let claimed = {
            let mut st = self.lock();
            if st.budget_left == 0 {
                let dropped = st.queue.clear_droppable();
                if dropped > 0 {
                    st.stats.budget_dropped += dropped;
                    self.inner.changed.notify_all();
                }
            }
            loop {
                let Some(job) = st.queue.pop_first() else { break None };
                let fingerprint = job.fingerprint();
                // Registration dedupes, but a workload can be satisfied
                // (or fail) between enqueue and claim; skip stale entries.
                if !st.shards.records(&job.workload()).is_empty()
                    || st.in_flight.contains(&fingerprint)
                    || st.infeasible.contains(&fingerprint)
                {
                    continue;
                }
                st.in_flight.insert(fingerprint.clone());
                break Some((job, fingerprint));
            }
        };
        let Some((job, fingerprint)) = claimed else {
            return false;
        };
        let telemetry = &self.inner.telemetry;
        if let Some(at) = job.enqueued_at {
            telemetry.observe_since("iolb_queue_wait_us", at);
        }
        let started = std::time::Instant::now();
        let outcome = self.run_guarded(&job, &fingerprint);
        telemetry.observe_since(&format!("iolb_drain_{}_us", job.tier.label()), started);
        crate::log_event!(
            Debug,
            "queue.drained",
            tier = job.tier.label(),
            fingerprint = fingerprint,
            tuned = u8::from(outcome.is_some()),
        );
        let mut st = self.lock();
        st.in_flight.remove(&fingerprint);
        match outcome {
            Some((out, private)) => {
                st.stats.background_tuned += 1;
                st.stats.fresh_measurements += out.fresh_measurements;
                st.stats.cache_hits += out.cache_hits;
                if job.tier.droppable() {
                    st.budget_left = st.budget_left.saturating_sub(out.fresh_measurements);
                }
                if let (JobTier::Neighbor, Some(kind)) = (job.tier, job.perturbation) {
                    st.stats.speculation[kind.index()].tuned += 1;
                    st.speculative_origin.insert(fingerprint, kind);
                }
                st.shards.merge_flat(private);
            }
            None => {
                st.stats.infeasible += 1;
                st.infeasible.insert(fingerprint);
            }
        }
        drop(st);
        self.inner.changed.notify_all();
        true
    }

    /// Runs one hermetic tuning with panic cleanup: if the tuner
    /// panics, the fingerprint is removed from the in-flight set and
    /// waiters are woken *before* the panic resumes — otherwise every
    /// later session waiting on the workload would block forever on a
    /// job that no longer exists. (On the background path the resumed
    /// panic is then caught by the pool's worker loop, which survives.
    /// Waiting sessions additionally re-arm jobs they find neither
    /// queued, in flight, nor finished.)
    fn run_guarded(
        &self,
        job: &Job,
        fingerprint: &str,
    ) -> Option<(iolb_autotune::StoreTuneResult, RecordStore)> {
        let config = self.inner.config;
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_hermetic_tuning(&config, job)
        })) {
            Ok(outcome) => outcome,
            Err(payload) => {
                let mut st = self.lock();
                st.in_flight.remove(fingerprint);
                drop(st);
                self.inner.changed.notify_all();
                std::panic::resume_unwind(payload);
            }
        }
    }

    /// Serves the best configuration for a single workload — the
    /// one-element [`session`](crate::session): shard hit, steal of an
    /// in-flight background job, or tune on this thread (absorbing any
    /// pending background duplicate into the request).
    ///
    /// Returns `None` only for workloads with no measurable
    /// configuration at all. The returned cost is bit-identical to what
    /// an eager [`tune_with_store`] run of the same workload measures.
    pub fn tune_or_wait(
        &self,
        shape: &ConvShape,
        kind: TileKind,
        device: &DeviceSpec,
    ) -> Option<ServeResult> {
        let requests = [crate::session::TuneRequest::bare(*shape, kind)];
        self.submit(&requests, device).wait().pop().expect("one result per request")
    }

    /// Serves a fused conv→epilogue chain — the one-element fused
    /// session. The analytic fusion gate runs inside
    /// [`submit`](Self::submit): a rejected chain is served as its bare
    /// conv (the result's `fused` flag reports which happened).
    pub fn tune_or_wait_fused(
        &self,
        shape: &ConvShape,
        kind: TileKind,
        epilogue: iolb_core::epilogue::Epilogue,
        device: &DeviceSpec,
    ) -> Option<ServeResult> {
        let requests = [crate::session::TuneRequest::fused(*shape, kind, epilogue)];
        self.submit(&requests, device).wait().pop().expect("one result per request")
    }
}

/// One hermetic per-workload tuning run: the canonical tuner setup
/// against a fresh private store. Pure function of `(workload, budget,
/// seed)` — the service's whole determinism contract reduces to this.
/// (A workload is only ever tuned when its shard holds no records — the
/// claim paths guarantee it under the lock — so there is nothing to
/// seed the private store with.) Session batches run the same setup
/// through [`iolb_autotune::engine::tune_batch`], which is this run
/// fanned across unique workloads.
fn run_hermetic_tuning(
    config: &ServiceConfig,
    job: &Job,
) -> Option<(iolb_autotune::StoreTuneResult, RecordStore)> {
    let mut private = RecordStore::new();
    let mut s = plan::tuner_setup_fused(
        &job.shape,
        job.kind,
        job.epilogue,
        &job.device,
        config.budget_per_workload,
        config.seed,
    );
    let out = tune_with_store(
        &s.space,
        &s.measurer,
        &mut s.model,
        &mut s.searcher,
        s.params,
        &mut private,
    )?;
    Some((out, private))
}

/// Minimal "network" view the service needs: just the layer shapes.
///
/// `iolb-cnn` sits *above* this crate (its inference timer calls into
/// the service), so the service cannot name `iolb_cnn::Network`
/// directly. Anything that exposes its conv-layer shapes — a network, a
/// slice of shapes, a single shape — registers via this trait;
/// `iolb-cnn` implements it for its `Network` type.
pub mod register {
    use iolb_core::shapes::ConvShape;

    /// Anything with conv layers to register.
    pub trait LayerSource {
        /// The conv-layer shapes, in order.
        fn layer_shapes(&self) -> Vec<&ConvShape>;
    }

    impl LayerSource for [ConvShape] {
        fn layer_shapes(&self) -> Vec<&ConvShape> {
            self.iter().collect()
        }
    }

    impl LayerSource for Vec<ConvShape> {
        fn layer_shapes(&self) -> Vec<&ConvShape> {
            self.iter().collect()
        }
    }

    impl LayerSource for ConvShape {
        fn layer_shapes(&self) -> Vec<&ConvShape> {
            vec![self]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device() -> DeviceSpec {
        DeviceSpec::v100()
    }

    fn small_config() -> ServiceConfig {
        ServiceConfig {
            budget_per_workload: 12,
            background_budget: 10_000,
            workers: 0, // tests drive the queue deterministically
            speculate_neighbors: false,
            ..ServiceConfig::default()
        }
    }

    // 1x1 layers keep algorithm candidates to `direct` only: fast tests.
    fn shapes() -> Vec<ConvShape> {
        vec![ConvShape::new(32, 14, 14, 16, 1, 1, 1, 0), ConvShape::new(16, 14, 14, 32, 1, 1, 1, 0)]
    }

    #[test]
    fn register_drain_then_hit() {
        let service = TuningService::new(ShardedStore::new(), small_config());
        let added = service.register_network(&shapes(), &device());
        assert_eq!(added, 2);
        assert_eq!(service.queue_len(), 2);
        service.drain();
        assert_eq!(service.queue_len(), 0);
        let stats = service.stats();
        assert_eq!(stats.background_tuned, 2);
        assert!(stats.fresh_measurements > 0);
        for shape in shapes() {
            let out = service.tune_or_wait(&shape, TileKind::Direct, &device()).unwrap();
            assert_eq!(out.source, ServeSource::ShardHit);
            assert_eq!(out.fresh_measurements, 0);
            assert!(out.cost_ms > 0.0);
        }
        assert_eq!(service.stats().shard_hits, 2);
        assert_eq!(
            service.stats().fresh_measurements,
            stats.fresh_measurements,
            "hits must not measure"
        );
    }

    #[test]
    fn drain_populates_queue_wait_and_drain_histograms() {
        let service = TuningService::new(ShardedStore::new(), small_config());
        service.register_network(&shapes(), &device());
        service.drain();
        let metrics = service.metrics();
        assert_eq!(
            metrics.histogram("iolb_queue_wait_us").unwrap().count(),
            2,
            "every drained job observes its queue wait"
        );
        assert_eq!(metrics.histogram("iolb_drain_registered_us").unwrap().count(), 2);
        assert!(
            metrics.histogram("iolb_drain_batch_us").is_none(),
            "no batch job ran, so no batch drain histogram exists"
        );
    }

    #[test]
    fn inline_tune_cancels_the_speculative_duplicate() {
        let service = TuningService::new(ShardedStore::new(), small_config());
        service.register_network(&shapes(), &device());
        let shape = shapes()[0];
        let out = service.tune_or_wait(&shape, TileKind::Direct, &device()).unwrap();
        assert_eq!(out.source, ServeSource::Inline { cancelled_speculative: true });
        assert!(out.fresh_measurements > 0);
        assert_eq!(service.stats().cancelled_speculative, 1);
        assert_eq!(service.queue_len(), 1, "only the other layer remains queued");
        // Serving the same workload again is a pure hit.
        let again = service.tune_or_wait(&shape, TileKind::Direct, &device()).unwrap();
        assert_eq!(again.source, ServeSource::ShardHit);
        assert_eq!(again.config, out.config);
        assert_eq!(again.cost_ms.to_bits(), out.cost_ms.to_bits());
    }

    #[test]
    fn anchored_misses_serve_from_the_bucket_with_zero_fresh_measurements() {
        // A generous gap bound: the in-bucket transfer is admissible.
        let config = ServiceConfig { transfer_gap_permille: 1_000_000, ..small_config() };
        let service = TuningService::new(ShardedStore::new(), config);
        let warm = ConvShape::new(32, 56, 56, 16, 1, 1, 1, 0);
        let warmed = service.tune_or_wait(&warm, TileKind::Direct, &device()).unwrap();
        let fresh_before = service.stats().fresh_measurements;
        // Same anchor bucket (52 and 56 both round to 64), no records.
        let jittered = ConvShape::new(32, 52, 52, 16, 1, 1, 1, 0);
        let out = service.tune_or_wait(&jittered, TileKind::Direct, &device()).unwrap();
        assert_eq!(out.source, ServeSource::Anchored { retune: false });
        assert_eq!(out.fresh_measurements, 0);
        assert_eq!(
            service.stats().fresh_measurements,
            fresh_before,
            "anchored serves never touch the tuner"
        );
        assert_eq!(
            out.config,
            warmed.config.project_onto(&jittered, TileKind::Direct),
            "the served config is the donor's, projected"
        );
        assert!(out.cost_ms > 0.0);
        let stats = service.stats();
        assert_eq!((stats.anchored_hits, stats.transfer_retunes), (1, 0));
        assert_eq!(service.queue_len(), 0, "an admissible transfer is final");
        assert_eq!(service.metrics().counter("iolb_anchor_hits_total"), Some(1));
        assert_eq!(service.metrics().counter("iolb_transfer_retunes_total"), None);
    }

    #[test]
    fn gate_failure_serves_provisionally_and_converges_to_the_exact_config() {
        // Gap bound 1.0 demands the provable optimum: the transfer is
        // served but flagged for a background re-tune.
        let config = ServiceConfig { transfer_gap_permille: 1000, ..small_config() };
        let service = TuningService::new(ShardedStore::new(), config);
        let warm = ConvShape::new(32, 56, 56, 16, 1, 1, 1, 0);
        service.tune_or_wait(&warm, TileKind::Direct, &device()).unwrap();
        let jittered = ConvShape::new(32, 52, 52, 16, 1, 1, 1, 0);
        let out = service.tune_or_wait(&jittered, TileKind::Direct, &device()).unwrap();
        assert_eq!(out.source, ServeSource::Anchored { retune: true });
        assert_eq!(out.fresh_measurements, 0);
        let stats = service.stats();
        assert_eq!((stats.anchored_hits, stats.transfer_retunes), (1, 1));
        assert_eq!(stats.transfer_enqueued, 1);
        assert_eq!(service.queue_len(), 1, "the re-tune waits at transfer tier");
        assert_eq!(service.metrics().counter("iolb_transfer_retunes_total"), Some(1));
        // Draining the transfer job converges the workload to the same
        // bits an eager tune of the jittered shape produces.
        service.drain();
        let again = service.tune_or_wait(&jittered, TileKind::Direct, &device()).unwrap();
        assert_eq!(again.source, ServeSource::ShardHit);
        let eager = TuningService::new(ShardedStore::new(), small_config())
            .tune_or_wait(&jittered, TileKind::Direct, &device())
            .unwrap();
        assert_eq!(again.config, eager.config, "re-tune must converge to the exact config");
        assert_eq!(again.cost_ms.to_bits(), eager.cost_ms.to_bits());
    }

    #[test]
    fn registration_dedupes_against_everything() {
        let service = TuningService::new(ShardedStore::new(), small_config());
        assert_eq!(service.register_network(&shapes(), &device()), 2);
        assert_eq!(service.register_network(&shapes(), &device()), 0, "queued dedupe");
        service.drain();
        assert_eq!(service.register_network(&shapes(), &device()), 0, "stored dedupe");
    }

    #[test]
    fn neighbors_enqueue_at_lower_priority() {
        let config = ServiceConfig { speculate_neighbors: true, ..small_config() };
        let service = TuningService::new(ShardedStore::new(), config);
        let shape = ConvShape::new(32, 14, 14, 16, 1, 1, 1, 0);
        let added = service.register_network(&shape, &device());
        // 1 layer + 4 channel perturbations, all direct-only.
        assert_eq!(added, 5);
        let stats = service.stats();
        assert_eq!(stats.enqueued, 1);
        assert_eq!(stats.speculative_enqueued, 4);
        let per_kind: usize =
            PerturbationKind::ALL.iter().map(|k| stats.speculation_of(*k).enqueued).sum();
        assert_eq!(per_kind, 4, "every neighbor is attributed to its kind");
    }

    #[test]
    fn budget_exhaustion_drops_the_queue_but_not_inline_requests() {
        let config = ServiceConfig { background_budget: 0, ..small_config() };
        let service = TuningService::new(ShardedStore::new(), config);
        service.register_network(&shapes(), &device());
        service.drain();
        let stats = service.stats();
        assert_eq!(stats.background_tuned, 0);
        assert_eq!(stats.budget_dropped, 2);
        // The user path still works.
        let out = service.tune_or_wait(&shapes()[0], TileKind::Direct, &device()).unwrap();
        assert!(matches!(out.source, ServeSource::Inline { .. }));
        assert!(out.fresh_measurements > 0);
    }

    #[test]
    fn infeasible_workloads_are_remembered_not_retried() {
        let service = TuningService::new(ShardedStore::new(), small_config());
        // A shape whose footprint can never fit: absurd kernel.
        let shape = ConvShape::new(1, 1, 1, 1, 1, 1, 1, 0);
        let device = DeviceSpec { smem_per_sm: 1, ..device() };
        let first = service.tune_or_wait(&shape, TileKind::Direct, &device);
        assert!(first.is_none());
        let measured = service.stats().fresh_measurements;
        let second = service.tune_or_wait(&shape, TileKind::Direct, &device);
        assert!(second.is_none());
        assert_eq!(service.stats().fresh_measurements, measured, "no retry measurement");
        assert_eq!(service.stats().infeasible, 1, "only the first attempt counts");
    }

    #[test]
    fn background_workers_race_safely_with_waiters() {
        // Real workers on the pool + a concurrent tune_or_wait caller:
        // whatever the interleaving, the result matches a drained run.
        let config = ServiceConfig { workers: 2, ..small_config() };
        let service = TuningService::new(ShardedStore::new(), config);
        service.register_network(&shapes(), &device());
        let shape = shapes()[0];
        let out = service.tune_or_wait(&shape, TileKind::Direct, &device()).unwrap();
        service.drain();
        let reference = TuningService::new(ShardedStore::new(), small_config());
        let expected = reference.tune_or_wait(&shape, TileKind::Direct, &device()).unwrap();
        assert_eq!(out.config, expected.config);
        assert_eq!(out.cost_ms.to_bits(), expected.cost_ms.to_bits());
    }

    #[test]
    fn hitless_speculation_kinds_retire_after_probation() {
        let config =
            ServiceConfig { speculate_neighbors: true, speculation_probation: 1, ..small_config() };
        let service = TuningService::new(ShardedStore::new(), config);
        let shape = ConvShape::new(32, 14, 14, 16, 1, 1, 1, 0);
        service.register_network(&shape, &device());
        let speculated = service.stats().speculative_enqueued;
        assert_eq!(speculated, 4);
        // One served network (the layer itself — no speculation hit),
        // probation over.
        service.tune_or_wait(&shape, TileKind::Direct, &device()).unwrap();
        assert!(service.stats().networks_served >= 1);
        // Registering another network enqueues its layer but no longer
        // speculates along any (hitless) kind.
        let other = ConvShape::new(24, 14, 14, 12, 1, 1, 1, 0);
        service.register_network(&other, &device());
        let stats = service.stats();
        assert_eq!(stats.speculative_enqueued, speculated, "no new speculation after probation");
        for kind in PerturbationKind::ALL {
            assert_eq!(stats.speculation_of(kind).hits, 0);
        }
    }

    #[test]
    fn speculation_hits_keep_a_kind_alive_and_are_counted() {
        let config =
            ServiceConfig { speculate_neighbors: true, speculation_probation: 1, ..small_config() };
        let service = TuningService::new(ShardedStore::new(), config);
        let shape = ConvShape::new(32, 14, 14, 16, 1, 1, 1, 0);
        service.register_network(&shape, &device());
        service.drain();
        // Request the cin-halved neighbor: the speculative record
        // answers instantly and the prediction counts as a hit.
        let neighbor = ConvShape { cin: 16, ..shape };
        let out = service.tune_or_wait(&neighbor, TileKind::Direct, &device()).unwrap();
        assert_eq!(out.source, ServeSource::ShardHit);
        let stats = service.stats();
        assert_eq!(stats.speculation_of(PerturbationKind::CinHalved).hits, 1);
        assert!(stats.speculation_of(PerturbationKind::CinHalved).tuned >= 1);
        // Past probation, the hitting kind keeps speculating while the
        // hitless ones retire.
        let other = ConvShape::new(24, 14, 14, 12, 1, 1, 1, 0);
        service.register_network(&other, &device());
        let after = service.stats();
        assert_eq!(
            after.speculation_of(PerturbationKind::CinHalved).enqueued,
            stats.speculation_of(PerturbationKind::CinHalved).enqueued + 1,
            "the confirmed kind still speculates"
        );
        assert_eq!(
            after.speculation_of(PerturbationKind::CoutDoubled).enqueued,
            stats.speculation_of(PerturbationKind::CoutDoubled).enqueued,
            "hitless kinds stay retired"
        );
    }

    #[test]
    fn promoting_a_pending_neighbor_counts_as_a_speculation_hit() {
        let config = ServiceConfig {
            speculate_neighbors: true,
            background_budget: 0, // nothing tunes in the background
            ..small_config()
        };
        let service = TuningService::new(ShardedStore::new(), config);
        let shape = ConvShape::new(32, 14, 14, 16, 1, 1, 1, 0);
        service.register_network(&shape, &device());
        // Request a neighbor while its speculative job is still queued:
        // the job is absorbed into the session (promotion), which counts
        // as a prediction hit even though nothing was tuned yet.
        let neighbor = ConvShape { cin: 64, ..shape };
        let out = service.tune_or_wait(&neighbor, TileKind::Direct, &device()).unwrap();
        assert_eq!(out.source, ServeSource::Inline { cancelled_speculative: true });
        let stats = service.stats();
        assert_eq!(stats.speculation_of(PerturbationKind::CinDoubled).hits, 1);
        assert_eq!(stats.cancelled_speculative, 1);
    }

    #[test]
    fn snapshot_sidecar_round_trips_and_tolerates_noise() {
        let service = TuningService::new(ShardedStore::new(), small_config());
        service.register_network(&shapes(), &device());
        service.tune_or_wait(&shapes()[0], TileKind::Direct, &device()).unwrap();
        let snap = service.snapshot();
        assert_eq!(snap.queue_len, 1);
        let parsed = ServiceSnapshot::from_tsv(&snap.to_tsv()).unwrap();
        assert_eq!(parsed, snap);
        // Unknown keys and junk lines are skipped, not fatal.
        let noisy = format!("{}unknown_key\t5\nnot a line\n", snap.to_tsv());
        assert_eq!(ServiceSnapshot::from_tsv(&noisy).unwrap(), snap);
        // Foreign versions are ignored whole.
        assert!(ServiceSnapshot::from_tsv("# iolb-service stats v999\nenqueued\t3\n").is_none());
    }

    #[test]
    fn save_writes_the_sidecar_and_open_restores_it() {
        let dir = std::env::temp_dir().join(format!(
            "iolb-service-sidecar-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let config = ServiceConfig { speculate_neighbors: true, ..small_config() };
        let service = TuningService::new(ShardedStore::new(), config);
        service.register_network(&shapes(), &device());
        service.drain();
        // A confirmed speculation so the restored telemetry is non-trivial.
        let neighbor = ConvShape { cin: 16, ..shapes()[0] };
        service.tune_or_wait(&neighbor, TileKind::Direct, &device()).unwrap();
        service.save(&dir).unwrap();
        let sidecar = ServiceSnapshot::load(&dir).unwrap().expect("sidecar written by save");
        assert_eq!(sidecar.stats, service.stats());
        assert_eq!(sidecar.queue_len, 0);
        assert_eq!(sidecar.budget_left, service.budget_left());
        // Round trip: a reopened service continues the persisted history —
        // hit rates and the probation clock survive the restart...
        let (reopened, report) = TuningService::open(&dir, config).unwrap();
        assert!(report.is_clean(), "warnings: {:?}", report.warnings);
        assert_eq!(reopened.stats(), service.stats(), "counters must survive the restart");
        assert!(reopened.stats().speculation_of(PerturbationKind::CinHalved).hits > 0);
        // ...while the queue and budget start fresh (per-process state).
        assert_eq!(reopened.queue_len(), 0);
        assert_eq!(reopened.budget_left(), config.background_budget);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sync_dir_merges_counters_additively_across_writers() {
        let dir = std::env::temp_dir().join(format!(
            "iolb-service-syncstats-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        // Two independent "processes" (services) sync into one directory.
        let a = TuningService::new(ShardedStore::new(), small_config());
        a.register_network(&shapes()[0], &device());
        a.drain();
        a.sync_dir(&dir).unwrap();
        let b = TuningService::new(ShardedStore::new(), small_config());
        b.register_network(&shapes()[1], &device());
        b.drain();
        b.sync_dir(&dir).unwrap();
        // The sidecar holds the SUM of both writers' counters, not the
        // last writer's view.
        let snap = ServiceSnapshot::load(&dir).unwrap().expect("sidecar written");
        assert_eq!(
            snap.stats.fresh_measurements,
            a.stats().fresh_measurements + b.stats().fresh_measurements
        );
        assert_eq!(snap.stats.background_tuned, 2);
        // Re-syncing without new activity contributes nothing.
        a.sync_dir(&dir).unwrap();
        let again = ServiceSnapshot::load(&dir).unwrap().unwrap();
        assert_eq!(again.stats, snap.stats, "idempotent re-sync");
        // A service opened from the directory restores the merged view
        // and contributes only what it adds on top.
        let (reopened, _) = TuningService::open(&dir, small_config()).unwrap();
        assert_eq!(reopened.stats(), snap.stats);
        reopened.tune_or_wait(&shapes()[0], TileKind::Direct, &device()).unwrap();
        reopened.sync_dir(&dir).unwrap();
        let after = ServiceSnapshot::load(&dir).unwrap().unwrap();
        assert_eq!(after.stats.shard_hits, snap.stats.shard_hits + 1);
        assert_eq!(after.stats.fresh_measurements, snap.stats.fresh_measurements);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn speculation_weight_is_the_smoothed_hit_rate() {
        let mut stats = ServiceStats::default();
        let kind = PerturbationKind::CinHalved;
        // Fresh kind: full priority.
        assert_eq!(TuningService::speculation_weight(&stats, kind), 1.0);
        // Unconfirmed enqueues shrink the weight...
        stats.speculation[kind.index()].enqueued = 3;
        assert_eq!(TuningService::speculation_weight(&stats, kind), 0.25);
        // ...and hits restore it.
        stats.speculation[kind.index()].hits = 3;
        assert_eq!(TuningService::speculation_weight(&stats, kind), 1.0);
        // Other kinds are unaffected.
        assert_eq!(TuningService::speculation_weight(&stats, PerturbationKind::CoutDoubled), 1.0);
    }

    #[test]
    fn speculation_hit_rates_weight_neighbor_queue_priority() {
        // Long probation: retirement never kicks in, so any ordering
        // change is the rate weighting alone.
        let config = ServiceConfig {
            speculate_neighbors: true,
            speculation_probation: 100,
            ..small_config()
        };
        let service = TuningService::new(ShardedStore::new(), config);
        let shape = ConvShape::new(32, 14, 14, 16, 1, 1, 1, 0);
        service.register_network(&shape, &device());
        service.drain();
        // Confirm exactly one kind's prediction: its rate rises back to 1
        // while the other kinds sit at 1/2.
        let neighbor = ConvShape { cin: 16, ..shape };
        service.tune_or_wait(&neighbor, TileKind::Direct, &device()).unwrap();
        let stats = service.stats();
        assert_eq!(stats.speculation_of(PerturbationKind::CinHalved).hits, 1);

        // Register a fresh layer; its neighbor jobs must drain in
        // rate-weighted io_gap order with fingerprint tie-breaks — the
        // exact order this test recomputes from public pieces.
        let other = ConvShape::new(48, 14, 14, 24, 1, 1, 1, 0);
        service.register_network(&other, &device());
        let mut expected: Vec<(u64, String)> = shape_perturbations(&other)
            .into_iter()
            .map(|(n, kind)| {
                let gap = crate::queue::io_gap(&n, TileKind::Direct, &device())
                    * TuningService::speculation_weight(&stats, kind);
                let job = Job {
                    shape: n,
                    kind: TileKind::Direct,
                    epilogue: iolb_core::Epilogue::None,
                    device: device(),
                    tier: JobTier::Neighbor,
                    perturbation: Some(kind),
                    enqueued_at: None,
                };
                (gap.to_bits(), job.fingerprint())
            })
            .collect();
        expected.sort_by(|(ga, fa), (gb, fb)| gb.cmp(ga).then_with(|| fa.cmp(fb)));
        let mut st = service.lock();
        let mut drained = Vec::new();
        while let Some(job) = st.queue.pop_first() {
            if matches!(job.tier, JobTier::Neighbor) {
                drained.push(job.fingerprint());
            }
        }
        let expected: Vec<String> = expected.into_iter().map(|(_, fp)| fp).collect();
        assert_eq!(drained, expected, "neighbor drain order must follow rate-weighted gaps");
    }
}
