//! Memory layouts for image tensors.
//!
//! The paper's searching domain (Table 1) includes the layout of the input
//! image — `CHW`, `CWH` or `HWC` — because it changes which global-memory
//! accesses coalesce. We implement all three for single-image tensors; the
//! batch dimension is always outermost.

/// Axis order of the three image dimensions within one batch element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Layout {
    /// channel-major, then rows, then columns (PyTorch's NCHW).
    #[default]
    Chw,
    /// channel-major, then columns, then rows.
    Cwh,
    /// rows, then columns, then channels (TensorFlow's NHWC).
    Hwc,
}

impl Layout {
    /// All layouts in the Table 1 searching domain.
    pub const ALL: [Layout; 3] = [Layout::Chw, Layout::Cwh, Layout::Hwc];

    /// Linear offset of element `(c, h, w)` within one image of extent
    /// `(channels, height, width)`.
    #[inline]
    pub fn offset(
        &self,
        c: usize,
        h: usize,
        w: usize,
        channels: usize,
        height: usize,
        width: usize,
    ) -> usize {
        debug_assert!(c < channels && h < height && w < width);
        match self {
            Layout::Chw => (c * height + h) * width + w,
            Layout::Cwh => (c * width + w) * height + h,
            Layout::Hwc => (h * width + w) * channels + c,
        }
    }

    /// Strides `(stride_c, stride_h, stride_w)` for the given extents.
    #[inline]
    pub fn strides(&self, channels: usize, height: usize, width: usize) -> (usize, usize, usize) {
        match self {
            Layout::Chw => (height * width, width, 1),
            Layout::Cwh => (width * height, 1, height),
            Layout::Hwc => (1, width * channels, channels),
        }
    }

    /// The innermost (stride-1) axis: 'c', 'h' or 'w'. Consecutive threads
    /// reading along this axis coalesce into few memory transactions.
    pub fn unit_stride_axis(&self) -> char {
        match self {
            Layout::Chw => 'w',
            Layout::Cwh => 'h',
            Layout::Hwc => 'c',
        }
    }

    /// Short name as in the paper's Table 1.
    pub fn name(&self) -> &'static str {
        match self {
            Layout::Chw => "CHW",
            Layout::Cwh => "CWH",
            Layout::Hwc => "HWC",
        }
    }
}

impl std::fmt::Display for Layout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Layout {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_uppercase().as_str() {
            "CHW" => Ok(Layout::Chw),
            "CWH" => Ok(Layout::Cwh),
            "HWC" => Ok(Layout::Hwc),
            other => Err(format!("unknown layout {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn offsets_are_bijective() {
        let (c, h, w) = (3, 4, 5);
        for layout in Layout::ALL {
            let mut seen = HashSet::new();
            for ci in 0..c {
                for hi in 0..h {
                    for wi in 0..w {
                        let off = layout.offset(ci, hi, wi, c, h, w);
                        assert!(off < c * h * w, "{layout}: offset out of range");
                        assert!(seen.insert(off), "{layout}: duplicate offset {off}");
                    }
                }
            }
            assert_eq!(seen.len(), c * h * w);
        }
    }

    #[test]
    fn strides_agree_with_offsets() {
        let (c, h, w) = (3, 4, 5);
        for layout in Layout::ALL {
            let (sc, sh, sw) = layout.strides(c, h, w);
            for ci in 0..c {
                for hi in 0..h {
                    for wi in 0..w {
                        assert_eq!(
                            layout.offset(ci, hi, wi, c, h, w),
                            ci * sc + hi * sh + wi * sw,
                            "{layout} at ({ci},{hi},{wi})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn unit_stride_axis_matches_strides() {
        let (c, h, w) = (3, 4, 5);
        for layout in Layout::ALL {
            let (sc, sh, sw) = layout.strides(c, h, w);
            let axis = layout.unit_stride_axis();
            let s = match axis {
                'c' => sc,
                'h' => sh,
                'w' => sw,
                _ => unreachable!(),
            };
            assert_eq!(s, 1, "{layout}: unit axis {axis} has stride {s}");
        }
    }

    #[test]
    fn roundtrip_names() {
        for layout in Layout::ALL {
            let parsed: Layout = layout.name().parse().unwrap();
            assert_eq!(parsed, layout);
        }
        assert!("NQR".parse::<Layout>().is_err());
    }
}
