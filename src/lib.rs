//! # conv-iolb — I/O lower bounds for auto-tuning of convolutions in CNNs
//!
//! A from-scratch Rust reproduction of *"I/O Lower Bounds for Auto-tuning
//! of Convolutions in CNNs"* (Zhang, Xiao & Tan, PPoPP 2021): the general
//! composite-algorithm I/O lower-bound theory under the red-blue pebble
//! game, the closed-form bounds for direct and Winograd convolution, the
//! near-I/O-optimal dataflow designs, and the lower-bound-guided
//! auto-tuning engine — plus every substrate the evaluation needs (a
//! two-level GPU memory-hierarchy simulator, CPU convolution kernels,
//! pebble-game machinery, CNN layer inventories).
//!
//! This crate is the umbrella: it re-exports the workspace members under
//! one name and hosts the runnable `examples/` and the cross-crate
//! integration tests. See `DESIGN.md` for the architecture and
//! `EXPERIMENTS.md` for paper-vs-measured results.
//!
//! ## Crate map
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`core`] | `iolb-core` | shapes, φ/ψ bounds, `T(S)`, Theorems 4.6/4.12/4.20, optimality condition |
//! | [`pebble`] | `iolb-pebble` | red-blue pebble game, exact/heuristic pebbling, S-partitions, conv DAGs |
//! | [`tensor`] | `iolb-tensor` | tensors, reference conv, im2col, GEMM, Winograd transforms |
//! | [`gpusim`] | `iolb-gpusim` | device presets, traffic model, occupancy, roofline engine |
//! | [`dataflow`] | `iolb-dataflow` | §5 dataflow schedules, baselines, CPU execution, analysis |
//! | [`records`] | `iolb-records` | persistent tuning-record store: JSONL codec, workload index, warm-start/transfer queries |
//! | [`autotune`] | `iolb-autotune` | §6 config spaces, GBT cost model, searchers, tuning loop, analytic planning |
//! | [`service`] | `iolb-service` | speculative background tuning: device shards, priority queue, eviction |
//! | [`cnn`] | `iolb-cnn` | network inventories, end-to-end inference timing |
//!
//! ## Quickstart
//!
//! ```
//! use conv_iolb::core::shapes::ConvShape;
//! use conv_iolb::core::direct;
//!
//! // How much traffic must ANY schedule of this layer move through a
//! // 16 KiB shared memory?
//! let layer = ConvShape::square(256, 56, 128, 3, 1, 1);
//! let q_min = direct::io_lower_bound(&layer, 4096.0);
//! // ... and how close does the paper's dataflow get?
//! let q_flow = direct::dataflow_optimal_io(&layer, 4096.0, 1.0);
//! assert!(q_flow >= q_min);
//! assert!(q_flow < 16.0 * q_min); // near-optimal: small constant factor
//! ```
//!
//! ## The tuning-record store
//!
//! Production tuning amortizes measurement cost across runs: every
//! measurement lands in a persistent [`records::RecordStore`] (a
//! versioned, canonical JSONL file), and later runs replay cached
//! measurements, warm-start their searchers from the best stored
//! records, and transfer-seed new layers from the nearest already-tuned
//! workload. Tuning the same layer twice against one store performs
//! strictly fewer simulator measurements the second time and never
//! returns a worse configuration:
//!
//! ```
//! use conv_iolb::autotune::{tune_with_store, ConfigSpace, GbtCostModel, Measurer, TuneParams};
//! use conv_iolb::autotune::search::walk::ParallelRandomWalk;
//! use conv_iolb::core::optimality::TileKind;
//! use conv_iolb::core::shapes::ConvShape;
//! use conv_iolb::gpusim::DeviceSpec;
//! use conv_iolb::records::RecordStore;
//!
//! let shape = ConvShape::square(64, 28, 32, 3, 1, 1);
//! let device = DeviceSpec::v100();
//! let space = ConfigSpace::new(shape, TileKind::Direct, device.smem_per_sm, true);
//! let measurer = Measurer::new(device, shape, TileKind::Direct);
//! let params = TuneParams { max_measurements: 24, batch: 6, patience: 24, seed: 7 };
//! let mut store = RecordStore::new(); // or RecordStore::load("tuning.jsonl")
//! let run = |store: &mut RecordStore| {
//!     tune_with_store(
//!         &space, &measurer, &mut GbtCostModel::default(),
//!         &mut ParallelRandomWalk::new(), params, store,
//!     ).unwrap()
//! };
//! let cold = run(&mut store);
//! let warm = run(&mut store); // replays the cache, warm-starts the walk
//! assert!(warm.fresh_measurements < cold.fresh_measurements);
//! assert!(warm.result.best_ms <= cold.result.best_ms);
//! // store.save("tuning.jsonl") writes the canonical JSONL form.
//! ```

//! ## The tuning service
//!
//! [`service`] layers speculative background tuning on top of the
//! store: register a network, let pool-backed workers fill
//! device-sharded stores ahead of demand, then serve
//! `tune_or_wait` requests instantly — see `docs/ARCHITECTURE.md` and
//! `examples/service.rs`.

pub use iolb_autotune as autotune;
pub use iolb_cnn as cnn;
pub use iolb_core as core;
pub use iolb_dataflow as dataflow;
pub use iolb_gpusim as gpusim;
pub use iolb_pebble as pebble;
pub use iolb_records as records;
pub use iolb_service as service;
pub use iolb_tensor as tensor;

/// Crate version (workspace-wide).
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn umbrella_reexports_compile() {
        let shape = crate::core::ConvShape::square(64, 28, 32, 3, 1, 1);
        assert_eq!(shape.hout(), 28);
        assert!(!crate::VERSION.is_empty());
    }
}
