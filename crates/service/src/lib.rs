//! # iolb-service — speculative background tuning over sharded stores
//!
//! The production face of the auto-tuner: the paper makes tuning cheap
//! enough (I/O-lower-bound pruning, §6) that a service can afford to
//! tune **ahead of demand**. This crate turns the passive
//! `iolb-records` store into that service:
//!
//! * [`shard`] — device-sharded stores: one canonical JSONL file per
//!   device fingerprint under a manifest index, cross-shard merge,
//!   persisted LRU stamps, and an [`EvictionPolicy`] for long-lived
//!   stores (coldest-workload truncation that never drops a workload's
//!   best-cost record).
//! * [`queue`] — the priority work queue: layer workloads (plus
//!   shape-perturbation neighbors) ranked by predicted I/O-bound gap
//!   `Q_model / Q_lower`, drained in a deterministic order.
//! * [`service`] — the [`TuningService`]: background tuner workers on
//!   the rayon shim's persistent pool fill the shards in idle time
//!   under a measurement budget, and [`TuningService::tune_or_wait`]
//!   answers requests from the shards, steals in-flight background
//!   results, or tunes inline.
//!
//! Per-workload tuning runs are *hermetic* (see the [`service`] module
//! docs), so a drained service reproduces exactly what eager
//! `tune_with_store` runs produce — bit-identical costs — regardless of
//! worker count or scheduling.
//!
//! ```
//! use iolb_core::optimality::TileKind;
//! use iolb_core::shapes::ConvShape;
//! use iolb_gpusim::DeviceSpec;
//! use iolb_service::{ServeSource, ServiceConfig, ShardedStore, TuningService};
//!
//! let config = ServiceConfig {
//!     budget_per_workload: 12,
//!     workers: 0, // doctest: drain on this thread, deterministically
//!     speculate_neighbors: false,
//!     ..ServiceConfig::default()
//! };
//! let service = TuningService::new(ShardedStore::new(), config);
//! let layer = ConvShape::new(32, 14, 14, 16, 1, 1, 1, 0);
//! let device = DeviceSpec::v100();
//!
//! // Speculate: enqueue the layer, fill the store in the background.
//! service.register_network(&layer, &device);
//! service.drain();
//!
//! // Serve: the request replays instantly from the shard.
//! let out = service.tune_or_wait(&layer, TileKind::Direct, &device).unwrap();
//! assert_eq!(out.source, ServeSource::ShardHit);
//! assert_eq!(out.fresh_measurements, 0);
//! ```

pub mod queue;
pub mod service;
pub mod shard;

pub use queue::{io_gap, shape_perturbations, Job, PushOutcome, WorkQueue};
pub use service::{register, ServeResult, ServeSource, ServiceConfig, ServiceStats, TuningService};
pub use shard::{
    device_key, shard_file_name, EvictionPolicy, ShardLoadReport, ShardedStore, MANIFEST_FILE,
};
