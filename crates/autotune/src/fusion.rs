//! The analytic fusion gate (chain-level counterpart of `plan`).
//!
//! A fused conv→epilogue chain is worth tuning as one workload only when
//! the *model* says so: fusing trades the epilogue's extra kernel
//! launches and intermediate-tensor round trips for a little extra
//! arithmetic on the resident output tile. Both sides of that trade are
//! analytic — device launch overhead, DRAM bandwidth, sustained
//! arithmetic throughput, and the composite I/O lower bound from
//! [`iolb_core::epilogue::fused_io_lower_bound`] — so the gate decides
//! **before** any fresh measurement is spent. A chain the gate rejects
//! falls back to its per-layer workloads, whose records are shared with
//! every unfused request: the fallback costs zero extra measurements.

use iolb_core::epilogue::{fused_io_lower_bound, Epilogue};
use iolb_core::optimality::TileKind;
use iolb_core::shapes::ConvShape;
use iolb_gpusim::DeviceSpec;

use crate::space::ConfigSpace;

/// Bytes per tensor element (`f32`).
const ELEM_BYTES: f64 = 4.0;

/// Modeled wall time (ms) of running `epilogue` **unfused** after the
/// convolution: each stage is its own kernel launch reading its input
/// from and writing its output to DRAM. Relu is one launch; relu+pool is
/// two. Traffic comes from
/// [`Epilogue::unfused_epilogue_traffic`], arithmetic from
/// [`Epilogue::flops`].
pub fn epilogue_unfused_ms(shape: &ConvShape, epilogue: Epilogue, device: &DeviceSpec) -> f64 {
    let launches = match epilogue {
        Epilogue::None => 0.0,
        Epilogue::Relu => 1.0,
        Epilogue::ReluPool { .. } => 2.0,
    };
    if launches == 0.0 {
        return 0.0;
    }
    let traffic_bytes = epilogue.unfused_epilogue_traffic(shape) * ELEM_BYTES;
    let transfer_ms = traffic_bytes / (device.dram_gbps * 1e9) * 1e3;
    let compute_ms = epilogue.flops(shape) / (device.sustained_gflops() * 1e9) * 1e3;
    launches * device.launch_overhead_us * 1e-3 + transfer_ms + compute_ms
}

/// Modeled wall time (ms) the epilogue **adds to the fused kernel**: the
/// extra arithmetic on the resident tile plus the (never positive)
/// change in write-back traffic — a pool epilogue writes the pooled
/// tensor instead of the full conv output, so fusing *reduces* the conv
/// kernel's own store traffic. No launch term: the epilogue rides the
/// conv kernel's launch.
pub fn epilogue_fused_ms(shape: &ConvShape, epilogue: Epilogue, device: &DeviceSpec) -> f64 {
    if epilogue.is_none() {
        return 0.0;
    }
    let compute_ms = epilogue.flops(shape) / (device.sustained_gflops() * 1e9) * 1e3;
    let write_delta_bytes = epilogue.fused_write_delta(shape) * ELEM_BYTES;
    compute_ms + write_delta_bytes / (device.dram_gbps * 1e9) * 1e3
}

/// What the gate decided for one chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FusionDecision {
    /// Tune and execute the chain as one fused workload.
    Fuse,
    /// Serve the chain as its per-layer workloads; the reason is a
    /// stable label for telemetry and logs.
    Fallback(&'static str),
}

impl FusionDecision {
    pub fn is_fuse(&self) -> bool {
        matches!(self, FusionDecision::Fuse)
    }

    /// The fallback reason, if any.
    pub fn reason(&self) -> Option<&'static str> {
        match self {
            FusionDecision::Fuse => None,
            FusionDecision::Fallback(r) => Some(r),
        }
    }
}

/// The analytic fusion gate. Fuse only when **all** of:
///
/// 1. the epilogue's pool window tiles the conv output exactly
///    ([`Epilogue::fusable_on`] — the forced-loss case);
/// 2. the fused search space still offers tile choices (the pool grid
///    can empty it even when the extents divide);
/// 3. the modeled fused epilogue cost beats the modeled unfused
///    epilogue cost (launches + round trips vs resident arithmetic);
/// 4. the composite I/O lower bound of the fused chain does not exceed
///    the conv-only bound plus the unfused epilogue's round-trip
///    traffic — i.e. the theory agrees there is traffic to save.
///
/// Pure function of `(shape, kind, epilogue, device)`: zero
/// measurements, deterministic, and cheap enough to run per request.
pub fn fusion_gate(
    shape: &ConvShape,
    kind: TileKind,
    epilogue: Epilogue,
    device: &DeviceSpec,
) -> FusionDecision {
    if epilogue.is_none() {
        return FusionDecision::Fallback("no-epilogue");
    }
    if !epilogue.fusable_on(shape) {
        return FusionDecision::Fallback("pool-tiling");
    }
    let space = ConfigSpace::fused(*shape, kind, device.smem_per_sm, true, epilogue);
    if !space.tile_choices_nonempty() {
        return FusionDecision::Fallback("empty-space");
    }
    let fused_ms = epilogue_fused_ms(shape, epilogue, device);
    let unfused_ms = epilogue_unfused_ms(shape, epilogue, device);
    if fused_ms >= unfused_ms {
        return FusionDecision::Fallback("modeled-cost");
    }
    let s = device.smem_elems();
    let fused_bound = fused_io_lower_bound(shape, kind, epilogue, s);
    let conv_bound = match kind {
        TileKind::Direct => iolb_core::direct::io_lower_bound(shape, s),
        TileKind::Winograd(t) => iolb_core::winograd::io_lower_bound(shape, t, s),
    };
    if fused_bound > conv_bound + epilogue.unfused_epilogue_traffic(shape) {
        return FusionDecision::Fallback("io-bound");
    }
    FusionDecision::Fuse
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device() -> DeviceSpec {
        DeviceSpec::v100()
    }

    fn shape() -> ConvShape {
        ConvShape::square(64, 28, 32, 3, 1, 1) // 28x28 output
    }

    #[test]
    fn relu_and_aligned_pool_chains_fuse() {
        for epi in [Epilogue::Relu, Epilogue::ReluPool { k: 2 }] {
            let d = fusion_gate(&shape(), TileKind::Direct, epi, &device());
            assert_eq!(d, FusionDecision::Fuse, "{epi} should fuse");
        }
    }

    #[test]
    fn misaligned_pool_falls_back_without_measuring() {
        // 28 % 3 != 0: the forced-loss chain of the acceptance criteria.
        let d = fusion_gate(&shape(), TileKind::Direct, Epilogue::ReluPool { k: 3 }, &device());
        assert_eq!(d, FusionDecision::Fallback("pool-tiling"));
        assert!(!d.is_fuse());
        assert_eq!(d.reason(), Some("pool-tiling"));
    }

    #[test]
    fn bare_conv_is_not_a_fusion_candidate() {
        let d = fusion_gate(&shape(), TileKind::Direct, Epilogue::None, &device());
        assert_eq!(d, FusionDecision::Fallback("no-epilogue"));
    }

    #[test]
    fn winograd_chains_pass_the_gate_too() {
        let kind = TileKind::Winograd(iolb_core::shapes::WinogradTile::F2X3);
        let d = fusion_gate(&shape(), kind, Epilogue::ReluPool { k: 2 }, &device());
        assert_eq!(d, FusionDecision::Fuse);
    }

    #[test]
    fn fused_epilogue_model_beats_unfused_on_real_devices() {
        for dev in [DeviceSpec::v100(), DeviceSpec::gtx1080ti(), DeviceSpec::titan_x()] {
            for epi in [Epilogue::Relu, Epilogue::ReluPool { k: 2 }] {
                let fused = epilogue_fused_ms(&shape(), epi, &dev);
                let unfused = epilogue_unfused_ms(&shape(), epi, &dev);
                assert!(
                    fused < unfused,
                    "{epi} on {}: fused {fused} !< unfused {unfused}",
                    dev.name
                );
            }
        }
    }

    #[test]
    fn unfused_cost_counts_launches_and_traffic() {
        assert_eq!(epilogue_unfused_ms(&shape(), Epilogue::None, &device()), 0.0);
        let relu = epilogue_unfused_ms(&shape(), Epilogue::Relu, &device());
        let pool = epilogue_unfused_ms(&shape(), Epilogue::ReluPool { k: 2 }, &device());
        assert!(relu > 0.0);
        assert!(pool > relu, "pool adds a second launch and more traffic");
    }
}
