//! Lowering of the paper's **Winograd dataflow** (§5.3, Fig. 7) to a
//! simulator kernel.
//!
//! One thread block owns an `x * y * z` output sub-block, subdivided into
//! `(x/e) * (y/e)` Winograd tiles per output channel. Two
//! `(e+r-1) x (e+r-1)` temporary arrays per in-flight tile hold the running
//! channel sum `Pi` and the stage's fresh partial product (the data whose
//! reuse `phi_3` says dominates the bound). The block slides along the
//! channel dimension: each stage loads one `(x+r-1) x (y+r-1)` input tile
//! at a single channel plus the stage's `z * r^2` weights, transforms
//! in-registers, multiplies and accumulates into the temporaries. Inputs
//! and weights are read once per sub-block; outputs written once.

use crate::config::ScheduleConfig;
use crate::direct::{bank_conflict_factor, input_tile_access};
use iolb_core::shapes::{ConvShape, WinogradTile};
use iolb_core::winograd as core_wino;
use iolb_gpusim::{BlockShape, BlockWork, KernelDesc, TileAccess};

/// Builds the simulator kernel for the Winograd dataflow under `cfg`.
///
/// Requires unit stride, kernel edge `tile.r`, and `x`/`y` divisible by
/// `tile.e` (whole Winograd tiles per block).
pub fn winograd_kernel(shape: &ConvShape, tile: WinogradTile, cfg: &ScheduleConfig) -> KernelDesc {
    assert!(shape.supports_winograd(tile), "shape incompatible with F(e,r)");
    // Tiles divide the e-padded output extent; ragged edges run as full
    // (padded) tiles, exactly like practical Winograd kernels.
    let (hout, wout) =
        crate::config::padded_out(shape, iolb_core::optimality::TileKind::Winograd(tile));
    assert_eq!(hout % cfg.x, 0, "x must divide padded H_out");
    assert_eq!(wout % cfg.y, 0, "y must divide padded W_out");
    assert_eq!(shape.cout % cfg.z, 0, "z must divide C_out");
    assert_eq!(cfg.x % tile.e, 0, "x must be a multiple of e");
    assert_eq!(cfg.y % tile.e, 0, "y must be a multiple of e");

    let grid_blocks = (hout / cfg.x) as u64
        * (wout / cfg.y) as u64
        * (shape.cout / cfg.z) as u64
        * shape.batch as u64;

    let a = tile.a();
    let tiles = (cfg.x / tile.e) * (cfg.y / tile.e);
    // Arithmetic per block. The transform matrices have 0/±1/±2/±1/2
    // entries, so practical kernels implement B^T d B and A^T Pi A with a
    // few additions per produced element (~4 ops per element of the a x a
    // result), not dense matmuls — this is where Winograd's arithmetic win
    // comes from.
    //  * input transform, once per (tile, channel),
    let t_in = tiles * shape.cin * 4 * a * a;
    //  * kernel transform, once per (z, channel),
    let t_ker = cfg.z * shape.cin * 4 * a * a;
    //  * elementwise multiply-accumulate per (tile, z, channel) — the a^2
    //    true multiplications per e^2 outputs,
    let t_mul = tiles * cfg.z * shape.cin * 2 * a * a;
    //  * output transform per (tile, z).
    let t_out = tiles * cfg.z * 4 * a * a;
    let flops = (t_in + t_ker + t_mul + t_out) as u64;

    let mut work = BlockWork::new(flops).with_bank_conflicts(bank_conflict_factor(cfg.layout));
    // Channel stages (mu = 1 halo: x' = x + r - 1).
    let xp = cfg.x + tile.r - 1;
    let yp = cfg.y + tile.r - 1;
    let input_access = input_tile_access(shape, cfg.layout, xp, yp);
    // Weights pre-packed stage-contiguously ([cin][z][r^2]); see the same
    // note in `direct_kernel`.
    let weight_access = TileAccess::contiguous((cfg.z * tile.r * tile.r) as u64);
    for _ in 0..shape.cin {
        work = work.read(input_access).read(weight_access);
    }
    work =
        work.write(TileAccess::tile((cfg.x * cfg.z) as u64, cfg.y as u64, wout.max(cfg.y) as u64));

    KernelDesc {
        name: format!(
            "winograd-dataflow[F({0}x{0},{1}x{1}) {2}x{3}x{4}]",
            tile.e, tile.r, cfg.x, cfg.y, cfg.z
        ),
        grid_blocks,
        block: BlockShape { threads: cfg.threads(), smem_bytes: cfg.sb_bytes },
        work,
    }
}

/// Analytic I/O (elements) of this configuration per Eq. 22 + output
/// stores.
pub fn analytic_io_elems(shape: &ConvShape, tile: WinogradTile, cfg: &ScheduleConfig) -> f64 {
    core_wino::dataflow_total_io(shape, tile, cfg.x as f64, cfg.y as f64, cfg.z as f64)
}

/// Exact useful-element I/O of the lowered kernel: per block
/// `cin * ((x+r-1)(y+r-1) + r^2 z)` reads plus `xyz` writes.
pub fn exact_io_elems(shape: &ConvShape, tile: WinogradTile, cfg: &ScheduleConfig) -> u64 {
    let (hout, wout) =
        crate::config::padded_out(shape, iolb_core::optimality::TileKind::Winograd(tile));
    let blocks = (hout / cfg.x) as u64
        * (wout / cfg.y) as u64
        * (shape.cout / cfg.z) as u64
        * shape.batch as u64;
    let xp = (cfg.x + tile.r - 1) as u64;
    let yp = (cfg.y + tile.r - 1) as u64;
    let per_block_reads = shape.cin as u64 * (xp * yp + (tile.r * tile.r * cfg.z) as u64);
    blocks * (per_block_reads + (cfg.x * cfg.y * cfg.z) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ScheduleConfig;
    use iolb_gpusim::{simulate, DeviceSpec};
    use iolb_tensor::layout::Layout;

    fn shape() -> ConvShape {
        ConvShape::square(256, 56, 128, 3, 1, 1)
    }

    fn cfg() -> ScheduleConfig {
        ScheduleConfig {
            x: 8,
            y: 8,
            z: 8,
            nxt: 4,
            nyt: 4,
            nzt: 4,
            sb_bytes: 24 * 1024,
            layout: Layout::Chw,
        }
    }

    const TILE: WinogradTile = WinogradTile::F2X3;

    #[test]
    fn grid_covers_all_outputs() {
        let k = winograd_kernel(&shape(), TILE, &cfg());
        assert_eq!(k.grid_blocks, 7 * 7 * 16);
    }

    #[test]
    fn measured_io_matches_exact_formula() {
        let s = shape();
        let c = cfg();
        let k = winograd_kernel(&s, TILE, &c);
        let stats = simulate(&DeviceSpec::v100(), &k).unwrap();
        assert_eq!(stats.q_elems(), exact_io_elems(&s, TILE, &c));
    }

    #[test]
    fn exact_io_close_to_eq22_model() {
        let s = shape();
        let c = cfg();
        let exact = exact_io_elems(&s, TILE, &c) as f64;
        let model = analytic_io_elems(&s, TILE, &c);
        assert!(exact >= model);
        // Halo factor (10/8)^2 ~ 1.56 on the input term only.
        assert!(exact <= 1.7 * model, "exact {exact} model {model}");
    }

    #[test]
    fn io_above_lower_bound() {
        let s = shape();
        let c = cfg();
        let q = exact_io_elems(&s, TILE, &c) as f64;
        let lb = core_wino::io_lower_bound(&s, TILE, c.sb_elems());
        assert!(q >= lb, "measured {q} below bound {lb}");
    }

    #[test]
    fn winograd_flops_below_direct_flops() {
        let s = shape();
        let c = cfg();
        let wk = winograd_kernel(&s, TILE, &c);
        let dk = crate::direct::direct_kernel(&s, &c);
        let w_total = wk.work.flops * wk.grid_blocks;
        let d_total = dk.work.flops * dk.grid_blocks;
        assert!(w_total < d_total, "winograd {w_total} flops not below direct {d_total}");
    }

    #[test]
    fn f4x3_moves_less_io_than_f2x3_at_same_tile() {
        // Same x,y,z: reads identical, but the larger e means x/e fewer
        // tiles... I/O identical actually; the win shows in flops.
        let s = shape();
        let c = cfg();
        let f2 = winograd_kernel(&s, WinogradTile::F2X3, &c);
        let f4 = winograd_kernel(&s, WinogradTile::F4X3, &c);
        assert!(f4.work.flops < f2.work.flops);
    }

    #[test]
    #[should_panic(expected = "multiple of e")]
    fn rejects_tile_not_multiple_of_e() {
        let s = shape();
        let c = ScheduleConfig { x: 7, nxt: 7, y: 8, ..cfg() };
        let _ = winograd_kernel(&s, WinogradTile::F4X3, &c);
    }

    #[test]
    #[should_panic(expected = "incompatible")]
    fn rejects_strided_shape() {
        let s = ConvShape::square(64, 56, 64, 3, 2, 1);
        let _ = winograd_kernel(&s, TILE, &cfg());
    }
}
