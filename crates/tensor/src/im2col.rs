//! The im2col convolution path — cuDNN's "image2col" direct implementation
//! (paper §7: "the image2col method is usually better than the direct
//! convolution" among cuDNN's direct approaches).
//!
//! The input is unrolled into a `(C_in*Kh*Kw) x (Oh*Ow)` matrix whose
//! columns are the flattened sliding windows; convolution then becomes a
//! `C_out x (C_in*Kh*Kw)` by `(C_in*Kh*Kw) x (Oh*Ow)` GEMM. The
//! materialised matrix is the *extra I/O* this baseline pays relative to
//! the paper's dataflow — `dataflow::baselines` models exactly that.

use crate::conv_ref::ConvParams;
use crate::gemm::{gemm_with_path, MatRef};
use crate::kernel::KernelPath;
use crate::tensor::Tensor4;

/// Unrolls one image of `input` into the im2col matrix, row-major
/// `(C_in*Kh*Kw) x (Oh*Ow)`.
pub fn im2col(
    input: &Tensor4,
    n: usize,
    kh: usize,
    kw: usize,
    params: ConvParams,
) -> (Vec<f32>, usize, usize) {
    let oh = params.out_extent(input.h, kh);
    let ow = params.out_extent(input.w, kw);
    let rows = input.c * kh * kw;
    let cols = oh * ow;
    let mut m = vec![0.0f32; rows * cols];
    for ci in 0..input.c {
        for dy in 0..kh {
            for dx in 0..kw {
                let row = (ci * kh + dy) * kw + dx;
                for y in 0..oh {
                    for x in 0..ow {
                        let iy = (y * params.stride + dy) as isize - params.pad as isize;
                        let ix = (x * params.stride + dx) as isize - params.pad as isize;
                        m[row * cols + y * ow + x] = input.at_padded(n, ci, iy, ix);
                    }
                }
            }
        }
    }
    (m, rows, cols)
}

/// Flattens the weight tensor into the row-major `C_out x (C_in*Kh*Kw)`
/// GEMM operand.
pub fn flatten_weights(weights: &Tensor4) -> Vec<f32> {
    let (cout, cin, kh, kw) = (weights.n, weights.c, weights.h, weights.w);
    let mut m = vec![0.0f32; cout * cin * kh * kw];
    for co in 0..cout {
        for ci in 0..cin {
            for dy in 0..kh {
                for dx in 0..kw {
                    m[co * (cin * kh * kw) + (ci * kh + dy) * kw + dx] = weights.at(co, ci, dy, dx);
                }
            }
        }
    }
    m
}

/// Full convolution via im2col + GEMM on the path selected by
/// `IOLB_KERNEL`; numerically equivalent to
/// [`crate::conv_ref::conv2d_reference`].
pub fn conv2d_im2col(
    input: &Tensor4,
    weights: &Tensor4,
    params: ConvParams,
    threads: usize,
) -> Tensor4 {
    conv2d_im2col_with_path(input, weights, params, threads, KernelPath::from_env())
}

/// [`conv2d_im2col`] with an explicit GEMM kernel path — the two paths
/// are bit-identical (the benchmark sweep diffs them every run).
pub fn conv2d_im2col_with_path(
    input: &Tensor4,
    weights: &Tensor4,
    params: ConvParams,
    threads: usize,
    path: KernelPath,
) -> Tensor4 {
    assert_eq!(input.c, weights.c, "C_in mismatch");
    let (kh, kw) = (weights.h, weights.w);
    let oh = params.out_extent(input.h, kh);
    let ow = params.out_extent(input.w, kw);
    let w_flat = flatten_weights(weights);
    let w_ref = MatRef::new(&w_flat, weights.n, input.c * kh * kw);

    let mut out = Tensor4::zeros(input.n, weights.n, oh, ow);
    let image_len = weights.n * oh * ow;
    for n in 0..input.n {
        let (cols, rows_dim, cols_dim) = im2col(input, n, kh, kw, params);
        let col_ref = MatRef::new(&cols, rows_dim, cols_dim);
        let dst = &mut out.as_mut_slice()[n * image_len..(n + 1) * image_len];
        gemm_with_path(w_ref, col_ref, dst, threads, path);
    }
    out
}

/// Number of elements the im2col path *materialises* per image — the extra
/// slow-memory traffic of this baseline (written once, read once by GEMM).
pub fn im2col_materialised_elems(cin: usize, kh: usize, kw: usize, oh: usize, ow: usize) -> u64 {
    cin as u64 * kh as u64 * kw as u64 * oh as u64 * ow as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv_ref::conv2d_reference;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[allow(clippy::too_many_arguments)] // test helper sweeping the shape grid
    fn check(
        n: usize,
        cin: usize,
        hw: usize,
        cout: usize,
        k: usize,
        stride: usize,
        pad: usize,
        seed: u64,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let input = Tensor4::random(n, cin, hw, hw, &mut rng);
        let weights = Tensor4::random(cout, cin, k, k, &mut rng);
        let params = ConvParams::new(stride, pad);
        let want = conv2d_reference(&input, &weights, params);
        let got = conv2d_im2col(&input, &weights, params, 2);
        assert!(
            got.approx_eq(&want, 1e-4, 1e-4),
            "mismatch: n={n} cin={cin} hw={hw} cout={cout} k={k} s={stride} p={pad}, \
             max diff {}",
            got.max_abs_diff(&want)
        );
    }

    #[test]
    fn matches_reference_basic() {
        check(1, 3, 8, 4, 3, 1, 0, 1);
    }

    #[test]
    fn matches_reference_with_padding() {
        check(1, 4, 7, 5, 3, 1, 1, 2);
    }

    #[test]
    fn matches_reference_strided() {
        check(1, 3, 11, 4, 3, 2, 1, 3);
        check(1, 3, 12, 2, 5, 4, 2, 4);
    }

    #[test]
    fn matches_reference_batched() {
        check(3, 2, 9, 3, 3, 1, 1, 5);
    }

    #[test]
    fn matches_reference_1x1_kernel() {
        check(1, 8, 6, 8, 1, 1, 0, 6);
    }

    #[test]
    fn path_variants_bit_identical() {
        let mut rng = StdRng::seed_from_u64(11);
        let input = Tensor4::random(2, 3, 9, 9, &mut rng);
        let weights = Tensor4::random(4, 3, 3, 3, &mut rng);
        let params = ConvParams::new(1, 1);
        let s = conv2d_im2col_with_path(&input, &weights, params, 2, KernelPath::Scalar);
        let v = conv2d_im2col_with_path(&input, &weights, params, 2, KernelPath::Vector);
        let sb: Vec<u32> = s.as_slice().iter().map(|f| f.to_bits()).collect();
        let vb: Vec<u32> = v.as_slice().iter().map(|f| f.to_bits()).collect();
        assert_eq!(sb, vb);
    }

    #[test]
    fn im2col_matrix_shape_and_content() {
        // input [[1,2],[3,4]], 1 channel, 1x1 kernel window, unit params:
        // the matrix is just the flattened image.
        let input = Tensor4::from_fn(1, 1, 2, 2, |_, _, h, w| (h * 2 + w + 1) as f32);
        let (m, rows, cols) = im2col(&input, 0, 1, 1, ConvParams::unit());
        assert_eq!((rows, cols), (1, 4));
        assert_eq!(m, vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn im2col_window_extraction() {
        // 3x3 image, 2x2 kernel: 4 windows of 4 elements.
        let input = Tensor4::from_fn(1, 1, 3, 3, |_, _, h, w| (h * 3 + w + 1) as f32);
        let (m, rows, cols) = im2col(&input, 0, 2, 2, ConvParams::unit());
        assert_eq!((rows, cols), (4, 4));
        // First column = window at (0,0): [1,2,4,5] laid out over rows.
        let col0: Vec<f32> = (0..rows).map(|r| m[r * cols]).collect();
        assert_eq!(col0, vec![1.0, 2.0, 4.0, 5.0]);
        // Last column = window at (1,1): [5,6,8,9].
        let col3: Vec<f32> = (0..rows).map(|r| m[r * cols + 3]).collect();
        assert_eq!(col3, vec![5.0, 6.0, 8.0, 9.0]);
    }

    #[test]
    fn materialised_volume_formula() {
        assert_eq!(im2col_materialised_elems(256, 3, 3, 56, 56), 256 * 9 * 56 * 56);
    }
}
