//! Property tests for the pebble-game substrate: random layered DAGs,
//! strategy legality, the exact-vs-heuristic sandwich, and S-partition
//! machinery.

use iolb_pebble::dag::{Dag, VertexId};
use iolb_pebble::exact::min_io;
use iolb_pebble::flow::min_dominator_size;
use iolb_pebble::game::replay_complete;
use iolb_pebble::partition::greedy_partition;
use iolb_pebble::strategies::{pebble_topological, Eviction};
use proptest::prelude::*;

/// A random layered DAG: `widths[0]` inputs, each later vertex draws 1-2
/// predecessors from the previous layer (acyclic by construction).
fn layered_dag() -> impl Strategy<Value = Dag> {
    (
        2usize..=4,                               // input layer width
        prop::collection::vec(1usize..=4, 1..=3), // internal layer widths
        any::<u64>(),
    )
        .prop_map(|(inputs, layers, seed)| {
            let mut dag = Dag::new();
            let mut prev: Vec<VertexId> = (0..inputs).map(|_| dag.add_vertex(0)).collect();
            let mut state = seed;
            let mut next_rand = move || {
                // xorshift64 — deterministic, no external RNG needed.
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            for (li, &width) in layers.iter().enumerate() {
                let mut layer = Vec::with_capacity(width);
                for _ in 0..width {
                    let v = dag.add_vertex(li as u32 + 1);
                    let npred = 1 + (next_rand() as usize % 2).min(prev.len() - 1);
                    // Distinct predecessors from the previous layer.
                    let start = next_rand() as usize % prev.len();
                    for k in 0..npred {
                        dag.add_edge(prev[(start + k) % prev.len()], v);
                    }
                    layer.push(v);
                }
                prev = layer;
            }
            dag
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Heuristic traces replay legally, complete the game, and report
    /// exactly the I/O the replay counts.
    #[test]
    fn heuristic_traces_are_legal_and_complete(dag in layered_dag(), extra in 0usize..4) {
        let max_indeg = (0..dag.len() as VertexId)
            .map(|v| dag.preds(v).len())
            .max()
            .unwrap_or(0);
        let s = max_indeg + 1 + extra;
        for policy in [Eviction::Belady, Eviction::Lru] {
            let out = pebble_topological(&dag, s, policy);
            let q = replay_complete(&dag, s, &out.trace)
                .unwrap_or_else(|e| panic!("illegal trace: {e}"));
            prop_assert_eq!(q, out.io);
            // Compulsory floor: every used input loads once; every
            // *computed* output stores once (an orphaned input with no
            // successors starts blue and needs neither).
            let used_inputs = dag
                .inputs()
                .iter()
                .filter(|&&v| !dag.succs(v).is_empty())
                .count() as u64;
            let computed_outputs = dag
                .outputs()
                .iter()
                .filter(|&&v| !dag.preds(v).is_empty())
                .count() as u64;
            prop_assert!(out.io >= used_inputs + computed_outputs);
        }
    }

    /// Exact pebbling never exceeds the heuristic's I/O, and more red
    /// pebbles never hurt.
    #[test]
    fn exact_below_heuristic_and_monotone(dag in layered_dag()) {
        prop_assume!(dag.len() <= 12);
        let max_indeg = (0..dag.len() as VertexId)
            .map(|v| dag.preds(v).len())
            .max()
            .unwrap_or(0);
        let s_lo = max_indeg + 1;
        let s_hi = s_lo + 3;
        let e_lo = min_io(&dag, s_lo, 1 << 22);
        let e_hi = min_io(&dag, s_hi, 1 << 22);
        if let (Some(lo), Some(hi)) = (e_lo, e_hi) {
            prop_assert!(hi <= lo, "more memory increased I/O: {lo} -> {hi}");
            let heur = pebble_topological(&dag, s_lo, Eviction::Belady).io;
            prop_assert!(lo <= heur, "exact {lo} above heuristic {heur}");
        }
    }

    /// Greedy partitions are always valid S-partitions.
    #[test]
    fn greedy_partition_valid(dag in layered_dag(), s in 1usize..=6) {
        let p = greedy_partition(&dag, s);
        prop_assert!(p.verify(&dag, s).is_ok());
        // And class count shrinks (weakly) as S grows.
        let p2 = greedy_partition(&dag, s + 2);
        prop_assert!(p2.len() <= p.len());
    }

    /// Min-dominator sizes are monotone under target-set inclusion and
    /// bounded by the input count and the target count.
    #[test]
    fn dominator_bounds(dag in layered_dag()) {
        let outputs = dag.outputs();
        let dom_all = min_dominator_size(&dag, &outputs);
        prop_assert!(dom_all <= outputs.len() as i64);
        prop_assert!(dom_all <= dag.inputs().len() as i64);
        if outputs.len() > 1 {
            let dom_one = min_dominator_size(&dag, &outputs[..1]);
            prop_assert!(dom_one <= dom_all);
        }
    }

    /// The generated-set relation is consistent with the generation test.
    #[test]
    fn generated_set_consistent(dag in layered_dag()) {
        let inputs = dag.inputs();
        prop_assume!(!inputs.is_empty());
        let blockers = &inputs[..1.max(inputs.len() / 2)];
        let theta = dag.generated_set(blockers);
        for v in 0..dag.len() as VertexId {
            let in_theta = theta.contains(&v);
            prop_assert_eq!(
                in_theta,
                dag.generates(blockers, v),
                "vertex {} disagreement", v
            );
        }
    }
}
