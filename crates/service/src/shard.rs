//! Device-sharded record stores with a manifest index and LRU metadata.
//!
//! A long-lived tuning service accumulates records for *many* devices,
//! and costs from different devices must never be mixed — the workload
//! fingerprint already separates them logically, but one flat file makes
//! every load parse every device's history and every save rewrite it.
//! A [`ShardedStore`] keeps **one [`RecordStore`] file per device
//! fingerprint** (`"<preset name>|<smem bytes>"`) inside a directory,
//! indexed by a manifest that also persists the service's LRU metadata
//! (a logical clock plus a last-hit stamp per workload).
//!
//! Everything stays deterministic: shards are a `BTreeMap` keyed by
//! device key, each shard file is the store's canonical JSONL, and the
//! manifest lists shards and stamps in sorted order — two services that
//! saw the same history write byte-identical directories.
//!
//! Splitting a flat store into shards and merging shards back into a
//! flat store are exact inverses on the record set ([`from_flat`] /
//! [`merged`]; pinned by the crate's property tests).
//!
//! [`from_flat`]: ShardedStore::from_flat
//! [`merged`]: ShardedStore::merged

use iolb_autotune::plan::{anchor_fingerprint, ANCHOR_FLOOR};
use iolb_records::{RecordStore, TuningRecord, Workload};
use std::collections::{BTreeMap, BTreeSet};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Manifest file name inside a shard directory.
pub const MANIFEST_FILE: &str = "manifest.tsv";

/// Advisory lock file name inside a shard directory. The file itself is
/// permanent (never deleted — unlinking an advisory lock file races
/// with concurrent acquirers); the *lock* is an OS `flock` on it.
pub const LOCK_FILE: &str = "manifest.lock";

/// Default time writers wait for the directory lock before giving up.
/// Configurable per service via `ServiceConfig::lock_timeout` and on the
/// CLI via `tune-cache --lock-timeout`.
pub const LOCK_TIMEOUT: Duration = Duration::from_secs(30);

/// Why a [`DirLock`] could not be acquired — the typed alternative to a
/// generic I/O failure, so callers can distinguish "another writer held
/// the directory for the whole window" (retryable, report who/where)
/// from a real filesystem error.
#[derive(Debug)]
pub enum LockError {
    /// Another process held the lock for the entire timeout window.
    Timeout {
        /// The lock file that stayed held.
        path: PathBuf,
        /// How long this acquirer waited before giving up.
        waited: Duration,
    },
    /// Filesystem-level failure (permissions, unreadable directory, ...).
    Io(std::io::Error),
}

impl std::fmt::Display for LockError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LockError::Timeout { path, waited } => write!(
                f,
                "timed out after {:.1}s waiting for {}",
                waited.as_secs_f64(),
                path.display()
            ),
            LockError::Io(e) => write!(f, "cannot acquire directory lock: {e}"),
        }
    }
}

impl std::error::Error for LockError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LockError::Io(e) => Some(e),
            LockError::Timeout { .. } => None,
        }
    }
}

impl From<std::io::Error> for LockError {
    fn from(e: std::io::Error) -> Self {
        LockError::Io(e)
    }
}

impl From<LockError> for std::io::Error {
    fn from(e: LockError) -> Self {
        match e {
            LockError::Timeout { .. } => {
                std::io::Error::new(std::io::ErrorKind::TimedOut, e.to_string())
            }
            LockError::Io(io) => io,
        }
    }
}

/// Version tag written into the manifest header. Loaders reject foreign
/// versions (same stance as the record schema: re-tune, never guess).
pub const MANIFEST_VERSION: u32 = 1;

/// The device fingerprint a record is sharded by: preset name plus
/// shared-memory size, exactly the two fields [`Workload`] identifies a
/// device with.
pub fn device_key(device: &str, smem_bytes: u32) -> String {
    format!("{device}|{smem_bytes}")
}

/// The device key of a workload.
pub fn workload_device_key(w: &Workload) -> String {
    device_key(&w.device, w.smem_bytes)
}

/// FNV-1a, the same dependency-free hash the proptest shim uses. Also
/// the hash the fleet router's consistent-hash ring is built on (see
/// [`crate::fleet`]): stable across runs and builds, so the same
/// fingerprint set always lands on the same peers.
pub(crate) fn fnv1a(text: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Deterministic shard file name for a device key: a readable slug plus
/// the full 64-bit FNV hash so distinct keys can never collide after
/// slugification (`"Tesla V100|98304"` → `"tesla-v100-98304-<hash>.jsonl"`).
pub fn shard_file_name(key: &str) -> String {
    let mut slug = String::with_capacity(key.len());
    let mut last_dash = true; // suppress a leading dash
    for c in key.chars() {
        if c.is_ascii_alphanumeric() {
            slug.push(c.to_ascii_lowercase());
            last_dash = false;
        } else if !last_dash {
            slug.push('-');
            last_dash = true;
        }
    }
    let slug = slug.trim_end_matches('-');
    format!("{slug}-{:016x}.jsonl", fnv1a(key))
}

/// How records leave a long-lived store: least-recently-hit workloads
/// are truncated to their `top_k` best records (and, if the store is
/// still over budget, to their single best). The best-cost record of a
/// workload is **never** evicted — replay of a known workload must stay
/// exact forever; only the diversity of its alternatives ages out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictionPolicy {
    /// Target total record count across all shards.
    pub max_records: usize,
    /// Records retained per evicted (cold) workload in the first pass.
    pub top_k: usize,
}

impl Default for EvictionPolicy {
    fn default() -> Self {
        Self { max_records: 4096, top_k: 4 }
    }
}

/// An exclusive advisory lock on a shard directory — the cross-process
/// write protocol.
///
/// **Who takes it:** every *writer* ([`ShardedStore::merge_into_dir`],
/// the service's `save`/`sync_dir`, `tune-cache evict`/`tune-net`), for
/// the duration of one load → mutate → save cycle (milliseconds; tuning
/// itself happens *outside* the lock). **Readers never lock**: every
/// file in the directory is replaced atomically (pid-qualified temp +
/// rename), so a concurrent load always sees a consistent manifest and
/// consistent shard files — at worst one save older than the newest.
///
/// **Crash behavior:** the lock is an OS `flock` on [`LOCK_FILE`], so
/// the kernel releases it the instant the holding process dies — a
/// crashed writer can never wedge the directory. The lock *file* is
/// deliberately never deleted: unlinking it would race a concurrent
/// acquirer (two processes each holding "the" lock on different
/// inodes). Its contents (the last holder's pid) are diagnostic only.
#[derive(Debug)]
pub struct DirLock {
    file: std::fs::File,
    path: PathBuf,
}

impl DirLock {
    /// Acquires the directory's writer lock, polling until `timeout`
    /// elapses (the critical sections it guards are short, so waiters
    /// spin briefly in practice). Creates the directory and lock file if
    /// missing. Fails with the typed [`LockError::Timeout`] when some
    /// other process holds the lock for the whole window (converting to
    /// `std::io::ErrorKind::TimedOut` through `?` in `io::Result`
    /// contexts).
    pub fn acquire(dir: impl AsRef<Path>, timeout: Duration) -> Result<Self, LockError> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let path = dir.join(LOCK_FILE);
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let deadline = Instant::now() + timeout;
        loop {
            match file.try_lock() {
                Ok(()) => break,
                Err(std::fs::TryLockError::WouldBlock) => {
                    if Instant::now() >= deadline {
                        return Err(LockError::Timeout { path, waited: timeout });
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(std::fs::TryLockError::Error(e)) => return Err(LockError::Io(e)),
            }
        }
        // Best-effort diagnostics: who holds it. Failure to write the
        // pid must not fail the acquisition.
        let _ = file.set_len(0);
        let _ = (&file).write_all(format!("pid {}\n", std::process::id()).as_bytes());
        Ok(Self { file, path })
    }

    /// The lock file's path (diagnostics).
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for DirLock {
    fn drop(&mut self) {
        // Explicit for clarity; closing the descriptor releases the
        // flock anyway (as does process death — the crash story).
        let _ = self.file.unlock();
    }
}

/// What a cross-process [`ShardedStore::merge_into_dir`] did.
#[derive(Debug, Clone)]
pub struct DirMergeReport {
    /// Records this merge added to the directory (records the directory
    /// already held count zero).
    pub inserted: usize,
    /// Records the directory holds after the merge.
    pub total: usize,
    /// What loading the directory's prior contents observed.
    pub load: ShardLoadReport,
}

/// What a tolerant [`ShardedStore::load`] observed.
#[derive(Debug, Clone, Default)]
pub struct ShardLoadReport {
    /// Records indexed across all shards.
    pub loaded: usize,
    /// Human-readable problems (skipped lines, missing files, foreign
    /// manifest entries). Empty means the directory was pristine.
    pub warnings: Vec<String>,
}

impl ShardLoadReport {
    pub fn is_clean(&self) -> bool {
        self.warnings.is_empty()
    }
}

/// A set of per-device [`RecordStore`] shards plus LRU metadata and an
/// anchor-bucket secondary index (see
/// [`iolb_autotune::plan::anchor_fingerprint`]): every stored workload
/// is also findable by the anchor fingerprint of its bucket, so an
/// exact-fingerprint miss can consult bucket-mates for transfer.
#[derive(Debug, Clone)]
pub struct ShardedStore {
    /// device key → that device's records.
    shards: BTreeMap<String, RecordStore>,
    /// workload fingerprint → logical last-hit stamp.
    last_hit: BTreeMap<String, u64>,
    /// Logical clock; bumped by every [`touch`](Self::touch).
    clock: u64,
    /// The anchor floor the secondary index is built under.
    anchor_floor: usize,
    /// device key → anchor fingerprint → exact fingerprints in the
    /// bucket. Pure function of `(records, anchor_floor)`: maintained by
    /// [`insert`](Self::insert) (the one membership-adding path) and
    /// rebuilt by [`set_anchor_floor`](Self::set_anchor_floor).
    anchor_index: BTreeMap<String, BTreeMap<String, BTreeSet<String>>>,
}

impl Default for ShardedStore {
    fn default() -> Self {
        Self {
            shards: BTreeMap::new(),
            last_hit: BTreeMap::new(),
            clock: 0,
            anchor_floor: ANCHOR_FLOOR,
            anchor_index: BTreeMap::new(),
        }
    }
}

impl PartialEq for ShardedStore {
    /// Equality is over the observable history (records, stamps, clock).
    /// The anchor index is a pure function of the records and floor, and
    /// the floor is service configuration, not transferred state — two
    /// stores holding the same records are the same store.
    fn eq(&self, other: &Self) -> bool {
        self.shards == other.shards && self.last_hit == other.last_hit && self.clock == other.clock
    }
}

impl ShardedStore {
    pub fn new() -> Self {
        Self::default()
    }

    /// Splits a flat store into device shards (the record-set identity
    /// inverse of [`merged`](Self::merged)).
    pub fn from_flat(flat: RecordStore) -> Self {
        let mut sharded = Self::new();
        sharded.merge_flat(flat);
        sharded
    }

    /// Total records across all shards.
    pub fn len(&self) -> usize {
        self.shards.values().map(RecordStore::len).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.shards.values().all(RecordStore::is_empty)
    }

    /// Number of device shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Distinct workloads across all shards.
    pub fn workload_count(&self) -> usize {
        self.shards.values().map(RecordStore::workload_count).sum()
    }

    /// Device keys in deterministic order.
    pub fn device_keys(&self) -> impl Iterator<Item = &str> {
        self.shards.keys().map(String::as_str)
    }

    /// One device's shard, if any.
    pub fn shard(&self, key: &str) -> Option<&RecordStore> {
        self.shards.get(key)
    }

    /// `(device key, shard)` pairs in deterministic order.
    pub fn shards(&self) -> impl Iterator<Item = (&str, &RecordStore)> {
        self.shards.iter().map(|(k, s)| (k.as_str(), s))
    }

    /// Routes a record into its device's shard and indexes the workload
    /// under its anchor bucket. Membership is monotone: even a
    /// superseded duplicate proves the workload exists in its bucket.
    pub fn insert(&mut self, rec: TuningRecord) -> bool {
        let device = workload_device_key(&rec.workload);
        let anchor = anchor_fingerprint(&rec.workload, self.anchor_floor);
        let exact = rec.workload.fingerprint();
        self.anchor_index
            .entry(device.clone())
            .or_default()
            .entry(anchor)
            .or_default()
            .insert(exact);
        self.shards.entry(device).or_default().insert(rec)
    }

    /// The anchor floor the secondary index is built under.
    pub fn anchor_floor(&self) -> usize {
        self.anchor_floor
    }

    /// Re-buckets the secondary index under a new anchor floor (the
    /// service threads `ServiceConfig::anchor_floor` through here when
    /// it adopts a store). A no-op at the current floor.
    pub fn set_anchor_floor(&mut self, floor: usize) {
        if floor != self.anchor_floor {
            self.anchor_floor = floor;
            self.rebuild_anchor_index();
        }
    }

    fn rebuild_anchor_index(&mut self) {
        let mut index: BTreeMap<String, BTreeMap<String, BTreeSet<String>>> = BTreeMap::new();
        for (key, shard) in &self.shards {
            for (fp, rec) in shard.best_entries() {
                index
                    .entry(key.clone())
                    .or_default()
                    .entry(anchor_fingerprint(&rec.workload, self.anchor_floor))
                    .or_default()
                    .insert(fp.to_string());
            }
        }
        self.anchor_index = index;
    }

    /// Distinct anchor buckets indexed for one device shard.
    pub fn anchor_bucket_count(&self, device_key: &str) -> usize {
        self.anchor_index.get(device_key).map_or(0, BTreeMap::len)
    }

    /// The best transfer donor in the workload's anchor bucket: among
    /// same-bucket, transfer-compatible workloads — the exact
    /// fingerprint itself excluded — the stored best record with the
    /// lowest cost. Ties break toward the lexicographically smaller
    /// fingerprint (the bucket iterates in sorted order), so the donor
    /// choice is fully deterministic. The caller still gates the
    /// transfer analytically ([`crate::queue::transfer_admissible`]).
    pub fn anchor_donor(&self, workload: &Workload) -> Option<&TuningRecord> {
        let key = workload_device_key(workload);
        let shard = self.shards.get(&key)?;
        let bucket =
            self.anchor_index.get(&key)?.get(&anchor_fingerprint(workload, self.anchor_floor))?;
        let own = workload.fingerprint();
        let mut best: Option<&TuningRecord> = None;
        for fp in bucket {
            if *fp == own {
                continue;
            }
            let Some(candidate) = shard.records(fp).first() else { continue };
            if !workload.transfer_compatible(&candidate.workload) {
                continue;
            }
            if best.is_none_or(|b| candidate.canonical_cmp(b) == std::cmp::Ordering::Less) {
                best = Some(candidate);
            }
        }
        best
    }

    /// All records of a workload (canonical order, best first).
    pub fn records(&self, workload: &Workload) -> &[TuningRecord] {
        self.shards
            .get(&workload_device_key(workload))
            .map_or(&[], |s| s.records(&workload.fingerprint()))
    }

    /// The best stored record of a workload, if any.
    pub fn best(&self, workload: &Workload) -> Option<&TuningRecord> {
        self.records(workload).first()
    }

    /// Marks a workload as hit *now* (bumps the logical clock). The
    /// eviction policy keeps what is touched often.
    pub fn touch(&mut self, fingerprint: &str) {
        self.clock += 1;
        self.last_hit.insert(fingerprint.to_string(), self.clock);
    }

    /// The last-hit stamp of a workload (0 = never hit, coldest).
    pub fn last_hit(&self, fingerprint: &str) -> u64 {
        self.last_hit.get(fingerprint).copied().unwrap_or(0)
    }

    /// All persisted `(fingerprint, last-hit stamp)` pairs in
    /// deterministic (fingerprint) order — the wire codec serializes a
    /// store's LRU metadata from here.
    pub fn hit_stamps(&self) -> impl Iterator<Item = (&str, u64)> {
        self.last_hit.iter().map(|(fp, &stamp)| (fp.as_str(), stamp))
    }

    /// Restores a persisted stamp *without* bumping the logical clock
    /// (the deserialization inverse of [`hit_stamps`](Self::hit_stamps);
    /// [`touch`](Self::touch) is the live path). Keeps the stamp
    /// invariant: the clock never falls behind a restored stamp.
    pub fn restore_hit(&mut self, fingerprint: &str, stamp: u64) {
        let entry = self.last_hit.entry(fingerprint.to_string()).or_insert(0);
        *entry = (*entry).max(stamp);
        self.clock = self.clock.max(stamp);
    }

    /// Forces the logical clock to at least `clock` (state transfer;
    /// the clock never runs backwards).
    pub fn restore_clock(&mut self, clock: u64) {
        self.clock = self.clock.max(clock);
    }

    /// Current logical clock value.
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Merges a flat store in, routing every record to its device shard.
    /// Returns how many records changed the store.
    pub fn merge_flat(&mut self, flat: RecordStore) -> usize {
        let mut inserted = 0;
        for (_, list) in flat.into_entries() {
            for rec in list {
                if self.insert(rec) {
                    inserted += 1;
                }
            }
        }
        inserted
    }

    /// Cross-shard merge-out: every shard's records folded into one flat
    /// store (the record-set identity inverse of [`Self::from_flat`]).
    pub fn merged(&self) -> RecordStore {
        let mut flat = RecordStore::new();
        for shard in self.shards.values() {
            flat.merge(shard.clone());
        }
        flat
    }

    /// Union-merges another sharded store into this one: records route
    /// to their device shards, LRU stamps take the per-workload maximum,
    /// and the logical clock takes the maximum — so two histories merge
    /// without either's recency information running backwards. Returns
    /// how many records changed the store.
    pub fn absorb(&mut self, other: ShardedStore) -> usize {
        let inserted = self.merge_flat(other.merged());
        for (fp, stamp) in other.last_hit {
            let entry = self.last_hit.entry(fp).or_insert(0);
            *entry = (*entry).max(stamp);
        }
        self.clock = self.clock.max(other.clock);
        inserted
    }

    /// Cross-process append: under the directory's advisory [`DirLock`],
    /// loads whatever the directory currently holds, [`absorb`]s this
    /// store into it, and writes the union back. This — not [`save`],
    /// which *overwrites* — is how multiple OS processes share one shard
    /// directory: every writer's records survive, in canonical order,
    /// whatever the interleaving. Records are deduplicated by
    /// `(workload, config)`, so two processes that tuned the same
    /// workload (hermetic runs are bit-identical) merge to one copy.
    ///
    /// [`absorb`]: Self::absorb
    /// [`save`]: Self::save
    pub fn merge_into_dir(&self, dir: impl AsRef<Path>) -> std::io::Result<DirMergeReport> {
        self.merge_into_dir_with(dir, LOCK_TIMEOUT)
    }

    /// [`merge_into_dir`](Self::merge_into_dir) with a caller-chosen
    /// lock-acquisition timeout (the service threads its
    /// `ServiceConfig::lock_timeout` through here).
    pub fn merge_into_dir_with(
        &self,
        dir: impl AsRef<Path>,
        lock_timeout: Duration,
    ) -> std::io::Result<DirMergeReport> {
        let dir = dir.as_ref();
        let _lock = DirLock::acquire(dir, lock_timeout)?;
        self.merge_into_dir_locked(dir)
    }

    /// The body of [`merge_into_dir`](Self::merge_into_dir) for callers
    /// that **already hold** the directory's [`DirLock`] — the service's
    /// `sync_dir` uses this so it can merge records *and* the stats
    /// sidecar inside one critical section (a sidecar written after the
    /// lock drops could be overwritten by a concurrent writer,
    /// silently losing telemetry).
    pub fn merge_into_dir_locked(&self, dir: &Path) -> std::io::Result<DirMergeReport> {
        let (mut disk, load) = Self::load(dir)?;
        let inserted = disk.absorb(self.clone());
        disk.save(dir)?;
        Ok(DirMergeReport { inserted, total: disk.len(), load })
    }

    /// Applies the eviction policy: while the store holds more than
    /// `policy.max_records` records, least-recently-hit workloads are
    /// truncated to their `policy.top_k` best records (coldest first;
    /// ties break on fingerprint), then — if still over budget — to
    /// their single best record. A workload's best-cost record is never
    /// removed, so the store can stay above `max_records` when it holds
    /// more workloads than that. Returns how many records were dropped.
    pub fn evict(&mut self, policy: &EvictionPolicy) -> usize {
        let mut total = self.len();
        if total <= policy.max_records {
            return 0;
        }
        // Coldest-first eviction order: (stamp, fingerprint) ascending.
        let mut order: Vec<(u64, String, String)> = Vec::new();
        for (key, shard) in &self.shards {
            for (fp, _) in shard.entries() {
                order.push((self.last_hit(fp), fp.to_string(), key.clone()));
            }
        }
        order.sort();
        let mut dropped = 0;
        'passes: for keep_floor in [policy.top_k.max(1), 1] {
            for (_, fp, key) in &order {
                if total <= policy.max_records {
                    break 'passes;
                }
                let shard = self.shards.get_mut(key).expect("shard of listed workload");
                // Truncate only as far as the budget requires: the
                // last-touched workload keeps everything the budget
                // still allows, never less than the pass's floor.
                let excess = total - policy.max_records;
                let keep = keep_floor.max(shard.records(fp).len().saturating_sub(excess));
                let d = shard.truncate_workload(fp, keep);
                dropped += d;
                total -= d;
            }
        }
        dropped
    }

    /// Canonical manifest text: version header, clock, shard index
    /// (sorted by device key), last-hit stamps (sorted by fingerprint).
    /// Tab-separated because device names contain spaces and
    /// fingerprints contain `|`.
    fn manifest_text(&self) -> String {
        let mut out = format!("# iolb-service shard manifest v{MANIFEST_VERSION}\n");
        out.push_str(&format!("clock\t{}\n", self.clock));
        for key in self.shards.keys() {
            out.push_str(&format!("shard\t{key}\t{}\n", shard_file_name(key)));
        }
        for (fp, stamp) in &self.last_hit {
            out.push_str(&format!("hit\t{stamp}\t{fp}\n"));
        }
        out
    }

    /// Writes the directory: one canonical JSONL file per shard plus the
    /// manifest, each atomically (pid-qualified temp file + rename, so
    /// concurrent processes can never truncate each other's in-flight
    /// writes). Deterministic: equal stores write byte-identical
    /// directories. **Overwrites**: records other processes added since
    /// this store loaded are lost — cross-process writers use
    /// [`merge_into_dir`](Self::merge_into_dir) instead.
    pub fn save(&self, dir: impl AsRef<Path>) -> std::io::Result<()> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        for (key, shard) in &self.shards {
            shard.save(dir.join(shard_file_name(key)))?;
        }
        let tmp = dir.join(format!("manifest.tsv.tmp.{}", std::process::id()));
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(self.manifest_text().as_bytes())?;
            f.sync_all()?;
        }
        std::fs::rename(tmp, dir.join(MANIFEST_FILE))
    }

    /// Loads a shard directory. A missing directory or manifest loads as
    /// an empty store with a clean report (first runs need no special
    /// casing); malformed manifest lines, unreadable shard files and
    /// skipped records are reported as warnings, never errors —
    /// corruption costs re-tuning, not availability.
    pub fn load(dir: impl AsRef<Path>) -> std::io::Result<(Self, ShardLoadReport)> {
        let dir = dir.as_ref();
        let mut sharded = Self::new();
        let mut report = ShardLoadReport::default();
        let manifest_path = dir.join(MANIFEST_FILE);
        if !manifest_path.exists() {
            return Ok((sharded, report));
        }
        let text = std::fs::read_to_string(&manifest_path)?;
        let mut max_stamp = 0u64;
        for (i, line) in text.lines().enumerate() {
            let line = line.trim_end();
            if line.is_empty() {
                continue;
            }
            if let Some(version) = line.strip_prefix("# iolb-service shard manifest v") {
                if version.trim().parse::<u32>() != Ok(MANIFEST_VERSION) {
                    report.warnings.push(format!(
                        "manifest:{}: foreign manifest version {version:?}; ignoring directory",
                        i + 1
                    ));
                    return Ok((Self::new(), report));
                }
                continue;
            }
            if line.starts_with('#') {
                continue;
            }
            let mut fields = line.split('\t');
            match (fields.next(), fields.next(), fields.next()) {
                (Some("clock"), Some(c), None) => match c.parse() {
                    Ok(c) => sharded.clock = c,
                    Err(_) => report.warnings.push(format!("manifest:{}: bad clock {c:?}", i + 1)),
                },
                (Some("shard"), Some(key), Some(file)) => {
                    let path = dir.join(file);
                    match std::fs::read_to_string(&path) {
                        Ok(jsonl) => {
                            let (store, load) = RecordStore::from_jsonl(&jsonl);
                            for (line_no, reason) in &load.skipped {
                                report.warnings.push(format!("{file}:{line_no}: {reason}"));
                            }
                            report.loaded += store.len();
                            // Route through insert(): records misfiled
                            // under the wrong shard self-heal, and the
                            // shard exists even when empty.
                            sharded.shards.entry(key.to_string()).or_default();
                            for (_, list) in store.into_entries() {
                                for rec in list {
                                    sharded.insert(rec);
                                }
                            }
                        }
                        Err(e) => {
                            report.warnings.push(format!("{file}: unreadable shard: {e}"));
                        }
                    }
                }
                (Some("hit"), Some(stamp), Some(fp)) => match stamp.parse::<u64>() {
                    Ok(stamp) => {
                        max_stamp = max_stamp.max(stamp);
                        sharded.last_hit.insert(fp.to_string(), stamp);
                    }
                    Err(_) => {
                        report.warnings.push(format!("manifest:{}: bad stamp {stamp:?}", i + 1))
                    }
                },
                _ => {
                    report.warnings.push(format!("manifest:{}: unrecognized line {line:?}", i + 1))
                }
            }
        }
        // A crash between shard saves and the manifest write can leave
        // stamps ahead of the clock; never let the clock run backwards.
        sharded.clock = sharded.clock.max(max_stamp);
        Ok((sharded, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iolb_core::optimality::TileKind;
    use iolb_core::shapes::ConvShape;
    use iolb_dataflow::config::ScheduleConfig;
    use iolb_tensor::layout::Layout;

    fn wl(cin: usize, device: &str) -> Workload {
        Workload::new(ConvShape::square(cin, 28, 32, 3, 1, 1), TileKind::Direct, device, 96 * 1024)
    }

    fn cfg(x: usize) -> ScheduleConfig {
        ScheduleConfig {
            x,
            y: 7,
            z: 8,
            nxt: 1,
            nyt: 1,
            nzt: 1,
            sb_bytes: 16 * 1024,
            layout: Layout::Chw,
        }
    }

    fn rec(cin: usize, device: &str, x: usize, cost: f64) -> TuningRecord {
        TuningRecord::new(wl(cin, device), cfg(x), cost, 7).unwrap()
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "iolb-service-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn insert_routes_by_device() {
        let mut s = ShardedStore::new();
        assert!(s.insert(rec(64, "Tesla V100", 7, 1.0)));
        assert!(s.insert(rec(64, "GTX 1080 Ti", 7, 2.0)));
        assert_eq!(s.shard_count(), 2);
        assert_eq!(s.len(), 2);
        assert_eq!(s.best(&wl(64, "Tesla V100")).unwrap().cost_ms, 1.0);
        assert_eq!(s.best(&wl(64, "GTX 1080 Ti")).unwrap().cost_ms, 2.0);
        assert!(s.best(&wl(32, "Tesla V100")).is_none());
    }

    #[test]
    fn split_then_merge_is_identity_on_records() {
        let mut flat = RecordStore::new();
        for (cin, dev, x, cost) in [
            (64, "Tesla V100", 7, 1.0),
            (64, "Tesla V100", 14, 2.0),
            (64, "GTX 1080 Ti", 7, 3.0),
            (32, "Titan X", 7, 0.5),
        ] {
            flat.insert(rec(cin, dev, x, cost));
        }
        let sharded = ShardedStore::from_flat(flat.clone());
        assert_eq!(sharded.shard_count(), 3);
        assert_eq!(sharded.merged().to_jsonl(), flat.to_jsonl());
    }

    #[test]
    fn shard_file_names_are_distinct_and_stable() {
        let a = shard_file_name(&device_key("Tesla V100", 96 * 1024));
        let b = shard_file_name(&device_key("Tesla V100", 64 * 1024));
        let c = shard_file_name(&device_key("tesla v100", 96 * 1024));
        assert_ne!(a, b);
        assert_ne!(a, c, "slug collision must be broken by the hash suffix");
        assert_eq!(a, shard_file_name(&device_key("Tesla V100", 96 * 1024)));
        assert!(a.ends_with(".jsonl") && a.starts_with("tesla-v100-98304-"));
    }

    #[test]
    fn eviction_is_coldest_first_and_keeps_best() {
        let mut s = ShardedStore::new();
        for x in [7, 14, 28, 4, 2] {
            s.insert(rec(64, "Tesla V100", x, x as f64));
        }
        for x in [7, 14, 28] {
            s.insert(rec(32, "Tesla V100", x, x as f64));
        }
        // cin=32 is hot, cin=64 never hit (stamp 0, coldest).
        s.touch(&wl(32, "Tesla V100").fingerprint());
        let dropped = s.evict(&EvictionPolicy { max_records: 5, top_k: 2 });
        assert_eq!(dropped, 3, "cold workload truncated to top-2");
        assert_eq!(s.records(&wl(64, "Tesla V100")).len(), 2);
        assert_eq!(s.records(&wl(32, "Tesla V100")).len(), 3, "hot workload untouched");
        assert_eq!(s.best(&wl(64, "Tesla V100")).unwrap().cost_ms, 2.0, "best survives");
        // Tighter budget: second pass cuts everything to its best record.
        let dropped = s.evict(&EvictionPolicy { max_records: 2, top_k: 2 });
        assert_eq!(dropped, 3);
        assert_eq!(s.len(), 2);
        assert_eq!(s.best(&wl(32, "Tesla V100")).unwrap().cost_ms, 7.0);
        // Below the per-workload floor nothing more can go.
        assert_eq!(s.evict(&EvictionPolicy { max_records: 1, top_k: 1 }), 0);
    }

    #[test]
    fn evict_under_budget_is_a_no_op() {
        let mut s = ShardedStore::new();
        s.insert(rec(64, "Tesla V100", 7, 1.0));
        assert_eq!(s.evict(&EvictionPolicy::default()), 0);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn save_load_round_trips_records_clock_and_stamps() {
        let mut s = ShardedStore::new();
        s.insert(rec(64, "Tesla V100", 7, 1.0));
        s.insert(rec(64, "GTX 1080 Ti", 7, 2.0));
        s.insert(rec(32, "Tesla V100", 14, 3.0));
        s.touch(&wl(64, "Tesla V100").fingerprint());
        s.touch(&wl(32, "Tesla V100").fingerprint());
        let dir = temp_dir("roundtrip");
        s.save(&dir).unwrap();
        let (loaded, report) = ShardedStore::load(&dir).unwrap();
        assert!(report.is_clean(), "warnings: {:?}", report.warnings);
        assert_eq!(report.loaded, 3);
        assert_eq!(loaded.merged().to_jsonl(), s.merged().to_jsonl());
        assert_eq!(loaded.clock(), s.clock());
        assert_eq!(
            loaded.last_hit(&wl(32, "Tesla V100").fingerprint()),
            s.last_hit(&wl(32, "Tesla V100").fingerprint())
        );
        // Saving the loaded store reproduces the manifest byte-for-byte.
        let manifest_a = std::fs::read(dir.join(MANIFEST_FILE)).unwrap();
        let dir2 = temp_dir("roundtrip2");
        loaded.save(&dir2).unwrap();
        let manifest_b = std::fs::read(dir2.join(MANIFEST_FILE)).unwrap();
        assert_eq!(manifest_a, manifest_b);
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&dir2);
    }

    #[test]
    fn missing_directory_loads_empty_and_clean() {
        let (s, report) = ShardedStore::load(temp_dir("missing")).unwrap();
        assert!(s.is_empty() && report.is_clean());
    }

    #[test]
    fn corrupt_manifest_lines_warn_but_load_continues() {
        let mut s = ShardedStore::new();
        s.insert(rec(64, "Tesla V100", 7, 1.0));
        let dir = temp_dir("corrupt");
        s.save(&dir).unwrap();
        let manifest = dir.join(MANIFEST_FILE);
        let mut text = std::fs::read_to_string(&manifest).unwrap();
        text.push_str("shard\tNo Such Device|1\tmissing-shard.jsonl\n");
        text.push_str("gibberish line\n");
        text.push_str("hit\tnot-a-number\tsome|fingerprint\n");
        std::fs::write(&manifest, text).unwrap();
        let (loaded, report) = ShardedStore::load(&dir).unwrap();
        assert_eq!(loaded.len(), 1, "good shard still loads");
        assert_eq!(report.warnings.len(), 3, "warnings: {:?}", report.warnings);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dir_lock_is_exclusive_until_dropped() {
        let dir = temp_dir("lock");
        std::fs::create_dir_all(&dir).unwrap();
        let held = DirLock::acquire(&dir, Duration::from_secs(5)).unwrap();
        assert!(held.path().exists());
        let contended = DirLock::acquire(&dir, Duration::from_millis(20));
        let err = contended.unwrap_err();
        assert!(
            matches!(err, LockError::Timeout { ref path, waited } if path == &dir.join(LOCK_FILE)
                && waited == Duration::from_millis(20)),
            "expected a typed timeout, got {err:?}"
        );
        // The io::Error conversion (used by `?` in io::Result contexts)
        // preserves the TimedOut kind.
        assert_eq!(std::io::Error::from(err).kind(), std::io::ErrorKind::TimedOut);
        drop(held);
        let reacquired = DirLock::acquire(&dir, Duration::from_secs(5));
        assert!(reacquired.is_ok());
        drop(reacquired);
        assert!(dir.join(LOCK_FILE).exists(), "lock file is permanent by design");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn absorb_unions_records_stamps_and_clock() {
        let mut a = ShardedStore::new();
        a.insert(rec(64, "Tesla V100", 7, 1.0));
        a.touch(&wl(64, "Tesla V100").fingerprint()); // clock 1
        let mut b = ShardedStore::new();
        b.insert(rec(64, "Tesla V100", 7, 1.0)); // duplicate record
        b.insert(rec(32, "GTX 1080 Ti", 14, 2.0));
        b.touch(&wl(32, "GTX 1080 Ti").fingerprint());
        b.touch(&wl(32, "GTX 1080 Ti").fingerprint()); // clock 2
        let inserted = a.absorb(b);
        assert_eq!(inserted, 1, "only the genuinely new record lands");
        assert_eq!(a.len(), 2);
        assert_eq!(a.clock(), 2, "clock takes the maximum");
        assert_eq!(a.last_hit(&wl(64, "Tesla V100").fingerprint()), 1);
        assert_eq!(a.last_hit(&wl(32, "GTX 1080 Ti").fingerprint()), 2);
    }

    #[test]
    fn merge_into_dir_unions_with_prior_contents() {
        let dir = temp_dir("mergeinto");
        let mut a = ShardedStore::new();
        a.insert(rec(64, "Tesla V100", 7, 1.0));
        let report = a.merge_into_dir(&dir).unwrap();
        assert_eq!((report.inserted, report.total), (1, 1));
        assert!(report.load.is_clean());
        // A second writer with overlapping + new records: union, not
        // overwrite.
        let mut b = ShardedStore::new();
        b.insert(rec(64, "Tesla V100", 7, 1.0));
        b.insert(rec(64, "Tesla V100", 14, 2.0));
        let report = b.merge_into_dir(&dir).unwrap();
        assert_eq!((report.inserted, report.total), (1, 2));
        let (merged, _) = ShardedStore::load(&dir).unwrap();
        let mut expected = a;
        expected.absorb(b);
        assert_eq!(merged.merged().to_jsonl(), expected.merged().to_jsonl());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn anchor_donor_finds_bucket_mates_on_the_same_device_only() {
        // 52x53 and 54x54 share the 64x64 anchor bucket; 70x54 does not.
        let shaped = |hin: usize, win: usize, device: &str| {
            Workload::new(
                ConvShape::new(96, hin, win, 24, 1, 1, 1, 0),
                TileKind::Direct,
                device,
                96 * 1024,
            )
        };
        let mut s = ShardedStore::new();
        let donor = shaped(54, 54, "Tesla V100");
        s.insert(TuningRecord::new(donor.clone(), cfg(2), 1.0, 7).unwrap());
        s.insert(TuningRecord::new(shaped(70, 54, "Tesla V100"), cfg(2), 0.1, 7).unwrap());
        s.insert(TuningRecord::new(shaped(52, 53, "GTX 1080 Ti"), cfg(2), 0.1, 7).unwrap());
        let target = shaped(52, 53, "Tesla V100");
        let found = s.anchor_donor(&target).expect("bucket mate on the same device");
        assert_eq!(found.workload.fingerprint(), donor.fingerprint());
        // The exact workload itself is never its own donor.
        s.insert(TuningRecord::new(target.clone(), cfg(2), 0.01, 7).unwrap());
        let found = s.anchor_donor(&target).expect("donor survives an exact record");
        assert_eq!(found.workload.fingerprint(), donor.fingerprint());
        // Transfer-incompatible bucket mates (different batch) are skipped.
        let batched = Workload { shape: target.shape.with_batch(4), ..target.clone() };
        assert!(s.anchor_donor(&batched).is_none());
        assert!(s.anchor_bucket_count(&device_key("Tesla V100", 96 * 1024)) >= 2);
    }

    #[test]
    fn anchor_donor_prefers_the_cheapest_bucket_mate_deterministically() {
        let shaped = |hin: usize| {
            Workload::new(
                ConvShape::new(96, hin, 54, 24, 1, 1, 1, 0),
                TileKind::Direct,
                "Tesla V100",
                96 * 1024,
            )
        };
        let mut s = ShardedStore::new();
        s.insert(TuningRecord::new(shaped(54), cfg(2), 2.0, 7).unwrap());
        s.insert(TuningRecord::new(shaped(50), cfg(4), 1.0, 7).unwrap());
        let found = s.anchor_donor(&shaped(52)).unwrap();
        assert_eq!(found.workload.shape.hin, 50, "lowest stored cost wins");
        // Survives save/load: the index is rebuilt from the records.
        let dir = temp_dir("anchoridx");
        s.save(&dir).unwrap();
        let (loaded, report) = ShardedStore::load(&dir).unwrap();
        assert!(report.is_clean());
        assert_eq!(loaded.anchor_donor(&shaped(52)).unwrap(), found);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn set_anchor_floor_rebuckets_the_index() {
        let shaped = |hin: usize| {
            Workload::new(
                ConvShape::new(8, hin, 12, 8, 1, 1, 1, 0),
                TileKind::Direct,
                "Tesla V100",
                96 * 1024,
            )
        };
        let mut s = ShardedStore::new();
        s.insert(TuningRecord::new(shaped(12), cfg(2), 1.0, 7).unwrap());
        // At the default floor (16), hin 12 vs 10 stay exact: no bucket
        // sharing, no donor.
        assert_eq!(s.anchor_floor(), iolb_autotune::plan::ANCHOR_FLOOR);
        assert!(s.anchor_donor(&shaped(10)).is_none());
        // At floor 8 both anchor to 16: the donor appears.
        s.set_anchor_floor(8);
        assert!(s.anchor_donor(&shaped(10)).is_some());
    }

    #[test]
    fn foreign_manifest_version_is_rejected_whole() {
        let dir = temp_dir("foreign");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(MANIFEST_FILE), "# iolb-service shard manifest v999\nclock\t5\n")
            .unwrap();
        let (loaded, report) = ShardedStore::load(&dir).unwrap();
        assert!(loaded.is_empty());
        assert_eq!(report.warnings.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
