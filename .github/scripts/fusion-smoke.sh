#!/usr/bin/env bash
# Fusion-aware tuning smoke: run `tune-bench replay --fuse` on a tiny
# model-zoo mix. The fuse pass segments each network into conv→relu(→pool)
# blocks, tunes gate-approved chains as composite workloads through BOTH
# the embedded service and a live daemon (wire v5 "epi"/"fused" grammar),
# asserts the fused totals are bit-identical across modes, and emits the
# fused-vs-per-layer split into the v3 bench schema. `tune-cache
# check-bench` gates the schema — including the strict perf win: the
# fused total must be strictly below the per-layer total. This script
# additionally re-asserts the win from the emitted JSON so a validator
# regression cannot mask it. The caller's RAYON_NUM_THREADS is honored.
set -euo pipefail

TB=target/release/tune-bench
TC=target/release/tune-cache
OUT=$(mktemp /tmp/iolb-bench-fusion.XXXXXX.json)
trap 'rm -f "$OUT"' EXIT

"$TB" replay --networks alexnet,squeezenet --clients 2 --repeat 2 --budget 4 --fuse -o "$OUT"

# Schema + invariants gate (v3: fuse fields present, gate fused at least
# one chain, fused total strictly below the per-layer total).
"$TC" check-bench "$OUT"

# Re-assert the headline numbers straight from the artifact.
summary=$(tail -n 1 "$OUT")
case "$summary" in
  *'"fuse":1'*) ;;
  *) echo "fusion smoke: summary line is missing \"fuse\":1: $summary"; exit 1 ;;
esac

fused=$(echo "$summary" | sed -n 's/.*"fused_total_cost_ms":\([0-9.eE+-]*\).*/\1/p')
perlayer=$(echo "$summary" | sed -n 's/.*"perlayer_total_cost_ms":\([0-9.eE+-]*\).*/\1/p')
if [ -z "$fused" ] || [ -z "$perlayer" ]; then
  echo "fusion smoke: could not extract fused/per-layer totals: $summary"
  exit 1
fi
if ! awk -v f="$fused" -v p="$perlayer" 'BEGIN { exit !(f < p) }'; then
  echo "fusion smoke: fused total $fused is not below per-layer total $perlayer"
  exit 1
fi

echo "fusion smoke OK: fused ${fused} ms < per-layer ${perlayer} ms"
