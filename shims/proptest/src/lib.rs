//! Offline stand-in for the `proptest` crate: the [`Strategy`] trait with
//! `prop_map`/`prop_filter`, range and tuple strategies, [`Just`],
//! `prop_oneof!`, `prop::collection::vec`, `any::<T>()`, and the
//! [`proptest!`] test macro with `prop_assert!`/`prop_assert_eq!`/
//! `prop_assume!`.
//!
//! The build environment has no network access, so the real crates.io
//! `proptest` cannot be vendored. Semantics kept: each test runs
//! `Config::cases` generated inputs; assumption failures reject the case
//! and draw a fresh one (with a global retry cap so a too-strict filter
//! fails loudly instead of looping); assertion failures panic with the
//! formatted message. **No shrinking** — a failing case reports the
//! values via panic message formatting at the call site instead of a
//! minimised counterexample.
//!
//! Case generation is deterministic: the RNG seed is derived from the
//! test's module path and name, so failures reproduce across runs.
//!
//! ```
//! use proptest::Strategy;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! // A strategy is just a seeded value generator here.
//! let even = (0u32..10).prop_map(|x| x * 2);
//! let mut rng = StdRng::seed_from_u64(1);
//! let v = even.new_value(&mut rng).unwrap();
//! assert!(v < 20 && v % 2 == 0);
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// How a test case ended early (mirrors `proptest::test_runner::TestCaseError`).
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed: discard the case, draw another.
    Reject(String),
    /// `prop_assert!` failed: the property is violated.
    Fail(String),
}

impl TestCaseError {
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }

    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

pub mod test_runner {
    /// Runner configuration (mirrors `proptest::test_runner::Config`).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of successful cases required per property.
        pub cases: u32,
        /// Cap on rejected cases (filters + assumptions) per property.
        pub max_global_rejects: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases, ..Config::default() }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256, max_global_rejects: 65_536 }
        }
    }
}

/// The alias the prelude exports, as in the real crate.
pub use test_runner::Config as ProptestConfig;

/// A generator of test-case values.
///
/// Unlike the real crate there is no value tree / shrinking; a strategy
/// simply draws a value from the runner's RNG, or rejects (filters).
pub trait Strategy {
    type Value;

    /// Draws one value. `Err` is a *rejection* (filter miss), not a test
    /// failure; the runner retries against its global reject budget.
    fn new_value(&self, rng: &mut StdRng) -> Result<Self::Value, Rejection>;

    fn prop_map<U, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, map }
    }

    fn prop_filter<F>(self, whence: impl Into<String>, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, whence: whence.into(), pred }
    }

    fn prop_filter_map<U, F>(self, whence: impl Into<String>, map: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<U>,
    {
        FilterMap { inner: self, whence: whence.into(), map }
    }

    /// Type-erases the strategy (mirrors `Strategy::boxed`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A rejected draw and why.
#[derive(Debug, Clone)]
pub struct Rejection(pub String);

/// Boxed, type-erased strategy (mirrors `proptest::strategy::BoxedStrategy`).
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn new_value(&self, rng: &mut StdRng) -> Result<T, Rejection> {
        (**self).new_value(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _: &mut StdRng) -> Result<T, Rejection> {
        Ok(self.0.clone())
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    map: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn new_value(&self, rng: &mut StdRng) -> Result<U, Rejection> {
        self.inner.new_value(rng).map(&self.map)
    }
}

/// `prop_filter` adapter.
pub struct Filter<S, F> {
    inner: S,
    whence: String,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn new_value(&self, rng: &mut StdRng) -> Result<S::Value, Rejection> {
        let v = self.inner.new_value(rng)?;
        if (self.pred)(&v) {
            Ok(v)
        } else {
            Err(Rejection(self.whence.clone()))
        }
    }
}

/// `prop_filter_map` adapter.
pub struct FilterMap<S, F> {
    inner: S,
    whence: String,
    map: F,
}

impl<S, U, F> Strategy for FilterMap<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> Option<U>,
{
    type Value = U;
    fn new_value(&self, rng: &mut StdRng) -> Result<U, Rejection> {
        (self.map)(self.inner.new_value(rng)?).ok_or_else(|| Rejection(self.whence.clone()))
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut StdRng) -> Result<$t, Rejection> {
                Ok(rng.gen_range(self.clone()))
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut StdRng) -> Result<$t, Rejection> {
                Ok(rng.gen_range(self.clone()))
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn new_value(&self, rng: &mut StdRng) -> Result<Self::Value, Rejection> {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                Ok(($($name.new_value(rng)?,)+))
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);
tuple_strategy!(A, B, C, D, E, F, G, H, I);
tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

/// Runtime choice among same-valued strategies — what `prop_oneof!`
/// builds (mirrors `proptest::strategy::Union`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn new_value(&self, rng: &mut StdRng) -> Result<T, Rejection> {
        let pick = rng.gen_range(0..self.options.len());
        self.options[pick].new_value(rng)
    }
}

/// Types with a canonical "anything" strategy (mirrors
/// `proptest::arbitrary::Arbitrary`, reduced to full-range primitives).
pub trait Arbitrary: Sized {
    fn arbitrary() -> BoxedStrategy<Self>;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary() -> BoxedStrategy<$t> {
                (<$t>::MIN..=<$t>::MAX).boxed()
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary() -> BoxedStrategy<bool> {
        (0u8..=1).prop_map(|b| b == 1).boxed()
    }
}

/// `any::<T>()` — the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> BoxedStrategy<T> {
    T::arbitrary()
}

pub mod collection {
    //! Collection strategies (mirrors `proptest::collection`).

    use super::{Rejection, Strategy};
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's size.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        pub min: usize,
        pub max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { min: r.start, max: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            let (min, max) = r.into_inner();
            assert!(min <= max, "empty size range");
            SizeRange { min, max }
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut StdRng) -> Result<Vec<S::Value>, Rejection> {
            let len = rng.gen_range(self.size.min..=self.size.max);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

pub mod strategy {
    //! Namespace parity with the real crate.
    pub use super::{BoxedStrategy, Filter, FilterMap, Just, Map, Strategy, Union};
}

pub mod prop {
    //! The `prop::` namespace the prelude exposes.
    pub use super::collection;
}

/// Derives a stable 64-bit seed from a test's identity string.
pub fn seed_for(test_path: &str) -> u64 {
    // FNV-1a.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_path.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Runs one property to completion: `config.cases` successful cases, a
/// shared reject budget, panic on failure. Called by the [`proptest!`]
/// expansion — not part of the real crate's public API.
pub fn run_property<V>(
    test_path: &str,
    config: &test_runner::Config,
    strategy: &impl Strategy<Value = V>,
    case: impl Fn(V) -> Result<(), TestCaseError>,
) {
    let mut rng = StdRng::seed_from_u64(seed_for(test_path));
    let mut rejects = 0u32;
    let mut done = 0u32;
    while done < config.cases {
        let value = match strategy.new_value(&mut rng) {
            Ok(v) => v,
            Err(Rejection(why)) => {
                rejects += 1;
                assert!(
                    rejects <= config.max_global_rejects,
                    "{test_path}: too many strategy rejections ({rejects}); last: {why}"
                );
                continue;
            }
        };
        match case(value) {
            Ok(()) => done += 1,
            Err(TestCaseError::Reject(why)) => {
                rejects += 1;
                assert!(
                    rejects <= config.max_global_rejects,
                    "{test_path}: too many prop_assume rejections ({rejects}); last: {why}"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("{test_path}: property failed after {done} passing cases: {msg}")
            }
        }
    }
}

/// Defines property tests (mirrors `proptest::proptest!`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::Config::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )* ) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::Config = $cfg;
            let __path = concat!(module_path!(), "::", stringify!($name));
            let __strategy = ($($strat,)+);
            $crate::run_property(__path, &__config, &__strategy, |($($arg,)+)| {
                $body
                #[allow(unreachable_code)]
                Ok(())
            });
        }
    )*};
}

/// Rejects the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::reject(concat!(
                "assumption failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::reject(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}: {}",
                stringify!($cond),
                format!($($fmt)*)
            )));
        }
    };
}

/// Fails the current case unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} ({}):\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                format!($($fmt)*),
                l,
                r
            )));
        }
    }};
}

/// Fails the current case if both sides are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Builds a [`Union`] over the listed strategies (mirrors
/// `proptest::prop_oneof!`). Weighted variants are not supported.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

pub mod prelude {
    //! One-stop imports (mirrors `proptest::prelude`).
    pub use super::prop;
    pub use super::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, Union,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in -2i64..=2, f in 0.5f64..1.5) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2..=2).contains(&y));
            prop_assert!((0.5..1.5).contains(&f));
        }

        #[test]
        fn map_and_filter_compose(
            v in (1usize..6, 1usize..6).prop_map(|(a, b)| a * b).prop_filter("even", |n| n % 2 == 0)
        ) {
            prop_assert!(v % 2 == 0);
            prop_assert!(v <= 25);
        }

        #[test]
        fn assume_rejects_without_failing(n in 0usize..100) {
            prop_assume!(n % 3 == 0);
            prop_assert_eq!(n % 3, 0);
        }

        #[test]
        fn oneof_and_just_pick_listed_values(v in prop_oneof![Just(1u32), Just(5), Just(9)]) {
            prop_assert!(v == 1 || v == 5 || v == 9);
        }

        #[test]
        fn collection_vec_respects_size(v in prop::collection::vec(0u8..5, 2..=4)) {
            prop_assert!((2..=4).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn any_u64_works(x in any::<u64>()) {
            let _ = x;
        }
    }

    #[test]
    fn seeds_are_stable() {
        assert_eq!(super::seed_for("a::b"), super::seed_for("a::b"));
        assert_ne!(super::seed_for("a::b"), super::seed_for("a::c"));
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failing_property_panics() {
        super::run_property(
            "shim::failing",
            &super::test_runner::Config::with_cases(8),
            &(0usize..4),
            |v| {
                prop_assert!(v < 3);
                Ok(())
            },
        );
    }
}
