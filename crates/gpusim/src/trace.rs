//! Run logs: structured collection of kernel statistics with pretty-printed
//! tables and CSV export for the experiment harnesses.

use crate::kernel::KernelStats;

/// A labelled collection of kernel runs (e.g. one experiment sweep).
#[derive(Debug, Default)]
pub struct RunLog {
    entries: Vec<Entry>,
}

#[derive(Debug, Clone)]
struct Entry {
    label: String,
    stats: KernelStats,
}

impl RunLog {
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a kernel run under a sweep label.
    pub fn record(&mut self, label: impl Into<String>, stats: KernelStats) {
        self.entries.push(Entry { label: label.into(), stats });
    }

    /// Number of recorded runs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total time across all runs, ms.
    pub fn total_time_ms(&self) -> f64 {
        self.entries.iter().map(|e| e.stats.time_ms).sum()
    }

    /// Renders an aligned text table.
    pub fn table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<24} {:<20} {:>10} {:>10} {:>14} {:>12} {:>6}\n",
            "label", "kernel", "time(ms)", "GFLOP/s", "Q(elems)", "DRAM(MiB)", "waves"
        ));
        for e in &self.entries {
            out.push_str(&format!(
                "{:<24} {:<20} {:>10.4} {:>10.1} {:>14} {:>12.2} {:>6}\n",
                e.label,
                e.stats.name,
                e.stats.time_ms,
                e.stats.gflops,
                e.stats.q_elems(),
                e.stats.moved_bytes as f64 / (1024.0 * 1024.0),
                e.stats.waves,
            ));
        }
        out
    }

    /// Renders CSV with a header row.
    pub fn csv(&self) -> String {
        let mut out = String::from(
            "label,kernel,time_ms,gflops,q_elems,moved_bytes,blocks_per_sm,waves,memory_bound\n",
        );
        for e in &self.entries {
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{}\n",
                e.label,
                e.stats.name,
                e.stats.time_ms,
                e.stats.gflops,
                e.stats.q_elems(),
                e.stats.moved_bytes,
                e.stats.blocks_per_sm,
                e.stats.waves,
                e.stats.memory_bound,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceSpec;
    use crate::engine::simulate;
    use crate::kernel::{BlockWork, KernelDesc};
    use crate::memory::TileAccess;
    use crate::occupancy::BlockShape;

    fn sample_stats() -> KernelStats {
        let k = KernelDesc {
            name: "probe".into(),
            grid_blocks: 64,
            block: BlockShape { threads: 128, smem_bytes: 4096 },
            work: BlockWork::new(10_000).read(TileAccess::contiguous(256)),
        };
        simulate(&DeviceSpec::v100(), &k).unwrap()
    }

    #[test]
    fn record_and_total() {
        let mut log = RunLog::new();
        assert!(log.is_empty());
        log.record("a", sample_stats());
        log.record("b", sample_stats());
        assert_eq!(log.len(), 2);
        assert!(log.total_time_ms() > 0.0);
    }

    #[test]
    fn table_contains_labels_and_header() {
        let mut log = RunLog::new();
        log.record("sweep-x", sample_stats());
        let t = log.table();
        assert!(t.contains("label"));
        assert!(t.contains("sweep-x"));
        assert!(t.contains("probe"));
    }

    #[test]
    fn csv_has_one_line_per_entry_plus_header() {
        let mut log = RunLog::new();
        log.record("r1", sample_stats());
        log.record("r2", sample_stats());
        let csv = log.csv();
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.starts_with("label,kernel"));
    }
}
