//! # iolb-bench — experiment harness
//!
//! One binary per table/figure of the paper's evaluation (§7):
//!
//! | binary | reproduces |
//! |--------|------------|
//! | `fig9`  | dataflow vs cuDNN speedup grid (direct mu=1/2/4 + Winograd) |
//! | `fig10` | batched direct convolution speedups |
//! | `tab2`  | TVM vs ATE: space sizes, iterations, best GFLOP/s |
//! | `fig11` | best-GFLOP/s-vs-iteration curves for four search methods |
//! | `fig12` | end-to-end CNN inference times, ours vs cuDNN |
//! | `fig13` | cross-architecture sensitivity (1080Ti / Titan X / gfx906) |
//! | `theory`| lower-bound validation: pebbling sandwich + 1/sqrt(S) scaling |
//!
//! Plus `tune-cache`, the operational CLI over `iolb-records` and
//! `iolb-service` stores (stats/check/compact/merge/shard/evict/
//! serve-stats), and `ablation`/`probe` for model studies.
//!
//! This library holds the shared runners (planning, tuning, printing).
//!
//! ```
//! use iolb_bench::{fmt_speedup, TunerKind};
//!
//! assert_eq!(fmt_speedup(1.975), "1.98x");
//! // The paper's engine searches the pruned domain; the TVM stand-ins
//! // search the full one.
//! assert!(TunerKind::Ate.pruned());
//! assert!(!TunerKind::TvmSa.pruned());
//! ```

use iolb_autotune::engine::{tune, tune_with_store_mode, TuneParams, TuneResult};
use iolb_autotune::search::genetic::GeneticSearch;
use iolb_autotune::search::random::RandomSearch;
use iolb_autotune::search::sa::SimulatedAnnealing;
use iolb_autotune::search::walk::ParallelRandomWalk;
pub use iolb_autotune::StoreMode;
use iolb_autotune::{ConfigSpace, GbtCostModel, Measurer, NoModel, Searcher, StoreTuneResult};
use iolb_cnn::inference::fast_config;
use iolb_core::optimality::TileKind;
use iolb_core::shapes::{ConvShape, WinogradTile};
use iolb_dataflow::baselines;
use iolb_dataflow::{direct_kernel, winograd_kernel};
use iolb_gpusim::{simulate, simulate_sequence, DeviceSpec};
use iolb_records::RecordStore;

/// Our dataflow's simulated time (ms) with the fast (analytic) plan.
pub fn ours_fast_ms(shape: &ConvShape, kind: TileKind, device: &DeviceSpec) -> Option<f64> {
    let cfg = fast_config(shape, kind, device)?;
    let kernel = match kind {
        TileKind::Direct => direct_kernel(shape, &cfg),
        TileKind::Winograd(t) => winograd_kernel(shape, t, &cfg),
    };
    simulate(device, &kernel).ok().map(|s| s.time_ms)
}

/// cuDNN stand-in time (ms) for the *direct* algorithm family: best of
/// im2col+GEMM and the naive direct kernel (paper §7: "the best one of two
/// direct implementations in cuDNN").
pub fn cudnn_direct_ms(shape: &ConvShape, device: &DeviceSpec) -> f64 {
    let mut best = f64::INFINITY;
    if let Ok(s) = simulate_sequence(device, &baselines::im2col_gemm(shape)) {
        best = best.min(s.time_ms);
    }
    if let Ok(s) = simulate_sequence(device, &baselines::naive_direct(shape)) {
        best = best.min(s.time_ms);
    }
    best
}

/// cuDNN stand-in time (ms) for the Winograd family (unfused pipeline,
/// best tile).
pub fn cudnn_winograd_ms(shape: &ConvShape, device: &DeviceSpec) -> f64 {
    let mut best = f64::INFINITY;
    for tile in [WinogradTile::F2X3, WinogradTile::F4X3] {
        if !shape.supports_winograd(tile) {
            continue;
        }
        if let Ok(s) = simulate_sequence(device, &baselines::winograd_unfused(shape, tile)) {
            best = best.min(s.time_ms);
        }
    }
    best
}

/// Which auto-tuner to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TunerKind {
    /// The paper's engine: GBT cost model + parallel random walk over the
    /// *pruned* space.
    Ate,
    /// TVM stand-in: GBT cost model + simulated annealing over the full
    /// space.
    TvmSa,
    /// TVM's GA tuner (model-free) over the full space.
    TvmGa,
    /// TVM's random tuner over the full space.
    TvmRandom,
}

impl TunerKind {
    pub fn label(&self) -> &'static str {
        match self {
            TunerKind::Ate => "ATE (ours)",
            TunerKind::TvmSa => "TVM XGB+SA",
            TunerKind::TvmGa => "TVM GA",
            TunerKind::TvmRandom => "TVM random",
        }
    }

    /// Whether this tuner searches the pruned domain.
    pub fn pruned(&self) -> bool {
        matches!(self, TunerKind::Ate)
    }
}

fn tuner_setup(
    kind: TunerKind,
    shape: &ConvShape,
    tile_kind: TileKind,
    device: &DeviceSpec,
    budget: usize,
    seed: u64,
) -> (ConfigSpace, Measurer, TuneParams, Box<dyn Searcher>) {
    let space = ConfigSpace::new(*shape, tile_kind, device.smem_per_sm, kind.pruned());
    let measurer = Measurer::new(device.clone(), *shape, tile_kind);
    let params =
        TuneParams { max_measurements: budget, batch: 8, patience: (budget / 2).max(24), seed };
    let searcher: Box<dyn Searcher> = match kind {
        TunerKind::Ate => {
            // The engine warm-starts one walker at the analytic
            // optimality-condition configuration — the theory picks the
            // starting point, the walk refines it.
            let seeds = fast_config(shape, tile_kind, device).into_iter().collect();
            Box::new(ParallelRandomWalk::with_seeds(seeds))
        }
        TunerKind::TvmSa => Box::new(SimulatedAnnealing::new()),
        TunerKind::TvmGa => Box::new(GeneticSearch::new()),
        TunerKind::TvmRandom => Box::new(RandomSearch),
    };
    (space, measurer, params, searcher)
}

/// Runs one tuner on one convolution; `budget` caps measurements.
pub fn run_tuner(
    kind: TunerKind,
    shape: &ConvShape,
    tile_kind: TileKind,
    device: &DeviceSpec,
    budget: usize,
    seed: u64,
) -> Option<TuneResult> {
    let (space, measurer, params, mut searcher) =
        tuner_setup(kind, shape, tile_kind, device, budget, seed);
    match kind {
        TunerKind::TvmGa | TunerKind::TvmRandom => {
            let mut model = NoModel;
            tune(&space, &measurer, &mut model, searcher.as_mut(), params)
        }
        _ => {
            let mut model = GbtCostModel::default();
            tune(&space, &measurer, &mut model, searcher.as_mut(), params)
        }
    }
}

/// [`run_tuner`] against a persistent tuning-record store: measurements
/// already in the store replay for free and fresh measurements are
/// written back.
///
/// `mode` picks how much the store may steer the run. Comparison
/// harnesses that tune the *same workload* with competing methods (or
/// several seeds) must use [`StoreMode::CacheOnly`] — records carry no
/// searcher identity, so warm-starting would hand each run its
/// competitors' best configurations and flatten the very curves being
/// compared. [`StoreMode::WarmStart`] is for production-style tuning
/// where any head start is pure win.
#[allow(clippy::too_many_arguments)] // run_tuner's signature plus store and mode
pub fn run_tuner_with_store(
    kind: TunerKind,
    shape: &ConvShape,
    tile_kind: TileKind,
    device: &DeviceSpec,
    budget: usize,
    seed: u64,
    store: &mut RecordStore,
    mode: StoreMode,
) -> Option<StoreTuneResult> {
    let (space, measurer, params, mut searcher) =
        tuner_setup(kind, shape, tile_kind, device, budget, seed);
    match kind {
        TunerKind::TvmGa | TunerKind::TvmRandom => {
            let mut model = NoModel;
            tune_with_store_mode(
                &space,
                &measurer,
                &mut model,
                searcher.as_mut(),
                params,
                store,
                mode,
            )
        }
        _ => {
            let mut model = GbtCostModel::default();
            tune_with_store_mode(
                &space,
                &measurer,
                &mut model,
                searcher.as_mut(),
                params,
                store,
                mode,
            )
        }
    }
}

/// Parses the shared `--records <path>` CLI flag of the tuning binaries.
/// Returns the path when present; exits with a usage message when the
/// flag is dangling.
pub fn records_flag() -> Option<std::path::PathBuf> {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--records" {
            match args.next() {
                Some(path) => return Some(path.into()),
                None => {
                    eprintln!("--records requires a path to a JSONL tuning-record store");
                    std::process::exit(2);
                }
            }
        }
    }
    None
}

/// Loads a record store for a tuning binary, reporting (to stderr) any
/// lines the corruption-tolerant loader skipped.
pub fn load_store_or_exit(path: &std::path::Path) -> RecordStore {
    match RecordStore::load(path) {
        Ok((store, report)) => {
            for (line, reason) in &report.skipped {
                eprintln!("warning: {}:{line}: skipped record: {reason}", path.display());
            }
            eprintln!(
                "records: loaded {} record(s) across {} workload(s) from {}",
                store.len(),
                store.workload_count(),
                path.display()
            );
            store
        }
        Err(e) => {
            eprintln!("error: cannot read record store {}: {e}", path.display());
            std::process::exit(1);
        }
    }
}

/// Saves a record store back to disk, printing a one-line summary.
pub fn save_store_or_exit(store: &RecordStore, path: &std::path::Path) {
    if let Err(e) = store.save(path) {
        eprintln!("error: cannot write record store {}: {e}", path.display());
        std::process::exit(1);
    }
    eprintln!(
        "records: saved {} record(s) across {} workload(s) to {}",
        store.len(),
        store.workload_count(),
        path.display()
    );
}

/// Formats a ratio as the paper's "N.NNx" speedup.
pub fn fmt_speedup(r: f64) -> String {
    format!("{r:.2}x")
}

/// Prints a header banner for an experiment binary.
pub fn banner(title: &str, detail: &str) {
    println!("{}", "=".repeat(78));
    println!("{title}");
    println!("{detail}");
    println!("{}", "=".repeat(78));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_runner_produces_speedups() {
        let shape = ConvShape::square(256, 56, 128, 3, 1, 1);
        let d = DeviceSpec::gtx1080ti();
        let ours = ours_fast_ms(&shape, TileKind::Direct, &d).unwrap();
        let base = cudnn_direct_ms(&shape, &d);
        assert!(ours > 0.0 && base.is_finite());
    }

    #[test]
    fn tuners_run_to_completion() {
        let shape = ConvShape::square(64, 28, 32, 3, 1, 1);
        let d = DeviceSpec::v100();
        for kind in [TunerKind::Ate, TunerKind::TvmSa, TunerKind::TvmGa, TunerKind::TvmRandom] {
            let r = run_tuner(kind, &shape, TileKind::Direct, &d, 32, 1).unwrap();
            assert!(r.best_ms > 0.0, "{}", kind.label());
        }
    }
}
