//! End-to-end inference timing (paper §7.3, Fig. 12).
//!
//! For every conv layer the planner picks an algorithm and a
//! configuration, times it on the simulator, and sums across the network.
//! Two planners are compared:
//!
//! * **ours** — the dataflow schedules with configurations chosen by the
//!   optimality condition (fast mode) or by the full auto-tuning engine
//!   (tuned mode), taking the better of direct and Winograd per layer;
//! * **baseline** — the cuDNN stand-in: the best of im2col+GEMM and the
//!   unfused Winograd pipeline per layer.

use crate::layers::{ConvLayer, Network};
use iolb_autotune::engine::{tune, tune_with_store, TuneParams};
use iolb_autotune::{ConfigSpace, GbtCostModel, Measurer};
use iolb_core::optimality::{best_tile, divisors, TileKind};
use iolb_core::shapes::{ConvShape, WinogradTile};
use iolb_dataflow::baselines;
use iolb_dataflow::config::ScheduleConfig;
use iolb_dataflow::{direct_kernel, winograd_kernel};
use iolb_gpusim::{simulate, simulate_sequence, DeviceSpec};
use iolb_records::RecordStore;
use iolb_tensor::layout::Layout;

/// Planning effort for our schedules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanMode {
    /// Analytic: best integer tile under the optimality condition, default
    /// thread split. No search.
    Fast,
    /// Full auto-tuning with the given measurement budget per layer.
    Tuned { budget: usize },
}

/// Per-layer timing entry.
#[derive(Debug, Clone)]
pub struct LayerTime {
    pub name: String,
    /// Our dataflow's time (ms), summed over repeats.
    pub ours_ms: f64,
    /// Baseline library time (ms), summed over repeats.
    pub baseline_ms: f64,
    /// Which algorithm our planner chose.
    pub algorithm: &'static str,
}

/// Whole-network timing.
#[derive(Debug, Clone)]
pub struct NetworkTime {
    pub network: &'static str,
    pub layers: Vec<LayerTime>,
    pub ours_ms: f64,
    pub baseline_ms: f64,
}

impl NetworkTime {
    /// End-to-end speedup of our planner over the baseline.
    pub fn speedup(&self) -> f64 {
        self.baseline_ms / self.ours_ms
    }
}

/// Picks a default thread split for a tile: factors of (x, y, z) whose
/// product lands near 256 threads.
fn default_threads(x: usize, y: usize, z: usize) -> (usize, usize, usize) {
    let pick = |n: usize, cap: usize| divisors(n).into_iter().rfind(|&d| d <= cap).unwrap_or(1);
    let nxt = pick(x, 16);
    let nyt = pick(y, 16);
    let budget = 1024 / (nxt * nyt).max(1);
    let nzt = pick(z, budget.clamp(1, 32));
    (nxt, nyt, nzt)
}

/// Builds the fast-mode configuration for a layer: the best
/// optimality-condition tile fitting the stage buffers into `S_b`.
pub fn fast_config(
    shape: &ConvShape,
    kind: TileKind,
    device: &DeviceSpec,
) -> Option<ScheduleConfig> {
    let sb_bytes = (device.smem_per_sm / 2).min(device.max_smem_per_block).min(48 * 1024);
    // Leave room for the stage buffers inside S_b by searching with a
    // deflated tile budget, then validating the complete footprint.
    for deflate in [0.75, 0.5, 0.3, 0.15, 0.05] {
        let budget = sb_bytes as f64 / 4.0 * deflate;
        let Some(t) = best_kind_tile(shape, kind, budget) else { continue };
        let (nxt, nyt, nzt) = default_threads(t.0, t.1, t.2);
        let cfg =
            ScheduleConfig { x: t.0, y: t.1, z: t.2, nxt, nyt, nzt, sb_bytes, layout: Layout::Chw };
        if cfg.validate(shape, kind, device.smem_per_sm, false).is_ok() {
            return Some(cfg);
        }
    }
    None
}

/// Picks the read-I/O-minimising tile for the kind. Direct tiles come from
/// the core solver; Winograd tiles are enumerated over the `e`-padded
/// output extents (divisor-of-13 tiles don't exist, padded 14x14 ones do).
fn best_kind_tile(shape: &ConvShape, kind: TileKind, budget: f64) -> Option<(usize, usize, usize)> {
    match kind {
        TileKind::Direct => best_tile(shape, kind, budget).map(|c| (c.tile.x, c.tile.y, c.tile.z)),
        TileKind::Winograd(w) => {
            let (hp, wp) = iolb_dataflow::config::padded_out(shape, kind);
            let mut best: Option<((usize, usize, usize), f64)> = None;
            for &x in divisors(hp).iter().filter(|&&d| d % w.e == 0) {
                for &y in divisors(wp).iter().filter(|&&d| d % w.e == 0) {
                    for &z in &divisors(shape.cout) {
                        let tile = iolb_core::optimality::Tile { x, y, z };
                        if kind.accumulator_elems(&tile) > budget {
                            continue;
                        }
                        let io = kind.exact_read_io(shape, &tile);
                        if best.as_ref().is_none_or(|&(_, b)| io < b) {
                            best = Some(((x, y, z), io));
                        }
                    }
                }
            }
            best.map(|(t, _)| t)
        }
    }
}

/// The algorithm candidates our planner considers for a layer: direct
/// always, the two Winograd variants when the shape admits them.
fn algo_candidates(shape: &ConvShape) -> Vec<(TileKind, &'static str)> {
    let mut candidates: Vec<(TileKind, &'static str)> = vec![(TileKind::Direct, "direct")];
    if shape.kh == shape.kw && shape.kh == 3 && shape.stride == 1 {
        candidates.push((TileKind::Winograd(WinogradTile::F2X3), "winograd-F2x3"));
        candidates.push((TileKind::Winograd(WinogradTile::F4X3), "winograd-F4x3"));
    }
    candidates
}

/// Space/measurer/model/searcher/params for one tuned candidate — the
/// identical setup whether or not a record store backs the run.
fn tuner_setup(
    shape: &ConvShape,
    kind: TileKind,
    device: &DeviceSpec,
    budget: usize,
) -> (
    ConfigSpace,
    Measurer,
    GbtCostModel,
    iolb_autotune::search::walk::ParallelRandomWalk,
    TuneParams,
) {
    let space = ConfigSpace::new(*shape, kind, device.smem_per_sm, true);
    let measurer = Measurer::new(device.clone(), *shape, kind);
    let model = GbtCostModel::default();
    let seeds = fast_config(shape, kind, device).into_iter().collect();
    let searcher = iolb_autotune::search::walk::ParallelRandomWalk::with_seeds(seeds);
    let params = TuneParams { max_measurements: budget, batch: 8, patience: budget, seed: 7 };
    (space, measurer, model, searcher, params)
}

/// Times one layer under our planner; returns (ms, algorithm label).
pub fn time_ours(
    shape: &ConvShape,
    device: &DeviceSpec,
    mode: PlanMode,
) -> Option<(f64, &'static str)> {
    let mut best: Option<(f64, &'static str)> = None;
    for (kind, label) in algo_candidates(shape) {
        let ms = match mode {
            PlanMode::Fast => {
                let Some(cfg) = fast_config(shape, kind, device) else { continue };
                let kernel = match kind {
                    TileKind::Direct => direct_kernel(shape, &cfg),
                    TileKind::Winograd(t) => winograd_kernel(shape, t, &cfg),
                };
                match simulate(device, &kernel) {
                    Ok(s) => s.time_ms,
                    Err(_) => continue,
                }
            }
            PlanMode::Tuned { budget } => {
                let (space, measurer, mut model, mut searcher, params) =
                    tuner_setup(shape, kind, device, budget);
                match tune(&space, &measurer, &mut model, &mut searcher, params) {
                    Some(r) => r.best_ms,
                    None => continue,
                }
            }
        };
        if best.as_ref().is_none_or(|&(b, _)| ms < b) {
            best = Some((ms, label));
        }
    }
    best
}

/// Store economics of a tuning pass: how much the record store saved.
#[derive(Debug, Clone, Copy, Default)]
pub struct TuneEconomics {
    /// Simulator invocations actually performed.
    pub fresh_measurements: usize,
    /// Measurements replayed from the store.
    pub cache_hits: usize,
    /// Tuning runs that warm-started from a *different* workload
    /// (cross-layer transfer).
    pub transfers: usize,
}

impl TuneEconomics {
    fn absorb(&mut self, out: &iolb_autotune::StoreTuneResult) {
        self.fresh_measurements += out.fresh_measurements;
        self.cache_hits += out.cache_hits;
        self.transfers += usize::from(out.transferred);
    }

    fn merge(&mut self, other: TuneEconomics) {
        self.fresh_measurements += other.fresh_measurements;
        self.cache_hits += other.cache_hits;
        self.transfers += other.transfers;
    }
}

/// Times one layer by full auto-tuning against a persistent record
/// store (the store-backed analogue of [`time_ours`] in
/// [`PlanMode::Tuned`]): per-algorithm tuning runs replay cached
/// measurements, warm-start from the store's best records — transferring
/// from the nearest already-tuned layer when this one is new — and write
/// everything they measure back.
pub fn time_ours_with_store(
    shape: &ConvShape,
    device: &DeviceSpec,
    budget: usize,
    store: &mut RecordStore,
) -> Option<(f64, &'static str, TuneEconomics)> {
    let mut economics = TuneEconomics::default();
    let mut best: Option<(f64, &'static str)> = None;
    for (kind, label) in algo_candidates(shape) {
        let (space, measurer, mut model, mut searcher, params) =
            tuner_setup(shape, kind, device, budget);
        let Some(out) =
            tune_with_store(&space, &measurer, &mut model, &mut searcher, params, store)
        else {
            continue;
        };
        economics.absorb(&out);
        if best.as_ref().is_none_or(|&(b, _)| out.result.best_ms < b) {
            best = Some((out.result.best_ms, label));
        }
    }
    best.map(|(ms, label)| (ms, label, economics))
}

/// Tunes a whole network against a persistent record store and times it.
///
/// The first pass over a network measures (and records) everything; a
/// second pass against the same store replays almost every measurement,
/// and *new* networks sharing layer geometries warm-start from their
/// neighbours — this is how the measurement cost of the paper's §7.3
/// experiment amortizes across invocations.
pub fn time_network_with_store(
    net: &Network,
    device: &DeviceSpec,
    budget: usize,
    store: &mut RecordStore,
) -> (NetworkTime, TuneEconomics) {
    let mut economics = TuneEconomics::default();
    let time = time_network_impl(net, device, |shape| {
        match time_ours_with_store(shape, device, budget, store) {
            Some((ms, label, eco)) => {
                economics.merge(eco);
                (ms, label)
            }
            None => (f64::INFINITY, "none"),
        }
    });
    (time, economics)
}

/// The shared per-layer timing loop behind [`time_network`] and
/// [`time_network_with_store`]: `time_layer` supplies our planner's
/// (ms, algorithm) per shape, the baseline and repeat accounting are
/// common.
fn time_network_impl(
    net: &Network,
    device: &DeviceSpec,
    mut time_layer: impl FnMut(&ConvShape) -> (f64, &'static str),
) -> NetworkTime {
    let mut layers = Vec::with_capacity(net.layers.len());
    let mut ours_total = 0.0;
    let mut base_total = 0.0;
    for layer in &net.layers {
        let (ours, algorithm) = time_layer(&layer.shape);
        let baseline = time_baseline(&layer.shape, device);
        let reps = layer.repeat as f64;
        ours_total += ours * reps;
        base_total += baseline * reps;
        layers.push(LayerTime {
            name: layer.name.clone(),
            ours_ms: ours * reps,
            baseline_ms: baseline * reps,
            algorithm,
        });
    }
    NetworkTime { network: net.name, layers, ours_ms: ours_total, baseline_ms: base_total }
}

/// Times one layer under the baseline library (best available algorithm).
pub fn time_baseline(shape: &ConvShape, device: &DeviceSpec) -> f64 {
    let mut best = f64::INFINITY;
    if let Ok(seq) = simulate_sequence(device, &baselines::im2col_gemm(shape)) {
        best = best.min(seq.time_ms);
    }
    if let Ok(seq) = simulate_sequence(device, &baselines::naive_direct(shape)) {
        best = best.min(seq.time_ms);
    }
    if shape.kh == shape.kw && shape.kh == 3 && shape.stride == 1 {
        for tile in [WinogradTile::F2X3, WinogradTile::F4X3] {
            if let Ok(seq) = simulate_sequence(device, &baselines::winograd_unfused(shape, tile)) {
                best = best.min(seq.time_ms);
            }
        }
    }
    best
}

/// Times a whole network.
pub fn time_network(net: &Network, device: &DeviceSpec, mode: PlanMode) -> NetworkTime {
    time_network_impl(net, device, |shape| {
        time_ours(shape, device, mode).unwrap_or((f64::INFINITY, "none"))
    })
}

/// Convenience for tests / examples: layer accessor on networks.
pub fn layer<'n>(net: &'n Network, name: &str) -> &'n ConvLayer {
    net.layers
        .iter()
        .find(|l| l.name == name)
        .unwrap_or_else(|| panic!("{} has no layer {name}", net.name))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models;

    fn device() -> DeviceSpec {
        DeviceSpec::v100()
    }

    #[test]
    fn fast_config_exists_for_all_alexnet_layers() {
        let net = models::alexnet();
        for l in &net.layers {
            let cfg = fast_config(&l.shape, TileKind::Direct, &device());
            assert!(cfg.is_some(), "no fast config for {}", l.name);
        }
    }

    #[test]
    fn our_time_finite_and_positive() {
        let shape = ConvShape::square(64, 28, 64, 3, 1, 1);
        let (ms, alg) = time_ours(&shape, &device(), PlanMode::Fast).unwrap();
        assert!(ms.is_finite() && ms > 0.0);
        assert!(!alg.is_empty());
    }

    #[test]
    fn winograd_chosen_for_eligible_layers_sometimes() {
        // 3x3 s1 layers must at least consider Winograd; deep-channel
        // layers favour it via the flop reduction.
        let shape = ConvShape::square(512, 28, 512, 3, 1, 1);
        let (_, alg) = time_ours(&shape, &device(), PlanMode::Fast).unwrap();
        assert!(alg == "direct" || alg.starts_with("winograd"));
    }

    #[test]
    fn network_timing_sums_layers() {
        let net = models::alexnet();
        let t = time_network(&net, &device(), PlanMode::Fast);
        let sum: f64 = t.layers.iter().map(|l| l.ours_ms).sum();
        assert!((t.ours_ms - sum).abs() < 1e-9);
        assert!(t.ours_ms > 0.0 && t.baseline_ms > 0.0);
    }

    #[test]
    fn ours_beats_baseline_end_to_end_on_alexnet() {
        let net = models::alexnet();
        let t = time_network(&net, &device(), PlanMode::Fast);
        assert!(t.speedup() > 1.0, "ours {} ms vs baseline {} ms", t.ours_ms, t.baseline_ms);
    }

    #[test]
    fn one_by_one_layers_are_plannable() {
        // SqueezeNet's squeeze layers: R = 1, stride 1, k = 1.
        let shape = ConvShape::new(96, 54, 54, 16, 1, 1, 1, 0);
        let (ms, alg) = time_ours(&shape, &device(), PlanMode::Fast).unwrap();
        assert!(ms.is_finite());
        assert_eq!(alg, "direct");
    }

    #[test]
    fn rectangular_kernels_are_plannable() {
        // Inception 1x7.
        let shape = ConvShape::new(128, 17, 17, 128, 1, 7, 1, 3);
        let (ms, _) = time_ours(&shape, &device(), PlanMode::Fast).unwrap();
        assert!(ms.is_finite());
    }

    #[test]
    fn layer_lookup() {
        let net = models::alexnet();
        assert_eq!(layer(&net, "conv3").shape.cout, 384);
    }

    #[test]
    fn network_retuning_against_a_store_is_mostly_cached() {
        use crate::layers::{ConvLayer, Network};
        // A two-layer toy network; 1x1 layers keep the candidate list to
        // `direct` only, so the test stays fast.
        let net = Network {
            name: "toy",
            layers: vec![
                ConvLayer::new("a", ConvShape::new(32, 28, 28, 16, 1, 1, 1, 0)),
                ConvLayer::new("b", ConvShape::new(16, 28, 28, 32, 1, 1, 1, 0)),
            ],
        };
        let mut store = iolb_records::RecordStore::new();
        let (cold, eco_cold) = time_network_with_store(&net, &device(), 16, &mut store);
        let (warm, eco_warm) = time_network_with_store(&net, &device(), 16, &mut store);
        assert_eq!(eco_cold.cache_hits, 0);
        assert!(eco_cold.fresh_measurements > 0);
        assert!(
            eco_warm.fresh_measurements < eco_cold.fresh_measurements,
            "second network pass re-measured everything ({} vs {})",
            eco_warm.fresh_measurements,
            eco_cold.fresh_measurements
        );
        assert!(eco_warm.cache_hits > 0);
        assert!(
            warm.ours_ms <= cold.ours_ms + 1e-12,
            "store-backed retune regressed: {} vs {}",
            warm.ours_ms,
            cold.ours_ms
        );
        // Related layers transfer: a third, unseen layer with the same
        // spatial extents warm-starts from its neighbours.
        let related = Network {
            name: "toy2",
            layers: vec![ConvLayer::new("c", ConvShape::new(64, 28, 28, 16, 1, 1, 1, 0))],
        };
        let (_, eco_rel) = time_network_with_store(&related, &device(), 16, &mut store);
        assert!(eco_rel.transfers > 0, "unseen layer did not transfer from neighbours");
    }
}
