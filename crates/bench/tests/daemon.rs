//! Cross-process daemon protocol (ISSUE 5 acceptance, modeled on
//! `multiprocess.rs`): a resident `tune-cache serve` daemon owns the
//! shard directory's flock for its whole lifetime and serves concurrent
//! `tune-net --daemon` client *processes* over its Unix socket.
//!
//! Pinned here:
//! * two concurrent clients with overlapping networks trigger exactly
//!   one tuning run per unique workload fingerprint (the daemon's
//!   cross-client dedup — measured via the wire `Stats` counters
//!   against eager per-workload reference runs);
//! * a later client replays entirely from the daemon's memory ("0 fresh
//!   measurement(s)" in its summary line);
//! * while the daemon lives, the directory lock is *held* — an outside
//!   writer times out with the typed error instead of corrupting the
//!   store;
//! * shutdown is clean: the daemon persists, removes its socket, exits
//!   zero, and the directory then holds records bit-identical to eager
//!   tuning.

use iolb_autotune::engine::tune_with_store;
use iolb_autotune::plan::tuner_setup;
use iolb_core::optimality::TileKind;
use iolb_core::shapes::ConvShape;
use iolb_gpusim::DeviceSpec;
use iolb_records::{RecordStore, Workload};
use iolb_service::{Backend, DirLock, LockError, ShardedStore, SocketBackend};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const TUNE_CACHE: &str = env!("CARGO_BIN_EXE_tune-cache");

/// The daemon's budget/seed (`serve --budget 8`, default seed 7): the
/// eager reference runs must match them for bit-identity.
const BUDGET: usize = 8;
const SEED: u64 = 7;

/// Two overlapping toy networks (1x1 layers: direct-only, fast). The
/// (16,14,14,32) layer is shared, and NET_A carries a duplicate shape so
/// session dedup is exercised across the socket too.
const NET_A: &str = "32,14,14,16,1,1,1,0;16,14,14,32,1,1,1,0;32,14,14,16,1,1,1,0";
const NET_B: &str = "16,14,14,32,1,1,1,0;24,14,14,12,1,1,1,0";

/// The three unique layer shapes across both networks.
fn unique_shapes() -> Vec<ConvShape> {
    vec![
        ConvShape::new(32, 14, 14, 16, 1, 1, 1, 0),
        ConvShape::new(16, 14, 14, 32, 1, 1, 1, 0),
        ConvShape::new(24, 14, 14, 12, 1, 1, 1, 0),
    ]
}

/// Unique per run: pid alone collides when the OS recycles pids across
/// back-to-back test invocations (a stale daemon from an aborted run
/// could then race this run's directory).
fn unique_tag() -> String {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.subsec_nanos())
        .unwrap_or(0);
    format!("{}-{nanos}", std::process::id())
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("iolb-daemon-proc-{tag}-{}", unique_tag()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Kills the daemon child if the test dies before a clean shutdown, so
/// a failed assertion can never leak a resident process holding /tmp
/// locks.
struct ServerGuard(Option<Child>);

impl ServerGuard {
    fn wait_success(mut self) {
        let mut child = self.0.take().expect("server already taken");
        let status = child.wait().expect("wait for serve child");
        assert!(status.success(), "serve exited non-zero: {status}");
    }
}

impl Drop for ServerGuard {
    fn drop(&mut self) {
        if let Some(child) = &mut self.0 {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

fn spawn_serve(dir: &Path, sock: &Path) -> ServerGuard {
    spawn_serve_with(dir, sock, &[])
}

fn spawn_serve_with(dir: &Path, sock: &Path, extra: &[&str]) -> ServerGuard {
    let child = Command::new(TUNE_CACHE)
        .arg("serve")
        .arg(dir)
        .arg("--socket")
        .arg(sock)
        .args(["--budget", "8", "--merge-interval-ms", "50"])
        .args(extra)
        .stdout(Stdio::null())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn tune-cache serve");
    // The daemon is up once its socket exists.
    let deadline = Instant::now() + Duration::from_secs(30);
    while !sock.exists() {
        assert!(Instant::now() < deadline, "daemon socket never appeared");
        std::thread::sleep(Duration::from_millis(10));
    }
    ServerGuard(Some(child))
}

fn spawn_client(sock: &Path, spec: &str) -> Child {
    Command::new(TUNE_CACHE)
        .args(["tune-net", "--layers", spec, "--daemon"])
        .arg(sock)
        .stdout(Stdio::null())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn tune-net --daemon")
}

/// Eager reference for one workload at the daemon's budget/seed.
fn eager(shape: &ConvShape) -> (RecordStore, f64, usize) {
    let device = DeviceSpec::v100();
    let mut store = RecordStore::new();
    let mut s = tuner_setup(shape, TileKind::Direct, &device, BUDGET, SEED);
    let out =
        tune_with_store(&s.space, &s.measurer, &mut s.model, &mut s.searcher, s.params, &mut store)
            .expect("feasible workload");
    (store, out.result.best_ms, out.fresh_measurements)
}

#[test]
fn daemon_dedupes_across_client_processes_and_shuts_down_cleanly() {
    let dir = temp_dir("dedup");
    let sock = std::env::temp_dir().join(format!("iolb-daemon-proc-{}.sock", unique_tag()));
    let server = spawn_serve(&dir, &sock);

    // While the daemon lives it owns the directory: an outside writer
    // gets the typed timeout instead of silently interleaving.
    match DirLock::acquire(&dir, Duration::from_millis(50)) {
        Err(LockError::Timeout { .. }) => {}
        other => panic!("expected the daemon to hold the directory lock, got {other:?}"),
    }

    // Two concurrent client processes with overlapping networks.
    let mut clients = vec![spawn_client(&sock, NET_A), spawn_client(&sock, NET_B)];
    for client in &mut clients {
        let status = client.wait().expect("wait for tune-net client");
        assert!(status.success(), "tune-net --daemon failed: {status}");
    }

    // A third client replays purely from daemon memory.
    let replay = Command::new(TUNE_CACHE)
        .args(["tune-net", "--layers", NET_A, "--daemon"])
        .arg(&sock)
        .output()
        .expect("run replay client");
    assert!(replay.status.success());
    let stdout = String::from_utf8_lossy(&replay.stdout);
    assert!(
        stdout.contains(" 0 fresh measurement(s)"),
        "replay client measured something:\n{stdout}"
    );

    // Exactly one tuning run per unique fingerprint across all client
    // processes: total fresh measurements equal the sum of one eager run
    // per unique workload, and the run count equals the unique count.
    let backend = SocketBackend::connect(&sock).expect("connect stats client");
    let snap = Backend::stats(&backend).expect("wire stats");
    let expected_fresh: usize = unique_shapes().iter().map(|s| eager(s).2).sum();
    assert_eq!(
        snap.snapshot.stats.fresh_measurements, expected_fresh,
        "cross-client dedup must yield exactly one run per unique fingerprint"
    );
    assert_eq!(
        snap.snapshot.stats.inline_tuned + snap.snapshot.stats.background_tuned,
        unique_shapes().len()
    );

    // Clean shutdown: persists, removes the socket, exits zero.
    backend.shutdown().expect("wire shutdown");
    server.wait_success();
    assert!(!sock.exists(), "socket file must be removed on shutdown");

    // The directory now holds records bit-identical to eager tuning.
    let (store, report) = ShardedStore::load(&dir).expect("load daemon directory");
    assert!(report.is_clean(), "corrupt daemon directory: {:?}", report.warnings);
    let device = DeviceSpec::v100();
    for shape in unique_shapes() {
        let workload = Workload::new(shape, TileKind::Direct, device.name, device.smem_per_sm);
        let best = store.best(&workload).expect("workload missing from daemon directory");
        let (eager_store, eager_best_ms, _) = eager(&shape);
        assert_eq!(best.cost_ms.to_bits(), eager_best_ms.to_bits());
        assert_eq!(best.config, eager_store.top_k(&workload, 1)[0].config);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// In-bucket jitters of NET_A's two unique shapes (floor 16: cin 32
/// jitters to 30 in the same power-of-two bucket; extents at or below
/// the floor stay exact, so they anchor to the warmed fingerprints).
const JIT_A: &str = "30,14,14,16,1,1,1,0;16,14,14,30,1,1,1,0";

fn jittered_shapes() -> Vec<ConvShape> {
    vec![ConvShape::new(30, 14, 14, 16, 1, 1, 1, 0), ConvShape::new(16, 14, 14, 30, 1, 1, 1, 0)]
}

/// Runs a `tune-net --daemon --json` client and returns its JSON line.
fn client_json(sock: &Path, spec: &str) -> String {
    let out = Command::new(TUNE_CACHE)
        .args(["tune-net", "--layers", spec, "--daemon"])
        .arg(sock)
        .arg("--json")
        .output()
        .expect("run tune-net --daemon --json");
    assert!(out.status.success(), "tune-net --daemon failed: {}", out.status);
    String::from_utf8(out.stdout).expect("utf8 client output").trim().to_string()
}

/// ISSUE 8 acceptance over the wire: a daemon warmed on exact shapes
/// serves in-bucket jittered traffic entirely from the anchor buckets —
/// zero fresh measurements, zero inline tunes — while exact-hit replays
/// keep returning bit-identical results. The gap bound is opened wide so
/// every transfer is analytically admissible (no re-tunes): the serve is
/// pure transfer.
#[test]
fn jittered_traffic_is_served_anchored_with_zero_fresh_measurements() {
    let dir = temp_dir("anchor");
    let sock = std::env::temp_dir().join(format!("iolb-daemon-anchor-{}.sock", unique_tag()));
    let server = spawn_serve_with(&dir, &sock, &["--transfer-gap-permille", "1000000"]);

    // Warm the daemon on the exact shapes.
    let warm = client_json(&sock, NET_A);
    assert!(warm.contains("\"anchored\":0"), "warm run must not anchor: {warm}");

    // Jittered replay: every request answered from the anchor bucket.
    let jit = client_json(&sock, JIT_A);
    for field in ["\"fresh\":0", "\"anchored\":2", "\"retunes\":0", "\"hits\":0", "\"inline\":0"] {
        assert!(jit.contains(field), "expected {field} in jittered replay: {jit}");
    }
    assert!(jit.contains("\"anchored_hit_rate\":1"), "anchored hit rate must be 1: {jit}");

    // Exact-hit layers still serve bit-identically (hermetic replay is
    // untouched by the anchoring layer).
    let exact = client_json(&sock, NET_A);
    for field in ["\"fresh\":0", "\"anchored\":0", "\"hits\":3"] {
        assert!(exact.contains(field), "expected {field} in exact replay: {exact}");
    }
    assert_eq!(
        warm.split("\"layer_ms\":").nth(1),
        exact.split("\"layer_ms\":").nth(1),
        "exact replay must return bit-identical per-layer costs"
    );

    // The wire stats carry the split, and the anchored serves inserted
    // no records: after shutdown only the exact fingerprints exist.
    let backend = SocketBackend::connect(&sock).expect("connect stats client");
    let snap = Backend::stats(&backend).expect("wire stats");
    assert_eq!(snap.snapshot.stats.anchored_hits, 2);
    assert_eq!(snap.snapshot.stats.transfer_retunes, 0);
    backend.shutdown().expect("wire shutdown");
    server.wait_success();
    let (store, report) = ShardedStore::load(&dir).expect("load daemon directory");
    assert!(report.is_clean(), "corrupt daemon directory: {:?}", report.warnings);
    let device = DeviceSpec::v100();
    for shape in jittered_shapes() {
        let workload = Workload::new(shape, TileKind::Direct, device.name, device.smem_per_sm);
        assert!(
            store.best(&workload).is_none(),
            "anchored serving must not mint records for jittered fingerprints"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The other half of the transfer gate, over the wire: with a gap bound
/// tight enough to reject every transfer, jittered traffic is still
/// served provisionally from the bucket (zero fresh in the session) but
/// each serve books a background re-tune — and once the daemon's workers
/// drain the queue, the jittered shapes replay as *exact* hits whose
/// records are bit-identical to eager tuning of those very shapes.
#[test]
fn gate_failures_retune_in_the_background_and_converge_over_the_wire() {
    let dir = temp_dir("retune");
    let sock = std::env::temp_dir().join(format!("iolb-daemon-retune-{}.sock", unique_tag()));
    let server = spawn_serve_with(&dir, &sock, &["--transfer-gap-permille", "1"]);

    let warm = client_json(&sock, NET_A);
    assert!(warm.contains("\"fresh\":16"), "warm run must tune fresh: {warm}");

    // Provisional anchored serve: still zero fresh in the session, but
    // every layer is flagged for re-tune.
    let jit = client_json(&sock, JIT_A);
    for field in ["\"fresh\":0", "\"anchored\":2", "\"retunes\":2"] {
        assert!(jit.contains(field), "expected {field} in jittered replay: {jit}");
    }

    // Wait for the daemon's interval thread to drain the transfer
    // queue (hermetic tuning, so this converges deterministically). On
    // single-core hosts connections are handled inline on the accept
    // loop, so each poll uses a short-lived connection instead of
    // parking one open and starving every other client.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let backend = SocketBackend::connect(&sock).expect("connect stats client");
        let snap = Backend::stats(&backend).expect("wire stats");
        if snap.snapshot.queue_len == 0 && snap.snapshot.stats.background_tuned >= 2 {
            break;
        }
        drop(backend);
        assert!(Instant::now() < deadline, "transfer re-tunes never drained");
        std::thread::sleep(Duration::from_millis(100));
    }

    // Converged: the jittered shapes now replay as exact hits.
    let exact = client_json(&sock, JIT_A);
    for field in ["\"fresh\":0", "\"anchored\":0", "\"hits\":2"] {
        assert!(exact.contains(field), "expected {field} after convergence: {exact}");
    }

    let backend = SocketBackend::connect(&sock).expect("connect shutdown client");
    backend.shutdown().expect("wire shutdown");
    server.wait_success();

    // The re-tuned records are bit-identical to eager tuning of the
    // jittered shapes themselves (not of their donors).
    let (store, report) = ShardedStore::load(&dir).expect("load daemon directory");
    assert!(report.is_clean(), "corrupt daemon directory: {:?}", report.warnings);
    let device = DeviceSpec::v100();
    for shape in jittered_shapes() {
        let workload = Workload::new(shape, TileKind::Direct, device.name, device.smem_per_sm);
        let best = store.best(&workload).expect("re-tuned workload missing");
        let (eager_store, eager_best_ms, _) = eager(&shape);
        assert_eq!(best.cost_ms.to_bits(), eager_best_ms.to_bits());
        assert_eq!(best.config, eager_store.top_k(&workload, 1)[0].config);
    }
    let _ = std::fs::remove_dir_all(&dir);
}
