//! Runtime switch between the scalar and vectorized compute-kernel
//! paths (`IOLB_KERNEL=scalar|vector`).
//!
//! Every kernel in this crate keeps **one fold order per output
//! element**: each `C[i][j]` (GEMM) or transform coefficient (Winograd)
//! is a serial left-fold whose term order never depends on the path,
//! the micro-tile shape, or the thread count. Vectorization only maps
//! *independent* element folds onto SIMD lanes — IEEE-754 `f32`/`f64`
//! mul/add are exactly rounded at any lane width, so the vector path is
//! **bit-identical** to the scalar one (property-tested in
//! `tests/proptest_kernels.rs`, diffed end-to-end in the workspace
//! determinism suite).
//!
//! The switch exists so that contract stays enforceable forever: tests
//! and the `tune-bench kernels` sweep run both paths and diff them, and
//! an operator can pin `IOLB_KERNEL=scalar` to rule the vector tier out
//! when bisecting a numerical surprise.

/// Which compute-kernel implementation the tensor crate runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelPath {
    /// The reference micro-kernels: plain element loops, the seed
    /// implementation every other path is diffed against.
    Scalar,
    /// Array-chunked, autovectorizer-targeted micro-kernels (wider
    /// micro-tile, fixed-width lane accumulators, unrolled K-steps),
    /// dispatched to an AVX2-compiled clone when the CPU supports it.
    Vector,
}

impl KernelPath {
    /// Environment variable consulted by [`KernelPath::from_env`].
    pub const ENV: &'static str = "IOLB_KERNEL";

    /// Parses `"scalar"` / `"vector"` (ASCII case-insensitive).
    pub fn parse(s: &str) -> Option<Self> {
        if s.eq_ignore_ascii_case("scalar") {
            Some(Self::Scalar)
        } else if s.eq_ignore_ascii_case("vector") {
            Some(Self::Vector)
        } else {
            None
        }
    }

    /// Reads `IOLB_KERNEL`. Unset, empty, or unrecognised values select
    /// [`KernelPath::Vector`] — the default path; it is bit-identical
    /// to scalar, so falling forward is always safe.
    pub fn from_env() -> Self {
        match std::env::var(Self::ENV) {
            Ok(v) => Self::parse(&v).unwrap_or(Self::Vector),
            Err(_) => Self::Vector,
        }
    }

    /// Stable lowercase label (CLI/JSON field value).
    pub fn label(self) -> &'static str {
        match self {
            Self::Scalar => "scalar",
            Self::Vector => "vector",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_both_labels_any_case() {
        assert_eq!(KernelPath::parse("scalar"), Some(KernelPath::Scalar));
        assert_eq!(KernelPath::parse("SCALAR"), Some(KernelPath::Scalar));
        assert_eq!(KernelPath::parse("vector"), Some(KernelPath::Vector));
        assert_eq!(KernelPath::parse("Vector"), Some(KernelPath::Vector));
        assert_eq!(KernelPath::parse("simd"), None);
        assert_eq!(KernelPath::parse(""), None);
    }

    #[test]
    fn labels_round_trip() {
        for p in [KernelPath::Scalar, KernelPath::Vector] {
            assert_eq!(KernelPath::parse(p.label()), Some(p));
        }
    }
}
