//! Full 2-D Winograd convolution `F(e x e, r x r)` (paper §2.3, Fig. 2).
//!
//! For every `e x e` output sub-domain and output channel, the four steps:
//!
//! 1. transform the `(e+r-1)^2` input patch per channel (`P = B^T d B`) and
//!    the `r x r` kernel (`J = G g G^T`),
//! 2. elementwise-multiply `Lambda = P ⊙ J`,
//! 3. sum `Lambda` over input channels into `Pi`,
//! 4. inverse-transform `Y = A^T Pi A`.
//!
//! Kernel transforms are hoisted out of the spatial loop (they depend only
//! on `(cout, cin)`), matching practical implementations. Outputs whose
//! tile hangs past the edge are handled by zero-padding the virtual input
//! and discarding out-of-range outputs, so arbitrary output sizes work.
//!
//! Two execution paths, selected by [`KernelPath`]:
//!
//! * **scalar** — the reference implementation: the input transform `P`
//!   is recomputed for every output channel. Products run through
//!   [`matmul_flat`] into preallocated scratch (no allocation inside the
//!   tile loop — an earlier formulation's per-tile `Mat` churn dominated
//!   single-thread benchmark timings).
//! * **vector** — the input transform `P` hoisted out of the `co` loop
//!   (it depends only on `(n, ci, tile)`), and the Hadamard-accumulate
//!   restructured into lane-parallel rows the autovectorizer maps onto
//!   SIMD lanes.
//!
//! The vector path preserves the scalar fold order *exactly* (see
//! [`matmul_flat`]), so the two paths are **bit-identical** — no epsilon.

use crate::conv_ref::ConvParams;
use crate::kernel::KernelPath;
use crate::tensor::Tensor4;
use crate::winograd_math::{generate, matmul_flat, Mat, Transforms};

/// Pre-transformed kernels plus the transform set: reusable across calls
/// with the same weights.
pub struct WinogradPlan {
    t: Transforms,
    /// `J[co][ci]`: `a x a` transformed kernel.
    transformed: Vec<Mat>,
    /// `B = (B^T)^T`, hoisted out of both paths' tile loops (`t()` is a
    /// pure permutation, so hoisting cannot move a bit).
    b_mat: Mat,
    /// `A = (A^T)^T`, hoisted likewise.
    a_mat: Mat,
    cout: usize,
    cin: usize,
}

impl WinogradPlan {
    /// Builds a plan for the given weights (`n = C_out`, square `r x r`
    /// kernels) and output tile edge `e`.
    pub fn new(weights: &Tensor4, e: usize) -> Self {
        assert_eq!(weights.h, weights.w, "winograd requires square kernels");
        let r = weights.h;
        let t = generate(e, r);
        let a = t.a();
        let mut transformed = Vec::with_capacity(weights.n * weights.c);
        for co in 0..weights.n {
            for ci in 0..weights.c {
                let mut g = Mat::zeros(r, r);
                for y in 0..r {
                    for x in 0..r {
                        *g.at_mut(y, x) = weights.at(co, ci, y, x) as f64;
                    }
                }
                // J = G g G^T : a x a.
                let j = t.g.matmul(&g).matmul(&t.g.t());
                debug_assert_eq!((j.rows, j.cols), (a, a));
                transformed.push(j);
            }
        }
        let b_mat = t.bt.t();
        let a_mat = t.at.t();
        Self { t, transformed, b_mat, a_mat, cout: weights.n, cin: weights.c }
    }

    fn kernel(&self, co: usize, ci: usize) -> &Mat {
        &self.transformed[co * self.cin + ci]
    }

    /// The transform triple in use.
    pub fn transforms(&self) -> &Transforms {
        &self.t
    }
}

/// Winograd convolution with tile edge `e`. Only unit stride is supported
/// (the algorithm's precondition, §2.3); padding is honoured.
pub fn conv2d_winograd(
    input: &Tensor4,
    weights: &Tensor4,
    params: ConvParams,
    e: usize,
) -> Tensor4 {
    assert_eq!(params.stride, 1, "winograd requires unit stride");
    let plan = WinogradPlan::new(weights, e);
    conv2d_winograd_with_plan(input, &plan, params)
}

/// Winograd convolution with a prebuilt plan, on the path selected by
/// `IOLB_KERNEL` (see [`KernelPath::from_env`]).
pub fn conv2d_winograd_with_plan(
    input: &Tensor4,
    plan: &WinogradPlan,
    params: ConvParams,
) -> Tensor4 {
    conv2d_winograd_with_plan_path(input, plan, params, KernelPath::from_env())
}

/// [`conv2d_winograd_with_plan`] with an explicit kernel path (tests
/// diff the two — they are bit-identical).
pub fn conv2d_winograd_with_plan_path(
    input: &Tensor4,
    plan: &WinogradPlan,
    params: ConvParams,
    path: KernelPath,
) -> Tensor4 {
    assert_eq!(params.stride, 1, "winograd requires unit stride");
    assert_eq!(input.c, plan.cin, "C_in mismatch");
    match path {
        KernelPath::Scalar => winograd_scalar(input, plan, params),
        KernelPath::Vector => winograd_vector(input, plan, params),
    }
}

/// The reference path: `P = B^T d B` recomputed for every output
/// channel — the structural trait the vector path removes. All products
/// run through [`matmul_flat`] into preallocated flat scratch (exactly
/// [`Mat::matmul`]'s fold order, so the results are bit-identical to the
/// historical per-tile-`Mat` formulation): earlier revisions allocated
/// fresh `Mat`s and recomputed the `B`/`A` transposes inside the tile
/// loop, and single-thread kernel benchmarks timed that allocator
/// traffic as if it were Winograd arithmetic.
fn winograd_scalar(input: &Tensor4, plan: &WinogradPlan, params: ConvParams) -> Tensor4 {
    let t = &plan.t;
    let (e, r, a) = (t.e, t.r, t.a());
    let aa = a * a;
    let oh = params.out_extent(input.h, r);
    let ow = params.out_extent(input.w, r);
    let mut out = Tensor4::zeros(input.n, plan.cout, oh, ow);

    let tiles_y = oh.div_ceil(e);
    let tiles_x = ow.div_ceil(e);

    let bt = &t.bt.data;
    let b = &plan.b_mat.data;
    let at = &t.at.data;
    let a_t = &plan.a_mat.data;

    // Flat scratch reused across tiles.
    let mut patch = vec![0.0f64; aa];
    let mut tmp = vec![0.0f64; aa];
    let mut p = vec![0.0f64; aa];
    let mut pi = vec![0.0f64; aa];
    let mut y_tmp = vec![0.0f64; e * a];
    let mut y_tile = vec![0.0f64; e * e];

    for n in 0..input.n {
        for co in 0..plan.cout {
            for ty in 0..tiles_y {
                for tx in 0..tiles_x {
                    // Input patch origin for this tile (may be negative
                    // with padding).
                    let oy = (ty * e) as isize - params.pad as isize;
                    let ox = (tx * e) as isize - params.pad as isize;
                    pi.fill(0.0);
                    for ci in 0..input.c {
                        // Load the (a x a) patch with zero padding.
                        for y in 0..a {
                            for x in 0..a {
                                patch[y * a + x] =
                                    input.at_padded(n, ci, oy + y as isize, ox + x as isize) as f64;
                            }
                        }
                        // P = B^T d B.
                        matmul_flat(bt, &patch, &mut tmp, a, a, a);
                        matmul_flat(&tmp, b, &mut p, a, a, a);
                        // Lambda = P ⊙ J, accumulated over channels (step 3
                        // folded into step 2's loop — same DAG, fewer
                        // buffers).
                        let j = &plan.kernel(co, ci).data;
                        for idx in 0..aa {
                            pi[idx] += p[idx] * j[idx];
                        }
                    }
                    // Y = A^T Pi A.
                    matmul_flat(at, &pi, &mut y_tmp, e, a, a);
                    matmul_flat(&y_tmp, a_t, &mut y_tile, e, a, e);
                    for dy in 0..e {
                        for dx in 0..e {
                            let yy = ty * e + dy;
                            let xx = tx * e + dx;
                            if yy < oh && xx < ow {
                                *out.at_mut(n, co, yy, xx) = y_tile[dy * e + dx] as f32;
                            }
                        }
                    }
                }
            }
        }
    }
    out
}

/// The vectorized path. Same per-element DAG as [`winograd_scalar`] —
/// three restructurings, none of which touch any element's fold order:
///
/// 1. `P = B^T d B` is hoisted out of the `co` loop: it depends only on
///    `(n, ci, tile)`, and the scalar path recomputes the identical
///    bits `cout` times.
/// 2. All tile products go through [`matmul_flat`] into preallocated flat
///    scratch — no per-tile allocation, autovectorizable inner rows.
/// 3. The Hadamard-accumulate runs over the flat `a*a` tile per `ci`
///    (ascending, exactly the scalar accumulation order), a lane-
///    parallel multiply-add the autovectorizer picks up.
fn winograd_vector(input: &Tensor4, plan: &WinogradPlan, params: ConvParams) -> Tensor4 {
    let t = &plan.t;
    let (e, r, a) = (t.e, t.r, t.a());
    let aa = a * a;
    let oh = params.out_extent(input.h, r);
    let ow = params.out_extent(input.w, r);
    let mut out = Tensor4::zeros(input.n, plan.cout, oh, ow);

    let tiles_y = oh.div_ceil(e);
    let tiles_x = ow.div_ceil(e);

    let bt = &t.bt.data;
    let b = &plan.b_mat.data;
    let at = &t.at.data;
    let a_t = &plan.a_mat.data;

    // Flat scratch reused across tiles.
    let mut patch = vec![0.0f64; aa];
    let mut tmp = vec![0.0f64; aa];
    let mut p_all = vec![0.0f64; input.c * aa]; // P per input channel
    let mut pi = vec![0.0f64; aa];
    let mut y_tmp = vec![0.0f64; e * a];
    let mut y_tile = vec![0.0f64; e * e];

    for n in 0..input.n {
        for ty in 0..tiles_y {
            for tx in 0..tiles_x {
                let oy = (ty * e) as isize - params.pad as isize;
                let ox = (tx * e) as isize - params.pad as isize;
                // Step 1 (hoisted): P = B^T d B for every input channel.
                for ci in 0..input.c {
                    for y in 0..a {
                        for x in 0..a {
                            patch[y * a + x] =
                                input.at_padded(n, ci, oy + y as isize, ox + x as isize) as f64;
                        }
                    }
                    matmul_flat(bt, &patch, &mut tmp, a, a, a);
                    matmul_flat(&tmp, b, &mut p_all[ci * aa..(ci + 1) * aa], a, a, a);
                }
                for co in 0..plan.cout {
                    // Steps 2+3: Pi = sum_ci P ⊙ J, `ci` ascending — the
                    // scalar accumulation order, `aa` independent lanes.
                    pi.fill(0.0);
                    for ci in 0..input.c {
                        let p = &p_all[ci * aa..][..aa];
                        let j = &plan.kernel(co, ci).data;
                        for (o, (&pv, &jv)) in pi.iter_mut().zip(p.iter().zip(j.iter())) {
                            *o += pv * jv;
                        }
                    }
                    // Step 4: Y = A^T Pi A.
                    matmul_flat(at, &pi, &mut y_tmp, e, a, a);
                    matmul_flat(&y_tmp, a_t, &mut y_tile, e, a, e);
                    for dy in 0..e {
                        let yy = ty * e + dy;
                        if yy >= oh {
                            break;
                        }
                        for dx in 0..e {
                            let xx = tx * e + dx;
                            if xx < ow {
                                *out.at_mut(n, co, yy, xx) = y_tile[dy * e + dx] as f32;
                            }
                        }
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv_ref::conv2d_reference;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[allow(clippy::too_many_arguments)] // test helper sweeping the shape grid
    fn check(
        n: usize,
        cin: usize,
        hw: usize,
        cout: usize,
        r: usize,
        e: usize,
        pad: usize,
        seed: u64,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let input = Tensor4::random(n, cin, hw, hw, &mut rng);
        let weights = Tensor4::random(cout, cin, r, r, &mut rng);
        let params = ConvParams::new(1, pad);
        let want = conv2d_reference(&input, &weights, params);
        let got = conv2d_winograd(&input, &weights, params, e);
        assert!(
            got.approx_eq(&want, 1e-3, 1e-3),
            "F({e},{r}) n={n} cin={cin} hw={hw} cout={cout} pad={pad}: \
             max diff {}",
            got.max_abs_diff(&want)
        );
    }

    #[test]
    fn f2x3_matches_reference_exact_tiling() {
        // oh = 6 divisible by e = 2.
        check(1, 3, 8, 4, 3, 2, 0, 1);
    }

    #[test]
    fn f2x3_matches_reference_with_padding() {
        check(1, 4, 7, 3, 3, 2, 1, 2);
    }

    #[test]
    fn f2x3_matches_reference_ragged_tiles() {
        // oh = 5 not divisible by 2: edge tiles partially discarded.
        check(1, 2, 7, 2, 3, 2, 0, 3);
    }

    #[test]
    fn f4x3_matches_reference() {
        check(1, 3, 10, 4, 3, 4, 0, 4);
        check(1, 3, 9, 2, 3, 4, 1, 5);
    }

    #[test]
    fn f3x2_matches_reference() {
        check(1, 2, 8, 3, 2, 3, 0, 6);
    }

    #[test]
    fn batched_matches_reference() {
        check(3, 2, 6, 2, 3, 2, 1, 7);
    }

    #[test]
    fn single_channel_single_kernel() {
        check(1, 1, 6, 1, 3, 2, 0, 8);
    }

    #[test]
    fn vector_path_bit_identical_to_scalar() {
        let mut rng = StdRng::seed_from_u64(42);
        // Exact tiling, ragged tiles, padding, multi-batch, odd F(e,r).
        for (n, cin, hw, cout, r, e, pad) in [
            (1, 3, 8, 4, 3, 2, 0),
            (2, 2, 7, 3, 3, 4, 1),
            (1, 1, 6, 2, 2, 3, 0),
            (1, 4, 9, 2, 3, 2, 1),
        ] {
            let input = Tensor4::random(n, cin, hw, hw, &mut rng);
            let weights = Tensor4::random(cout, cin, r, r, &mut rng);
            let params = ConvParams::new(1, pad);
            let plan = WinogradPlan::new(&weights, e);
            let s = conv2d_winograd_with_plan_path(&input, &plan, params, KernelPath::Scalar);
            let v = conv2d_winograd_with_plan_path(&input, &plan, params, KernelPath::Vector);
            let sb: Vec<u32> = s.as_slice().iter().map(|f| f.to_bits()).collect();
            let vb: Vec<u32> = v.as_slice().iter().map(|f| f.to_bits()).collect();
            assert_eq!(sb, vb, "n={n} cin={cin} hw={hw} cout={cout} F({e},{r}) pad={pad}");
        }
    }

    #[test]
    fn plan_reuse_is_consistent() {
        let mut rng = StdRng::seed_from_u64(9);
        let weights = Tensor4::random(2, 3, 3, 3, &mut rng);
        let plan = WinogradPlan::new(&weights, 2);
        let a = Tensor4::random(1, 3, 6, 6, &mut rng);
        let b = Tensor4::random(1, 3, 6, 6, &mut rng);
        let params = ConvParams::new(1, 1);
        let out_a = conv2d_winograd_with_plan(&a, &plan, params);
        let out_b = conv2d_winograd_with_plan(&b, &plan, params);
        let want_a = conv2d_reference(&a, &weights, params);
        let want_b = conv2d_reference(&b, &weights, params);
        assert!(out_a.approx_eq(&want_a, 1e-3, 1e-3));
        assert!(out_b.approx_eq(&want_b, 1e-3, 1e-3));
    }

    #[test]
    #[should_panic(expected = "unit stride")]
    fn rejects_strided_convolution() {
        let input = Tensor4::zeros(1, 1, 6, 6);
        let weights = Tensor4::zeros(1, 1, 3, 3);
        let _ = conv2d_winograd(&input, &weights, ConvParams::new(2, 0), 2);
    }

    #[test]
    #[should_panic(expected = "square kernels")]
    fn rejects_rectangular_kernels() {
        let weights = Tensor4::zeros(1, 1, 3, 5);
        let _ = WinogradPlan::new(&weights, 2);
    }
}
