//! Model-guided simulated annealing — the TVM XGBoost+SA tuner stand-in.
//!
//! Maintains a population of points; each proposal round runs a few
//! Metropolis steps per point against the *predicted* cost, with a
//! geometric temperature decay, then returns the population's current
//! points as the measurement batch.

use super::{dedupe, top_up, History, Searcher};
use crate::cost_model::CostModel;
use crate::features::featurize;
use crate::space::ConfigSpace;
use iolb_dataflow::config::ScheduleConfig;
use rand::rngs::StdRng;
use rand::Rng;

/// Simulated-annealing searcher.
pub struct SimulatedAnnealing {
    population: Vec<ScheduleConfig>,
    temperature: f64,
    /// Multiplicative temperature decay per proposal round.
    pub cooling: f64,
    /// Metropolis steps per point per round.
    pub steps_per_round: usize,
}

impl SimulatedAnnealing {
    pub fn new() -> Self {
        Self { population: Vec::new(), temperature: 1.0, cooling: 0.9, steps_per_round: 4 }
    }
}

impl Default for SimulatedAnnealing {
    fn default() -> Self {
        Self::new()
    }
}

impl Searcher for SimulatedAnnealing {
    fn propose(
        &mut self,
        space: &ConfigSpace,
        model: &dyn CostModel,
        history: &History,
        batch: usize,
        rng: &mut StdRng,
    ) -> Vec<ScheduleConfig> {
        // TVM-style round: build a candidate pool from the surviving
        // population plus fresh random samples, anneal each candidate
        // against the *predicted* cost, then keep the predicted-best as
        // the measurement batch (and the next round's seeds).
        let cost = |cfg: &ScheduleConfig| model.predict(&featurize(&space.shape, space.kind, cfg));
        let pool_size = (batch * 6).max(24);
        let mut pool = self.population.clone();
        while pool.len() < pool_size {
            match space.sample(rng, 256) {
                Some(cfg) => pool.push(cfg),
                None => break,
            }
        }
        for point in pool.iter_mut() {
            let mut cur_cost = cost(point);
            for _ in 0..self.steps_per_round {
                let cand = space.neighbor(point, rng);
                let cand_cost = cost(&cand);
                let accept = cand_cost < cur_cost || {
                    let delta = (cand_cost - cur_cost) / cur_cost.max(1e-12);
                    rng.gen_bool((-delta / self.temperature.max(1e-6)).exp().clamp(0.0, 1.0))
                };
                if accept {
                    *point = cand;
                    cur_cost = cand_cost;
                }
            }
        }
        pool.sort_by(|a, b| cost(a).total_cmp(&cost(b)));
        self.temperature = (self.temperature * self.cooling).max(0.05);
        self.population = pool.iter().take(2 * batch).copied().collect();
        let out = dedupe(pool, history, batch);
        top_up(out, space, history, batch, rng)
    }

    fn warm_start(&mut self, seeds: &[ScheduleConfig]) {
        // Warm seeds enter the surviving population, so the first
        // annealing round starts from known-good points.
        for seed in seeds {
            if !self.population.contains(seed) {
                self.population.push(*seed);
            }
        }
    }

    fn name(&self) -> &'static str {
        "simulated-annealing"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost_model::{CostModel, NoModel};
    use iolb_core::optimality::TileKind;
    use iolb_core::shapes::ConvShape;
    use rand::SeedableRng;

    fn space() -> ConfigSpace {
        ConfigSpace::new(ConvShape::square(64, 28, 32, 3, 1, 1), TileKind::Direct, 96 * 1024, false)
    }

    #[test]
    fn proposals_valid_and_temperature_cools() {
        let space = space();
        let mut rng = StdRng::seed_from_u64(1);
        let h = History::new();
        let mut s = SimulatedAnnealing::new();
        let t0 = s.temperature;
        let out = s.propose(&space, &NoModel, &h, 6, &mut rng);
        assert!(!out.is_empty());
        for cfg in &out {
            assert!(space.contains(cfg));
        }
        assert!(s.temperature < t0);
    }

    /// A synthetic model preferring large z drives the population there.
    struct PreferDeepZ;
    impl CostModel for PreferDeepZ {
        fn predict(&self, f: &[f64]) -> f64 {
            // feature 2 is log2_z; lower cost for larger z.
            100.0 - f[2]
        }
        fn train(&mut self, _: &[Vec<f64>], _: &[f64]) {}
        fn is_trained(&self) -> bool {
            true
        }
    }

    #[test]
    fn annealing_follows_model_gradient() {
        let space = space();
        let mut rng = StdRng::seed_from_u64(2);
        let h = History::new();
        let mut s = SimulatedAnnealing::new();
        let mean_z = |props: &[ScheduleConfig]| {
            props.iter().map(|c| c.z as f64).sum::<f64>() / props.len() as f64
        };
        let first = s.propose(&space, &PreferDeepZ, &h, 8, &mut rng);
        let z0 = mean_z(&first);
        for _ in 0..10 {
            let _ = s.propose(&space, &PreferDeepZ, &h, 8, &mut rng);
        }
        let last = s.propose(&space, &PreferDeepZ, &h, 8, &mut rng);
        let z1 = mean_z(&last);
        // Metropolis acceptance keeps a little churn; demand a clear climb
        // from the starting population rather than strict monotonicity.
        assert!(z1 >= z0 * 0.9, "population z collapsed: {z0} -> {z1}");
        assert!(z1 > 6.0, "population did not climb the gradient: {z1}");
    }
}
