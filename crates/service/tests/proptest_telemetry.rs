//! Property tests for the telemetry histograms: merging is associative
//! and commutative, conserves the exact observation count, and quantile
//! readouts depend only on the merged bucket counts — never on the
//! order the parts arrived in. These are the algebraic facts the fleet
//! stats aggregation and the v3 `Stats` wire message lean on.

use iolb_service::{HistogramSnapshot, LatencyHistogram, MetricsSnapshot, NUM_BUCKETS};
use proptest::prelude::*;

/// Builds a histogram from drawn bucket counts (padded/truncated to the
/// fixed arity). Bounded counts keep saturating adds exact, so the
/// conservation properties hold with `==`, not `<=`.
fn histogram_from(draws: &[u64]) -> LatencyHistogram {
    let mut buckets = vec![0u64; NUM_BUCKETS];
    for (slot, &d) in buckets.iter_mut().zip(draws.iter()) {
        *slot = d;
    }
    let sum = buckets.iter().sum::<u64>().saturating_mul(3);
    LatencyHistogram::from_parts(sum, &buckets).expect("fixed arity")
}

fn merged(a: &LatencyHistogram, b: &LatencyHistogram) -> LatencyHistogram {
    let mut out = a.clone();
    out.merge(b);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `(a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)`: fleet merges may tree up in any
    /// shape.
    #[test]
    fn histogram_merge_is_associative(
        a in prop::collection::vec(0u64..1_000_000, NUM_BUCKETS),
        b in prop::collection::vec(0u64..1_000_000, NUM_BUCKETS),
        c in prop::collection::vec(0u64..1_000_000, NUM_BUCKETS),
    ) {
        let (a, b, c) = (histogram_from(&a), histogram_from(&b), histogram_from(&c));
        let left = merged(&merged(&a, &b), &c);
        let right = merged(&a, &merged(&b, &c));
        prop_assert_eq!(left, right);
    }

    /// `a ⊕ b == b ⊕ a`: peer order never changes the readout.
    #[test]
    fn histogram_merge_is_commutative(
        a in prop::collection::vec(0u64..1_000_000, NUM_BUCKETS),
        b in prop::collection::vec(0u64..1_000_000, NUM_BUCKETS),
    ) {
        let (a, b) = (histogram_from(&a), histogram_from(&b));
        prop_assert_eq!(merged(&a, &b), merged(&b, &a));
    }

    /// Merging conserves the exact observation count and value sum
    /// (bounded draws — no saturation), and the merged quantile readout
    /// equals the readout over the bucket-wise sums by construction.
    #[test]
    fn histogram_merge_conserves_counts(
        a in prop::collection::vec(0u64..1_000_000, NUM_BUCKETS),
        b in prop::collection::vec(0u64..1_000_000, NUM_BUCKETS),
    ) {
        let (ha, hb) = (histogram_from(&a), histogram_from(&b));
        let m = merged(&ha, &hb);
        prop_assert_eq!(m.count(), ha.count() + hb.count());
        prop_assert_eq!(m.sum(), ha.sum() + hb.sum());
        for (i, got) in m.buckets().iter().enumerate() {
            prop_assert_eq!(*got, a[i] + b[i]);
        }
    }

    /// Recorded observations land in exactly one bucket each: after any
    /// sequence of `record` calls, `count()` equals the number of calls
    /// and `sum()` the sum of values.
    #[test]
    fn recording_conserves_count_and_sum(
        values in prop::collection::vec(0u64..=1_000_000_000, 0..64),
    ) {
        let mut h = LatencyHistogram::new();
        for &v in &values {
            h.record(v);
        }
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(h.sum(), values.iter().sum::<u64>());
        // The quantile readout is a bucket upper bound that at least
        // one observation maps into (or 0 when empty). Observations
        // past the last finite bound land in the overflow bucket, which
        // reads as `2^(NUM_BUCKETS - 1)`.
        let p99 = h.quantile(0.99);
        let last_finite = iolb_service::telemetry::bucket_bound(NUM_BUCKETS - 2);
        if values.is_empty() {
            prop_assert_eq!(p99, 0);
        } else if p99 == 1u64 << (NUM_BUCKETS - 1) {
            prop_assert!(values.iter().any(|&v| v > last_finite));
        } else {
            prop_assert!(values.iter().any(|&v| v <= p99));
        }
    }

    /// `MetricsSnapshot::merge` is commutative over whole registries:
    /// counters and gauges add by name, histograms merge by name, and
    /// missing names on either side are treated as zero.
    #[test]
    fn snapshot_merge_is_commutative(
        xa in 0u64..1_000_000, xb in 0u64..1_000_000,
        ya in 0u64..1_000_000,
        ha in prop::collection::vec(0u64..1_000_000, NUM_BUCKETS),
        hb in prop::collection::vec(0u64..1_000_000, NUM_BUCKETS),
    ) {
        let a = MetricsSnapshot {
            counters: vec![("alpha".into(), xa), ("both".into(), ya)],
            gauges: vec![("g".into(), xa)],
            histograms: vec![HistogramSnapshot { name: "h".into(), histogram: histogram_from(&ha) }],
        };
        let b = MetricsSnapshot {
            counters: vec![("beta".into(), xb), ("both".into(), xb)],
            gauges: vec![("g".into(), xb)],
            histograms: vec![HistogramSnapshot { name: "h".into(), histogram: histogram_from(&hb) }],
        };
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(&ab, &ba);
        prop_assert_eq!(ab.counter("both"), Some(ya + xb));
        prop_assert_eq!(ab.counter("alpha"), Some(xa));
        prop_assert_eq!(ab.counter("beta"), Some(xb));
    }
}

/// Wrong-arity bucket lists are rejected, not silently reinterpreted.
#[test]
fn from_parts_rejects_foreign_arity() {
    assert!(LatencyHistogram::from_parts(0, &[0u64; NUM_BUCKETS - 1]).is_err());
    assert!(LatencyHistogram::from_parts(0, &[0u64; NUM_BUCKETS + 1]).is_err());
    assert!(LatencyHistogram::from_parts(0, &[]).is_err());
    assert!(LatencyHistogram::from_parts(0, &[0u64; NUM_BUCKETS]).is_ok());
}
