//! Search strategies over the configuration space.
//!
//! Four strategies, mirroring the paper's Fig. 11 comparison:
//!
//! * [`random::RandomSearch`] — uniform sampling (TVM's `random` tuner);
//! * [`sa::SimulatedAnnealing`] — model-guided annealing (TVM's XGBoost+SA
//!   tuner);
//! * [`genetic::GeneticSearch`] — a genetic algorithm (TVM's GA tuner);
//! * [`walk::ParallelRandomWalk`] — the paper's auto-tuning engine: `n_s`
//!   parallel greedy random walks over the *pruned* searching domain,
//!   each converging to a configuration with low predicted cost (§6.2,
//!   "Searching Process").

pub mod genetic;
pub mod random;
pub mod sa;
pub mod walk;

use crate::cost_model::CostModel;
use crate::space::ConfigSpace;
use iolb_dataflow::config::ScheduleConfig;
use rand::rngs::StdRng;

/// Measurement history shared with searchers so they avoid re-proposing
/// already-measured configurations.
#[derive(Debug, Default, Clone)]
pub struct History {
    entries: Vec<(ScheduleConfig, f64)>,
}

impl History {
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a measured configuration.
    pub fn push(&mut self, cfg: ScheduleConfig, cost_ms: f64) {
        self.entries.push((cfg, cost_ms));
    }

    /// Whether `cfg` has been measured already.
    pub fn contains(&self, cfg: &ScheduleConfig) -> bool {
        self.entries.iter().any(|(c, _)| c == cfg)
    }

    /// All measurements.
    pub fn entries(&self) -> &[(ScheduleConfig, f64)] {
        &self.entries
    }

    /// The best (lowest-cost) measurement so far.
    pub fn best(&self) -> Option<(ScheduleConfig, f64)> {
        self.entries.iter().min_by(|a, b| a.1.total_cmp(&b.1)).copied()
    }

    /// Number of measurements.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no measurements exist yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// A batch-proposing search strategy.
pub trait Searcher {
    /// Proposes up to `batch` *new* configurations to measure next.
    fn propose(
        &mut self,
        space: &ConfigSpace,
        model: &dyn CostModel,
        history: &History,
        batch: usize,
        rng: &mut StdRng,
    ) -> Vec<ScheduleConfig>;

    /// Seeds the searcher's internal population with externally-known
    /// strong configurations — the warm-start hook the tuning-record
    /// store uses to resume from the best of previous runs (best first).
    /// Callers guarantee the seeds belong to the space being searched.
    /// Stateless strategies may ignore this (the default).
    fn warm_start(&mut self, _seeds: &[ScheduleConfig]) {}

    /// Strategy name for reports.
    fn name(&self) -> &'static str;
}

/// Deduplicates proposals against the history and within the batch.
pub(crate) fn dedupe(
    proposals: Vec<ScheduleConfig>,
    history: &History,
    batch: usize,
) -> Vec<ScheduleConfig> {
    let mut out: Vec<ScheduleConfig> = Vec::with_capacity(batch);
    for p in proposals {
        if !history.contains(&p) && !out.contains(&p) {
            out.push(p);
            if out.len() == batch {
                break;
            }
        }
    }
    out
}

/// Tops a deduplicated batch up with fresh random samples — the
/// epsilon-exploration every practical tuner keeps so a converged
/// population cannot starve the measurement loop.
pub(crate) fn top_up(
    mut out: Vec<ScheduleConfig>,
    space: &ConfigSpace,
    history: &History,
    batch: usize,
    rng: &mut StdRng,
) -> Vec<ScheduleConfig> {
    let mut tries = 0;
    while out.len() < batch && tries < batch * 16 {
        tries += 1;
        if let Some(cfg) = space.sample(rng, 64) {
            if !history.contains(&cfg) && !out.contains(&cfg) {
                out.push(cfg);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use iolb_tensor::layout::Layout;

    fn cfg(x: usize) -> ScheduleConfig {
        ScheduleConfig {
            x,
            y: 7,
            z: 8,
            nxt: 1,
            nyt: 1,
            nzt: 1,
            sb_bytes: 16 * 1024,
            layout: Layout::Chw,
        }
    }

    #[test]
    fn history_tracks_best() {
        let mut h = History::new();
        assert!(h.best().is_none());
        h.push(cfg(1), 5.0);
        h.push(cfg(2), 2.0);
        h.push(cfg(4), 9.0);
        let (best, cost) = h.best().unwrap();
        assert_eq!(best.x, 2);
        assert_eq!(cost, 2.0);
        assert!(h.contains(&cfg(4)));
        assert!(!h.contains(&cfg(7)));
    }

    #[test]
    fn dedupe_removes_history_and_batch_duplicates() {
        let mut h = History::new();
        h.push(cfg(1), 1.0);
        let out = dedupe(vec![cfg(1), cfg(2), cfg(2), cfg(4), cfg(7)], &h, 2);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].x, 2);
        assert_eq!(out[1].x, 4);
    }
}
