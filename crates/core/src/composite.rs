//! The general composite-algorithm lower bound (paper §4.1.3–4.1.4).
//!
//! Given a multi-step partition of a DAG into `n` sub-computations with
//! vertex-generation bounds `phi_j` / `psi_j`, Theorem 4.5 bounds the size
//! of any S-partition class by
//!
//! ```text
//! T(S) = S + max_{k_1+..+k_n <= S} ( phi_1(a_1) + ... + phi_n(a_n) ),
//!        a_1 = k_1,  a_j = k_j + psi_{j-1}(a_{j-1})
//! ```
//!
//! and Theorem 4.6 turns that into the I/O lower bound
//! `Q >= S * (|V| / T(2S) - 1)`.
//!
//! `T(S)` is a maximisation over a simplex of budget splits. The paper
//! evaluates it analytically for its two algorithms; we evaluate it
//! *numerically* for arbitrary step sequences so the theory is usable on new
//! composite algorithms. Because every `phi_j`/`psi_j` is non-decreasing,
//! the maximum is attained with the whole budget spent, so we search the
//! `(n-1)`-simplex by recursive coarse-to-fine grid refinement.

use crate::phi_psi::StepBound;

/// Evaluates the inner sum of Theorem 4.5 for a concrete budget split.
///
/// `ks` are the per-step budgets `k_j`; `s` is the fast-memory size (some
/// step bounds depend on it directly).
pub fn nested_sum(steps: &[Box<dyn StepBound>], s: f64, ks: &[f64]) -> f64 {
    assert_eq!(steps.len(), ks.len(), "one budget per step");
    let mut total = 0.0;
    let mut carry = 0.0; // psi_{j-1}(a_{j-1}); zero before the first step
    for (step, &k) in steps.iter().zip(ks) {
        let a = k + carry;
        total += step.phi(s, a);
        carry = step.psi(s, a);
    }
    total
}

/// Result of the `T(S)` maximisation.
#[derive(Debug, Clone)]
pub struct TBound {
    /// The bound `T(S)`.
    pub t: f64,
    /// The maximising budget split (informative; coordinates sum to <= S).
    pub split: Vec<f64>,
}

/// Numerically evaluates `T(S)` (Theorem 4.5, Eq. 5).
///
/// Uses recursive grid refinement on the budget simplex: at each level, each
/// free coordinate is sampled on a grid; the best cell is then refined. The
/// functions are smooth in practice (power laws, mins), so a handful of
/// refinement levels reach well under 0.1% relative error — the tests
/// validate this against the closed forms of Lemmas 4.11 and 4.19.
pub fn t_bound(steps: &[Box<dyn StepBound>], s: f64) -> TBound {
    assert!(!steps.is_empty(), "need at least one step");
    assert!(s > 0.0, "fast memory must be positive");
    let n = steps.len();
    if n == 1 {
        // Single-step algorithm: spend everything on the one step.
        return TBound { t: s + steps[0].phi(s, s), split: vec![s] };
    }

    // Free coordinates: k_1..k_{n-1}; k_n = S - sum (clamped at 0).
    let free = n - 1;
    // Grid resolution per level, chosen so that even 3 free dims stay cheap
    // (13^3 = 2197 evaluations per level).
    let grid = if free <= 1 { 65 } else { 13 };
    let levels = 6;

    let mut lo = vec![0.0f64; free];
    let mut hi = vec![s; free];
    let mut best_val = f64::NEG_INFINITY;
    let mut best_ks = vec![0.0f64; n];

    let mut idx = vec![0usize; free];
    let mut ks = vec![0.0f64; n];
    for _level in 0..levels {
        let mut level_best = f64::NEG_INFINITY;
        let mut level_best_pt = vec![0.0f64; free];
        idx.iter_mut().for_each(|i| *i = 0);
        'outer: loop {
            // Materialise the candidate point.
            let mut sum = 0.0;
            for d in 0..free {
                let frac = idx[d] as f64 / (grid - 1) as f64;
                ks[d] = lo[d] + frac * (hi[d] - lo[d]);
                sum += ks[d];
            }
            if sum <= s + 1e-9 {
                ks[n - 1] = (s - sum).max(0.0);
                let v = nested_sum(steps, s, &ks);
                if v > level_best {
                    level_best = v;
                    level_best_pt.copy_from_slice(&ks[..free]);
                }
                if v > best_val {
                    best_val = v;
                    best_ks.copy_from_slice(&ks);
                }
            }
            // Odometer increment.
            for d in 0..free {
                idx[d] += 1;
                if idx[d] < grid {
                    continue 'outer;
                }
                idx[d] = 0;
            }
            break;
        }
        // Refine around the level's best point: shrink each range to the
        // two neighbouring grid cells.
        for d in 0..free {
            let span = (hi[d] - lo[d]) / (grid - 1) as f64;
            lo[d] = (level_best_pt[d] - span).max(0.0);
            hi[d] = (level_best_pt[d] + span).min(s);
        }
    }

    TBound { t: s + best_val, split: best_ks }
}

/// The general I/O lower bound of Theorem 4.6:
/// `Q >= S * (|V| / T(2S) - 1)`, clamped at zero.
///
/// `v` is the number of internal + output vertices of the DAG (the vertices
/// that must be *computed*; pure inputs are excluded exactly as in the
/// paper's vertex counts of Lemmas 4.8/4.14).
pub fn io_lower_bound(steps: &[Box<dyn StepBound>], v: f64, s: f64) -> f64 {
    let t2s = t_bound(steps, 2.0 * s).t;
    (s * (v / t2s - 1.0)).max(0.0)
}

/// Same bound, but with a caller-supplied `T(2S)` (e.g. a closed form).
pub fn io_lower_bound_with_t(v: f64, s: f64, t_2s: f64) -> f64 {
    (s * (v / t_2s - 1.0)).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phi_psi::{direct_steps, winograd_steps, StepBound};
    use crate::shapes::WinogradTile;

    /// Lemma 4.11 closed form: `T(S) <= 4 S sqrt(R S) + S - 1`, attained at
    /// `k_1 = S, k_2 = 0`.
    #[test]
    fn direct_t_matches_lemma_4_11() {
        for (r, s) in [(9.0, 1024.0), (2.25, 4096.0), (9.0, 64.0)] {
            let steps = direct_steps(r);
            let got = t_bound(&steps, s);
            let closed = 4.0 * s * (r * s).sqrt() + s - 1.0;
            let rel = (got.t - closed).abs() / closed;
            assert!(rel < 1e-3, "R={r} S={s}: got {} want {closed} (rel {rel})", got.t);
            // Maximiser puts (almost) the whole budget on step 1.
            assert!(got.split[0] > 0.99 * s, "split = {:?}", got.split);
        }
    }

    /// Lemma 4.19: `T(S) = O(2 a^3/(er) S^1.5 + 6 a^2/(er) S)` for Winograd.
    ///
    /// The numeric maximiser evaluates the full nested expression of
    /// Theorem 4.5 and is therefore somewhat *larger* than the paper's
    /// chain (the Eq. 18 derivation drops the step-3 `phi_3(psi_2(...))`
    /// term, which contributes another `O(S^1.5)` with a comparable
    /// coefficient). Since Lemma 4.19 is an O-statement this only shifts
    /// the constant; we assert the numeric value stays within a small
    /// constant factor [0.25, 6] of the closed form across two decades of
    /// S, and that the S^1.5 growth rate matches.
    #[test]
    fn winograd_t_bracketed_by_lemma_4_19() {
        let tile = WinogradTile::F2X3;
        let a = tile.a() as f64;
        let er = (tile.e * tile.r) as f64;
        let closed = |s: f64| 2.0 * a.powi(3) / er * s * s.sqrt() + 6.0 * a * a / er * s;
        let mut ratios = Vec::new();
        for s in [256.0, 4096.0, 65536.0] {
            let steps = winograd_steps(tile);
            let got = t_bound(&steps, s).t;
            let c = closed(s);
            let ratio = got / c;
            assert!(
                (0.25..6.0).contains(&ratio),
                "S={s}: numeric T {got} vs closed {c} (ratio {ratio})"
            );
            ratios.push(ratio);
        }
        // Same asymptotic exponent: the ratio must be flat (within 50%)
        // across a 256x range of S.
        let spread = ratios.iter().cloned().fold(f64::MIN, f64::max)
            / ratios.iter().cloned().fold(f64::MAX, f64::min);
        assert!(spread < 1.5, "ratios {ratios:?} not flat: T does not scale as S^1.5");
    }

    #[test]
    fn io_lower_bound_positive_for_large_dags() {
        let steps = direct_steps(9.0);
        // |V| = 1e9 computed vertices, S = 1024.
        let q = io_lower_bound(&steps, 1e9, 1024.0);
        assert!(q > 0.0);
        // Larger fast memory => smaller bound.
        let q_big_s = io_lower_bound(&steps, 1e9, 8192.0);
        assert!(q_big_s < q);
    }

    #[test]
    fn io_lower_bound_zero_for_tiny_dags() {
        let steps = direct_steps(9.0);
        // A DAG smaller than T(2S) fits entirely; bound clamps to zero.
        assert_eq!(io_lower_bound(&steps, 10.0, 1024.0), 0.0);
    }

    #[test]
    fn nested_sum_respects_psi_carry() {
        // Two synthetic steps where psi matters: step1 psi(h)=h, step2
        // phi(h)=h. Then sum = phi1(k1) + (k2 + k1).
        struct Lin;
        impl StepBound for Lin {
            fn phi(&self, _s: f64, h: f64) -> f64 {
                h
            }
            fn name(&self) -> &'static str {
                "lin"
            }
        }
        let steps: Vec<Box<dyn StepBound>> = vec![Box::new(Lin), Box::new(Lin)];
        let v = nested_sum(&steps, 100.0, &[30.0, 20.0]);
        // phi1(30) + phi2(20 + psi1(30)) = 30 + 50 = 80.
        assert!((v - 80.0).abs() < 1e-9);
    }

    #[test]
    fn t_bound_single_step() {
        struct Sqrt;
        impl StepBound for Sqrt {
            fn phi(&self, _s: f64, h: f64) -> f64 {
                h.sqrt()
            }
            fn name(&self) -> &'static str {
                "sqrt"
            }
        }
        let steps: Vec<Box<dyn StepBound>> = vec![Box::new(Sqrt)];
        let got = t_bound(&steps, 100.0);
        assert!((got.t - 110.0).abs() < 1e-6);
    }

    #[test]
    fn t_bound_monotone_in_s() {
        let steps = winograd_steps(WinogradTile::F4X3);
        let t1 = t_bound(&steps, 512.0).t;
        let t2 = t_bound(&steps, 1024.0).t;
        let t3 = t_bound(&steps, 2048.0).t;
        assert!(t1 < t2 && t2 < t3);
    }

    /// The refinement search must not miss an interior maximum: construct a
    /// two-step instance whose optimum is strictly interior and known.
    #[test]
    fn t_bound_finds_interior_optimum() {
        // phi1(h) = 20*sqrt(h), psi1 = 0, phi2(h) = 20*sqrt(h).
        // max over k1+k2=S of 20(sqrt(k1)+sqrt(k2)) is at k1=k2=S/2.
        struct HalfA;
        impl StepBound for HalfA {
            fn phi(&self, _s: f64, h: f64) -> f64 {
                20.0 * h.sqrt()
            }
            fn psi(&self, _s: f64, _h: f64) -> f64 {
                0.0
            }
            fn name(&self) -> &'static str {
                "half"
            }
        }
        let steps: Vec<Box<dyn StepBound>> = vec![Box::new(HalfA), Box::new(HalfA)];
        let s = 200.0;
        let got = t_bound(&steps, s);
        let expect = s + 2.0 * 20.0 * (s / 2.0).sqrt();
        assert!(
            (got.t - expect).abs() / expect < 1e-4,
            "got {} want {expect}, split {:?}",
            got.t,
            got.split
        );
        assert!((got.split[0] - 100.0).abs() < 2.0);
    }
}
