//! Heuristic pebbling strategies — legal complete traces whose I/O gives an
//! *upper bound* on the DAG's true minimum `Q`.
//!
//! Together with the analytic lower bounds from `iolb-core`, these sandwich
//! the exact optimum: `Q_lower <= Q_exact <= Q_heuristic`. Two eviction
//! policies are provided: LRU and Belady-style furthest-next-use (computed
//! offline against the fixed topological compute order, so "next use" is
//! exact, making this the classic optimal-replacement policy for the chosen
//! compute order).

use crate::dag::{Dag, VertexId};
use crate::game::{Game, Move};

/// Eviction policy used when a red pebble must be dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Eviction {
    /// Evict the least-recently-used red pebble.
    Lru,
    /// Evict the pebble whose next use (in the fixed compute order) is
    /// furthest in the future — Belady's MIN for the given order.
    Belady,
}

/// Result of running a strategy.
#[derive(Debug, Clone)]
pub struct StrategyOutcome {
    /// The legal move trace.
    pub trace: Vec<Move>,
    /// Total I/O (loads + stores).
    pub io: u64,
    /// Loads only.
    pub loads: u64,
    /// Stores only.
    pub stores: u64,
}

impl StrategyOutcome {
    /// Attributes the trace's I/O to the multi-step partition: entry `j`
    /// counts loads+stores of vertices whose step label is `j`.
    ///
    /// This makes §5.1's reading of the bounds *measurable*: the step whose
    /// `phi_j` carries the highest-order term of the lower bound should
    /// dominate the traffic of any schedule that has not exploited that
    /// step's data reuse — and shrink once it has.
    pub fn io_by_step(&self, dag: &Dag) -> Vec<u64> {
        let max_step = (0..dag.len() as VertexId).map(|v| dag.step(v)).max().unwrap_or(0) as usize;
        let mut by_step = vec![0u64; max_step + 1];
        for m in &self.trace {
            match *m {
                Move::Load(v) | Move::Store(v) => {
                    by_step[dag.step(v) as usize] += 1;
                }
                _ => {}
            }
        }
        by_step
    }
}

/// Pebbles the whole DAG in topological order with write-back eviction:
/// computes every non-input vertex exactly once; when fast memory is full,
/// evicts per `policy`, storing the victim first if it is still needed and
/// not already blue. Returns the outcome (trace replays legally and
/// completes by construction; tests verify via `replay_complete`).
///
/// Panics if `s` is smaller than the DAG's maximum in-degree + 1 (no legal
/// single-pass schedule exists below that).
pub fn pebble_topological(dag: &Dag, s: usize, policy: Eviction) -> StrategyOutcome {
    let max_indeg = (0..dag.len() as VertexId).map(|v| dag.preds(v).len()).max().unwrap_or(0);
    assert!(s > max_indeg, "S = {s} below max in-degree + 1 = {}", max_indeg + 1);

    let order: Vec<VertexId> =
        dag.topo_order().into_iter().filter(|&v| !dag.preds(v).is_empty()).collect();

    // For Belady: positions at which each vertex is used as a predecessor,
    // in compute order.
    let mut uses: Vec<Vec<usize>> = vec![Vec::new(); dag.len()];
    for (pos, &v) in order.iter().enumerate() {
        for &p in dag.preds(v) {
            uses[p as usize].push(pos);
        }
    }
    // Per-vertex cursor into its use list.
    let mut use_cursor: Vec<usize> = vec![0; dag.len()];

    let mut game = Game::new(dag, s);
    let mut trace: Vec<Move> = Vec::new();
    // Remaining-successor counts to know whether a victim is still needed.
    let mut remaining: Vec<usize> = (0..dag.len()).map(|v| uses[v].len()).collect();
    // LRU clock.
    let mut last_touch: Vec<u64> = vec![0; dag.len()];
    let mut clock: u64 = 0;
    // Vertices currently red and *not pinned* (pinned = predecessor of the
    // vertex being computed right now).
    let mut pinned: Vec<bool> = vec![false; dag.len()];

    let apply = |game: &mut Game, trace: &mut Vec<Move>, m: Move| {
        game.apply(m).unwrap_or_else(|e| panic!("strategy generated illegal move {m:?}: {e}"));
        trace.push(m);
    };

    for (pos, &v) in order.iter().enumerate() {
        // Pin predecessors.
        for &p in dag.preds(v) {
            pinned[p as usize] = true;
        }

        // Ensure each predecessor is red.
        for &p in dag.preds(v) {
            if game.is_red(p) {
                clock += 1;
                last_touch[p as usize] = clock;
                continue;
            }
            make_room(
                dag,
                &mut game,
                &mut trace,
                &pinned,
                &remaining,
                &last_touch,
                &uses,
                &use_cursor,
                pos,
                policy,
            );
            // Either blue (input or stored earlier) — load it. Internal
            // vertices are always stored before eviction, so blue holds.
            assert!(game.is_blue(p), "vertex {p} neither red nor blue");
            apply(&mut game, &mut trace, Move::Load(p));
            clock += 1;
            last_touch[p as usize] = clock;
        }

        // Room for the result itself.
        if !game.is_red(v) {
            make_room(
                dag,
                &mut game,
                &mut trace,
                &pinned,
                &remaining,
                &last_touch,
                &uses,
                &use_cursor,
                pos,
                policy,
            );
        }
        apply(&mut game, &mut trace, Move::Compute(v));
        clock += 1;
        last_touch[v as usize] = clock;

        // Unpin and account the uses.
        for &p in dag.preds(v) {
            pinned[p as usize] = false;
            remaining[p as usize] -= 1;
            use_cursor[p as usize] += 1;
            // Drop pebbles that will never be used again and need no store.
            if remaining[p as usize] == 0 && game.is_red(p) && !dag.succs(p).is_empty() {
                apply(&mut game, &mut trace, Move::FreeRed(p));
            }
        }

        // Outputs go straight to slow memory.
        if dag.succs(v).is_empty() {
            apply(&mut game, &mut trace, Move::Store(v));
            apply(&mut game, &mut trace, Move::FreeRed(v));
        }
    }

    debug_assert!(game.is_complete());
    StrategyOutcome { trace, io: game.io(), loads: game.loads(), stores: game.stores() }
}

/// Frees one red slot if the game is at capacity, per the eviction policy;
/// stores the victim first when it is still needed and not blue.
#[allow(clippy::too_many_arguments)]
fn make_room(
    dag: &Dag,
    game: &mut Game,
    trace: &mut Vec<Move>,
    pinned: &[bool],
    remaining: &[usize],
    last_touch: &[u64],
    uses: &[Vec<usize>],
    use_cursor: &[usize],
    now: usize,
    policy: Eviction,
) {
    if game.red_count() < game.s {
        return;
    }
    // Candidate victims: red, not pinned.
    let victim = (0..dag.len() as VertexId)
        .filter(|&v| game.is_red(v) && !pinned[v as usize])
        .max_by_key(|&v| match policy {
            Eviction::Lru => u64::MAX - last_touch[v as usize],
            Eviction::Belady => {
                // Next use position after `now`; vertices never used again
                // sort last (best victims).
                let next = uses[v as usize]
                    .get(use_cursor[v as usize])
                    .copied()
                    .filter(|&p| p >= now)
                    .unwrap_or(usize::MAX);
                next as u64
            }
        })
        .expect("no evictable red pebble: S too small for pinned set");
    let needs_store = remaining[victim as usize] > 0 && !game.is_blue(victim);
    if needs_store {
        game.apply(Move::Store(victim)).expect("store of red victim");
        trace.push(Move::Store(victim));
    }
    game.apply(Move::FreeRed(victim)).expect("free of red victim");
    trace.push(Move::FreeRed(victim));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::game::replay_complete;

    /// Binary summation tree over `k` inputs (sequential chain, matching
    /// Lemma 4.7's structure).
    fn summation_chain(k: usize) -> Dag {
        let mut d = Dag::new();
        let inputs: Vec<_> = (0..k).map(|_| d.add_vertex(0)).collect();
        let mut acc = {
            let v = d.add_vertex(1);
            d.add_edge(inputs[0], v);
            d.add_edge(inputs[1], v);
            v
        };
        for &inp in &inputs[2..] {
            let v = d.add_vertex(1);
            d.add_edge(acc, v);
            d.add_edge(inp, v);
            acc = v;
        }
        d
    }

    /// Dense bipartite layer: every one of `m` outputs reads all `k` inputs.
    fn dense_layer(k: usize, m: usize) -> Dag {
        let mut d = Dag::new();
        let inputs: Vec<_> = (0..k).map(|_| d.add_vertex(0)).collect();
        for _ in 0..m {
            let o = d.add_vertex(1);
            for &i in &inputs {
                d.add_edge(i, o);
            }
        }
        d
    }

    #[test]
    fn traces_replay_legally_and_complete() {
        for policy in [Eviction::Lru, Eviction::Belady] {
            for dag in [summation_chain(8), dense_layer(4, 5)] {
                for s in [5, 8, 16] {
                    let out = pebble_topological(&dag, s, policy);
                    let q = replay_complete(&dag, s, &out.trace).unwrap();
                    assert_eq!(q, out.io, "reported I/O must match replay");
                }
            }
        }
    }

    #[test]
    fn ample_memory_moves_only_inputs_and_outputs() {
        // With S >= |V|, each input loads once, each output stores once.
        let dag = summation_chain(6);
        let out = pebble_topological(&dag, dag.len(), Eviction::Belady);
        assert_eq!(out.loads, 6);
        assert_eq!(out.stores, 1);
    }

    #[test]
    fn scarce_memory_costs_more() {
        let dag = dense_layer(8, 8);
        let tight = pebble_topological(&dag, 9, Eviction::Belady);
        let ample = pebble_topological(&dag, 64, Eviction::Belady);
        assert!(tight.io >= ample.io);
        assert_eq!(ample.loads, 8);
        assert_eq!(ample.stores, 8);
    }

    #[test]
    fn belady_never_worse_than_lru_on_dense_layer() {
        // For a fixed compute order Belady is the optimal replacement; on
        // this structured DAG it must not lose to LRU.
        let dag = dense_layer(10, 6);
        for s in [11, 12, 14] {
            let b = pebble_topological(&dag, s, Eviction::Belady);
            let l = pebble_topological(&dag, s, Eviction::Lru);
            assert!(b.io <= l.io, "S={s}: belady {} > lru {}", b.io, l.io);
        }
    }

    #[test]
    fn io_at_least_compulsory_traffic() {
        // Every complete pebbling loads each *used* input at least once and
        // stores each output at least once.
        let dag = dense_layer(6, 4);
        let out = pebble_topological(&dag, 8, Eviction::Lru);
        assert!(out.loads >= 6);
        assert!(out.stores >= 4);
    }

    #[test]
    #[should_panic(expected = "below max in-degree")]
    fn rejects_impossible_capacity() {
        let dag = dense_layer(4, 2);
        let _ = pebble_topological(&dag, 3, Eviction::Lru);
    }

    #[test]
    fn summation_tree_io_matches_hand_count() {
        // Chain of k-1 adds with S large enough to keep the accumulator
        // and one input: loads = k, stores = 1.
        let dag = summation_chain(5);
        let out = pebble_topological(&dag, 3, Eviction::Belady);
        assert_eq!(out.loads, 5);
        assert_eq!(out.stores, 1);
        assert_eq!(out.io, 6);
    }

    #[test]
    fn io_by_step_partitions_the_traffic() {
        // Direct-conv DAG: step 0 = inputs, 1 = products, 2 = summations.
        use iolb_core::shapes::ConvShape;
        let shape = ConvShape::new(2, 4, 4, 2, 3, 3, 1, 0);
        let dag = crate::conv_dag::direct_conv_dag(&shape);
        let out = pebble_topological(&dag, 24, Eviction::Belady);
        let by_step = out.io_by_step(&dag);
        assert_eq!(by_step.iter().sum::<u64>(), out.io);
        // Inputs (step 0) account for all the loads of raw data; outputs
        // live in step 2. Products (step 1) are transient and should move
        // little relative to inputs under a decent schedule.
        assert!(by_step[0] > 0, "no input traffic?");
        assert!(by_step[2] > 0, "no output traffic?");
    }

    #[test]
    fn tight_memory_shifts_traffic_toward_intermediates() {
        use iolb_core::shapes::ConvShape;
        let shape = ConvShape::new(2, 4, 4, 2, 3, 3, 1, 0);
        let dag = crate::conv_dag::direct_conv_dag(&shape);
        let tight = pebble_topological(&dag, 20, Eviction::Belady);
        let ample = pebble_topological(&dag, 256, Eviction::Belady);
        let t = tight.io_by_step(&dag);
        let a = ample.io_by_step(&dag);
        // With ample memory the only traffic is compulsory (inputs +
        // outputs); intermediate steps move nothing.
        assert_eq!(a[1], 0);
        // Tight memory spills intermediates (steps 1-2 write-backs), so
        // the non-input share must not shrink.
        assert!(t[1] + t[2] >= a[1] + a[2]);
    }
}
