//! Genetic-algorithm searcher — the TVM GA tuner stand-in.
//!
//! Classic generational GA: tournament selection on measured cost (falling
//! back to predicted cost for unmeasured individuals), dimension-wise
//! crossover, neighbour-step mutation, elitism of one.

use super::{dedupe, top_up, History, Searcher};
use crate::cost_model::CostModel;
use crate::features::featurize;
use crate::space::ConfigSpace;
use iolb_dataflow::config::ScheduleConfig;
use rand::rngs::StdRng;
use rand::Rng;

/// Genetic searcher.
pub struct GeneticSearch {
    population: Vec<ScheduleConfig>,
    /// Probability of mutating each child.
    pub mutation_rate: f64,
    /// Tournament size.
    pub tournament: usize,
}

impl GeneticSearch {
    pub fn new() -> Self {
        Self { population: Vec::new(), mutation_rate: 0.3, tournament: 3 }
    }

    fn fitness(
        &self,
        cfg: &ScheduleConfig,
        space: &ConfigSpace,
        model: &dyn CostModel,
        history: &History,
    ) -> f64 {
        history.entries().iter().find(|(c, _)| c == cfg).map(|(_, cost)| *cost).unwrap_or_else(
            || {
                if model.is_trained() {
                    model.predict(&featurize(&space.shape, space.kind, cfg))
                } else {
                    // An untrained model's constant prediction must not
                    // outrank real measurements, or elitism would evict
                    // the best measured individual for unknowns.
                    f64::INFINITY
                }
            },
        )
    }
}

impl Default for GeneticSearch {
    fn default() -> Self {
        Self::new()
    }
}

impl Searcher for GeneticSearch {
    fn propose(
        &mut self,
        space: &ConfigSpace,
        model: &dyn CostModel,
        history: &History,
        batch: usize,
        rng: &mut StdRng,
    ) -> Vec<ScheduleConfig> {
        let pop_size = (2 * batch).max(6);
        while self.population.len() < pop_size {
            match space.sample(rng, 256) {
                Some(cfg) => self.population.push(cfg),
                None => break,
            }
        }
        if self.population.is_empty() {
            return Vec::new();
        }

        // Rank the current population.
        let mut scored: Vec<(ScheduleConfig, f64)> =
            self.population.iter().map(|c| (*c, self.fitness(c, space, model, history))).collect();
        scored.sort_by(|a, b| a.1.total_cmp(&b.1));

        // Next generation: elite + tournament offspring.
        let mut next: Vec<ScheduleConfig> = vec![scored[0].0];
        let select = |rng: &mut StdRng, scored: &[(ScheduleConfig, f64)]| {
            let mut best = rng.gen_range(0..scored.len());
            for _ in 1..self.tournament {
                let cand = rng.gen_range(0..scored.len());
                if scored[cand].1 < scored[best].1 {
                    best = cand;
                }
            }
            scored[best].0
        };
        while next.len() < pop_size {
            let a = select(rng, &scored);
            let b = select(rng, &scored);
            let mut child = space.crossover(&a, &b, rng);
            if rng.gen_bool(self.mutation_rate) {
                child = space.neighbor(&child, rng);
            }
            next.push(child);
        }
        self.population = next;
        let out = dedupe(self.population.clone(), history, batch);
        top_up(out, space, history, batch, rng)
    }

    fn warm_start(&mut self, seeds: &[ScheduleConfig]) {
        // Seeds join the founding population; their (cached) costs in the
        // history make them tournament favourites from round one.
        for seed in seeds {
            if !self.population.contains(seed) {
                self.population.push(*seed);
            }
        }
    }

    fn name(&self) -> &'static str {
        "genetic"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost_model::NoModel;
    use iolb_core::optimality::TileKind;
    use iolb_core::shapes::ConvShape;
    use rand::SeedableRng;

    fn space() -> ConfigSpace {
        ConfigSpace::new(ConvShape::square(64, 28, 32, 3, 1, 1), TileKind::Direct, 96 * 1024, false)
    }

    #[test]
    fn generations_stay_valid() {
        let space = space();
        let mut rng = StdRng::seed_from_u64(1);
        let mut h = History::new();
        let mut g = GeneticSearch::new();
        for round in 0..5 {
            let out = g.propose(&space, &NoModel, &h, 6, &mut rng);
            assert!(!out.is_empty(), "round {round} empty");
            for cfg in &out {
                assert!(space.contains(cfg));
                h.push(*cfg, 1.0 + (cfg.x as f64));
            }
        }
    }

    #[test]
    fn elitism_keeps_the_best_individual() {
        let space = space();
        let mut rng = StdRng::seed_from_u64(2);
        let mut h = History::new();
        let mut g = GeneticSearch::new();
        // Measure the first batch so the best is known.
        let first = g.propose(&space, &NoModel, &h, 6, &mut rng);
        for cfg in &first {
            // Cost strongly favours small x.
            h.push(*cfg, cfg.x as f64);
        }
        let best_before = h.best().unwrap().0;
        let _ = g.propose(&space, &NoModel, &h, 6, &mut rng);
        // Elite survives inside the population.
        assert!(g.population.contains(&best_before), "elite lost from population");
    }
}
