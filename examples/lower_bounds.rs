//! Lower-bound explorer: Theorem 4.12 / 4.20 bounds and the dataflow I/O
//! models across real network layers and fast-memory sizes.
//!
//! ```sh
//! cargo run --release --example lower_bounds
//! ```

use conv_iolb::cnn::models;
use conv_iolb::core::shapes::WinogradTile;
use conv_iolb::core::{direct, winograd};

fn main() {
    println!("Per-layer I/O lower bounds (S = 8192 elems = 32 KiB of f32)\n");
    println!(
        "{:<26} {:>14} {:>14} {:>14} {:>9}",
        "layer", "Q_lower(dir)", "Q_flow(dir)", "Q_lower(wino)", "dir gap"
    );
    let s = 8192.0;
    let net = models::resnet18();
    for layer in &net.layers {
        let shape = &layer.shape;
        let lb = direct::io_lower_bound(shape, s);
        let flow = direct::dataflow_optimal_io(shape, s, 1.0);
        let wino = if layer.winograd_eligible() {
            format!("{:.3e}", winograd::io_lower_bound(shape, WinogradTile::F2X3, s))
        } else {
            "-".to_string()
        };
        println!(
            "{:<26} {:>14.3e} {:>14.3e} {:>14} {:>8.2}x",
            layer.name,
            lb,
            flow,
            wino,
            flow / lb.max(1.0),
        );
    }

    println!("\nBound scaling with fast-memory size (ResNet layer1, 3x3 64ch):");
    let shape = net.layers[2].shape;
    println!("{:>10} {:>14} {:>16}", "S (elems)", "Q_lower(dir)", "per-output reads");
    for s in [512.0, 2048.0, 8192.0, 32768.0] {
        let lb = direct::io_lower_bound(&shape, s);
        println!("{s:>10.0} {lb:>14.3e} {:>16.2}", lb / shape.output_elems() as f64);
    }
    println!("\n(Q_lower halves when S quadruples: the 1/sqrt(S) law of Theorem 4.12.)");
}
