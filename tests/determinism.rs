//! Tuning determinism under parallel measurement (ISSUE 1 acceptance
//! gate): the engine measures proposal batches on rayon, and that must
//! not perturb a single bit of the tuning trajectory.
//!
//! Run-to-run identity lives here; the parallel-vs-forced-serial check
//! lives in `determinism_serial.rs` — its own binary, because it
//! mutates `RAYON_NUM_THREADS` and environment writes must not race
//! sibling test threads' reads.

mod common;

use common::{assert_identical, run_tuning};

#[test]
fn same_seed_gives_identical_convergence_curves_with_rayon() {
    let a = run_tuning(0xD5EED);
    let b = run_tuning(0xD5EED);
    assert!(!a.curve.is_empty(), "tuning produced an empty curve");
    assert_identical(&a, &b, "run-to-run");
}

#[test]
fn different_seeds_explore_differently() {
    // Guards against the determinism above being vacuous (e.g. a seed
    // that is never threaded into the search).
    let a = run_tuning(1);
    let b = run_tuning(2);
    assert!(
        a.best != b.best || a.curve.len() != b.curve.len() || a.to_best != b.to_best,
        "two different seeds produced byte-identical tuning runs"
    );
}
