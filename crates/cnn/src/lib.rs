//! # iolb-cnn — CNN layer inventories and end-to-end inference timing
//!
//! The workload side of the evaluation: exact conv-layer inventories for
//! AlexNet, SqueezeNet, VGG-19, ResNet-18/34 and Inception-v3
//! ([`models`]), and the per-layer algorithm selection + timing pipeline
//! behind the paper's Fig. 12 end-to-end comparison ([`inference`]) —
//! analytic fast mode, full per-layer tuning, store-backed tuning
//! ([`inference::time_network_with_store`]), and backend-served tuning
//! ([`inference::time_network_with_backend`] over any
//! `iolb_service::Backend` — the embedded [`TuningService`] wrapper is
//! [`inference::time_network_with_service`]; a `SocketBackend` runs the
//! same session against a resident shard-server daemon). [`fusion`]
//! reconstructs each network's conv→relu(→pool) operator stream and
//! segments it into fusable blocks served as composite workloads.
//!
//! [`TuningService`]: iolb_service::TuningService
//!
//! ```
//! use iolb_cnn::models;
//!
//! // Layer inventories carry exact geometry; repeats fold duplicates.
//! let net = models::alexnet();
//! assert_eq!(net.name, "AlexNet");
//! assert!(net.len() >= 5 && net.total_macs() > 0);
//! assert_eq!(iolb_cnn::inference::layer(&net, "conv3").shape.cout, 384);
//! ```

pub mod fusion;
pub mod inference;
pub mod layers;
pub mod models;

pub use inference::{
    time_network, time_network_with_backend, time_network_with_service, time_network_with_store,
    LayerTime, NetworkTime, PlanMode, ServiceEconomics, TuneEconomics,
};
pub use layers::{ConvLayer, Network};
