//! Transaction-level global-memory traffic model.
//!
//! The simulator's job is to count slow-memory traffic *exactly* (that is
//! the quantity the lower-bound theory speaks about) and to account for the
//! coalescing overhead real GPUs add on top: DRAM moves whole transactions
//! (32/64-byte granules), so a tile access whose rows are shorter than a
//! transaction still pays full granules per row.

/// One logical access to global memory: a 2-D tile of `rows x row_elems`
/// elements whose rows are contiguous, with `row_stride_elems` elements
/// between row starts in memory (`row_stride_elems >= row_elems`; equality
/// means fully contiguous).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileAccess {
    /// Number of rows touched.
    pub rows: u64,
    /// Contiguous elements per row.
    pub row_elems: u64,
    /// Memory distance between consecutive row starts, in elements.
    pub row_stride_elems: u64,
}

impl TileAccess {
    /// Fully contiguous run of `elems` elements.
    pub fn contiguous(elems: u64) -> Self {
        Self { rows: 1, row_elems: elems, row_stride_elems: elems }
    }

    /// Strided 2-D tile.
    pub fn tile(rows: u64, row_elems: u64, row_stride_elems: u64) -> Self {
        assert!(row_stride_elems >= row_elems, "rows overlap");
        Self { rows, row_elems, row_stride_elems }
    }

    /// Gather of `count` isolated elements (stride larger than any
    /// transaction — worst coalescing).
    pub fn gather(count: u64) -> Self {
        Self { rows: count, row_elems: 1, row_stride_elems: u64::MAX / 2 }
    }

    /// Useful payload in elements.
    pub fn elems(&self) -> u64 {
        self.rows * self.row_elems
    }

    /// Useful payload in bytes (`f32` elements).
    pub fn bytes(&self) -> u64 {
        self.elems() * 4
    }

    /// Number of DRAM transactions of `transaction_bytes` needed.
    ///
    /// Each row is a contiguous span; unaligned starts cost up to one
    /// extra transaction per row (we charge the expected half granule by
    /// rounding up from the span, the standard approximation). Rows whose
    /// stride places them within the same transaction as the previous row
    /// merge: if the whole tile footprint (rows*stride) fits the span
    /// rule better, use the contiguous count.
    pub fn transactions(&self, transaction_bytes: u64) -> u64 {
        assert!(transaction_bytes >= 4, "transactions smaller than an element");
        let elems_per_tx = transaction_bytes / 4;
        // Contiguous special case: the tile is one run.
        if self.row_stride_elems == self.row_elems || self.rows == 1 {
            return (self.elems()).div_ceil(elems_per_tx).max(u64::from(self.elems() > 0));
        }
        // If consecutive rows land inside one granule (tiny stride), the
        // footprint is what moves.
        if self.row_stride_elems < elems_per_tx {
            let footprint = (self.rows - 1) * self.row_stride_elems + self.row_elems;
            return footprint.div_ceil(elems_per_tx).max(1);
        }
        // General strided case: per-row granules.
        self.rows * self.row_elems.div_ceil(elems_per_tx).max(1)
    }

    /// Bytes actually moved over the DRAM pipe (transactions × granule).
    pub fn moved_bytes(&self, transaction_bytes: u64) -> u64 {
        self.transactions(transaction_bytes) * transaction_bytes
    }

    /// Coalescing efficiency: useful bytes / moved bytes, in (0, 1].
    pub fn efficiency(&self, transaction_bytes: u64) -> f64 {
        self.bytes() as f64 / self.moved_bytes(transaction_bytes) as f64
    }
}

/// Aggregated traffic of one kernel-block execution.
#[derive(Debug, Clone, Default)]
pub struct Traffic {
    /// Useful elements read from global memory.
    pub read_elems: u64,
    /// Useful elements written to global memory.
    pub write_elems: u64,
    /// DRAM transactions for reads.
    pub read_transactions: u64,
    /// DRAM transactions for writes.
    pub write_transactions: u64,
}

impl Traffic {
    /// Adds a read access.
    pub fn read(&mut self, access: TileAccess, transaction_bytes: u64) {
        self.read_elems += access.elems();
        self.read_transactions += access.transactions(transaction_bytes);
    }

    /// Adds a write access.
    pub fn write(&mut self, access: TileAccess, transaction_bytes: u64) {
        self.write_elems += access.elems();
        self.write_transactions += access.transactions(transaction_bytes);
    }

    /// Useful bytes in both directions.
    pub fn useful_bytes(&self) -> u64 {
        (self.read_elems + self.write_elems) * 4
    }

    /// Bytes moved over the DRAM pipe in both directions.
    pub fn moved_bytes(&self, transaction_bytes: u64) -> u64 {
        (self.read_transactions + self.write_transactions) * transaction_bytes
    }

    /// Total useful elements (the red-blue `Q` analogue).
    pub fn total_elems(&self) -> u64 {
        self.read_elems + self.write_elems
    }

    /// Merges another traffic record (e.g. from another block).
    pub fn merge(&mut self, other: &Traffic) {
        self.read_elems += other.read_elems;
        self.write_elems += other.write_elems;
        self.read_transactions += other.read_transactions;
        self.write_transactions += other.write_transactions;
    }

    /// Scales the record by `n` identical repetitions.
    pub fn scaled(&self, n: u64) -> Traffic {
        Traffic {
            read_elems: self.read_elems * n,
            write_elems: self.write_elems * n,
            read_transactions: self.read_transactions * n,
            write_transactions: self.write_transactions * n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_transactions_round_up() {
        let a = TileAccess::contiguous(100);
        // 100 elems * 4B = 400B; 32B granule -> ceil(400/32) = 13.
        assert_eq!(a.transactions(32), 13);
        assert_eq!(a.moved_bytes(32), 13 * 32);
        assert!((a.efficiency(32) - 400.0 / 416.0).abs() < 1e-12);
    }

    #[test]
    fn single_element_costs_full_granule() {
        let a = TileAccess::contiguous(1);
        assert_eq!(a.transactions(32), 1);
        assert!((a.efficiency(32) - 4.0 / 32.0).abs() < 1e-12);
    }

    #[test]
    fn strided_tile_pays_per_row() {
        // 8 rows of 4 elems (16B) each, stride 1024: one 32B granule/row.
        let a = TileAccess::tile(8, 4, 1024);
        assert_eq!(a.transactions(32), 8);
        // Same payload contiguous: 32 elems = 128B = 4 granules.
        let c = TileAccess::contiguous(32);
        assert_eq!(c.transactions(32), 4);
        assert!(a.efficiency(32) < c.efficiency(32));
    }

    #[test]
    fn wide_rows_amortise_granules() {
        // Rows of 64 elems (256B): 8 granules per row regardless of stride.
        let a = TileAccess::tile(4, 64, 4096);
        assert_eq!(a.transactions(32), 32);
        assert!((a.efficiency(32) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tiny_stride_rows_share_granules() {
        // 8 rows, 1 elem each, stride 2 elems: footprint 15 elems = 60B
        // -> 2 granules, not 8.
        let a = TileAccess::tile(8, 1, 2);
        assert_eq!(a.transactions(32), 2);
    }

    #[test]
    fn gather_is_worst_case() {
        let g = TileAccess::gather(16);
        assert_eq!(g.transactions(32), 16);
        assert!((g.efficiency(32) - 4.0 / 32.0).abs() < 1e-12);
    }

    #[test]
    fn traffic_accumulates_and_scales() {
        let mut t = Traffic::default();
        t.read(TileAccess::contiguous(64), 32);
        t.write(TileAccess::contiguous(16), 32);
        assert_eq!(t.read_elems, 64);
        assert_eq!(t.write_elems, 16);
        assert_eq!(t.total_elems(), 80);
        assert_eq!(t.useful_bytes(), 320);
        let s = t.scaled(3);
        assert_eq!(s.total_elems(), 240);
        let mut m = Traffic::default();
        m.merge(&t);
        m.merge(&t);
        assert_eq!(m.total_elems(), 160);
    }

    #[test]
    fn amd_wider_granule_hurts_small_rows() {
        // 16B rows on a 64B-granule device waste 75%.
        let a = TileAccess::tile(4, 4, 4096);
        assert!((a.efficiency(64) - 0.25).abs() < 1e-12);
        assert!((a.efficiency(32) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "rows overlap")]
    fn overlapping_rows_rejected() {
        let _ = TileAccess::tile(2, 8, 4);
    }
}
