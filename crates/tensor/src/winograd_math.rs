//! Winograd/Cook–Toom transform-matrix generation for arbitrary
//! `F(e x e, r x r)` (paper §2.3: matrices `A`, `B`, `L`).
//!
//! The 1-D algorithm `F(e, r)` computes `y = A^T [ (G g) ⊙ (B^T d) ]` with
//! `a = e + r - 1` multiplications, where `g` is the `r`-tap filter and `d`
//! the `a`-long input tile. We *derive* the matrices instead of hard-coding
//! them:
//!
//! 1. pick `a - 1` finite evaluation points (`0, 1, -1, 2, -2, ...`) plus
//!    the point at infinity;
//! 2. take `A^T` and `G` as the Vandermonde evaluation maps at those
//!    points (the infinity point becomes a unit row/column selecting the
//!    top coefficient);
//! 3. solve the bilinear identity
//!    `sum_l A^T[i,l] G[l,j] B^T[l,k] = [k == i + j]` for `B^T` — an
//!    overdetermined but consistent `(e*r) x a` linear system per column,
//!    solved by normal equations + Gaussian elimination.
//!
//! The derived matrices are validated in three ways: the residual of the
//! bilinear identity is checked at generation time; unit tests compare the
//! end-to-end pipeline against the canonical Lavin–Gray `F(2,3)`/`F(4,3)`
//! constants; and `winograd_conv` property-tests the full 2-D convolution
//! against the direct reference.
//!
//! 2-D tiles nest the 1-D algorithm:
//! `Y = A^T [ (G g G^T) ⊙ (B^T d B) ] A`.

/// Small dense row-major `f64` matrix — the substrate for transform
/// generation (tiny sizes, clarity over speed).
#[derive(Debug, Clone, PartialEq)]
pub struct Mat {
    pub rows: usize,
    pub cols: usize,
    pub data: Vec<f64>,
}

impl Mat {
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows[0].len();
        let mut m = Mat::zeros(r, c);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), c, "ragged rows");
            m.data[i * c..(i + 1) * c].copy_from_slice(row);
        }
        m
    }

    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    #[inline]
    pub fn at_mut(&mut self, r: usize, c: usize) -> &mut f64 {
        &mut self.data[r * self.cols + c]
    }

    /// `self * other`.
    pub fn matmul(&self, other: &Mat) -> Mat {
        assert_eq!(self.cols, other.rows, "matmul dim mismatch");
        let mut out = Mat::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.at(i, k);
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    *out.at_mut(i, j) += a * other.at(k, j);
                }
            }
        }
        out
    }

    /// Transpose.
    pub fn t(&self) -> Mat {
        let mut out = Mat::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                *out.at_mut(j, i) = self.at(i, j);
            }
        }
        out
    }

    /// Elementwise (Hadamard) product.
    pub fn hadamard(&self, other: &Mat) -> Mat {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        let mut out = self.clone();
        for (o, b) in out.data.iter_mut().zip(&other.data) {
            *o *= b;
        }
        out
    }

    /// Max absolute difference.
    pub fn max_abs_diff(&self, other: &Mat) -> f64 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        self.data.iter().zip(&other.data).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max)
    }
}

/// `out = lhs * rhs` over flat row-major `f64` slices (`m x k` times
/// `k x n`), preserving [`Mat::matmul`]'s fold order **exactly**: for
/// each output row, `k` ascends and rows of `rhs` whose `lhs`
/// coefficient is zero are skipped, so every `out[i][j]` sees the same
/// terms in the same order as [`Mat::matmul`] (the skip matters —
/// `-0.0 + 0.0*b` can flip a sign bit). The inner loop is a unit-stride
/// axpy over the output row: independent element folds side by side,
/// the shape the autovectorizer maps onto SIMD lanes. This is the
/// allocation-free substrate of the vectorized Winograd paths.
pub fn matmul_flat(lhs: &[f64], rhs: &[f64], out: &mut [f64], m: usize, k: usize, n: usize) {
    debug_assert_eq!(lhs.len(), m * k);
    debug_assert_eq!(rhs.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    out.fill(0.0);
    for i in 0..m {
        let out_row = &mut out[i * n..][..n];
        for p in 0..k {
            let a = lhs[i * k + p];
            if a == 0.0 {
                continue;
            }
            let rhs_row = &rhs[p * n..][..n];
            for (o, &b) in out_row.iter_mut().zip(rhs_row) {
                *o += a * b;
            }
        }
    }
}

/// Solves `m x = b` by Gaussian elimination with partial pivoting.
/// `m` must be square and non-singular.
pub fn solve(m: &Mat, b: &[f64]) -> Vec<f64> {
    assert_eq!(m.rows, m.cols, "solve requires a square system");
    assert_eq!(b.len(), m.rows);
    let n = m.rows;
    let mut a = m.clone();
    let mut x: Vec<f64> = b.to_vec();
    for col in 0..n {
        // Partial pivot.
        let mut piv = col;
        for r in col + 1..n {
            if a.at(r, col).abs() > a.at(piv, col).abs() {
                piv = r;
            }
        }
        assert!(a.at(piv, col).abs() > 1e-12, "singular system at column {col}");
        if piv != col {
            for j in 0..n {
                let tmp = a.at(col, j);
                *a.at_mut(col, j) = a.at(piv, j);
                *a.at_mut(piv, j) = tmp;
            }
            x.swap(col, piv);
        }
        // Eliminate below.
        for r in col + 1..n {
            let f = a.at(r, col) / a.at(col, col);
            if f == 0.0 {
                continue;
            }
            for j in col..n {
                let v = a.at(col, j) * f;
                *a.at_mut(r, j) -= v;
            }
            x[r] -= x[col] * f;
        }
    }
    // Back substitution.
    for col in (0..n).rev() {
        x[col] /= a.at(col, col);
        let xc = x[col];
        for r in 0..col {
            x[r] -= a.at(r, col) * xc;
        }
    }
    x
}

/// The generated 1-D transform triple for `F(e, r)`.
#[derive(Debug, Clone)]
pub struct Transforms {
    /// Output tile edge.
    pub e: usize,
    /// Kernel edge.
    pub r: usize,
    /// `A^T`: `e x a` output interpolation map.
    pub at: Mat,
    /// `G` (the paper's `L`): `a x r` kernel evaluation map.
    pub g: Mat,
    /// `B^T`: `a x a` input transform.
    pub bt: Mat,
}

impl Transforms {
    /// Input tile edge `a = e + r - 1`.
    pub fn a(&self) -> usize {
        self.e + self.r - 1
    }
}

/// Standard evaluation-point sequence: `0, 1, -1, 2, -2, 3, -3, ...`
/// (small-magnitude points keep the Vandermonde systems well conditioned).
pub fn standard_points(count: usize) -> Vec<f64> {
    let mut pts = Vec::with_capacity(count);
    pts.push(0.0);
    let mut k = 1.0;
    while pts.len() < count {
        pts.push(k);
        if pts.len() < count {
            pts.push(-k);
        }
        k += 1.0;
    }
    pts.truncate(count);
    pts
}

/// Generates the `F(e, r)` transforms via Cook–Toom. Panics if the bilinear
/// identity residual exceeds `1e-8` (it never does for the tile sizes the
/// paper uses, `a <= 8`).
pub fn generate(e: usize, r: usize) -> Transforms {
    assert!(e >= 1 && r >= 1, "F(e,r) requires positive e, r");
    let a = e + r - 1;
    let pts = standard_points(a - 1);

    // A^T: e x a. Finite column l: p_l^i. Infinity column: e_{e-1}.
    let mut at = Mat::zeros(e, a);
    for i in 0..e {
        for (l, &p) in pts.iter().enumerate() {
            *at.at_mut(i, l) = p.powi(i as i32);
        }
    }
    *at.at_mut(e - 1, a - 1) = 1.0;

    // G: a x r. Finite row l: p_l^j. Infinity row: e_{r-1}.
    let mut g = Mat::zeros(a, r);
    for (l, &p) in pts.iter().enumerate() {
        for j in 0..r {
            *g.at_mut(l, j) = p.powi(j as i32);
        }
    }
    *g.at_mut(a - 1, r - 1) = 1.0;

    // Solve for B^T column by column: E x = b_k with
    // E[(i,j), l] = A^T[i,l] * G[l,j], b_k[(i,j)] = [k == i+j].
    // E is (e*r) x a with rank a (consistent system); use normal equations.
    let mut e_mat = Mat::zeros(e * r, a);
    for i in 0..e {
        for j in 0..r {
            for l in 0..a {
                *e_mat.at_mut(i * r + j, l) = at.at(i, l) * g.at(l, j);
            }
        }
    }
    let ete = e_mat.t().matmul(&e_mat); // a x a
    let mut bt = Mat::zeros(a, a);
    for k in 0..a {
        let mut b = vec![0.0; e * r];
        for i in 0..e {
            for j in 0..r {
                if i + j == k {
                    b[i * r + j] = 1.0;
                }
            }
        }
        // Normal equations RHS: E^T b.
        let mut etb = vec![0.0; a];
        for l in 0..a {
            for row in 0..e * r {
                etb[l] += e_mat.at(row, l) * b[row];
            }
        }
        let x = solve(&ete, &etb);
        // Verify consistency of the overdetermined system.
        for (row, &want) in b.iter().enumerate() {
            let got: f64 = (0..a).map(|l| e_mat.at(row, l) * x[l]).sum();
            assert!(
                (got - want).abs() < 1e-8,
                "F({e},{r}): bilinear identity residual {} at row {row}",
                (got - want).abs()
            );
        }
        for (l, &v) in x.iter().enumerate() {
            *bt.at_mut(l, k) = v;
        }
    }

    Transforms { e, r, at, g, bt }
}

/// Canonical Lavin–Gray `F(2,3)` constants — used as a unit-test oracle for
/// the generator (points `0, 1, -1` + infinity, conventional scaling).
pub fn canonical_f2x3() -> Transforms {
    let bt = Mat::from_rows(&[
        &[1.0, 0.0, -1.0, 0.0],
        &[0.0, 1.0, 1.0, 0.0],
        &[0.0, -1.0, 1.0, 0.0],
        &[0.0, 1.0, 0.0, -1.0],
    ]);
    let g =
        Mat::from_rows(&[&[1.0, 0.0, 0.0], &[0.5, 0.5, 0.5], &[0.5, -0.5, 0.5], &[0.0, 0.0, 1.0]]);
    let at = Mat::from_rows(&[&[1.0, 1.0, 1.0, 0.0], &[0.0, 1.0, -1.0, -1.0]]);
    Transforms { e: 2, r: 3, at, g, bt }
}

/// Canonical Lavin–Gray `F(4,3)` constants (points `0, 1, -1, 2, -2` + inf).
pub fn canonical_f4x3() -> Transforms {
    let bt = Mat::from_rows(&[
        &[4.0, 0.0, -5.0, 0.0, 1.0, 0.0],
        &[0.0, -4.0, -4.0, 1.0, 1.0, 0.0],
        &[0.0, 4.0, -4.0, -1.0, 1.0, 0.0],
        &[0.0, -2.0, -1.0, 2.0, 1.0, 0.0],
        &[0.0, 2.0, -1.0, -2.0, 1.0, 0.0],
        &[0.0, 4.0, 0.0, -5.0, 0.0, 1.0],
    ]);
    let g = Mat::from_rows(&[
        &[0.25, 0.0, 0.0],
        &[-1.0 / 6.0, -1.0 / 6.0, -1.0 / 6.0],
        &[-1.0 / 6.0, 1.0 / 6.0, -1.0 / 6.0],
        &[1.0 / 24.0, 1.0 / 12.0, 1.0 / 6.0],
        &[1.0 / 24.0, -1.0 / 12.0, 1.0 / 6.0],
        &[0.0, 0.0, 1.0],
    ]);
    let at = Mat::from_rows(&[
        &[1.0, 1.0, 1.0, 1.0, 1.0, 0.0],
        &[0.0, 1.0, -1.0, 2.0, -2.0, 0.0],
        &[0.0, 1.0, 1.0, 4.0, 4.0, 0.0],
        &[0.0, 1.0, -1.0, 8.0, -8.0, 1.0],
    ]);
    Transforms { e: 4, r: 3, at, g, bt }
}

/// Applies the 1-D pipeline: `y = A^T [ (G g) ⊙ (B^T d) ]`.
pub fn apply_1d(t: &Transforms, g: &[f64], d: &[f64]) -> Vec<f64> {
    assert_eq!(g.len(), t.r);
    assert_eq!(d.len(), t.a());
    let a = t.a();
    let mut gg = vec![0.0; a];
    let mut dd = vec![0.0; a];
    for l in 0..a {
        for j in 0..t.r {
            gg[l] += t.g.at(l, j) * g[j];
        }
        for k in 0..a {
            dd[l] += t.bt.at(l, k) * d[k];
        }
    }
    let mut y = vec![0.0; t.e];
    for i in 0..t.e {
        for l in 0..a {
            y[i] += t.at.at(i, l) * gg[l] * dd[l];
        }
    }
    y
}

/// Direct 1-D valid correlation oracle: `y_i = sum_j d_{i+j} g_j`.
pub fn correlate_1d(g: &[f64], d: &[f64]) -> Vec<f64> {
    let e = d.len() + 1 - g.len();
    (0..e).map(|i| g.iter().enumerate().map(|(j, &gj)| gj * d[i + j]).sum()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn standard_points_distinct() {
        let pts = standard_points(7);
        assert_eq!(pts, vec![0.0, 1.0, -1.0, 2.0, -2.0, 3.0, -3.0]);
    }

    #[test]
    fn solve_small_system() {
        let m = Mat::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let x = solve(&m, &[5.0, 10.0]);
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn solve_requires_pivoting() {
        // Leading zero forces a row swap.
        let m = Mat::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = solve(&m, &[2.0, 3.0]);
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    fn check_1d(e: usize, r: usize, seed: u64) {
        let t = generate(e, r);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..20 {
            let g: Vec<f64> = (0..r).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let d: Vec<f64> = (0..t.a()).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let got = apply_1d(&t, &g, &d);
            let want = correlate_1d(&g, &d);
            for (gv, wv) in got.iter().zip(&want) {
                assert!((gv - wv).abs() < 1e-9, "F({e},{r}): {got:?} vs {want:?}");
            }
        }
    }

    #[test]
    fn generated_f2x3_computes_correlation() {
        check_1d(2, 3, 1);
    }

    #[test]
    fn generated_f4x3_computes_correlation() {
        check_1d(4, 3, 2);
    }

    #[test]
    fn generated_f3x2_and_f3x4_compute_correlation() {
        check_1d(3, 2, 3);
        check_1d(3, 4, 4);
    }

    #[test]
    fn generated_f6x3_computes_correlation() {
        // Large tile: a = 8, points up to +-3 — still well conditioned.
        check_1d(6, 3, 5);
    }

    #[test]
    fn degenerate_f1xr_is_plain_dot_product() {
        check_1d(1, 3, 6);
        check_1d(1, 1, 7);
    }

    #[test]
    fn canonical_f2x3_matches_direct() {
        let t = canonical_f2x3();
        let g = [0.3, -0.7, 0.2];
        let d = [1.0, 2.0, -1.0, 0.5];
        let got = apply_1d(&t, &g, &d);
        let want = correlate_1d(&g, &d);
        for (gv, wv) in got.iter().zip(&want) {
            assert!((gv - wv).abs() < 1e-12);
        }
    }

    #[test]
    fn canonical_f4x3_matches_direct() {
        let t = canonical_f4x3();
        let g = [0.5, 0.25, -0.125];
        let d = [1.0, -2.0, 3.0, -4.0, 5.0, -6.0];
        let got = apply_1d(&t, &g, &d);
        let want = correlate_1d(&g, &d);
        for (gv, wv) in got.iter().zip(&want) {
            assert!((gv - wv).abs() < 1e-9);
        }
    }

    #[test]
    fn generated_agrees_with_canonical_pipeline() {
        // Different scalings, same bilinear map: outputs must agree.
        let gen = generate(2, 3);
        let canon = canonical_f2x3();
        let g = [0.1, 0.9, -0.4];
        let d = [0.7, -0.3, 0.2, 1.1];
        let a = apply_1d(&gen, &g, &d);
        let b = apply_1d(&canon, &g, &d);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn mat_ops() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Mat::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.data, vec![2.0, 1.0, 4.0, 3.0]);
        assert_eq!(a.t().data, vec![1.0, 3.0, 2.0, 4.0]);
        let h = a.hadamard(&b);
        assert_eq!(h.data, vec![0.0, 2.0, 3.0, 0.0]);
    }

    #[test]
    fn multiplication_count_is_a() {
        // The whole point of Winograd: F(2,3) uses 4 multiplies, not 6.
        let t = generate(2, 3);
        assert_eq!(t.a(), 4);
        assert_eq!(t.at.cols, 4);
        assert_eq!(t.g.rows, 4);
    }
}
