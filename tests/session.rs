//! ISSUE 4 acceptance gates for batch tuning sessions:
//!
//! * **dedup** — a session over a network with k duplicate layer shapes
//!   enqueues exactly one queue job for them (fan-out waiters);
//! * **batch beats per-layer** — batch-tuning a network performs
//!   strictly fewer queue jobs and strictly fewer simulator
//!   measurements than the production per-layer flow (register with
//!   speculation + drain + `tune_or_wait` loop), while every per-layer
//!   config stays bit-identical to eager `tune_with_store`;
//! * **steal path** — many threads requesting the same workload
//!   concurrently trigger exactly one tuning run; everyone gets the
//!   identical result.
//!
//! Plus the ISSUE 10 fusion gates: a gate-approved conv→relu chain is
//! tuned as one composite workload and beats the per-layer composition,
//! while the forced-loss chain (pool window that does not tile the conv
//! output) falls back to the per-layer config with zero extra fresh
//! measurements.

use conv_iolb::autotune::fusion::epilogue_unfused_ms;
use conv_iolb::autotune::plan::tuner_setup;
use conv_iolb::autotune::tune_with_store;
use conv_iolb::cnn::inference::TUNER_SEED;
use conv_iolb::core::optimality::TileKind;
use conv_iolb::core::shapes::ConvShape;
use conv_iolb::core::Epilogue;
use conv_iolb::gpusim::DeviceSpec;
use conv_iolb::records::{RecordStore, Workload};
use conv_iolb::service::{
    ServeResult, ServeSource, ServiceConfig, ShardedStore, TuneRequest, TuningService,
};

const BUDGET: usize = 12;

fn device() -> DeviceSpec {
    DeviceSpec::v100()
}

fn config(speculate_neighbors: bool) -> ServiceConfig {
    ServiceConfig {
        budget_per_workload: BUDGET,
        background_budget: 100_000,
        workers: 0, // deterministic: the session/drain threads do the work
        speculate_neighbors,
        seed: TUNER_SEED,
        ..ServiceConfig::default()
    }
}

/// A "network" with duplicate layer shapes: 5 layers, 3 unique (1x1
/// layers keep algorithm candidates to `direct` only, so requests map
/// 1:1 to workloads).
fn shapes() -> Vec<ConvShape> {
    let a = ConvShape::new(32, 14, 14, 16, 1, 1, 1, 0);
    let b = ConvShape::new(16, 14, 14, 32, 1, 1, 1, 0);
    let c = ConvShape::new(24, 14, 14, 12, 1, 1, 1, 0);
    vec![a, b, a, c, a]
}

fn requests() -> Vec<TuneRequest> {
    shapes().iter().map(|&shape| TuneRequest::bare(shape, TileKind::Direct)).collect()
}

/// The eager reference for one workload: `tune_with_store` on a fresh
/// store — the exact run a service-less consumer would perform.
fn eager(shape: &ConvShape) -> (RecordStore, f64, usize) {
    let mut store = RecordStore::new();
    let mut s = tuner_setup(shape, TileKind::Direct, &device(), BUDGET, TUNER_SEED);
    let out =
        tune_with_store(&s.space, &s.measurer, &mut s.model, &mut s.searcher, s.params, &mut store)
            .expect("feasible workload");
    (store, out.result.best_ms, out.fresh_measurements)
}

/// The ISSUE 4 pinned test: one batch session over a
/// duplicate-layer network does strictly less work than the per-layer
/// production flow, with bit-identical per-layer results.
#[test]
fn batch_session_beats_per_layer_serving_and_stays_bit_identical() {
    // Path A (per-layer): the pre-session production flow for a whole
    // network — register (speculating neighbors, the default), drain,
    // then a per-layer tune_or_wait loop.
    let per_layer = TuningService::new(ShardedStore::new(), config(true));
    per_layer.register_network(&shapes(), &device());
    per_layer.drain();
    let mut served_a: Vec<ServeResult> = Vec::new();
    for shape in &shapes() {
        served_a.push(per_layer.tune_or_wait(shape, TileKind::Direct, &device()).unwrap());
    }
    let stats_a = per_layer.stats();
    let jobs_a = stats_a.enqueued + stats_a.speculative_enqueued + stats_a.batch_enqueued;

    // Path B (batch session): submit the same five layers at once.
    let batch = TuningService::new(ShardedStore::new(), config(true));
    let handle = batch.submit(&requests(), &device());
    assert_eq!(handle.request_count(), 5);
    assert_eq!(handle.unique_workloads(), 3, "duplicate shapes fold into one member");
    let served_b = handle.wait();
    let stats_b = batch.stats();
    let jobs_b = stats_b.enqueued + stats_b.speculative_enqueued + stats_b.batch_enqueued;
    assert_eq!(stats_b.batch_enqueued, 3, "one queue job per unique workload");
    assert_eq!(stats_b.batch_deduped, 2, "the two duplicate requests rode along");
    assert_eq!(stats_b.inline_tuned, 3);

    // Strictly fewer queue jobs AND strictly fewer simulator
    // measurements: no duplicate work, no speculative neighbors riding
    // on the request path.
    assert!(jobs_b < jobs_a, "batch {jobs_b} jobs vs per-layer {jobs_a}");
    assert!(
        stats_b.fresh_measurements < stats_a.fresh_measurements,
        "batch {} measurements vs per-layer {}",
        stats_b.fresh_measurements,
        stats_a.fresh_measurements
    );

    // Per-layer configs bit-identical to eager tune_with_store (and to
    // what the per-layer path served).
    for ((shape, served), reference) in shapes().iter().zip(&served_b).zip(&served_a) {
        let served = served.as_ref().expect("feasible layer");
        let (eager_store, eager_best_ms, _) = eager(shape);
        let wl = Workload::new(*shape, TileKind::Direct, device().name, device().smem_per_sm);
        assert_eq!(served.cost_ms.to_bits(), eager_best_ms.to_bits());
        assert_eq!(served.config, eager_store.top_k(&wl, 1)[0].config);
        assert_eq!(served.cost_ms.to_bits(), reference.cost_ms.to_bits());
        assert_eq!(served.config, reference.config);
    }
}

/// Satellite: a network with k duplicate layer shapes enqueues exactly
/// one job; every waiter gets the identical result for the price of one
/// tuning run.
#[test]
fn session_with_k_duplicates_enqueues_exactly_one_job() {
    let service = TuningService::new(ShardedStore::new(), config(false));
    let shape = ConvShape::new(32, 14, 14, 16, 1, 1, 1, 0);
    let k = 4;
    let reqs = vec![TuneRequest::bare(shape, TileKind::Direct); k];
    let handle = service.submit(&reqs, &device());
    assert_eq!(service.queue_len(), 1, "k duplicates must enqueue exactly one job");
    assert_eq!(handle.unique_workloads(), 1);
    let stats = service.stats();
    assert_eq!(stats.batch_enqueued, 1);
    assert_eq!(stats.batch_deduped, k - 1);
    let results = handle.wait();
    assert_eq!(results.len(), k);
    let (_, eager_best_ms, eager_fresh) = eager(&shape);
    let stats = service.stats();
    assert_eq!(stats.inline_tuned, 1, "one tuning run serves all waiters");
    assert_eq!(stats.fresh_measurements, eager_fresh, "exactly one run's worth of measurements");
    for r in &results {
        let r = r.as_ref().unwrap();
        assert_eq!(r.cost_ms.to_bits(), eager_best_ms.to_bits());
    }
    // The first occurrence tuned inline; the fan-out duplicates replay.
    assert!(matches!(results[0].as_ref().unwrap().source, ServeSource::Inline { .. }));
    for dup in &results[1..] {
        assert_eq!(dup.as_ref().unwrap().source, ServeSource::ShardHit);
    }
}

/// Satellite: concurrent `tune_or_wait` from many threads on the same
/// workload — exactly one tuning run happens; the rest steal (or hit)
/// and everyone sees bit-identical results.
#[test]
fn concurrent_tune_or_wait_tunes_once_and_steals() {
    let service = TuningService::new(ShardedStore::new(), config(false));
    let shape = ConvShape::new(32, 14, 14, 16, 1, 1, 1, 0);
    let threads: Vec<_> = (0..8)
        .map(|_| {
            let service = service.clone();
            let device = device();
            std::thread::spawn(move || {
                service.tune_or_wait(&shape, TileKind::Direct, &device).unwrap()
            })
        })
        .collect();
    let results: Vec<ServeResult> =
        threads.into_iter().map(|t| t.join().expect("request thread panicked")).collect();
    let stats = service.stats();
    assert_eq!(
        stats.inline_tuned + stats.background_tuned,
        1,
        "exactly one tuning run across all racers"
    );
    let (_, eager_best_ms, eager_fresh) = eager(&shape);
    assert_eq!(stats.fresh_measurements, eager_fresh, "no duplicate measurements");
    let inline = results.iter().filter(|r| matches!(r.source, ServeSource::Inline { .. })).count();
    assert_eq!(inline, 1, "exactly one racer tuned; the rest stole or hit");
    for r in &results {
        assert_eq!(r.cost_ms.to_bits(), eager_best_ms.to_bits());
        assert_eq!(r.config, results[0].config);
    }
}

/// Sessions with racing background workers resolve to the same
/// bit-identical results as the zero-worker run (hermetic runs make the
/// outcome scheduling-independent).
#[test]
fn session_results_are_identical_with_and_without_workers() {
    let run = |workers: usize| {
        let service =
            TuningService::new(ShardedStore::new(), ServiceConfig { workers, ..config(false) });
        // Register first so background workers race the session's own
        // claims on the same workloads.
        service.register_network(&shapes(), &device());
        let results = service.submit(&requests(), &device()).wait();
        results
            .into_iter()
            .map(|r| {
                let r = r.unwrap();
                (r.config, r.cost_ms.to_bits())
            })
            .collect::<Vec<_>>()
    };
    assert_eq!(run(0), run(2));
}

/// Reads one counter out of the service's metrics snapshot (absent
/// counters read as zero, like a scrape would).
fn counter(service: &TuningService, name: &str) -> u64 {
    service.metrics().counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v).unwrap_or(0)
}

/// ISSUE 10: a gate-approved conv→relu chain is tuned as ONE composite
/// workload. The result carries `fused: true`, the stats and telemetry
/// counters agree, the served cost lands strictly below the per-layer
/// cost (conv + unfused epilogue round trip), and a rerun on a fresh
/// service is bit-identical.
#[test]
fn fused_chain_is_tuned_as_a_composite_workload() {
    let service = TuningService::new(ShardedStore::new(), config(false));
    let shape = ConvShape::new(32, 14, 14, 16, 1, 1, 1, 0);
    let fused = service
        .tune_or_wait_fused(&shape, TileKind::Direct, Epilogue::Relu, &device())
        .expect("feasible chain");
    assert!(fused.fused, "the analytic gate approves a relu chain on this shape");
    let stats = service.stats();
    assert_eq!(stats.fused_blocks, 1);
    assert_eq!(stats.fusion_fallbacks, 0);
    assert_eq!(counter(&service, "iolb_fused_blocks_total"), 1);
    assert_eq!(counter(&service, "iolb_fusion_fallbacks_total"), 0);

    // The fused chain beats the per-layer composition: its cost stays
    // strictly below the bare conv plus the modeled unfused epilogue
    // (the launch + intermediate-tensor round trip fusion deletes).
    let (_, bare_ms, _) = eager(&shape);
    let per_layer_ms = bare_ms + epilogue_unfused_ms(&shape, Epilogue::Relu, &device());
    assert!(fused.cost_ms < per_layer_ms, "fused {} !< per-layer {per_layer_ms}", fused.cost_ms);

    // The composite workload has its own fingerprint: the bare conv is
    // NOT a shard hit afterwards — it is a distinct workload.
    let bare = service.tune_or_wait(&shape, TileKind::Direct, &device()).unwrap();
    assert!(
        matches!(bare.source, ServeSource::Inline { .. }),
        "bare conv and fused chain are distinct workloads"
    );

    // Hermetic determinism extends to fused workloads.
    let again = TuningService::new(ShardedStore::new(), config(false))
        .tune_or_wait_fused(&shape, TileKind::Direct, Epilogue::Relu, &device())
        .unwrap();
    assert_eq!(again.cost_ms.to_bits(), fused.cost_ms.to_bits());
    assert_eq!(again.config, fused.config);
}

/// The ISSUE 10 pinned acceptance test: a forced-loss chain — a pool
/// window that does not tile the conv output — falls back to the
/// per-layer config with ZERO extra fresh measurements. The gate runs
/// before dedup, so the rejected chain is served straight from the bare
/// conv's shard records.
#[test]
fn forced_loss_chain_falls_back_with_zero_extra_measurements() {
    let service = TuningService::new(ShardedStore::new(), config(false));
    // Output extent 14; a 3x3 pool window does not tile it — the gate
    // rejects with reason "pool-tiling" before any measurement.
    let shape = ConvShape::new(32, 14, 14, 16, 1, 1, 1, 0);
    let bare = service.tune_or_wait(&shape, TileKind::Direct, &device()).unwrap();
    let fresh_after_bare = service.stats().fresh_measurements;

    let rejected = service
        .tune_or_wait_fused(&shape, TileKind::Direct, Epilogue::ReluPool { k: 3 }, &device())
        .expect("a rejected chain still serves its per-layer config");
    assert!(!rejected.fused, "the gate rejected the chain");
    assert_eq!(rejected.source, ServeSource::ShardHit, "served from the bare conv's records");
    assert_eq!(rejected.fresh_measurements, 0);
    assert_eq!(rejected.config, bare.config, "per-layer config, bit-identical");
    assert_eq!(rejected.cost_ms.to_bits(), bare.cost_ms.to_bits());

    let stats = service.stats();
    assert_eq!(
        stats.fresh_measurements, fresh_after_bare,
        "the fallback spends zero extra fresh measurements"
    );
    assert_eq!(stats.fusion_fallbacks, 1);
    assert_eq!(stats.fused_blocks, 0);
    assert_eq!(counter(&service, "iolb_fusion_fallbacks_total"), 1);
    assert_eq!(counter(&service, "iolb_fused_blocks_total"), 0);
}

/// A rejected chain submitted alongside the bare request for the same
/// conv folds into ONE session member: one queue job, one tuning run,
/// bit-identical results for both waiters.
#[test]
fn rejected_chain_merges_with_the_bare_request_in_one_session() {
    let service = TuningService::new(ShardedStore::new(), config(false));
    let shape = ConvShape::new(32, 14, 14, 16, 1, 1, 1, 0);
    let reqs = vec![
        TuneRequest::bare(shape, TileKind::Direct),
        TuneRequest::fused(shape, TileKind::Direct, Epilogue::ReluPool { k: 3 }),
    ];
    let handle = service.submit(&reqs, &device());
    assert_eq!(handle.unique_workloads(), 1, "the rewritten chain folds into the bare conv");
    let results = handle.wait();
    let bare = results[0].as_ref().expect("feasible");
    let chain = results[1].as_ref().expect("feasible");
    assert!(!chain.fused);
    assert_eq!(chain.config, bare.config);
    assert_eq!(chain.cost_ms.to_bits(), bare.cost_ms.to_bits());
    let stats = service.stats();
    assert_eq!(stats.inline_tuned, 1, "one tuning run serves both requests");
    assert_eq!(stats.fusion_fallbacks, 1);
}

/// Infeasible workloads resolve to `None` per request without failing
/// the rest of the batch — and are remembered.
#[test]
fn infeasible_members_resolve_to_none_and_are_remembered() {
    let hopeless = DeviceSpec { smem_per_sm: 1, ..device() };
    let service = TuningService::new(ShardedStore::new(), config(false));
    let shape = ConvShape::new(32, 14, 14, 16, 1, 1, 1, 0);
    let reqs = vec![TuneRequest::bare(shape, TileKind::Direct); 2];
    let results = service.submit(&reqs, &hopeless).wait();
    assert!(results.iter().all(Option::is_none));
    assert_eq!(service.stats().infeasible, 1, "one unique workload failed once");
    // A second session resolves instantly from the infeasible memory.
    let measured = service.stats().fresh_measurements;
    let again = service.submit(&reqs, &hopeless).wait();
    assert!(again.iter().all(Option::is_none));
    assert_eq!(service.stats().fresh_measurements, measured);
}
