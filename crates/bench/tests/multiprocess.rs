//! Multi-process shard-store integration (ISSUE 4 acceptance): several
//! OS processes appending to the same shard directory concurrently via
//! `tune-cache tune-net` never corrupt it — the post-merge record set
//! equals the union of what each process produces alone.
//!
//! The protocol under test: every writer takes the directory's advisory
//! `flock` ([`iolb_service::DirLock`]) only around its load → absorb →
//! save cycle; tuning happens outside the lock; every file write is a
//! pid-qualified temp + atomic rename. Per-workload runs are hermetic,
//! so two processes that tune the same workload produce bit-identical
//! records that merge to one copy.

use iolb_service::ShardedStore;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};

const TUNE_CACHE: &str = env!("CARGO_BIN_EXE_tune-cache");

/// Two overlapping toy networks (1x1 layers: direct-only, fast). The
/// (16,14,14,32) layer is shared, and NET_A carries a duplicate shape so
/// the session dedup is exercised cross-process too.
const NET_A: &str = "32,14,14,16,1,1,1,0;16,14,14,32,1,1,1,0;32,14,14,16,1,1,1,0";
const NET_B: &str = "16,14,14,32,1,1,1,0;24,14,14,12,1,1,1,0";

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("iolb-multiprocess-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn spawn_tune_net(dir: &Path, spec: &str) -> Child {
    Command::new(TUNE_CACHE)
        .args(["tune-net", "--layers", spec, "-o"])
        .arg(dir)
        .args(["--budget", "8"])
        .stdout(Stdio::null())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn tune-cache tune-net")
}

fn run_to_completion(mut children: Vec<Child>) {
    for child in &mut children {
        let status = child.wait().expect("wait for tune-net child");
        assert!(status.success(), "tune-net child failed: {status}");
    }
}

#[test]
fn concurrent_processes_append_the_union_without_corruption() {
    // Four processes race on one directory: both networks, each twice —
    // real lock contention on overlapping workloads plus pure-replay
    // writers, whatever the scheduler does.
    let shared = temp_dir("shared");
    run_to_completion(vec![
        spawn_tune_net(&shared, NET_A),
        spawn_tune_net(&shared, NET_B),
        spawn_tune_net(&shared, NET_A),
        spawn_tune_net(&shared, NET_B),
    ]);

    // Reference: each network tuned alone in its own directory.
    let solo_a = temp_dir("solo-a");
    let solo_b = temp_dir("solo-b");
    run_to_completion(vec![spawn_tune_net(&solo_a, NET_A)]);
    run_to_completion(vec![spawn_tune_net(&solo_b, NET_B)]);

    let (shared_store, report) = ShardedStore::load(&shared).expect("load shared dir");
    assert!(report.is_clean(), "corrupted shared directory: {:?}", report.warnings);
    let (a, report_a) = ShardedStore::load(&solo_a).expect("load solo a");
    assert!(report_a.is_clean());
    let (b, report_b) = ShardedStore::load(&solo_b).expect("load solo b");
    assert!(report_b.is_clean());

    // The racing processes' directory holds exactly the union of the
    // solo runs (canonical JSONL equality — order, bits and all).
    let mut expected = a;
    let overlap_dupes = expected.absorb(b);
    assert!(overlap_dupes > 0, "networks must overlap for the test to mean anything");
    assert_eq!(
        shared_store.merged().to_jsonl(),
        expected.merged().to_jsonl(),
        "shared directory is not the union of the solo runs"
    );

    for dir in [&shared, &solo_a, &solo_b] {
        let _ = std::fs::remove_dir_all(dir);
    }
}

#[test]
fn reading_a_directory_mid_write_is_always_consistent() {
    // A writer and repeated lock-free readers: loads during active
    // writing must never see a torn store (atomic renames guarantee it).
    let dir = temp_dir("read-while-write");
    let mut writer = spawn_tune_net(&dir, NET_A);
    let mut clean_loads = 0;
    loop {
        let (store, report) = ShardedStore::load(&dir).expect("load during write");
        assert!(report.is_clean(), "torn read: {:?}", report.warnings);
        // Any state is fine (empty, partial, complete) as long as it is
        // internally consistent; count the successful observations.
        let _ = store.len();
        clean_loads += 1;
        match writer.try_wait().expect("poll tune-net child") {
            Some(status) => {
                assert!(status.success(), "tune-net child failed: {status}");
                break;
            }
            None => std::thread::sleep(std::time::Duration::from_millis(5)),
        }
    }
    assert!(clean_loads > 0);
    let _ = std::fs::remove_dir_all(&dir);
}
