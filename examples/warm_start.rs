//! Warm-starting the auto-tuner from a persistent record store:
//! cold-tune → save → reload → warm-tune, plus a transfer-seeded tune of
//! a layer the store has never seen.
//!
//! ```sh
//! cargo run --release --example warm_start
//! ```

use conv_iolb::autotune::search::walk::ParallelRandomWalk;
use conv_iolb::autotune::{
    tune_with_store, ConfigSpace, GbtCostModel, Measurer, StoreTuneResult, TuneParams,
};
use conv_iolb::core::optimality::TileKind;
use conv_iolb::core::shapes::ConvShape;
use conv_iolb::gpusim::DeviceSpec;
use conv_iolb::records::RecordStore;

fn tune_once(shape: ConvShape, device: &DeviceSpec, store: &mut RecordStore) -> StoreTuneResult {
    let space = ConfigSpace::new(shape, TileKind::Direct, device.smem_per_sm, true);
    let measurer = Measurer::new(device.clone(), shape, TileKind::Direct);
    let params = TuneParams { max_measurements: 96, batch: 8, patience: 96, seed: 42 };
    tune_with_store(
        &space,
        &measurer,
        &mut GbtCostModel::default(),
        &mut ParallelRandomWalk::new(),
        params,
        store,
    )
    .expect("tunable layer")
}

fn report(tag: &str, out: &StoreTuneResult) {
    println!(
        "{tag:<12} best {:.6} ms ({:.0} GFLOP/s)  budget {:>3}  fresh {:>3}  cached {:>3}  \
         warm-seeds {}{}",
        out.result.best_ms,
        out.result.best_gflops,
        out.result.measurements,
        out.fresh_measurements,
        out.cache_hits,
        out.warm_seeded,
        if out.transferred { " (transferred)" } else { "" },
    );
}

fn main() {
    let device = DeviceSpec::v100();
    let layer = ConvShape::square(256, 13, 384, 3, 1, 1); // AlexNet conv3-ish
    let path = std::env::temp_dir().join(format!("iolb-warm-start-{}.jsonl", std::process::id()));
    println!("layer: {layer}\nstore: {}\n", path.display());

    // 1. Cold run: the store is empty, every measurement hits the
    //    simulator; everything measured is recorded.
    let mut store = RecordStore::new();
    let cold = tune_once(layer, &device, &mut store);
    report("cold", &cold);
    store.save(&path).expect("save store");

    // 2. Reload from disk and re-tune: the best stored records warm-start
    //    the walkers and replay from the cache — strictly fewer simulator
    //    calls, never a worse result.
    let (mut store, load) = RecordStore::load(&path).expect("load store");
    assert!(load.is_clean());
    let warm = tune_once(layer, &device, &mut store);
    report("warm", &warm);
    assert!(warm.fresh_measurements < cold.fresh_measurements);
    assert!(warm.result.best_ms <= cold.result.best_ms);

    // 3. A related layer the store has never seen: no exact fingerprint
    //    match, so the tuner transfer-seeds from the nearest compatible
    //    workload instead of starting blind.
    let sibling = ConvShape::square(384, 13, 256, 3, 1, 1);
    let transfer = tune_once(sibling, &device, &mut store);
    report("transfer", &transfer);

    store.save(&path).expect("save store");
    let records = store.len();
    std::fs::remove_file(&path).ok();
    println!(
        "\nSecond run: {} fresh measurements instead of {} ({} replayed from cache). \
         Store ended with {records} records.",
        warm.fresh_measurements, cold.fresh_measurements, warm.cache_hits
    );
}
