//! # iolb-cnn — CNN layer inventories and end-to-end inference timing
//!
//! The workload side of the evaluation: exact conv-layer inventories for
//! AlexNet, SqueezeNet, VGG-19, ResNet-18/34 and Inception-v3
//! ([`models`]), and the per-layer algorithm selection + timing pipeline
//! behind the paper's Fig. 12 end-to-end comparison ([`inference`]).

pub mod inference;
pub mod layers;
pub mod models;

pub use inference::{time_network, LayerTime, NetworkTime, PlanMode};
pub use layers::{ConvLayer, Network};
