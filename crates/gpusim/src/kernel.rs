//! Kernel descriptions and execution statistics.
//!
//! A kernel is a grid of homogeneous thread blocks; each block declares its
//! resource shape, its arithmetic work and its global-memory accesses (as
//! [`TileAccess`] patterns). The schedule-lowering code in `iolb-dataflow`
//! produces these descriptions; the [`crate::engine`] turns them into time.

use crate::memory::{TileAccess, Traffic};
use crate::occupancy::BlockShape;

/// Per-block workload description.
#[derive(Debug, Clone, Default)]
pub struct BlockWork {
    /// FP32 operations executed by one block.
    pub flops: u64,
    /// Global-memory reads issued by one block.
    pub reads: Vec<TileAccess>,
    /// Global-memory writes issued by one block.
    pub writes: Vec<TileAccess>,
    /// Shared-memory bank-conflict slowdown factor (>= 1.0): multiplies
    /// compute time. Layout choices feed this.
    pub bank_conflict_factor: f64,
}

impl BlockWork {
    pub fn new(flops: u64) -> Self {
        Self { flops, reads: Vec::new(), writes: Vec::new(), bank_conflict_factor: 1.0 }
    }

    /// Adds a read access (builder style).
    pub fn read(mut self, a: TileAccess) -> Self {
        self.reads.push(a);
        self
    }

    /// Adds a write access (builder style).
    pub fn write(mut self, a: TileAccess) -> Self {
        self.writes.push(a);
        self
    }

    /// Sets the bank-conflict factor (builder style).
    pub fn with_bank_conflicts(mut self, factor: f64) -> Self {
        assert!(factor >= 1.0);
        self.bank_conflict_factor = factor;
        self
    }

    /// Aggregates the block's traffic with a given transaction granule.
    pub fn traffic(&self, transaction_bytes: u64) -> Traffic {
        let mut t = Traffic::default();
        for &r in &self.reads {
            t.read(r, transaction_bytes);
        }
        for &w in &self.writes {
            t.write(w, transaction_bytes);
        }
        t
    }
}

/// A launchable kernel: `grid_blocks` copies of `work` at `block` shape.
#[derive(Debug, Clone)]
pub struct KernelDesc {
    /// Diagnostic name (shows up in traces).
    pub name: String,
    /// Number of thread blocks in the grid.
    pub grid_blocks: u64,
    /// Resource shape of each block.
    pub block: BlockShape,
    /// Per-block workload.
    pub work: BlockWork,
}

/// Simulation result for one kernel launch.
#[derive(Debug, Clone)]
pub struct KernelStats {
    /// Kernel name.
    pub name: String,
    /// Simulated execution time, milliseconds.
    pub time_ms: f64,
    /// Achieved arithmetic rate, GFLOP/s.
    pub gflops: f64,
    /// Aggregated global-memory traffic.
    pub traffic: Traffic,
    /// Bytes moved over DRAM (with coalescing overhead).
    pub moved_bytes: u64,
    /// Resident blocks per SM.
    pub blocks_per_sm: u32,
    /// Number of waves the grid executed in.
    pub waves: u64,
    /// Whether the roofline was memory-bound.
    pub memory_bound: bool,
}

impl KernelStats {
    /// Useful slow-memory elements moved — the simulator's measured `Q`,
    /// directly comparable with the lower bounds (which count elements).
    pub fn q_elems(&self) -> u64 {
        self.traffic.total_elems()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_work_builder() {
        let w = BlockWork::new(1000)
            .read(TileAccess::contiguous(64))
            .read(TileAccess::contiguous(32))
            .write(TileAccess::contiguous(16))
            .with_bank_conflicts(1.5);
        assert_eq!(w.flops, 1000);
        assert_eq!(w.reads.len(), 2);
        assert_eq!(w.writes.len(), 1);
        let t = w.traffic(32);
        assert_eq!(t.read_elems, 96);
        assert_eq!(t.write_elems, 16);
    }

    #[test]
    #[should_panic]
    fn bank_conflicts_below_one_rejected() {
        let _ = BlockWork::new(1).with_bank_conflicts(0.5);
    }
}
