//! Property tests for the daemon wire codec (mirroring the JSONL
//! corruption-tolerance tests in `iolb-records`): whatever bytes arrive
//! on the socket, the decoder returns a typed [`WireError`] — it never
//! panics, never fabricates a message, and never reads past the frame
//! cap.

use iolb_core::optimality::TileKind;
use iolb_core::shapes::ConvShape;
use iolb_gpusim::DeviceSpec;
use iolb_service::wire::{self, read_request, read_response, Request, WireError, MAX_FRAME_BYTES};
use iolb_service::TuneRequest;
use proptest::prelude::*;

/// A valid framed Submit built from drawn layer coordinates.
fn framed_submit(draws: &[(u32, u32)]) -> (Request, Vec<u8>) {
    let requests: Vec<TuneRequest> = draws
        .iter()
        .map(|&(cin_pow, cout_pow)| TuneRequest {
            shape: ConvShape::new(1 << (cin_pow % 5), 14, 14, 1 << (cout_pow % 5), 1, 1, 1, 0),
            kind: TileKind::Direct,
        })
        .collect();
    let request = Request::Submit { device: DeviceSpec::v100(), requests };
    let mut frame = Vec::new();
    wire::write_request(&mut frame, &request).expect("encode valid request");
    (request, frame)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary byte soup through both decoders and the framed reader:
    /// typed errors only, no panics, no fabricated messages.
    #[test]
    fn arbitrary_bytes_never_panic_the_codec(
        data in prop::collection::vec(0u32..256, 0..160),
    ) {
        let bytes: Vec<u8> = data.iter().map(|&b| b as u8).collect();
        let text = String::from_utf8_lossy(&bytes).into_owned();
        let _ = wire::decode_request(&text);
        let _ = wire::decode_response(&text);
        let mut cursor = std::io::Cursor::new(bytes);
        // The byte soup is its own framing: whatever the first 4 bytes
        // claim, the reader must return (Ok or typed Err), not panic or
        // hang.
        let _ = read_request(&mut cursor);
        let mut cursor = std::io::Cursor::new(text.into_bytes());
        let _ = read_response(&mut cursor);
    }

    /// Every strict prefix of a valid frame is rejected as truncated
    /// (or is the clean empty stream), and never decodes to a message.
    #[test]
    fn truncated_frames_are_rejected_without_panicking(
        draws in prop::collection::vec((0u32..5, 0u32..5), 0..6),
        cut_seed in 0usize..10_000,
    ) {
        let (_, frame) = framed_submit(&draws);
        let cut = cut_seed % frame.len();
        let mut cursor = std::io::Cursor::new(frame[..cut].to_vec());
        match read_request(&mut cursor) {
            Ok(None) => prop_assert_eq!(cut, 0, "only the empty stream is a clean EOF"),
            Ok(Some(msg)) => prop_assert!(false, "truncated frame decoded to {msg:?}"),
            Err(WireError::Truncated { expected, got }) => prop_assert!(got < expected),
            Err(other) => prop_assert!(false, "expected Truncated, got {other:?}"),
        }
        // A response reader on the same prefix: closed or truncated,
        // never a fabricated response.
        let mut cursor = std::io::Cursor::new(frame[..cut].to_vec());
        match read_response(&mut cursor) {
            Err(WireError::ConnectionClosed) => prop_assert_eq!(cut, 0),
            Err(WireError::Truncated { .. }) => prop_assert!(cut > 0),
            Err(WireError::Malformed(_)) | Err(WireError::ForeignVersion { .. }) => {
                // A request payload is not a response: also acceptable
                // once the whole frame arrived — but a *strict* prefix
                // can never parse that far.
                prop_assert!(false, "prefix decoded past the frame layer");
            }
            other => prop_assert!(false, "expected a typed error, got {other:?}"),
        }
    }

    /// Length prefixes above the cap are rejected before any payload
    /// allocation, whatever the claimed size.
    #[test]
    fn oversized_payloads_are_rejected(len_over in 1usize..(u32::MAX as usize - MAX_FRAME_BYTES)) {
        let len = MAX_FRAME_BYTES + len_over;
        let mut stream = (len as u32).to_be_bytes().to_vec();
        stream.extend_from_slice(b"ignored");
        let mut cursor = std::io::Cursor::new(stream);
        match read_request(&mut cursor) {
            Err(WireError::Oversized { len: got }) => prop_assert_eq!(got, len),
            other => prop_assert!(false, "expected Oversized, got {other:?}"),
        }
    }

    /// Unknown message versions are rejected whole, with the version
    /// reported.
    #[test]
    fn foreign_versions_are_rejected(version in 2u64..1_000_000) {
        let payload = format!("{{\"v\":{version},\"type\":\"sync\"}}");
        match wire::decode_request(&payload) {
            Err(WireError::ForeignVersion { got }) => prop_assert_eq!(got, version),
            other => prop_assert!(false, "expected ForeignVersion, got {other:?}"),
        }
        match wire::decode_response(&payload) {
            Err(WireError::ForeignVersion { got }) => prop_assert_eq!(got, version),
            other => prop_assert!(false, "expected ForeignVersion, got {other:?}"),
        }
    }

    /// Valid submits round-trip exactly through the framed reader.
    #[test]
    fn valid_submits_round_trip(draws in prop::collection::vec((0u32..5, 0u32..5), 0..8)) {
        let (request, frame) = framed_submit(&draws);
        let mut cursor = std::io::Cursor::new(frame);
        prop_assert_eq!(read_request(&mut cursor).unwrap(), Some(request));
    }
}
