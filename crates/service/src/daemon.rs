//! The resident shard-server daemon and its socket clients.
//!
//! PR 4 let N `tune-net` processes share one shard directory, but every
//! sync still rendezvoused on the directory `flock` and re-loaded /
//! re-merged the JSONL from disk. A [`Daemon`] removes that rendezvous:
//! it takes the directory's advisory [`DirLock`] **once, for its whole
//! lifetime**, owns the [`ShardedStore`] in memory, serves tuning
//! sessions over a Unix domain socket — and, since PR 6, optionally a
//! TCP listener at the same time — and batches persistence on a merge
//! interval instead of per request.
//!
//! * **Single-flock ownership** — while the daemon runs, no other writer
//!   can touch the directory (they time out with the typed
//!   [`LockError`](crate::shard::LockError)); lock-free readers keep
//!   working as always (every persist is atomic temp + rename). Because
//!   the daemon holds the flock, its own persists skip re-acquisition
//!   and re-merging entirely — an overwrite save of the authoritative
//!   in-memory state.
//! * **Cross-client dedup for free** — every client `Submit` becomes a
//!   [`TuningService`] session inside one process, so two clients
//!   requesting the same workload hit the existing
//!   fingerprint/in-flight machinery: exactly one tuning run, fanned
//!   out to every waiter (pinned cross-process by
//!   `crates/bench/tests/daemon.rs`).
//! * **Concurrent clients on the pool** — each accepted connection is
//!   handled by a `rayon::spawn` task on the shim's persistent pool.
//!   A blocked `Wait` *helps tune its own session's jobs* on that very
//!   thread (the session contract), so progress never depends on free
//!   pool workers; on a zero-worker (single-core) pool, connections are
//!   handled inline on the accept thread, serialized but correct.
//! * **Results are bit-identical** — the daemon runs the same hermetic
//!   per-workload tuning as the embedded path; `tests/daemon.rs` pins
//!   daemon-served configs against eager `tune_with_store`, and
//!   `tests/fleet.rs` pins a 3-daemon TCP fleet against the same
//!   reference.
//! * **Anti-entropy replication** — a daemon given `--peer` addresses
//!   ([`DaemonConfig::peers`]) periodically `Pull`s each peer's full
//!   store and merges it with
//!   [`ShardedStore::absorb`](crate::shard::ShardedStore::absorb) —
//!   a commutative, idempotent union (records ∪, per-fingerprint max
//!   LRU stamps, max clock), so two daemons that diverged while
//!   partitioned converge to the same store once either can reach the
//!   other. Peers that are down are skipped silently: unreachable is
//!   the *normal* state anti-entropy exists to heal.
//!
//! [`SocketBackend`] and [`TcpBackend`] are the client half — the same
//! generic [`WireBackend`] over a Unix or TCP stream. Both implement
//! [`Backend`], so everything written against the trait
//! (`iolb_cnn::time_network_with_backend`, `tune-net`) runs embedded,
//! against one daemon, or — through
//! [`FleetRouter`](crate::fleet::FleetRouter) — against a whole fleet
//! without changing a line.

use crate::fleet::PeerAddr;
use crate::service::{ServiceSnapshot, TuningService};
use crate::session::{
    Backend, BackendError, BackendSession, StatsReport, SyncOutcome, TuneRequest,
};
use crate::shard::{DirLock, ShardLoadReport, ShardedStore};
use crate::wire::{self, Request, Response, WireError};
use iolb_gpusim::DeviceSpec;
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Conventional socket file name inside a shard directory
/// (`tune-cache serve DIR` listens on `DIR/daemon.sock` by default).
pub const SOCKET_FILE: &str = "daemon.sock";

/// Daemon knobs on top of the service's own.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DaemonConfig {
    /// The tuning service the daemon embeds (budget, seed, workers,
    /// lock timeout for the startup lock, ...). Clients inherit these:
    /// budget and seed are server-side state so every client's results
    /// replay bit-identically.
    pub service: crate::service::ServiceConfig,
    /// How often the persister flushes dirty in-memory state to the
    /// shard directory. Between flushes, requests are served purely from
    /// memory — this is the "batch merges instead of per-request
    /// rendezvous" the daemon exists for. A client `Sync` forces an
    /// immediate flush; shutdown always flushes.
    pub merge_interval: Duration,
    /// How long a connection may sit idle (no request in flight) before
    /// the daemon drops it. Connection handlers run on the shared rayon
    /// pool, so a parked connection occupies a pool worker; without this
    /// bound, a handful of idle (or hostile) clients could pin every
    /// worker and starve new connections — including `tune-cache stop`.
    /// Clients are short-lived CLI sessions; reconnecting is cheap.
    pub idle_timeout: Duration,
    /// When set, the daemon additionally listens on this TCP address
    /// (`host:port`; port `0` picks a free port, reported by
    /// [`Daemon::tcp_addr`]). The Unix socket always stays up — local
    /// clients and `tune-cache stop` keep working unchanged. The wire
    /// protocol is byte-identical on both transports.
    pub tcp: Option<String>,
    /// Fleet peers this daemon anti-entropy-syncs *from*: every
    /// [`peer_sync_interval`](Self::peer_sync_interval) it pulls each
    /// peer's full store and absorbs it. List every *other* daemon of
    /// the fleet; pulls are one-directional, so mutual replication needs
    /// each daemon to list its peers (the usual full-mesh spec).
    pub peers: Vec<PeerAddr>,
    /// How often the anti-entropy thread walks [`peers`](Self::peers).
    /// Convergence lag between two daemons is at most one interval per
    /// hop; shorter intervals cost one full-store transfer per peer per
    /// tick (see `docs/OPERATIONS.md` for sizing).
    pub peer_sync_interval: Duration,
    /// When set, the persister tick applies this
    /// [`EvictionPolicy`](crate::shard::EvictionPolicy)
    /// before each flush, so a long-lived daemon's store stays near
    /// `max_records` instead of growing without bound. Coldest-workload
    /// truncation that never drops a workload's best record — replay of
    /// known workloads stays exact across evictions. `None` (the
    /// default) never evicts; records dropped are counted in the
    /// `iolb_evictions_total` telemetry counter.
    pub evict: Option<crate::shard::EvictionPolicy>,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        Self {
            service: crate::service::ServiceConfig::default(),
            merge_interval: Duration::from_secs(1),
            idle_timeout: Duration::from_secs(30),
            tcp: None,
            peers: Vec::new(),
            peer_sync_interval: Duration::from_secs(5),
            evict: None,
        }
    }
}

/// One accepted server-side connection, whichever listener it came in
/// on. The framing layer only needs `Read + Write`, so the daemon
/// serves both transports through one handler.
enum ServerStream {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl ServerStream {
    fn set_read_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        match self {
            ServerStream::Unix(s) => s.set_read_timeout(timeout),
            ServerStream::Tcp(s) => s.set_read_timeout(timeout),
        }
    }
}

impl Read for ServerStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            ServerStream::Unix(s) => s.read(buf),
            ServerStream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for ServerStream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            ServerStream::Unix(s) => s.write(buf),
            ServerStream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            ServerStream::Unix(s) => s.flush(),
            ServerStream::Tcp(s) => s.flush(),
        }
    }
}

/// State shared between the accept loops, connection handlers and the
/// persister / peer-sync threads.
struct Shared {
    shutdown: AtomicBool,
    /// Live client connections; shutdown drains to zero before the
    /// final persist.
    active: AtomicUsize,
    gate: Mutex<()>,
    /// Signalled on connection-count changes and persister wake-ups.
    changed: Condvar,
    /// Serializes persists. The atomic-save protocol qualifies its temp
    /// files by *pid* (enough for the cross-process protocol, where
    /// each process saves from one thread) — but the daemon persists
    /// from several threads of one process (the interval persister and
    /// any client `Sync` handler), which would share a temp path and
    /// rename each other's half-written files into place.
    persist_gate: Mutex<()>,
    /// Where the listeners live, so `request_shutdown` can poke each
    /// accept loop awake (they re-check the flag per connection).
    socket_path: PathBuf,
    tcp_addr: Option<SocketAddr>,
}

impl Shared {
    fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        {
            let _g = self.gate.lock().expect("daemon gate poisoned");
            self.changed.notify_all();
        }
        // Wake both accept loops: each re-checks the flag per connection.
        let _ = UnixStream::connect(&self.socket_path);
        if let Some(addr) = self.tcp_addr {
            let _ = TcpStream::connect(addr);
        }
    }
}

/// A resident shard-server: owns a shard directory (one flock for its
/// lifetime) and serves tuning sessions over a Unix domain socket and,
/// optionally, TCP.
pub struct Daemon {
    service: TuningService,
    config: DaemonConfig,
    dir: PathBuf,
    socket_path: PathBuf,
    listener: UnixListener,
    tcp_listener: Option<TcpListener>,
    tcp_addr: Option<SocketAddr>,
    shared: Arc<Shared>,
    /// Held from bind to drop: the directory belongs to this process.
    _lock: DirLock,
}

impl Daemon {
    /// Claims the shard directory (advisory lock, held until the daemon
    /// exits), loads its records and persisted telemetry (the same
    /// restore path as [`TuningService::open`], under our lock), and
    /// binds the socket(s). A pre-existing socket file is removed only
    /// when nothing answers on it (a stale leftover from a crashed
    /// daemon); a *live* listener — e.g. another daemon given the same
    /// `--socket` path over a different directory, which our flock says
    /// nothing about — fails the bind with `AddrInUse` instead of being
    /// silently unplugged. A TCP bind failure (typically `AddrInUse`)
    /// is likewise fatal at bind time, never discovered mid-serve.
    pub fn bind(
        dir: impl AsRef<Path>,
        socket_path: impl AsRef<Path>,
        config: DaemonConfig,
    ) -> std::io::Result<(Self, ShardLoadReport)> {
        let dir = dir.as_ref().to_path_buf();
        let socket_path = socket_path.as_ref().to_path_buf();
        let lock = DirLock::acquire(&dir, config.service.lock_timeout)?;
        let (service, report) = TuningService::open(&dir, config.service)?;
        if socket_path.exists() {
            if UnixStream::connect(&socket_path).is_ok() {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::AddrInUse,
                    format!("a live daemon already listens on {}", socket_path.display()),
                ));
            }
            std::fs::remove_file(&socket_path)?;
        }
        let listener = UnixListener::bind(&socket_path)?;
        let (tcp_listener, tcp_addr) = match &config.tcp {
            Some(addr) => {
                let tcp = TcpListener::bind(addr.as_str())?;
                let local = tcp.local_addr()?;
                (Some(tcp), Some(local))
            }
            None => (None, None),
        };
        let shared = Arc::new(Shared {
            shutdown: AtomicBool::new(false),
            active: AtomicUsize::new(0),
            gate: Mutex::new(()),
            changed: Condvar::new(),
            persist_gate: Mutex::new(()),
            socket_path: socket_path.clone(),
            tcp_addr,
        });
        Ok((
            Self {
                service,
                config,
                dir,
                socket_path,
                listener,
                tcp_listener,
                tcp_addr,
                shared,
                _lock: lock,
            },
            report,
        ))
    }

    /// The embedded tuning service (tests and in-process callers).
    pub fn service(&self) -> &TuningService {
        &self.service
    }

    /// The socket clients connect to.
    pub fn socket_path(&self) -> &Path {
        &self.socket_path
    }

    /// The TCP address actually bound, when [`DaemonConfig::tcp`] was
    /// set — with the real port even if the config said `:0`.
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    /// The shard directory this daemon owns.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Serves until a client sends `Shutdown`: accepts connections on
    /// every bound listener, hands each to a pool task, keeps the
    /// persister flushing on the merge interval, and (when peers are
    /// configured) anti-entropy-pulls the fleet. On shutdown it drains
    /// live connections, does a final persist, and removes the socket
    /// file.
    pub fn run(self) -> std::io::Result<()> {
        let persister = {
            let service = self.service.clone();
            let dir = self.dir.clone();
            let shared = Arc::clone(&self.shared);
            let interval = self.config.merge_interval;
            let evict = self.config.evict;
            std::thread::Builder::new().name("iolb-daemon-persist".into()).spawn(move || {
                let mut last: Option<ServiceSnapshot> = None;
                loop {
                    {
                        let guard = shared.gate.lock().expect("daemon gate poisoned");
                        let _ = shared
                            .changed
                            .wait_timeout(guard, interval)
                            .expect("daemon gate poisoned");
                    }
                    let stop = shared.shutdown.load(Ordering::SeqCst);
                    if stop {
                        // Final flush happens after connections drain,
                        // below in run(); stop ticking.
                        break;
                    }
                    // On hosts whose pool has no background threads
                    // (single core) `kick` is a no-op, so the interval
                    // thread is the daemon's only background muscle:
                    // drain staged transfer re-tunes and abandoned batch
                    // work here, then flush what that produced. Daemons
                    // configured with zero workers opt out (the replay
                    // benchmark relies on nothing tuning behind its
                    // back).
                    if service.config().workers > 0 {
                        service.drain();
                    }
                    // Scheduled eviction rides the same tick: trim the
                    // store *before* the snapshot diff so the flush that
                    // lands on disk is the already-trimmed state (an
                    // eviction never causes a second, larger write).
                    if let Some(policy) = evict {
                        let dropped = service.evict(&policy);
                        if dropped > 0 {
                            service.telemetry().incr("iolb_evictions_total", dropped as u64);
                        }
                    }
                    let snapshot = service.snapshot();
                    if last != Some(snapshot) {
                        let (_, persisted) = persist(&service, &dir, &shared);
                        if persisted {
                            last = Some(snapshot);
                        }
                        // A failed flush leaves `last` stale, so the next
                        // tick retries instead of believing it succeeded.
                    }
                }
            })?
        };

        let peer_sync = if self.config.peers.is_empty() {
            None
        } else {
            let service = self.service.clone();
            let dir = self.dir.clone();
            let shared = Arc::clone(&self.shared);
            let peers = self.config.peers.clone();
            let interval = self.config.peer_sync_interval;
            Some(std::thread::Builder::new().name("iolb-daemon-peersync".into()).spawn(
                move || {
                    'sync: loop {
                        // Sleep in short ticks so a requested shutdown is
                        // noticed within one tick, not one sync interval.
                        let mut slept = Duration::ZERO;
                        while slept < interval {
                            if shared.shutdown.load(Ordering::SeqCst) {
                                break 'sync;
                            }
                            std::thread::sleep(IDLE_TICK.min(interval));
                            slept += IDLE_TICK.min(interval);
                        }
                        let mut absorbed = 0usize;
                        for peer in &peers {
                            let pull_started = std::time::Instant::now();
                            match pull_peer(peer) {
                                Ok(store) => {
                                    let fresh = service.lock().shards.absorb(store);
                                    absorbed += fresh;
                                    let telemetry = service.telemetry();
                                    telemetry.observe_since("iolb_daemon_pull_us", pull_started);
                                    telemetry.incr("iolb_daemon_pull_absorbed_total", fresh as u64);
                                    crate::log_event!(
                                        Debug,
                                        "daemon.pull",
                                        peer = peer,
                                        absorbed = fresh,
                                    );
                                }
                                // An unreachable peer is the normal case
                                // anti-entropy exists for; try next tick.
                                Err(BackendError::Transport(_)) => {}
                                Err(e) => {
                                    crate::log_event!(
                                        Warn,
                                        "daemon.pull_failed",
                                        peer = peer,
                                        error = e,
                                    );
                                }
                            }
                        }
                        // Absorbed records change the store but not the
                        // ServiceSnapshot the interval persister diffs on,
                        // so flush them explicitly.
                        if absorbed > 0 {
                            persist(&service, &dir, &shared);
                        }
                    }
                },
            )?)
        };

        let tcp_thread = self.tcp_listener.map(|tcp| {
            let service = self.service.clone();
            let dir = self.dir.clone();
            let shared = Arc::clone(&self.shared);
            let idle_timeout = self.config.idle_timeout;
            std::thread::Builder::new()
                .name("iolb-daemon-tcp".into())
                .spawn(move || {
                    for stream in tcp.incoming() {
                        if shared.shutdown.load(Ordering::SeqCst) {
                            break;
                        }
                        let Ok(stream) = stream else {
                            std::thread::sleep(Duration::from_millis(50));
                            continue;
                        };
                        let _ = stream.set_nodelay(true);
                        spawn_handler(
                            ServerStream::Tcp(stream),
                            &service,
                            &dir,
                            &shared,
                            idle_timeout,
                        );
                    }
                })
                .expect("cannot spawn iolb-daemon-tcp")
        });

        for stream in self.listener.incoming() {
            if self.shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else {
                // A persistent accept failure (fd exhaustion) must not
                // busy-spin a core; back off briefly and retry.
                std::thread::sleep(Duration::from_millis(50));
                continue;
            };
            spawn_handler(
                ServerStream::Unix(stream),
                &self.service,
                &self.dir,
                &self.shared,
                self.config.idle_timeout,
            );
        }

        // Shutdown: stop accepting (both loops were woken), let
        // in-flight clients finish, then flush once.
        if let Some(t) = tcp_thread {
            t.join().expect("daemon tcp acceptor panicked");
        }
        {
            let mut guard = self.shared.gate.lock().expect("daemon gate poisoned");
            while self.shared.active.load(Ordering::SeqCst) > 0 {
                guard = self.shared.changed.wait(guard).expect("daemon gate poisoned");
            }
        }
        persister.join().expect("daemon persister panicked");
        if let Some(t) = peer_sync {
            t.join().expect("daemon peer-sync panicked");
        }
        let (_, persisted) = persist(&self.service, &self.dir, &self.shared);
        let _ = std::fs::remove_file(&self.socket_path);
        if persisted {
            Ok(())
        } else {
            // Exiting 0 here would tell orchestrators the shutdown was
            // clean while the last merge-interval's records were lost.
            Err(std::io::Error::other(format!(
                "final flush to {} failed; records tuned since the last successful persist were                  not saved",
                self.dir.display()
            )))
        }
    }
}

/// Registers a connection as active and hands it to a pool task; used
/// identically by the Unix and TCP accept loops.
fn spawn_handler(
    stream: ServerStream,
    service: &TuningService,
    dir: &Path,
    shared: &Arc<Shared>,
    idle_timeout: Duration,
) {
    shared.active.fetch_add(1, Ordering::SeqCst);
    let service = service.clone();
    let dir = dir.to_path_buf();
    let shared = Arc::clone(shared);
    rayon::spawn(move || {
        // Decrement even if the handler panics (a panicking tuner
        // is caught by the pool; shutdown must still drain).
        struct Departure(Arc<Shared>);
        impl Drop for Departure {
            fn drop(&mut self) {
                self.0.active.fetch_sub(1, Ordering::SeqCst);
                let _g = self.0.gate.lock().expect("daemon gate poisoned");
                self.0.changed.notify_all();
            }
        }
        let _departure = Departure(shared.clone());
        handle_connection(&service, stream, &dir, &shared, idle_timeout);
    });
}

/// One anti-entropy pull: connect to the peer on whichever transport it
/// speaks and fetch its full store.
fn pull_peer(peer: &PeerAddr) -> Result<ShardedStore, BackendError> {
    match peer {
        PeerAddr::Unix(path) => {
            SocketBackend::connect(path).map_err(BackendError::Transport)?.pull()
        }
        PeerAddr::Tcp(addr) => {
            TcpBackend::connect(addr.as_str()).map_err(BackendError::Transport)?.pull()
        }
    }
}

/// Overwrite-saves the service's authoritative state into the daemon's
/// directory. No [`DirLock`] here — the daemon already holds the
/// directory's flock for its lifetime (re-acquiring on the same file
/// would deadlock against ourselves, and nobody else may write). Errors
/// are reported, not fatal to *serving* — but the returned flag is
/// honest, so a client `Sync` answers `persisted: false` and the
/// interval persister retries rather than believing the flush landed.
/// Returns `(total records, persisted ok)`.
fn persist(service: &TuningService, dir: &Path, shared: &Shared) -> (usize, bool) {
    // One persist at a time: see `Shared::persist_gate`.
    let _serialized = shared.persist_gate.lock().expect("daemon persist gate poisoned");
    let started = std::time::Instant::now();
    let (shards, snapshot) = {
        let st = service.lock();
        (
            st.shards.clone(),
            ServiceSnapshot {
                stats: st.stats,
                queue_len: st.queue.len(),
                budget_left: st.budget_left,
            },
        )
    };
    let total = shards.len();
    let persisted = match shards.save(dir).and_then(|()| snapshot.save(dir)) {
        Ok(()) => {
            crate::log_event!(Info, "daemon.persisted", records = total, dir = dir.display());
            true
        }
        Err(e) => {
            crate::log_event!(Error, "daemon.persist_failed", dir = dir.display(), error = e);
            false
        }
    };
    service.telemetry().observe_since("iolb_daemon_persist_us", started);
    (total, persisted)
}

/// How often an idle connection handler wakes to check the shutdown
/// flag and its idle budget.
const IDLE_TICK: Duration = Duration::from_millis(250);

/// Upper bound on reading one frame once its first byte has arrived —
/// generous for local sockets, but finite, so a peer that trickles a
/// frame byte-by-byte cannot pin a pool worker forever.
const FRAME_TIMEOUT: Duration = Duration::from_secs(30);

/// A reader that enforces an *overall* deadline across however many
/// `read` calls a frame takes. The socket's own `SO_RCVTIMEO` stays at
/// [`IDLE_TICK`], so each blocked read wakes often enough to re-check
/// the deadline and the daemon's shutdown flag — without this, a peer
/// trickling bytes would reset the per-read timeout indefinitely.
struct DeadlineReader<'a> {
    stream: &'a mut ServerStream,
    deadline: std::time::Instant,
    shared: &'a Shared,
}

impl Read for DeadlineReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        loop {
            if self.shared.shutdown.load(Ordering::SeqCst) {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    "daemon is shutting down",
                ));
            }
            if std::time::Instant::now() >= self.deadline {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    "frame deadline exceeded",
                ));
            }
            match self.stream.read(buf) {
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock
                            | std::io::ErrorKind::TimedOut
                            | std::io::ErrorKind::Interrupted
                    ) => {}
                other => return other,
            }
        }
    }
}

/// Serves one client connection: a sequence of framed requests until
/// EOF, a transport error, the idle timeout, or `Shutdown`. Sessions
/// are per-connection; an abandoned connection's queued jobs stay in
/// the service queue at batch priority (the documented drop semantics
/// of `SessionHandle`).
///
/// Handlers run on the shared rayon pool, so a connection must never
/// occupy a worker indefinitely while doing nothing: between requests
/// the handler reads the next frame's 4-byte length prefix *resumably*
/// under a short read timeout (partial prefix bytes are kept across
/// ticks, so a timeout never desynchronizes the frame stream), evicting
/// the connection after [`DaemonConfig::idle_timeout`] and noticing a
/// requested shutdown within one tick.
fn handle_connection(
    service: &TuningService,
    mut stream: ServerStream,
    dir: &Path,
    shared: &Shared,
    idle_timeout: Duration,
) {
    let mut sessions = BTreeMap::new();
    let mut next_session = 0u64;
    let mut idle = Duration::ZERO;
    // Frame read/write buffers live for the whole connection: the
    // busy-loop hot path (Submit/Wait per layer) reuses their capacity
    // instead of allocating per frame.
    let mut scratch = wire::Scratch::default();
    let telemetry = service.telemetry().clone();
    telemetry.incr("iolb_daemon_connections_total", 1);
    if stream.set_read_timeout(Some(IDLE_TICK)).is_err() {
        return;
    }
    'connection: loop {
        // Resumable prefix read: idle ticks between frames, a bounded
        // patience window once a frame has started arriving.
        let mut len_buf = [0u8; 4];
        let mut filled = 0usize;
        let mut frame_deadline: Option<std::time::Instant> = None;
        let len = loop {
            match stream.read(&mut len_buf[filled..]) {
                // EOF: clean between frames, truncated inside a prefix —
                // either way the connection is over.
                Ok(0) => break 'connection,
                Ok(n) => {
                    filled += n;
                    idle = Duration::ZERO;
                    frame_deadline.get_or_insert_with(|| std::time::Instant::now() + FRAME_TIMEOUT);
                    if filled == len_buf.len() {
                        break u32::from_be_bytes(len_buf) as usize;
                    }
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    if shared.shutdown.load(Ordering::SeqCst) {
                        break 'connection;
                    }
                    match frame_deadline {
                        Some(deadline) if std::time::Instant::now() >= deadline => {
                            break 'connection
                        }
                        Some(_) => {}
                        None => {
                            idle += IDLE_TICK;
                            if idle >= idle_timeout {
                                telemetry.incr("iolb_daemon_idle_evictions_total", 1);
                                crate::log_event!(Debug, "daemon.idle_evicted");
                                break 'connection;
                            }
                        }
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => break 'connection,
            }
        };
        // The payload is owed now. The socket timeout alone cannot
        // bound it — SO_RCVTIMEO is per read() call, so a peer
        // trickling one byte per tick would reset it forever; the
        // DeadlineReader enforces the frame deadline (and notices
        // shutdown) across the whole payload.
        let deadline = frame_deadline.unwrap_or_else(|| std::time::Instant::now() + FRAME_TIMEOUT);
        // Request latency is measured from the moment the frame length
        // is known (prefix complete) to the response being written —
        // idle time between frames never counts.
        let served_started = std::time::Instant::now();
        telemetry.observe("iolb_daemon_frame_bytes", len as u64);
        let request = {
            let mut reader = DeadlineReader { stream: &mut stream, deadline, shared };
            wire::read_payload_into(&mut reader, len, &mut scratch.payload)
                .and_then(|()| wire::decode_request_payload(&scratch.payload))
        };
        let request = match request {
            Ok(request) => request,
            Err(e) => {
                // A malformed client must not take the daemon down; tell
                // it what was wrong if the pipe still works, then drop it.
                let _ = wire::write_response_buffered(
                    &mut stream,
                    &Response::Error { message: e.to_string() },
                    &mut scratch,
                );
                break;
            }
        };
        let response = match request {
            Request::Submit { device, requests } => {
                let handle = service.submit(&requests, &device);
                let session = next_session;
                next_session += 1;
                let unique = handle.unique_workloads();
                sessions.insert(session, handle);
                Response::Submitted { session, unique }
            }
            Request::Wait { session } => match sessions.remove(&session) {
                // wait() helps tune this session's jobs on this thread.
                Some(handle) => Response::Results { results: handle.wait() },
                None => Response::Error { message: format!("unknown session {session}") },
            },
            Request::Sync => {
                let (total, persisted) = persist(service, dir, shared);
                Response::Synced { persisted, total }
            }
            Request::Stats => Response::Stats {
                snapshot: Box::new(service.snapshot()),
                metrics: service.metrics(),
            },
            // Anti-entropy: ship a snapshot of the whole store; the
            // puller absorbs it (commutative union), so concurrent
            // tuning on either side is never lost, only re-merged.
            Request::Pull => Response::State { store: Box::new(service.lock().shards.clone()) },
            Request::Shutdown => {
                let _ = wire::write_response_buffered(&mut stream, &Response::Bye, &mut scratch);
                shared.request_shutdown();
                break;
            }
        };
        let wrote = wire::write_response_buffered(&mut stream, &response, &mut scratch);
        telemetry.observe_since("iolb_daemon_request_us", served_started);
        if wrote.is_err() {
            break;
        }
    }
}

// ---------------------------------------------------------------- client

impl From<WireError> for BackendError {
    fn from(e: WireError) -> Self {
        match e {
            WireError::Io(io) => BackendError::Transport(io),
            other => BackendError::Protocol(other.to_string()),
        }
    }
}

/// The daemon client: a [`Backend`] over one connection of stream type
/// `S`. Use the [`SocketBackend`] (Unix) and [`TcpBackend`] aliases.
/// Cheap to clone (clones share the connection); requests are
/// serialized request/response pairs, so a blocked [`wait`] occupies
/// the connection — use one backend per concurrent session.
///
/// [`wait`]: BackendSession::wait
pub struct WireBackend<S> {
    // Scratch rides under the same lock as the stream: whoever holds the
    // connection owns the encode/decode buffers, so the per-call hot path
    // (submit/wait per layer) reuses capacity instead of allocating.
    stream: Arc<Mutex<(S, wire::Scratch)>>,
}

impl<S> Clone for WireBackend<S> {
    fn clone(&self) -> Self {
        Self { stream: Arc::clone(&self.stream) }
    }
}

/// [`WireBackend`] over a Unix domain socket (same-machine clients).
pub type SocketBackend = WireBackend<UnixStream>;

/// [`WireBackend`] over TCP (fleet clients and anti-entropy pulls).
pub type TcpBackend = WireBackend<TcpStream>;

impl WireBackend<UnixStream> {
    /// Connects to a daemon's Unix socket.
    pub fn connect(path: impl AsRef<Path>) -> std::io::Result<Self> {
        Ok(Self {
            stream: Arc::new(Mutex::new((UnixStream::connect(path)?, wire::Scratch::default()))),
        })
    }
}

impl WireBackend<TcpStream> {
    /// Connects to a daemon's TCP listener. Nagle is disabled: the
    /// protocol is small request/response frames, where coalescing only
    /// adds latency.
    pub fn connect(addr: impl std::net::ToSocketAddrs) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(Self { stream: Arc::new(Mutex::new((stream, wire::Scratch::default()))) })
    }
}

impl<S: Read + Write> WireBackend<S> {
    /// One request/response exchange. Daemon-reported errors surface as
    /// [`BackendError::Remote`].
    pub(crate) fn call(&self, request: &Request) -> Result<Response, BackendError> {
        let mut guard = self.stream.lock().expect("wire backend poisoned");
        let (stream, scratch) = &mut *guard;
        wire::write_request_buffered(stream, request, scratch)?;
        match wire::read_response_buffered(stream, scratch)? {
            Response::Error { message } => Err(BackendError::Remote(message)),
            response => Ok(response),
        }
    }

    /// Asks the daemon to persist and exit. The daemon finishes serving
    /// live connections, flushes once more, and removes its socket.
    pub fn shutdown(&self) -> Result<(), BackendError> {
        match self.call(&Request::Shutdown)? {
            Response::Bye => Ok(()),
            other => Err(BackendError::Protocol(format!("expected Bye, got {other:?}"))),
        }
    }

    /// Fetches the daemon's full store (the anti-entropy `Pull`). The
    /// caller merges it with
    /// [`ShardedStore::absorb`](crate::shard::ShardedStore::absorb);
    /// tests also use it to observe convergence.
    pub fn pull(&self) -> Result<ShardedStore, BackendError> {
        match self.call(&Request::Pull)? {
            Response::State { store } => Ok(*store),
            other => Err(BackendError::Protocol(format!("expected State, got {other:?}"))),
        }
    }
}

/// A batch submitted over a [`WireBackend`] connection; the daemon
/// holds the real [`SessionHandle`](crate::session::SessionHandle)
/// server-side.
pub struct WireSession<S> {
    backend: WireBackend<S>,
    session: u64,
    requests: usize,
    unique: usize,
}

/// [`WireSession`] over a Unix domain socket.
pub type SocketSession = WireSession<UnixStream>;

/// [`WireSession`] over TCP.
pub type TcpSession = WireSession<TcpStream>;

impl<S: Read + Write> BackendSession for WireSession<S> {
    fn request_count(&self) -> usize {
        self.requests
    }

    fn unique_workloads(&self) -> usize {
        self.unique
    }

    fn wait(self) -> Result<Vec<Option<crate::service::ServeResult>>, BackendError> {
        match self.backend.call(&Request::Wait { session: self.session })? {
            Response::Results { results } => {
                if results.len() != self.requests {
                    return Err(BackendError::Protocol(format!(
                        "daemon returned {} result(s) for {} request(s)",
                        results.len(),
                        self.requests
                    )));
                }
                Ok(results)
            }
            other => Err(BackendError::Protocol(format!("expected Results, got {other:?}"))),
        }
    }
}

impl<S: Read + Write> Backend for WireBackend<S> {
    type Session = WireSession<S>;

    fn submit_batch(
        &self,
        requests: &[TuneRequest],
        device: &DeviceSpec,
    ) -> Result<WireSession<S>, BackendError> {
        let request = Request::Submit { device: device.clone(), requests: requests.to_vec() };
        match self.call(&request)? {
            Response::Submitted { session, unique } => {
                Ok(WireSession { backend: self.clone(), session, requests: requests.len(), unique })
            }
            other => Err(BackendError::Protocol(format!("expected Submitted, got {other:?}"))),
        }
    }

    fn sync(&self) -> Result<SyncOutcome, BackendError> {
        match self.call(&Request::Sync)? {
            Response::Synced { persisted, total } => Ok(SyncOutcome { persisted, total }),
            other => Err(BackendError::Protocol(format!("expected Synced, got {other:?}"))),
        }
    }

    fn stats(&self) -> Result<StatsReport, BackendError> {
        match self.call(&Request::Stats)? {
            Response::Stats { snapshot, metrics } => {
                Ok(StatsReport { snapshot: *snapshot, metrics })
            }
            other => Err(BackendError::Protocol(format!("expected Stats, got {other:?}"))),
        }
    }
}
