//! Cross-crate property-based tests (proptest): the invariants that must
//! hold for *arbitrary* convolution shapes and schedules, not just the
//! hand-picked ones.

use conv_iolb::core::optimality::{best_tile, divisors, padded_out, TileKind};
use conv_iolb::core::shapes::{ConvShape, WinogradTile};
use conv_iolb::core::{direct, winograd};
use conv_iolb::dataflow::config::ScheduleConfig;
use conv_iolb::dataflow::exec::{execute_direct, execute_winograd};
use conv_iolb::gpusim::TileAccess;
use conv_iolb::tensor::conv_ref::{conv2d_reference, ConvParams};
use conv_iolb::tensor::im2col::conv2d_im2col;
use conv_iolb::tensor::layout::Layout;
use conv_iolb::tensor::tensor::Tensor4;
use conv_iolb::tensor::winograd_conv::conv2d_winograd;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy: small but varied convolution shapes (valid by construction).
fn small_shape() -> impl Strategy<Value = ConvShape> {
    (1usize..=3, 1usize..=4, 5usize..=10, 1usize..=6, 1usize..=3, 0usize..=1, 1usize..=2)
        .prop_map(|(batch, cin, hw, cout, k, pad, stride)| ConvShape {
            batch,
            cin,
            hin: hw,
            win: hw,
            cout,
            kh: k,
            kw: k,
            stride,
            pad,
        })
        .prop_filter("kernel fits", |s| s.validate().is_ok())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// im2col + GEMM computes the same convolution as the reference.
    #[test]
    fn im2col_equals_reference(shape in small_shape(), seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let input = Tensor4::random(shape.batch, shape.cin, shape.hin, shape.win, &mut rng);
        let weights = Tensor4::random(shape.cout, shape.cin, shape.kh, shape.kw, &mut rng);
        let params = ConvParams::new(shape.stride, shape.pad);
        let want = conv2d_reference(&input, &weights, params);
        let got = conv2d_im2col(&input, &weights, params, 2);
        prop_assert!(got.approx_eq(&want, 1e-3, 1e-3), "diff {}", got.max_abs_diff(&want));
    }

    /// Winograd F(2,3) computes the same convolution as the reference for
    /// any unit-stride 3x3 shape.
    #[test]
    fn winograd_equals_reference(
        cin in 1usize..=3,
        hw in 5usize..=9,
        cout in 1usize..=4,
        pad in 0usize..=1,
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let input = Tensor4::random(1, cin, hw, hw, &mut rng);
        let weights = Tensor4::random(cout, cin, 3, 3, &mut rng);
        let params = ConvParams::new(1, pad);
        let want = conv2d_reference(&input, &weights, params);
        let got = conv2d_winograd(&input, &weights, params, 2);
        prop_assert!(got.approx_eq(&want, 1e-3, 1e-3), "diff {}", got.max_abs_diff(&want));
    }

    /// The tiled direct executor matches the reference for any tile that
    /// divides the output.
    #[test]
    fn tiled_direct_executor_equals_reference(
        cin in 1usize..=3,
        cout_pow in 0u32..=2,
        seed in 0u64..1000,
        xi in 0usize..3,
        zi in 0usize..2,
    ) {
        let cout = 2usize.pow(cout_pow);
        let mut rng = StdRng::seed_from_u64(seed);
        let input = Tensor4::random(1, cin, 10, 10, &mut rng); // hout = 8
        let weights = Tensor4::random(cout, cin, 3, 3, &mut rng);
        let params = ConvParams::new(1, 0);
        let xs = [2usize, 4, 8];
        let zs = divisors(cout);
        let cfg = ScheduleConfig {
            x: xs[xi],
            y: 8,
            z: zs[zi.min(zs.len() - 1)],
            nxt: 1,
            nyt: 1,
            nzt: 1,
            sb_bytes: 48 * 1024,
            layout: Layout::Chw,
        };
        let want = conv2d_reference(&input, &weights, params);
        let got = execute_direct(&input, &weights, params, &cfg, 3);
        prop_assert!(got.approx_eq(&want, 1e-3, 1e-3));
    }

    /// The tiled Winograd executor matches the reference.
    #[test]
    fn tiled_winograd_executor_equals_reference(
        cin in 1usize..=2,
        seed in 0u64..1000,
        pad in 0usize..=1,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let hw = if pad == 1 { 8 } else { 10 }; // hout = 8 either way
        let input = Tensor4::random(1, cin, hw, hw, &mut rng);
        let weights = Tensor4::random(2, cin, 3, 3, &mut rng);
        let params = ConvParams::new(1, pad);
        let cfg = ScheduleConfig {
            x: 4,
            y: 8,
            z: 2,
            nxt: 1,
            nyt: 1,
            nzt: 1,
            sb_bytes: 48 * 1024,
            layout: Layout::Chw,
        };
        let want = conv2d_reference(&input, &weights, params);
        let got = execute_winograd(&input, &weights, params, WinogradTile::F2X3, &cfg, 2);
        prop_assert!(got.approx_eq(&want, 1e-3, 1e-3));
    }

    /// Lower bounds decrease in S and the dataflow model always dominates
    /// its own bound.
    #[test]
    fn bounds_monotone_and_dominated(
        cin in 8usize..=512,
        hw in 14usize..=128,
        cout in 8usize..=512,
        s1 in 256u32..=4096,
        factor in 2u32..=8,
    ) {
        let shape = ConvShape::square(cin, hw, cout, 3, 1, 1);
        let s1 = s1 as f64;
        let s2 = s1 * factor as f64;
        let b1 = direct::io_lower_bound(&shape, s1);
        let b2 = direct::io_lower_bound(&shape, s2);
        prop_assert!(b2 <= b1 + 1e-9, "bound not decreasing in S");
        let flow = direct::dataflow_optimal_io(&shape, s1, 1.0);
        prop_assert!(flow >= b1, "dataflow below its bound");
        let wb1 = winograd::io_lower_bound(&shape, WinogradTile::F2X3, s1);
        let wflow = winograd::dataflow_optimal_io(&shape, WinogradTile::F2X3, s1, 1.0);
        prop_assert!(wflow >= wb1, "winograd dataflow below its bound");
    }

    /// The integer tile solver respects the budget and never beats the
    /// relaxed (real-valued) Eq. 20 optimum on unpadded shapes.
    #[test]
    fn tile_solver_sound(
        cin in 8usize..=256,
        hw_pow in 2u32..=6,
        cout_pow in 3u32..=7,
        sb in 256f64..8192.0,
    ) {
        let hw = 2usize.pow(hw_pow); // power of two: padding is a no-op
        let cout = 2usize.pow(cout_pow);
        let shape = ConvShape::square(cin, hw + 2, cout, 3, 1, 0); // hout = hw
        prop_assume!(padded_out(&shape, TileKind::Direct) == (hw, hw));
        if let Some(choice) = best_tile(&shape, TileKind::Direct, sb) {
            prop_assert!(TileKind::Direct.accumulator_elems(&choice.tile) <= sb);
            prop_assert_eq!(hw % choice.tile.x, 0);
            prop_assert_eq!(hw % choice.tile.y, 0);
            prop_assert_eq!(cout % choice.tile.z, 0);
        }
    }

    /// Transaction counting: moved bytes always cover the useful payload,
    /// and coalescing efficiency stays in (0, 1].
    #[test]
    fn transactions_cover_payload(
        rows in 1u64..64,
        row_elems in 1u64..64,
        extra_stride in 0u64..128,
        tx_pow in 5u32..=7,
    ) {
        let access = TileAccess::tile(rows, row_elems, row_elems + extra_stride);
        let tx = 2u64.pow(tx_pow);
        prop_assert!(access.moved_bytes(tx) >= access.bytes());
        let eff = access.efficiency(tx);
        prop_assert!(eff > 0.0 && eff <= 1.0 + 1e-12);
    }

    /// Vertex counts: the literal DAG's computed-vertex count equals
    /// Lemma 4.8's closed form for arbitrary tiny shapes.
    #[test]
    fn dag_vertex_count_matches_lemma(
        cin in 1usize..=3,
        hw in 3usize..=5,
        cout in 1usize..=2,
        k in 2usize..=3,
    ) {
        prop_assume!(hw >= k);
        let shape = ConvShape::new(cin, hw, hw, cout, k, k, 1, 0);
        let dag = conv_iolb::pebble::conv_dag::direct_conv_dag(&shape);
        prop_assert_eq!(dag.computed_count(), direct::vertex_count(&shape));
    }
}
