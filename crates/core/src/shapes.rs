//! Convolution problem shapes and derived quantities.
//!
//! Everything in the lower-bound theory is expressed in terms of the
//! convolution geometry: input `W_in x H_in x C_in`, `C_out` kernels of
//! `W_ker x H_ker x C_in` weights, stride `mu`, producing a
//! `W_out x H_out x C_out` output image (paper §2.2). This module holds that
//! geometry plus the derived quantities the theory keeps reusing: output
//! dims, FLOP counts, and the maximum input-reuse factor
//! `R = W_ker * H_ker / mu^2` (Eq. 13).

/// Shape of a (possibly batched) 2-D convolution.
///
/// All dimensions are in elements, not bytes. `pad` is symmetric zero
/// padding on both spatial borders.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConvShape {
    /// Batch size (number of input images). The paper's single-image
    /// analysis corresponds to `batch == 1`; Figure 10 sweeps this.
    pub batch: usize,
    /// Input channels `C_in`.
    pub cin: usize,
    /// Input height `H_in`.
    pub hin: usize,
    /// Input width `W_in`.
    pub win: usize,
    /// Output channels `C_out` (= number of kernels).
    pub cout: usize,
    /// Kernel height `H_ker`.
    pub kh: usize,
    /// Kernel width `W_ker`.
    pub kw: usize,
    /// Stride `mu` (same in both spatial directions, as in the paper).
    pub stride: usize,
    /// Symmetric zero padding.
    pub pad: usize,
}

impl ConvShape {
    /// Unbatched convenience constructor (batch = 1).
    #[allow(clippy::too_many_arguments)] // mirrors the paper's 8 conv parameters
    pub fn new(
        cin: usize,
        hin: usize,
        win: usize,
        cout: usize,
        kh: usize,
        kw: usize,
        stride: usize,
        pad: usize,
    ) -> Self {
        Self { batch: 1, cin, hin, win, cout, kh, kw, stride, pad }
    }

    /// Square-image convenience constructor used by the evaluation sweeps
    /// (`H_in = W_in`, `H_ker = W_ker`).
    pub fn square(
        cin: usize,
        hw_in: usize,
        cout: usize,
        k: usize,
        stride: usize,
        pad: usize,
    ) -> Self {
        Self::new(cin, hw_in, hw_in, cout, k, k, stride, pad)
    }

    /// With a different batch size.
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = batch;
        self
    }

    /// Validates the shape: all dims positive, kernel fits into the padded
    /// input, stride positive.
    pub fn validate(&self) -> Result<(), ShapeError> {
        if self.batch == 0
            || self.cin == 0
            || self.hin == 0
            || self.win == 0
            || self.cout == 0
            || self.kh == 0
            || self.kw == 0
        {
            return Err(ShapeError::ZeroDim);
        }
        if self.stride == 0 {
            return Err(ShapeError::ZeroStride);
        }
        if self.hin + 2 * self.pad < self.kh || self.win + 2 * self.pad < self.kw {
            return Err(ShapeError::KernelTooLarge);
        }
        Ok(())
    }

    /// Output height `H_out = (H_in + 2*pad - H_ker)/mu + 1`.
    pub fn hout(&self) -> usize {
        (self.hin + 2 * self.pad - self.kh) / self.stride + 1
    }

    /// Output width `W_out = (W_in + 2*pad - W_ker)/mu + 1`.
    pub fn wout(&self) -> usize {
        (self.win + 2 * self.pad - self.kw) / self.stride + 1
    }

    /// Total number of output elements across the batch.
    pub fn output_elems(&self) -> u64 {
        self.batch as u64 * self.cout as u64 * self.hout() as u64 * self.wout() as u64
    }

    /// Total number of input elements across the batch (unpadded).
    pub fn input_elems(&self) -> u64 {
        self.batch as u64 * self.cin as u64 * self.hin as u64 * self.win as u64
    }

    /// Total number of weight elements (`C_out` kernels).
    pub fn weight_elems(&self) -> u64 {
        self.cout as u64 * self.cin as u64 * self.kh as u64 * self.kw as u64
    }

    /// Multiply-accumulate count of the direct algorithm: each output is an
    /// inner product of length `W_ker*H_ker*C_in`.
    pub fn macs(&self) -> u64 {
        self.output_elems() * self.kh as u64 * self.kw as u64 * self.cin as u64
    }

    /// FLOP count of the direct algorithm (2 flops per MAC).
    pub fn flops(&self) -> u64 {
        2 * self.macs()
    }

    /// Maximum reuse factor of each input element by different sliding
    /// windows, `R = W_ker*H_ker / mu^2` (Eq. 13). Real-valued because the
    /// stride need not divide the kernel extent.
    pub fn reuse_factor(&self) -> f64 {
        (self.kw * self.kh) as f64 / (self.stride * self.stride) as f64
    }

    /// Whether the shape admits a Winograd implementation with the given
    /// tile: square kernel `r x r`, unit stride.
    pub fn supports_winograd(&self, tile: WinogradTile) -> bool {
        self.kh == self.kw && self.kh == tile.r && self.stride == 1
    }

    /// Per-image output elements (no batch factor), `W_out*H_out*C_out`.
    pub fn output_elems_per_image(&self) -> u64 {
        self.cout as u64 * self.hout() as u64 * self.wout() as u64
    }
}

/// Winograd tile parameters `F(e x e, r x r)`: `e^2` outputs produced per
/// tile from an `(e+r-1) x (e+r-1)` input patch (paper §2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WinogradTile {
    /// Output tile edge `e` (2, 3 or 4 in practice).
    pub e: usize,
    /// Kernel edge `r` (`W_ker = H_ker = r`).
    pub r: usize,
}

impl WinogradTile {
    /// `F(2x2, 3x3)` — the most common configuration.
    pub const F2X3: WinogradTile = WinogradTile { e: 2, r: 3 };
    /// `F(4x4, 3x3)` — larger tile, more aggressive multiplication savings.
    pub const F4X3: WinogradTile = WinogradTile { e: 4, r: 3 };
    /// `F(3x3, 2x2)`.
    pub const F3X2: WinogradTile = WinogradTile { e: 3, r: 2 };

    pub fn new(e: usize, r: usize) -> Self {
        Self { e, r }
    }

    /// Input tile edge `a = e + r - 1`.
    pub fn a(&self) -> usize {
        self.e + self.r - 1
    }

    /// The paper assumes `1/2 <= r/e <= 2` throughout §4.3.
    pub fn ratio_ok(&self) -> bool {
        2 * self.r >= self.e && self.r <= 2 * self.e
    }

    /// Multiplications per `e^2` outputs per channel: `(e+r-1)^2` instead of
    /// `e^2 r^2` for direct — the classic Winograd saving.
    pub fn muls_per_tile(&self) -> usize {
        self.a() * self.a()
    }

    /// Direct-algorithm multiplications for the same `e^2` outputs.
    pub fn direct_muls_per_tile(&self) -> usize {
        self.e * self.e * self.r * self.r
    }

    /// Arithmetic-reduction ratio of the Winograd transform.
    pub fn mul_saving(&self) -> f64 {
        self.direct_muls_per_tile() as f64 / self.muls_per_tile() as f64
    }
}

/// Errors from [`ConvShape::validate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShapeError {
    /// Some dimension is zero.
    ZeroDim,
    /// Stride is zero.
    ZeroStride,
    /// Kernel larger than padded input.
    KernelTooLarge,
}

impl std::fmt::Display for ShapeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShapeError::ZeroDim => write!(f, "shape has a zero dimension"),
            ShapeError::ZeroStride => write!(f, "stride must be positive"),
            ShapeError::KernelTooLarge => write!(f, "kernel larger than padded input"),
        }
    }
}

impl std::error::Error for ShapeError {}

impl std::fmt::Display for ConvShape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "conv[n={} {}x{}x{} -> {}x{}x{} k={}x{} s={} p={}]",
            self.batch,
            self.cin,
            self.hin,
            self.win,
            self.cout,
            self.hout(),
            self.wout(),
            self.kh,
            self.kw,
            self.stride,
            self.pad
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_dims_match_formula() {
        let s = ConvShape::new(3, 227, 227, 96, 11, 11, 4, 0);
        assert_eq!(s.hout(), 55);
        assert_eq!(s.wout(), 55);
    }

    #[test]
    fn output_dims_with_padding() {
        let s = ConvShape::new(96, 27, 27, 256, 5, 5, 1, 2);
        assert_eq!(s.hout(), 27);
        assert_eq!(s.wout(), 27);
    }

    #[test]
    fn same_padding_3x3() {
        let s = ConvShape::square(256, 56, 128, 3, 1, 1);
        assert_eq!(s.hout(), 56);
        assert_eq!(s.wout(), 56);
    }

    #[test]
    fn flops_count() {
        let s = ConvShape::new(2, 4, 4, 3, 3, 3, 1, 0);
        // hout = wout = 2, outputs = 3*2*2 = 12, macs/out = 2*9 = 18.
        assert_eq!(s.hout(), 2);
        assert_eq!(s.macs(), 12 * 18);
        assert_eq!(s.flops(), 2 * 12 * 18);
    }

    #[test]
    fn batch_scales_counts() {
        let s = ConvShape::square(8, 16, 8, 3, 1, 1);
        let b = s.with_batch(4);
        assert_eq!(b.output_elems(), 4 * s.output_elems());
        assert_eq!(b.macs(), 4 * s.macs());
        assert_eq!(b.weight_elems(), s.weight_elems()); // weights shared
    }

    #[test]
    fn reuse_factor_matches_eq13() {
        let s = ConvShape::square(256, 56, 128, 3, 1, 1);
        assert!((s.reuse_factor() - 9.0).abs() < 1e-12);
        let s2 = ConvShape::square(256, 56, 128, 3, 2, 1);
        assert!((s2.reuse_factor() - 2.25).abs() < 1e-12);
        let s4 = ConvShape::square(256, 56, 128, 3, 4, 1);
        assert!((s4.reuse_factor() - 9.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn validation_rejects_bad_shapes() {
        assert_eq!(ConvShape::new(0, 4, 4, 1, 3, 3, 1, 0).validate(), Err(ShapeError::ZeroDim));
        assert_eq!(ConvShape::new(1, 4, 4, 1, 3, 3, 0, 0).validate(), Err(ShapeError::ZeroStride));
        assert_eq!(
            ConvShape::new(1, 2, 2, 1, 5, 5, 1, 0).validate(),
            Err(ShapeError::KernelTooLarge)
        );
        assert!(ConvShape::new(1, 2, 2, 1, 5, 5, 1, 2).validate().is_ok());
    }

    #[test]
    fn winograd_tile_properties() {
        let t = WinogradTile::F2X3;
        assert_eq!(t.a(), 4);
        assert!(t.ratio_ok());
        assert_eq!(t.muls_per_tile(), 16);
        assert_eq!(t.direct_muls_per_tile(), 36);
        assert!((t.mul_saving() - 2.25).abs() < 1e-12);

        let t4 = WinogradTile::F4X3;
        assert_eq!(t4.a(), 6);
        assert!(t4.ratio_ok());
        assert!((t4.mul_saving() - 4.0).abs() < 1e-12);

        // e=5, r=2 violates 1/2 <= r/e <= 2.
        assert!(!WinogradTile::new(5, 2).ratio_ok());
    }

    #[test]
    fn winograd_support_requires_square_unit_stride() {
        let ok = ConvShape::square(64, 28, 64, 3, 1, 1);
        assert!(ok.supports_winograd(WinogradTile::F2X3));
        let strided = ConvShape::square(64, 28, 64, 3, 2, 1);
        assert!(!strided.supports_winograd(WinogradTile::F2X3));
        let wrong_r = ConvShape::square(64, 28, 64, 5, 1, 2);
        assert!(!wrong_r.supports_winograd(WinogradTile::F2X3));
    }

    #[test]
    fn display_is_informative() {
        let s = ConvShape::square(256, 56, 128, 3, 1, 1);
        let d = format!("{s}");
        assert!(d.contains("256x56x56"));
        assert!(d.contains("s=1"));
    }
}
