//! Blocked, multi-threaded GEMM: `C = A * B` for row-major `f32` matrices.
//!
//! This is the compute substrate behind the im2col convolution path (the
//! cuDNN-style baseline) and the Winograd batched elementwise stage. It
//! uses classic cache blocking (MC x KC x NC macro-tiles with an 4x8
//! register micro-kernel) and splits the M dimension across rayon
//! workers — each worker owns a disjoint row band of `C`, so no
//! synchronisation is needed and the result is bit-identical to the
//! serial computation regardless of thread count.

use rayon::prelude::*;

/// Row-major matrix view: `rows x cols`, leading dimension = `cols`.
#[derive(Debug, Clone, Copy)]
pub struct MatRef<'a> {
    pub data: &'a [f32],
    pub rows: usize,
    pub cols: usize,
}

impl<'a> MatRef<'a> {
    pub fn new(data: &'a [f32], rows: usize, cols: usize) -> Self {
        assert_eq!(data.len(), rows * cols, "matrix buffer size mismatch");
        Self { data, rows, cols }
    }

    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }
}

// Macro-tile sizes tuned for ~32 KiB L1 / 1 MiB L2; correctness does not
// depend on them (tests sweep odd sizes).
const MC: usize = 64;
const KC: usize = 256;
const NC: usize = 256;
// Register micro-tile.
const MR: usize = 4;
const NR: usize = 8;

/// Single-threaded blocked GEMM: `c += a * b`.
///
/// `c` must be `a.rows * b.cols`, row-major.
pub fn gemm_acc(a: MatRef<'_>, b: MatRef<'_>, c: &mut [f32]) {
    assert_eq!(a.cols, b.rows, "inner dimension mismatch");
    assert_eq!(c.len(), a.rows * b.cols, "output buffer size mismatch");
    let (m, k, n) = (a.rows, a.cols, b.cols);

    let mut a_pack = vec![0.0f32; MC * KC];
    let mut b_pack = vec![0.0f32; KC * NC];

    let mut jc = 0;
    while jc < n {
        let nc = NC.min(n - jc);
        let mut pc = 0;
        while pc < k {
            let kc = KC.min(k - pc);
            pack_b(b, pc, jc, kc, nc, &mut b_pack);
            let mut ic = 0;
            while ic < m {
                let mc = MC.min(m - ic);
                pack_a(a, ic, pc, mc, kc, &mut a_pack);
                macro_kernel(&a_pack, &b_pack, c, ic, jc, mc, nc, kc, n);
                ic += MC;
            }
            pc += KC;
        }
        jc += NC;
    }
}

/// Packs an `mc x kc` block of `a` into row-panels of height `MR`.
fn pack_a(a: MatRef<'_>, ic: usize, pc: usize, mc: usize, kc: usize, out: &mut [f32]) {
    let mut dst = 0;
    let mut i = 0;
    while i < mc {
        let mr = MR.min(mc - i);
        for p in 0..kc {
            for r in 0..MR {
                out[dst] = if r < mr { a.at(ic + i + r, pc + p) } else { 0.0 };
                dst += 1;
            }
        }
        i += MR;
    }
}

/// Packs a `kc x nc` block of `b` into column-panels of width `NR`.
fn pack_b(b: MatRef<'_>, pc: usize, jc: usize, kc: usize, nc: usize, out: &mut [f32]) {
    let mut dst = 0;
    let mut j = 0;
    while j < nc {
        let nr = NR.min(nc - j);
        for p in 0..kc {
            for r in 0..NR {
                out[dst] = if r < nr { b.at(pc + p, jc + j + r) } else { 0.0 };
                dst += 1;
            }
        }
        j += NR;
    }
}

/// Runs the packed micro-kernels over one macro-tile.
#[allow(clippy::too_many_arguments)]
fn macro_kernel(
    a_pack: &[f32],
    b_pack: &[f32],
    c: &mut [f32],
    ic: usize,
    jc: usize,
    mc: usize,
    nc: usize,
    kc: usize,
    ldc: usize,
) {
    let mut j = 0;
    while j < nc {
        let nr = NR.min(nc - j);
        let b_panel = &b_pack[(j / NR) * kc * NR..][..kc * NR];
        let mut i = 0;
        while i < mc {
            let mr = MR.min(mc - i);
            let a_panel = &a_pack[(i / MR) * kc * MR..][..kc * MR];
            micro_kernel(a_panel, b_panel, kc, c, (ic + i) * ldc + jc + j, ldc, mr, nr);
            i += MR;
        }
        j += NR;
    }
}

/// `MR x NR` register-blocked inner product over `kc` terms; accumulates
/// into `c[c_off..]`. Edge tiles (`mr < MR` or `nr < NR`) write partially.
#[allow(clippy::too_many_arguments)]
#[inline]
fn micro_kernel(
    a_panel: &[f32],
    b_panel: &[f32],
    kc: usize,
    c: &mut [f32],
    c_off: usize,
    ldc: usize,
    mr: usize,
    nr: usize,
) {
    let mut acc = [[0.0f32; NR]; MR];
    for p in 0..kc {
        let a_row = &a_panel[p * MR..p * MR + MR];
        let b_row = &b_panel[p * NR..p * NR + NR];
        for (i, &av) in a_row.iter().enumerate() {
            for (j, &bv) in b_row.iter().enumerate() {
                acc[i][j] += av * bv;
            }
        }
    }
    for i in 0..mr {
        for j in 0..nr {
            c[c_off + i * ldc + j] += acc[i][j];
        }
    }
}

/// Multi-threaded GEMM: `c = a * b` (output overwritten), M split across
/// `threads` workers owning disjoint row bands of `C`.
///
/// `B` is packed **once**, up front, into per-`(jc, pc)` macro-tile
/// panels that every band worker reads; only the (band-private) `A`
/// panels are packed inside the parallel region. The old scheme ran
/// [`gemm_acc`] per band, so each of `t` workers re-packed the whole of
/// `B` — `(t-1) * k * n` redundant pack traffic that grew with the
/// thread count. Each worker still owns a disjoint row band of `C` and
/// runs the same `jc -> pc -> ic` loop nest as the serial path, so the
/// result is bit-identical to `gemm(.., 1)` regardless of thread count.
pub fn gemm(a: MatRef<'_>, b: MatRef<'_>, c: &mut [f32], threads: usize) {
    assert_eq!(a.cols, b.rows, "inner dimension mismatch");
    assert_eq!(c.len(), a.rows * b.cols, "output buffer size mismatch");
    c.fill(0.0);
    let threads = threads.max(1).min(a.rows.max(1));
    if threads == 1 || a.rows * b.cols < 64 * 64 {
        gemm_acc(a, b, c);
        return;
    }
    let (m, k, n) = (a.rows, a.cols, b.cols);

    // Pack all of B serially (O(k*n) work against the O(m*k*n) compute
    // split below; the serial fraction vanishes as m grows). Panel
    // (jb, pb) lives at slot `jb * k_blocks + pb`, laid out exactly as
    // `pack_b` emits it.
    let k_blocks = k.div_ceil(KC);
    let n_blocks = n.div_ceil(NC);
    let slot = KC * NC;
    let mut b_pack = vec![0.0f32; k_blocks * n_blocks * slot];
    for jb in 0..n_blocks {
        let jc = jb * NC;
        let nc = NC.min(n - jc);
        for pb in 0..k_blocks {
            let pc = pb * KC;
            let kc = KC.min(k - pc);
            pack_b(b, pc, jc, kc, nc, &mut b_pack[(jb * k_blocks + pb) * slot..][..slot]);
        }
    }
    let b_pack = &b_pack;

    let band = m.div_ceil(threads);
    c.par_chunks_mut(band * n).enumerate().for_each(|(t, band_c)| {
        let row = t * band;
        let rows_here = band.min(m - row);
        let mut a_pack = vec![0.0f32; MC * KC];
        for jb in 0..n_blocks {
            let jc = jb * NC;
            let nc = NC.min(n - jc);
            for pb in 0..k_blocks {
                let pc = pb * KC;
                let kc = KC.min(k - pc);
                let b_panel = &b_pack[(jb * k_blocks + pb) * slot..][..slot];
                let mut ic = 0;
                while ic < rows_here {
                    let mc = MC.min(rows_here - ic);
                    pack_a(a, row + ic, pc, mc, kc, &mut a_pack);
                    macro_kernel(&a_pack, b_panel, band_c, ic, jc, mc, nc, kc, n);
                    ic += MC;
                }
            }
        }
    });
}

/// Naive triple loop for testing.
pub fn gemm_naive(a: MatRef<'_>, b: MatRef<'_>, c: &mut [f32]) {
    assert_eq!(a.cols, b.rows);
    assert_eq!(c.len(), a.rows * b.cols);
    for i in 0..a.rows {
        for j in 0..b.cols {
            let mut acc = 0.0f32;
            for p in 0..a.cols {
                acc += a.at(i, p) * b.at(p, j);
            }
            c[i * b.cols + j] = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_mat(rng: &mut StdRng, rows: usize, cols: usize) -> Vec<f32> {
        (0..rows * cols).map(|_| rng.gen_range(-1.0..1.0)).collect()
    }

    fn check_against_naive(m: usize, k: usize, n: usize, threads: usize, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = random_mat(&mut rng, m, k);
        let b = random_mat(&mut rng, k, n);
        let ar = MatRef::new(&a, m, k);
        let br = MatRef::new(&b, k, n);
        let mut want = vec![0.0; m * n];
        gemm_naive(ar, br, &mut want);
        let mut got = vec![0.0; m * n];
        gemm(ar, br, &mut got, threads);
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            assert!(
                (g - w).abs() <= 1e-3 + 1e-4 * w.abs(),
                "({m}x{k}x{n}, t={threads}) mismatch at {i}: {g} vs {w}"
            );
        }
    }

    #[test]
    fn small_exact_sizes() {
        check_against_naive(4, 8, 8, 1, 1);
        check_against_naive(8, 8, 16, 1, 2);
    }

    #[test]
    fn odd_edge_sizes() {
        // Exercise every partial-tile path.
        check_against_naive(1, 1, 1, 1, 3);
        check_against_naive(5, 7, 9, 1, 4);
        check_against_naive(67, 259, 131, 1, 5);
        check_against_naive(3, 300, 11, 1, 6);
    }

    #[test]
    fn multithreaded_matches_naive() {
        check_against_naive(97, 64, 83, 4, 7);
        check_against_naive(256, 128, 64, 8, 8);
    }

    #[test]
    fn multithreaded_bit_identical_to_single_threaded() {
        // The shared-packed-B parallel path must not change a single bit
        // relative to one worker: bands run the same jc -> pc -> ic nest.
        for (m, k, n) in [(97, 259, 131), (MC + 3, KC + 5, NC + 7), (40, 40, 40)] {
            let mut rng = StdRng::seed_from_u64(11);
            let a = random_mat(&mut rng, m, k);
            let b = random_mat(&mut rng, k, n);
            let ar = MatRef::new(&a, m, k);
            let br = MatRef::new(&b, k, n);
            let mut serial = vec![0.0; m * n];
            gemm(ar, br, &mut serial, 1);
            for threads in [2, 3, 8] {
                let mut parallel = vec![0.0; m * n];
                gemm(ar, br, &mut parallel, threads);
                for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
                    assert_eq!(
                        s.to_bits(),
                        p.to_bits(),
                        "({m}x{k}x{n}, t={threads}) bit mismatch at {i}: {s} vs {p}"
                    );
                }
            }
        }
    }

    #[test]
    fn spanning_multiple_macro_tiles() {
        check_against_naive(MC + 3, KC + 5, NC + 7, 2, 9);
    }

    #[test]
    fn gemm_acc_accumulates() {
        let a = vec![1.0, 2.0, 3.0, 4.0];
        let b = vec![1.0, 0.0, 0.0, 1.0];
        let ar = MatRef::new(&a, 2, 2);
        let br = MatRef::new(&b, 2, 2);
        let mut c = vec![10.0; 4];
        gemm_acc(ar, br, &mut c);
        assert_eq!(c, vec![11.0, 12.0, 13.0, 14.0]);
    }

    #[test]
    fn identity_multiplication() {
        let n = 33;
        let mut rng = StdRng::seed_from_u64(10);
        let a = random_mat(&mut rng, n, n);
        let mut eye = vec![0.0; n * n];
        for i in 0..n {
            eye[i * n + i] = 1.0;
        }
        let mut c = vec![0.0; n * n];
        gemm(MatRef::new(&a, n, n), MatRef::new(&eye, n, n), &mut c, 3);
        for (g, w) in c.iter().zip(&a) {
            assert!((g - w).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn dimension_mismatch_panics() {
        let a = vec![0.0; 6];
        let b = vec![0.0; 6];
        let mut c = vec![0.0; 4];
        gemm(MatRef::new(&a, 2, 3), MatRef::new(&b, 2, 3), &mut c, 1);
    }
}
