//! Library-style baseline schedules — the stand-ins for cuDNN / MIOpen.
//!
//! cuDNN's "direct" path is im2col + GEMM (the paper §7 compares against
//! "the best one of two direct implementations in cuDNN", noting im2col is
//! usually better); its Winograd path materialises the transformed tensors
//! in global memory and runs batched GEMMs over them. Both therefore pay
//! global-memory round-trips for intermediate tensors that the paper's
//! fused dataflows keep on chip — exactly the traffic gap the lower-bound
//! analysis exposes. We model each as a sequence of simulator kernels with
//! classic (well-tuned, but generic) tilings.

use iolb_core::shapes::{ConvShape, WinogradTile};
use iolb_gpusim::{BlockShape, BlockWork, KernelDesc, TileAccess};

/// GEMM macro-tile used by all baseline GEMM kernels (a typical
/// library-quality 64x64x8 configuration with 256 threads).
pub const GEMM_TILE_M: usize = 64;
pub const GEMM_TILE_N: usize = 64;
pub const GEMM_TILE_K: usize = 8;

/// A generic tiled-GEMM kernel: `C[M x N] += A[M x K] * B[K x N]`,
/// repeated `batch` times (batched GEMM). Per block: the classic
/// double-buffered panel loop reading `K*(Tm + Tn)` elements.
pub fn gemm_kernel(
    name: impl Into<String>,
    m: usize,
    k: usize,
    n: usize,
    batch: usize,
) -> KernelDesc {
    let blocks_m = m.div_ceil(GEMM_TILE_M) as u64;
    let blocks_n = n.div_ceil(GEMM_TILE_N) as u64;
    let grid_blocks = blocks_m * blocks_n * batch as u64;
    let flops = 2 * (GEMM_TILE_M * GEMM_TILE_N * k) as u64;
    // A panel: per K-chunk a Tm x Tk tile with row stride K; lumped rows.
    let a_read = TileAccess::tile(
        (GEMM_TILE_M * k / GEMM_TILE_K).max(1) as u64,
        GEMM_TILE_K as u64,
        k.max(GEMM_TILE_K) as u64,
    );
    // B panel: K rows of Tn elements, row stride N.
    let b_read = TileAccess::tile(k as u64, GEMM_TILE_N as u64, n.max(GEMM_TILE_N) as u64);
    let c_write =
        TileAccess::tile(GEMM_TILE_M as u64, GEMM_TILE_N as u64, n.max(GEMM_TILE_N) as u64);
    KernelDesc {
        name: name.into(),
        grid_blocks,
        block: BlockShape { threads: 256, smem_bytes: 16 * 1024 },
        work: BlockWork::new(flops).read(a_read).read(b_read).write(c_write),
    }
}

/// The im2col + GEMM pipeline (cuDNN-style direct convolution).
pub fn im2col_gemm(shape: &ConvShape) -> Vec<KernelDesc> {
    let (hout, wout) = (shape.hout(), shape.wout());
    let k_mat = shape.cin * shape.kh * shape.kw;
    let n_mat = hout * wout;

    // Kernel 1: materialise the column matrix. Each output column gathers
    // a Kh x Kw window per channel; the loads are strided, the stores
    // contiguous. Work quantum: 8192 matrix elements per block.
    let total_elems = (k_mat * n_mat * shape.batch) as u64;
    let quantum: u64 = 8192;
    let im2col = KernelDesc {
        name: "im2col".into(),
        grid_blocks: total_elems.div_ceil(quantum),
        block: BlockShape { threads: 256, smem_bytes: 0 },
        // One flop-ish per element (address math dominated); reads are
        // window gathers (rows of Kw elements), writes contiguous.
        work: BlockWork::new(quantum)
            .read(TileAccess::tile(
                quantum / shape.kw.max(1) as u64,
                shape.kw as u64,
                shape.win.max(shape.kw) as u64,
            ))
            .write(TileAccess::contiguous(quantum)),
    };

    // Kernel 2: C[cout x n_mat] = W[cout x k_mat] * col[k_mat x n_mat],
    // batched over images.
    let gemm = gemm_kernel("im2col-gemm", shape.cout, k_mat, n_mat, shape.batch);
    vec![im2col, gemm]
}

/// The naive one-thread-per-output direct kernel (cuDNN's plain "direct
/// convolution" that "occasionally fails for some input shapes"). No
/// shared-memory reuse: every thread re-reads its window from global.
pub fn naive_direct(shape: &ConvShape) -> Vec<KernelDesc> {
    let outputs = shape.output_elems();
    let per_block: u64 = 256;
    let window = (shape.kh * shape.kw * shape.cin) as u64;
    let kernel = KernelDesc {
        name: "naive-direct".into(),
        grid_blocks: outputs.div_ceil(per_block),
        block: BlockShape { threads: 256, smem_bytes: 0 },
        work: BlockWork::new(2 * per_block * window)
            // Inputs: every thread gathers its window rows.
            .read(TileAccess::tile(
                per_block * (shape.kh * shape.cin) as u64,
                shape.kw as u64,
                shape.win.max(shape.kw) as u64,
            ))
            // Weights: one window per block channel-mix, broadcast.
            .read(TileAccess::contiguous(window))
            .write(TileAccess::contiguous(per_block)),
    };
    vec![kernel]
}

/// The non-fused Winograd pipeline (cuDNN-style): transform the whole
/// input and all kernels into global scratch, run `a^2` batched GEMMs,
/// inverse-transform. The two scratch round-trips are the baseline's
/// extra I/O.
pub fn winograd_unfused(shape: &ConvShape, tile: WinogradTile) -> Vec<KernelDesc> {
    assert!(shape.supports_winograd(tile), "shape incompatible with F(e,r)");
    let a = tile.a();
    let (hout, wout) = (shape.hout(), shape.wout());
    let tiles = hout.div_ceil(tile.e) as u64 * wout.div_ceil(tile.e) as u64 * shape.batch as u64;

    // Kernel 1: input transform. Reads each (a x a) patch per channel
    // (halo overlap re-reads from global), writes a^2 * cin per tile.
    let quantum: u64 = 64; // tiles per block
    let in_transform = KernelDesc {
        name: "wino-input-transform".into(),
        grid_blocks: (tiles * shape.cin as u64).div_ceil(quantum),
        block: BlockShape { threads: 256, smem_bytes: 8 * 1024 },
        work: BlockWork::new(quantum * (4 * a * a * a) as u64)
            .read(TileAccess::tile(quantum * a as u64, a as u64, shape.win.max(a) as u64))
            .write(TileAccess::contiguous(quantum * (a * a) as u64)),
    };

    // Kernel 2: kernel transform (amortised across the batch but still
    // launched): cout*cin tiles of r^2 -> a^2.
    let kquantum: u64 = 128;
    let ker_transform = KernelDesc {
        name: "wino-kernel-transform".into(),
        grid_blocks: ((shape.cout * shape.cin) as u64).div_ceil(kquantum),
        block: BlockShape { threads: 128, smem_bytes: 4 * 1024 },
        work: BlockWork::new(kquantum * (4 * a * a * tile.r) as u64)
            .read(TileAccess::contiguous(kquantum * (tile.r * tile.r) as u64))
            .write(TileAccess::contiguous(kquantum * (a * a) as u64)),
    };

    // Kernel 3: a^2 batched GEMMs of [cout x cin] x [cin x tiles].
    let gemm = gemm_kernel("wino-gemm", shape.cout, shape.cin, tiles as usize, a * a);

    // Kernel 4: output transform: reads a^2 per (tile, cout), writes e^2.
    let oquantum: u64 = 64;
    let out_transform = KernelDesc {
        name: "wino-output-transform".into(),
        grid_blocks: (tiles * shape.cout as u64).div_ceil(oquantum),
        block: BlockShape { threads: 256, smem_bytes: 8 * 1024 },
        work: BlockWork::new(oquantum * (4 * tile.e * a * a) as u64)
            .read(TileAccess::contiguous(oquantum * (a * a) as u64))
            .write(TileAccess::tile(
                oquantum * tile.e as u64,
                tile.e as u64,
                wout.max(tile.e) as u64,
            )),
    };

    vec![in_transform, ker_transform, gemm, out_transform]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ScheduleConfig;
    use iolb_gpusim::{simulate_sequence, DeviceSpec};
    use iolb_tensor::layout::Layout;

    fn shape() -> ConvShape {
        ConvShape::square(256, 56, 128, 3, 1, 1)
    }

    #[test]
    fn im2col_pipeline_simulates() {
        let d = DeviceSpec::gtx1080ti();
        let seq = simulate_sequence(&d, &im2col_gemm(&shape())).unwrap();
        assert_eq!(seq.kernels.len(), 2);
        assert!(seq.time_ms > 0.0);
        // The column matrix is written once and read by the GEMM: traffic
        // must exceed the matrix size both ways.
        let k_mat = 256 * 9;
        let n_mat = 56 * 56;
        assert!(seq.q_elems > (k_mat * n_mat) as u64);
    }

    #[test]
    fn our_dataflow_moves_less_than_im2col() {
        // The headline claim, at the traffic level.
        let s = shape();
        let cfg = ScheduleConfig {
            x: 14,
            y: 14,
            z: 16,
            nxt: 7,
            nyt: 7,
            nzt: 4,
            sb_bytes: 32 * 1024,
            layout: Layout::Chw,
        };
        let d = DeviceSpec::gtx1080ti();
        let ours = simulate_sequence(&d, &[crate::direct::direct_kernel(&s, &cfg)]).unwrap();
        let base = simulate_sequence(&d, &im2col_gemm(&s)).unwrap();
        assert!(ours.q_elems < base.q_elems, "ours {} >= baseline {}", ours.q_elems, base.q_elems);
    }

    #[test]
    fn naive_direct_moves_most() {
        let s = shape();
        let d = DeviceSpec::gtx1080ti();
        let naive = simulate_sequence(&d, &naive_direct(&s)).unwrap();
        let im2col = simulate_sequence(&d, &im2col_gemm(&s)).unwrap();
        assert!(naive.q_elems > im2col.q_elems);
    }

    #[test]
    fn winograd_unfused_materialises_scratch() {
        let s = shape();
        let tile = WinogradTile::F2X3;
        let d = DeviceSpec::v100();
        let seq = simulate_sequence(&d, &winograd_unfused(&s, tile)).unwrap();
        assert_eq!(seq.kernels.len(), 4);
        // Transformed input scratch: a^2 cin tiles elements, written and
        // read back.
        let tiles = (56 / 2) * (56 / 2);
        let scratch = 16 * 256 * tiles as u64;
        assert!(seq.q_elems > 2 * scratch);
    }

    #[test]
    fn our_winograd_moves_less_than_unfused_on_shallow_cout() {
        // When z covers the whole C_out, the fused dataflow reads the
        // input image exactly once per spatial block, while the unfused
        // baseline still pays the two transformed-scratch round-trips. (On
        // very deep C_out the baseline's GEMM amortises the scratch and
        // the contest moves to launch overhead and occupancy — covered by
        // the fig9 time-level harness; see EXPERIMENTS.md.)
        let s = ConvShape::square(256, 56, 32, 3, 1, 1);
        let tile = WinogradTile::F2X3;
        let cfg = ScheduleConfig {
            x: 4,
            y: 8,
            z: 32,
            nxt: 2,
            nyt: 4,
            nzt: 16,
            sb_bytes: 36 * 1024,
            layout: Layout::Chw,
        };
        let d = DeviceSpec::v100();
        let ours =
            simulate_sequence(&d, &[crate::winograd::winograd_kernel(&s, tile, &cfg)]).unwrap();
        let base = simulate_sequence(&d, &winograd_unfused(&s, tile)).unwrap();
        assert!(ours.q_elems < base.q_elems, "ours {} >= baseline {}", ours.q_elems, base.q_elems);
    }

    #[test]
    fn gemm_kernel_grid_and_flops() {
        let k = gemm_kernel("g", 128, 256, 4096, 1);
        assert_eq!(k.grid_blocks, 2 * 64);
        assert_eq!(k.work.flops, 2 * 64 * 64 * 256);
    }

    #[test]
    fn batched_gemm_scales_grid() {
        let k1 = gemm_kernel("g", 128, 256, 4096, 1);
        let k16 = gemm_kernel("g", 128, 256, 4096, 16);
        assert_eq!(k16.grid_blocks, 16 * k1.grid_blocks);
    }
}
