//! Quickstart: bound a layer, schedule it, run it, verify it.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use conv_iolb::cnn::inference::fast_config;
use conv_iolb::core::direct;
use conv_iolb::core::optimality::TileKind;
use conv_iolb::core::shapes::ConvShape;
use conv_iolb::dataflow::{analyze_direct, direct_kernel, execute_direct};
use conv_iolb::gpusim::{simulate, DeviceSpec};
use conv_iolb::tensor::conv_ref::{conv2d_reference, ConvParams};
use conv_iolb::tensor::tensor::Tensor4;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // A ResNet-style 3x3 layer.
    let layer = ConvShape::square(256, 56, 128, 3, 1, 1);
    let device = DeviceSpec::gtx1080ti();
    println!("layer:  {layer}");
    println!(
        "device: {} ({} SMs, {} KiB smem/SM)\n",
        device.name,
        device.num_sms,
        device.smem_per_sm / 1024
    );

    // 1. Theory: how much traffic MUST move through S elements of fast
    //    memory? (Theorem 4.12.)
    let s = device.smem_per_sm as f64 / 4.0 / 2.0; // one block's share
    let bound = direct::io_lower_bound(&layer, s);
    println!("I/O lower bound at S = {s:.0} elems: {bound:.3e} elems");

    // 2. Schedule: the optimality-condition tile (xy = Rz).
    let cfg = fast_config(&layer, TileKind::Direct, &device).expect("plannable layer");
    println!("analytic schedule: {cfg}");
    let report = analyze_direct(&layer, &cfg);
    println!("{report}\n");

    // 3. Simulate on the GPU model.
    let kernel = direct_kernel(&layer, &cfg);
    let stats = simulate(&device, &kernel).expect("simulable kernel");
    println!(
        "simulated: {:.4} ms, {:.0} GFLOP/s, Q = {} elems ({} blocks/SM, {})",
        stats.time_ms,
        stats.gflops,
        stats.q_elems(),
        stats.blocks_per_sm,
        if stats.memory_bound { "memory-bound" } else { "compute-bound" },
    );
    println!("measured Q / lower bound = {:.2}x (near-optimal)\n", stats.q_elems() as f64 / bound);

    // 4. Execute the same schedule for real on the CPU and verify.
    let mut rng = StdRng::seed_from_u64(7);
    let small = ConvShape::square(16, 28, 8, 3, 1, 1); // small enough to run
    let input = Tensor4::random(1, small.cin, small.hin, small.win, &mut rng);
    let weights = Tensor4::random(small.cout, small.cin, 3, 3, &mut rng);
    let params = ConvParams::new(1, 1);
    let cfg_small = fast_config(&small, TileKind::Direct, &device).unwrap();
    let ours = execute_direct(&input, &weights, params, &cfg_small, 4);
    let reference = conv2d_reference(&input, &weights, params);
    assert!(ours.approx_eq(&reference, 1e-4, 1e-4), "dataflow execution must match the reference");
    println!("CPU execution of the tiled schedule matches the reference convolution. ✓");
}
