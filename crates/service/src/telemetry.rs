//! Dependency-free telemetry: counters, gauges, log-spaced latency
//! histograms, and a structured JSONL event log.
//!
//! The serving paths ([`crate::service`], [`crate::daemon`],
//! [`crate::fleet`]) are instrumented with a [`Telemetry`] registry —
//! monotonic counters, gauges, and fixed-bucket [`LatencyHistogram`]s —
//! whose snapshots travel over the wire inside the v3 `Stats` response
//! and surface through `tune-cache metrics` (Prometheus-style text
//! exposition) and `tune-cache serve-stats --json`.
//!
//! Two properties carry the design:
//!
//! * **Observation never feeds tuning.** Every measured duration is a
//!   side channel; tuning results stay a pure function of
//!   `(workload, budget, seed)` with instrumentation enabled — the
//!   bit-identical contracts in `tests/daemon.rs`/`tests/fleet.rs` hold
//!   unchanged.
//! * **Histogram merge is associative and commutative with exact count
//!   conservation** (bucket-wise saturating addition), so per-peer
//!   snapshots fold across a fleet in any order — pinned by
//!   `tests/proptest_telemetry.rs`.
//!
//! The event log is a seq-numbered JSONL sink (same flat-object dialect
//! as the record store) covering the request lifecycle: session submit →
//! queue wait → measure/steal/hit → persist. Sequence numbers are
//! assigned under the sink lock, so under `RAYON_NUM_THREADS=1` the
//! emitted order is deterministic. Warn/error events additionally mirror
//! to stderr, replacing the daemon's former bare `eprintln!`s; the
//! [`crate::log_event!`] macro is the one emission path.

use iolb_records::jsonl::escape;
use std::collections::BTreeMap;
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Number of histogram buckets. Bucket `i < NUM_BUCKETS - 1` counts
/// observations with value `<= 2^i` (log-spaced: 1 µs, 2 µs, 4 µs, …
/// ~67 s for microsecond latencies); the last bucket is the overflow.
pub const NUM_BUCKETS: usize = 28;

/// Upper bound of bucket `i` (raw units; `u64::MAX` for the overflow
/// bucket).
pub fn bucket_bound(i: usize) -> u64 {
    if i + 1 < NUM_BUCKETS {
        1u64 << i
    } else {
        u64::MAX
    }
}

/// A fixed-bucket, log-spaced histogram of non-negative integer
/// observations (canonically microseconds; `daemon_frame_bytes` reuses
/// the same buckets for sizes). Merging adds bucket-wise, so the total
/// count is conserved exactly and merge order never matters.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LatencyHistogram {
    counts: [u64; NUM_BUCKETS],
    sum: u64,
}

impl LatencyHistogram {
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuilds a histogram from wire parts. Rejects a bucket list of
    /// the wrong arity — a foreign bucket layout must not be silently
    /// reinterpreted.
    pub fn from_parts(sum: u64, buckets: &[u64]) -> Result<Self, String> {
        let counts: [u64; NUM_BUCKETS] = buckets.try_into().map_err(|_| {
            format!("histogram carries {} bucket(s), expected {NUM_BUCKETS}", buckets.len())
        })?;
        Ok(Self { counts, sum })
    }

    /// Records one observation (raw units, canonically µs).
    pub fn record(&mut self, value: u64) {
        let bucket =
            (0..NUM_BUCKETS - 1).find(|&i| value <= bucket_bound(i)).unwrap_or(NUM_BUCKETS - 1);
        self.counts[bucket] = self.counts[bucket].saturating_add(1);
        self.sum = self.sum.saturating_add(value);
    }

    /// Total observations — always the exact sum of the bucket counts.
    pub fn count(&self) -> u64 {
        self.counts.iter().fold(0u64, |a, &c| a.saturating_add(c))
    }

    /// Sum of all observed values (raw units).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    pub fn is_empty(&self) -> bool {
        self.counts.iter().all(|&c| c == 0)
    }

    /// Per-bucket counts, in bound order.
    pub fn buckets(&self) -> &[u64; NUM_BUCKETS] {
        &self.counts
    }

    /// Folds another histogram in: bucket-wise saturating addition.
    /// Associative and commutative, and (absent saturation) conserves
    /// the exact total count — so fleet-wide merges are order-free.
    pub fn merge(&mut self, other: &Self) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine = mine.saturating_add(*theirs);
        }
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// The `q`-quantile readout (`0 < q <= 1`): the upper bound of the
    /// bucket holding the `ceil(q * count)`-th smallest observation.
    /// Exact in the sense that the same bucket counts always produce the
    /// same readout, merged or not; resolution is the bucket width. The
    /// overflow bucket reads as `2^(NUM_BUCKETS - 1)`. Empty → 0.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen = seen.saturating_add(c);
            if seen >= target {
                return if i + 1 < NUM_BUCKETS { 1u64 << i } else { 1u64 << (NUM_BUCKETS - 1) };
            }
        }
        1u64 << (NUM_BUCKETS - 1)
    }
}

/// One named histogram inside a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    pub name: String,
    pub histogram: LatencyHistogram,
}

/// A point-in-time copy of a [`Telemetry`] registry: the thing the v3
/// `Stats` wire message carries and `tune-cache metrics` renders. Names
/// are sorted, so encodes are canonical.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, u64)>,
    pub histograms: Vec<HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Folds another snapshot in: counters and gauges add by name,
    /// histograms merge by name. Order-free, like the fleet's stats
    /// aggregation that uses it.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (name, value) in &other.counters {
            match self.counters.binary_search_by(|(n, _)| n.as_str().cmp(name)) {
                Ok(at) => self.counters[at].1 = self.counters[at].1.saturating_add(*value),
                Err(at) => self.counters.insert(at, (name.clone(), *value)),
            }
        }
        for (name, value) in &other.gauges {
            match self.gauges.binary_search_by(|(n, _)| n.as_str().cmp(name)) {
                Ok(at) => self.gauges[at].1 = self.gauges[at].1.saturating_add(*value),
                Err(at) => self.gauges.insert(at, (name.clone(), *value)),
            }
        }
        for h in &other.histograms {
            match self.histograms.binary_search_by(|s| s.name.as_str().cmp(&h.name)) {
                Ok(at) => self.histograms[at].histogram.merge(&h.histogram),
                Err(at) => self.histograms.insert(at, h.clone()),
            }
        }
    }

    /// Looks up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&LatencyHistogram> {
        self.histograms.iter().find(|h| h.name == name).map(|h| &h.histogram)
    }

    /// Looks up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Prometheus-style text exposition: `# TYPE` lines, cumulative
    /// `_bucket{le="..."}` series, `_sum`/`_count` per histogram. Bucket
    /// bounds are raw units (µs for `*_us` histograms, bytes for
    /// `*_bytes`); a name may carry embedded `{label="..."}` pairs,
    /// which render verbatim (the `# TYPE` line strips them).
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            let base = name.split('{').next().unwrap_or(name);
            out.push_str(&format!("# TYPE {base} counter\n{name} {value}\n"));
        }
        for (name, value) in &self.gauges {
            let base = name.split('{').next().unwrap_or(name);
            out.push_str(&format!("# TYPE {base} gauge\n{name} {value}\n"));
        }
        for h in &self.histograms {
            let name = &h.name;
            let base = name.split('{').next().unwrap_or(name);
            out.push_str(&format!("# TYPE {base} histogram\n"));
            let mut cumulative = 0u64;
            for (i, &c) in h.histogram.buckets().iter().enumerate() {
                cumulative = cumulative.saturating_add(c);
                let le =
                    if i + 1 < NUM_BUCKETS { format!("{}", 1u64 << i) } else { "+Inf".to_string() };
                out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {cumulative}\n"));
            }
            out.push_str(&format!("{name}_sum {}\n", h.histogram.sum()));
            out.push_str(&format!("{name}_count {}\n", h.histogram.count()));
        }
        out
    }
}

#[derive(Default)]
struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, u64>,
    histograms: BTreeMap<String, LatencyHistogram>,
}

/// A cloneable handle on one metrics registry. Every
/// [`crate::TuningService`] owns one (shared with its daemon when
/// served); the [`crate::FleetRouter`] keeps its own for router-side
/// metrics and merges the peers' in on demand.
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Arc<Mutex<Registry>>,
}

impl Telemetry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds to a monotonic counter.
    pub fn incr(&self, name: &str, by: u64) {
        let mut reg = self.inner.lock().expect("telemetry registry poisoned");
        let slot = reg.counters.entry(name.to_string()).or_insert(0);
        *slot = slot.saturating_add(by);
    }

    /// Sets a gauge to its current value.
    pub fn gauge(&self, name: &str, value: u64) {
        let mut reg = self.inner.lock().expect("telemetry registry poisoned");
        reg.gauges.insert(name.to_string(), value);
    }

    /// Records one raw observation into a named histogram.
    pub fn observe(&self, name: &str, value: u64) {
        let mut reg = self.inner.lock().expect("telemetry registry poisoned");
        reg.histograms.entry(name.to_string()).or_default().record(value);
    }

    /// Records a duration (as whole microseconds) into a named histogram.
    pub fn observe_since(&self, name: &str, start: Instant) {
        let us = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
        self.observe(name, us);
    }

    /// A point-in-time copy of everything, names sorted.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let reg = self.inner.lock().expect("telemetry registry poisoned");
        MetricsSnapshot {
            counters: reg.counters.iter().map(|(n, v)| (n.clone(), *v)).collect(),
            gauges: reg.gauges.iter().map(|(n, v)| (n.clone(), *v)).collect(),
            histograms: reg
                .histograms
                .iter()
                .map(|(n, h)| HistogramSnapshot { name: n.clone(), histogram: h.clone() })
                .collect(),
        }
    }
}

// ------------------------------------------------------------ event log

/// Event severity. Warn and above mirror to stderr.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    Debug,
    Info,
    Warn,
    Error,
}

impl Level {
    pub fn label(self) -> &'static str {
        match self {
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }
}

struct Sink {
    writer: Box<dyn Write + Send>,
    level: Level,
}

/// A seq-numbered structured event log writing flat-JSON lines. The
/// global instance ([`events`]) is what [`crate::log_event!`] emits to;
/// tests construct their own. Without a sink, only warn/error events do
/// anything (the stderr mirror); set `IOLB_EVENT_LOG=<path>` (and
/// optionally `IOLB_EVENT_LEVEL=debug|info|warn|error`) before first use
/// to capture the full lifecycle as JSONL.
#[derive(Default)]
pub struct EventLog {
    seq: AtomicU64,
    sink: Mutex<Option<Sink>>,
    /// Test hook: suppress the stderr mirror.
    quiet: AtomicU64,
}

impl EventLog {
    pub fn new() -> Self {
        Self::default()
    }

    /// Directs events at `level` and above into a JSONL writer.
    pub fn set_sink(&self, writer: Box<dyn Write + Send>, level: Level) {
        *self.sink.lock().expect("event sink poisoned") = Some(Sink { writer, level });
    }

    /// Silences the stderr mirror (tests that provoke warnings).
    pub fn set_quiet(&self, quiet: bool) {
        self.quiet.store(u64::from(quiet), Ordering::Relaxed);
    }

    /// Emits one event. The sequence number is assigned under the sink
    /// lock, so sink order always equals seq order; under
    /// `RAYON_NUM_THREADS=1` both are deterministic.
    pub fn emit(&self, level: Level, event: &str, fields: &[(&str, String)]) {
        let mut sink = self.sink.lock().expect("event sink poisoned");
        if level >= Level::Warn && self.quiet.load(Ordering::Relaxed) == 0 {
            let mut line = format!("iolb[{}] {event}", level.label());
            for (k, v) in fields {
                line.push_str(&format!(" {k}={v}"));
            }
            eprintln!("{line}");
        }
        let Some(s) = sink.as_mut() else { return };
        if level < s.level {
            return;
        }
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let mut line = format!(
            "{{\"seq\":{seq},\"level\":\"{}\",\"event\":\"{}\"",
            level.label(),
            escape(event)
        );
        for (k, v) in fields {
            line.push_str(&format!(",\"{}\":\"{}\"", escape(k), escape(v)));
        }
        line.push_str("}\n");
        // A failing sink must never take the serving path down with it.
        let _ = s.writer.write_all(line.as_bytes());
        let _ = s.writer.flush();
    }
}

/// The process-wide event log. First use installs a JSONL sink from
/// `IOLB_EVENT_LOG` / `IOLB_EVENT_LEVEL` if set.
pub fn events() -> &'static EventLog {
    static EVENTS: OnceLock<EventLog> = OnceLock::new();
    EVENTS.get_or_init(|| {
        let log = EventLog::new();
        if let Ok(path) = std::env::var("IOLB_EVENT_LOG") {
            let level = match std::env::var("IOLB_EVENT_LEVEL").as_deref() {
                Ok("debug") => Level::Debug,
                Ok("warn") => Level::Warn,
                Ok("error") => Level::Error,
                _ => Level::Info,
            };
            if let Ok(file) = std::fs::OpenOptions::new().create(true).append(true).open(&path) {
                log.set_sink(Box::new(file), level);
            }
        }
        log
    })
}

/// Emits one structured event through the global [`EventLog`]:
/// `log_event!(Warn, "daemon.persist_failed", dir = dir.display(), error = e)`.
/// Field values format through `Display`. Warn/error mirror to stderr;
/// everything lands in the JSONL sink when one is configured.
#[macro_export]
macro_rules! log_event {
    ($level:ident, $event:expr $(, $key:ident = $value:expr)* $(,)?) => {
        $crate::telemetry::events().emit(
            $crate::telemetry::Level::$level,
            $event,
            &[$((stringify!($key), ::std::string::ToString::to_string(&$value))),*],
        )
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_records_into_log_spaced_buckets() {
        let mut h = LatencyHistogram::new();
        for v in [0, 1, 2, 3, 4, 1000, u64::MAX] {
            h.record(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.buckets()[0], 2, "0 and 1 land in the <=1 bucket");
        assert_eq!(h.buckets()[1], 1);
        assert_eq!(h.buckets()[2], 2, "3 and 4 land in the <=4 bucket");
        assert_eq!(h.buckets()[10], 1, "1000 lands in the <=1024 bucket");
        assert_eq!(h.buckets()[NUM_BUCKETS - 1], 1, "u64::MAX overflows");
        assert_eq!(h.sum(), u64::MAX, "sum saturates, never wraps");
    }

    #[test]
    fn quantiles_read_bucket_upper_bounds() {
        let mut h = LatencyHistogram::new();
        assert_eq!(h.quantile(0.5), 0, "empty histogram reads 0");
        for v in 0..100u64 {
            h.record(v * 10); // 0..990 µs
        }
        assert_eq!(h.quantile(0.5), 512);
        assert_eq!(h.quantile(0.99), 1024);
        assert_eq!(h.quantile(1.0), 1024);
    }

    #[test]
    fn merge_conserves_counts_and_commutes() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        for v in [1, 5, 900, 1 << 20] {
            a.record(v);
        }
        for v in [2, 2, 70_000] {
            b.record(v);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.count(), a.count() + b.count());
        assert_eq!(ab.sum(), a.sum() + b.sum());
    }

    #[test]
    fn snapshot_merge_folds_by_name() {
        let t1 = Telemetry::new();
        t1.incr("requests_total", 3);
        t1.gauge("queue_len", 5);
        t1.observe("wait_us", 100);
        let t2 = Telemetry::new();
        t2.incr("requests_total", 4);
        t2.incr("evictions_total", 1);
        t2.observe("wait_us", 200);
        let mut merged = t1.snapshot();
        merged.merge(&t2.snapshot());
        assert_eq!(merged.counter("requests_total"), Some(7));
        assert_eq!(merged.counter("evictions_total"), Some(1));
        assert_eq!(merged.histogram("wait_us").unwrap().count(), 2);
        // Merging the other way lands on the same snapshot.
        let mut other = t2.snapshot();
        other.merge(&t1.snapshot());
        assert_eq!(merged, other);
    }

    #[test]
    fn prometheus_exposition_has_type_lines_and_cumulative_buckets() {
        let t = Telemetry::new();
        t.incr("iolb_requests_total", 2);
        t.observe("iolb_wait_us", 3);
        t.observe("iolb_wait_us", 5);
        let text = t.snapshot().to_prometheus();
        assert!(text.contains("# TYPE iolb_requests_total counter\niolb_requests_total 2\n"));
        assert!(text.contains("# TYPE iolb_wait_us histogram\n"));
        assert!(text.contains("iolb_wait_us_bucket{le=\"2\"} 0\n"));
        assert!(text.contains("iolb_wait_us_bucket{le=\"4\"} 1\n"));
        assert!(text.contains("iolb_wait_us_bucket{le=\"8\"} 2\n"));
        assert!(text.contains("iolb_wait_us_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("iolb_wait_us_sum 8\n"));
        assert!(text.contains("iolb_wait_us_count 2\n"));
        // Embedded labels render verbatim but the TYPE line strips them.
        let t = Telemetry::new();
        t.incr("fleet_requests{peer=\"a\"}", 1);
        let text = t.snapshot().to_prometheus();
        assert!(text.contains("# TYPE fleet_requests counter\nfleet_requests{peer=\"a\"} 1\n"));
    }

    #[test]
    fn event_log_assigns_dense_ordered_seqs() {
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let buffer = Arc::new(Mutex::new(Vec::new()));
        let log = EventLog::new();
        log.set_quiet(true);
        log.set_sink(Box::new(Shared(buffer.clone())), Level::Info);
        log.emit(Level::Info, "session.submit", &[("requests", "4".to_string())]);
        log.emit(Level::Debug, "queue.claim", &[]); // below sink level: dropped
        log.emit(Level::Warn, "daemon.persist_failed", &[("error", "disk on fire".to_string())]);
        let text = String::from_utf8(buffer.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"seq\":0,\"level\":\"info\",\"event\":\"session.submit\""));
        assert!(lines[1].starts_with("{\"seq\":1,\"level\":\"warn\""));
        assert!(lines[1].contains("\"error\":\"disk on fire\""));
        // Every line is the store's flat-object dialect.
        for line in lines {
            iolb_records::jsonl::parse_flat_object(line).expect("event line parses");
        }
    }

    #[test]
    fn from_parts_round_trips_and_rejects_foreign_arity() {
        let mut h = LatencyHistogram::new();
        for v in [3, 900, 1 << 24] {
            h.record(v);
        }
        let back = LatencyHistogram::from_parts(h.sum(), h.buckets()).unwrap();
        assert_eq!(back, h);
        assert!(LatencyHistogram::from_parts(0, &[1, 2, 3]).is_err());
    }
}
