//! `tune-bench kernels` → `tune-cache check-bench` round trip, plus the
//! validator's rejection cases over hand-tampered artifacts — the CI
//! gate that keeps a broken or regressed kernel benchmark from landing.

use std::path::PathBuf;
use std::process::{Command, Output};

const TUNE_BENCH: &str = env!("CARGO_BIN_EXE_tune-bench");
const TUNE_CACHE: &str = env!("CARGO_BIN_EXE_tune-cache");

fn temp_file(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("iolb-check-bench-{tag}-{}.json", std::process::id()))
}

fn check_bench(path: &PathBuf) -> Output {
    Command::new(TUNE_CACHE)
        .arg("check-bench")
        .arg(path)
        .output()
        .expect("run tune-cache check-bench")
}

/// A minimal well-formed kernels artifact (header + one GEMM row + one
/// conv row) with internally consistent speedup and roofline fields.
fn valid_kernels_text() -> String {
    concat!(
        "{\"schema\":\"iolb-bench-kernels\",\"v\":1,\"sizes\":\"64\",\"networks\":\"alexnet\",",
        "\"reps\":1,\"threads\":1,\"sram_kib\":32,\"rows\":2}\n",
        "{\"row\":\"gemm\",\"name\":\"gemm-64\",\"algo\":\"blocked\",\"shape\":\"64x64x64\",",
        "\"gflop\":0.000524288,\"scalar_gflops\":5.0,\"vector_gflops\":15.0,\"speedup\":3.0,",
        "\"q_lower_bytes\":1000.0,\"q_sched_bytes\":4000.0,\"roofline_gap\":4.0}\n",
        "{\"row\":\"conv\",\"name\":\"alexnet/conv1\",\"algo\":\"im2col\",",
        "\"shape\":\"3x227x227->96 11x11/4+0\",\"gflop\":0.21,\"scalar_gflops\":4.0,",
        "\"vector_gflops\":8.0,\"speedup\":2.0,\"q_lower_bytes\":0,\"q_sched_bytes\":500.0,",
        "\"roofline_gap\":0}\n",
    )
    .to_string()
}

#[test]
fn kernels_sweep_round_trips_through_check_bench() {
    let out_path = temp_file("roundtrip");
    // GEMM-only micro sweep: conv layers are exercised by the tensor
    // crate's bit-identity tests and would dominate this test's runtime.
    let sweep = Command::new(TUNE_BENCH)
        .args(["kernels", "--sizes", "32,48", "--networks", "", "--reps", "1", "-o"])
        .arg(&out_path)
        .output()
        .expect("run tune-bench kernels");
    assert!(sweep.status.success(), "sweep failed: {}", String::from_utf8_lossy(&sweep.stderr));
    let text = std::fs::read_to_string(&out_path).expect("artifact written");
    assert!(text.starts_with("{\"schema\":\"iolb-bench-kernels\",\"v\":2,"));
    assert_eq!(text.lines().count(), 3, "header + one row per swept size");
    assert_eq!(text.matches("\"threads\":1").count(), 3, "every row carries its thread count");

    let check = check_bench(&out_path);
    assert!(
        check.status.success(),
        "check-bench rejected a fresh sweep: {}",
        String::from_utf8_lossy(&check.stderr)
    );
    let stdout = String::from_utf8_lossy(&check.stdout);
    assert!(stdout.contains("check-bench OK"), "unexpected stdout: {stdout}");
    let _ = std::fs::remove_file(&out_path);
}

#[test]
fn valid_synthetic_artifact_passes() {
    let path = temp_file("valid");
    std::fs::write(&path, valid_kernels_text()).unwrap();
    let out = check_bench(&path);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn rejects_vector_slower_than_scalar_on_largest_gemm() {
    let path = temp_file("slow-vector");
    let text = valid_kernels_text()
        .replace("\"vector_gflops\":15.0,\"speedup\":3.0", "\"vector_gflops\":4.0,\"speedup\":0.8");
    std::fs::write(&path, text).unwrap();
    let out = check_bench(&path);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("vector path lost to scalar"), "unexpected stderr: {stderr}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn rejects_inconsistent_speedup() {
    let path = temp_file("bad-speedup");
    let text = valid_kernels_text().replace("\"speedup\":3.0", "\"speedup\":9.0");
    std::fs::write(&path, text).unwrap();
    let out = check_bench(&path);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("inconsistent with GFLOP/s ratio"), "unexpected stderr: {stderr}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn rejects_schedule_below_bound() {
    let path = temp_file("below-bound");
    let text = valid_kernels_text().replace(
        "\"q_lower_bytes\":1000.0,\"q_sched_bytes\":4000.0",
        "\"q_lower_bytes\":5000.0,\"q_sched_bytes\":4000.0",
    );
    std::fs::write(&path, text).unwrap();
    let out = check_bench(&path);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("fewer bytes"), "unexpected stderr: {stderr}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn rejects_row_count_mismatch() {
    let path = temp_file("row-count");
    let text = valid_kernels_text().replace("\"rows\":2", "\"rows\":3");
    std::fs::write(&path, text).unwrap();
    let out = check_bench(&path);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("declares 3 row(s), found 2"), "unexpected stderr: {stderr}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn rejects_unknown_schema() {
    let path = temp_file("schema");
    std::fs::write(&path, "{\"schema\":\"iolb-bench-nonsense\",\"v\":1}\n").unwrap();
    let out = check_bench(&path);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unexpected schema"), "unexpected stderr: {stderr}");
    let _ = std::fs::remove_file(&path);
}
