//! Criterion benchmarks of the theory machinery itself: `T(S)`
//! maximisation, lower-bound evaluation, pebble-game strategies, exact
//! pebbling, and min-dominator max-flow.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use iolb_core::composite::t_bound;
use iolb_core::phi_psi::{direct_steps, winograd_steps};
use iolb_core::shapes::{ConvShape, WinogradTile};
use iolb_core::{direct, winograd};
use iolb_pebble::conv_dag::direct_conv_dag;
use iolb_pebble::flow::min_dominator_size;
use iolb_pebble::{pebble_topological, Eviction};
use std::hint::black_box;

fn bounds(c: &mut Criterion) {
    let shape = ConvShape::square(256, 56, 128, 3, 1, 1);
    let mut group = c.benchmark_group("lower-bounds");
    group.bench_function("direct-closed-form", |b| {
        b.iter(|| black_box(direct::io_lower_bound(&shape, black_box(4096.0))))
    });
    group.bench_function("winograd-closed-form", |b| {
        b.iter(|| {
            black_box(winograd::io_lower_bound(&shape, WinogradTile::F2X3, black_box(4096.0)))
        })
    });
    group.bench_function("t-bound-direct-numeric", |b| {
        let steps = direct_steps(9.0);
        b.iter(|| black_box(t_bound(&steps, black_box(4096.0))))
    });
    group.bench_function("t-bound-winograd-numeric", |b| {
        let steps = winograd_steps(WinogradTile::F2X3);
        b.iter(|| black_box(t_bound(&steps, black_box(4096.0))))
    });
    group.finish();
}

fn pebbling(c: &mut Criterion) {
    let mut group = c.benchmark_group("pebbling");
    group.sample_size(20);
    for (cin, hw) in [(2usize, 4usize), (3, 5)] {
        let shape = ConvShape::new(cin, hw, hw, 2, 3, 3, 1, 0);
        let dag = direct_conv_dag(&shape);
        group.bench_with_input(
            BenchmarkId::new("belady", format!("{cin}x{hw}x{hw}")),
            &dag,
            |b, dag| b.iter(|| black_box(pebble_topological(dag, 24, Eviction::Belady).io)),
        );
        group.bench_with_input(
            BenchmarkId::new("lru", format!("{cin}x{hw}x{hw}")),
            &dag,
            |b, dag| b.iter(|| black_box(pebble_topological(dag, 24, Eviction::Lru).io)),
        );
        let outputs = dag.outputs();
        group.bench_with_input(
            BenchmarkId::new("min-dominator", format!("{cin}x{hw}x{hw}")),
            &dag,
            |b, dag| b.iter(|| black_box(min_dominator_size(dag, &outputs))),
        );
    }
    group.finish();
}

fn tile_selection(c: &mut Criterion) {
    use iolb_core::optimality::{best_tile, TileKind};
    let mut group = c.benchmark_group("tile-selection");
    for hw in [28usize, 56, 112] {
        let shape = ConvShape::square(256, hw, 128, 3, 1, 1);
        group.bench_with_input(BenchmarkId::new("best-tile", hw), &shape, |b, s| {
            b.iter(|| black_box(best_tile(s, TileKind::Direct, 8192.0)))
        });
    }
    group.finish();
}

criterion_group!(benches, bounds, pebbling, tile_selection);
criterion_main!(benches);
