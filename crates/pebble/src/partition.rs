//! S-partition verification (paper §2.1, Properties 1–4).
//!
//! An S-partition splits the DAG's vertices into classes `V_1..V_h` such
//! that (1) the classes partition `V`; (2) each class has a dominator set
//! of size at most `S`; (3) each class's *minimum set* (vertices with no
//! successor inside the class) has at most `S` vertices; (4) the class
//! quotient graph is acyclic. `P(S)`, the least possible `h`, drives
//! Theorem 2.1; this module checks candidate partitions and builds simple
//! valid ones, used by tests to upper-bound `P(S)` empirically.

use crate::dag::{Dag, VertexId};
use crate::flow::min_dominator_size;

/// A candidate S-partition: `classes[i]` lists the vertices of `V_{i+1}`.
#[derive(Debug, Clone)]
pub struct SPartition {
    pub classes: Vec<Vec<VertexId>>,
}

/// Why a candidate partition fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SPartitionError {
    /// Property 1: a vertex is missing or appears twice.
    NotAPartition,
    /// Property 2: class `idx` has minimum dominator size `needed > s`.
    DominatorTooLarge { idx: usize, needed: i64 },
    /// Property 3: class `idx` has a minimum set of size `size > s`.
    MinimumSetTooLarge { idx: usize, size: usize },
    /// Property 4: the quotient graph of classes has a cycle.
    CyclicClasses,
}

impl std::fmt::Display for SPartitionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SPartitionError::NotAPartition => write!(f, "classes do not partition V"),
            SPartitionError::DominatorTooLarge { idx, needed } => {
                write!(f, "class {idx} needs a dominator of size {needed}")
            }
            SPartitionError::MinimumSetTooLarge { idx, size } => {
                write!(f, "class {idx} has minimum set of size {size}")
            }
            SPartitionError::CyclicClasses => write!(f, "classes are cyclically dependent"),
        }
    }
}

impl SPartition {
    /// Number of classes `h`.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// Whether there are no classes.
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// Verifies Properties 1–4 against `dag` with parameter `s`.
    ///
    /// Property 2 is decided exactly: the minimum dominator size of each
    /// class is a min vertex cut, computed by max-flow ([`crate::flow`]).
    pub fn verify(&self, dag: &Dag, s: usize) -> Result<(), SPartitionError> {
        let n = dag.len();
        // Property 1.
        let mut owner = vec![usize::MAX; n];
        let mut count = 0usize;
        for (ci, class) in self.classes.iter().enumerate() {
            for &v in class {
                if (v as usize) >= n || owner[v as usize] != usize::MAX {
                    return Err(SPartitionError::NotAPartition);
                }
                owner[v as usize] = ci;
                count += 1;
            }
        }
        if count != n {
            return Err(SPartitionError::NotAPartition);
        }

        // Property 2: min dominator size per class.
        for (ci, class) in self.classes.iter().enumerate() {
            let needed = min_dominator_size(dag, class);
            if needed > s as i64 {
                return Err(SPartitionError::DominatorTooLarge { idx: ci, needed });
            }
        }

        // Property 3: minimum set size per class.
        for (ci, class) in self.classes.iter().enumerate() {
            let in_class = |v: VertexId| owner[v as usize] == ci;
            let size =
                class.iter().filter(|&&v| !dag.succs(v).iter().any(|&su| in_class(su))).count();
            if size > s {
                return Err(SPartitionError::MinimumSetTooLarge { idx: ci, size });
            }
        }

        // Property 4: quotient acyclicity via Kahn on class graph.
        let h = self.classes.len();
        let mut adj = vec![Vec::<usize>::new(); h];
        let mut indeg = vec![0usize; h];
        for v in 0..n as VertexId {
            for &su in dag.succs(v) {
                let (a, b) = (owner[v as usize], owner[su as usize]);
                if a != b {
                    adj[a].push(b);
                }
            }
        }
        for edges in adj.iter_mut() {
            edges.sort_unstable();
            edges.dedup();
        }
        for edges in &adj {
            for &b in edges {
                indeg[b] += 1;
            }
        }
        let mut queue: Vec<usize> = (0..h).filter(|&i| indeg[i] == 0).collect();
        let mut seen = 0;
        let mut head = 0;
        while head < queue.len() {
            let c = queue[head];
            head += 1;
            seen += 1;
            for &b in &adj[c] {
                indeg[b] -= 1;
                if indeg[b] == 0 {
                    queue.push(b);
                }
            }
        }
        if seen != h {
            return Err(SPartitionError::CyclicClasses);
        }
        Ok(())
    }
}

/// Builds a valid S-partition greedily: walk the topological order, packing
/// vertices into the current class while its exact dominator size and
/// minimum-set size both stay within `S`. Always succeeds for `s >= 1`
/// (a singleton class trivially satisfies Properties 2–3 when every vertex
/// has a dominator of size 1 — itself... which holds as each vertex is
/// dominated by `{v}`). The class count upper-bounds `P(S)`.
pub fn greedy_partition(dag: &Dag, s: usize) -> SPartition {
    assert!(s >= 1);
    let order = dag.topo_order();
    let mut classes: Vec<Vec<VertexId>> = Vec::new();
    let mut current: Vec<VertexId> = Vec::new();
    for &v in &order {
        current.push(v);
        let dom_ok = min_dominator_size(dag, &current) <= s as i64;
        let min_ok = {
            let in_cur = |x: VertexId| current.contains(&x);
            current.iter().filter(|&&u| !dag.succs(u).iter().any(|&su| in_cur(su))).count() <= s
        };
        if !(dom_ok && min_ok) {
            current.pop();
            classes.push(std::mem::take(&mut current));
            current.push(v);
        }
    }
    if !current.is_empty() {
        classes.push(current);
    }
    SPartition { classes }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Dag {
        let mut d = Dag::new();
        let a = d.add_vertex(0);
        let b = d.add_vertex(0);
        let c = d.add_vertex(0);
        let e = d.add_vertex(0);
        d.add_edge(a, b);
        d.add_edge(a, c);
        d.add_edge(b, e);
        d.add_edge(c, e);
        d
    }

    #[test]
    fn whole_graph_single_class() {
        let d = diamond();
        // One class containing everything: dominator {input} of size 1;
        // minimum set {output} of size 1.
        let p = SPartition { classes: vec![vec![0, 1, 2, 3]] };
        assert_eq!(p.verify(&d, 1), Ok(()));
    }

    #[test]
    fn missing_vertex_fails_property_1() {
        let d = diamond();
        let p = SPartition { classes: vec![vec![0, 1, 2]] };
        assert_eq!(p.verify(&d, 4), Err(SPartitionError::NotAPartition));
    }

    #[test]
    fn duplicate_vertex_fails_property_1() {
        let d = diamond();
        let p = SPartition { classes: vec![vec![0, 1], vec![1, 2, 3]] };
        assert_eq!(p.verify(&d, 4), Err(SPartitionError::NotAPartition));
    }

    #[test]
    fn dominator_property_detected() {
        // Two independent chains; class = both middle vertices requires a
        // dominator of 2 > 1.
        let mut d = Dag::new();
        let a0 = d.add_vertex(0);
        let a1 = d.add_vertex(0);
        let a2 = d.add_vertex(0);
        let b0 = d.add_vertex(0);
        let b1 = d.add_vertex(0);
        let b2 = d.add_vertex(0);
        d.add_edge(a0, a1);
        d.add_edge(a1, a2);
        d.add_edge(b0, b1);
        d.add_edge(b1, b2);
        let p = SPartition { classes: vec![vec![a0, b0], vec![a1, b1], vec![a2, b2]] };
        match p.verify(&d, 1) {
            Err(SPartitionError::DominatorTooLarge { needed, .. }) => assert_eq!(needed, 2),
            other => panic!("expected dominator violation, got {other:?}"),
        }
        assert_eq!(p.verify(&d, 2), Ok(()));
    }

    #[test]
    fn minimum_set_property_detected() {
        // A class of two sink-like vertices has minimum set 2.
        let d = diamond();
        let p = SPartition { classes: vec![vec![0], vec![1, 2], vec![3]] };
        match p.verify(&d, 1) {
            Err(SPartitionError::MinimumSetTooLarge { size, .. }) => assert_eq!(size, 2),
            other => panic!("expected minimum-set violation, got {other:?}"),
        }
        assert_eq!(p.verify(&d, 2), Ok(()));
    }

    #[test]
    fn cyclic_classes_detected() {
        // Chain 0->1->2->3 split as {0,2} and {1,3}: edges 0->1 (A->B),
        // 1->2 (B->A) form a 2-cycle in the quotient.
        let mut d = Dag::new();
        let v: Vec<_> = (0..4).map(|_| d.add_vertex(0)).collect();
        for i in 0..3 {
            d.add_edge(v[i], v[i + 1]);
        }
        let p = SPartition { classes: vec![vec![0, 2], vec![1, 3]] };
        assert_eq!(p.verify(&d, 4), Err(SPartitionError::CyclicClasses));
    }

    #[test]
    fn greedy_partition_is_valid() {
        let d = diamond();
        for s in [1, 2, 3] {
            let p = greedy_partition(&d, s);
            assert_eq!(p.verify(&d, s), Ok(()), "S={s}");
        }
    }

    #[test]
    fn greedy_class_count_shrinks_with_s() {
        // Wide layer graph.
        let mut d = Dag::new();
        let ins: Vec<_> = (0..6).map(|_| d.add_vertex(0)).collect();
        for i in 0..6 {
            let o = d.add_vertex(1);
            d.add_edge(ins[i], o);
        }
        let h1 = greedy_partition(&d, 1).len();
        let h4 = greedy_partition(&d, 4).len();
        let h12 = greedy_partition(&d, 12).len();
        assert!(h1 >= h4 && h4 >= h12, "{h1} {h4} {h12}");
        assert_eq!(h12, 1);
    }

    #[test]
    fn greedy_bounds_p_s_from_above_and_theorem_2_1_holds() {
        // Theorem 2.1: Q >= S * (P(2S) - 1) with P(2S) <= greedy count.
        // Use the exact pebbler to confirm our greedy h never *violates*
        // the relation Q_exact >= S * (P(2S) - 1) — since greedy h is an
        // UPPER bound on P(2S), this is only a smoke test that the numbers
        // are mutually consistent on a small dense DAG.
        let mut d = Dag::new();
        let ins: Vec<_> = (0..3).map(|_| d.add_vertex(0)).collect();
        for _ in 0..3 {
            let o = d.add_vertex(1);
            for &i in &ins {
                d.add_edge(i, o);
            }
        }
        let s = 4;
        let q = crate::exact::min_io(&d, s, 1 << 22).unwrap();
        // P(2S) can't exceed the greedy class count at 2S.
        let h_upper = greedy_partition(&d, 2 * s).len() as u64;
        assert!(h_upper >= 1);
        // The theorem gives a lower bound via the *true* P(2S) <= h_upper,
        // so S*(h_upper - 1) may exceed Q — but with h_upper = 1 the bound
        // is 0 and trivially holds.
        assert!(q >= s as u64 * (1u64.saturating_sub(1)));
    }
}
