//! Analytic planning: the theory-guided defaults every tuning consumer
//! shares.
//!
//! Three decisions recur in every layer-level consumer (end-to-end
//! inference timing, the figure harnesses, the background tuning
//! service), and they must agree across consumers so that results are
//! comparable and cached records replay exactly:
//!
//! * [`algo_candidates`] — which algorithms a layer shape admits (direct
//!   always; the two Winograd variants for square 3x3 stride-1 kernels);
//! * [`fast_config`] — the no-search configuration: the best integer
//!   tile under the paper's optimality condition `xy = Rz`, with a
//!   default thread split — both the "fast mode" planner and the warm
//!   seed the tuned mode starts from;
//! * [`tuner_setup`] — the canonical single-workload tuner: pruned
//!   space, GBT cost model, parallel random walk seeded at
//!   [`fast_config`], fixed batch/patience. Given the same
//!   `(shape, kind, device, budget, seed)` it reproduces the same
//!   tuning trajectory everywhere — the determinism contract the
//!   tuning service's "drained == eager" guarantee is built on.
//!
//! These lived in `iolb-cnn` originally; they moved here so crates below
//! the CNN layer (notably `iolb-service`) can plan without a dependency
//! cycle. `iolb_cnn::inference` re-exports them.

use crate::engine::TuneParams;
use crate::measure::Measurer;
use crate::search::walk::ParallelRandomWalk;
use crate::space::ConfigSpace;
use crate::GbtCostModel;
use iolb_core::epilogue::Epilogue;
use iolb_core::optimality::{best_tile, divisors, TileKind};
use iolb_core::shapes::{ConvShape, WinogradTile};
use iolb_dataflow::config::ScheduleConfig;
use iolb_gpusim::DeviceSpec;
use iolb_tensor::layout::Layout;

/// Picks a default thread split for a tile: factors of (x, y, z) whose
/// product lands near 256 threads.
fn default_threads(x: usize, y: usize, z: usize) -> (usize, usize, usize) {
    let pick = |n: usize, cap: usize| divisors(n).into_iter().rfind(|&d| d <= cap).unwrap_or(1);
    let nxt = pick(x, 16);
    let nyt = pick(y, 16);
    let budget = 1024 / (nxt * nyt).max(1);
    let nzt = pick(z, budget.clamp(1, 32));
    (nxt, nyt, nzt)
}

/// Builds the fast-mode configuration for a layer: the best
/// optimality-condition tile fitting the stage buffers into `S_b`.
pub fn fast_config(
    shape: &ConvShape,
    kind: TileKind,
    device: &DeviceSpec,
) -> Option<ScheduleConfig> {
    let sb_bytes = (device.smem_per_sm / 2).min(device.max_smem_per_block).min(48 * 1024);
    // Leave room for the stage buffers inside S_b by searching with a
    // deflated tile budget, then validating the complete footprint.
    for deflate in [0.75, 0.5, 0.3, 0.15, 0.05] {
        let budget = sb_bytes as f64 / 4.0 * deflate;
        let Some(t) = best_kind_tile(shape, kind, budget) else { continue };
        let (nxt, nyt, nzt) = default_threads(t.0, t.1, t.2);
        let cfg =
            ScheduleConfig { x: t.0, y: t.1, z: t.2, nxt, nyt, nzt, sb_bytes, layout: Layout::Chw };
        if cfg.validate(shape, kind, device.smem_per_sm, false).is_ok() {
            return Some(cfg);
        }
    }
    None
}

/// Picks the read-I/O-minimising tile for the kind. Direct tiles come from
/// the core solver; Winograd tiles are enumerated over the `e`-padded
/// output extents (divisor-of-13 tiles don't exist, padded 14x14 ones do).
fn best_kind_tile(shape: &ConvShape, kind: TileKind, budget: f64) -> Option<(usize, usize, usize)> {
    match kind {
        TileKind::Direct => best_tile(shape, kind, budget).map(|c| (c.tile.x, c.tile.y, c.tile.z)),
        TileKind::Winograd(w) => {
            let (hp, wp) = iolb_dataflow::config::padded_out(shape, kind);
            let mut best: Option<((usize, usize, usize), f64)> = None;
            for &x in divisors(hp).iter().filter(|&&d| d % w.e == 0) {
                for &y in divisors(wp).iter().filter(|&&d| d % w.e == 0) {
                    for &z in &divisors(shape.cout) {
                        let tile = iolb_core::optimality::Tile { x, y, z };
                        if kind.accumulator_elems(&tile) > budget {
                            continue;
                        }
                        let io = kind.exact_read_io(shape, &tile);
                        if best.as_ref().is_none_or(|&(_, b)| io < b) {
                            best = Some(((x, y, z), io));
                        }
                    }
                }
            }
            best.map(|(t, _)| t)
        }
    }
}

/// The algorithm candidates a planner considers for a layer: direct
/// always, the two Winograd variants when the shape admits them.
pub fn algo_candidates(shape: &ConvShape) -> Vec<(TileKind, &'static str)> {
    let mut candidates: Vec<(TileKind, &'static str)> = vec![(TileKind::Direct, "direct")];
    if shape.kh == shape.kw && shape.kh == 3 && shape.stride == 1 {
        candidates.push((TileKind::Winograd(WinogradTile::F2X3), "winograd-F2x3"));
        candidates.push((TileKind::Winograd(WinogradTile::F4X3), "winograd-F4x3"));
    }
    candidates
}

/// Everything one single-workload tuning run needs, pre-wired the
/// canonical way.
pub struct TunerSetup {
    pub space: ConfigSpace,
    pub measurer: Measurer,
    pub model: GbtCostModel,
    pub searcher: ParallelRandomWalk,
    pub params: TuneParams,
}

/// The canonical per-workload tuner: pruned space, GBT model, parallel
/// random walk seeded at [`fast_config`], `batch = 8`,
/// `patience = budget` (so a run with budget `b` spends exactly `b`
/// attempts unless the space is exhausted).
///
/// Every consumer that wants replayable, comparable per-workload tuning
/// (CNN inference timing, the tuning service's background workers and
/// its eager reference runs) must build its runs through this function:
/// the trajectory of [`crate::engine::tune_with_store`] is a pure
/// function of this setup plus the store's records for the workload.
pub fn tuner_setup(
    shape: &ConvShape,
    kind: TileKind,
    device: &DeviceSpec,
    budget: usize,
    seed: u64,
) -> TunerSetup {
    tuner_setup_fused(shape, kind, Epilogue::None, device, budget, seed)
}

/// The canonical tuner for a fused conv→epilogue chain: identical to
/// [`tuner_setup`] except the space honours the epilogue's tiling grid
/// and the measurer folds the analytic fused-epilogue term into every
/// cost. Warm seeds from [`fast_config`] that fall off the fused tile
/// grid are dropped (the walk then seeds from the space itself), so the
/// trajectory stays a pure function of
/// `(shape, kind, epilogue, device, budget, seed)`.
pub fn tuner_setup_fused(
    shape: &ConvShape,
    kind: TileKind,
    epilogue: Epilogue,
    device: &DeviceSpec,
    budget: usize,
    seed: u64,
) -> TunerSetup {
    let space = ConfigSpace::fused(*shape, kind, device.smem_per_sm, true, epilogue);
    let measurer = Measurer::new(device.clone(), *shape, kind).with_epilogue(epilogue);
    let model = GbtCostModel::default();
    let mut seeds: Vec<ScheduleConfig> = fast_config(shape, kind, device).into_iter().collect();
    if !epilogue.is_none() {
        // A fused space excludes tiles off the pool grid; an off-grid
        // warm seed would be re-measured forever without ever being
        // servable. (The unfused seed list is deliberately unfiltered —
        // its trajectory predates fusion and must not move.)
        seeds.retain(|c| space.contains(c));
    }
    let searcher = ParallelRandomWalk::with_seeds(seeds);
    let params = TuneParams { max_measurements: budget, batch: 8, patience: budget, seed };
    TunerSetup { space, measurer, model, searcher, params }
}

/// Default anchor floor: dimensions at or below this stay exact when a
/// workload is anchored; larger dimensions round up to the next power
/// of two. Small extents (late-stage feature maps, narrow channel
/// counts) are exactly where tile feasibility is most shape-sensitive,
/// so they never share a bucket with a different extent.
pub const ANCHOR_FLOOR: usize = 16;

/// Anchors one dimension: exact at or below `floor`, next power of two
/// above it. Idempotent — a power of two maps to itself, and an
/// anchored value above the floor stays above the floor.
pub fn anchor_dim(d: usize, floor: usize) -> usize {
    if d <= floor {
        d
    } else {
        d.next_power_of_two()
    }
}

/// Anchors a shape's data dimensions (H/W/C/K) to their buckets.
/// Batch, kernel extents, stride and padding stay exact: they change
/// the algorithm candidates and the schedule constraint structure, not
/// just the problem scale, so they never merge.
pub fn anchor_shape(shape: &ConvShape, floor: usize) -> ConvShape {
    ConvShape {
        cin: anchor_dim(shape.cin, floor),
        hin: anchor_dim(shape.hin, floor),
        win: anchor_dim(shape.win, floor),
        cout: anchor_dim(shape.cout, floor),
        ..*shape
    }
}

/// The anchor-bucket representative of a workload: same algorithm,
/// device and shared memory, anchored shape.
pub fn anchor_workload(workload: &iolb_records::Workload, floor: usize) -> iolb_records::Workload {
    iolb_records::Workload { shape: anchor_shape(&workload.shape, floor), ..workload.clone() }
}

/// The secondary store key: the anchored workload's fingerprint,
/// prefixed with the floor it was computed under so indexes built with
/// different floors can never alias each other.
pub fn anchor_fingerprint(workload: &iolb_records::Workload, floor: usize) -> String {
    format!("a{floor}|{}", anchor_workload(workload, floor).fingerprint())
}

/// One member of a batch tuning call ([`crate::engine::tune_batch`]): a
/// layer shape plus the algorithm to tune it under — and, for a fused
/// chain, its epilogue. The device, budget and seed are batch-wide — a
/// batch is "one network on one device".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchRequest {
    pub shape: ConvShape,
    pub kind: TileKind,
    /// Fused epilogue of the chain; [`Epilogue::None`] for a bare conv.
    pub epilogue: Epilogue,
}

impl BatchRequest {
    /// A bare-conv request (the pre-fusion constructor shape).
    pub fn bare(shape: ConvShape, kind: TileKind) -> Self {
        Self { shape, kind, epilogue: Epilogue::None }
    }

    /// The record-store identity of this request on a device.
    pub fn workload(&self, device: &DeviceSpec) -> iolb_records::Workload {
        iolb_records::Workload::new(self.shape, self.kind, device.name, device.smem_per_sm)
            .with_epilogue(self.epilogue)
    }

    /// Canonical flat-JSON wire line for this request: the shape and
    /// algorithm under the same field names the record codec uses, so
    /// the socket protocol and the store files share one vocabulary.
    /// A fused chain adds an `"epi"` field after `"algo"` (mirroring
    /// the record codec); bare convs emit the pre-fusion line
    /// byte-identically, so old peers interoperate.
    pub fn to_wire_line(&self) -> String {
        let s = &self.shape;
        let epi = if self.epilogue.is_none() {
            String::new()
        } else {
            format!("\"epi\":\"{}\",", self.epilogue.tag())
        };
        format!(
            concat!(
                "{{\"algo\":\"{}\",{}\"batch\":{},\"cin\":{},\"hin\":{},\"win\":{},",
                "\"cout\":{},\"kh\":{},\"kw\":{},\"stride\":{},\"pad\":{}}}"
            ),
            iolb_records::record::algo_tag(self.kind),
            epi,
            s.batch,
            s.cin,
            s.hin,
            s.win,
            s.cout,
            s.kh,
            s.kw,
            s.stride,
            s.pad,
        )
    }

    /// Parses a line written by [`to_wire_line`](Self::to_wire_line).
    /// Rejects malformed JSON, missing fields, unknown algorithm tags
    /// and invalid shapes (with a reason) — never panics on hostile
    /// input.
    pub fn from_wire_line(line: &str) -> Result<Self, String> {
        let fields = iolb_records::jsonl::parse_flat_object(line)?;
        let get = |key: &str| -> Result<&iolb_records::jsonl::Value, String> {
            fields
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| format!("missing field {key:?}"))
        };
        let kind = iolb_records::record::parse_algo_tag(get("algo")?.as_str("algo")?)?;
        let epilogue = match fields.iter().find(|(k, _)| k == "epi") {
            Some((_, v)) => Epilogue::parse_tag(v.as_str("epi")?)?,
            None => Epilogue::None,
        };
        let dim = |key: &str| -> Result<usize, String> { get(key)?.as_usize(key) };
        let shape = ConvShape {
            batch: dim("batch")?,
            cin: dim("cin")?,
            hin: dim("hin")?,
            win: dim("win")?,
            cout: dim("cout")?,
            kh: dim("kh")?,
            kw: dim("kw")?,
            stride: dim("stride")?,
            pad: dim("pad")?,
        };
        shape.validate().map_err(|e| format!("invalid shape: {e}"))?;
        Ok(Self { shape, kind, epilogue })
    }
}

/// Deduplicates a batch of requests by workload fingerprint: repeated
/// layer shapes (VGG's stacked 3x3 blocks, ResNet's repeated stages)
/// collapse onto one canonical tuner setup instead of rebuilding — and
/// re-running — one per occurrence.
///
/// Returns the unique requests in first-seen order plus, per original
/// request, the index of its unique representative. This is the
/// network-level planning step: dedup is pure bookkeeping, so it costs
/// nothing next to measurement, and everything downstream (the tuning
/// service's sessions, [`crate::engine::tune_batch`]) builds on it.
pub fn dedup_requests(
    requests: &[BatchRequest],
    device: &DeviceSpec,
) -> (Vec<BatchRequest>, Vec<usize>) {
    let mut unique: Vec<BatchRequest> = Vec::new();
    let mut by_fingerprint: std::collections::BTreeMap<String, usize> =
        std::collections::BTreeMap::new();
    let mut representative = Vec::with_capacity(requests.len());
    for req in requests {
        let fp = req.workload(device).fingerprint();
        let at = *by_fingerprint.entry(fp).or_insert_with(|| {
            unique.push(*req);
            unique.len() - 1
        });
        representative.push(at);
    }
    (unique, representative)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device() -> DeviceSpec {
        DeviceSpec::v100()
    }

    #[test]
    fn fast_config_is_valid_for_common_shapes() {
        for shape in [
            ConvShape::square(64, 28, 64, 3, 1, 1),
            ConvShape::new(96, 54, 54, 16, 1, 1, 1, 0),
            ConvShape::new(128, 17, 17, 128, 1, 7, 1, 3),
        ] {
            let cfg = fast_config(&shape, TileKind::Direct, &device())
                .unwrap_or_else(|| panic!("no fast config for {shape}"));
            assert!(cfg.validate(&shape, TileKind::Direct, device().smem_per_sm, false).is_ok());
        }
    }

    #[test]
    fn algo_candidates_gate_winograd_on_3x3_stride_1() {
        assert_eq!(algo_candidates(&ConvShape::square(64, 28, 64, 3, 1, 1)).len(), 3);
        assert_eq!(algo_candidates(&ConvShape::square(64, 28, 64, 3, 2, 1)).len(), 1);
        assert_eq!(algo_candidates(&ConvShape::new(64, 17, 17, 64, 1, 7, 1, 3)).len(), 1);
    }

    #[test]
    fn batch_requests_round_trip_over_the_wire_line() {
        use iolb_core::shapes::WinogradTile;
        for kind in [
            TileKind::Direct,
            TileKind::Winograd(WinogradTile::F2X3),
            TileKind::Winograd(WinogradTile::F4X3),
        ] {
            let req = BatchRequest::bare(ConvShape::square(64, 28, 32, 3, 1, 1), kind);
            assert!(!req.to_wire_line().contains("epi"), "bare line must not grow a field");
            let back = BatchRequest::from_wire_line(&req.to_wire_line()).unwrap();
            assert_eq!(back, req);
            for epilogue in [Epilogue::Relu, Epilogue::ReluPool { k: 2 }] {
                let fused = BatchRequest { epilogue, ..req };
                let line = fused.to_wire_line();
                assert!(line.contains("\"epi\""), "fused line missing epi: {line}");
                assert_eq!(BatchRequest::from_wire_line(&line).unwrap(), fused);
            }
        }
        for (line, why) in [
            ("", "empty"),
            ("{\"algo\":\"direct\"}", "missing shape fields"),
            ("{\"algo\":\"im2col\",\"batch\":1,\"cin\":1,\"hin\":4,\"win\":4,\"cout\":1,\"kh\":1,\"kw\":1,\"stride\":1,\"pad\":0}", "unknown algo"),
            ("{\"algo\":\"direct\",\"batch\":1,\"cin\":0,\"hin\":4,\"win\":4,\"cout\":1,\"kh\":1,\"kw\":1,\"stride\":1,\"pad\":0}", "invalid shape"),
        ] {
            assert!(BatchRequest::from_wire_line(line).is_err(), "{why}: accepted {line:?}");
        }
    }

    #[test]
    fn anchoring_is_idempotent_and_respects_the_floor() {
        for floor in [0, 8, ANCHOR_FLOOR, 64] {
            for d in [1, 3, 13, 14, 16, 17, 27, 54, 96, 224, 1000] {
                let once = anchor_dim(d, floor);
                assert_eq!(anchor_dim(once, floor), once, "anchor_dim({d}, {floor})");
                if d <= floor {
                    assert_eq!(once, d, "at or below the floor stays exact");
                } else {
                    assert!(once >= d, "anchoring never shrinks a dimension");
                    assert!(once.is_power_of_two());
                }
            }
        }
        let shape = ConvShape::new(96, 54, 54, 16, 1, 1, 1, 0);
        let anchored = anchor_shape(&shape, ANCHOR_FLOOR);
        assert_eq!(anchor_shape(&anchored, ANCHOR_FLOOR), anchored);
        assert_eq!((anchored.cin, anchored.hin, anchored.win), (128, 64, 64));
        assert_eq!(anchored.cout, 16, "cout sits on the floor and stays exact");
        assert_eq!(
            (anchored.batch, anchored.kh, anchored.kw, anchored.stride, anchored.pad),
            (shape.batch, shape.kh, shape.kw, shape.stride, shape.pad),
            "structural fields never anchor"
        );
    }

    #[test]
    fn anchor_fingerprints_bucket_nearby_shapes_and_embed_the_floor() {
        let wl = |hin: usize, win: usize| {
            iolb_records::Workload::new(
                ConvShape::new(96, hin, win, 24, 1, 1, 1, 0),
                TileKind::Direct,
                "Tesla V100",
                96 * 1024,
            )
        };
        // In-bucket neighbors share the anchor key but not the exact key.
        assert_ne!(wl(54, 54).fingerprint(), wl(52, 53).fingerprint());
        assert_eq!(
            anchor_fingerprint(&wl(54, 54), ANCHOR_FLOOR),
            anchor_fingerprint(&wl(52, 53), ANCHOR_FLOOR)
        );
        // Crossing a power of two changes the bucket.
        assert_ne!(
            anchor_fingerprint(&wl(54, 54), ANCHOR_FLOOR),
            anchor_fingerprint(&wl(70, 54), ANCHOR_FLOOR)
        );
        // The floor is part of the key: different floors never alias.
        assert_ne!(
            anchor_fingerprint(&wl(54, 54), ANCHOR_FLOOR),
            anchor_fingerprint(&wl(54, 54), 8)
        );
    }

    #[test]
    fn tuner_setup_is_reproducible() {
        // Two setups from the same inputs drive identical tuning runs.
        let shape = ConvShape::square(32, 14, 32, 3, 1, 1);
        let run = || {
            let mut s = tuner_setup(&shape, TileKind::Direct, &device(), 16, 7);
            crate::engine::tune(&s.space, &s.measurer, &mut s.model, &mut s.searcher, s.params)
                .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.best, b.best);
        assert_eq!(a.best_ms.to_bits(), b.best_ms.to_bits());
    }
}
