//! Functional CPU execution of the tiled dataflows.
//!
//! The simulator establishes the schedules' I/O behaviour; this module
//! establishes their *correctness* by actually running them: thread blocks
//! become rayon-scoped worker tasks, shared memory becomes a per-block
//! scratch buffer with exactly the schedule's staging structure (resident
//! output tile + one `x' * y' * 1` input stage + the stage's weights), and
//! the channel-sliding loop is executed literally. Every path is verified
//! against `iolb_tensor::conv_ref`.
//!
//! Both executors honour the `IOLB_KERNEL=scalar|vector` switch (see
//! [`KernelPath`]): the vector variants restructure only *how* the same
//! per-element folds are computed (row-wise accumulators, hoisted kernel
//! transforms, flat scratch), never the order of terms within one output
//! element — so the two paths are bit-identical, like the rest of the
//! compute substrate.

//!
//! Fused conv→epilogue chains run through [`execute_direct_fused`] /
//! [`execute_winograd_fused`]: the epilogue (ReLU, ReLU + non-overlapping
//! max-pool) is applied to the block's *resident* output tile before the
//! single write-back, so the intermediate conv output never touches the
//! output tensor — and the result is bit-identical to composing the
//! unfused executor with the standalone [`iolb_tensor::ops`] passes,
//! because both sides share the same per-element expressions.

use crate::config::ScheduleConfig;
use iolb_core::epilogue::Epilogue;
use iolb_core::shapes::{ConvShape, WinogradTile};
use iolb_tensor::conv_ref::ConvParams;
use iolb_tensor::kernel::KernelPath;
use iolb_tensor::ops::relu_val;
use iolb_tensor::tensor::Tensor4;
use iolb_tensor::winograd_math::{generate, matmul_flat, Mat};

/// Derives the [`ConvShape`] of an input/weight pair.
pub fn shape_of(input: &Tensor4, weights: &Tensor4, params: ConvParams) -> ConvShape {
    ConvShape {
        batch: input.n,
        cin: input.c,
        hin: input.h,
        win: input.w,
        cout: weights.n,
        kh: weights.h,
        kw: weights.w,
        stride: params.stride,
        pad: params.pad,
    }
}

/// Executes the direct dataflow of §5.2 on the CPU.
///
/// Requires `x | H_out`, `y | W_out`, `z | C_out` (as the schedule does).
/// `workers` caps the number of OS threads processing blocks.
pub fn execute_direct(
    input: &Tensor4,
    weights: &Tensor4,
    params: ConvParams,
    cfg: &ScheduleConfig,
    workers: usize,
) -> Tensor4 {
    execute_direct_with_path(input, weights, params, cfg, workers, KernelPath::from_env())
}

/// [`execute_direct`] with an explicit kernel path (tests diff the two).
pub fn execute_direct_with_path(
    input: &Tensor4,
    weights: &Tensor4,
    params: ConvParams,
    cfg: &ScheduleConfig,
    workers: usize,
    path: KernelPath,
) -> Tensor4 {
    execute_direct_impl(input, weights, params, cfg, workers, path, Epilogue::None)
}

/// Executes a fused direct conv→epilogue chain: the epilogue is applied
/// to each block's resident output tile before its single write-back,
/// so no intermediate conv tensor is ever materialized. A pool epilogue
/// writes the *pooled* tensor; its window must tile the output and the
/// block (`k | H_out`, `k | x`, `k | y`) — the same alignment the fused
/// search space enforces on every configuration it offers.
pub fn execute_direct_fused(
    input: &Tensor4,
    weights: &Tensor4,
    params: ConvParams,
    cfg: &ScheduleConfig,
    workers: usize,
    epilogue: Epilogue,
) -> Tensor4 {
    execute_direct_impl(input, weights, params, cfg, workers, KernelPath::from_env(), epilogue)
}

/// [`execute_direct_fused`] with an explicit kernel path.
pub fn execute_direct_fused_with_path(
    input: &Tensor4,
    weights: &Tensor4,
    params: ConvParams,
    cfg: &ScheduleConfig,
    workers: usize,
    path: KernelPath,
    epilogue: Epilogue,
) -> Tensor4 {
    execute_direct_impl(input, weights, params, cfg, workers, path, epilogue)
}

#[allow(clippy::too_many_arguments)]
fn execute_direct_impl(
    input: &Tensor4,
    weights: &Tensor4,
    params: ConvParams,
    cfg: &ScheduleConfig,
    workers: usize,
    path: KernelPath,
    epilogue: Epilogue,
) -> Tensor4 {
    let shape = shape_of(input, weights, params);
    let (hout, wout) = (shape.hout(), shape.wout());
    assert_eq!(hout % cfg.x, 0, "x must divide H_out");
    assert_eq!(wout % cfg.y, 0, "y must divide W_out");
    assert_eq!(shape.cout % cfg.z, 0, "z must divide C_out");
    assert_epilogue_alignment(epilogue, hout, wout, cfg);

    let blocks_h = hout / cfg.x;
    let blocks_w = wout / cfg.y;
    let blocks_c = shape.cout / cfg.z;
    let total_blocks = blocks_h * blocks_w * blocks_c * shape.batch;

    let (out_h, out_w) = epilogue_out_dims(epilogue, hout, wout);
    let mut out = Tensor4::zeros(shape.batch, shape.cout, out_h, out_w);
    let image_len = shape.cout * out_h * out_w;
    let (xp, yp) = crate::direct::halo(&shape, cfg.x, cfg.y);

    // Partition output storage by batch image; within an image blocks are
    // disjoint, so workers claim whole block indices via an atomic cursor.
    let out_ptr = SendPtr(out.as_mut_slice().as_mut_ptr());
    let cursor = std::sync::atomic::AtomicUsize::new(0);
    let workers = workers.max(1).min(total_blocks.max(1));

    rayon::scope(|scope| {
        for _ in 0..workers {
            let cursor = &cursor;
            let shape = &shape;
            let out_ptr = &out_ptr;
            scope.spawn(move |_| {
                // "Shared memory" of this worker: resident output tile +
                // one input stage + one weight stage.
                let mut acc = vec![0.0f32; cfg.x * cfg.y * cfg.z];
                let mut stage_in = vec![0.0f32; xp * yp];
                let mut stage_w = vec![0.0f32; shape.kh * shape.kw * cfg.z];
                // Vector path: one output row of partial sums per
                // (zc, oy), accumulated with the kernel tap broadcast
                // over the `ox` lanes.
                let mut tmp_row = vec![0.0f32; cfg.y];
                loop {
                    let b = cursor.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if b >= total_blocks {
                        break;
                    }
                    // Decode block coordinates.
                    let n = b / (blocks_h * blocks_w * blocks_c);
                    let rem = b % (blocks_h * blocks_w * blocks_c);
                    let bc = rem / (blocks_h * blocks_w);
                    let bh = (rem / blocks_w) % blocks_h;
                    let bw = rem % blocks_w;
                    let oy0 = bh * cfg.x;
                    let ox0 = bw * cfg.y;
                    let oc0 = bc * cfg.z;

                    acc.fill(0.0);
                    // Channel-sliding stages (alpha = 1, §5.2).
                    for ci in 0..shape.cin {
                        // Stage-load the x' * y' input tile (halo included,
                        // zero padding at the borders).
                        for ty in 0..xp {
                            for tx in 0..yp {
                                let iy = (oy0 * shape.stride + ty) as isize - shape.pad as isize;
                                let ix = (ox0 * shape.stride + tx) as isize - shape.pad as isize;
                                stage_in[ty * yp + tx] = input.at_padded(n, ci, iy, ix);
                            }
                        }
                        // Stage-load the z kernel slices at channel ci.
                        for zc in 0..cfg.z {
                            for dy in 0..shape.kh {
                                for dx in 0..shape.kw {
                                    stage_w[(zc * shape.kh + dy) * shape.kw + dx] =
                                        weights.at(oc0 + zc, ci, dy, dx);
                                }
                            }
                        }
                        // Partial-sum update of the resident tile.
                        match path {
                            KernelPath::Scalar => {
                                for zc in 0..cfg.z {
                                    for oy in 0..cfg.x {
                                        for ox in 0..cfg.y {
                                            let mut sum = 0.0f32;
                                            for dy in 0..shape.kh {
                                                let row = (oy * shape.stride + dy) * yp
                                                    + ox * shape.stride;
                                                let wrow = (zc * shape.kh + dy) * shape.kw;
                                                for dx in 0..shape.kw {
                                                    sum += stage_in[row + dx] * stage_w[wrow + dx];
                                                }
                                            }
                                            acc[(zc * cfg.x + oy) * cfg.y + ox] += sum;
                                        }
                                    }
                                }
                            }
                            // Same folds, rotated: `tmp_row[ox]` runs the
                            // scalar `sum` fold ((dy, dx) ascending) for a
                            // whole output row at once — each `ox` lane is
                            // an independent element, the tap is broadcast,
                            // and the loads are unit-stride when stride=1.
                            // One `acc += tmp_row` add per element after
                            // the fold, exactly like the scalar `+= sum`.
                            KernelPath::Vector => {
                                for zc in 0..cfg.z {
                                    for oy in 0..cfg.x {
                                        tmp_row.fill(0.0);
                                        for dy in 0..shape.kh {
                                            let row = (oy * shape.stride + dy) * yp;
                                            let wrow = (zc * shape.kh + dy) * shape.kw;
                                            for dx in 0..shape.kw {
                                                let w = stage_w[wrow + dx];
                                                if shape.stride == 1 {
                                                    let in_row = &stage_in[row + dx..][..cfg.y];
                                                    for (t, &v) in tmp_row.iter_mut().zip(in_row) {
                                                        *t += v * w;
                                                    }
                                                } else {
                                                    for (ox, t) in tmp_row.iter_mut().enumerate() {
                                                        *t += stage_in
                                                            [row + ox * shape.stride + dx]
                                                            * w;
                                                    }
                                                }
                                            }
                                        }
                                        let acc_row =
                                            &mut acc[(zc * cfg.x + oy) * cfg.y..][..cfg.y];
                                        for (a, &t) in acc_row.iter_mut().zip(&tmp_row) {
                                            *a += t;
                                        }
                                    }
                                }
                            }
                        }
                    }
                    // Epilogue on the resident tile, then the single
                    // write-back.
                    write_back_with_epilogue(
                        &acc, epilogue, out_ptr, image_len, out_h, out_w, n, oc0, oy0, ox0, cfg,
                    );
                }
            });
        }
    });
    out
}

/// Panics unless a pool epilogue's window tiles both the conv output and
/// the block tile — the preconditions under which pooled write-backs of
/// different blocks stay disjoint.
fn assert_epilogue_alignment(epilogue: Epilogue, hout: usize, wout: usize, cfg: &ScheduleConfig) {
    if let Epilogue::ReluPool { k } = epilogue {
        assert_eq!(hout % k, 0, "pool window must tile H_out");
        assert_eq!(wout % k, 0, "pool window must tile W_out");
        assert_eq!(cfg.x % k, 0, "pool window must tile the x tile");
        assert_eq!(cfg.y % k, 0, "pool window must tile the y tile");
    }
}

/// Output-tensor spatial extents after the epilogue.
fn epilogue_out_dims(epilogue: Epilogue, hout: usize, wout: usize) -> (usize, usize) {
    match epilogue {
        Epilogue::None | Epilogue::Relu => (hout, wout),
        Epilogue::ReluPool { k } => (hout / k, wout / k),
    }
}

/// Applies `epilogue` to one block's resident `z * x * y` conv tile and
/// performs the block's only write-back. `Epilogue::None` reproduces the
/// unfused executors' write loop exactly; `Relu` maps each element
/// through [`relu_val`]; `ReluPool` folds each `k x k` window with the
/// same `f32::max`-from-`NEG_INFINITY` fold as
/// [`iolb_tensor::ops::maxpool2d`], writing only the pooled cells —
/// that shared per-element arithmetic is what makes the fused output
/// bit-identical to the unfused composition.
#[allow(clippy::too_many_arguments)]
fn write_back_with_epilogue(
    tile: &[f32],
    epilogue: Epilogue,
    out_ptr: &SendPtr,
    image_len: usize,
    out_h: usize,
    out_w: usize,
    n: usize,
    oc0: usize,
    oy0: usize,
    ox0: usize,
    cfg: &ScheduleConfig,
) {
    match epilogue {
        Epilogue::None | Epilogue::Relu => {
            let fuse_relu = matches!(epilogue, Epilogue::Relu);
            for zc in 0..cfg.z {
                for oy in 0..cfg.x {
                    for ox in 0..cfg.y {
                        let c = oc0 + zc;
                        let yy = oy0 + oy;
                        let xx = ox0 + ox;
                        let off = n * image_len + (c * out_h + yy) * out_w + xx;
                        let v = tile[(zc * cfg.x + oy) * cfg.y + ox];
                        let v = if fuse_relu { relu_val(v) } else { v };
                        // SAFETY: blocks write disjoint output regions;
                        // indices are in range by construction.
                        unsafe {
                            *out_ptr.0.add(off) = v;
                        }
                    }
                }
            }
        }
        Epilogue::ReluPool { k } => {
            // Block origin in pooled coordinates (oy0/ox0 are multiples
            // of the block tile, which `k` tiles).
            let py0 = oy0 / k;
            let px0 = ox0 / k;
            for zc in 0..cfg.z {
                for py in 0..cfg.x / k {
                    for px in 0..cfg.y / k {
                        let mut m = f32::NEG_INFINITY;
                        for dy in 0..k {
                            for dx in 0..k {
                                let oy = py * k + dy;
                                let ox = px * k + dx;
                                m = m.max(relu_val(tile[(zc * cfg.x + oy) * cfg.y + ox]));
                            }
                        }
                        let c = oc0 + zc;
                        let off = n * image_len + (c * out_h + py0 + py) * out_w + (px0 + px);
                        // SAFETY: pooled regions of distinct blocks are
                        // disjoint because `k` tiles the block.
                        unsafe {
                            *out_ptr.0.add(off) = m;
                        }
                    }
                }
            }
        }
    }
}

/// Executes the Winograd dataflow of §5.3 on the CPU: per block, per
/// `e x e` tile, the two temporary `(a x a)` arrays accumulate the channel
/// sum `Pi` which is inverse-transformed once at the end.
pub fn execute_winograd(
    input: &Tensor4,
    weights: &Tensor4,
    params: ConvParams,
    tile: WinogradTile,
    cfg: &ScheduleConfig,
    workers: usize,
) -> Tensor4 {
    execute_winograd_with_path(input, weights, params, tile, cfg, workers, KernelPath::from_env())
}

/// [`execute_winograd`] with an explicit kernel path (tests diff the two).
#[allow(clippy::too_many_arguments)]
pub fn execute_winograd_with_path(
    input: &Tensor4,
    weights: &Tensor4,
    params: ConvParams,
    tile: WinogradTile,
    cfg: &ScheduleConfig,
    workers: usize,
    path: KernelPath,
) -> Tensor4 {
    execute_winograd_impl(input, weights, params, tile, cfg, workers, path, Epilogue::None)
}

/// Executes a fused Winograd conv→epilogue chain (see
/// [`execute_direct_fused`]): the inverse-transformed tiles land in the
/// block's resident output tile as `f32` — the same values the unfused
/// path writes back — and the epilogue is applied there, before the
/// block's single write-back.
pub fn execute_winograd_fused(
    input: &Tensor4,
    weights: &Tensor4,
    params: ConvParams,
    tile: WinogradTile,
    cfg: &ScheduleConfig,
    workers: usize,
    epilogue: Epilogue,
) -> Tensor4 {
    execute_winograd_impl(
        input,
        weights,
        params,
        tile,
        cfg,
        workers,
        KernelPath::from_env(),
        epilogue,
    )
}

/// [`execute_winograd_fused`] with an explicit kernel path.
#[allow(clippy::too_many_arguments)]
pub fn execute_winograd_fused_with_path(
    input: &Tensor4,
    weights: &Tensor4,
    params: ConvParams,
    tile: WinogradTile,
    cfg: &ScheduleConfig,
    workers: usize,
    path: KernelPath,
    epilogue: Epilogue,
) -> Tensor4 {
    execute_winograd_impl(input, weights, params, tile, cfg, workers, path, epilogue)
}

#[allow(clippy::too_many_arguments)]
fn execute_winograd_impl(
    input: &Tensor4,
    weights: &Tensor4,
    params: ConvParams,
    tile: WinogradTile,
    cfg: &ScheduleConfig,
    workers: usize,
    path: KernelPath,
    epilogue: Epilogue,
) -> Tensor4 {
    assert_eq!(params.stride, 1, "winograd requires unit stride");
    let shape = shape_of(input, weights, params);
    assert!(shape.supports_winograd(tile), "shape incompatible with F(e,r)");
    let (hout, wout) = (shape.hout(), shape.wout());
    assert_eq!(hout % cfg.x, 0, "x must divide H_out");
    assert_eq!(wout % cfg.y, 0, "y must divide W_out");
    assert_eq!(shape.cout % cfg.z, 0, "z must divide C_out");
    assert_eq!(cfg.x % tile.e, 0, "x must be a multiple of e");
    assert_eq!(cfg.y % tile.e, 0, "y must be a multiple of e");
    assert_epilogue_alignment(epilogue, hout, wout, cfg);

    let t = generate(tile.e, tile.r);
    let a = tile.a();
    // Transposes hoisted for the vector path (pure permutations; the
    // scalar path recomputes them per tile, bit-identically).
    let bt_t = t.bt.t();
    let at_t = t.at.t();
    let g_t = t.g.t();
    let blocks_h = hout / cfg.x;
    let blocks_w = wout / cfg.y;
    let blocks_c = shape.cout / cfg.z;
    let total_blocks = blocks_h * blocks_w * blocks_c * shape.batch;
    // Winograd tiles per block: along the height (x) and width (y) axes.
    let tiles_h = cfg.x / tile.e;
    let tiles_w = cfg.y / tile.e;

    let (out_h, out_w) = epilogue_out_dims(epilogue, hout, wout);
    let mut out = Tensor4::zeros(shape.batch, shape.cout, out_h, out_w);
    let image_len = shape.cout * out_h * out_w;
    let out_ptr = SendPtr(out.as_mut_slice().as_mut_ptr());
    let cursor = std::sync::atomic::AtomicUsize::new(0);
    let workers = workers.max(1).min(total_blocks.max(1));

    rayon::scope(|scope| {
        for _ in 0..workers {
            let cursor = &cursor;
            let shape = &shape;
            let out_ptr = &out_ptr;
            let t = &t;
            let (bt_t, at_t, g_t) = (&bt_t, &at_t, &g_t);
            scope.spawn(move |_| {
                // Two temporary arrays per in-flight (tile, zc): the
                // running Pi sums for the whole sub-block.
                let mut pi = vec![Mat::zeros(a, a); tiles_h * tiles_w * cfg.z];
                let mut patch = Mat::zeros(a, a);
                let mut g = Mat::zeros(tile.r, tile.r);
                // Flat scratch for the vector path.
                let aa = a * a;
                let (e, r) = (tile.e, tile.r);
                let mut mm_tmp = vec![0.0f64; aa];
                let mut p_flat = vec![0.0f64; aa];
                let mut j_all = vec![0.0f64; cfg.z * aa];
                let mut y_tmp = vec![0.0f64; e * a];
                let mut y_flat = vec![0.0f64; e * e];
                // Block-resident output tile: the inverse-transformed
                // `f32` values land here (the exact bits the unfused
                // path would write back) so the epilogue can run on the
                // resident tile before the single write-back.
                let mut block_tile = vec![0.0f32; cfg.z * cfg.x * cfg.y];
                loop {
                    let b = cursor.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if b >= total_blocks {
                        break;
                    }
                    let n = b / (blocks_h * blocks_w * blocks_c);
                    let rem = b % (blocks_h * blocks_w * blocks_c);
                    let bc = rem / (blocks_h * blocks_w);
                    let bh = (rem / blocks_w) % blocks_h;
                    let bw = rem % blocks_w;
                    let oy0 = bh * cfg.x;
                    let ox0 = bw * cfg.y;
                    let oc0 = bc * cfg.z;

                    for m in pi.iter_mut() {
                        m.data.fill(0.0);
                    }
                    // Channel-sliding stages.
                    match path {
                        KernelPath::Scalar => {
                            for ci in 0..shape.cin {
                                for th in 0..tiles_h {
                                    for tw in 0..tiles_w {
                                        // Load and transform the (a x a) patch
                                        // once per (tile, channel); reuse
                                        // across all z.
                                        let py = (oy0 + th * tile.e) as isize - shape.pad as isize;
                                        let px = (ox0 + tw * tile.e) as isize - shape.pad as isize;
                                        for dy in 0..a {
                                            for dx in 0..a {
                                                *patch.at_mut(dy, dx) = input.at_padded(
                                                    n,
                                                    ci,
                                                    py + dy as isize,
                                                    px + dx as isize,
                                                )
                                                    as f64;
                                            }
                                        }
                                        let p = t.bt.matmul(&patch).matmul(&t.bt.t());
                                        for zc in 0..cfg.z {
                                            for dy in 0..tile.r {
                                                for dx in 0..tile.r {
                                                    *g.at_mut(dy, dx) =
                                                        weights.at(oc0 + zc, ci, dy, dx) as f64;
                                                }
                                            }
                                            let j = t.g.matmul(&g).matmul(&t.g.t());
                                            let dst = &mut pi[(th * tiles_w + tw) * cfg.z + zc];
                                            for idx in 0..a * a {
                                                dst.data[idx] += p.data[idx] * j.data[idx];
                                            }
                                        }
                                    }
                                }
                            }
                        }
                        // Same folds through [`matmul_flat`] (which keeps
                        // `Mat::matmul`'s exact term order): `J = G g G^T`
                        // is hoisted per (ci, zc) — the scalar path
                        // recomputes those identical bits once per tile —
                        // and all products land in preallocated flat
                        // scratch instead of fresh `Mat`s.
                        KernelPath::Vector => {
                            for ci in 0..shape.cin {
                                for zc in 0..cfg.z {
                                    for dy in 0..r {
                                        for dx in 0..r {
                                            g.data[dy * r + dx] =
                                                weights.at(oc0 + zc, ci, dy, dx) as f64;
                                        }
                                    }
                                    matmul_flat(&t.g.data, &g.data, &mut mm_tmp[..a * r], a, r, r);
                                    matmul_flat(
                                        &mm_tmp[..a * r],
                                        &g_t.data,
                                        &mut j_all[zc * aa..(zc + 1) * aa],
                                        a,
                                        r,
                                        a,
                                    );
                                }
                                for th in 0..tiles_h {
                                    for tw in 0..tiles_w {
                                        let py = (oy0 + th * e) as isize - shape.pad as isize;
                                        let px = (ox0 + tw * e) as isize - shape.pad as isize;
                                        for dy in 0..a {
                                            for dx in 0..a {
                                                patch.data[dy * a + dx] = input.at_padded(
                                                    n,
                                                    ci,
                                                    py + dy as isize,
                                                    px + dx as isize,
                                                )
                                                    as f64;
                                            }
                                        }
                                        matmul_flat(&t.bt.data, &patch.data, &mut mm_tmp, a, a, a);
                                        matmul_flat(&mm_tmp, &bt_t.data, &mut p_flat, a, a, a);
                                        for zc in 0..cfg.z {
                                            let j = &j_all[zc * aa..][..aa];
                                            let dst =
                                                &mut pi[(th * tiles_w + tw) * cfg.z + zc].data;
                                            for (o, (&pv, &jv)) in
                                                dst.iter_mut().zip(p_flat.iter().zip(j.iter()))
                                            {
                                                *o += pv * jv;
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                    // Output transform into the block-resident tile
                    // (`f64 -> f32` conversion happens *here*, before any
                    // epilogue arithmetic), then epilogue + single
                    // write-back.
                    for th in 0..tiles_h {
                        for tw in 0..tiles_w {
                            for zc in 0..cfg.z {
                                let m = &pi[(th * tiles_w + tw) * cfg.z + zc];
                                match path {
                                    KernelPath::Scalar => {
                                        let y_tile = t.at.matmul(m).matmul(&t.at.t());
                                        for dy in 0..tile.e {
                                            for dx in 0..tile.e {
                                                let oy = th * tile.e + dy;
                                                let ox = tw * tile.e + dx;
                                                block_tile[(zc * cfg.x + oy) * cfg.y + ox] =
                                                    y_tile.at(dy, dx) as f32;
                                            }
                                        }
                                    }
                                    KernelPath::Vector => {
                                        matmul_flat(&t.at.data, &m.data, &mut y_tmp, e, a, a);
                                        matmul_flat(&y_tmp, &at_t.data, &mut y_flat, e, a, e);
                                        for dy in 0..e {
                                            for dx in 0..e {
                                                let oy = th * e + dy;
                                                let ox = tw * e + dx;
                                                block_tile[(zc * cfg.x + oy) * cfg.y + ox] =
                                                    y_flat[dy * e + dx] as f32;
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                    write_back_with_epilogue(
                        &block_tile,
                        epilogue,
                        out_ptr,
                        image_len,
                        out_h,
                        out_w,
                        n,
                        oc0,
                        oy0,
                        ox0,
                        cfg,
                    );
                }
            });
        }
    });
    out
}

/// Raw pointer wrapper asserting cross-thread safety: blocks write disjoint
/// regions of the output buffer.
struct SendPtr(*mut f32);
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

#[cfg(test)]
mod tests {
    use super::*;
    use iolb_tensor::conv_ref::conv2d_reference;
    use iolb_tensor::layout::Layout;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cfg(x: usize, y: usize, z: usize) -> ScheduleConfig {
        ScheduleConfig { x, y, z, nxt: 1, nyt: 1, nzt: 1, sb_bytes: 48 * 1024, layout: Layout::Chw }
    }

    #[test]
    fn direct_exec_matches_reference() {
        let mut rng = StdRng::seed_from_u64(1);
        let input = Tensor4::random(1, 4, 10, 10, &mut rng);
        let weights = Tensor4::random(8, 4, 3, 3, &mut rng);
        let params = ConvParams::new(1, 0); // 8x8 out
        let want = conv2d_reference(&input, &weights, params);
        for (x, y, z) in [(8, 8, 8), (4, 4, 2), (2, 8, 4), (1, 1, 1)] {
            let got = execute_direct(&input, &weights, params, &cfg(x, y, z), 4);
            assert!(
                got.approx_eq(&want, 1e-4, 1e-4),
                "tile {x}x{y}x{z}: diff {}",
                got.max_abs_diff(&want)
            );
        }
    }

    #[test]
    fn direct_exec_with_padding_and_stride() {
        let mut rng = StdRng::seed_from_u64(2);
        let input = Tensor4::random(2, 3, 9, 9, &mut rng);
        let weights = Tensor4::random(4, 3, 3, 3, &mut rng);
        let params = ConvParams::new(2, 1); // 5x5 out
        let want = conv2d_reference(&input, &weights, params);
        let got = execute_direct(&input, &weights, params, &cfg(5, 5, 2), 3);
        assert!(got.approx_eq(&want, 1e-4, 1e-4), "diff {}", got.max_abs_diff(&want));
    }

    #[test]
    fn direct_exec_single_worker_deterministic() {
        let mut rng = StdRng::seed_from_u64(3);
        let input = Tensor4::random(1, 2, 8, 8, &mut rng);
        let weights = Tensor4::random(2, 2, 3, 3, &mut rng);
        let params = ConvParams::new(1, 1);
        let a = execute_direct(&input, &weights, params, &cfg(4, 4, 2), 1);
        let b = execute_direct(&input, &weights, params, &cfg(4, 4, 2), 8);
        assert_eq!(a.max_abs_diff(&b), 0.0);
    }

    #[test]
    fn winograd_exec_matches_reference() {
        let mut rng = StdRng::seed_from_u64(4);
        let input = Tensor4::random(1, 3, 10, 10, &mut rng);
        let weights = Tensor4::random(4, 3, 3, 3, &mut rng);
        let params = ConvParams::new(1, 0); // 8x8 out
        let want = conv2d_reference(&input, &weights, params);
        for (x, y, z) in [(8, 8, 4), (4, 4, 2), (2, 2, 1)] {
            let got =
                execute_winograd(&input, &weights, params, WinogradTile::F2X3, &cfg(x, y, z), 4);
            assert!(
                got.approx_eq(&want, 1e-3, 1e-3),
                "tile {x}x{y}x{z}: diff {}",
                got.max_abs_diff(&want)
            );
        }
    }

    #[test]
    fn winograd_exec_with_padding() {
        let mut rng = StdRng::seed_from_u64(5);
        let input = Tensor4::random(2, 2, 8, 8, &mut rng);
        let weights = Tensor4::random(2, 2, 3, 3, &mut rng);
        let params = ConvParams::new(1, 1); // 8x8 out
        let want = conv2d_reference(&input, &weights, params);
        let got = execute_winograd(&input, &weights, params, WinogradTile::F2X3, &cfg(4, 8, 2), 2);
        assert!(got.approx_eq(&want, 1e-3, 1e-3), "diff {}", got.max_abs_diff(&want));
    }

    #[test]
    fn winograd_f4x3_exec() {
        let mut rng = StdRng::seed_from_u64(6);
        let input = Tensor4::random(1, 2, 10, 10, &mut rng);
        let weights = Tensor4::random(2, 2, 3, 3, &mut rng);
        let params = ConvParams::new(1, 0); // 8x8 out
        let want = conv2d_reference(&input, &weights, params);
        let got = execute_winograd(&input, &weights, params, WinogradTile::F4X3, &cfg(8, 8, 2), 2);
        assert!(got.approx_eq(&want, 1e-3, 1e-3), "diff {}", got.max_abs_diff(&want));
    }

    #[test]
    fn direct_vector_path_bit_identical_to_scalar() {
        let mut rng = StdRng::seed_from_u64(7);
        let input = Tensor4::random(2, 3, 9, 9, &mut rng);
        let weights = Tensor4::random(4, 3, 3, 3, &mut rng);
        // Unit stride with padding, and the strided fallback lanes.
        for (params, x, y) in [(ConvParams::new(1, 1), 3, 9), (ConvParams::new(2, 1), 5, 5)] {
            let c = cfg(x, y, 2);
            let s = execute_direct_with_path(&input, &weights, params, &c, 3, KernelPath::Scalar);
            let v = execute_direct_with_path(&input, &weights, params, &c, 3, KernelPath::Vector);
            let sb: Vec<u32> = s.as_slice().iter().map(|f| f.to_bits()).collect();
            let vb: Vec<u32> = v.as_slice().iter().map(|f| f.to_bits()).collect();
            assert_eq!(sb, vb, "stride {}", params.stride);
        }
    }

    #[test]
    fn winograd_vector_path_bit_identical_to_scalar() {
        let mut rng = StdRng::seed_from_u64(8);
        let input = Tensor4::random(1, 3, 10, 10, &mut rng);
        let weights = Tensor4::random(4, 3, 3, 3, &mut rng);
        let params = ConvParams::new(1, 0); // 8x8 out
        for (tile, x, y, z) in [(WinogradTile::F2X3, 4, 4, 2), (WinogradTile::F4X3, 8, 8, 4)] {
            let c = cfg(x, y, z);
            let s = execute_winograd_with_path(
                &input,
                &weights,
                params,
                tile,
                &c,
                3,
                KernelPath::Scalar,
            );
            let v = execute_winograd_with_path(
                &input,
                &weights,
                params,
                tile,
                &c,
                3,
                KernelPath::Vector,
            );
            let sb: Vec<u32> = s.as_slice().iter().map(|f| f.to_bits()).collect();
            let vb: Vec<u32> = v.as_slice().iter().map(|f| f.to_bits()).collect();
            assert_eq!(sb, vb, "{tile:?}");
        }
    }

    #[test]
    #[should_panic(expected = "x must divide")]
    fn rejects_non_dividing_tile() {
        let input = Tensor4::zeros(1, 1, 8, 8);
        let weights = Tensor4::zeros(1, 1, 3, 3);
        let _ = execute_direct(&input, &weights, ConvParams::new(1, 0), &cfg(4, 3, 1), 1);
    }

    /// The fused contract, bitwise: fused conv→epilogue equals the bare
    /// conv followed by the standalone `iolb_tensor::ops` passes.
    fn assert_bits_eq(a: &Tensor4, b: &Tensor4, what: &str) {
        let ab: Vec<u32> = a.as_slice().iter().map(|f| f.to_bits()).collect();
        let bb: Vec<u32> = b.as_slice().iter().map(|f| f.to_bits()).collect();
        assert_eq!(ab, bb, "{what}");
    }

    fn unfused_composition(conv: &Tensor4, epilogue: Epilogue) -> Tensor4 {
        match epilogue {
            Epilogue::None => conv.clone(),
            Epilogue::Relu => iolb_tensor::ops::relu(conv),
            Epilogue::ReluPool { k } => {
                iolb_tensor::ops::maxpool2d(&iolb_tensor::ops::relu(conv), k)
            }
        }
    }

    #[test]
    fn fused_direct_bit_identical_to_unfused_composition() {
        let mut rng = StdRng::seed_from_u64(9);
        let input = Tensor4::random(2, 3, 10, 10, &mut rng);
        let weights = Tensor4::random(4, 3, 3, 3, &mut rng);
        let params = ConvParams::new(1, 1); // 10x10 out
        let c = cfg(5, 10, 2);
        for path in [KernelPath::Scalar, KernelPath::Vector] {
            let conv = execute_direct_with_path(&input, &weights, params, &c, 3, path);
            for epilogue in [Epilogue::Relu, Epilogue::ReluPool { k: 5 }] {
                let want = unfused_composition(&conv, epilogue);
                for workers in [1, 4] {
                    let got = execute_direct_fused_with_path(
                        &input, &weights, params, &c, workers, path, epilogue,
                    );
                    assert_bits_eq(&got, &want, &format!("{path:?} {epilogue} w={workers}"));
                }
            }
        }
    }

    #[test]
    fn fused_winograd_bit_identical_to_unfused_composition() {
        let mut rng = StdRng::seed_from_u64(10);
        let input = Tensor4::random(1, 3, 10, 10, &mut rng);
        let weights = Tensor4::random(4, 3, 3, 3, &mut rng);
        let params = ConvParams::new(1, 0); // 8x8 out
        for (tile, x, y, z) in [(WinogradTile::F2X3, 4, 8, 2), (WinogradTile::F4X3, 8, 8, 4)] {
            let c = cfg(x, y, z);
            for path in [KernelPath::Scalar, KernelPath::Vector] {
                let conv = execute_winograd_with_path(&input, &weights, params, tile, &c, 3, path);
                for epilogue in [Epilogue::Relu, Epilogue::ReluPool { k: 2 }] {
                    let want = unfused_composition(&conv, epilogue);
                    for workers in [1, 4] {
                        let got = execute_winograd_fused_with_path(
                            &input, &weights, params, tile, &c, workers, path, epilogue,
                        );
                        assert_bits_eq(
                            &got,
                            &want,
                            &format!("{tile:?} {path:?} {epilogue} w={workers}"),
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn fused_pool_output_is_pooled_shape() {
        let mut rng = StdRng::seed_from_u64(12);
        let input = Tensor4::random(1, 2, 10, 10, &mut rng);
        let weights = Tensor4::random(2, 2, 3, 3, &mut rng);
        let params = ConvParams::new(1, 1); // 10x10 out
        let got = execute_direct_fused(
            &input,
            &weights,
            params,
            &cfg(10, 10, 2),
            2,
            Epilogue::ReluPool { k: 2 },
        );
        assert_eq!((got.h, got.w), (5, 5));
        assert!(got.as_slice().iter().all(|&v| v >= 0.0), "relu precedes the pool");
    }

    #[test]
    #[should_panic(expected = "pool window must tile the x tile")]
    fn fused_pool_rejects_misaligned_block() {
        let input = Tensor4::zeros(1, 1, 10, 10);
        let weights = Tensor4::zeros(1, 1, 3, 3);
        // 10x10 out, x=5 but k=2 does not tile the 5-row block.
        let _ = execute_direct_fused(
            &input,
            &weights,
            ConvParams::new(1, 1),
            &cfg(5, 10, 1),
            1,
            Epilogue::ReluPool { k: 2 },
        );
    }
}
