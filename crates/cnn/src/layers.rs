//! Named convolution layers.

use iolb_core::shapes::ConvShape;

/// A named conv layer with an occurrence count (identical layers inside a
/// network are folded with `repeat > 1`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConvLayer {
    /// Diagnostic name, e.g. `"conv3"` or `"fire5.expand3x3"`.
    pub name: String,
    /// The layer geometry.
    pub shape: ConvShape,
    /// How many times the layer occurs in the network.
    pub repeat: usize,
}

impl ConvLayer {
    pub fn new(name: impl Into<String>, shape: ConvShape) -> Self {
        Self { name: name.into(), shape, repeat: 1 }
    }

    pub fn repeated(name: impl Into<String>, shape: ConvShape, repeat: usize) -> Self {
        assert!(repeat >= 1);
        Self { name: name.into(), shape, repeat }
    }

    /// Total multiply-accumulate work contributed by this layer.
    pub fn total_macs(&self) -> u64 {
        self.shape.macs() * self.repeat as u64
    }

    /// Whether a Winograd `F(e,r)` implementation applies (square kernel,
    /// unit stride).
    pub fn winograd_eligible(&self) -> bool {
        self.shape.kh == self.shape.kw && self.shape.stride == 1 && self.shape.kh == 3
    }
}

/// A network: a list of conv layers (non-conv layers contribute no conv
/// time and are omitted, as in the paper's Fig. 12 accounting).
#[derive(Debug, Clone)]
pub struct Network {
    pub name: &'static str,
    pub layers: Vec<ConvLayer>,
}

impl Network {
    /// Total conv MACs of the network.
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(ConvLayer::total_macs).sum()
    }

    /// The distinct layer shapes, in network order (what the tuning
    /// service registers).
    pub fn layer_shapes(&self) -> Vec<&iolb_core::shapes::ConvShape> {
        self.layers.iter().map(|l| &l.shape).collect()
    }

    /// Number of distinct conv layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the network has no conv layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Validates every layer shape.
    pub fn validate(&self) -> Result<(), String> {
        for l in &self.layers {
            l.shape.validate().map_err(|e| format!("{}/{}: {e}", self.name, l.name))?;
        }
        Ok(())
    }
}

/// Networks register directly with the tuning service.
impl iolb_service::register::LayerSource for Network {
    fn layer_shapes(&self) -> Vec<&iolb_core::shapes::ConvShape> {
        self.layer_shapes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer_macs_scale_with_repeat() {
        let shape = ConvShape::square(64, 56, 64, 3, 1, 1);
        let single = ConvLayer::new("a", shape);
        let triple = ConvLayer::repeated("b", shape, 3);
        assert_eq!(triple.total_macs(), 3 * single.total_macs());
    }

    #[test]
    fn winograd_eligibility() {
        assert!(ConvLayer::new("a", ConvShape::square(64, 56, 64, 3, 1, 1)).winograd_eligible());
        assert!(!ConvLayer::new("s", ConvShape::square(64, 56, 64, 3, 2, 1)).winograd_eligible());
        assert!(!ConvLayer::new("k", ConvShape::square(64, 56, 64, 1, 1, 0)).winograd_eligible());
        // Rectangular (Inception 1x7) kernels are not Winograd candidates.
        assert!(
            !ConvLayer::new("r", ConvShape::new(64, 17, 17, 64, 1, 7, 1, 3)).winograd_eligible()
        );
    }
}
