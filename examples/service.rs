//! The tuning-service quickstart: register a network, let the
//! background workers fill the device-sharded store speculatively, then
//! serve every layer instantly.
//!
//! ```console
//! $ cargo run --release --example service
//! ```

use conv_iolb::cnn::inference::TUNER_SEED;
use conv_iolb::cnn::{time_network_with_service, ConvLayer, Network};
use conv_iolb::core::shapes::ConvShape;
use conv_iolb::gpusim::DeviceSpec;
use conv_iolb::service::{EvictionPolicy, ServiceConfig, ShardedStore, TuningService};

fn main() {
    let device = DeviceSpec::v100();
    let net = Network {
        name: "toy",
        layers: vec![
            ConvLayer::new("squeeze", ConvShape::new(32, 14, 14, 16, 1, 1, 1, 0)),
            ConvLayer::new("expand1x1", ConvShape::new(16, 14, 14, 32, 1, 1, 1, 0)),
            ConvLayer::new("conv3x3", ConvShape::square(16, 14, 16, 3, 1, 1)),
        ],
    };

    let config = ServiceConfig {
        budget_per_workload: 16,
        workers: 2,
        speculate_neighbors: true,
        seed: TUNER_SEED,
        ..ServiceConfig::default()
    };
    let service = TuningService::new(ShardedStore::new(), config);

    // 1. Register: every layer x algorithm candidate (plus channel
    //    perturbation neighbors) lands in the priority queue, ranked by
    //    predicted I/O-bound gap.
    let enqueued = service.register_network(&net, &device);
    println!("registered {}: {enqueued} workload(s) enqueued for background tuning", net.name);

    // 2. Background fill: workers on the persistent pool drain the
    //    queue; drain() helps from this thread and blocks until done.
    service.drain();
    let stats = service.stats();
    println!(
        "drained: {} tuned in background, {} fresh measurement(s), {} cache hit(s)",
        stats.background_tuned, stats.fresh_measurements, stats.cache_hits
    );

    // 3. Instant replay: serving the whole network touches the
    //    simulator zero times.
    let (timed, eco) = time_network_with_service(&net, &device, &service);
    println!(
        "served {}: {:.6} ms (baseline {:.6} ms, {:.2}x) — {} shard hit(s), {} inline, {} fresh",
        timed.network,
        timed.ours_ms,
        timed.baseline_ms,
        timed.speedup(),
        eco.shard_hits,
        eco.stolen + eco.inline_tuned,
        eco.fresh_measurements
    );
    assert_eq!(eco.fresh_measurements, 0, "drained service must serve without measuring");

    // 4. Persistence: the shard directory survives restarts...
    let dir = std::env::temp_dir().join(format!("iolb-service-example-{}", std::process::id()));
    service.save(&dir).expect("save shard directory");
    let (reopened, report) = TuningService::open(&dir, config).expect("reopen shard directory");
    assert!(report.is_clean());
    let (timed2, eco2) = time_network_with_service(&net, &device, &reopened);
    assert_eq!(timed2.ours_ms.to_bits(), timed.ours_ms.to_bits());
    assert_eq!(eco2.fresh_measurements, 0);
    println!(
        "reopened from {}: {} record(s) across {} shard(s), replayed bit-identically",
        dir.display(),
        reopened.merged_store().len(),
        ShardedStore::load(&dir).unwrap().0.shard_count()
    );

    // 5. ... and long-lived stores stay bounded via LRU eviction that
    //    never drops a workload's best record.
    let dropped = reopened.evict(&EvictionPolicy { max_records: 8, top_k: 1 });
    let (timed3, eco3) = time_network_with_service(&net, &device, &reopened);
    assert_eq!(timed3.ours_ms.to_bits(), timed.ours_ms.to_bits());
    assert_eq!(eco3.fresh_measurements, 0);
    println!("evicted {dropped} cold record(s); serving still replays bit-identically");

    let _ = std::fs::remove_dir_all(&dir);
}
