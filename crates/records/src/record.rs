//! The versioned tuning-record schema.
//!
//! A record states: *this configuration of this workload measured this
//! cost* (plus the tuner seed that found it and the schema version that
//! wrote it). The workload fingerprint is the store's primary key; the
//! feature vector of a workload supports nearest-neighbour queries when
//! an exact fingerprint match does not exist (cross-layer transfer).

use iolb_core::epilogue::Epilogue;
use iolb_core::optimality::TileKind;
use iolb_core::shapes::{ConvShape, WinogradTile};
use iolb_dataflow::config::ScheduleConfig;

/// Version stamped into every serialized record. Loaders reject records
/// written under any other version (forward compatibility is handled by
/// re-tuning, never by guessing at field semantics).
pub const SCHEMA_VERSION: u32 = 1;

/// What was tuned: one convolution layer, one algorithm, one device.
///
/// The device is identified by its preset name and shared-memory size —
/// enough to tell devices apart without dragging the full simulator spec
/// into the store (costs from different devices must never be mixed, but
/// a record does not need to *reproduce* the device).
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    /// The convolution geometry.
    pub shape: ConvShape,
    /// The algorithm whose schedule space was searched.
    pub kind: TileKind,
    /// Device preset name (e.g. `"Tesla V100"`).
    pub device: String,
    /// Device shared memory per SM, bytes.
    pub smem_bytes: u32,
    /// Fused epilogue of the chain this workload represents.
    /// [`Epilogue::None`] for a bare convolution — in which case the
    /// fingerprint is byte-identical to what it was before fusion
    /// existed, so pre-fusion stores load unchanged.
    pub epilogue: Epilogue,
}

impl Workload {
    pub fn new(
        shape: ConvShape,
        kind: TileKind,
        device: impl Into<String>,
        smem_bytes: u32,
    ) -> Self {
        Self { shape, kind, device: device.into(), smem_bytes, epilogue: Epilogue::None }
    }

    /// The same workload fused with `epilogue` (builder-style).
    pub fn with_epilogue(mut self, epilogue: Epilogue) -> Self {
        self.epilogue = epilogue;
        self
    }

    /// Canonical algorithm tag: `direct` or `w{e}x{r}` (e.g. `w2x3` for
    /// Winograd `F(2x2, 3x3)`).
    pub fn algo_tag(&self) -> String {
        algo_tag(self.kind)
    }

    /// The store's primary key: a canonical, human-readable string that
    /// is injective over everything the cost depends on. A fused chain
    /// suffixes its epilogue tag onto the algorithm segment
    /// (`direct+relu+pool2|…`); the unfused tag is empty, so bare-conv
    /// fingerprints are unchanged from the pre-fusion schema.
    pub fn fingerprint(&self) -> String {
        let s = &self.shape;
        format!(
            "{}{}|n{}c{}h{}w{}|o{}|k{}x{}|s{}p{}|{}|{}",
            self.algo_tag(),
            self.epilogue.tag(),
            s.batch,
            s.cin,
            s.hin,
            s.win,
            s.cout,
            s.kh,
            s.kw,
            s.stride,
            s.pad,
            self.device,
            self.smem_bytes
        )
    }

    /// Feature vector for workload-to-workload distance. Log-scaled where
    /// the quantity spans decades, so "twice the channels" is the same
    /// step everywhere; kernel/stride stay linear (they are small
    /// integers whose unit steps matter).
    pub fn features(&self) -> [f64; 8] {
        let s = &self.shape;
        [
            (s.cin as f64).log2(),
            (s.hout() as f64).log2(),
            (s.wout() as f64).log2(),
            (s.cout as f64).log2(),
            s.kh as f64,
            s.kw as f64,
            s.stride as f64,
            (self.smem_bytes as f64).log2(),
        ]
    }

    /// Euclidean distance in feature space. Only meaningful between
    /// workloads of the same algorithm (the caller filters).
    pub fn distance(&self, other: &Workload) -> f64 {
        let a = self.features();
        let b = other.features();
        a.iter().zip(&b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>().sqrt()
    }

    /// Whether transfer between the two workloads is admissible: same
    /// algorithm family (configs carry algorithm-specific constraints,
    /// e.g. Winograd `e`-multiple tiles), same batch size, and same
    /// fused epilogue (a pool epilogue constrains admissible tilings, so
    /// chain configs only transfer to like chains).
    pub fn transfer_compatible(&self, other: &Workload) -> bool {
        self.kind == other.kind
            && self.shape.batch == other.shape.batch
            && self.epilogue == other.epilogue
    }
}

/// Canonical algorithm tag for a [`TileKind`].
pub fn algo_tag(kind: TileKind) -> String {
    match kind {
        TileKind::Direct => "direct".to_string(),
        TileKind::Winograd(t) => format!("w{}x{}", t.e, t.r),
    }
}

/// Parses an algorithm tag written by [`algo_tag`].
pub fn parse_algo_tag(tag: &str) -> Result<TileKind, String> {
    if tag == "direct" {
        return Ok(TileKind::Direct);
    }
    let rest = tag.strip_prefix('w').ok_or_else(|| format!("unknown algorithm tag {tag:?}"))?;
    let (e, r) = rest.split_once('x').ok_or_else(|| format!("malformed winograd tag {tag:?}"))?;
    let e: usize = e.parse().map_err(|_| format!("bad winograd e in {tag:?}"))?;
    let r: usize = r.parse().map_err(|_| format!("bad winograd r in {tag:?}"))?;
    if e == 0 || r == 0 {
        return Err(format!("zero winograd tile in {tag:?}"));
    }
    Ok(TileKind::Winograd(WinogradTile::new(e, r)))
}

/// One measured data point: workload + configuration + cost + provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct TuningRecord {
    pub workload: Workload,
    pub config: ScheduleConfig,
    /// Measured execution time, milliseconds. Always finite and positive
    /// (build failures are not recorded — they carry no cost signal).
    pub cost_ms: f64,
    /// The `TuneParams::seed` of the run that measured this record.
    pub seed: u64,
}

impl TuningRecord {
    /// Builds a record, rejecting non-finite / non-positive costs (which
    /// would poison top-k queries and cannot round-trip through JSON).
    pub fn new(
        workload: Workload,
        config: ScheduleConfig,
        cost_ms: f64,
        seed: u64,
    ) -> Result<Self, String> {
        if !cost_ms.is_finite() || cost_ms <= 0.0 {
            return Err(format!("cost must be finite and positive, got {cost_ms}"));
        }
        Ok(Self { workload, config, cost_ms, seed })
    }

    /// Total order used for canonical serialization and tie-breaking in
    /// top-k queries: cost first (bitwise, via `total_cmp`), then the
    /// config tuple — so equal-cost records still sort deterministically.
    pub fn canonical_cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.cost_ms
            .total_cmp(&other.cost_ms)
            .then_with(|| config_key(&self.config).cmp(&config_key(&other.config)))
    }
}

/// Deterministic ordering key for a configuration.
pub fn config_key(
    c: &ScheduleConfig,
) -> (usize, usize, usize, usize, usize, usize, u32, &'static str) {
    (c.x, c.y, c.z, c.nxt, c.nyt, c.nzt, c.sb_bytes, c.layout.name())
}

#[cfg(test)]
mod tests {
    use super::*;
    use iolb_tensor::layout::Layout;

    fn wl(cin: usize) -> Workload {
        Workload::new(
            ConvShape::square(cin, 28, 32, 3, 1, 1),
            TileKind::Direct,
            "Tesla V100",
            96 * 1024,
        )
    }

    fn cfg() -> ScheduleConfig {
        ScheduleConfig {
            x: 7,
            y: 7,
            z: 8,
            nxt: 7,
            nyt: 7,
            nzt: 2,
            sb_bytes: 16 * 1024,
            layout: Layout::Chw,
        }
    }

    #[test]
    fn fingerprint_separates_workloads() {
        assert_eq!(wl(64).fingerprint(), wl(64).fingerprint());
        assert_ne!(wl(64).fingerprint(), wl(32).fingerprint());
        let mut dev = wl(64);
        dev.device = "GTX 1080 Ti".into();
        assert_ne!(dev.fingerprint(), wl(64).fingerprint());
        let wino = Workload { kind: TileKind::Winograd(WinogradTile::F2X3), ..wl(64) };
        assert_ne!(wino.fingerprint(), wl(64).fingerprint());
    }

    #[test]
    fn fused_fingerprint_extends_but_never_disturbs_unfused() {
        let bare = wl(64);
        let fused = wl(64).with_epilogue(Epilogue::ReluPool { k: 2 });
        assert!(bare.fingerprint().starts_with("direct|"), "unfused key must be unchanged");
        assert!(fused.fingerprint().starts_with("direct+relu+pool2|"));
        assert_ne!(bare.fingerprint(), fused.fingerprint());
        assert_ne!(
            wl(64).with_epilogue(Epilogue::Relu).fingerprint(),
            fused.fingerprint(),
            "distinct epilogues must key separately"
        );
    }

    #[test]
    fn transfer_requires_same_epilogue() {
        let bare = wl(64);
        let fused = wl(128).with_epilogue(Epilogue::Relu);
        assert!(!bare.transfer_compatible(&fused));
        assert!(wl(64).with_epilogue(Epilogue::Relu).transfer_compatible(&fused));
    }

    #[test]
    fn algo_tags_round_trip() {
        for kind in [
            TileKind::Direct,
            TileKind::Winograd(WinogradTile::F2X3),
            TileKind::Winograd(WinogradTile::F4X3),
        ] {
            assert_eq!(parse_algo_tag(&algo_tag(kind)).unwrap(), kind);
        }
        assert!(parse_algo_tag("im2col").is_err());
        assert!(parse_algo_tag("wAxB").is_err());
        assert!(parse_algo_tag("w0x3").is_err());
    }

    #[test]
    fn distance_is_a_metric_like_thing() {
        let a = wl(64);
        let b = wl(128);
        let c = wl(512);
        assert_eq!(a.distance(&a), 0.0);
        assert!((a.distance(&b) - b.distance(&a)).abs() < 1e-12);
        assert!(a.distance(&b) < a.distance(&c), "closer channel count must be nearer");
    }

    #[test]
    fn transfer_requires_same_algorithm() {
        let direct = wl(64);
        let wino = Workload { kind: TileKind::Winograd(WinogradTile::F2X3), ..wl(64) };
        assert!(direct.transfer_compatible(&wl(128)));
        assert!(!direct.transfer_compatible(&wino));
    }

    #[test]
    fn record_rejects_bad_costs() {
        assert!(TuningRecord::new(wl(64), cfg(), f64::NAN, 1).is_err());
        assert!(TuningRecord::new(wl(64), cfg(), f64::INFINITY, 1).is_err());
        assert!(TuningRecord::new(wl(64), cfg(), 0.0, 1).is_err());
        assert!(TuningRecord::new(wl(64), cfg(), -1.0, 1).is_err());
        assert!(TuningRecord::new(wl(64), cfg(), 0.25, 1).is_ok());
    }

    #[test]
    fn canonical_cmp_breaks_cost_ties_by_config() {
        let r1 = TuningRecord::new(wl(64), cfg(), 1.0, 1).unwrap();
        let bigger = ScheduleConfig { x: 14, ..cfg() };
        let r2 = TuningRecord::new(wl(64), bigger, 1.0, 1).unwrap();
        assert_eq!(r1.canonical_cmp(&r2), std::cmp::Ordering::Less);
        assert_eq!(r2.canonical_cmp(&r1), std::cmp::Ordering::Greater);
    }
}
