//! End-to-end CNN inference planning: per-layer algorithm selection and
//! timing for a whole network, ours vs the library baseline.
//!
//! ```sh
//! cargo run --release --example end_to_end [squeezenet|vgg19|resnet18|resnet34|inception]
//! ```

use conv_iolb::cnn::inference::{time_network, PlanMode};
use conv_iolb::cnn::models;
use conv_iolb::gpusim::DeviceSpec;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "resnet18".into());
    let net = match which.as_str() {
        "squeezenet" => models::squeezenet(),
        "vgg19" => models::vgg19(),
        "resnet18" => models::resnet18(),
        "resnet34" => models::resnet34(),
        "inception" => models::inception_v3(),
        other => {
            eprintln!(
                "unknown network {other:?}; use squeezenet|vgg19|resnet18|resnet34|inception"
            );
            std::process::exit(2);
        }
    };
    let device = DeviceSpec::v100();
    println!(
        "{} on {}: {} conv layers, {:.2} GMACs\n",
        net.name,
        device.name,
        net.layers.iter().map(|l| l.repeat).sum::<usize>(),
        net.total_macs() as f64 / 1e9
    );

    let t = time_network(&net, &device, PlanMode::Fast);
    println!("{:<26} {:>10} {:>10} {:>8}  algorithm", "layer", "ours(ms)", "base(ms)", "speedup");
    for l in &t.layers {
        println!(
            "{:<26} {:>10.4} {:>10.4} {:>7.2}x  {}",
            l.name,
            l.ours_ms,
            l.baseline_ms,
            l.baseline_ms / l.ours_ms,
            l.algorithm
        );
    }
    println!(
        "\ntotal: ours {:.3} ms vs baseline {:.3} ms -> {:.2}x end-to-end speedup",
        t.ours_ms,
        t.baseline_ms,
        t.speedup()
    );
}
