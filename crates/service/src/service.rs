//! The tuning service: speculative background tuning over sharded stores.
//!
//! A [`TuningService`] owns a [`ShardedStore`], a priority
//! [`WorkQueue`], and a set of background tuner workers on the rayon
//! shim's persistent pool. Registering a network enqueues every layer ×
//! algorithm-candidate workload (plus shape-perturbation neighbors),
//! prioritized by predicted I/O-bound gap; workers drain the queue in
//! the background and write records back under a fresh-measurement
//! budget. A request via [`TuningService::tune_or_wait`] then returns
//! instantly from the shard, steals the result of an in-flight
//! background job, or tunes inline (cancelling the speculative
//! duplicate).
//!
//! ## The determinism contract
//!
//! Background workers race, so every per-workload tuning run is
//! **hermetic**: it is driven by the canonical
//! [`iolb_autotune::plan::tuner_setup`] against a fresh private store,
//! making its trajectory a pure function of `(workload, budget, seed)`.
//! No run observes any other record — a workload is only ever tuned
//! while its shard holds nothing for it, at most once at a time — so
//! the drained store is independent of worker count, interleaving and
//! queue order, and identical to what eager per-workload
//! [`tune_with_store`] calls produce. The price is deliberate: the
//! speculative path gives up cross-workload transfer seeding (which
//! would make results depend on completion order) in exchange for
//! reproducibility; transfer stays available to eager callers that
//! choose a shared store.
//!
//! The one scheduling-dependent quantity is *which speculative jobs ran*
//! before the background budget ran out — never what any completed job
//! measured. A request for an untuned workload simply tunes inline.

use crate::queue::{shape_perturbations, Job, WorkQueue};
use crate::shard::{EvictionPolicy, ShardLoadReport, ShardedStore};
use iolb_autotune::engine::tune_with_store;
use iolb_autotune::plan::{self, algo_candidates};
use iolb_core::optimality::TileKind;
use iolb_core::shapes::ConvShape;
use iolb_dataflow::config::ScheduleConfig;
use iolb_gpusim::DeviceSpec;
use iolb_records::{RecordStore, Workload};
use std::collections::BTreeSet;
use std::path::Path;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Service-wide knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Measurement budget of each per-workload tuning run (speculative
    /// and inline alike — they must match for replay to be exact).
    pub budget_per_workload: usize,
    /// Total *fresh* (simulator-touching) measurements the speculative
    /// path may spend; once exhausted, pending queue entries are
    /// dropped. A **soft** cap: it is checked before each claim, not
    /// mid-run (clamping a run would change its trajectory and break
    /// replay), so concurrent workers can overshoot by up to
    /// `workers × budget_per_workload`. Inline requests are user work
    /// and never budget-limited.
    pub background_budget: usize,
    /// Background workers spawned onto the persistent pool per
    /// [`TuningService::kick`]. `0` disables background tuning; the
    /// queue then drains only via [`TuningService::drain`] or inline
    /// requests.
    pub workers: usize,
    /// Whether registering a network also enqueues shape-perturbation
    /// neighbors of its layers (at lower priority).
    pub speculate_neighbors: bool,
    /// Tuner seed shared by every per-workload run.
    pub seed: u64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            budget_per_workload: 32,
            background_budget: 100_000,
            workers: 2,
            speculate_neighbors: true,
            seed: 7,
        }
    }
}

/// Where a [`ServeResult`] came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeSource {
    /// The shard already held records for the workload: zero work.
    ShardHit,
    /// A background worker was tuning the workload; the caller blocked
    /// until it finished and took its result.
    Stolen,
    /// The caller tuned the workload on its own thread.
    /// `cancelled_speculative` reports whether a pending queue entry for
    /// the same workload was cancelled (the background duplicate).
    Inline { cancelled_speculative: bool },
}

/// Outcome of one [`TuningService::tune_or_wait`] request.
#[derive(Debug, Clone)]
pub struct ServeResult {
    /// Best known configuration for the workload.
    pub config: ScheduleConfig,
    /// Its measured cost (ms), bit-identical to what an eager
    /// store-backed tuning run measures.
    pub cost_ms: f64,
    pub source: ServeSource,
    /// Simulator invocations this request itself triggered (0 for hits
    /// and steals).
    pub fresh_measurements: usize,
    /// Store replays this request itself used.
    pub cache_hits: usize,
}

/// Monotonic counters describing service activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Layer workloads enqueued by registration.
    pub enqueued: usize,
    /// Shape-perturbation neighbors enqueued by registration.
    pub speculative_enqueued: usize,
    /// Jobs tuned by the background path (workers or [`TuningService::drain`]).
    pub background_tuned: usize,
    /// Workloads tuned inline by `tune_or_wait` callers.
    pub inline_tuned: usize,
    /// Requests answered instantly from the shards.
    pub shard_hits: usize,
    /// Requests that waited for an in-flight background job.
    pub stolen: usize,
    /// Pending speculative jobs cancelled because a caller tuned the
    /// same workload inline.
    pub cancelled_speculative: usize,
    /// Pending jobs dropped when the background budget ran out.
    pub budget_dropped: usize,
    /// Total simulator invocations across background and inline tuning.
    pub fresh_measurements: usize,
    /// Total store replays across background and inline tuning.
    pub cache_hits: usize,
    /// Workloads that turned out to have no measurable configuration.
    pub infeasible: usize,
}

struct State {
    shards: ShardedStore,
    queue: WorkQueue,
    /// Fingerprints currently being tuned (by a worker or an inline
    /// caller). At most one tuner per workload, ever.
    in_flight: BTreeSet<String>,
    /// Workloads that yielded no measurable configuration — remembered
    /// so neither waiters nor workers retry them forever.
    infeasible: BTreeSet<String>,
    budget_left: usize,
    stats: ServiceStats,
}

struct Inner {
    state: Mutex<State>,
    /// Signalled whenever the queue, the in-flight set or the shards
    /// change: waiters in `tune_or_wait` and `drain` re-check on it.
    changed: Condvar,
    config: ServiceConfig,
}

/// The speculative background-tuning service. Cheap to clone between
/// threads (`Arc` inside); all state is interior.
#[derive(Clone)]
pub struct TuningService {
    inner: Arc<Inner>,
}

impl TuningService {
    /// A service over an existing sharded store.
    pub fn new(shards: ShardedStore, config: ServiceConfig) -> Self {
        let budget_left = config.background_budget;
        Self {
            inner: Arc::new(Inner {
                state: Mutex::new(State {
                    shards,
                    queue: WorkQueue::new(),
                    in_flight: BTreeSet::new(),
                    infeasible: BTreeSet::new(),
                    budget_left,
                    stats: ServiceStats::default(),
                }),
                changed: Condvar::new(),
                config,
            }),
        }
    }

    /// Opens (or initializes) a service over a shard directory.
    pub fn open(
        dir: impl AsRef<Path>,
        config: ServiceConfig,
    ) -> std::io::Result<(Self, ShardLoadReport)> {
        let (shards, report) = ShardedStore::load(dir)?;
        Ok((Self::new(shards, config), report))
    }

    pub fn config(&self) -> ServiceConfig {
        self.inner.config
    }

    fn lock(&self) -> MutexGuard<'_, State> {
        self.inner.state.lock().expect("service state poisoned")
    }

    /// Current counters (a snapshot).
    pub fn stats(&self) -> ServiceStats {
        self.lock().stats
    }

    /// Pending (not yet claimed) jobs.
    pub fn queue_len(&self) -> usize {
        self.lock().queue.len()
    }

    /// Remaining background fresh-measurement budget.
    pub fn budget_left(&self) -> usize {
        self.lock().budget_left
    }

    /// A deep copy of the shards. Held lock time is the clone only, so
    /// expensive follow-ups (merging, disk writes) never stall serving.
    fn snapshot_shards(&self) -> ShardedStore {
        self.lock().shards.clone()
    }

    /// Cross-shard merge-out of everything the service knows (a snapshot).
    pub fn merged_store(&self) -> RecordStore {
        self.snapshot_shards().merged()
    }

    /// Persists the shards (and LRU metadata) to a directory. The disk
    /// write (including fsyncs) happens on a snapshot, outside the
    /// service lock — concurrent `tune_or_wait` hits stay instant.
    pub fn save(&self, dir: impl AsRef<Path>) -> std::io::Result<()> {
        self.snapshot_shards().save(dir)
    }

    /// Applies an eviction policy to the shards now.
    pub fn evict(&self, policy: &EvictionPolicy) -> usize {
        self.lock().shards.evict(policy)
    }

    /// Enqueues one workload for background tuning (deduplicated against
    /// the shards, the queue, in-flight work and known-infeasible
    /// workloads). Returns whether the queue grew. Call
    /// [`kick`](Self::kick) afterwards, or let [`drain`](Self::drain) /
    /// inline requests pick it up.
    pub fn enqueue(
        &self,
        shape: &ConvShape,
        kind: TileKind,
        device: &DeviceSpec,
        speculative: bool,
    ) -> bool {
        let job = Job { shape: *shape, kind, device: device.clone(), speculative };
        // The priority is a pure function of the workload: compute it
        // before taking the lock (it enumerates tile spaces).
        let gap = crate::queue::io_gap(shape, kind, device);
        let grew = Self::enqueue_locked(&mut self.lock(), job, gap);
        if grew {
            self.inner.changed.notify_all();
        }
        grew
    }

    fn enqueue_locked(st: &mut State, job: Job, gap: f64) -> bool {
        let fingerprint = job.fingerprint();
        if !st.shards.records(&job.workload()).is_empty()
            || st.in_flight.contains(&fingerprint)
            || st.infeasible.contains(&fingerprint)
        {
            return false;
        }
        let speculative = job.speculative;
        match st.queue.push(job, gap) {
            crate::queue::PushOutcome::Added => {
                if speculative {
                    st.stats.speculative_enqueued += 1;
                } else {
                    st.stats.enqueued += 1;
                }
                true
            }
            crate::queue::PushOutcome::Promoted => {
                // The workload was pending as a neighbor and is in fact
                // a registered layer: re-book it under the right column.
                st.stats.speculative_enqueued -= 1;
                st.stats.enqueued += 1;
                false
            }
            crate::queue::PushOutcome::AlreadyPending => false,
        }
    }

    /// Registers a network on a device: enqueues every layer × algorithm
    /// candidate (and, if configured, shape-perturbation neighbors at
    /// lower priority), then kicks the background workers. Returns how
    /// many jobs the queue gained. A layer that was already pending as
    /// some earlier layer's perturbation neighbor is promoted to
    /// registered priority.
    pub fn register_network(&self, net: &impl register::LayerSource, device: &DeviceSpec) -> usize {
        // Candidate jobs are cheap to enumerate; do it without the lock.
        let mut candidates: Vec<Job> = Vec::new();
        let mut stage = |shape: ConvShape, speculative: bool| {
            for (kind, _) in algo_candidates(&shape) {
                candidates.push(Job { shape, kind, device: device.clone(), speculative });
            }
        };
        for layer in net.layer_shapes() {
            stage(*layer, false);
            if self.inner.config.speculate_neighbors {
                for neighbor in shape_perturbations(layer) {
                    stage(neighbor, true);
                }
            }
        }
        // Snapshot what the service already knows so re-registration
        // (the supported dedupe path) skips the priority computation —
        // io_gap runs a tile-space enumeration per workload. The
        // snapshot is advisory; enqueue_locked re-checks authoritatively.
        let (settled, pending_registered, pending_speculative) = {
            let st = self.lock();
            let mut settled: BTreeSet<String> = st.in_flight.clone();
            settled.extend(st.infeasible.iter().cloned());
            for (_, shard) in st.shards.shards() {
                settled.extend(shard.fingerprints().map(str::to_string));
            }
            let mut registered = BTreeSet::new();
            let mut speculative = BTreeSet::new();
            for (fp, is_spec) in st.queue.pending() {
                if is_spec { &mut speculative } else { &mut registered }.insert(fp.to_string());
            }
            (settled, registered, speculative)
        };
        // Priorities for the jobs that actually need them, lock-free:
        // io_gap is a pure function of the workload, and a VGG-scale
        // registration must not stall concurrent serves.
        let jobs: Vec<(Job, f64)> = candidates
            .into_iter()
            .filter_map(|job| {
                let fp = job.fingerprint();
                if settled.contains(&fp)
                    || pending_registered.contains(&fp)
                    || (job.speculative && pending_speculative.contains(&fp))
                {
                    return None;
                }
                // Still staged when a registered layer aliases a pending
                // speculative neighbor: the push below promotes it.
                let gap = crate::queue::io_gap(&job.shape, job.kind, device);
                Some((job, gap))
            })
            .collect();
        let mut added = 0;
        {
            let mut st = self.lock();
            for (job, gap) in jobs {
                added += usize::from(Self::enqueue_locked(&mut st, job, gap));
            }
        }
        if added > 0 {
            self.inner.changed.notify_all();
            self.kick();
        }
        added
    }

    /// Spawns up to `config.workers` background workers onto the
    /// persistent pool. Each worker claims queued jobs until the queue
    /// is empty (or the budget is gone) and then exits, so kicking an
    /// idle service is free and kicking repeatedly is safe.
    ///
    /// On hosts whose pool has zero workers (single core) this is a
    /// no-op rather than an inline drain: `rayon::spawn` would run the
    /// worker loop on the calling thread, turning "register and move
    /// on" into "block until the whole queue is tuned". There is no
    /// background parallelism to exploit there anyway — the queue
    /// drains via [`drain`](Self::drain) and inline requests instead.
    pub fn kick(&self) {
        if rayon::pool_thread_count() == 0 || self.lock().queue.is_empty() {
            return;
        }
        for _ in 0..self.inner.config.workers {
            let service = self.clone();
            rayon::spawn(move || while service.claim_and_run_one() {});
        }
    }

    /// Blocks until the queue is empty and nothing is in flight,
    /// *helping* with queued jobs on the calling thread while it waits
    /// (so a drain completes even with `workers == 0`, and on hosts
    /// whose pool has no threads). Speculative budget accounting applies
    /// exactly as it does to workers.
    pub fn drain(&self) {
        loop {
            if self.claim_and_run_one() {
                continue;
            }
            // Nothing claimable: either truly done, or background jobs
            // are still in flight — wait for them to land, then re-check
            // (a worker may have exposed nothing new, or a waiter may
            // have enqueued more work meanwhile).
            let mut st = self.lock();
            loop {
                if !st.queue.is_empty() {
                    break; // claimable again
                }
                if st.in_flight.is_empty() {
                    return;
                }
                st = self.inner.changed.wait(st).expect("service state poisoned");
            }
        }
    }

    /// Claims the highest-priority runnable job and tunes it on the
    /// calling thread. Returns `false` when nothing was claimable
    /// (empty queue or exhausted budget).
    fn claim_and_run_one(&self) -> bool {
        let claimed = {
            let mut st = self.lock();
            if st.budget_left == 0 {
                let dropped = st.queue.clear();
                if dropped > 0 {
                    st.stats.budget_dropped += dropped;
                    self.inner.changed.notify_all();
                }
                return false;
            }
            loop {
                let Some(job) = st.queue.pop_first() else { break None };
                let fingerprint = job.fingerprint();
                // Registration dedupes, but a workload can be satisfied
                // (or fail) between enqueue and claim; skip stale entries.
                if !st.shards.records(&job.workload()).is_empty()
                    || st.in_flight.contains(&fingerprint)
                    || st.infeasible.contains(&fingerprint)
                {
                    continue;
                }
                st.in_flight.insert(fingerprint.clone());
                break Some((job, fingerprint));
            }
        };
        let Some((job, fingerprint)) = claimed else {
            return false;
        };
        let outcome = self.run_guarded(&job, &fingerprint);
        let mut st = self.lock();
        st.in_flight.remove(&fingerprint);
        match outcome {
            Some((out, private)) => {
                st.stats.background_tuned += 1;
                st.stats.fresh_measurements += out.fresh_measurements;
                st.stats.cache_hits += out.cache_hits;
                st.budget_left = st.budget_left.saturating_sub(out.fresh_measurements);
                st.shards.merge_flat(private);
            }
            None => {
                st.stats.infeasible += 1;
                st.infeasible.insert(fingerprint);
            }
        }
        drop(st);
        self.inner.changed.notify_all();
        true
    }

    /// Runs one hermetic tuning with panic cleanup: if the tuner
    /// panics, the fingerprint is removed from the in-flight set and
    /// waiters are woken *before* the panic resumes — otherwise every
    /// later `tune_or_wait` for the workload would block forever on a
    /// job that no longer exists. (On the background path the resumed
    /// panic is then caught by the pool's worker loop, which survives.)
    fn run_guarded(
        &self,
        job: &Job,
        fingerprint: &str,
    ) -> Option<(iolb_autotune::StoreTuneResult, RecordStore)> {
        let config = self.inner.config;
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_hermetic_tuning(&config, job)
        })) {
            Ok(outcome) => outcome,
            Err(payload) => {
                let mut st = self.lock();
                st.in_flight.remove(fingerprint);
                drop(st);
                self.inner.changed.notify_all();
                std::panic::resume_unwind(payload);
            }
        }
    }

    /// Serves the best configuration for a workload:
    ///
    /// * **shard hit** — records exist: returns instantly, zero
    ///   measurements;
    /// * **steal** — a background worker is mid-tune on this workload:
    ///   blocks until it lands and takes its result;
    /// * **inline** — tunes on the calling thread (cancelling any
    ///   pending speculative duplicate in the queue), writes the records
    ///   back, and returns the best.
    ///
    /// Returns `None` only for workloads with no measurable
    /// configuration at all. The returned cost is bit-identical to what
    /// an eager [`tune_with_store`] run of the same workload measures.
    pub fn tune_or_wait(
        &self,
        shape: &ConvShape,
        kind: TileKind,
        device: &DeviceSpec,
    ) -> Option<ServeResult> {
        let workload = Workload::new(*shape, kind, device.name, device.smem_per_sm);
        let fingerprint = workload.fingerprint();
        let mut waited = false;
        let mut st = self.lock();
        loop {
            if let Some(best) = st.shards.best(&workload).cloned() {
                st.shards.touch(&fingerprint);
                if waited {
                    st.stats.stolen += 1;
                } else {
                    st.stats.shard_hits += 1;
                }
                return Some(ServeResult {
                    config: best.config,
                    cost_ms: best.cost_ms,
                    source: if waited { ServeSource::Stolen } else { ServeSource::ShardHit },
                    fresh_measurements: 0,
                    cache_hits: 0,
                });
            }
            if st.infeasible.contains(&fingerprint) {
                return None;
            }
            if st.in_flight.contains(&fingerprint) {
                waited = true;
                st = self.inner.changed.wait(st).expect("service state poisoned");
                continue;
            }
            break;
        }
        // Miss: tune inline, cancelling the speculative duplicate.
        let cancelled = st.queue.remove(&fingerprint);
        if cancelled {
            st.stats.cancelled_speculative += 1;
        }
        st.in_flight.insert(fingerprint.clone());
        drop(st);
        let job = Job { shape: *shape, kind, device: device.clone(), speculative: false };
        let outcome = self.run_guarded(&job, &fingerprint);
        let mut st = self.lock();
        st.in_flight.remove(&fingerprint);
        let result = match outcome {
            Some((out, private)) => {
                st.stats.inline_tuned += 1;
                st.stats.fresh_measurements += out.fresh_measurements;
                st.stats.cache_hits += out.cache_hits;
                st.shards.merge_flat(private);
                st.shards.touch(&fingerprint);
                let best = st.shards.best(&workload).expect("tuned workload has records");
                Some(ServeResult {
                    config: best.config,
                    cost_ms: best.cost_ms,
                    source: ServeSource::Inline { cancelled_speculative: cancelled },
                    fresh_measurements: out.fresh_measurements,
                    cache_hits: out.cache_hits,
                })
            }
            None => {
                st.stats.infeasible += 1;
                st.infeasible.insert(fingerprint);
                None
            }
        };
        drop(st);
        self.inner.changed.notify_all();
        result
    }
}

/// One hermetic per-workload tuning run: the canonical tuner setup
/// against a fresh private store. Pure function of `(workload, budget,
/// seed)` — the service's whole determinism contract reduces to this.
/// (A workload is only ever tuned when its shard holds no records — the
/// claim paths guarantee it under the lock — so there is nothing to
/// seed the private store with.)
fn run_hermetic_tuning(
    config: &ServiceConfig,
    job: &Job,
) -> Option<(iolb_autotune::StoreTuneResult, RecordStore)> {
    let mut private = RecordStore::new();
    let mut s = plan::tuner_setup(
        &job.shape,
        job.kind,
        &job.device,
        config.budget_per_workload,
        config.seed,
    );
    let out = tune_with_store(
        &s.space,
        &s.measurer,
        &mut s.model,
        &mut s.searcher,
        s.params,
        &mut private,
    )?;
    Some((out, private))
}

/// Minimal "network" view the service needs: just the layer shapes.
///
/// `iolb-cnn` sits *above* this crate (its inference timer calls into
/// the service), so the service cannot name `iolb_cnn::Network`
/// directly. Anything that exposes its conv-layer shapes — a network, a
/// slice of shapes, a single shape — registers via this trait;
/// `iolb-cnn` implements it for its `Network` type.
pub mod register {
    use iolb_core::shapes::ConvShape;

    /// Anything with conv layers to register.
    pub trait LayerSource {
        /// The conv-layer shapes, in order.
        fn layer_shapes(&self) -> Vec<&ConvShape>;
    }

    impl LayerSource for [ConvShape] {
        fn layer_shapes(&self) -> Vec<&ConvShape> {
            self.iter().collect()
        }
    }

    impl LayerSource for Vec<ConvShape> {
        fn layer_shapes(&self) -> Vec<&ConvShape> {
            self.iter().collect()
        }
    }

    impl LayerSource for ConvShape {
        fn layer_shapes(&self) -> Vec<&ConvShape> {
            vec![self]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device() -> DeviceSpec {
        DeviceSpec::v100()
    }

    fn small_config() -> ServiceConfig {
        ServiceConfig {
            budget_per_workload: 12,
            background_budget: 10_000,
            workers: 0, // tests drive the queue deterministically
            speculate_neighbors: false,
            seed: 7,
        }
    }

    // 1x1 layers keep algorithm candidates to `direct` only: fast tests.
    fn shapes() -> Vec<ConvShape> {
        vec![ConvShape::new(32, 14, 14, 16, 1, 1, 1, 0), ConvShape::new(16, 14, 14, 32, 1, 1, 1, 0)]
    }

    #[test]
    fn register_drain_then_hit() {
        let service = TuningService::new(ShardedStore::new(), small_config());
        let added = service.register_network(&shapes(), &device());
        assert_eq!(added, 2);
        assert_eq!(service.queue_len(), 2);
        service.drain();
        assert_eq!(service.queue_len(), 0);
        let stats = service.stats();
        assert_eq!(stats.background_tuned, 2);
        assert!(stats.fresh_measurements > 0);
        for shape in shapes() {
            let out = service.tune_or_wait(&shape, TileKind::Direct, &device()).unwrap();
            assert_eq!(out.source, ServeSource::ShardHit);
            assert_eq!(out.fresh_measurements, 0);
            assert!(out.cost_ms > 0.0);
        }
        assert_eq!(service.stats().shard_hits, 2);
        assert_eq!(
            service.stats().fresh_measurements,
            stats.fresh_measurements,
            "hits must not measure"
        );
    }

    #[test]
    fn inline_tune_cancels_the_speculative_duplicate() {
        let service = TuningService::new(ShardedStore::new(), small_config());
        service.register_network(&shapes(), &device());
        let shape = shapes()[0];
        let out = service.tune_or_wait(&shape, TileKind::Direct, &device()).unwrap();
        assert_eq!(out.source, ServeSource::Inline { cancelled_speculative: true });
        assert!(out.fresh_measurements > 0);
        assert_eq!(service.stats().cancelled_speculative, 1);
        assert_eq!(service.queue_len(), 1, "only the other layer remains queued");
        // Serving the same workload again is a pure hit.
        let again = service.tune_or_wait(&shape, TileKind::Direct, &device()).unwrap();
        assert_eq!(again.source, ServeSource::ShardHit);
        assert_eq!(again.config, out.config);
        assert_eq!(again.cost_ms.to_bits(), out.cost_ms.to_bits());
    }

    #[test]
    fn registration_dedupes_against_everything() {
        let service = TuningService::new(ShardedStore::new(), small_config());
        assert_eq!(service.register_network(&shapes(), &device()), 2);
        assert_eq!(service.register_network(&shapes(), &device()), 0, "queued dedupe");
        service.drain();
        assert_eq!(service.register_network(&shapes(), &device()), 0, "stored dedupe");
    }

    #[test]
    fn neighbors_enqueue_at_lower_priority() {
        let config = ServiceConfig { speculate_neighbors: true, ..small_config() };
        let service = TuningService::new(ShardedStore::new(), config);
        let shape = ConvShape::new(32, 14, 14, 16, 1, 1, 1, 0);
        let added = service.register_network(&shape, &device());
        // 1 layer + 4 channel perturbations, all direct-only.
        assert_eq!(added, 5);
        let stats = service.stats();
        assert_eq!(stats.enqueued, 1);
        assert_eq!(stats.speculative_enqueued, 4);
    }

    #[test]
    fn budget_exhaustion_drops_the_queue_but_not_inline_requests() {
        let config = ServiceConfig { background_budget: 0, ..small_config() };
        let service = TuningService::new(ShardedStore::new(), config);
        service.register_network(&shapes(), &device());
        service.drain();
        let stats = service.stats();
        assert_eq!(stats.background_tuned, 0);
        assert_eq!(stats.budget_dropped, 2);
        // The user path still works.
        let out = service.tune_or_wait(&shapes()[0], TileKind::Direct, &device()).unwrap();
        assert!(matches!(out.source, ServeSource::Inline { .. }));
        assert!(out.fresh_measurements > 0);
    }

    #[test]
    fn infeasible_workloads_are_remembered_not_retried() {
        let service = TuningService::new(ShardedStore::new(), small_config());
        // A shape whose footprint can never fit: absurd kernel.
        let shape = ConvShape::new(1, 1, 1, 1, 1, 1, 1, 0);
        let device = DeviceSpec { smem_per_sm: 1, ..device() };
        let first = service.tune_or_wait(&shape, TileKind::Direct, &device);
        assert!(first.is_none());
        let measured = service.stats().fresh_measurements;
        let second = service.tune_or_wait(&shape, TileKind::Direct, &device);
        assert!(second.is_none());
        assert_eq!(service.stats().fresh_measurements, measured, "no retry measurement");
        assert_eq!(service.stats().infeasible, 1, "only the first attempt counts");
    }

    #[test]
    fn background_workers_race_safely_with_waiters() {
        // Real workers on the pool + a concurrent tune_or_wait caller:
        // whatever the interleaving, the result matches a drained run.
        let config = ServiceConfig { workers: 2, ..small_config() };
        let service = TuningService::new(ShardedStore::new(), config);
        service.register_network(&shapes(), &device());
        let shape = shapes()[0];
        let out = service.tune_or_wait(&shape, TileKind::Direct, &device()).unwrap();
        service.drain();
        let reference = TuningService::new(ShardedStore::new(), small_config());
        let expected = reference.tune_or_wait(&shape, TileKind::Direct, &device()).unwrap();
        assert_eq!(out.config, expected.config);
        assert_eq!(out.cost_ms.to_bits(), expected.cost_ms.to_bits());
    }
}
